// Command cxl0-txnmap regenerates the paper's Table 1: the mapping from
// CXL.cache / CXL.mem link transactions to abstract CXL0 primitives,
// observed by driving every primitive from every legal initial MESI state
// pair through the transaction-level simulator.
//
// Usage:
//
//	cxl0-txnmap          # the table, with agreement against the paper
//	cxl0-txnmap -detail  # additionally show the per-state observations
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"

	"cxl0/internal/cxlsim"
)

func main() {
	detail := flag.Bool("detail", false, "show per-initial-state observations")
	flag.Parse()

	cells := cxlsim.GenerateTable1()
	paper := cxlsim.PaperTable1()

	fmt.Println("Table 1 — observable CXL transactions for all CXL0 primitives")
	fmt.Println("==============================================================")
	mismatches := 0
	for _, node := range []cxlsim.Node{cxlsim.NodeHost, cxlsim.NodeDevice} {
		proto := "CXL.cache H2D / CXL.mem M2S"
		if node == cxlsim.NodeDevice {
			proto = "CXL.cache D2H / CXL.cache & CXL.mem"
		}
		fmt.Printf("\n%s (%s)\n", node, proto)
		fmt.Printf("  %-8s %-32s %-34s %s\n", "CXL0", "Operation", "to HM", "to HDM (host bias)")
		for _, prim := range cxlsim.Primitives {
			var hm, hdm string
			var rowCells []cxlsim.Cell
			for _, c := range cells {
				if c.Node == node && c.Prim == prim {
					rowCells = append(rowCells, c)
					s := "???"
					if c.Available {
						s = strings.Join(c.Observed, ", ")
					}
					if c.Target == cxlsim.HM {
						hm = s
					} else {
						hdm = s
					}
				}
			}
			fmt.Printf("  %-8s %-32s %-34s %s\n", prim, cxlsim.OperationName(node, prim), hm, hdm)
			for _, c := range rowCells {
				if exp, ok := paper[c.CellKey()]; ok && c.Available {
					if !reflect.DeepEqual(c.Observed, exp) {
						fmt.Printf("      MISMATCH vs paper at %s: paper says %v\n", c.CellKey(), exp)
						mismatches++
					}
				}
				if *detail && c.Available {
					keys := make([]string, 0, len(c.ByState))
					for k := range c.ByState {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					for _, k := range keys {
						fmt.Printf("      %-14s %-12s -> %s\n", c.Target, k, c.ByState[k])
					}
				}
			}
		}
	}
	fmt.Println()
	if mismatches == 0 {
		fmt.Println("All cells agree with the paper's Table 1.")
	} else {
		fmt.Printf("%d cells diverge from the paper's Table 1.\n", mismatches)
		os.Exit(1)
	}
}
