// Command cxl0-litmus regenerates the paper's litmus-test tables: the nine
// Figure 3 verdicts, the §3.5 variant triples (tests 10–12), the §6
// motivating example, and the §4 primitive-availability matrix.
//
// Usage:
//
//	cxl0-litmus            # Figure 3 + variant triples
//	cxl0-litmus -motivating
//	cxl0-litmus -setups
package main

import (
	"flag"
	"fmt"
	"os"

	"cxl0/internal/core"
	"cxl0/internal/litmus"
)

func main() {
	motivating := flag.Bool("motivating", false, "run only the §6 motivating example")
	setups := flag.Bool("setups", false, "print only the §4 primitive-availability matrix")
	flag.Parse()

	switch {
	case *motivating:
		printMotivating()
	case *setups:
		printSetups()
	default:
		ok1 := printFigure3()
		ok2 := printVariants()
		printMotivating()
		ok3 := printExtended()
		if !ok1 || !ok2 || !ok3 {
			os.Exit(1)
		}
	}
}

func printFigure3() bool {
	fmt.Println("Figure 3 — litmus tests for CXL0 (paper verdict vs. model)")
	fmt.Println("----------------------------------------------------------")
	agree := true
	for _, r := range litmus.RunAll(litmus.Figure3()) {
		status := "agree"
		if !r.Agrees() {
			status = "MISMATCH"
			agree = false
		}
		fmt.Printf("  (%d) %-62s paper:%s model:%s  [%s]\n",
			r.Test.ID, r.Test.Paper, litmus.Mark(r.Expected), litmus.Mark(r.Got), status)
	}
	fmt.Println()
	return agree
}

func printVariants() bool {
	fmt.Println("§3.5 — variant comparison (CXL0, CXL0-LWB, CXL0-PSN)")
	fmt.Println("-----------------------------------------------------")
	agree := true
	for _, t := range litmus.VariantTests() {
		got := [3]bool{t.Run(core.Base), t.Run(core.LWB), t.Run(core.PSN)}
		want := [3]bool{t.Expected[core.Base], t.Expected[core.LWB], t.Expected[core.PSN]}
		status := "agree"
		if got != want {
			status = "MISMATCH"
			agree = false
		}
		fmt.Printf("  (%d) %-58s paper:(%s,%s,%s) model:(%s,%s,%s)  [%s]\n",
			t.ID, t.Paper,
			litmus.Mark(want[0]), litmus.Mark(want[1]), litmus.Mark(want[2]),
			litmus.Mark(got[0]), litmus.Mark(got[1]), litmus.Mark(got[2]), status)
	}
	fmt.Println()
	return agree
}

func printMotivating() {
	fmt.Println("§6 motivating example — x on M2; M1 runs: x=1; r1=x; r2=x; assert(r1==r2)")
	fmt.Println("--------------------------------------------------------------------------")
	rows := []struct {
		label  string
		store  core.Op
		rflush bool
		expect bool // paper: does the assertion hold?
	}{
		{"x=1 as LStore (legacy code)", core.OpLStore, false, false},
		{"x=1 as MStore", core.OpMStore, false, true},
		{"x=1 as LStore + RFlush(x)", core.OpLStore, true, true},
	}
	for _, row := range rows {
		holds := litmus.MotivatingAssertionHolds(row.store, row.rflush)
		verdict := "assertion may FAIL"
		if holds {
			verdict = "assertion holds"
		}
		agree := "agree"
		if holds != row.expect {
			agree = "MISMATCH"
		}
		fmt.Printf("  %-30s -> %-20s [%s]\n", row.label, verdict, agree)
	}
	fmt.Println()
}

func printExtended() bool {
	fmt.Println("Extended corpus — reproduction-finding traces (see EXPERIMENTS.md)")
	fmt.Println("-------------------------------------------------------------------")
	agree := true
	for _, r := range litmus.RunAll(litmus.Extended()) {
		status := "agree"
		if !r.Agrees() {
			status = "MISMATCH"
			agree = false
		}
		fmt.Printf("  (%d) %-68s %-9s expected:%s model:%s  [%s]\n",
			r.Test.ID, r.Test.Paper, r.Variant, litmus.Mark(r.Expected), litmus.Mark(r.Got), status)
	}
	fmt.Println()
	return agree
}

func printSetups() {
	fmt.Println("§4 — CXL0 primitive availability per system configuration")
	fmt.Println("----------------------------------------------------------")
	fmt.Printf("  %-10s", "")
	for _, op := range core.AllOps {
		fmt.Printf("%-13s", op)
	}
	fmt.Println()
	for _, s := range core.Setups {
		roles := []core.NodeRole{core.RoleHost}
		if s == core.HostDevicePair {
			roles = []core.NodeRole{core.RoleHost, core.RoleDevice}
		}
		fmt.Printf("%s\n", s)
		for _, role := range roles {
			fmt.Printf("  %-10s", role)
			for _, op := range core.AllOps {
				mark := "-"
				if s.Available(role, op) {
					mark = "yes"
				}
				fmt.Printf("%-13s", mark)
			}
			fmt.Println()
		}
	}
}
