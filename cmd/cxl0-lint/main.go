// Command cxl0-lint runs the cxl0 static-analysis suite: the
// go/analysis passes that mechanically enforce the simulator's
// determinism and protocol invariants (docs/analysis.md is the rule
// catalog).
//
// Standalone:
//
//	go run ./cmd/cxl0-lint ./...
//
// As a vet tool:
//
//	go vet -vettool=$(go env GOPATH)/bin/cxl0-lint ./...
//
// The exit status is 0 when the tree is clean and nonzero when any
// analyzer reports a finding — CI runs it as a blocking job.
package main

import (
	"golang.org/x/tools/go/analysis/multichecker"

	"cxl0/internal/analysis"
)

func main() {
	multichecker.Main(analysis.All()...)
}
