// Command cxl0-explore checks user-written litmus tests against the CXL0
// model and its variants — the role FDR4 plays in the paper, as a CLI.
//
// Scripts use the paper's notation:
//
//	machines: M1:nvm M2:vol
//	locs: x@M2
//	trace: LStore1(x,1) RFlush1(x) E2 Load1(x,0)
//	expect: base=forbidden
//
// Usage:
//
//	cxl0-explore file.litmus     # check a script file
//	cxl0-explore -               # read the script from stdin
//	cxl0-explore -demo           # run a built-in demonstration script
//
// Exit status is non-zero when any stated expectation is violated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cxl0/internal/core"
	"cxl0/internal/explore"
	"cxl0/internal/litmus"
)

// discoverSeparators enumerates the focused trace family on the §3.5
// topology and prints minimized witnesses separating the model variants —
// the comparison the paper performs with FDR4.
func discoverSeparators() {
	topo := core.NewTopology()
	m1 := topo.AddMachine("M1", core.NonVolatile)
	m2 := topo.AddMachine("M2", core.Volatile)
	topo.AddLoc("x", m1)
	topo.AddLoc("y", m2)

	fmt.Println("variant refinement over machines M1:nvm M2:vol, locs x@M1 y@M2")
	fmt.Println("===============================================================")
	pairs := [][2]core.Variant{
		{core.Base, core.PSN}, {core.Base, core.LWB},
		{core.PSN, core.LWB}, {core.LWB, core.PSN},
		{core.PSN, core.Base}, {core.LWB, core.Base},
	}
	for _, p := range pairs {
		sep := explore.FindSeparator(topo, p[0], p[1])
		if sep == nil {
			fmt.Printf("  no trace allowed by %-8v and forbidden by %v (in the searched family)\n", p[0], p[1])
			continue
		}
		fmt.Printf("  allowed by %-8v forbidden by %-8v : %s\n", p[0], p[1], sep.Pretty(topo))
	}
	fmt.Println("\n(the PSN/LWB pair of witnesses is the paper's incomparability result;")
	fmt.Println(" the absence of variant-allowed/base-forbidden traces confirms both")
	fmt.Println(" variants refine base CXL0.)")
}

const demoScript = `# Can a value observed by a peer still be lost? (paper test 8)
machines: M1:nvm M2:nvm
locs: x@M2 y@M1
trace: RStore1(x,1) Load2(x,1) RStore2(y,1) E2 Load1(y,1) Load1(x,0)
expect: base=allowed

# ...and MStore forbids the inconsistent recovery (test 9).
trace: MStore1(x,1) Load2(x,1) RStore2(y,1) E2 Load1(y,1) Load1(x,0)
expect: base=forbidden

# The store-then-flush crash window: an eviction plus the owner's crash
# between the LStore and the RFlush silently destroys the value, and the
# flush completes vacuously.
trace: LStore1(x,1) E2 RFlush1(x) Load1(x,1)
expect: base=allowed
trace: LStore1(x,1) E2 RFlush1(x) Load1(x,0)
expect: base=allowed
`

func main() {
	demo := flag.Bool("demo", false, "run the built-in demonstration script")
	discover := flag.Bool("discover", false, "search for variant-separating traces (FDR4-style)")
	flag.Parse()

	if *discover {
		discoverSeparators()
		return
	}

	var (
		input []byte
		err   error
		name  string
	)
	switch {
	case *demo:
		input, name = []byte(demoScript), "demo"
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		input, err = io.ReadAll(os.Stdin)
		name = "stdin"
	case flag.NArg() == 1:
		input, err = os.ReadFile(flag.Arg(0))
		name = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: cxl0-explore <file.litmus | - | -demo>")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxl0-explore:", err)
		os.Exit(2)
	}

	script, err := litmus.ParseScript(string(input))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxl0-explore:", err)
		os.Exit(2)
	}

	fmt.Printf("%s: %d machines, %d locations, %d traces\n\n",
		name, script.Topo.NumMachines(), script.Topo.NumLocs(), len(script.Traces))

	failures := 0
	for i, tr := range script.Traces {
		fmt.Printf("trace %d: %s\n", i+1, tr.Source)
		for _, variant := range core.Variants {
			got := explore.Allows(script.Topo, variant, tr.Labels)
			verdict := "forbidden"
			if got {
				verdict = "allowed"
			}
			note := ""
			if want, stated := tr.Expect[variant]; stated {
				if want == got {
					note = "  [expected]"
				} else {
					note = "  [EXPECTATION VIOLATED]"
					failures++
				}
			}
			fmt.Printf("  %-9s %s%s\n", variant.String()+":", verdict, note)
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("%d expectation(s) violated\n", failures)
		os.Exit(1)
	}
}
