// Command cxl0-latency regenerates the paper's Figure 5: the latency of
// each CXL0 primitive in isolation, for the five access classes of the
// host + Type-2 device testbed, as the median of 1000 measurements, plus
// the relative claims of §5.2.
package main

import (
	"flag"
	"fmt"
	"strings"

	"cxl0/internal/latency"
)

func main() {
	samples := flag.Int("samples", 1000, "measurements per bar (paper: 1000)")
	flag.Parse()

	m := latency.NewModel()
	fmt.Println("Figure 5 — latency of CXL0 primitives on host and device (median ns)")
	fmt.Println("=====================================================================")
	fmt.Printf("%-34s", "")
	for _, p := range latency.Figure5Primitives {
		fmt.Printf("%10s", p)
	}
	fmt.Println()
	for _, c := range latency.Classes {
		fmt.Printf("%-34s", c)
		for _, p := range latency.Figure5Primitives {
			med, ok := m.Measure(c, p, *samples)
			if !ok {
				fmt.Printf("%10s", "n/m") // not measurable
				continue
			}
			fmt.Printf("%10.0f", med)
		}
		fmt.Println()
	}
	fmt.Println("\n(n/m = not measurable: no instruction or IP flow generates the primitive;")
	fmt.Println(" host RStore and LFlush, device LFlush — 7 bars, matching the paper.)")

	fmt.Println("\n§5.2 relative claims (model vs. paper)")
	fmt.Println(strings.Repeat("-", 54))
	for _, r := range latency.Figure5Ratios(m) {
		fmt.Printf("  %-42s %5.2fx  (paper: %.2fx)\n", r.Name, r.Value, r.PaperSays)
	}

	fmt.Println("\nprojection: the disaggregation gap across CXL generations")
	fmt.Println(strings.Repeat("-", 54))
	for _, row := range latency.Projection() {
		fmt.Printf("  %-25s local %3.0f ns  remote %3.0f ns  ratio %.2fx\n",
			row.Generation.Name, row.HostLocalRead, row.HostRemoteRead, row.RemoteOverLocal)
	}
	fmt.Println("  (faster links shrink the remote penalty but never erase it: the")
	fmt.Println("   paper's case for data-placement-aware primitives persists.)")
}
