package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cxl0/internal/core"
	"cxl0/internal/kv"
	"cxl0/internal/obs"
	"cxl0/internal/pool"
	"cxl0/internal/workload"
)

// newTestServer builds a small observed 2-cluster service with the
// driver running, plus its handlers behind httptest.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	r, err := pool.Open(pool.Config{
		Clusters: 2,
		Store:    kv.Config{Shards: 2, Strategy: kv.GroupCommit, Batch: 8, Capacity: 2048, CompactAtFill: 0.85, PipelineDepth: 2, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus(obs.DefaultBusSize)
	stats := obs.NewStats()
	r.Observe(obs.NewRecorder(bus, stats))
	spec, err := workload.YCSB("A")
	if err != nil {
		t.Fatal(err)
	}
	spec.Keys = 100
	s := &server{db: r, bus: bus, stats: stats, spec: spec, started: time.Now(), campaign: "partitioned"} //cxl0:hostclock — dashboard uptime
	for k := 0; k < spec.Keys; k++ {
		if _, err := r.Put(core.Val(k), core.Val(k+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.drive(ctx, 2000, 3, 500, 200, 300, "partitioned", 150)
	}()

	ts := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		cancel()
		ts.Close()
		wg.Wait()
	})
	return ts
}

func TestMetricsEndpointAdvances(t *testing.T) {
	ts := newTestServer(t)

	get := func() metricsSnapshot {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var m metricsSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := get()
	if m1.Clusters != 2 || m1.Workload != "A" {
		t.Fatalf("snapshot identity wrong: %+v", m1)
	}
	if len(m1.Shards) != 4 {
		t.Fatalf("snapshot has %d shard rows, want 4", len(m1.Shards))
	}
	time.Sleep(300 * time.Millisecond) //cxl0:hostclock — let the host-clock rolling rate tick
	m2 := get()
	if m2.Ops <= m1.Ops {
		t.Fatalf("ops did not advance: %d -> %d", m1.Ops, m2.Ops)
	}
	if m2.SimNS <= m1.SimNS {
		t.Fatalf("sim clock did not advance: %g -> %g", m1.SimNS, m2.SimNS)
	}
	if m2.KV.Acked == 0 {
		t.Fatal("no writes acked under a running update-heavy workload")
	}
	if m2.Bus.Published == 0 {
		t.Fatal("bus published nothing despite instrumentation")
	}
	if m2.KV.PipelinedCommits == 0 {
		t.Fatal("no pipelined commits under a PipelineDepth=2 batched store")
	}
	if m2.KV.MaxInFlight < 1 {
		t.Fatalf("max in-flight depth %d, want >= 1 with the pipeline active", m2.KV.MaxInFlight)
	}
	ackedRows := 0
	for _, row := range m2.Shards {
		if row.Acked > 0 {
			ackedRows++
		}
	}
	if ackedRows == 0 {
		t.Fatal("no shard row reports an advanced acked-watermark")
	}
	if m2.Faults.Campaign != "partitioned" {
		t.Fatalf("faults block reports campaign %q, want partitioned", m2.Faults.Campaign)
	}
	if m2.Faults.Down == nil || m2.Faults.Partitioned == nil || m2.Faults.Degraded == nil {
		t.Fatalf("faults shard lists must be present (empty, not null): %+v", m2.Faults)
	}
}

func TestEventsEndpointStreams(t *testing.T) {
	ts := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	var lastKind string
	for sc.Scan() && events < 10 {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			lastKind = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			var e struct {
				Seq  uint64 `json:"seq"`
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			if e.Seq == 0 || e.Kind == "" {
				t.Fatalf("event missing seq/kind: %q", line)
			}
			if e.Kind != lastKind {
				t.Fatalf("SSE event name %q disagrees with payload kind %q", lastKind, e.Kind)
			}
			events++
		}
	}
	if events < 10 {
		t.Fatalf("read %d events before the stream ended, want 10", events)
	}
}

func TestDashboardServed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"<!doctype html", "EventSource", "/metrics", "busy share", "in-flight", "pipelined"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	if resp, err := ts.Client().Get(ts.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != 404 {
		t.Fatalf("unknown path served %d, want 404", resp.StatusCode)
	}
}
