// Command cxl0-serve runs the pooled KV service under a continuous
// synthetic workload and serves a live ops surface over HTTP:
//
//	GET /         — embedded HTML dashboard (no external assets)
//	GET /metrics  — JSON snapshot: counters, per-shard gauges, rolling
//	                rates and simulated-latency percentiles
//	GET /events   — the observability event stream over Server-Sent
//	                Events, one typed JSON event per frame
//
// The driver paces a YCSB-style workload on the host clock (-rate) and
// periodically injects crash/recover cycles, rebalance checks and
// compaction sweeps, so every event kind in internal/obs flows through
// the stream. With -campaign it additionally loops a scripted fault
// campaign (internal/faults) — correlated crashes, device degradation
// or fabric partitions — so the dashboard shows structured fault churn
// and graceful degradation, not just uniform crash cycles.
// SIGINT/SIGTERM shut the server down cleanly (exit 0).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cxl0/internal/core"
	"cxl0/internal/faults"
	"cxl0/internal/kv"
	"cxl0/internal/obs"
	"cxl0/internal/pool"
	"cxl0/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	clusters := flag.Int("clusters", 2, "pooled cluster count")
	shards := flag.Int("shards", 2, "shards per cluster")
	strategyF := flag.String("strategy", "group", "persistence strategy (mstore,flush,rflush,gpf,group,ranged)")
	pipeline := flag.Int("pipeline", 2, "commit pipeline depth for batched strategies (1 = blocking commit)")
	cacheCap := flag.Int("cache", 256, "per-front-end read-cache entry capacity (0 disables the cache and prefetcher)")
	workloadF := flag.String("workload", "A", "YCSB workload (A,B,C,D,E)")
	keys := flag.Int("keys", 500, "preloaded keyspace size")
	rate := flag.Int("rate", 500, "target operations per host second")
	crashEvery := flag.Int("crash-every", 4000, "ops between crash+recover cycles (0 disables)")
	rebalanceEvery := flag.Int("rebalance-every", 1500, "ops between rebalance checks (0 disables)")
	compactEvery := flag.Int("compact-every", 2500, "ops between compaction sweeps (0 disables)")
	campaignF := flag.String("campaign", "", "looping fault-campaign class (uniform, correlated, degraded, partitioned; empty disables)")
	campaignEvery := flag.Int("campaign-every", 2000, "ops between campaign fault windows")
	seed := flag.Int64("seed", 1, "workload seed")
	busSize := flag.Int("bus", obs.DefaultBusSize, "event bus ring size")
	flag.Parse()

	strat, err := kv.ParseStrategy(*strategyF)
	if err != nil {
		return err
	}
	spec, err := workload.YCSB(*workloadF)
	if err != nil {
		return err
	}
	spec.Keys = *keys
	if spec.ScanPct > 0 && spec.MaxScanLen <= 0 {
		spec.MaxScanLen = 16
	}
	if *rate <= 0 {
		return fmt.Errorf("cxl0-serve: -rate must be positive")
	}
	if *campaignF != "" {
		if *campaignEvery <= 0 {
			return fmt.Errorf("cxl0-serve: -campaign-every must be positive")
		}
		// Validate the class name up front; drive rebuilds the schedule
		// each cycle.
		if _, err := faults.ForClass(*campaignF, 1, 1, 1); err != nil {
			return err
		}
	}

	r, err := pool.Open(pool.Config{
		Clusters: *clusters,
		Store: kv.Config{
			Shards: *shards, Strategy: strat, Batch: 16,
			// Continuous serving: auto-compaction keeps the logs
			// reusable indefinitely.
			Capacity: 4096, CompactAtFill: 0.85,
			PipelineDepth: *pipeline,
			// Each pooled front end gets its own coherent read cache and
			// speculative prefetcher (see docs/caching.md).
			ReadCache: *cacheCap, Prefetch: *cacheCap > 0,
			Seed: *seed + 1,
		},
	})
	if err != nil {
		return err
	}
	bus := obs.NewBus(*busSize)
	stats := obs.NewStats()
	r.Observe(obs.NewRecorder(bus, stats))

	s := &server{
		db: r, bus: bus, stats: stats,
		spec: spec, started: time.Now(), //cxl0:hostclock — dashboard uptime, not sim state
		campaign: *campaignF,
	}
	for k := 0; k < spec.Keys; k++ {
		if _, err := r.Put(core.Val(k), core.Val(k+1)); err != nil {
			return fmt.Errorf("preload key %d: %w", k, err)
		}
	}
	if err := r.Sync(); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.drive(ctx, *rate, *seed, *crashEvery, *rebalanceEvery, *compactEvery, *campaignF, *campaignEvery)
	}()

	srv := &http.Server{Addr: *addr, Handler: s.mux()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	campaignNote := ""
	if *campaignF != "" {
		campaignNote = fmt.Sprintf(", %s campaign every %d ops", *campaignF, *campaignEvery)
	}
	pipeNote := ""
	if *pipeline > 1 && strat.Batched() {
		pipeNote = fmt.Sprintf(", commit pipeline K=%d", *pipeline)
	}
	log.Printf("cxl0-serve: %d cluster(s) × %d shard(s), %s strategy%s, workload %s at %d ops/s%s on %s",
		*clusters, *shards, strat, pipeNote, spec.Name, *rate, campaignNote, ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-errc:
		return err
	}
	// Graceful drain; SSE handlers watch ctx and exit within a poll
	// interval.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	wg.Wait()
	log.Printf("cxl0-serve: drained after %d ops, bye", s.ops.Load())
	return nil
}

// server bundles the observed pooled service behind the HTTP handlers.
type server struct {
	db       *pool.Router
	bus      *obs.Bus
	stats    *obs.Stats
	spec     workload.Spec
	started  time.Time
	campaign string // looping fault-campaign class, "" when disabled

	ops         atomic.Uint64 // workload ops driven
	failed      atomic.Uint64 // ops lost to a crashed shard (data at risk)
	unavailable atomic.Uint64 // ops denied by a fabric partition (data intact)
	partial     atomic.Uint64 // fan-outs that degraded to a partial result
}

// mux routes the three endpoints; shared with the handler tests.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.dashboard)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/events", s.events)
	return mux
}

// drive paces the workload on the host clock until ctx is done. Failures
// from a shard that is down mid-churn are counted, not fatal — a live
// service keeps serving what it can. When campaignClass is set, a
// scripted fault campaign loops forever: each cycle spans four fault
// windows, then Finish() heals and recovers everything before the next
// cycle starts, so the dashboard shows repeated inject→degrade→restore
// arcs.
func (s *server) drive(ctx context.Context, rate int, seed int64, crashEvery, rebalanceEvery, compactEvery int, campaignClass string, campaignEvery int) {
	gen := workload.NewGenerator(s.spec, seed)
	interval := time.Second / time.Duration(rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	// Paces request injection on the host clock; the workload itself is
	// seeded and the store's clock is simulated.
	tick := time.NewTicker(interval) //cxl0:hostclock
	defer tick.Stop()

	var eng *faults.Engine
	var sched *faults.Campaign
	horizon, cycle := 0, 0
	if campaignClass != "" {
		// The +1 makes the last window's At index (4×every) land inside
		// the cycle, so all four windows fire before Finish().
		horizon = 4*campaignEvery + 1
		var err error
		sched, err = faults.ForClass(campaignClass, horizon, s.db.NumShards(), campaignEvery)
		if err != nil {
			log.Printf("drive: campaign: %v", err)
			return
		}
		eng = faults.New(s.db, sched)
	}

	crashShard := 0
	for i := 1; ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if eng != nil {
			if c := (i - 1) / horizon; c != cycle {
				if err := eng.Finish(); err != nil {
					log.Printf("drive: campaign finish: %v", err)
					s.failed.Add(1)
				}
				eng = faults.New(s.db, sched)
				cycle = c
			}
			if err := eng.Step((i - 1) % horizon); err != nil {
				log.Printf("drive: campaign step: %v", err)
				s.failed.Add(1)
			}
		}
		if crashEvery > 0 && i%crashEvery == 0 {
			// Rotate over healthy shards only: injecting into a shard the
			// campaign already holds down (or off the fabric) would
			// double-fault it and break the campaign's outage accounting.
			hs := s.db.Health()
			for probe := 0; probe < len(hs); probe++ {
				cand := (crashShard + probe) % len(hs)
				if hs[cand].Down || hs[cand].Partitioned {
					continue
				}
				crashShard = cand + 1
				s.db.Crash(cand)
				if _, err := s.db.Recover(cand); err != nil {
					s.failed.Add(1)
				}
				break
			}
		}
		if rebalanceEvery > 0 && i%rebalanceEvery == 0 {
			if _, err := s.db.Rebalance(); err != nil {
				s.failed.Add(1)
			}
		}
		if compactEvery > 0 && i%compactEvery == 0 {
			if _, err := s.db.Compact(); err != nil {
				s.failed.Add(1)
			}
		}
		op := gen.Next()
		var err error
		switch op.Kind {
		case workload.OpRead:
			_, _, err = s.db.Get(core.Val(op.Key))
		case workload.OpUpdate, workload.OpInsert:
			_, err = s.db.Put(core.Val(op.Key), core.Val(op.Value))
		case workload.OpScan:
			_, err = s.db.Scan(core.Val(op.Key), math.MaxInt64, op.ScanLen)
		}
		s.ops.Add(1)
		var partial *kv.PartialResultError
		switch {
		case err == nil:
		case errors.As(err, &partial):
			s.partial.Add(1)
		case errors.Is(err, kv.ErrUnavailable):
			s.unavailable.Add(1)
		default:
			s.failed.Add(1)
		}
	}
}

// shardRow is one per-shard gauge row of the /metrics snapshot.
type shardRow struct {
	Shard     int     `json:"shard"`
	Cluster   int     `json:"cluster"`
	BusyNS    float64 `json:"busy_ns"`
	BusyShare float64 `json:"busy_share"`
	ChurnNS   float64 `json:"churn_ns"`
	Fill      float64 `json:"fill"`
	Live      int     `json:"live"`
	// Acked is the shard's acked-watermark position (log records
	// [0, acked) are acknowledged durable) and InFlight its current
	// commit-pipeline occupancy; see docs/pipeline.md.
	Acked    int `json:"acked"`
	InFlight int `json:"in_flight"`
}

// metricsSnapshot is the /metrics JSON document.
type metricsSnapshot struct {
	Workload  string  `json:"workload"`
	Clusters  int     `json:"clusters"`
	UptimeSec float64 `json:"uptime_sec"`
	Ops       uint64  `json:"ops"`
	Failed    uint64  `json:"failed"`
	SimNS     float64 `json:"sim_ns"`

	// Faults reports the fault-campaign surface: the configured class,
	// the graceful-degradation counters (see docs/faults.md for the
	// taxonomy) and which shards are currently impaired.
	Faults struct {
		Campaign    string `json:"campaign"`
		Unavailable uint64 `json:"unavailable"`
		Partial     uint64 `json:"partial_results"`
		Down        []int  `json:"down"`
		Partitioned []int  `json:"partitioned"`
		Degraded    []int  `json:"degraded"`
	} `json:"faults"`

	KV struct {
		Puts               uint64 `json:"puts"`
		Gets               uint64 `json:"gets"`
		Deletes            uint64 `json:"deletes"`
		Scans              uint64 `json:"scans"`
		ScannedPairs       uint64 `json:"scanned_pairs"`
		ScanDiscardedPairs uint64 `json:"scan_discarded_pairs"`
		Acked              uint64 `json:"acked"`
		Commits            uint64 `json:"commits"`
		DroppedPending     uint64 `json:"dropped_pending"`
		Recoveries         uint64 `json:"recoveries"`
		Migrations         uint64 `json:"migrations"`
		Compactions        uint64 `json:"compactions"`
		ReclaimedSlots     uint64 `json:"reclaimed_slots"`
		PipelinedCommits   uint64 `json:"pipelined_commits"`
		MaxInFlight        int    `json:"max_in_flight"`
		CacheHits          uint64 `json:"cache_hits"`
		CacheMisses        uint64 `json:"cache_misses"`
		SpeculativeFills   uint64 `json:"speculative_fills"`
		CacheSize          int    `json:"cache_size"`
	} `json:"kv"`

	Shards []shardRow   `json:"shards"`
	Obs    obs.Snapshot `json:"obs"`

	Bus struct {
		Published   uint64 `json:"published"`
		Ring        int    `json:"ring"`
		Subscribers int    `json:"subscribers"`
	} `json:"bus"`
}

func (s *server) snapshot() metricsSnapshot {
	m := s.db.Metrics()
	var doc metricsSnapshot
	doc.Workload = s.spec.Name
	doc.Clusters = s.db.NumClusters()
	doc.UptimeSec = time.Since(s.started).Seconds() //cxl0:hostclock — dashboard uptime
	doc.Ops = s.ops.Load()
	doc.Failed = s.failed.Load()
	doc.SimNS = s.db.NowNS()
	doc.Faults.Campaign = s.campaign
	doc.Faults.Unavailable = s.unavailable.Load()
	doc.Faults.Partial = s.partial.Load()
	doc.Faults.Down = []int{}
	doc.Faults.Partitioned = []int{}
	doc.Faults.Degraded = []int{}
	for _, h := range s.db.Health() {
		if h.Down {
			doc.Faults.Down = append(doc.Faults.Down, h.Shard)
		}
		if h.Partitioned {
			doc.Faults.Partitioned = append(doc.Faults.Partitioned, h.Shard)
		}
		if h.DegradeFactor > 1 {
			doc.Faults.Degraded = append(doc.Faults.Degraded, h.Shard)
		}
	}
	doc.KV.Puts, doc.KV.Gets, doc.KV.Deletes = m.Puts, m.Gets, m.Deletes
	doc.KV.Scans, doc.KV.ScannedPairs, doc.KV.ScanDiscardedPairs = m.Scans, m.ScannedPairs, m.ScanDiscardedPairs
	doc.KV.Acked, doc.KV.Commits, doc.KV.DroppedPending = m.Acked, m.Commits, m.DroppedPending
	doc.KV.Recoveries, doc.KV.Migrations = m.Recoveries, m.Migrations
	doc.KV.Compactions, doc.KV.ReclaimedSlots = m.Compactions, m.ReclaimedSlots
	doc.KV.PipelinedCommits, doc.KV.MaxInFlight = m.PipelinedCommits, m.MaxInFlight
	doc.KV.CacheHits, doc.KV.CacheMisses = m.CacheHits, m.CacheMisses
	doc.KV.SpeculativeFills, doc.KV.CacheSize = m.SpeculativeFills, m.CacheSize
	totalBusy := 0.0
	for _, b := range m.PerShardBusyNS {
		totalBusy += b
	}
	perCluster := s.db.NumShards() / s.db.NumClusters()
	for i, b := range m.PerShardBusyNS {
		row := shardRow{Shard: i, Cluster: i / perCluster, BusyNS: b}
		if totalBusy > 0 {
			row.BusyShare = b / totalBusy
		}
		if i < len(m.PerShardChurnNS) {
			row.ChurnNS = m.PerShardChurnNS[i]
		}
		if i < len(m.PerShardFill) {
			row.Fill = m.PerShardFill[i]
		}
		if i < len(m.PerShardLive) {
			row.Live = m.PerShardLive[i]
		}
		if i < len(m.PerShardAcked) {
			row.Acked = m.PerShardAcked[i]
		}
		if i < len(m.PerShardInFlight) {
			row.InFlight = m.PerShardInFlight[i]
		}
		doc.Shards = append(doc.Shards, row)
	}
	doc.Obs = s.stats.Snapshot()
	doc.Bus.Published = s.bus.Seq()
	doc.Bus.Ring = s.bus.Size()
	doc.Bus.Subscribers = s.bus.Subscribers()
	return doc
}

func (s *server) metrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.snapshot()); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("metrics: %v", err)
	}
}

// events streams the bus over Server-Sent Events: one frame per event,
// with the bus sequence as the SSE id and the event kind as the SSE
// event name. A comment frame every poll interval keeps idle connections
// alive.
func (s *server) events(w http.ResponseWriter, req *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.bus.Subscribe()
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": cxl0-serve event stream\n\n")
	fl.Flush()
	ctx := req.Context()
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		evs := sub.Next(64, time.Second)
		if len(evs) == 0 {
			if _, err := fmt.Fprintf(w, ": idle\n\n"); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data); err != nil {
				return
			}
		}
		if d := sub.Dropped(); d > 0 {
			fmt.Fprintf(w, ": dropped %d (slow consumer)\n\n", d)
		}
		fl.Flush()
	}
}

func (s *server) dashboard(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}
