package main

// dashboardHTML is the whole ops dashboard: one self-contained page, no
// external assets. It polls /metrics every 2s and tails /events over
// SSE. Visual conventions follow the repo's chart rules: magnitude bars
// are a single hue with the value always printed as text (the bar table
// doubles as the table view), event kinds get a fixed-order categorical
// chip whose label is always text — color never carries identity alone —
// and both light and dark palettes are validated for CVD separation.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>cxl0-serve — live ops</title>
<style>
  :root {
    color-scheme: light;
    --surface: #fcfcfb; --panel: #f4f3f1; --line: #e2e1dd;
    --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #8a8984;
    --busy: #2a78d6; --fill: #1baf7a;
    --k-op: #2a78d6; --k-commit: #eb6834; --k-migration: #1baf7a;
    --k-compaction: #eda100; --k-crash: #e87ba4; --k-recover: #008300;
    --k-rebalance: #4a3aa7; --k-partition: #8a5cd6; --k-heal: #0e8f8f;
    --k-degrade: #a06a00;
    --k-hit: #5a8a00; --k-miss: #b04a2a; --k-speculative: #5c6bd6;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface: #1a1a19; --panel: #242423; --line: #3a3936;
      --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #8a8984;
      --busy: #3987e5; --fill: #199e70;
      --k-op: #3987e5; --k-commit: #d95926; --k-migration: #199e70;
      --k-compaction: #c98500; --k-crash: #d55181; --k-recover: #008300;
      --k-rebalance: #9085e9; --k-partition: #c06ad0; --k-heal: #2ab3ba;
      --k-degrade: #c98a33;
      --k-hit: #7aa62a; --k-miss: #d06a45; --k-speculative: #8a96e9;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; background: var(--surface); color: var(--ink-1);
    font: 14px/1.45 system-ui, sans-serif; padding: 20px;
  }
  h1 { font-size: 18px; margin: 0 0 2px; }
  .sub { color: var(--ink-2); margin-bottom: 18px; font-size: 13px; }
  .tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(130px, 1fr)); gap: 10px; margin-bottom: 20px; }
  .tile { background: var(--panel); border: 1px solid var(--line); border-radius: 8px; padding: 10px 12px; }
  .tile .v { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; }
  .tile .l { color: var(--ink-2); font-size: 12px; }
  .cols { display: grid; grid-template-columns: 1fr 1fr; gap: 18px; }
  @media (max-width: 900px) { .cols { grid-template-columns: 1fr; } }
  section { background: var(--panel); border: 1px solid var(--line); border-radius: 8px; padding: 14px; margin-bottom: 18px; }
  section h2 { font-size: 13px; text-transform: uppercase; letter-spacing: .05em; color: var(--ink-2); margin: 0 0 10px; }
  table { width: 100%; border-collapse: collapse; font-variant-numeric: tabular-nums; }
  th { text-align: right; color: var(--ink-2); font-weight: 500; font-size: 12px; padding: 3px 8px; border-bottom: 1px solid var(--line); }
  th:first-child, td:first-child { text-align: left; }
  td { text-align: right; padding: 3px 8px; color: var(--ink-1); }
  tr:hover td { background: var(--line); }
  .barcell { width: 38%; }
  .bar { display: flex; align-items: center; gap: 6px; }
  .bar .track { flex: 1; height: 8px; background: var(--line); border-radius: 4px; overflow: hidden; }
  .bar .fillbar { height: 100%; border-radius: 4px; background: var(--busy); }
  .bar.fillkind .fillbar { background: var(--fill); }
  .bar .num { min-width: 48px; color: var(--ink-2); font-size: 12px; }
  #log { font: 12px/1.5 ui-monospace, monospace; max-height: 420px; overflow-y: auto; }
  .ev { display: flex; gap: 8px; align-items: baseline; padding: 1px 0; white-space: nowrap; }
  .chip { display: inline-flex; align-items: center; gap: 4px; min-width: 92px; color: var(--ink-2); }
  .chip i { width: 8px; height: 8px; border-radius: 50%; display: inline-block; }
  .ev .det { color: var(--ink-1); overflow: hidden; text-overflow: ellipsis; }
  .muted { color: var(--ink-3); }
</style>
</head>
<body>
<h1>cxl0-serve</h1>
<div class="sub" id="sub">connecting&hellip;</div>

<div class="tiles" id="tiles"></div>

<div class="cols">
  <div>
    <section>
      <h2>Shards — busy share, log fill &amp; commit pipeline</h2>
      <table id="shards"><thead><tr>
        <th>shard</th><th>cluster</th><th class="barcell">busy share</th>
        <th class="barcell">fill</th><th>live</th>
        <th title="acked-watermark position: log records below it are acknowledged durable">acked</th>
        <th title="commit flushes currently in flight">in-flight</th>
      </tr></thead><tbody></tbody></table>
    </section>
    <section>
      <h2>Latency by op (simulated &micro;s)</h2>
      <table id="lat"><thead><tr>
        <th>op</th><th>count</th><th>rate/s</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th>
      </tr></thead><tbody></tbody></table>
    </section>
  </div>
  <div>
    <section>
      <h2>Event stream <span class="muted" id="evcount"></span></h2>
      <div id="log"></div>
    </section>
  </div>
</div>

<script>
"use strict";
var fmt = function (n) {
  if (n >= 1e9) return (n / 1e9).toFixed(2) + "B";
  if (n >= 1e6) return (n / 1e6).toFixed(2) + "M";
  if (n >= 1e4) return (n / 1e3).toFixed(1) + "k";
  return String(Math.round(n * 100) / 100);
};
var us = function (ns) { return (ns / 1000).toFixed(1); };
var el = function (id) { return document.getElementById(id); };

function tile(label, value, title) {
  return '<div class="tile" title="' + (title || label) + '">' +
    '<div class="v">' + value + '</div><div class="l">' + label + '</div></div>';
}

function barCell(share, kind, text) {
  var pct = Math.max(0, Math.min(100, share * 100));
  return '<div class="bar' + (kind === "fill" ? " fillkind" : "") + '">' +
    '<span class="track"><span class="fillbar" style="width:' + pct.toFixed(1) + '%"></span></span>' +
    '<span class="num">' + text + '</span></div>';
}

function render(m) {
  var f = m.faults || {};
  var down = f.down || [], cut = f.partitioned || [], slow = f.degraded || [];
  el("sub").textContent = "workload " + m.workload + " over " + m.clusters +
    " cluster(s) · up " + Math.round(m.uptime_sec) + "s · " +
    fmt(m.ops) + " ops driven (" + m.failed + " failed, " +
    (f.unavailable || 0) + " unavailable)" +
    (f.campaign ? " · " + f.campaign + " campaign" : "");
  var opsRate = 0;
  (m.obs.ops || []).forEach(function (o) { opsRate += o.rate_per_sec; });
  var cacheServed = (m.kv.cache_hits || 0) + (m.kv.cache_misses || 0);
  el("tiles").innerHTML =
    tile("sim time", fmt(m.sim_ns / 1e6) + " ms", "total simulated time consumed") +
    tile("events/s", fmt(opsRate), "op spans per host second (rolling 10s)") +
    tile("acked writes", fmt(m.kv.acked)) +
    tile("commits", fmt(m.kv.commits)) +
    tile("pipelined", fmt(m.kv.pipelined_commits) + " (K&le;" + (m.kv.max_in_flight || 0) + ")",
      "commit flushes issued through the async pipeline; deepest in-flight occupancy any shard reached") +
    tile("compactions", fmt(m.kv.compactions)) +
    tile("migrations", fmt(m.kv.migrations)) +
    tile("recoveries", fmt(m.kv.recoveries)) +
    tile("impaired", down.length + " / " + cut.length + " / " + slow.length,
      "shards down / partitioned / degraded right now" +
      (down.length ? " — down: " + down.join(",") : "") +
      (cut.length ? " — partitioned: " + cut.join(",") : "") +
      (slow.length ? " — degraded: " + slow.join(",") : "")) +
    tile("unavailable", fmt(f.unavailable || 0),
      "ops denied by a fabric partition (data intact); " +
      (f.partial_results || 0) + " fan-outs returned partial results") +
    tile("scan discard", fmt(m.kv.scan_discarded_pairs), "pairs fetched by pooled scans and cut in the merge") +
    tile("cache hits", cacheServed > 0 ? (m.kv.cache_hits / cacheServed * 100).toFixed(1) + "%" : "&mdash;",
      "read-cache hit rate: " + fmt(m.kv.cache_hits) + " hits / " + fmt(m.kv.cache_misses) +
      " misses · " + fmt(m.kv.speculative_fills) + " speculative fills · " +
      fmt(m.kv.cache_size) + " entries resident");

  var sh = "";
  var maxShare = 0;
  (m.shards || []).forEach(function (s) { maxShare = Math.max(maxShare, s.busy_share); });
  (m.shards || []).forEach(function (s) {
    sh += '<tr title="busy ' + fmt(s.busy_ns / 1e6) + ' ms, churn ' + fmt(s.churn_ns / 1e6) + ' ms">' +
      "<td>" + s.shard + "</td><td>" + s.cluster + "</td>" +
      '<td class="barcell">' + barCell(maxShare > 0 ? s.busy_share / maxShare : 0, "busy",
        (s.busy_share * 100).toFixed(1) + "%") + "</td>" +
      '<td class="barcell">' + barCell(s.fill, "fill", (s.fill * 100).toFixed(1) + "%") + "</td>" +
      "<td>" + s.live + "</td><td>" + (s.acked || 0) + "</td>" +
      "<td>" + (s.in_flight ? s.in_flight + "&times;" : "&mdash;") + "</td></tr>";
  });
  el("shards").tBodies[0].innerHTML = sh;

  var lt = "";
  (m.obs.ops || []).forEach(function (o) {
    lt += "<tr><td>" + o.op + "</td><td>" + fmt(o.count) + "</td><td>" + fmt(o.rate_per_sec) +
      "</td><td>" + us(o.mean_ns) + "</td><td>" + us(o.p50_ns) + "</td><td>" +
      us(o.p95_ns) + "</td><td>" + us(o.p99_ns) + "</td></tr>";
  });
  el("lat").tBodies[0].innerHTML = lt ||
    '<tr><td colspan="7" class="muted">no op spans yet</td></tr>';
}

function poll() {
  fetch("/metrics").then(function (r) { return r.json(); }).then(render)
    .catch(function () { el("sub").textContent = "metrics unreachable — retrying"; });
}
poll();
setInterval(poll, 2000);

var seenEvents = 0;
function detail(e) {
  var parts = [];
  if (e.op) parts.push(e.op);
  if (e.step) parts.push(e.step);
  if (e.cluster >= 0) parts.push("c" + e.cluster);
  if (e.shard >= 0) parts.push("sh" + e.shard);
  if (e.bucket >= 0) parts.push("b" + e.bucket + " " + e.from + "→" + e.to);
  if (e.kind === "degrade" && e.n) parts.push("×" + e.n / 100);
  else if (e.n) parts.push("n=" + e.n);
  if (e.acked) parts.push("acked=" + e.acked);
  if (e.kind === "commit" && e.depth > 1) parts.push("K=" + e.depth);
  if (e.queue_ns > 0) parts.push("q " + us(e.queue_ns) + "µs");
  if (e.lost) parts.push("lost=" + e.lost);
  var cost = e.end_ns - e.start_ns;
  if (cost > 0) parts.push(us(cost) + "µs");
  return parts.join(" ");
}
function addEvent(e) {
  seenEvents++;
  var log = el("log");
  var row = document.createElement("div");
  row.className = "ev";
  row.innerHTML = '<span class="chip"><i style="background:var(--k-' + e.kind + ')"></i>' +
    e.kind + "</span>" + '<span class="muted">#' + e.seq + "</span>" +
    '<span class="det">' + detail(e) + "</span>";
  log.insertBefore(row, log.firstChild);
  while (log.childNodes.length > 60) log.removeChild(log.lastChild);
  el("evcount").textContent = "· " + seenEvents + " received";
}
var es = new EventSource("/events");
["op", "commit", "migration", "compaction", "crash", "recover", "rebalance",
 "partition", "heal", "degrade", "hit", "miss", "speculative"]
  .forEach(function (kind) {
    es.addEventListener(kind, function (msg) { addEvent(JSON.parse(msg.data)); });
  });
es.onerror = function () { el("evcount").textContent = "· stream reconnecting"; };
</script>
</body>
</html>
`
