// Command cxl0-flitbench compares persistence strategies (§6.1) on the
// simulated CXL clock: simulated nanoseconds per high-level operation for
// each workload, strategy, and data placement.
//
// Expected shape (see EXPERIMENTS.md): no-persist sets the durability-free
// floor; among the sound strategies, the FliT transformations beat
// MStore-everything on read-mostly and RMW-heavy workloads, and the §6.1
// owner-local LFlush optimisation pays off when the data lives on the
// writing machine.
package main

import (
	"flag"
	"fmt"

	"cxl0/internal/flit"
	"cxl0/internal/flitbench"
)

func main() {
	ops := flag.Int("ops", 2000, "timed operations per cell")
	ablations := flag.Bool("ablations", false, "also run the ablation studies")
	flag.Parse()
	defer func() {
		if *ablations {
			printAblations(*ops)
		}
	}()

	fmt.Println("§6.1 — persistence-strategy cost on the simulated CXL clock (sim ns/op)")
	fmt.Println("========================================================================")
	for _, placement := range []flitbench.Placement{flitbench.Remote, flitbench.Local} {
		fmt.Printf("\ndata placement: %s\n", placement)
		fmt.Printf("  %-17s", "workload")
		for _, s := range flit.Strategies {
			fmt.Printf("%15s", s)
		}
		fmt.Println()
		for _, w := range flitbench.Workloads {
			fmt.Printf("  %-17s", w)
			for _, s := range flit.Strategies {
				st, err := flitbench.Run(flitbench.Config{
					Workload: w, Strategy: s, Placement: placement, Ops: *ops, Seed: 1,
				})
				if err != nil {
					fmt.Printf("%15s", "err")
					continue
				}
				fmt.Printf("%15.0f", st.SimNSPerOp)
			}
			fmt.Println()
		}
	}
	fmt.Println("\n(no-persist and original-flit are NOT durably linearizable — see cxl0-check;")
	fmt.Println(" they appear here only as cost floors.)")
}

func printAblations(ops int) {
	fmt.Println("\nablation: eviction pressure (queue-pingpong, remote; sim ns/op)")
	evictStrats := []flit.Strategy{flit.CXL0FliT, flit.MStoreAll, flit.NoPersist}
	evict, err := flitbench.EvictionAblation(evictStrats, []int{0, 64, 8, 1}, ops)
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	fmt.Printf("  %-15s", "evict every")
	for _, p := range evict {
		if p.Strategy == flit.CXL0FliT {
			fmt.Printf("%10d", p.EvictEvery)
		}
	}
	fmt.Println()
	for _, s := range evictStrats {
		fmt.Printf("  %-15s", s)
		for _, p := range evict {
			if p.Strategy == s {
				fmt.Printf("%10.0f", p.SimNSPerOp)
			}
		}
		fmt.Println()
	}
	fmt.Println("  (the sound strategies bypass caches for remote mutations, so eviction")
	fmt.Println("   pressure barely moves them; cache-reliant no-persist degrades.)")

	fmt.Println("\nablation: local-access fraction (register mix; sim ns/op)")
	mix, err := flitbench.PlacementMixAblation(
		[]flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt},
		[]int{0, 25, 50, 75, 100}, ops)
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	fmt.Printf("  %-15s", "% local")
	for _, p := range mix {
		if p.Strategy == flit.CXL0FliT {
			fmt.Printf("%10d", p.LocalPercent)
		}
	}
	fmt.Println()
	for _, s := range []flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt} {
		fmt.Printf("  %-15s", s)
		for _, p := range mix {
			if p.Strategy == s {
				fmt.Printf("%10.0f", p.SimNSPerOp)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nablation: FliT counter-table size (reader false sharing, 128 reads)")
	table, err := flitbench.CounterTableAblation([]int{1, 8, 64, 1024}, 128)
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	fmt.Printf("  %-12s %-14s %s\n", "table size", "sim ns/read", "spurious helping flushes")
	for _, p := range table {
		fmt.Printf("  %-12d %-14.0f %d/128\n", p.TableSize, p.SimNSPerOp, p.HelpedLoads)
	}
}
