// Command cxl0-bench runs the KV service benchmark matrix: YCSB-style
// workloads × persistence strategies × shard counts × cluster counts ×
// hardware variants, all on the simulated CXL clock. It drives the kv.DB
// interface — a single cluster-backed store, or a pool.Router over
// several clusters for the pooled rows — prints a result table and
// writes a machine-readable BENCH_kv.json capturing the repo's
// performance trajectory.
//
// Example:
//
//	go run ./cmd/cxl0-bench -ops 2000 -workloads A,E -shards 1,4 -clusters 1,2
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"cxl0/internal/core"
	"cxl0/internal/faults"
	"cxl0/internal/kv"
	"cxl0/internal/workload"
)

// benchFile is the JSON artifact written after a run.
type benchFile struct {
	Paper     string            `json:"paper"`
	Benchmark string            `json:"benchmark"`
	Config    benchConfig       `json:"config"`
	Results   []workload.Result `json:"results"`
	Headline  headline          `json:"headline"`
}

type benchConfig struct {
	Ops            int      `json:"ops"`
	Keys           int      `json:"keys"`
	Batch          int      `json:"batch"`
	CrashEvery     int      `json:"crash_every"`
	EvictEvery     int      `json:"evict_every"`
	RebalanceEvery int      `json:"rebalance_every"`
	CompactAtFill  float64  `json:"compact_at_fill"`
	CampaignEvery  int      `json:"campaign_every"`
	Cache          int      `json:"cache"`
	Seed           int64    `json:"seed"`
	Workloads      []string `json:"workloads"`
	Strategies     []string `json:"strategies"`
	Shards         []int    `json:"shards"`
	Clusters       []int    `json:"clusters"`
	Variants       []string `json:"variants"`
	PipelineDepths []int    `json:"pipeline_depths"`
}

// headline summarizes the two batching claims: group commit amortizes the
// GPF against the per-op-GPF baseline, and ranged commit keeps per-op
// commit cost flat in shard count where group commit's fabric-wide GPF
// charge grows linearly.
type headline struct {
	GroupVsGPFSpeedup float64 `json:"group_vs_gpf_speedup"`
	GroupConfig       string  `json:"group_config"`
	// RangedVsGroupSpeedup compares RangedCommit against GroupCommit at
	// the largest shard count in the matrix, where GPF stalls hurt most.
	RangedVsGroupSpeedup float64 `json:"ranged_vs_group_speedup,omitempty"`
	RangedConfig         string  `json:"ranged_config,omitempty"`
	// *PerOpCostGrowth is the mean per-op simulated cost at the largest
	// shard count divided by the same at the smallest, averaged over
	// workload/variant combos: ~1.0 means commit cost is shard-local,
	// while fabric-wide charging grows linearly with the shard count.
	GroupPerOpCostGrowth  float64 `json:"group_per_op_cost_growth,omitempty"`
	RangedPerOpCostGrowth float64 `json:"ranged_per_op_cost_growth,omitempty"`
	// PipelinedThroughput is the async-commit-pipeline claim: for each
	// batched strategy × shard count × pipeline depth K > 1 in the sweep,
	// throughput against the identical blocking (K=1) static row, with
	// the ack/issue latency split pipelining trades for it. Ranged
	// commit overlaps flushes with appends (speedup grows with K up to
	// flush/append cost parity); group commit's fabric-wide GPF
	// serializes the pipeline, so its rows hover near 1x — the contrast
	// is the claim (see docs/pipeline.md).
	PipelinedThroughput []pipelinedHead `json:"pipelined_throughput,omitempty"`
	// ReadCache is the node-local read-cache claim: for each read-heavy
	// workload (B, C, D) × pooled cluster count in the cache sweep, the
	// cache-on row's hit rate and mean served-read latency against the
	// identical cache-off row. The cache serves repeated reads from
	// front-end DRAM and the predictor warms it speculatively, so the
	// reduction grows with the workload's read skew (see docs/caching.md).
	ReadCache []readCacheHead `json:"read_cache,omitempty"`
	// Skew: max/mean shard busy (traffic only) under the zipfian
	// update-heavy workload A — the static-routing row against the same
	// configuration with online rebalancing, at the pair with the
	// largest static/rebalanced improvement factor; pairs rebalancing
	// tames to <= 1.5 always outrank pairs it does not.
	// RebalanceSpeedup is the throughput ratio at that same pair.
	StaticMaxMeanBusy     float64 `json:"static_max_mean_busy"`
	RebalancedMaxMeanBusy float64 `json:"rebalanced_max_mean_busy"`
	ImbalanceConfig       string  `json:"imbalance_config"`
	RebalanceSpeedup      float64 `json:"rebalance_speedup"`
	// PooledThroughputScaling is the multi-cluster pooling claim: for
	// each pooled cluster count in the matrix, the throughput speedup of
	// the pooled service over the identical 1-cluster configuration,
	// averaged over every matched workload/strategy/shards/variant combo
	// (and the best single pairing). Clusters share nothing, so the
	// speedup is capacity scaling, not batching.
	PooledThroughputScaling []pooledScale `json:"pooled_throughput_scaling,omitempty"`
	// Compaction is the long-run capacity claim: the capacity-pressure
	// rows (per-shard logs sized far below the workload's append volume,
	// auto-compaction on) complete without ShardFullError, and this row
	// reports how hard compaction worked to make that possible.
	Compaction *compactionHead `json:"compaction,omitempty"`
	// FaultCampaign is the graceful-degradation claim: per campaign
	// class, throughput retention against the fault-free baseline and
	// the recovery-time distribution — scripted correlated crashes,
	// degraded devices and fabric partitions versus the uniform-churn
	// baseline (see internal/faults and docs/faults.md).
	FaultCampaign  faultCampaignHead `json:"fault_campaign"`
	BestThroughput float64           `json:"best_throughput_ops_per_sec"`
	BestConfig     string            `json:"best_config"`
}

// faultCampaignHead summarizes the campaign sweep: one entry per
// campaign class, each aggregated over the swept strategies at the
// sweep's fixed configuration.
type faultCampaignHead struct {
	// Config is the fixed workload/shards/variant the sweep ran at (the
	// campaign rows in results carry the per-strategy detail).
	Config string `json:"config"`
	// Classes reports each campaign class against the fault-free
	// baseline ("none"), in sweep order: uniform churn first, then the
	// structured classes, so every class reads against both baselines.
	Classes []campaignClassHead `json:"classes"`
}

// campaignClassHead is one campaign class's aggregate over the swept
// strategies.
type campaignClassHead struct {
	Campaign string `json:"campaign"`
	// Retention is the class's goodput over the fault-free baseline's
	// for the same strategy: the mean across strategies, and the
	// worst/best strategy with its ratio. Goodput counts served
	// operations only, so retention captures the clock-time cost of a
	// class (degradation, recovery churn) — but not denied load, which
	// costs nothing on the clock. Availability below captures that:
	// the served fraction of offered operations. Under the GPF-based
	// strategies a partition blocks commits cluster-wide, so
	// "partitioned" availability splits sharply by strategy — that
	// split is the blast-radius claim.
	MeanRetention  float64 `json:"mean_retention"`
	WorstRetention float64 `json:"worst_retention"`
	WorstStrategy  string  `json:"worst_strategy"`
	BestRetention  float64 `json:"best_retention"`
	BestStrategy   string  `json:"best_strategy"`
	// Availability is served ops over offered ops (1 on a class that
	// denies nothing, like "degraded").
	MeanAvailability          float64 `json:"mean_availability"`
	WorstAvailability         float64 `json:"worst_availability"`
	WorstAvailabilityStrategy string  `json:"worst_availability_strategy"`
	// Recovery-time distribution, worst case across the swept strategies
	// on the simulated clock: Outage* are crash-to-recovered windows,
	// RecoveryP95NS the recovery work itself, PartitionP95NS the
	// partition-to-heal window. Zero where the class injects no fault of
	// that kind.
	OutageP50NS    float64 `json:"outage_p50_ns"`
	OutageP95NS    float64 `json:"outage_p95_ns"`
	RecoveryP95NS  float64 `json:"recovery_p95_ns"`
	PartitionP95NS float64 `json:"partition_p95_ns"`
	// Denied-operation totals across the swept strategies: FailedOps hit
	// crashed shards, UnavailableOps partitioned ones, PartialResults
	// counts fan-out reads that degraded instead of failing.
	FailedOps      int `json:"failed_ops"`
	UnavailableOps int `json:"unavailable_ops"`
	PartialResults int `json:"partial_results"`
}

// compactionHead summarizes the capacity-pressure rows.
type compactionHead struct {
	// Compactions and ReclaimedSlots are totals across every pressure row.
	Compactions    int `json:"compactions"`
	ReclaimedSlots int `json:"reclaimed_slots"`
	// AppendsOverCapacity is the best row's append volume (preload +
	// writes) divided by its total log slots (Shards × Capacity): how far
	// past a bounded-lifetime log the run went.
	AppendsOverCapacity float64 `json:"appends_over_capacity"`
	// ThroughputVsUncapped compares the best pressure row against the
	// identical configuration with worst-case (never-compacting) capacity
	// — the throughput cost of running at sustained capacity pressure.
	ThroughputVsUncapped float64 `json:"throughput_vs_uncapped,omitempty"`
	Config               string  `json:"config"`
}

// pipelinedHead is one pipelined row's comparison against its blocking
// (depth-1) baseline row.
type pipelinedHead struct {
	Strategy string `json:"strategy"`
	Shards   int    `json:"shards"`
	Depth    int    `json:"pipeline_depth"`
	// ThroughputOpsPerSec is the pipelined row's throughput and
	// SpeedupVsBlocking its ratio over the identical K=1 static row.
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	SpeedupVsBlocking   float64 `json:"speedup_vs_blocking,omitempty"`
	// AckP99NS / IssueP99NS are the write-latency split: submit-to-
	// durable-ack (grows with queue depth) vs submit-to-return (what the
	// client blocks on — the pipeline's point).
	AckP99NS   float64 `json:"ack_p99_ns"`
	IssueP99NS float64 `json:"issue_p99_ns"`
	Config     string  `json:"config"`
}

// readCacheHead is one cache-on sweep row's comparison against its
// identical cache-off baseline row.
type readCacheHead struct {
	Workload string `json:"workload"`
	Clusters int    `json:"clusters"`
	// ReadCache is the row's cache capacity (the -cache flag) and
	// CacheHitRate its hits/(hits+misses) over served reads.
	ReadCache        int     `json:"read_cache"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	SpeculativeFills uint64  `json:"speculative_fills"`
	// ReadMeanNS / BaselineReadMeanNS are the mean served-read latencies
	// with and without the cache; ReadLatencyReduction is
	// 1 - ReadMeanNS/BaselineReadMeanNS (the fraction of read latency the
	// cache removed).
	ReadMeanNS           float64 `json:"read_mean_ns"`
	BaselineReadMeanNS   float64 `json:"baseline_read_mean_ns"`
	ReadLatencyReduction float64 `json:"read_latency_reduction"`
	ThroughputSpeedup    float64 `json:"throughput_speedup,omitempty"`
	Config               string  `json:"config"`
}

// pooledScale is one cluster count's pooling speedup over the matched
// 1-cluster rows.
type pooledScale struct {
	Clusters    int     `json:"clusters"`
	MeanSpeedup float64 `json:"mean_speedup"`
	BestSpeedup float64 `json:"best_speedup"`
	BestConfig  string  `json:"best_config"`
}

func main() {
	ops := flag.Int("ops", 2000, "measured operations per configuration")
	keys := flag.Int("keys", 400, "preloaded keyspace size")
	batch := flag.Int("batch", 16, "batched-commit batch size")
	crashEvery := flag.Int("crash-every", 700, "ops between crash+recover cycles (0 disables)")
	evictEvery := flag.Int("evict-every", 8, "background cache-eviction period (0 disables)")
	rebalanceEvery := flag.Int("rebalance-every", 250, "ops between load-rebalance checks on the rebalanced rows (0 disables those rows)")
	compactAtFill := flag.Float64("compact-at-fill", 0.85, "auto-compaction threshold of the capacity-pressure rows (0 disables those rows)")
	seed := flag.Int64("seed", 1, "workload seed")
	workloadsF := flag.String("workloads", "A,E", "comma-separated YCSB workloads (A,B,C,D,E)")
	strategiesF := flag.String("strategies", "mstore,flush,gpf,group,ranged", "comma-separated persistence strategies")
	shardsF := flag.String("shards", "1,4,12", "comma-separated per-cluster shard counts")
	clustersF := flag.String("clusters", "1,2,4", "comma-separated pooled cluster counts (rows with >1 pool that many clusters behind a router)")
	variantsF := flag.String("variants", "base,psn", "comma-separated hardware variants (base,psn,lwb)")
	pipelineDepthsF := flag.String("pipeline-depths", "1,2,4", "comma-separated commit-pipeline depths for the pipelined sweep (1 is the blocking baseline already in the matrix; depths >1 add sweep rows)")
	cacheCap := flag.Int("cache", 256, "read-cache entry capacity of the cache-sweep rows (0 disables those rows)")
	colocate := flag.Bool("colocate", false, "bind shard workers to the shard's machine")
	out := flag.String("out", "BENCH_kv.json", "output JSON path (empty disables)")
	flag.Parse()

	var specs []workload.Spec
	for _, name := range strings.Split(*workloadsF, ",") {
		spec, err := workload.YCSB(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		spec.Keys = *keys
		specs = append(specs, spec)
	}
	// Validate the whole strategy list up front — unknown names and
	// duplicates both fail here with the full picture, not 90 seconds
	// into the matrix (duplicates would silently run rows twice and
	// corrupt the headline comparisons).
	strategies, err := parseStrategies(*strategiesF)
	if err != nil {
		fatal(err)
	}
	shardCounts, err := parseCounts(*shardsF, "shard")
	if err != nil {
		fatal(err)
	}
	clusterCounts, err := parseCounts(*clustersF, "cluster")
	if err != nil {
		fatal(err)
	}
	pipelineDepths, err := parseCounts(*pipelineDepthsF, "pipeline depth")
	if err != nil {
		fatal(err)
	}
	var variants []core.Variant
	for _, name := range strings.Split(*variantsF, ",") {
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "base":
			variants = append(variants, core.Base)
		case "psn":
			variants = append(variants, core.PSN)
		case "lwb":
			variants = append(variants, core.LWB)
		default:
			fatal(fmt.Errorf("unknown variant %q (want base, psn or lwb)", name))
		}
	}

	fmt.Printf("KV service benchmark: %d ops/config, %d keys, batch %d, crash every %d ops, rebalance every %d ops, compact at %.0f%% fill\n",
		*ops, *keys, *batch, *crashEvery, *rebalanceEvery, 100**compactAtFill)
	fmt.Printf("%-4s %-8s %7s %3s %-9s %3s %14s %12s %10s %10s %6s %5s %5s\n",
		"wl", "strategy", "shards", "cl", "variant", "rb", "ops/sec(sim)", "p50 ns", "p99 ns", "rcvry ns", "mx/mn", "migr", "cmpct")

	var results []workload.Result
	for _, clusters := range clusterCounts {
		for _, spec := range specs {
			for _, variant := range variants {
				for _, nShards := range shardCounts {
					for _, strat := range strategies {
						// One static-routing row per configuration; for every
						// single-cluster multi-shard configuration also a row
						// with the online rebalancer enabled, so the report
						// carries the skew comparison the headline
						// summarizes. Pooled rows stay static: rebalancing is
						// cluster-local machinery already measured at one
						// cluster, and the pooled rows exist to isolate the
						// capacity-scaling claim.
						rebalances := []int{0}
						if *rebalanceEvery > 0 && nShards > 1 && clusters == 1 {
							rebalances = append(rebalances, *rebalanceEvery)
						}
						for _, rb := range rebalances {
							res, err := workload.Run(workload.Options{
								Spec: spec,
								Store: kv.Config{
									Shards:     nShards,
									Strategy:   strat,
									Batch:      *batch,
									Variant:    variant,
									EvictEvery: *evictEvery,
									Colocate:   *colocate,
								},
								Clusters:       clusters,
								Ops:            *ops,
								CrashEvery:     *crashEvery,
								RebalanceEvery: rb,
								Seed:           *seed,
							})
							if err != nil {
								fatal(fmt.Errorf("%s/%v/%d/%dcl/%v/rb=%d: %w", spec.Name, strat, nShards, clusters, variant, rb, err))
							}
							results = append(results, res)
							mark := " "
							if rb > 0 {
								mark = "+"
							}
							printRow(res, mark)
						}
						// Capacity-pressure row: the same configuration with
						// per-shard logs sized far below the workload's
						// append volume and auto-compaction keeping it
						// alive. Single-cluster, static-map, write-heavy
						// workloads only — the row exists to isolate the
						// long-run capacity claim, not to recross the
						// pooling and rebalancing ones.
						if clusters == 1 && *compactAtFill > 0 && spec.UpdatePct+spec.InsertPct >= 20 {
							res, err := workload.Run(workload.Options{
								Spec: spec,
								Store: kv.Config{
									Shards:        nShards,
									Strategy:      strat,
									Batch:         *batch,
									Variant:       variant,
									EvictEvery:    *evictEvery,
									Colocate:      *colocate,
									Capacity:      pressureCapacity(*keys, *ops*spec.InsertPct/100, nShards),
									CompactAtFill: *compactAtFill,
								},
								Clusters:   clusters,
								Ops:        *ops,
								CrashEvery: *crashEvery,
								Seed:       *seed,
							})
							if errors.Is(err, kv.ErrShardFull) {
								// Hash placement is binomial: with very
								// large keyspaces a shard's live set can
								// exceed the pressure row's slack, which no
								// compaction can fold. That invalidates this
								// stress row, not the matrix — skip it
								// loudly.
								fmt.Fprintf(os.Stderr, "cxl0-bench: skipping capacity-pressure row %s/%v/%d/%v: %v\n",
									spec.Name, strat, nShards, variant, err)
								continue
							}
							if err != nil {
								fatal(fmt.Errorf("%s/%v/%d/%v/capped: %w", spec.Name, strat, nShards, variant, err))
							}
							results = append(results, res)
							printRow(res, "c")
						}
					}
				}
			}
		}
	}

	// Fault-campaign sweep: every strategy × campaign class at one fixed
	// configuration (the first workload-A spec, the largest shard count,
	// the first variant, single cluster), plus a fault-free "none"
	// baseline per strategy for the retention ratios. With >1 pooled
	// cluster in the matrix, one pooled partitioned pair rides along to
	// show partition blast radius staying cluster-local.
	campaignEvery := *ops / 5
	if campaignEvery < 2 {
		campaignEvery = 2
	}
	faultSpec := specs[0]
	for _, s := range specs {
		if s.Name == "A" {
			faultSpec = s
		}
	}
	maxShards := shardCounts[0]
	for _, s := range shardCounts {
		if s > maxShards {
			maxShards = s
		}
	}
	maxClusters := clusterCounts[0]
	for _, c := range clusterCounts {
		if c > maxClusters {
			maxClusters = c
		}
	}
	campaignClasses := []string{"none", "uniform", "correlated", "degraded", "partitioned"}
	var faultRows []workload.Result
	runCampaign := func(strat kv.Strategy, clusters int, campaign *faults.Campaign) {
		res, err := workload.Run(workload.Options{
			Spec: faultSpec,
			Store: kv.Config{
				Shards:     maxShards,
				Strategy:   strat,
				Batch:      *batch,
				Variant:    variants[0],
				EvictEvery: *evictEvery,
				Colocate:   *colocate,
			},
			Clusters: clusters,
			Ops:      *ops,
			Seed:     *seed,
			Campaign: campaign,
		})
		if err != nil {
			fatal(fmt.Errorf("%s/%v/%d/%dcl/campaign=%s: %w", faultSpec.Name, strat, maxShards, clusters, campaign.Name, err))
		}
		faultRows = append(faultRows, res)
		printRow(res, "f")
	}
	for _, strat := range strategies {
		for _, class := range campaignClasses {
			runCampaign(strat, 1, campaignFor(class, *ops, maxShards, campaignEvery))
		}
	}
	if maxClusters > 1 {
		total := maxShards * maxClusters
		runCampaign(strategies[0], maxClusters, campaignFor("none", *ops, total, campaignEvery))
		runCampaign(strategies[0], maxClusters, campaignFor("partitioned", *ops, total, campaignEvery))
	}
	results = append(results, faultRows...)

	// Pipelined-commit sweep: the batched strategies at every shard count
	// with the async commit pipeline at each depth K > 1, on the same
	// workload-A spec, first variant, single cluster and churn settings
	// as the static rows — so each sweep row's K=1 comparator is the
	// already-measured static row, byte for byte.
	var pipeRows []workload.Result
	for _, strat := range strategies {
		if !strat.Batched() {
			continue
		}
		for _, nShards := range shardCounts {
			for _, depth := range pipelineDepths {
				if depth <= 1 {
					continue
				}
				res, err := workload.Run(workload.Options{
					Spec: faultSpec,
					Store: kv.Config{
						Shards:        nShards,
						Strategy:      strat,
						Batch:         *batch,
						Variant:       variants[0],
						EvictEvery:    *evictEvery,
						Colocate:      *colocate,
						PipelineDepth: depth,
					},
					Clusters:   1,
					Ops:        *ops,
					CrashEvery: *crashEvery,
					Seed:       *seed,
				})
				if err != nil {
					fatal(fmt.Errorf("%s/%v/%d/K%d: %w", faultSpec.Name, strat, nShards, depth, err))
				}
				pipeRows = append(pipeRows, res)
				printRow(res, "k")
			}
		}
	}
	results = append(results, pipeRows...)

	// Read-cache sweep: the read-heavy YCSB workloads (B, C, D) at every
	// pooled cluster count, each run twice — cache off and cache on (with
	// the prefetcher) at the -cache capacity — with everything else
	// identical, so each on-row's baseline is its off-row byte for byte.
	// Fixed at the largest shard count, the first variant and ranged
	// commit when swept (the read path is strategy-independent; one
	// strategy isolates the caching claim).
	var cacheRows []workload.Result
	if *cacheCap > 0 {
		cacheStrat := strategies[0]
		for _, s := range strategies {
			if s == kv.RangedCommit {
				cacheStrat = s
			}
		}
		for _, wl := range []string{"B", "C", "D"} {
			spec, err := workload.YCSB(wl)
			if err != nil {
				fatal(err)
			}
			spec.Keys = *keys
			for _, clusters := range clusterCounts {
				for _, capacity := range []int{0, *cacheCap} {
					res, err := workload.Run(workload.Options{
						Spec: spec,
						Store: kv.Config{
							Shards:     maxShards,
							Strategy:   cacheStrat,
							Batch:      *batch,
							Variant:    variants[0],
							EvictEvery: *evictEvery,
							Colocate:   *colocate,
							ReadCache:  capacity,
							Prefetch:   capacity > 0,
						},
						Clusters:   clusters,
						Ops:        *ops,
						CrashEvery: *crashEvery,
						CacheSweep: true,
						Seed:       *seed,
					})
					if err != nil {
						fatal(fmt.Errorf("%s/%v/%d/%dcl/cache=%d: %w", spec.Name, cacheStrat, maxShards, clusters, capacity, err))
					}
					cacheRows = append(cacheRows, res)
					printRow(res, "h")
				}
			}
		}
	}
	results = append(results, cacheRows...)

	head := summarize(results, shardCounts, *keys)
	head.PipelinedThroughput = summarizePipelined(pipeRows, results)
	head.ReadCache = summarizeReadCache(cacheRows)
	head.FaultCampaign = summarizeCampaigns(faultRows,
		fmt.Sprintf("%s/%d/%s", faultSpec.Name, maxShards, variants[0].String()))
	fmt.Println()
	for _, ch := range head.FaultCampaign.Classes {
		fmt.Printf("fault campaign %-11s retention: mean %.2f, worst %.2f (%s), best %.2f (%s); availability: mean %.2f, worst %.2f (%s)\n",
			ch.Campaign, ch.MeanRetention, ch.WorstRetention, ch.WorstStrategy, ch.BestRetention, ch.BestStrategy,
			ch.MeanAvailability, ch.WorstAvailability, ch.WorstAvailabilityStrategy)
	}
	if head.GroupConfig != "" {
		fmt.Printf("headline: group commit is %.1fx per-op GPF throughput (%s)\n",
			head.GroupVsGPFSpeedup, head.GroupConfig)
	}
	if head.RangedConfig != "" {
		fmt.Printf("headline: ranged commit is %.1fx group commit throughput at the largest shard count (%s)\n",
			head.RangedVsGroupSpeedup, head.RangedConfig)
	}
	if head.GroupPerOpCostGrowth > 0 && head.RangedPerOpCostGrowth > 0 {
		fmt.Printf("commit locality: per-op cost growth min->max shards: group %.2fx (fabric-wide GPF), ranged %.2fx (shard-local)\n",
			head.GroupPerOpCostGrowth, head.RangedPerOpCostGrowth)
	}
	for _, ph := range head.PipelinedThroughput {
		fmt.Printf("headline: pipelined %s at %d shards K=%d is %.2fx the blocking commit throughput (ack p99 %.0f ns, issue p99 %.0f ns)\n",
			ph.Strategy, ph.Shards, ph.Depth, ph.SpeedupVsBlocking, ph.AckP99NS, ph.IssueP99NS)
	}
	if head.ImbalanceConfig != "" {
		fmt.Printf("headline: rebalancing cuts workload A max/mean shard busy %.2fx -> %.2fx at %.2fx the static throughput (%s)\n",
			head.StaticMaxMeanBusy, head.RebalancedMaxMeanBusy, head.RebalanceSpeedup, head.ImbalanceConfig)
	}
	for _, ps := range head.PooledThroughputScaling {
		fmt.Printf("headline: pooling %d clusters is %.2fx the 1-cluster throughput on average (best %.2fx at %s)\n",
			ps.Clusters, ps.MeanSpeedup, ps.BestSpeedup, ps.BestConfig)
	}
	for _, rc := range head.ReadCache {
		fmt.Printf("headline: read cache on %s at %d clusters hits %.0f%% and cuts mean read latency %.0f%% (%d speculative fills, %s)\n",
			rc.Workload, rc.Clusters, 100*rc.CacheHitRate, 100*rc.ReadLatencyReduction, rc.SpeculativeFills, rc.Config)
	}
	if head.Compaction != nil {
		fmt.Printf("headline: compaction sustained %.1fx the log capacity in appends — %d compactions reclaimed %d slots, %.2fx the uncapped throughput (%s)\n",
			head.Compaction.AppendsOverCapacity, head.Compaction.Compactions,
			head.Compaction.ReclaimedSlots, head.Compaction.ThroughputVsUncapped, head.Compaction.Config)
	}
	if head.BestConfig != "" {
		fmt.Printf("best throughput: %.0f sim ops/sec (%s)\n", head.BestThroughput, head.BestConfig)
	}

	if *out != "" {
		file := benchFile{
			Paper:     "A Programming Model for Disaggregated Memory over CXL",
			Benchmark: "sharded durable KV service (internal/kv) under YCSB-style workloads (internal/workload)",
			Config: benchConfig{
				Ops: *ops, Keys: *keys, Batch: *batch, CrashEvery: *crashEvery,
				EvictEvery: *evictEvery, RebalanceEvery: *rebalanceEvery,
				CompactAtFill: *compactAtFill, CampaignEvery: campaignEvery,
				Cache: *cacheCap, Seed: *seed,
				Workloads: strings.Split(*workloadsF, ","), Strategies: strings.Split(*strategiesF, ","),
				Shards: shardCounts, Clusters: clusterCounts, Variants: strings.Split(*variantsF, ","),
				PipelineDepths: pipelineDepths,
			},
			Results:  results,
			Headline: head,
		}
		blob, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d results)\n", *out, len(results))
	}
}

// printRow prints one result line; mark distinguishes rebalanced ("+")
// and capacity-pressure ("c") rows.
func printRow(res workload.Result, mark string) {
	fmt.Printf("%-4s %-8s %7d %3d %-9s %3s %14.0f %12.0f %10.0f %10.0f %6.2f %5d %5d\n",
		res.Workload, res.Strategy, res.Shards, res.Clusters, res.Variant, mark,
		res.ThroughputOpsPerSec, res.P50NS, res.P99NS, res.RecoveryMeanNS,
		res.MaxMeanBusy, res.Migrations, res.Compactions)
}

// pressureCapacity sizes a capacity-pressure row's per-shard log: the
// expected per-shard live set (preload plus the workload's inserts) plus
// slack — far below the workload's append volume, so the run must
// compact repeatedly to survive, while the live set always folds.
func pressureCapacity(keys, inserts, shards int) int {
	return (keys+inserts)/shards + 64
}

// campaignFor builds one campaign class's schedule for the sweep's
// fixed op count and (global) shard count. "none" is the fault-free
// baseline: an empty campaign, so the row still runs the tolerant
// campaign path but injects nothing.
func campaignFor(class string, ops, shards, every int) *faults.Campaign {
	c, err := faults.ForClass(class, ops, shards, every)
	if err != nil {
		fatal(err)
	}
	return c
}

// summarizeCampaigns aggregates the campaign rows into the fault_campaign
// headline: per class, throughput retention against the same strategy's
// fault-free "none" row and the worst-case recovery-time percentiles.
func summarizeCampaigns(rows []workload.Result, config string) faultCampaignHead {
	head := faultCampaignHead{Config: config}
	// Retention compares goodput, not throughput: denied operations cost
	// nothing on the simulated clock, so a class that blocks lots of
	// writes would otherwise look faster than the baseline.
	base := map[string]float64{}
	for _, r := range rows {
		if r.Campaign == "none" {
			base[fmt.Sprintf("%s/%d", r.Strategy, r.Clusters)] = r.GoodputOpsPerSec
		}
	}
	for _, class := range []string{"uniform", "correlated", "degraded", "partitioned"} {
		ch := campaignClassHead{Campaign: class, WorstRetention: math.Inf(1), WorstAvailability: math.Inf(1)}
		n := 0
		for _, r := range rows {
			if r.Campaign != class {
				continue
			}
			if b := base[fmt.Sprintf("%s/%d", r.Strategy, r.Clusters)]; b > 0 {
				ret := r.GoodputOpsPerSec / b
				ch.MeanRetention += ret
				n++
				if ret < ch.WorstRetention {
					ch.WorstRetention, ch.WorstStrategy = ret, r.Strategy
				}
				if ret > ch.BestRetention {
					ch.BestRetention, ch.BestStrategy = ret, r.Strategy
				}
			}
			if r.Ops > 0 {
				avail := float64(r.Ops-r.FailedOps-r.UnavailableOps) / float64(r.Ops)
				ch.MeanAvailability += avail
				if avail < ch.WorstAvailability {
					ch.WorstAvailability, ch.WorstAvailabilityStrategy = avail, r.Strategy
				}
			}
			ch.OutageP50NS = math.Max(ch.OutageP50NS, r.OutageP50NS)
			ch.OutageP95NS = math.Max(ch.OutageP95NS, r.OutageP95NS)
			ch.RecoveryP95NS = math.Max(ch.RecoveryP95NS, r.RecoveryP95NS)
			ch.PartitionP95NS = math.Max(ch.PartitionP95NS, r.PartitionP95NS)
			ch.FailedOps += r.FailedOps
			ch.UnavailableOps += r.UnavailableOps
			ch.PartialResults += r.PartialResults
		}
		if n > 0 {
			ch.MeanRetention /= float64(n)
			ch.MeanAvailability /= float64(n)
		}
		if math.IsInf(ch.WorstRetention, 1) {
			ch.WorstRetention = 0
		}
		if math.IsInf(ch.WorstAvailability, 1) {
			ch.WorstAvailability = 0
		}
		head.Classes = append(head.Classes, ch)
	}
	return head
}

// summarizeReadCache derives the read_cache headline: each cache-on
// sweep row against its identical cache-off baseline, matched on
// workload and cluster count (the sweep varies nothing else).
func summarizeReadCache(rows []workload.Result) []readCacheHead {
	off := map[string]workload.Result{}
	for _, r := range rows {
		if r.ReadCache == 0 {
			off[fmt.Sprintf("%s/%d", r.Workload, r.Clusters)] = r
		}
	}
	var heads []readCacheHead
	for _, r := range rows {
		if r.ReadCache == 0 {
			continue
		}
		h := readCacheHead{
			Workload:         r.Workload,
			Clusters:         r.Clusters,
			ReadCache:        r.ReadCache,
			CacheHitRate:     r.CacheHitRate,
			SpeculativeFills: r.SpeculativeFills,
			ReadMeanNS:       r.ReadMeanNS,
			Config:           fmt.Sprintf("%s/%s/%d/%s/%dcl/cache%d", r.Workload, r.Strategy, r.Shards, r.Variant, r.Clusters, r.ReadCache),
		}
		if base, ok := off[fmt.Sprintf("%s/%d", r.Workload, r.Clusters)]; ok {
			h.BaselineReadMeanNS = base.ReadMeanNS
			if base.ReadMeanNS > 0 {
				h.ReadLatencyReduction = 1 - r.ReadMeanNS/base.ReadMeanNS
			}
			if base.ThroughputOpsPerSec > 0 {
				h.ThroughputSpeedup = r.ThroughputOpsPerSec / base.ThroughputOpsPerSec
			}
		}
		heads = append(heads, h)
	}
	return heads
}

// summarizePipelined derives the pipelined_throughput headline: each
// sweep row against its identical blocking (K=1) static row — matched
// on strategy/workload/shards/variant with single-cluster static
// routing, the same filter byKey uses inside summarize.
func summarizePipelined(pipeRows, all []workload.Result) []pipelinedHead {
	blocking := map[string]workload.Result{}
	for _, r := range all {
		if r.Campaign == "" && r.PipelineDepth == 0 && !r.CacheSweep &&
			r.RebalanceEvery == 0 && r.Clusters == 1 && r.CompactAtFill == 0 {
			blocking[fmt.Sprintf("%s/%s/%d/%s", r.Strategy, r.Workload, r.Shards, r.Variant)] = r
		}
	}
	var heads []pipelinedHead
	for _, r := range pipeRows {
		ph := pipelinedHead{
			Strategy:            r.Strategy,
			Shards:              r.Shards,
			Depth:               r.PipelineDepth,
			ThroughputOpsPerSec: r.ThroughputOpsPerSec,
			AckP99NS:            r.AckP99NS,
			IssueP99NS:          r.IssueP99NS,
			Config:              fmt.Sprintf("%s/%s/%d/%s/K%d", r.Workload, r.Strategy, r.Shards, r.Variant, r.PipelineDepth),
		}
		if base, ok := blocking[fmt.Sprintf("%s/%s/%d/%s", r.Strategy, r.Workload, r.Shards, r.Variant)]; ok && base.ThroughputOpsPerSec > 0 {
			ph.SpeedupVsBlocking = r.ThroughputOpsPerSec / base.ThroughputOpsPerSec
		}
		heads = append(heads, ph)
	}
	return heads
}

// summarize derives the headline claims from the full result matrix.
// Campaign rows are excluded: they run fault schedules no other row
// runs, so folding them into the batching/pooling/skew comparisons (or
// the best-throughput pick — the fault-free "none" baseline rows skip
// the default crash churn) would skew those claims; summarizeCampaigns
// reads them instead.
func summarize(all []workload.Result, shardCounts []int, keys int) headline {
	var results []workload.Result
	for _, r := range all {
		// Campaign, pipelined-sweep and cache-sweep rows run schedules/
		// configurations no other row runs; summarizeCampaigns,
		// summarizePipelined and summarizeReadCache read them instead.
		if r.Campaign == "" && r.PipelineDepth == 0 && !r.CacheSweep {
			results = append(results, r)
		}
	}
	var head headline
	minShards, maxShards := shardCounts[0], shardCounts[0]
	for _, s := range shardCounts {
		if s < minShards {
			minShards = s
		}
		if s > maxShards {
			maxShards = s
		}
	}
	// strategy/workload/shards/variant -> 1-cluster static-routing result
	// (the batching and cost-growth claims compare static single-cluster
	// rows apples to apples; rebalanced rows feed the skew headline below
	// and pooled rows the scaling headline).
	byKey := map[string]workload.Result{}
	for _, r := range results {
		if r.RebalanceEvery == 0 && r.Clusters == 1 && r.CompactAtFill == 0 {
			byKey[fmt.Sprintf("%s/%s/%d/%s", r.Strategy, r.Workload, r.Shards, r.Variant)] = r
		}
		if r.ThroughputOpsPerSec > head.BestThroughput {
			head.BestThroughput = r.ThroughputOpsPerSec
			head.BestConfig = fmt.Sprintf("%s/%s/%d/%s", r.Workload, r.Strategy, r.Shards, r.Variant)
			if r.Clusters > 1 {
				head.BestConfig += fmt.Sprintf("/%dclusters", r.Clusters)
			}
			if r.RebalanceEvery > 0 {
				head.BestConfig += "/rebalanced"
			}
			if r.CompactAtFill > 0 {
				head.BestConfig += "/capped"
			}
		}
	}

	// Compaction claim: total the capacity-pressure rows and report the
	// one that pushed the most appends through the least log, with its
	// throughput cost against the matching uncapped static row.
	for _, r := range results {
		if r.CompactAtFill == 0 {
			continue
		}
		if head.Compaction == nil {
			head.Compaction = &compactionHead{}
		}
		head.Compaction.Compactions += r.Compactions
		head.Compaction.ReclaimedSlots += r.ReclaimedSlots
		if r.Compactions == 0 || r.Shards*r.Capacity == 0 {
			continue
		}
		appends := float64(keys + r.Updates + r.Inserts)
		ratio := appends / float64(r.Shards*r.Capacity)
		if ratio > head.Compaction.AppendsOverCapacity {
			head.Compaction.AppendsOverCapacity = ratio
			head.Compaction.Config = fmt.Sprintf("%s/%s/%d/%s/cap%d", r.Workload, r.Strategy, r.Shards, r.Variant, r.Capacity)
			if base, ok := byKey[fmt.Sprintf("%s/%s/%d/%s", r.Strategy, r.Workload, r.Shards, r.Variant)]; ok && base.ThroughputOpsPerSec > 0 {
				head.Compaction.ThroughputVsUncapped = r.ThroughputOpsPerSec / base.ThroughputOpsPerSec
			}
		}
	}

	// Pooling claim: for every pooled static row with a matching
	// 1-cluster static row, the throughput ratio is pure capacity
	// scaling (same per-cluster configuration, same traffic).
	poolSum := map[int]float64{}
	poolN := map[int]int{}
	poolBest := map[int]pooledScale{}
	for _, r := range results {
		if r.Clusters <= 1 || r.RebalanceEvery != 0 {
			continue
		}
		single, ok := byKey[fmt.Sprintf("%s/%s/%d/%s", r.Strategy, r.Workload, r.Shards, r.Variant)]
		if !ok || single.ThroughputOpsPerSec <= 0 {
			continue
		}
		sp := r.ThroughputOpsPerSec / single.ThroughputOpsPerSec
		poolSum[r.Clusters] += sp
		poolN[r.Clusters]++
		if best := poolBest[r.Clusters]; sp > best.BestSpeedup {
			poolBest[r.Clusters] = pooledScale{
				Clusters:    r.Clusters,
				BestSpeedup: sp,
				BestConfig:  fmt.Sprintf("%s/%s/%d/%s", r.Workload, r.Strategy, r.Shards, r.Variant),
			}
		}
	}
	var clusterKeys []int
	for c := range poolN {
		clusterKeys = append(clusterKeys, c)
	}
	sort.Ints(clusterKeys)
	for _, c := range clusterKeys {
		ps := poolBest[c]
		ps.MeanSpeedup = poolSum[c] / float64(poolN[c])
		head.PooledThroughputScaling = append(head.PooledThroughputScaling, ps)
	}
	// perOp is the mean simulated service cost per operation, with crash-
	// recovery time excluded: recovery scans shrink with the per-shard log
	// under every strategy, and leaving them in would mask the commit-cost
	// scaling this metric is meant to expose. The exclusion covers the
	// recovering shard's elapsed span only; if a GroupCommit recovery ever
	// re-persists surviving pending records, its GPF's cross-charge to the
	// other shards stays in (a small upward bias on group's growth —
	// fabric-wide recovery is part of what the metric indicts).
	perOp := func(r workload.Result) float64 {
		if r.Ops == 0 {
			return 0
		}
		cost := r.TotalCostNS - r.RecoveryMeanNS*float64(r.Recoveries)
		return cost / float64(r.Ops)
	}
	// Skew headline: among workload-A pairs (static vs rebalanced, same
	// strategy/shards/variant), report the largest skew-improvement
	// factor — with pairs the rebalancer tames to <= 1.5 always
	// outranking pairs it does not, so an already-balanced configuration
	// (e.g. GPF commits, whose fabric-wide stall equalizes shards by
	// slowing them all) can never shadow a genuine taming.
	const skewTarget = 1.5
	tamed, bestScore := false, 0.0
	for _, r := range results {
		if r.RebalanceEvery == 0 || r.Workload != "A" || r.Shards < 2 || r.Clusters != 1 {
			continue
		}
		static, ok := byKey[fmt.Sprintf("%s/%s/%d/%s", r.Strategy, r.Workload, r.Shards, r.Variant)]
		if !ok || static.MaxMeanBusy <= 0 || r.MaxMeanBusy <= 0 {
			continue
		}
		score := static.MaxMeanBusy / r.MaxMeanBusy
		// A pair only gets tamed preference when rebalancing actually
		// improved it — a low-skew config that rebalancing worsened must
		// not shadow a genuine taming elsewhere in the matrix.
		isTamed := r.MaxMeanBusy <= skewTarget && score >= 1
		if (isTamed && !tamed) || (isTamed == tamed && score > bestScore) {
			tamed, bestScore = isTamed, score
			head.StaticMaxMeanBusy = static.MaxMeanBusy
			head.RebalancedMaxMeanBusy = r.MaxMeanBusy
			head.ImbalanceConfig = fmt.Sprintf("%s/%s/%d/%s", r.Workload, r.Strategy, r.Shards, r.Variant)
			if static.ThroughputOpsPerSec > 0 {
				head.RebalanceSpeedup = r.ThroughputOpsPerSec / static.ThroughputOpsPerSec
			}
		}
	}

	growthSum := map[string]float64{}
	growthN := map[string]int{}
	for _, r := range results {
		if r.RebalanceEvery > 0 || r.Clusters != 1 || r.CompactAtFill > 0 {
			continue
		}
		key := fmt.Sprintf("%s/%d/%s", r.Workload, r.Shards, r.Variant)
		switch r.Strategy {
		case kv.GroupCommit.String():
			// Group commit's amortization claim, against per-op GPF.
			if base, ok := byKey[fmt.Sprintf("%s/%s", kv.GPFEach, key)]; ok && base.ThroughputOpsPerSec > 0 {
				if sp := r.ThroughputOpsPerSec / base.ThroughputOpsPerSec; sp > head.GroupVsGPFSpeedup {
					head.GroupVsGPFSpeedup = sp
					head.GroupConfig = key
				}
			}
		case kv.RangedCommit.String():
			// Ranged commit's locality claim, against group commit at the
			// largest shard count.
			if r.Shards != maxShards {
				break
			}
			if base, ok := byKey[fmt.Sprintf("%s/%s", kv.GroupCommit, key)]; ok && base.ThroughputOpsPerSec > 0 {
				if sp := r.ThroughputOpsPerSec / base.ThroughputOpsPerSec; sp > head.RangedVsGroupSpeedup {
					head.RangedVsGroupSpeedup = sp
					head.RangedConfig = key
				}
			}
		}
		// Per-op cost growth from the smallest to the largest shard count,
		// averaged over workload/variant combos.
		if maxShards > minShards && r.Shards == maxShards &&
			(r.Strategy == kv.GroupCommit.String() || r.Strategy == kv.RangedCommit.String()) {
			small, ok := byKey[fmt.Sprintf("%s/%s/%d/%s", r.Strategy, r.Workload, minShards, r.Variant)]
			if ok && perOp(small) > 0 {
				growthSum[r.Strategy] += perOp(r) / perOp(small)
				growthN[r.Strategy]++
			}
		}
	}
	if n := growthN[kv.GroupCommit.String()]; n > 0 {
		head.GroupPerOpCostGrowth = growthSum[kv.GroupCommit.String()] / float64(n)
	}
	if n := growthN[kv.RangedCommit.String()]; n > 0 {
		head.RangedPerOpCostGrowth = growthSum[kv.RangedCommit.String()] / float64(n)
	}
	return head
}

// parseStrategies parses and validates the -strategies list in one pass:
// every name must be a known strategy and no strategy may repeat, so a
// bad list fails before the first benchmark row runs.
func parseStrategies(list string) ([]kv.Strategy, error) {
	var strategies []kv.Strategy
	seen := map[kv.Strategy]string{}
	for _, name := range strings.Split(list, ",") {
		s, err := kv.ParseStrategy(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[s]; dup {
			return nil, fmt.Errorf("duplicate strategy in -strategies: %q repeats %q (each row would run twice and skew the headlines)",
				strings.TrimSpace(name), prev)
		}
		seen[s] = strings.TrimSpace(name)
		strategies = append(strategies, s)
	}
	return strategies, nil
}

// parseCounts parses a comma-separated list of positive ints (-shards,
// -clusters), rejecting malformed entries and duplicates up front.
func parseCounts(list, what string) ([]int, error) {
	var counts []int
	seen := map[int]bool{}
	for _, s := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s count %q", what, s)
		}
		if seen[n] {
			return nil, fmt.Errorf("duplicate %s count %d", what, n)
		}
		seen[n] = true
		counts = append(counts, n)
	}
	return counts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxl0-bench:", err)
	os.Exit(1)
}
