// Command cxl0-bench runs the KV service benchmark matrix: YCSB-style
// workloads × persistence strategies × shard counts × hardware variants,
// all on the simulated CXL clock. It prints a result table and writes a
// machine-readable BENCH_kv.json capturing the repo's performance
// trajectory.
//
// Example:
//
//	go run ./cmd/cxl0-bench -ops 2000 -workloads A,E -shards 1,4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cxl0/internal/core"
	"cxl0/internal/kv"
	"cxl0/internal/workload"
)

// benchFile is the JSON artifact written after a run.
type benchFile struct {
	Paper     string            `json:"paper"`
	Benchmark string            `json:"benchmark"`
	Config    benchConfig       `json:"config"`
	Results   []workload.Result `json:"results"`
	Headline  headline          `json:"headline"`
}

type benchConfig struct {
	Ops        int      `json:"ops"`
	Keys       int      `json:"keys"`
	Batch      int      `json:"batch"`
	CrashEvery int      `json:"crash_every"`
	EvictEvery int      `json:"evict_every"`
	Seed       int64    `json:"seed"`
	Workloads  []string `json:"workloads"`
	Strategies []string `json:"strategies"`
	Shards     []int    `json:"shards"`
	Variants   []string `json:"variants"`
}

// headline summarizes the batching claim: group commit amortizes the GPF
// against the per-op-GPF baseline.
type headline struct {
	GroupVsGPFSpeedup float64 `json:"group_vs_gpf_speedup"`
	GroupConfig       string  `json:"group_config"`
	BestThroughput    float64 `json:"best_throughput_ops_per_sec"`
	BestConfig        string  `json:"best_config"`
}

func main() {
	ops := flag.Int("ops", 2000, "measured operations per configuration")
	keys := flag.Int("keys", 400, "preloaded keyspace size")
	batch := flag.Int("batch", 32, "group-commit batch size")
	crashEvery := flag.Int("crash-every", 700, "ops between crash+recover cycles (0 disables)")
	evictEvery := flag.Int("evict-every", 8, "background cache-eviction period (0 disables)")
	seed := flag.Int64("seed", 1, "workload seed")
	workloadsF := flag.String("workloads", "A,E", "comma-separated YCSB workloads (A,B,C,D,E)")
	strategiesF := flag.String("strategies", "mstore,flush,gpf,group", "comma-separated persistence strategies")
	shardsF := flag.String("shards", "1,4", "comma-separated shard counts")
	variantsF := flag.String("variants", "base,psn", "comma-separated hardware variants (base,psn,lwb)")
	colocate := flag.Bool("colocate", false, "bind shard workers to the shard's machine")
	out := flag.String("out", "BENCH_kv.json", "output JSON path (empty disables)")
	flag.Parse()

	var specs []workload.Spec
	for _, name := range strings.Split(*workloadsF, ",") {
		spec, err := workload.YCSB(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		spec.Keys = *keys
		specs = append(specs, spec)
	}
	var strategies []kv.Strategy
	for _, name := range strings.Split(*strategiesF, ",") {
		s, err := kv.ParseStrategy(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		strategies = append(strategies, s)
	}
	var shardCounts []int
	for _, s := range strings.Split(*shardsF, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad shard count %q", s))
		}
		shardCounts = append(shardCounts, n)
	}
	var variants []core.Variant
	for _, name := range strings.Split(*variantsF, ",") {
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "base":
			variants = append(variants, core.Base)
		case "psn":
			variants = append(variants, core.PSN)
		case "lwb":
			variants = append(variants, core.LWB)
		default:
			fatal(fmt.Errorf("unknown variant %q (want base, psn or lwb)", name))
		}
	}

	fmt.Printf("KV service benchmark: %d ops/config, %d keys, batch %d, crash every %d ops\n",
		*ops, *keys, *batch, *crashEvery)
	fmt.Printf("%-4s %-8s %7s %-9s %14s %12s %10s %10s %12s\n",
		"wl", "strategy", "shards", "variant", "ops/sec(sim)", "p50 ns", "p95 ns", "p99 ns", "recovery ns")

	var results []workload.Result
	perOpGPF := map[string]float64{}  // workload/shards/variant -> gpf throughput
	groupRes := map[string]*workload.Result{}
	for _, spec := range specs {
		for _, variant := range variants {
			for _, nShards := range shardCounts {
				for _, strat := range strategies {
					res, err := workload.Run(workload.Options{
						Spec: spec,
						Store: kv.Config{
							Shards:     nShards,
							Strategy:   strat,
							Batch:      *batch,
							Variant:    variant,
							EvictEvery: *evictEvery,
							Colocate:   *colocate,
						},
						Ops:        *ops,
						CrashEvery: *crashEvery,
						Seed:       *seed,
					})
					if err != nil {
						fatal(fmt.Errorf("%s/%v/%d/%v: %w", spec.Name, strat, nShards, variant, err))
					}
					results = append(results, res)
					key := fmt.Sprintf("%s/%d/%s", res.Workload, res.Shards, res.Variant)
					if strat == kv.GPFEach {
						perOpGPF[key] = res.ThroughputOpsPerSec
					}
					if strat == kv.GroupCommit {
						r := res
						groupRes[key] = &r
					}
					fmt.Printf("%-4s %-8s %7d %-9s %14.0f %12.0f %10.0f %10.0f %12.0f\n",
						res.Workload, res.Strategy, res.Shards, res.Variant,
						res.ThroughputOpsPerSec, res.P50NS, res.P95NS, res.P99NS, res.RecoveryMeanNS)
				}
			}
		}
	}

	var head headline
	for key, g := range groupRes {
		if base, ok := perOpGPF[key]; ok && base > 0 {
			if sp := g.ThroughputOpsPerSec / base; sp > head.GroupVsGPFSpeedup {
				head.GroupVsGPFSpeedup = sp
				head.GroupConfig = key
			}
		}
	}
	for _, r := range results {
		if r.ThroughputOpsPerSec > head.BestThroughput {
			head.BestThroughput = r.ThroughputOpsPerSec
			head.BestConfig = fmt.Sprintf("%s/%s/%d/%s", r.Workload, r.Strategy, r.Shards, r.Variant)
		}
	}
	fmt.Println()
	if head.GroupConfig != "" {
		fmt.Printf("headline: group commit is %.1fx per-op GPF throughput (%s)\n",
			head.GroupVsGPFSpeedup, head.GroupConfig)
	}
	if head.BestConfig != "" {
		fmt.Printf("best throughput: %.0f sim ops/sec (%s)\n", head.BestThroughput, head.BestConfig)
	}

	if *out != "" {
		file := benchFile{
			Paper:     "A Programming Model for Disaggregated Memory over CXL",
			Benchmark: "sharded durable KV service (internal/kv) under YCSB-style workloads (internal/workload)",
			Config: benchConfig{
				Ops: *ops, Keys: *keys, Batch: *batch, CrashEvery: *crashEvery,
				EvictEvery: *evictEvery, Seed: *seed,
				Workloads: strings.Split(*workloadsF, ","), Strategies: strings.Split(*strategiesF, ","),
				Shards: shardCounts, Variants: strings.Split(*variantsF, ","),
			},
			Results:  results,
			Headline: head,
		}
		blob, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d results)\n", *out, len(results))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxl0-bench:", err)
	os.Exit(1)
}
