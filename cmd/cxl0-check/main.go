// Command cxl0-check runs the §6 durable-linearizability experiment:
// concurrent workloads over FliT-transformed data structures with injected
// machine crashes, checked against sequential specifications.
//
// The correct strategies (cxl0-flit, cxl0-flit-opt, mstore-all) must pass
// every run; the unsound ones (original-flit, no-persist) are expected to
// lose completed operations when the memory host crashes.
//
// Usage:
//
//	cxl0-check [-seeds N] [-workers N] [-ops N]
package main

import (
	"flag"
	"fmt"
	"os"

	"cxl0/internal/crashtest"
	"cxl0/internal/flit"
	"cxl0/internal/history"
)

func main() {
	seeds := flag.Int("seeds", 8, "randomized runs per configuration")
	workers := flag.Int("workers", 3, "concurrent clients")
	ops := flag.Int("ops", 6, "operations per client")
	verbose := flag.Bool("verbose", false, "print the timeline of the first violating history per strategy")
	flag.Parse()

	fmt.Println("§6 — durable linearizability under partial crashes")
	fmt.Println("===================================================")
	fmt.Printf("%d seeds per cell; %d workers × %d ops + full post-crash observation\n\n",
		*seeds, *workers, *ops)

	exit := 0
	for _, strat := range flit.Strategies {
		fmt.Printf("strategy %-14s (sound: %v)\n", strat, strat.Correct())
		var firstViolation *crashtest.Result
		for _, structure := range crashtest.Structures {
			fmt.Printf("  %-9s", structure)
			for _, mode := range crashtest.CrashModes {
				ok, bad, first, err := crashtest.Sweep(crashtest.Options{
					Structure:    structure,
					Strategy:     strat,
					Crash:        mode,
					Workers:      *workers,
					OpsPerWorker: *ops,
				}, *seeds)
				if err != nil {
					fmt.Printf("  %s:error(%v)", mode, err)
					exit = 1
					continue
				}
				fmt.Printf("  %s:%d/%d", mode, ok, ok+bad)
				if bad > 0 && firstViolation == nil {
					firstViolation = first
				}
				if bad > 0 && strat.Correct() {
					fmt.Printf(" UNEXPECTED-VIOLATION")
					exit = 1
				}
			}
			fmt.Println()
		}
		if *verbose && firstViolation != nil {
			fmt.Printf("  first violating history (%v/%v, seed %d):\n",
				firstViolation.Options.Structure, firstViolation.Options.Crash, firstViolation.Options.Seed)
			for _, line := range splitLines(history.Timeline(firstViolation.History)) {
				fmt.Printf("    %s\n", line)
			}
		}
		fmt.Println()
	}
	fmt.Println("cells are pass/total durably-linearizable runs; sound strategies must be n/n,")
	fmt.Println("unsound ones are expected to drop below n/n under memory-host crashes.")
	os.Exit(exit)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
