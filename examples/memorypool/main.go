// Partitioned memory pool (§4 of the paper): several hosts extend their
// memory with disjoint partitions of a shared CXL pool. The pool is an
// external failure domain — host crashes never lose pooled data that was
// flushed, and the Global Persistent Flush takes a consistent snapshot of
// everything before planned maintenance.
//
// Run with: go run ./examples/memorypool
package main

import (
	"fmt"
	"log"

	"cxl0/internal/core"
	"cxl0/internal/memsim"
)

func main() {
	// Two hosts plus a memory-only pool node (no compute, big heap). The
	// pool node never runs threads; it only owns memory. Its NVM plays the
	// "external failure domain" role the paper describes.
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "host1", Mem: core.Volatile, Heap: 8},
		{Name: "host2", Mem: core.Volatile, Heap: 8},
		{Name: "pool", Mem: core.NonVolatile, Heap: 128},
	}, memsim.Config{})
	pool := core.MachineID(2)

	// Disjoint partitions: each host gets its own slice of the pool.
	part1, err := cluster.Alloc(pool, 16)
	if err != nil {
		log.Fatal(err)
	}
	part2, err := cluster.Alloc(pool, 16)
	if err != nil {
		log.Fatal(err)
	}

	t1, err := cluster.NewThread(0)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := cluster.NewThread(1)
	if err != nil {
		log.Fatal(err)
	}

	// Each host fills its partition. In the partitioned-pool configuration
	// the available primitives exclude RStore and cross-host cache reads
	// (core.PartitionedPool.Available reflects §4); LStore + flushes and
	// MStore remain.
	fmt.Println("hosts fill their pool partitions...")
	for i := core.LocID(0); i < 4; i++ {
		if err := t1.LStore(part1+i, core.Val(10+i)); err != nil {
			log.Fatal(err)
		}
		if err := t2.MStore(part2+i, core.Val(20+i)); err != nil {
			log.Fatal(err)
		}
	}

	// host1 used plain LStores: its values may still sit in caches. A GPF
	// (Global Persistent Flush) drains every cache in the coherence domain
	// — the paper notes it suits planned shutdowns and snapshots.
	fmt.Println("host1 issues a Global Persistent Flush (snapshot barrier)...")
	if err := t1.GPF(); err != nil {
		log.Fatal(err)
	}

	// Now both hosts crash. Volatile host memory is gone; the pool is an
	// independent failure domain and keeps everything.
	fmt.Println("both hosts crash; pool survives...")
	cluster.Crash(0)
	cluster.Crash(1)
	cluster.Recover(0)
	cluster.Recover(1)

	ok := true
	for i := core.LocID(0); i < 4; i++ {
		v1 := cluster.PersistedValue(part1 + i)
		v2 := cluster.PersistedValue(part2 + i)
		fmt.Printf("  pool[part1+%d] = %d   pool[part2+%d] = %d\n", i, v1, i, v2)
		if v1 != core.Val(10+i) || v2 != core.Val(20+i) {
			ok = false
		}
	}
	if !ok {
		log.Fatal("pool lost data — must never happen after GPF/MStore")
	}
	fmt.Println("all partition contents survived the loss of every host ✔")

	// The availability matrix for this configuration (paper §4).
	fmt.Println("\nprimitive availability in the partitioned-pool configuration:")
	for _, op := range core.AllOps {
		fmt.Printf("  %-12s %v\n", op, core.PartitionedPool.Available(core.RoleHost, op))
	}
}
