// Durable key-value store: a session cache backed by a disaggregated NVM
// pool, surviving both a pool crash and a client crash.
//
// Three app servers keep user sessions in a shared hash map on a CXL memory
// host, using the FliT-for-CXL0 transformation. The memory host crashes;
// then one app server crashes mid-request. Every acknowledged update is
// still readable afterwards.
//
// Run with: go run ./examples/durablekv
package main

import (
	"fmt"
	"log"
	"sync"

	"cxl0/internal/core"
	"cxl0/internal/ds"
	"cxl0/internal/flit"
	"cxl0/internal/memsim"
)

const memHost = core.MachineID(3)

func main() {
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "app1", Mem: core.NonVolatile, Heap: 16},
		{Name: "app2", Mem: core.NonVolatile, Heap: 16},
		{Name: "app3", Mem: core.NonVolatile, Heap: 16},
		{Name: "pool", Mem: core.NonVolatile, Heap: 8192},
	}, memsim.Config{EvictEvery: 4, Seed: 7})

	heap, err := flit.NewHeap(cluster, memHost)
	if err != nil {
		log.Fatal(err)
	}
	kv, err := newKV(cluster, heap)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: three app servers write sessions concurrently.
	var wg sync.WaitGroup
	for app := 0; app < 3; app++ {
		wg.Add(1)
		go func(app int) {
			defer wg.Done()
			se, err := kv.session(core.MachineID(app))
			if err != nil {
				log.Fatal(err)
			}
			for u := 0; u < 4; u++ {
				user := core.Val(app*10 + u)
				if err := kv.put(se, user, user*100); err != nil {
					log.Fatal(err)
				}
			}
		}(app)
	}
	wg.Wait()
	fmt.Println("12 sessions stored across 3 app servers")

	// Phase 2: the pool crashes and recovers.
	fmt.Println("memory pool crashes and recovers...")
	cluster.Crash(memHost)
	cluster.Recover(memHost)
	verify(kv, 12)

	// Phase 3: an app server dies mid-request; its in-flight put is allowed
	// to vanish, but everything acknowledged must stay.
	se2, err := kv.session(1)
	if err != nil {
		log.Fatal(err)
	}
	if err := kv.put(se2, 99, 9900); err != nil {
		log.Fatal(err)
	}
	fmt.Println("app2 stored one more session, then its machine crashes...")
	cluster.Crash(1)
	cluster.Recover(1)
	verify(kv, 13)
}

// kvStore wraps the durable map with a tiny typed API.
type kvStore struct {
	cluster *memsim.Cluster
	m       *ds.Map
}

func newKV(cluster *memsim.Cluster, heap *flit.Heap) (*kvStore, error) {
	m, err := ds.NewMap(heap, 16)
	if err != nil {
		return nil, err
	}
	return &kvStore{cluster: cluster, m: m}, nil
}

func (kv *kvStore) session(app core.MachineID) (*flit.Session, error) {
	th, err := kv.cluster.NewThread(app)
	if err != nil {
		return nil, err
	}
	return flit.NewSession(flit.CXL0FliT, th), nil
}

func (kv *kvStore) put(se *flit.Session, user, data core.Val) error {
	return kv.m.Put(se, user, data)
}

func (kv *kvStore) get(se *flit.Session, user core.Val) (core.Val, bool, error) {
	return kv.m.Get(se, user)
}

func verify(kv *kvStore, want int) {
	se, err := kv.session(0)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := kv.m.Snapshot(se)
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for user, data := range snap {
		if user != 99 && data != user*100 {
			fmt.Printf("  corrupted session %d: %d\n", user, data)
			bad++
		}
	}
	fmt.Printf("  %d sessions readable, %d corrupted (expected %d intact)\n", len(snap), bad, want)
	if len(snap) != want || bad != 0 {
		log.Fatal("durable KV store lost acknowledged data — this must never happen")
	}
	if v, ok, _ := kv.get(se, 11); ok {
		fmt.Printf("  spot check: session 11 -> %d\n", v)
	}
}
