// Quickstart: the CXL0 model in five minutes.
//
// Builds a two-machine disaggregated system (a compute node and an NVM
// memory host), shows how the three store primitives differ in persistence,
// and demonstrates why RFlush is the tool that makes a value survive the
// memory host's crash.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cxl0/internal/core"
	"cxl0/internal/memsim"
)

func main() {
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "compute", Mem: core.NonVolatile, Heap: 8},
		{Name: "memhost", Mem: core.NonVolatile, Heap: 8},
	}, memsim.Config{})

	thread, err := cluster.NewThread(0) // a thread on the compute node
	if err != nil {
		log.Fatal(err)
	}

	// Three locations on the remote memory host.
	base, err := cluster.Alloc(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	a, b, c := base, base+1, base+2

	// Three stores with three persistence guarantees.
	must(thread.LStore(a, 1)) // in the compute node's cache only
	must(thread.LStore(b, 2)) // ditto...
	must(thread.RFlush(b))    // ...then forced all the way to memhost's memory
	must(thread.MStore(c, 3)) // straight into memhost's memory

	fmt.Println("before crash:")
	show(cluster, thread, a, b, c)

	// The compute node's cache survives a *memhost* crash, so to see real
	// loss, first let the unflushed value drift into memhost's cache (as
	// cache replacement would), then crash memhost.
	must(thread.LFlush(a)) // now only memhost's volatile cache holds a=1
	fmt.Println("\ncrashing the memory host...")
	cluster.Crash(1)
	cluster.Recover(1)

	fmt.Println("after crash + recovery:")
	show(cluster, thread, a, b, c)
	fmt.Println("\na was only cached        -> lost   (reads 0)")
	fmt.Println("b was RFlushed            -> safe   (reads 2)")
	fmt.Println("c was MStored             -> safe   (reads 3)")
}

func show(cluster *memsim.Cluster, t *memsim.Thread, locs ...core.LocID) {
	for i, l := range locs {
		v, err := t.Load(l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %c = %d (persisted: %d)\n", 'a'+i, v, cluster.PersistedValue(l))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
