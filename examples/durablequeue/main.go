// Durable job queue: a Michael–Scott queue made durably linearizable with
// the FliT-for-CXL0 transformation (§6, Algorithm 2).
//
// Two producer nodes feed jobs into a queue living on a disaggregated NVM
// memory host. Mid-run the memory host crashes; after recovery every job
// that was acknowledged (the Enqueue returned) is still there, in order —
// that is durable linearizability at work.
//
// Run with: go run ./examples/durablequeue
package main

import (
	"fmt"
	"log"
	"sync"

	"cxl0/internal/core"
	"cxl0/internal/ds"
	"cxl0/internal/flit"
	"cxl0/internal/memsim"
)

func main() {
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "producerA", Mem: core.NonVolatile, Heap: 16},
		{Name: "producerB", Mem: core.NonVolatile, Heap: 16},
		{Name: "memhost", Mem: core.NonVolatile, Heap: 4096},
	}, memsim.Config{EvictEvery: 5, Seed: 42})

	heap, err := flit.NewHeap(cluster, 2)
	if err != nil {
		log.Fatal(err)
	}
	setup, err := cluster.NewThread(0)
	if err != nil {
		log.Fatal(err)
	}
	queue, err := ds.NewQueue(heap, flit.NewSession(flit.CXL0FliT, setup))
	if err != nil {
		log.Fatal(err)
	}

	// Two producers enqueue acknowledged jobs concurrently.
	var (
		wg    sync.WaitGroup
		ackMu sync.Mutex
		acked []core.Val
	)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			th, err := cluster.NewThread(core.MachineID(p))
			if err != nil {
				log.Fatal(err)
			}
			se := flit.NewSession(flit.CXL0FliT, th)
			for i := 0; i < 5; i++ {
				job := core.Val(100*(p+1) + i)
				if err := queue.Enqueue(se, job); err != nil {
					log.Fatal(err)
				}
				ackMu.Lock()
				acked = append(acked, job) // job acknowledged to the client
				ackMu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	fmt.Printf("acknowledged %d jobs: %v\n", len(acked), acked)

	fmt.Println("memory host crashes and recovers...")
	cluster.Crash(2)
	cluster.Recover(2)

	// A fresh worker recovers the queue and drains it.
	worker, err := cluster.NewThread(0)
	if err != nil {
		log.Fatal(err)
	}
	se := flit.NewSession(flit.CXL0FliT, worker)
	if err := queue.Recover(se); err != nil {
		log.Fatal(err)
	}
	drained, err := queue.Drain(se)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d jobs: %v\n", len(drained), drained)

	missing := 0
	seen := map[core.Val]bool{}
	for _, j := range drained {
		seen[j] = true
	}
	for _, j := range acked {
		if !seen[j] {
			missing++
		}
	}
	if missing == 0 {
		fmt.Println("every acknowledged job survived the crash ✔")
	} else {
		fmt.Printf("LOST %d acknowledged jobs ✗ (this must never print)\n", missing)
	}
}
