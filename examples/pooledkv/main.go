// Pooled KV service: capacity scaling past a single coherence domain.
//
// A Router pools three independent CXL clusters — each a complete
// sharded, durable KV store with its own fabric and clock — behind the
// same kv.DB interface a single store serves. Keys route key → pool
// bucket → cluster → shard; batches split per cluster and commit with
// one Ack; MultiGet fans out and merges; a shard crash stays contained
// to its own cluster.
//
// Run with: go run ./examples/pooledkv
package main

import (
	"fmt"
	"log"

	"cxl0/internal/core"
	"cxl0/internal/kv"
	"cxl0/internal/pool"
)

func main() {
	// Three clusters, two shards each: six shard machines plus three
	// front-ends, pooled behind one router. The per-cluster stores use
	// ranged group commit, so commits never stall even their own
	// cluster's other shard — let alone another cluster.
	db, err := pool.Open(pool.Config{
		Clusters: 3,
		Store:    kv.Config{Shards: 2, Strategy: kv.RangedCommit, Batch: 4, Capacity: 256, Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}

	// One client batch of user sessions, acknowledged with a single Ack
	// at its commit point — split per cluster under the hood.
	batch := new(kv.Batch)
	for user := core.Val(1); user <= 12; user++ {
		batch.Put(user, user*100)
	}
	batch.Delete(7) // user 7 logs out inside the same batch
	ack, err := db.Apply(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied a %d-op batch: durable=%v\n", batch.Len(), ack.Durable)

	// The keys spread across all three clusters' shards.
	perCluster := map[int]int{}
	for user := core.Val(1); user <= 12; user++ {
		perCluster[db.ClusterOf(user)]++
	}
	fmt.Printf("sessions per cluster: %d + %d + %d across %d shards\n",
		perCluster[0], perCluster[1], perCluster[2], db.NumShards())

	// MultiGet fans out to every involved cluster and merges the results
	// back into input order.
	res, err := db.MultiGet([]core.Val{3, 7, 11})
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range res {
		fmt.Printf("  user %d: found=%v value=%d\n", l.Key, l.Found, l.Val)
	}

	// Crash one shard (global index 3 = cluster 1's second shard). Only
	// keys routed there are affected; every other shard of the pool keeps
	// serving, and recovery brings the lost shard's acknowledged state
	// back — the batch committed, so nothing acknowledged can be lost.
	db.Crash(3)
	stats, err := db.Recover(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 3 crashed and recovered %d records; lost %d\n", stats.Recovered, stats.Lost)

	intact := 0
	for user := core.Val(1); user <= 12; user++ {
		v, ok, err := db.Get(user)
		if err != nil {
			log.Fatal(err)
		}
		if user == 7 {
			if ok {
				log.Fatal("deleted user 7 resurrected")
			}
			continue
		}
		if !ok || v != user*100 {
			log.Fatalf("user %d lost or corrupted: (%d, %v)", user, v, ok)
		}
		intact++
	}
	m := db.Metrics()
	fmt.Printf("%d/11 sessions intact after the crash; pool served %d puts, %d gets, makespan %.0f sim-ns\n",
		intact, m.Puts, m.Gets, m.MaxBusyNS())
}
