// Litmus explorer: using the CXL0 model checker to answer "can this
// happen?" questions about your own code patterns.
//
// The scenario: a producer on machine A publishes a value with a guard flag
// to memory on machine B; a consumer on machine C reads flag then data.
// Which store/flush combinations keep the protocol safe if B can crash?
//
// Run with: go run ./examples/litmusexplorer
package main

import (
	"fmt"

	"cxl0/internal/core"
	"cxl0/internal/explore"
)

func main() {
	fmt.Println("message passing over disaggregated memory, with a memory-host crash")
	fmt.Println("====================================================================")
	fmt.Println("producer (A): data = 42; flag = 1        consumer (C): r0 = flag; r1 = data")
	fmt.Println("memory host (B) owns data and flag and may crash once at any point")
	fmt.Println()

	type recipe struct {
		label   string
		dataOp  core.Op
		flagOp  core.Op
		flushes bool // RFlush(data) between the two stores
	}
	recipes := []recipe{
		{"LStore data; LStore flag (legacy code)", core.OpLStore, core.OpLStore, false},
		{"LStore data; RFlush data; LStore flag", core.OpLStore, core.OpLStore, true},
		{"MStore data; LStore flag", core.OpMStore, core.OpLStore, false},
		{"MStore data; MStore flag", core.OpMStore, core.OpMStore, false},
	}

	for _, r := range recipes {
		bad := explorerFinds(r.dataOp, r.flagOp, r.flushes)
		verdict := "SAFE: flag=1 implies data=42 in every interleaving"
		if bad {
			verdict = "UNSAFE: consumer can see flag=1 with data=0"
		}
		fmt.Printf("  %-42s -> %s\n", r.label, verdict)
	}

	fmt.Println()
	fmt.Println("Morals:")
	fmt.Println(" 1. Ordering alone (recipe 1) is not enough when the memory host is a")
	fmt.Println("    separate failure domain: the payload can die in the host's cache.")
	fmt.Println(" 2. Even LStore-then-RFlush (recipe 2) is unsafe: if the host crashes")
	fmt.Println("    between the store and the flush — after eviction moved the payload")
	fmt.Println("    into the host's dying cache — the flush completes vacuously and the")
	fmt.Println("    payload is silently gone. The store+flush pair is not crash-atomic.")
	fmt.Println(" 3. MStore (recipes 3-4) is the crash-atomic publish: the value is in")
	fmt.Println("    persistent memory before the instruction completes.")
}

// explorerFinds exhaustively explores the protocol and reports whether any
// interleaving lets the consumer observe flag=1 with data=0.
func explorerFinds(dataOp, flagOp core.Op, flushData bool) bool {
	topo := core.NewTopology()
	a := topo.AddMachine("producer", core.NonVolatile)
	b := topo.AddMachine("memhost", core.NonVolatile)
	c := topo.AddMachine("consumer", core.NonVolatile)
	data := topo.AddLoc("data", b)
	flag := topo.AddLoc("flag", b)

	producer := []explore.Instr{{Kind: explore.IStore, Op: dataOp, Loc: data, Src: explore.ConstOp(42)}}
	if flushData {
		producer = append(producer, explore.Instr{Kind: explore.IFlush, Op: core.OpRFlush, Loc: data})
	}
	producer = append(producer, explore.Instr{Kind: explore.IStore, Op: flagOp, Loc: flag, Src: explore.ConstOp(1)})

	prog := explore.Program{
		Threads: []explore.Thread{
			{Machine: a, Instrs: producer},
			{Machine: c, NumRegs: 2, Instrs: []explore.Instr{
				{Kind: explore.ILoad, Loc: flag, Dst: 0},
				{Kind: explore.ILoad, Loc: data, Dst: 1},
			}},
		},
		MaxCrashes: 1,
		Crashable:  []core.MachineID{b},
	}
	for _, o := range explore.Explore(topo, core.Base, prog) {
		if o.Died[1] {
			continue
		}
		if o.Regs[1][0] == 1 && o.Regs[1][1] != 42 {
			return true
		}
	}
	return false
}
