module cxl0

go 1.24
