module cxl0

go 1.24

// The analysis framework is the repo's first external dependency. The
// build environment has no module proxy, so an API-compatible offline
// subset lives under third_party/xtools (see its README.md) and is
// wired in with a replace; deleting the replace and running `go mod
// tidy` switches to the real upstream module.
require golang.org/x/tools v0.24.0

replace golang.org/x/tools => ./third_party/xtools
