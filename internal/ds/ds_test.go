package ds

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/flit"
	"cxl0/internal/memsim"
)

// rig builds a two-machine cluster with memory on machine 1 and a session
// for a thread on machine 0 (so every access is remote — the interesting
// case).
func rig(t *testing.T, strat flit.Strategy) (*memsim.Cluster, *flit.Heap, *flit.Session) {
	t.Helper()
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "compute", Mem: core.NonVolatile, Heap: 16},
		{Name: "memory", Mem: core.NonVolatile, Heap: 4096},
	}, memsim.Config{EvictEvery: 5, Seed: 11})
	th, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := flit.NewHeap(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c, h, flit.NewSession(strat, th)
}

func session(t *testing.T, c *memsim.Cluster, m core.MachineID, strat flit.Strategy) *flit.Session {
	t.Helper()
	th, err := c.NewThread(m)
	if err != nil {
		t.Fatal(err)
	}
	return flit.NewSession(strat, th)
}

func TestRegisterSequential(t *testing.T) {
	_, h, se := rig(t, flit.CXL0FliT)
	r, err := NewRegister(h)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Read(se); v != 0 {
		t.Errorf("initial value %d", v)
	}
	if err := r.Write(se, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Read(se); v != 42 {
		t.Errorf("read %d, want 42", v)
	}
	ok, _ := r.CompareAndSwap(se, 42, 43)
	if !ok {
		t.Errorf("CAS 42->43 failed")
	}
	ok, _ = r.CompareAndSwap(se, 42, 44)
	if ok {
		t.Errorf("CAS with stale expectation succeeded")
	}
	if err := r.Write(se, -1); err != ErrNegative {
		t.Errorf("negative write: %v", err)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c, h, se := rig(t, flit.CXL0FliT)
	ctr, err := NewCounter(h)
	if err != nil {
		t.Fatal(err)
	}
	_ = se
	var wg sync.WaitGroup
	const goroutines, per = 4, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := session(t, c, core.MachineID(g%2), flit.CXL0FliT)
			for i := 0; i < per; i++ {
				if _, err := ctr.Inc(s); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	v, err := ctr.Value(session(t, c, 0, flit.CXL0FliT))
	if err != nil || v != goroutines*per {
		t.Errorf("counter = %d, %v; want %d", v, err, goroutines*per)
	}
}

func TestStackLIFO(t *testing.T) {
	_, h, se := rig(t, flit.CXL0FliT)
	s, err := NewStack(h)
	if err != nil {
		t.Fatal(err)
	}
	for i := core.Val(1); i <= 5; i++ {
		if err := s.Push(se, i); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Drain(se)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Val{5, 4, 3, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("drain = %v, want %v", got, want)
	}
	if _, ok, _ := s.Pop(se); ok {
		t.Errorf("pop from empty stack succeeded")
	}
}

func TestStackConcurrentPushPop(t *testing.T) {
	c, h, _ := rig(t, flit.CXL0FliT)
	s, err := NewStack(h)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	var wg sync.WaitGroup
	popped := make(chan core.Val, n)
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			se := session(t, c, core.MachineID(g), flit.CXL0FliT)
			for i := 0; i < n/2; i++ {
				if err := s.Push(se, core.Val(g*1000+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			se := session(t, c, core.MachineID(g), flit.CXL0FliT)
			for i := 0; i < n/2; i++ {
				if v, ok, err := s.Pop(se); err != nil {
					t.Error(err)
					return
				} else if ok {
					popped <- v
				}
			}
		}(g)
	}
	wg.Wait()
	close(popped)
	seen := map[core.Val]bool{}
	for v := range popped {
		if seen[v] {
			t.Errorf("value %d popped twice", v)
		}
		seen[v] = true
	}
	// Drain the remainder; total must equal pushes.
	se := session(t, c, 0, flit.CXL0FliT)
	rest, err := s.Drain(se)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rest {
		if seen[v] {
			t.Errorf("value %d appears twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Errorf("got %d distinct values, want %d", len(seen), n)
	}
}

func TestQueueFIFO(t *testing.T) {
	_, h, se := rig(t, flit.CXL0FliT)
	q, err := NewQueue(h, se)
	if err != nil {
		t.Fatal(err)
	}
	for i := core.Val(1); i <= 5; i++ {
		if err := q.Enqueue(se, i*10); err != nil {
			t.Fatal(err)
		}
	}
	got, err := q.Drain(se)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Val{10, 20, 30, 40, 50}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("drain = %v, want %v", got, want)
	}
	if _, ok, _ := q.Dequeue(se); ok {
		t.Errorf("dequeue from empty queue succeeded")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	c, h, se0 := rig(t, flit.CXL0FliT)
	q, err := NewQueue(h, se0)
	if err != nil {
		t.Fatal(err)
	}
	const producers, per = 3, 40
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			se := session(t, c, core.MachineID(p%2), flit.CXL0FliT)
			for i := 0; i < per; i++ {
				if err := q.Enqueue(se, core.Val(p*1000+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	got := make(chan core.Val, producers*per)
	wg.Add(1)
	go func() {
		defer wg.Done()
		se := session(t, c, 1, flit.CXL0FliT)
		for n := 0; n < producers*per; {
			v, ok, err := q.Dequeue(se)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				got <- v
				n++
			}
		}
	}()
	wg.Wait()
	close(got)
	// Per-producer FIFO order must hold.
	lastPer := map[int]core.Val{}
	count := 0
	for v := range got {
		p := int(v / 1000)
		if last, ok := lastPer[p]; ok && v <= last {
			t.Errorf("producer %d order violated: %d after %d", p, v, last)
		}
		lastPer[p] = v
		count++
	}
	if count != producers*per {
		t.Errorf("dequeued %d values, want %d", count, producers*per)
	}
}

func TestSetSequential(t *testing.T) {
	_, h, se := rig(t, flit.CXL0FliT)
	s, err := NewSet(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []core.Val{5, 1, 9, 3} {
		if ok, err := s.Insert(se, k); err != nil || !ok {
			t.Fatalf("insert %d: ok=%v err=%v", k, ok, err)
		}
	}
	if ok, _ := s.Insert(se, 5); ok {
		t.Errorf("duplicate insert succeeded")
	}
	if got, _ := s.Snapshot(se); !reflect.DeepEqual(got, []core.Val{1, 3, 5, 9}) {
		t.Errorf("snapshot = %v (want sorted 1 3 5 9)", got)
	}
	if ok, _ := s.Contains(se, 3); !ok {
		t.Errorf("contains(3) = false")
	}
	if ok, _ := s.Contains(se, 4); ok {
		t.Errorf("contains(4) = true")
	}
	if ok, _ := s.Remove(se, 3); !ok {
		t.Errorf("remove(3) failed")
	}
	if ok, _ := s.Remove(se, 3); ok {
		t.Errorf("double remove succeeded")
	}
	if ok, _ := s.Contains(se, 3); ok {
		t.Errorf("contains(3) after remove")
	}
	if got, _ := s.Snapshot(se); !reflect.DeepEqual(got, []core.Val{1, 5, 9}) {
		t.Errorf("snapshot = %v", got)
	}
}

func TestSetConcurrentDisjointInserts(t *testing.T) {
	c, h, _ := rig(t, flit.CXL0FliT)
	s, err := NewSet(h)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const per = 30
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			se := session(t, c, core.MachineID(g%2), flit.CXL0FliT)
			for i := 0; i < per; i++ {
				k := core.Val(i*3 + g)
				if ok, err := s.Insert(se, k); err != nil || !ok {
					t.Errorf("insert %d: ok=%v err=%v", k, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	se := session(t, c, 0, flit.CXL0FliT)
	got, err := s.Snapshot(se)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3*per {
		t.Fatalf("set has %d keys, want %d", len(got), 3*per)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("snapshot not sorted: %v", got)
	}
}

func TestSetConcurrentInsertRemoveSameKeys(t *testing.T) {
	c, h, _ := rig(t, flit.CXL0FliT)
	s, err := NewSet(h)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			se := session(t, c, core.MachineID(g%2), flit.CXL0FliT)
			for i := 0; i < 40; i++ {
				k := core.Val(i % 7)
				if g%2 == 0 {
					if _, err := s.Insert(se, k); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := s.Remove(se, k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	se := session(t, c, 0, flit.CXL0FliT)
	snap, err := s.Snapshot(se)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[core.Val]bool{}
	for _, k := range snap {
		if seen[k] {
			t.Errorf("duplicate key %d in set", k)
		}
		seen[k] = true
		if k < 0 || k > 6 {
			t.Errorf("foreign key %d", k)
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestMapSequential(t *testing.T) {
	_, h, se := rig(t, flit.CXL0FliT)
	m, err := NewMap(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get(se, 1); ok {
		t.Errorf("get on empty map succeeded")
	}
	if err := m.Put(se, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(se, 9, 900); err != nil { // likely same bucket as 1 with 8 buckets
		t.Fatal(err)
	}
	if v, ok, _ := m.Get(se, 1); !ok || v != 100 {
		t.Errorf("get(1) = %d,%v", v, ok)
	}
	if err := m.Put(se, 1, 101); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := m.Get(se, 1); !ok || v != 101 {
		t.Errorf("get(1) after update = %d,%v", v, ok)
	}
	if ok, _ := m.Delete(se, 1); !ok {
		t.Errorf("delete(1) failed")
	}
	if _, ok, _ := m.Get(se, 1); ok {
		t.Errorf("get(1) after delete succeeded")
	}
	if v, ok, _ := m.Get(se, 9); !ok || v != 900 {
		t.Errorf("get(9) = %d,%v", v, ok)
	}
	snap, _ := m.Snapshot(se)
	if len(snap) != 1 || snap[9] != 900 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestMapConcurrentMixed(t *testing.T) {
	c, h, _ := rig(t, flit.CXL0FliT)
	m, err := NewMap(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			se := session(t, c, core.MachineID(g%2), flit.CXL0FliT)
			for i := 0; i < 30; i++ {
				k := core.Val(i % 5)
				switch g % 3 {
				case 0:
					if err := m.Put(se, k, core.Val(g*100+i)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, err := m.Get(se, k); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := m.Delete(se, k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := c.CheckInvariant(); err != nil {
		t.Error(err)
	}
	se := session(t, c, 0, flit.CXL0FliT)
	snap, err := m.Snapshot(se)
	if err != nil {
		t.Fatal(err)
	}
	for k := range snap {
		if k < 0 || k > 4 {
			t.Errorf("foreign key %d", k)
		}
	}
}

// TestAllStrategiesFunctional runs the queue through every strategy —
// including the incorrect ones, which must still be functionally correct
// when no crash occurs.
func TestAllStrategiesFunctional(t *testing.T) {
	for _, strat := range flit.Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			_, h, se := rig(t, strat)
			q, err := NewQueue(h, se)
			if err != nil {
				t.Fatal(err)
			}
			for i := core.Val(0); i < 10; i++ {
				if err := q.Enqueue(se, i); err != nil {
					t.Fatal(err)
				}
			}
			got, err := q.Drain(se)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 10 {
				t.Fatalf("drained %d values", len(got))
			}
			for i, v := range got {
				if v != core.Val(i) {
					t.Errorf("position %d: %d", i, v)
				}
			}
		})
	}
}
