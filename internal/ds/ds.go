// Package ds provides linearizable concurrent data structures written
// against the CXL0 runtime's primitives through the flit persistence layer:
// an atomic register, a counter, a Treiber stack, a Michael–Scott queue, a
// Harris-style sorted-list set, and a hash map.
//
// The structures themselves are ordinary lock-free algorithms; every shared
// memory access goes through a flit.Session, so the persistence strategy
// (Algorithm 2, MStore-everything, the unsound original FliT, or nothing)
// is pluggable. Under a correct strategy each structure is durably
// linearizable per the paper's §6 theorem: FliT applied to a linearizable
// object yields a durably linearizable one.
//
// Values and keys must be non-negative (the runtime reserves negative
// values). Nodes are never reclaimed, which sidesteps ABA without
// hazard-pointer machinery — acceptable for a simulator.
package ds

import (
	"errors"

	"cxl0/internal/core"
	"cxl0/internal/flit"
)

// ErrNegative is returned when a caller passes a negative value or key.
var ErrNegative = errors.New("ds: values and keys must be non-negative")

// ErrCorrupt is returned when a structure's anchors were lost in a crash —
// possible only under persistence strategies that are unsound for the
// partial-crash model.
var ErrCorrupt = errors.New("ds: structure corrupted by crash (anchor pointer lost)")

// nilPtr is the encoded null pointer.
const nilPtr core.Val = 0

// ptr encodes a node base location as a pointer value (0 is reserved for
// nil).
func ptr(base core.LocID) core.Val { return core.Val(base) + 1 }

// nodeBase decodes a pointer value into a node base location; ok is false
// for nil.
func nodeBase(v core.Val) (core.LocID, bool) {
	if v == nilPtr {
		return 0, false
	}
	return core.LocID(v - 1), true
}

// field returns the i-th persistent field of the node at base.
func field(h *flit.Heap, base core.LocID, i int) flit.Var { return h.FieldVar(base, i) }

// enc packs a pointer value and a deletion mark into one word (Harris-style
// marked pointers).
func enc(p core.Val, marked bool) core.Val {
	if marked {
		return p*2 + 1
	}
	return p * 2
}

// dec unpacks a marked pointer word.
func dec(v core.Val) (p core.Val, marked bool) { return v / 2, v%2 == 1 }
