package ds

import (
	"cxl0/internal/core"
	"cxl0/internal/flit"
)

// Queue is a durably linearizable Michael–Scott queue. Nodes have two
// fields: value and next. A dummy node anchors head and tail.
type Queue struct {
	h          *flit.Heap
	head, tail flit.Var
}

// NewQueue allocates an empty queue on the heap's machine. The dummy node
// and the head/tail anchors are persisted before the queue is returned.
func NewQueue(h *flit.Heap, se *flit.Session) (*Queue, error) {
	anchors, err := h.AllocVars(2)
	if err != nil {
		return nil, err
	}
	q := &Queue{h: h, head: anchors[0], tail: anchors[1]}
	dummy, err := h.AllocNode(2)
	if err != nil {
		return nil, err
	}
	if err := se.PrivateStore(q.head, ptr(dummy)); err != nil {
		return nil, err
	}
	if err := se.PrivateStore(q.tail, ptr(dummy)); err != nil {
		return nil, err
	}
	return q, nil
}

// Enqueue appends v (which must be non-negative).
func (q *Queue) Enqueue(se *flit.Session, v core.Val) error {
	if v < 0 {
		return ErrNegative
	}
	base, err := q.h.AllocNode(2)
	if err != nil {
		return err
	}
	if err := se.PrivateStore(field(q.h, base, 0), v); err != nil {
		return err
	}
	if err := se.PrivateStore(field(q.h, base, 1), nilPtr); err != nil {
		return err
	}
	for {
		tail, err := se.Load(q.tail)
		if err != nil {
			return err
		}
		tb, valid := nodeBase(tail)
		if !valid {
			return ErrCorrupt // anchor lost: possible only under unsound strategies
		}
		next, err := se.Load(field(q.h, tb, 1))
		if err != nil {
			return err
		}
		if next == nilPtr {
			linked, err := se.CAS(field(q.h, tb, 1), nilPtr, ptr(base))
			if err != nil {
				return err
			}
			if linked {
				// Swing the tail; failure means someone helped.
				if _, err := se.CAS(q.tail, tail, ptr(base)); err != nil {
					return err
				}
				return se.Complete()
			}
		} else {
			// Tail lags: help advance it.
			if _, err := se.CAS(q.tail, tail, next); err != nil {
				return err
			}
		}
	}
}

// Dequeue removes the oldest value; ok is false when the queue is empty.
func (q *Queue) Dequeue(se *flit.Session) (v core.Val, ok bool, err error) {
	for {
		head, err := se.Load(q.head)
		if err != nil {
			return 0, false, err
		}
		tail, err := se.Load(q.tail)
		if err != nil {
			return 0, false, err
		}
		hb, valid := nodeBase(head)
		if !valid {
			return 0, false, se.Complete() // anchor lost: read as empty
		}
		next, err := se.Load(field(q.h, hb, 1))
		if err != nil {
			return 0, false, err
		}
		if head == tail {
			if next == nilPtr {
				return 0, false, se.Complete()
			}
			// Tail lags behind a linked node: help.
			if _, err := se.CAS(q.tail, tail, next); err != nil {
				return 0, false, err
			}
			continue
		}
		nb, valid := nodeBase(next)
		if !valid {
			// head != tail yet head.next is nil: impossible in an intact
			// queue (links are never cleared), so a crash under an unsound
			// strategy lost the link. Read as empty rather than spinning.
			return 0, false, se.Complete()
		}
		val, err := se.Load(field(q.h, nb, 0))
		if err != nil {
			return 0, false, err
		}
		swapped, err := se.CAS(q.head, head, next)
		if err != nil {
			return 0, false, err
		}
		if swapped {
			return val, true, se.Complete()
		}
	}
}

// Recover repairs the queue after a crash: a lagging tail (the enqueue's
// second CAS may not have happened or persisted) is advanced to the last
// linked node. The queue is usable without calling Recover — operations
// help lagging tails anyway — but recovery bounds the lag.
func (q *Queue) Recover(se *flit.Session) error {
	for {
		tail, err := se.Load(q.tail)
		if err != nil {
			return err
		}
		tb, valid := nodeBase(tail)
		if !valid {
			return nil // anchor lost: nothing to repair
		}
		next, err := se.Load(field(q.h, tb, 1))
		if err != nil {
			return err
		}
		if next == nilPtr {
			return nil
		}
		if _, err := se.CAS(q.tail, tail, next); err != nil {
			return err
		}
	}
}

// Drain dequeues until empty, returning values in FIFO order.
func (q *Queue) Drain(se *flit.Session) ([]core.Val, error) {
	var out []core.Val
	for {
		v, ok, err := q.Dequeue(se)
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}
