package ds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cxl0/internal/core"
	"cxl0/internal/flit"
	"cxl0/internal/memsim"
)

// Property-based testing of the data structures against pure-Go reference
// models: random operation sequences, executed sequentially with eviction
// churn and periodic crash/recovery of the memory host, must agree with
// the reference at every step. Because the strategy is sound and the
// execution is sequential, a crash between operations must be invisible.

func propRig(strat flit.Strategy, seed int64) (*memsim.Cluster, *flit.Heap, *flit.Session, error) {
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "compute", Mem: core.NonVolatile, Heap: 16},
		{Name: "memory", Mem: core.NonVolatile, Heap: 16384},
	}, memsim.Config{EvictEvery: 3, Seed: seed})
	th, err := c.NewThread(0)
	if err != nil {
		return nil, nil, nil, err
	}
	h, err := flit.NewHeap(c, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	return c, h, flit.NewSession(strat, th), nil
}

func TestQueueAgainstReferenceModel(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		c, h, se, err := propRig(flit.CXL0FliT, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		q, err := NewQueue(h, se)
		if err != nil {
			t.Log(err)
			return false
		}
		var ref []core.Val
		rng := rand.New(rand.NewSource(seed))
		for i, b := range opsRaw {
			if i > 80 {
				break
			}
			switch b % 4 {
			case 0, 1:
				v := core.Val(1 + int(b)%100)
				if err := q.Enqueue(se, v); err != nil {
					t.Log(err)
					return false
				}
				ref = append(ref, v)
			case 2:
				v, ok, err := q.Dequeue(se)
				if err != nil {
					t.Log(err)
					return false
				}
				if ok != (len(ref) > 0) {
					t.Logf("op %d: dequeue ok=%v, reference has %d", i, ok, len(ref))
					return false
				}
				if ok {
					if v != ref[0] {
						t.Logf("op %d: dequeued %d, reference head %d", i, v, ref[0])
						return false
					}
					ref = ref[1:]
				}
			default:
				// Crash and recover the memory host between operations;
				// a sound strategy makes this invisible.
				if rng.Intn(2) == 0 {
					c.Crash(1)
					c.Recover(1)
					if err := q.Recover(se); err != nil {
						t.Log(err)
						return false
					}
				} else {
					c.Churn(3)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestMapAgainstReferenceModel(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		c, h, se, err := propRig(flit.CXL0FliTOpt, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		m, err := NewMap(h, 4)
		if err != nil {
			t.Log(err)
			return false
		}
		ref := map[core.Val]core.Val{}
		for i, b := range opsRaw {
			if i > 80 {
				break
			}
			k := core.Val(1 + int(b)%6)
			switch (b / 8) % 4 {
			case 0:
				v := core.Val(1 + int(b)%50)
				if err := m.Put(se, k, v); err != nil {
					t.Log(err)
					return false
				}
				ref[k] = v
			case 1:
				v, ok, err := m.Get(se, k)
				if err != nil {
					t.Log(err)
					return false
				}
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					t.Logf("op %d: get(%d) = (%d,%v), reference (%d,%v)", i, k, v, ok, rv, rok)
					return false
				}
			case 2:
				ok, err := m.Delete(se, k)
				if err != nil {
					t.Log(err)
					return false
				}
				_, rok := ref[k]
				if ok != rok {
					t.Logf("op %d: delete(%d) = %v, reference %v", i, k, ok, rok)
					return false
				}
				delete(ref, k)
			default:
				c.Crash(1)
				c.Recover(1)
			}
		}
		// Final full comparison.
		snap, err := m.Snapshot(se)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(snap) != len(ref) {
			t.Logf("final size %d, reference %d", len(snap), len(ref))
			return false
		}
		for k, v := range ref {
			if snap[k] != v {
				t.Logf("final [%d] = %d, reference %d", k, snap[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAgainstReferenceModel(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		c, h, se, err := propRig(flit.CXL0FliT, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		s, err := NewSet(h)
		if err != nil {
			t.Log(err)
			return false
		}
		ref := map[core.Val]bool{}
		for i, b := range opsRaw {
			if i > 80 {
				break
			}
			k := core.Val(1 + int(b)%8)
			switch (b / 16) % 4 {
			case 0:
				ok, err := s.Insert(se, k)
				if err != nil {
					t.Log(err)
					return false
				}
				if ok == ref[k] {
					t.Logf("op %d: insert(%d) = %v, reference member=%v", i, k, ok, ref[k])
					return false
				}
				ref[k] = true
			case 1:
				ok, err := s.Remove(se, k)
				if err != nil {
					t.Log(err)
					return false
				}
				if ok != ref[k] {
					t.Logf("op %d: remove(%d) = %v, reference member=%v", i, k, ok, ref[k])
					return false
				}
				delete(ref, k)
			case 2:
				ok, err := s.Contains(se, k)
				if err != nil {
					t.Log(err)
					return false
				}
				if ok != ref[k] {
					t.Logf("op %d: contains(%d) = %v, reference %v", i, k, ok, ref[k])
					return false
				}
			default:
				c.Crash(1)
				c.Recover(1)
			}
		}
		// The snapshot must be the sorted reference set.
		snap, err := s.Snapshot(se)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(snap) != len(ref) {
			t.Logf("final size %d, reference %d", len(snap), len(ref))
			return false
		}
		for i, k := range snap {
			if !ref[k] {
				t.Logf("phantom key %d", k)
				return false
			}
			if i > 0 && snap[i-1] >= k {
				t.Logf("snapshot unsorted: %v", snap)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestStackAgainstReferenceModel(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		c, h, se, err := propRig(flit.MStoreAll, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		st, err := NewStack(h)
		if err != nil {
			t.Log(err)
			return false
		}
		var ref []core.Val
		for i, b := range opsRaw {
			if i > 80 {
				break
			}
			switch b % 3 {
			case 0:
				v := core.Val(1 + int(b)%100)
				if err := st.Push(se, v); err != nil {
					t.Log(err)
					return false
				}
				ref = append(ref, v)
			case 1:
				v, ok, err := st.Pop(se)
				if err != nil {
					t.Log(err)
					return false
				}
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[len(ref)-1] {
						t.Logf("op %d: popped %d, reference top %d", i, v, ref[len(ref)-1])
						return false
					}
					ref = ref[:len(ref)-1]
				}
			default:
				c.Crash(1)
				c.Recover(1)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}
