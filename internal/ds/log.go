package ds

import (
	"cxl0/internal/core"
	"cxl0/internal/flit"
)

// Log is a durably linearizable bounded append-only log — the structure a
// CXL memory pool most naturally hosts (journals, replication streams,
// write-ahead logs).
//
// Appends claim a slot with a persistent fetch-and-add, write the entry
// into the (exclusively owned, hence private) slot, and then advance the
// contiguous commit frontier. An append is durable when it returns; an
// append cut short by a crash leaves a hole that Recover seals with a
// tombstone (the zero value), so readers skip it. Entries must be ≥ 1.
type Log struct {
	h     *flit.Heap
	claim flit.Var // next slot to claim
	done  flit.Var // commit frontier: entries below this index are final
	slots core.LocID
	cap   int
}

// NewLog allocates a log with the given capacity on the heap's machine.
func NewLog(h *flit.Heap, capacity int) (*Log, error) {
	if capacity <= 0 {
		capacity = 64
	}
	vars, err := h.AllocVars(2)
	if err != nil {
		return nil, err
	}
	slots, err := h.AllocNode(capacity)
	if err != nil {
		return nil, err
	}
	return &Log{h: h, claim: vars[0], done: vars[1], slots: slots, cap: capacity}, nil
}

// Cap returns the log's capacity.
func (l *Log) Cap() int { return l.cap }

// Append adds v (≥ 1) and returns its index. It returns ErrCorrupt when
// the log is full. The entry is persistent when Append returns.
func (l *Log) Append(se *flit.Session, v core.Val) (int, error) {
	if v < 1 {
		return 0, ErrNegative
	}
	idx, err := se.FAA(l.claim, 1) // persistent claim
	if err != nil {
		return 0, err
	}
	if int(idx) >= l.cap {
		return 0, ErrCorrupt
	}
	// The slot is exclusively ours until committed: a private store.
	if err := se.PrivateStore(l.h.FieldVar(l.slots, int(idx)), v); err != nil {
		return 0, err
	}
	// Advance the commit frontier past our slot; predecessors first.
	for {
		ok, err := se.CAS(l.done, idx, idx+1)
		if err != nil {
			return 0, err
		}
		if ok {
			return int(idx), se.Complete()
		}
		cur, err := se.Load(l.done)
		if err != nil {
			return 0, err
		}
		if cur > idx {
			// Someone (recovery) already committed past us.
			return int(idx), se.Complete()
		}
	}
}

// Len returns the number of committed entries.
func (l *Log) Len(se *flit.Session) (int, error) {
	n, err := se.Load(l.done)
	return int(n), err
}

// Get returns entry i; ok is false for tombstones (appends that died
// mid-flight and were sealed by Recover).
func (l *Log) Get(se *flit.Session, i int) (v core.Val, ok bool, err error) {
	n, err := l.Len(se)
	if err != nil {
		return 0, false, err
	}
	if i < 0 || i >= n {
		return 0, false, ErrCorrupt
	}
	v, err = se.PrivateLoad(l.h.FieldVar(l.slots, i))
	if err != nil {
		return 0, false, err
	}
	return v, v != 0, nil
}

// Recover seals holes left by appenders that crashed between claiming a
// slot and committing it: every claimed-but-uncommitted slot is committed
// as-is (its write may or may not have persisted; an empty slot reads as a
// tombstone). After Recover the commit frontier equals the claim counter
// and new appends proceed.
func (l *Log) Recover(se *flit.Session) error {
	claimed, err := se.Load(l.claim)
	if err != nil {
		return err
	}
	if int(claimed) > l.cap {
		claimed = core.Val(l.cap)
	}
	for {
		cur, err := se.Load(l.done)
		if err != nil {
			return err
		}
		if cur >= claimed {
			return nil
		}
		// Persist whatever the slot holds (value or tombstone) and move on.
		slot := l.h.FieldVar(l.slots, int(cur))
		v, err := se.PrivateLoad(slot)
		if err != nil {
			return err
		}
		if err := se.PrivateStore(slot, v); err != nil {
			return err
		}
		if _, err := se.CAS(l.done, cur, cur+1); err != nil {
			return err
		}
	}
}

// Snapshot returns all committed non-tombstone entries in order.
func (l *Log) Snapshot(se *flit.Session) ([]core.Val, error) {
	n, err := l.Len(se)
	if err != nil {
		return nil, err
	}
	var out []core.Val
	for i := 0; i < n; i++ {
		v, ok, err := l.Get(se, i)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	return out, nil
}
