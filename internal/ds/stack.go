package ds

import (
	"cxl0/internal/core"
	"cxl0/internal/flit"
)

// Stack is a durably linearizable Treiber stack. Nodes have two fields:
// value and next.
type Stack struct {
	h    *flit.Heap
	head flit.Var
}

// NewStack allocates an empty stack whose memory lives on the heap's
// machine.
func NewStack(h *flit.Heap) (*Stack, error) {
	head, err := h.AllocVar()
	if err != nil {
		return nil, err
	}
	return &Stack{h: h, head: head}, nil
}

// Push pushes v (which must be non-negative).
func (s *Stack) Push(se *flit.Session, v core.Val) error {
	if v < 0 {
		return ErrNegative
	}
	base, err := s.h.AllocNode(2)
	if err != nil {
		return err
	}
	// The node is private until the CAS publishes it.
	if err := se.PrivateStore(field(s.h, base, 0), v); err != nil {
		return err
	}
	for {
		head, err := se.Load(s.head)
		if err != nil {
			return err
		}
		if err := se.PrivateStore(field(s.h, base, 1), head); err != nil {
			return err
		}
		ok, err := se.CAS(s.head, head, ptr(base))
		if err != nil {
			return err
		}
		if ok {
			return se.Complete()
		}
	}
}

// Pop removes the top value; ok is false when the stack is empty.
func (s *Stack) Pop(se *flit.Session) (v core.Val, ok bool, err error) {
	for {
		head, err := se.Load(s.head)
		if err != nil {
			return 0, false, err
		}
		base, valid := nodeBase(head)
		if !valid {
			return 0, false, se.Complete()
		}
		next, err := se.Load(field(s.h, base, 1))
		if err != nil {
			return 0, false, err
		}
		swapped, err := se.CAS(s.head, head, next)
		if err != nil {
			return 0, false, err
		}
		if swapped {
			v, err := se.Load(field(s.h, base, 0))
			if err != nil {
				return 0, false, err
			}
			return v, true, se.Complete()
		}
	}
}

// Drain pops until empty and returns the values in pop order. Intended for
// recovery inspection and tests.
func (s *Stack) Drain(se *flit.Session) ([]core.Val, error) {
	var out []core.Val
	for {
		v, ok, err := s.Pop(se)
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}
