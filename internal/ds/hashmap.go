package ds

import (
	"cxl0/internal/core"
	"cxl0/internal/flit"
)

// Map is a durably linearizable hash map: a fixed array of bucket heads,
// each an unsorted Harris-style chain of nodes with three fields — key,
// value, and a marked next pointer. Updates to an existing key overwrite
// the node's value field (an atomic register per key).
type Map struct {
	h       *flit.Heap
	buckets []flit.Var
}

// NewMap allocates a map with the given bucket count on the heap's machine.
func NewMap(h *flit.Heap, buckets int) (*Map, error) {
	if buckets <= 0 {
		buckets = 16
	}
	bs, err := h.AllocVars(buckets)
	if err != nil {
		return nil, err
	}
	return &Map{h: h, buckets: bs}, nil
}

func (m *Map) bucket(k core.Val) flit.Var {
	// Fibonacci hashing over the key.
	h := uint64(k) * 0x9e3779b97f4a7c15
	return m.buckets[h%uint64(len(m.buckets))]
}

// findNode walks the bucket chain for k and returns the pointer value of
// the unmarked node holding k (0 when absent) along with the field that
// points to it.
func (m *Map) findNode(se *flit.Session, k core.Val) (predField flit.Var, cur core.Val, err error) {
	head := m.bucket(k)
retry:
	for {
		predField = head
		e, err := se.Load(predField)
		if err != nil {
			return flit.Var{}, 0, err
		}
		cur, _ = dec(e)
		for {
			base, valid := nodeBase(cur)
			if !valid {
				return predField, nilPtr, nil
			}
			nextE, err := se.Load(field(m.h, base, 2))
			if err != nil {
				return flit.Var{}, 0, err
			}
			next, marked := dec(nextE)
			if marked {
				ok, err := se.CAS(predField, enc(cur, false), enc(next, false))
				if err != nil {
					return flit.Var{}, 0, err
				}
				if !ok {
					continue retry
				}
				cur = next
				continue
			}
			key, err := se.Load(field(m.h, base, 0))
			if err != nil {
				return flit.Var{}, 0, err
			}
			if key == k {
				return predField, cur, nil
			}
			predField = field(m.h, base, 2)
			cur = next
		}
	}
}

// Put maps k to v, overwriting any previous value.
func (m *Map) Put(se *flit.Session, k, v core.Val) error {
	if k < 0 || v < 0 {
		return ErrNegative
	}
	for {
		predField, cur, err := m.findNode(se, k)
		if err != nil {
			return err
		}
		if cur != nilPtr {
			base, _ := nodeBase(cur)
			if err := se.Store(field(m.h, base, 1), v); err != nil {
				return err
			}
			return se.Complete()
		}
		base, err := m.h.AllocNode(3)
		if err != nil {
			return err
		}
		if err := se.PrivateStore(field(m.h, base, 0), k); err != nil {
			return err
		}
		if err := se.PrivateStore(field(m.h, base, 1), v); err != nil {
			return err
		}
		if err := se.PrivateStore(field(m.h, base, 2), enc(nilPtr, false)); err != nil {
			return err
		}
		ok, err := se.CAS(predField, enc(nilPtr, false), enc(ptr(base), false))
		if err != nil {
			return err
		}
		if ok {
			return se.Complete()
		}
	}
}

// Get returns the value mapped to k; ok is false when k is absent.
func (m *Map) Get(se *flit.Session, k core.Val) (v core.Val, ok bool, err error) {
	if k < 0 {
		return 0, false, ErrNegative
	}
	e, err := se.Load(m.bucket(k))
	if err != nil {
		return 0, false, err
	}
	cur, _ := dec(e)
	for {
		base, valid := nodeBase(cur)
		if !valid {
			return 0, false, se.Complete()
		}
		key, err := se.Load(field(m.h, base, 0))
		if err != nil {
			return 0, false, err
		}
		nextE, err := se.Load(field(m.h, base, 2))
		if err != nil {
			return 0, false, err
		}
		next, marked := dec(nextE)
		if key == k && !marked {
			val, err := se.Load(field(m.h, base, 1))
			if err != nil {
				return 0, false, err
			}
			return val, true, se.Complete()
		}
		cur = next
	}
}

// Delete removes k; it returns false when k is absent.
func (m *Map) Delete(se *flit.Session, k core.Val) (bool, error) {
	if k < 0 {
		return false, ErrNegative
	}
	for {
		predField, cur, err := m.findNode(se, k)
		if err != nil {
			return false, err
		}
		if cur == nilPtr {
			return false, se.Complete()
		}
		base, _ := nodeBase(cur)
		nextE, err := se.Load(field(m.h, base, 2))
		if err != nil {
			return false, err
		}
		next, marked := dec(nextE)
		if marked {
			continue
		}
		ok, err := se.CAS(field(m.h, base, 2), enc(next, false), enc(next, true))
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		if _, err := se.CAS(predField, enc(cur, false), enc(next, false)); err != nil {
			return false, err
		}
		return true, se.Complete()
	}
}

// Snapshot returns all live key/value pairs. Not atomic under concurrency;
// intended for recovery inspection and tests.
func (m *Map) Snapshot(se *flit.Session) (map[core.Val]core.Val, error) {
	out := map[core.Val]core.Val{}
	for _, head := range m.buckets {
		e, err := se.Load(head)
		if err != nil {
			return nil, err
		}
		cur, _ := dec(e)
		for {
			base, valid := nodeBase(cur)
			if !valid {
				break
			}
			key, err := se.Load(field(m.h, base, 0))
			if err != nil {
				return nil, err
			}
			val, err := se.Load(field(m.h, base, 1))
			if err != nil {
				return nil, err
			}
			nextE, err := se.Load(field(m.h, base, 2))
			if err != nil {
				return nil, err
			}
			next, marked := dec(nextE)
			if !marked {
				out[key] = val
			}
			cur = next
		}
	}
	return out, nil
}
