package ds

import (
	"cxl0/internal/core"
	"cxl0/internal/flit"
)

// Set is a durably linearizable sorted-list set in the style of Harris's
// lock-free linked list: deletion first marks the victim's next pointer
// (the linearization point), then unlinks it physically; traversals snip
// marked nodes as they go.
//
// Nodes have two fields: key, and a marked next pointer (enc/dec).
type Set struct {
	h *flit.Heap
	// head holds the marked pointer to the first node (the mark bit of the
	// head itself is never set).
	head flit.Var
}

// NewSet allocates an empty set on the heap's machine.
func NewSet(h *flit.Heap) (*Set, error) {
	head, err := h.AllocVar()
	if err != nil {
		return nil, err
	}
	return &Set{h: h, head: head}, nil
}

// search returns the field holding the pointer to the first unmarked node
// with key ≥ k (predField), and that node's pointer value (0 when none).
// Marked nodes encountered on the way are physically unlinked.
func (s *Set) search(se *flit.Session, k core.Val) (predField flit.Var, cur core.Val, err error) {
retry:
	for {
		predField = s.head
		e, err := se.Load(predField)
		if err != nil {
			return flit.Var{}, 0, err
		}
		cur, _ = dec(e)
		for {
			curBase, valid := nodeBase(cur)
			if !valid {
				return predField, nilPtr, nil
			}
			nextE, err := se.Load(field(s.h, curBase, 1))
			if err != nil {
				return flit.Var{}, 0, err
			}
			next, marked := dec(nextE)
			if marked {
				// Snip the logically deleted node.
				ok, err := se.CAS(predField, enc(cur, false), enc(next, false))
				if err != nil {
					return flit.Var{}, 0, err
				}
				if !ok {
					continue retry
				}
				cur = next
				continue
			}
			key, err := se.Load(field(s.h, curBase, 0))
			if err != nil {
				return flit.Var{}, 0, err
			}
			if key >= k {
				return predField, cur, nil
			}
			predField = field(s.h, curBase, 1)
			cur = next
		}
	}
}

// keyOf reads the key of the node a pointer value names.
func (s *Set) keyOf(se *flit.Session, p core.Val) (core.Val, error) {
	base, _ := nodeBase(p)
	return se.Load(field(s.h, base, 0))
}

// Insert adds k; it returns false when k is already present.
func (s *Set) Insert(se *flit.Session, k core.Val) (bool, error) {
	if k < 0 {
		return false, ErrNegative
	}
	for {
		predField, cur, err := s.search(se, k)
		if err != nil {
			return false, err
		}
		if cur != nilPtr {
			key, err := s.keyOf(se, cur)
			if err != nil {
				return false, err
			}
			if key == k {
				return false, se.Complete()
			}
		}
		base, err := s.h.AllocNode(2)
		if err != nil {
			return false, err
		}
		if err := se.PrivateStore(field(s.h, base, 0), k); err != nil {
			return false, err
		}
		if err := se.PrivateStore(field(s.h, base, 1), enc(cur, false)); err != nil {
			return false, err
		}
		ok, err := se.CAS(predField, enc(cur, false), enc(ptr(base), false))
		if err != nil {
			return false, err
		}
		if ok {
			return true, se.Complete()
		}
	}
}

// Remove deletes k; it returns false when k is absent.
func (s *Set) Remove(se *flit.Session, k core.Val) (bool, error) {
	if k < 0 {
		return false, ErrNegative
	}
	for {
		predField, cur, err := s.search(se, k)
		if err != nil {
			return false, err
		}
		if cur == nilPtr {
			return false, se.Complete()
		}
		key, err := s.keyOf(se, cur)
		if err != nil {
			return false, err
		}
		if key != k {
			return false, se.Complete()
		}
		curBase, _ := nodeBase(cur)
		nextE, err := se.Load(field(s.h, curBase, 1))
		if err != nil {
			return false, err
		}
		next, marked := dec(nextE)
		if marked {
			continue // someone else is removing it; retry to settle
		}
		// Logical deletion is the linearization point.
		ok, err := se.CAS(field(s.h, curBase, 1), enc(next, false), enc(next, true))
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		// Physical unlink; a failure leaves it to future traversals.
		if _, err := se.CAS(predField, enc(cur, false), enc(next, false)); err != nil {
			return false, err
		}
		return true, se.Complete()
	}
}

// Contains reports whether k is present. It is wait-free with respect to
// the list length: no snipping, just traversal.
func (s *Set) Contains(se *flit.Session, k core.Val) (bool, error) {
	if k < 0 {
		return false, ErrNegative
	}
	e, err := se.Load(s.head)
	if err != nil {
		return false, err
	}
	cur, _ := dec(e)
	for {
		base, valid := nodeBase(cur)
		if !valid {
			return false, se.Complete()
		}
		key, err := se.Load(field(s.h, base, 0))
		if err != nil {
			return false, err
		}
		nextE, err := se.Load(field(s.h, base, 1))
		if err != nil {
			return false, err
		}
		next, marked := dec(nextE)
		if key == k && !marked {
			return true, se.Complete()
		}
		if key > k {
			return false, se.Complete()
		}
		cur = next
	}
}

// Snapshot returns the unmarked keys in order. Intended for recovery
// inspection and tests; it is not atomic under concurrency.
func (s *Set) Snapshot(se *flit.Session) ([]core.Val, error) {
	var out []core.Val
	e, err := se.Load(s.head)
	if err != nil {
		return nil, err
	}
	cur, _ := dec(e)
	for {
		base, valid := nodeBase(cur)
		if !valid {
			return out, nil
		}
		key, err := se.Load(field(s.h, base, 0))
		if err != nil {
			return nil, err
		}
		nextE, err := se.Load(field(s.h, base, 1))
		if err != nil {
			return nil, err
		}
		next, marked := dec(nextE)
		if !marked {
			out = append(out, key)
		}
		cur = next
	}
}
