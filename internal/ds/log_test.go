package ds

import (
	"errors"
	"sync"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/flit"
	"cxl0/internal/memsim"
)

func TestLogSequential(t *testing.T) {
	_, h, se := rig(t, flit.CXL0FliT)
	l, err := NewLog(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := core.Val(1); i <= 3; i++ {
		idx, err := l.Append(se, i*10)
		if err != nil {
			t.Fatal(err)
		}
		if idx != int(i)-1 {
			t.Errorf("append %d landed at index %d", i, idx)
		}
	}
	if n, _ := l.Len(se); n != 3 {
		t.Errorf("Len = %d", n)
	}
	if v, ok, _ := l.Get(se, 1); !ok || v != 20 {
		t.Errorf("Get(1) = %d,%v", v, ok)
	}
	if _, _, err := l.Get(se, 3); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Get past the frontier: %v", err)
	}
	if _, err := l.Append(se, 0); !errors.Is(err, ErrNegative) {
		t.Errorf("zero entry accepted: %v", err)
	}
}

func TestLogFull(t *testing.T) {
	_, h, se := rig(t, flit.CXL0FliT)
	l, err := NewLog(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(se, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(se, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(se, 3); !errors.Is(err, ErrCorrupt) {
		t.Errorf("overfull append: %v", err)
	}
}

func TestLogConcurrentAppends(t *testing.T) {
	c, h, _ := rig(t, flit.CXL0FliT)
	l, err := NewLog(h, 64)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 4, 10
	indexes := make(chan int, writers*per)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			se := session(t, c, core.MachineID(w%2), flit.CXL0FliT)
			for i := 0; i < per; i++ {
				idx, err := l.Append(se, core.Val(w*100+i+1))
				if err != nil {
					t.Error(err)
					return
				}
				indexes <- idx
			}
		}(w)
	}
	wg.Wait()
	close(indexes)
	seen := map[int]bool{}
	for idx := range indexes {
		if seen[idx] {
			t.Errorf("index %d assigned twice", idx)
		}
		seen[idx] = true
	}
	if len(seen) != writers*per {
		t.Fatalf("%d distinct indexes, want %d", len(seen), writers*per)
	}
	se := session(t, c, 0, flit.CXL0FliT)
	if n, _ := l.Len(se); n != writers*per {
		t.Errorf("Len = %d, want %d", n, writers*per)
	}
	snap, err := l.Snapshot(se)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != writers*per {
		t.Errorf("snapshot has %d entries", len(snap))
	}
}

// TestLogSurvivesMemoryHostCrash: committed entries persist; the log is
// readable after crash + recovery.
func TestLogSurvivesMemoryHostCrash(t *testing.T) {
	c, h, se := rig(t, flit.CXL0FliT)
	l, err := NewLog(h, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := core.Val(1); i <= 5; i++ {
		if _, err := l.Append(se, i); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash(1)
	c.Recover(1)
	if err := l.Recover(se); err != nil {
		t.Fatal(err)
	}
	snap, err := l.Snapshot(se)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 5 {
		t.Fatalf("lost committed entries: %v", snap)
	}
	for i, v := range snap {
		if v != core.Val(i+1) {
			t.Errorf("entry %d = %d", i, v)
		}
	}
	// The log keeps working after recovery.
	if idx, err := l.Append(se, 99); err != nil || idx != 5 {
		t.Errorf("post-recovery append: idx=%d err=%v", idx, err)
	}
}

// TestLogRecoverySealsHoles: an appender that dies between claiming a slot
// and committing leaves a hole; Recover seals it as a tombstone and later
// appends proceed.
func TestLogRecoverySealsHoles(t *testing.T) {
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "doomed", Mem: core.NonVolatile, Heap: 16},
		{Name: "memory", Mem: core.NonVolatile, Heap: 4096},
		{Name: "survivor", Mem: core.NonVolatile, Heap: 16},
	}, memsim.Config{})
	h, err := flit.NewHeap(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	doomedTh, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	doomed := flit.NewSession(flit.CXL0FliT, doomedTh)
	l, err := NewLog(h, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(doomed, 7); err != nil {
		t.Fatal(err)
	}
	// The doomed client claims slot 1 but its machine dies before the
	// write: reproduce by claiming through the session's FAA directly.
	if _, err := doomed.FAA(logClaim(l), 1); err != nil {
		t.Fatal(err)
	}
	c.Crash(0)

	// A survivor recovers and appends.
	survTh, err := c.NewThread(2)
	if err != nil {
		t.Fatal(err)
	}
	surv := flit.NewSession(flit.CXL0FliT, survTh)
	if err := l.Recover(surv); err != nil {
		t.Fatal(err)
	}
	n, err := l.Len(surv)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("frontier = %d after recovery, want 2 (entry + sealed hole)", n)
	}
	if _, ok, _ := l.Get(surv, 1); ok {
		t.Errorf("hole not a tombstone")
	}
	idx, err := l.Append(surv, 8)
	if err != nil || idx != 2 {
		t.Fatalf("post-recovery append: idx=%d err=%v", idx, err)
	}
	snap, _ := l.Snapshot(surv)
	if len(snap) != 2 || snap[0] != 7 || snap[1] != 8 {
		t.Errorf("snapshot = %v, want [7 8]", snap)
	}
}

// logClaim exposes the claim var for the hole test.
func logClaim(l *Log) flit.Var { return l.claim }
