package ds

import (
	"cxl0/internal/core"
	"cxl0/internal/flit"
)

// Register is a durably linearizable atomic register.
type Register struct {
	v flit.Var
}

// NewRegister allocates a register on the heap's machine, initialized to 0.
func NewRegister(h *flit.Heap) (*Register, error) {
	v, err := h.AllocVar()
	if err != nil {
		return nil, err
	}
	return &Register{v: v}, nil
}

// Read returns the register's value.
func (r *Register) Read(se *flit.Session) (core.Val, error) {
	v, err := se.Load(r.v)
	if err != nil {
		return 0, err
	}
	return v, se.Complete()
}

// Write sets the register's value.
func (r *Register) Write(se *flit.Session, v core.Val) error {
	if v < 0 {
		return ErrNegative
	}
	if err := se.Store(r.v, v); err != nil {
		return err
	}
	return se.Complete()
}

// CompareAndSwap atomically replaces old with new.
func (r *Register) CompareAndSwap(se *flit.Session, old, new core.Val) (bool, error) {
	if new < 0 {
		return false, ErrNegative
	}
	ok, err := se.CAS(r.v, old, new)
	if err != nil {
		return false, err
	}
	return ok, se.Complete()
}

// Counter is a durably linearizable fetch-and-add counter.
type Counter struct {
	v flit.Var
}

// NewCounter allocates a counter on the heap's machine, initialized to 0.
func NewCounter(h *flit.Heap) (*Counter, error) {
	v, err := h.AllocVar()
	if err != nil {
		return nil, err
	}
	return &Counter{v: v}, nil
}

// Add adds delta and returns the previous value.
func (c *Counter) Add(se *flit.Session, delta core.Val) (core.Val, error) {
	prev, err := se.FAA(c.v, delta)
	if err != nil {
		return 0, err
	}
	return prev, se.Complete()
}

// Inc increments by one and returns the previous value.
func (c *Counter) Inc(se *flit.Session) (core.Val, error) { return c.Add(se, 1) }

// Value returns the current count.
func (c *Counter) Value(se *flit.Session) (core.Val, error) {
	v, err := se.Load(c.v)
	if err != nil {
		return 0, err
	}
	return v, se.Complete()
}
