package pool

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/kv"
)

func openTest(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// keyOnCluster returns a key the router routes to cluster c.
func keyOnCluster(t *testing.T, r *Router, c int) core.Val {
	t.Helper()
	for k := core.Val(0); k < 10000; k++ {
		if r.ClusterOf(k) == c {
			return k
		}
	}
	t.Fatalf("no key found for cluster %d", c)
	return 0
}

// TestRouterSingleClusterEquivalence pins the refactor's ground truth: a
// 1-cluster Router is bit-identical to the bare Store it wraps — same
// results, same simulated clock, same metrics — so porting the workload
// harness onto the Router changed nothing for existing configurations.
func TestRouterSingleClusterEquivalence(t *testing.T) {
	cfg := kv.Config{Shards: 3, Strategy: kv.RangedCommit, Batch: 4, Capacity: 256, Seed: 11, EvictEvery: 3}
	st, err := kv.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := openTest(t, Config{Clusters: 1, Store: cfg})

	drive := func(db kv.DB) {
		for k := core.Val(0); k < 40; k++ {
			if _, err := db.Put(k, k*3+1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := db.Delete(7); err != nil {
			t.Fatal(err)
		}
		if err := db.Sync(); err != nil {
			t.Fatal(err)
		}
		for k := core.Val(0); k < 40; k += 5 {
			if _, _, err := db.Get(k); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := db.Scan(5, 30, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := db.MultiGet([]core.Val{3, 99, 12}); err != nil {
			t.Fatal(err)
		}
		b := new(kv.Batch).Put(100, 1).Put(101, 2).Delete(100)
		if ack, err := db.Apply(b); err != nil || !ack.Durable {
			t.Fatalf("apply: %+v, %v", ack, err)
		}
		db.Crash(1)
		if _, err := db.Recover(1); err != nil {
			t.Fatal(err)
		}
	}
	drive(st)
	drive(rt)
	if !reflect.DeepEqual(st.Metrics(), rt.Metrics()) {
		t.Fatalf("metrics diverged:\nstore:  %+v\nrouter: %+v", st.Metrics(), rt.Metrics())
	}
	if st.NowNS() != rt.NowNS() {
		t.Fatalf("clocks diverged: %.0f vs %.0f", st.NowNS(), rt.NowNS())
	}
}

// TestRouterRoutesAndAggregates: keys partition across clusters by the
// pool bucket map, every key stays readable through the router, and the
// aggregate metrics are the per-cluster sums in global shard order.
func TestRouterRoutesAndAggregates(t *testing.T) {
	r := openTest(t, Config{Clusters: 3, Store: kv.Config{Shards: 2, Strategy: kv.MStoreEach, Capacity: 128, Seed: 5}})
	if r.NumClusters() != 3 || r.NumShards() != 6 {
		t.Fatalf("pool shape: %d clusters, %d shards", r.NumClusters(), r.NumShards())
	}
	if r.NumBuckets()%3 != 0 {
		t.Fatalf("bucket count %d not a multiple of the cluster count", r.NumBuckets())
	}
	const n = 60
	seen := map[int]int{}
	for k := core.Val(0); k < n; k++ {
		ack, err := r.Put(k, k+1)
		if err != nil {
			t.Fatal(err)
		}
		c := r.ClusterOf(k)
		seen[c]++
		if want := r.ClusterOfBucket(r.BucketOf(k)); c != want {
			t.Fatalf("key %d: ClusterOf %d != ClusterOfBucket %d", k, c, want)
		}
		if ack.Shard < r.shardBase[c] || (c < 2 && ack.Shard >= r.shardBase[c+1]) {
			t.Fatalf("key %d on cluster %d acked with global shard %d", k, c, ack.Shard)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("60 keys only reached clusters %v", seen)
	}
	for k := core.Val(0); k < n; k++ {
		v, ok, err := r.Get(k)
		if err != nil || !ok || v != k+1 {
			t.Fatalf("get %d = (%d, %v, %v)", k, v, ok, err)
		}
		// The key must live in exactly its cluster's store.
		for c := 0; c < 3; c++ {
			_, there, err := r.Cluster(c).Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if there != (c == r.ClusterOf(k)) {
				t.Fatalf("key %d present=%v on cluster %d, routed to %d", k, there, c, r.ClusterOf(k))
			}
		}
	}
	m := r.Metrics()
	if m.Puts != n || m.Acked != n {
		t.Fatalf("aggregate puts=%d acked=%d, want %d", m.Puts, m.Acked, n)
	}
	if len(m.PerShardBusyNS) != 6 || len(m.PerShardChurnNS) != 6 {
		t.Fatalf("per-shard series length %d/%d, want 6", len(m.PerShardBusyNS), len(m.PerShardChurnNS))
	}
	var sum float64
	for c := 0; c < 3; c++ {
		for _, b := range r.Cluster(c).Metrics().PerShardBusyNS {
			sum += b
		}
	}
	if sum != m.TotalBusyNS() {
		t.Fatalf("aggregate busy %.0f != per-cluster sum %.0f", m.TotalBusyNS(), sum)
	}
}

// TestRouterMultiGetMergesAcrossClusters: results come back in input
// order with per-key found flags, regardless of which cluster served
// each key.
func TestRouterMultiGetMergesAcrossClusters(t *testing.T) {
	r := openTest(t, Config{Clusters: 2, Store: kv.Config{Shards: 2, Strategy: kv.GPFEach, Capacity: 64, Seed: 3}})
	k0 := keyOnCluster(t, r, 0)
	k1 := keyOnCluster(t, r, 1)
	for _, k := range []core.Val{k0, k1} {
		if _, err := r.Put(k, k*10+1); err != nil {
			t.Fatal(err)
		}
	}
	missing := core.Val(9999)
	for r.ClusterOf(missing) != 1 {
		missing++
	}
	keys := []core.Val{k1, missing, k0, k1}
	res, err := r.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(keys) {
		t.Fatalf("%d results for %d keys", len(res), len(keys))
	}
	for i, l := range res {
		if l.Key != keys[i] {
			t.Fatalf("result %d is key %d, want %d (input order lost)", i, l.Key, keys[i])
		}
		wantFound := keys[i] != missing
		if l.Found != wantFound || (wantFound && l.Val != keys[i]*10+1) {
			t.Fatalf("result %d = %+v", i, l)
		}
	}
	if _, err := r.MultiGet([]core.Val{-1}); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("negative key: %v", err)
	}
	m := r.Metrics()
	if m.MultiGets != 2 {
		t.Fatalf("MultiGets = %d, want 2 (one fan-out per involved cluster)", m.MultiGets)
	}
	if m.Gets != uint64(len(keys)) {
		t.Fatalf("Gets = %d, want %d (one per resolved key)", m.Gets, len(keys))
	}
}

// TestRouterScanMergesGlobalOrder: a pooled scan returns one globally
// key-ordered result across clusters, honoring the limit.
func TestRouterScanMergesGlobalOrder(t *testing.T) {
	r := openTest(t, Config{Clusters: 3, Store: kv.Config{Shards: 2, Strategy: kv.MStoreEach, Capacity: 128, Seed: 7}})
	const n = 30
	for k := core.Val(0); k < n; k++ {
		if _, err := r.Put(k, k+100); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := r.Scan(5, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 {
		t.Fatalf("scan [5,25) returned %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if want := core.Val(5 + i); p.Key != want || p.Val != want+100 {
			t.Fatalf("pair %d = %+v, want key %d (global order broken)", i, p, want)
		}
	}
	limited, err := r.Scan(0, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 7 || limited[0].Key != 0 || limited[6].Key != 6 {
		t.Fatalf("limited scan = %v, want keys 0..6", limited)
	}
}

// TestRouterApplySplitsAndCommits: one client batch spanning clusters is
// split per cluster, applied in order (a put then delete of the same key
// deletes it), committed everywhere, and acknowledged with one durable
// Ack.
func TestRouterApplySplitsAndCommits(t *testing.T) {
	r := openTest(t, Config{Clusters: 2, Store: kv.Config{Shards: 2, Strategy: kv.GroupCommit, Batch: 64, Capacity: 64, Seed: 9}})
	k0 := keyOnCluster(t, r, 0)
	k1 := keyOnCluster(t, r, 1)
	k1b := k1 + 1
	for r.ClusterOf(k1b) != 1 || k1b == k1 {
		k1b++
	}
	b := new(kv.Batch).Put(k0, 10).Put(k1, 20).Put(k1b, 30).Delete(k1)
	ack, err := r.Apply(b)
	if err != nil || !ack.Durable {
		t.Fatalf("apply: %+v, %v", ack, err)
	}
	// The batch's final op (Delete k1) lives on cluster 1: the returned
	// ack must point into cluster 1's global shard range.
	if ack.Shard < r.shardBase[1] {
		t.Fatalf("ack shard %d not global to cluster 1 (base %d)", ack.Shard, r.shardBase[1])
	}
	if v, ok, _ := r.Get(k0); !ok || v != 10 {
		t.Fatalf("k0 = (%d, %v)", v, ok)
	}
	if _, ok, _ := r.Get(k1); ok {
		t.Fatal("k1 survived its in-batch delete")
	}
	if v, ok, _ := r.Get(k1b); !ok || v != 30 {
		t.Fatalf("k1b = (%d, %v)", v, ok)
	}
	m := r.Metrics()
	if m.Batches != 2 {
		t.Fatalf("Batches = %d, want 2 (one sub-apply per involved cluster)", m.Batches)
	}
	// Apply is the commit point even under a batched strategy with a huge
	// Config.Batch: everything must already be acknowledged durable.
	if m.Acked != 4 {
		t.Fatalf("Acked = %d, want 4", m.Acked)
	}
	// An empty batch is a durable no-op.
	if ack, err := r.Apply(new(kv.Batch)); err != nil || !ack.Durable {
		t.Fatalf("empty apply: %+v, %v", ack, err)
	}
	// A bad op anywhere fails the whole batch before any cluster applies.
	before := r.Metrics().Puts
	if _, err := r.Apply(new(kv.Batch).Put(k0, 40).Put(-1, 1)); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("bad batch: %v", err)
	}
	if r.Metrics().Puts != before {
		t.Fatal("failed batch still applied operations")
	}
}

// TestRouterCrashRecoverGlobalIndex: Crash/Recover address shards by
// global index and pass through to the owning cluster, leaving the other
// clusters serving.
func TestRouterCrashRecoverGlobalIndex(t *testing.T) {
	r := openTest(t, Config{Clusters: 2, Store: kv.Config{Shards: 2, Strategy: kv.MStoreEach, Capacity: 64, Seed: 4}})
	k0 := keyOnCluster(t, r, 0)
	k1 := keyOnCluster(t, r, 1)
	for _, k := range []core.Val{k0, k1} {
		if _, err := r.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the shard serving k1, addressed globally.
	local := r.Cluster(1).ShardOf(k1)
	global := r.shardBase[1] + local
	r.Crash(global)
	if _, _, err := r.Get(k1); !errors.Is(err, kv.ErrShardDown) {
		t.Fatalf("get through crashed shard: %v", err)
	} else if !strings.Contains(err.Error(), "cluster 1") {
		t.Fatalf("pooled error %q does not name the owning cluster", err)
	}
	if v, ok, err := r.Get(k0); err != nil || !ok || v != k0+1 {
		t.Fatalf("other cluster disturbed: (%d, %v, %v)", v, ok, err)
	}
	stats, err := r.Recover(global)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shard != global {
		t.Fatalf("recovery stats shard %d, want global %d", stats.Shard, global)
	}
	if v, ok, err := r.Get(k1); err != nil || !ok || v != k1+1 {
		t.Fatalf("k1 after recovery: (%d, %v, %v)", v, ok, err)
	}
	if m := r.Metrics(); m.Recoveries != 1 {
		t.Fatalf("aggregate recoveries = %d", m.Recoveries)
	}
}

// TestRouterHashDecorrelatedFromShardMap is the regression test for a
// routing-aliasing bug: the pool map and the store shard map both reduce
// a key hash modulo bucket counts that share factors (128 by default), so
// if the two levels used the same hash, every cluster at Clusters ==
// Shards would route all of its traffic to the one shard congruent to
// its own index. Each cluster must spread its keys over all of its
// shards.
func TestRouterHashDecorrelatedFromShardMap(t *testing.T) {
	for _, shape := range []struct{ clusters, shards int }{{4, 4}, {2, 4}, {4, 2}} {
		r := openTest(t, Config{Clusters: shape.clusters, Store: kv.Config{Shards: shape.shards, Strategy: kv.MStoreEach, Capacity: 4096, Seed: 3}})
		for k := core.Val(0); k < 600; k++ {
			if _, err := r.Put(k, 1); err != nil {
				t.Fatal(err)
			}
		}
		for c := 0; c < shape.clusters; c++ {
			busy := r.Cluster(c).Metrics().PerShardBusyNS
			idle := 0
			for _, b := range busy {
				if b == 0 {
					idle++
				}
			}
			if idle > 0 {
				t.Errorf("%d clusters x %d shards: cluster %d left %d of %d shards idle (%v) — pool and shard hashing alias",
					shape.clusters, shape.shards, c, idle, shape.shards, busy)
			}
		}
	}
}

// TestRouterThroughputScalesWithClusters is the pooling claim in
// miniature: the same write traffic spread over more clusters finishes in
// a smaller makespan — clusters are independent fabrics, so even GPF
// commits stop stalling each other across cluster boundaries.
func TestRouterThroughputScalesWithClusters(t *testing.T) {
	makespan := func(clusters int) float64 {
		r := openTest(t, Config{Clusters: clusters, Store: kv.Config{Shards: 2, Strategy: kv.GroupCommit, Batch: 8, Capacity: 1024, Seed: 6}})
		for k := core.Val(0); k < 400; k++ {
			if _, err := r.Put(k, k+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Sync(); err != nil {
			t.Fatal(err)
		}
		return r.Metrics().MaxBusyNS()
	}
	one, four := makespan(1), makespan(4)
	if four >= one {
		t.Fatalf("4-cluster makespan %.0f not below 1-cluster %.0f", four, one)
	}
}

// TestRouterCompactGlobalIndices: Compact passes through to every
// cluster's compaction, returns stats carrying global shard indices, and
// the aggregate metrics sum the per-cluster compaction counters.
func TestRouterCompactGlobalIndices(t *testing.T) {
	r := openTest(t, Config{Clusters: 2, Store: kv.Config{Shards: 2, Strategy: kv.RangedCommit, Batch: 4, Capacity: 128, Seed: 13}})
	// Touch every shard of every cluster, with overwrite churn so each
	// compaction reclaims something.
	for round := 0; round < 3; round++ {
		for k := core.Val(0); k < 64; k++ {
			if _, err := r.Put(k, core.Val(round)*100+k+1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != r.NumShards() {
		t.Fatalf("compacted %d shards of %d", len(stats), r.NumShards())
	}
	seen := map[int]bool{}
	reclaimed := 0
	for _, cs := range stats {
		if cs.Shard < 0 || cs.Shard >= r.NumShards() {
			t.Fatalf("stats carry local shard index %d, want global [0,%d)", cs.Shard, r.NumShards())
		}
		if seen[cs.Shard] {
			t.Fatalf("shard %d compacted twice in one call", cs.Shard)
		}
		seen[cs.Shard] = true
		reclaimed += cs.Reclaimed
	}
	if reclaimed == 0 {
		t.Fatal("overwrite churn reclaimed nothing")
	}
	m := r.Metrics()
	if int(m.Compactions) != r.NumShards() || int(m.ReclaimedSlots) != reclaimed {
		t.Fatalf("aggregate metrics %d compactions / %d reclaimed, want %d / %d",
			m.Compactions, m.ReclaimedSlots, r.NumShards(), reclaimed)
	}
	if len(m.CompactionNS) != r.NumShards() {
		t.Fatalf("%d compaction durations pooled, want %d", len(m.CompactionNS), r.NumShards())
	}
	// Visibility unchanged across the pooled compaction, and durable.
	for i := 0; i < r.NumShards(); i++ {
		r.Crash(i)
		if _, err := r.Recover(i); err != nil {
			t.Fatal(err)
		}
	}
	for k := core.Val(0); k < 64; k++ {
		if v, ok, err := r.Get(k); err != nil || !ok || v != 200+k+1 {
			t.Fatalf("get %d = (%d, %v, %v) after pooled compaction", k, v, ok, err)
		}
	}
}
