package pool_test

import (
	"testing"

	"cxl0/internal/kv"
	"cxl0/internal/kv/kvtest"
	"cxl0/internal/pool"
)

func routerFactory(clusters int) kvtest.Factory {
	return func(t *testing.T, cfg kv.Config) kv.DB {
		t.Helper()
		r, err := pool.Open(pool.Config{Clusters: clusters, Store: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
}

// TestRouterConformance runs the kv.DB conformance suite against a
// 2-cluster Router: the pooled service must honor the exact contract a
// single store does.
func TestRouterConformance(t *testing.T) {
	kvtest.Run(t, routerFactory(2))
}

// TestRouterConformanceThreeClusters re-runs the suite at 3 clusters,
// where fan-out and merge paths split three ways.
func TestRouterConformanceThreeClusters(t *testing.T) {
	kvtest.Run(t, routerFactory(3))
}

// TestRouterShardFullDiagnosable: the structured ShardFullError surfaces
// through the router unchanged.
func TestRouterShardFullDiagnosable(t *testing.T) {
	kvtest.FullToDiagnosable(t, routerFactory(1))
}
