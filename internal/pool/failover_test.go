package pool_test

import (
	"errors"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/kv"
	"cxl0/internal/pool"
)

// TestRouterFrontFailover pins the pooled front-end failover fan-out:
// CrashFront takes every cluster's front down (the whole pooled surface
// refuses with ErrFrontDown), RecoverFront re-attaches all of them with
// stats in global shard order, and acknowledged writes survive with
// reads resolving old-or-new.
func TestRouterFrontFailover(t *testing.T) {
	const maxKey = 23
	r, err := pool.Open(pool.Config{
		Clusters: 2,
		Store: kv.Config{
			Shards: 2, Capacity: 512, Strategy: kv.RangedCommit, Batch: 3,
			PipelineDepth: 3, Seed: 17,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := core.Val(0); k <= maxKey; k++ {
		if _, err := r.Put(k, 100+k); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	// Overwrites staged and in flight across both clusters.
	for k := core.Val(0); k <= maxKey; k++ {
		if _, err := r.Put(k, 500+k); err != nil {
			t.Fatal(err)
		}
	}

	r.CrashFront()
	if !r.FrontDown() {
		t.Fatal("FrontDown() false after CrashFront")
	}
	if _, err := r.Put(0, 9); !errors.Is(err, kv.ErrFrontDown) {
		t.Fatalf("put while pooled fronts down: %v, want ErrFrontDown", err)
	}
	if _, _, err := r.Get(0); !errors.Is(err, kv.ErrFrontDown) {
		t.Fatalf("get while pooled fronts down: %v, want ErrFrontDown", err)
	}
	if err := r.Sync(); !errors.Is(err, kv.ErrFrontDown) {
		t.Fatalf("sync while pooled fronts down: %v, want ErrFrontDown", err)
	}

	stats, err := r.RecoverFront()
	if err != nil {
		t.Fatalf("recover fronts: %v", err)
	}
	if len(stats) != r.NumShards() {
		t.Fatalf("re-attached %d shards, want %d", len(stats), r.NumShards())
	}
	for i, rs := range stats {
		if rs.Shard != i {
			t.Fatalf("stats[%d].Shard = %d, want global shard order", i, rs.Shard)
		}
	}
	if r.FrontDown() {
		t.Fatal("FrontDown() true after RecoverFront")
	}
	for k := core.Val(0); k <= maxKey; k++ {
		v, ok, err := r.Get(k)
		if err != nil || !ok {
			t.Fatalf("get(%d) after failover: (%v, %v)", k, ok, err)
		}
		if v != 100+k && v != 500+k {
			t.Fatalf("key %d = %d after failover, want acked %d or staged %d", k, v, 100+k, 500+k)
		}
	}
	// Service resumes across the pool.
	for k := core.Val(0); k <= maxKey; k++ {
		if _, err := r.Put(k, 900+k); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	for k := core.Val(0); k <= maxKey; k++ {
		if v, ok, _ := r.Get(k); !ok || v != 900+k {
			t.Fatalf("key %d = (%d,%v) after resumed writes, want %d", k, v, ok, 900+k)
		}
	}
}
