package pool

import (
	"sort"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/kv"
	"cxl0/internal/obs"
)

func obsPoolCfg(clusters int) Config {
	return Config{
		Clusters: clusters,
		Store:    kv.Config{Shards: 2, Strategy: kv.GroupCommit, Batch: 4, Capacity: 512, Seed: 7},
	}
}

// seedKeys writes n sequential keys through the router and syncs.
func seedKeys(t *testing.T, r *Router, n int) {
	t.Helper()
	for k := core.Val(0); k < core.Val(n); k++ {
		if _, err := r.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestScanOverFetchCapped pins the progressive fan-out: a limited pooled
// scan returns the same result as a full scan truncated, fetches no more
// than limit pairs from any single cluster, and accounts every pair it
// cut in Metrics.ScanDiscardedPairs.
func TestScanOverFetchCapped(t *testing.T) {
	r, err := Open(obsPoolCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	seedKeys(t, r, n)
	want, err := r.Scan(0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("full scan returned %d pairs, want %d", len(want), n)
	}
	r.ResetMetrics()

	for _, limit := range []int{1, 3, 16, 50, n, 2 * n} {
		before := r.Metrics()
		got, err := r.Scan(0, n, limit)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := limit
		if wantLen > n {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("limit %d: returned %d pairs, want %d", limit, len(got), wantLen)
		}
		for i, p := range got {
			if p != want[i] {
				t.Fatalf("limit %d: pair %d = %+v, want %+v (must equal the truncated full scan)", limit, i, p, want[i])
			}
		}
		after := r.Metrics()
		fetched := after.ScannedPairs - before.ScannedPairs
		discarded := after.ScanDiscardedPairs - before.ScanDiscardedPairs
		if fetched-uint64(len(got)) != discarded {
			t.Fatalf("limit %d: fetched %d, returned %d, but discarded accounts %d", limit, fetched, len(got), discarded)
		}
		// The cap: no cluster is ever asked past limit, so the whole
		// fan-out can never fetch more than Clusters × limit — and with
		// the progressive rounds it should fetch far less than the old
		// everyone-fetches-limit behavior when limit is large.
		if fetched > uint64(r.NumClusters()*limit) {
			t.Fatalf("limit %d: fetched %d pairs, cap is %d", limit, fetched, r.NumClusters()*limit)
		}
	}

	// Skewed distribution: scan a narrow range so one or two clusters own
	// all survivors; correctness must not depend on an even spread.
	got, err := r.Scan(10, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("narrow scan returned %d pairs, want 7", len(got))
	}
	for i, p := range got {
		if p.Key != core.Val(10+i) {
			t.Fatalf("narrow scan pair %d = %+v, want key %d", i, p, 10+i)
		}
	}
}

// TestScanDiscardBeatsNaiveFanOut checks the progressive scan's point:
// on an even spread with a large limit it fetches close to limit pairs,
// not Clusters × limit.
func TestScanDiscardBeatsNaiveFanOut(t *testing.T) {
	r, err := Open(obsPoolCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	seedKeys(t, r, n)
	r.ResetMetrics()
	const limit = 100
	if _, err := r.Scan(0, n, limit); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	naive := uint64(r.NumClusters() * limit)
	if m.ScannedPairs >= naive {
		t.Fatalf("progressive scan fetched %d pairs, no better than the naive fan-out's %d", m.ScannedPairs, naive)
	}
	if m.ScannedPairs < limit {
		t.Fatalf("scan fetched %d pairs, fewer than the %d returned", m.ScannedPairs, limit)
	}
}

// TestMetricsAtomicSnapshot pins the RWMutex contract: a Metrics snapshot
// taken while multi-cluster Applies race is never mid-batch — every
// snapshot sees whole batches (Puts a multiple of the batch length) with
// every counted write acked.
func TestMetricsAtomicSnapshot(t *testing.T) {
	r, err := Open(obsPoolCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	const batchLen = 8
	const batches = 60
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < batches; i++ {
			b := new(Batch)
			for j := 0; j < batchLen; j++ {
				b.Put(core.Val(i*batchLen+j), core.Val(i+j+1))
			}
			if _, err := r.Apply(b); err != nil {
				t.Errorf("apply %d: %v", i, err)
				return
			}
		}
	}()
	for {
		m := r.Metrics()
		if m.Puts%batchLen != 0 {
			t.Fatalf("snapshot caught a torn batch: %d puts (batch length %d)", m.Puts, batchLen)
		}
		if m.Acked != m.Puts {
			t.Fatalf("snapshot caught uncommitted writes: %d acked of %d puts (Apply is a commit point)", m.Acked, m.Puts)
		}
		select {
		case <-done:
			if m := r.Metrics(); m.Puts != batchLen*batches {
				t.Fatalf("final puts = %d, want %d", m.Puts, batchLen*batches)
			}
			return
		default:
		}
	}
}

// TestRouterFanOutEvents pins the router's parent/leg span linking: a
// fan-out MultiGet emits one parent span and one leg per involved
// cluster, each leg carrying the cluster and the parent's span ID, with
// the per-cluster store spans riding the same bus tagged by cluster.
func TestRouterFanOutEvents(t *testing.T) {
	r, err := Open(obsPoolCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	seedKeys(t, r, 40)
	bus := obs.NewBus(0)
	sub := bus.Subscribe()
	r.Observe(obs.NewRecorder(bus, obs.NewStats()))

	// Keys spanning both clusters.
	var keys []core.Val
	seen := map[int]bool{}
	for k := core.Val(0); k < 40 && len(keys) < 6; k++ {
		c := r.ClusterOf(k)
		keys = append(keys, k)
		seen[c] = true
	}
	if len(seen) != 2 {
		t.Skip("first keys landed on one cluster; hash changed?")
	}
	if _, err := r.MultiGet(keys); err != nil {
		t.Fatal(err)
	}

	evs := sub.Poll(0)
	var parent *obs.Event
	legs := map[int]obs.Event{}
	storeSpans := 0
	for i, e := range evs {
		if e.Kind != obs.KindOp || e.Op != obs.OpMultiGet {
			continue
		}
		switch {
		case e.Parent != 0:
			legs[e.Cluster] = evs[i]
		case e.Shard == -1 && e.Cluster == -1:
			parent = &evs[i]
		default:
			storeSpans++ // the pooled stores' own MultiGet spans, cluster-tagged
		}
	}
	if parent == nil {
		t.Fatalf("no parent fan-out span among %d events", len(evs))
	}
	if parent.N != len(keys) {
		t.Fatalf("parent span n = %d, want %d", parent.N, len(keys))
	}
	if len(legs) != 2 {
		t.Fatalf("legs for clusters %v, want both clusters", legs)
	}
	for c, leg := range legs { //cxl0:order-insensitive — independent per-cluster asserts
		if leg.Parent != parent.Span {
			t.Fatalf("cluster %d leg parent = %d, want %d", c, leg.Parent, parent.Span)
		}
	}
	if storeSpans != 2 {
		t.Fatalf("store-level MultiGet spans = %d, want one per involved cluster", storeSpans)
	}

	// Store events arriving over the shared bus are cluster-tagged with
	// global shard indices.
	if _, err := r.Put(keys[0], 999); err != nil {
		t.Fatal(err)
	}
	c := r.ClusterOf(keys[0])
	putEvs := sub.Poll(0)
	found := false
	for _, e := range putEvs {
		if e.Kind == obs.KindOp && e.Op == obs.OpPut {
			found = true
			if e.Cluster != c {
				t.Fatalf("put event cluster = %d, want %d", e.Cluster, c)
			}
			if e.Shard < r.shardBase[c] || e.Shard >= r.shardBase[c]+r.stores[c].NumShards() {
				t.Fatalf("put event shard %d outside cluster %d's global range", e.Shard, c)
			}
		}
	}
	if !found {
		t.Fatal("pooled store put emitted no event on the shared bus")
	}
}

// TestRouterObservedTimelineUnchanged mirrors the store-level guarantee
// at the pool level: attaching a recorder does not move the pooled
// simulated timeline.
func TestRouterObservedTimelineUnchanged(t *testing.T) {
	run := func(observe bool) float64 {
		r, err := Open(obsPoolCfg(2))
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			r.Observe(obs.NewRecorder(obs.NewBus(0), obs.NewStats()))
		}
		seedKeys(t, r, 60)
		if _, err := r.Scan(0, 60, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := r.MultiGet([]core.Val{1, 2, 3, 40, 50}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Compact(); err != nil {
			t.Fatal(err)
		}
		return r.NowNS()
	}
	if plain, observed := run(false), run(true); plain != observed {
		t.Fatalf("observed pooled run consumed %g sim ns, unobserved %g", observed, plain)
	}
}

// TestScanResumeBoundaries drives limits that force multi-round refetches
// and cross-checks against a locally merged reference.
func TestScanResumeBoundaries(t *testing.T) {
	r, err := Open(obsPoolCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	// Sparse, irregular keys so resume points land between existing keys.
	var all []core.Val
	for i := 0; i < 120; i++ {
		k := core.Val((i*i*7 + i) % 1000)
		all = append(all, k)
		if _, err := r.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	uniq := map[core.Val]bool{}
	for _, k := range all {
		uniq[k] = true
	}
	var ref []core.Val
	for k := range uniq { //cxl0:order-insensitive — ref is sorted below
		if k >= 100 && k < 900 {
			ref = append(ref, k)
		}
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for _, limit := range []int{1, 2, 5, 9, 33, len(ref), len(ref) + 10} {
		got, err := r.Scan(100, 900, limit)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := limit
		if wantLen > len(ref) {
			wantLen = len(ref)
		}
		if len(got) != wantLen {
			t.Fatalf("limit %d: %d pairs, want %d", limit, len(got), wantLen)
		}
		for i, p := range got {
			if p.Key != ref[i] {
				t.Fatalf("limit %d: pair %d key %d, want %d", limit, i, p.Key, ref[i])
			}
		}
	}
}
