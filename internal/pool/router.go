// Package pool scales the KV service past a single coherence domain: a
// Router pools N independent clusters — each a complete kv.Store with its
// own memsim cluster, fabric and clock — behind the same kv.DB interface
// a single store serves, following emucxl's application-level API over
// pooled CXL memory and the pooling topologies of CXL-ClusterSim
// (PAPERS.md). Capacity and throughput scale by adding clusters: the
// clusters share nothing, so the pooled service's makespan is the busiest
// shard across all of them, and a GPF issued inside one cluster stalls
// only that cluster's fabric.
//
// # Routing
//
// Keys route key → pool bucket → cluster → (inside the owning store)
// key → store bucket → shard: the same virtual-bucket indirection the
// shard map uses (docs/rebalancing.md), lifted one level. The pool-level
// map is a front-end DRAM array costing nothing on the simulated clock.
// It is fixed today — bucket b lives on cluster b mod Clusters — but the
// indirection is the point: a future cross-cluster migration repoints one
// bucket at a time and can reuse the shard map's durable move protocol
// (copy → durable move-out record → flip) across clusters. See
// docs/pooling.md.
//
// # What is and isn't crash-safe
//
// Every per-cluster guarantee survives pooling unchanged: an acknowledged
// write durably lives in exactly one cluster, and that cluster's
// crash/recovery rules apply verbatim (Crash/Recover pass through to the
// owning store, with shards addressed by global index). What pooling does
// NOT add is any cross-cluster ordering: an Apply spanning clusters
// commits per cluster in sequence, so a crash between those commits can
// leave the batch durable in one cluster and dropped in another — the
// same partial-prefix caveat Apply already carries within one store,
// widened to cluster granularity. Cross-cluster atomicity (and
// cross-cluster bucket migration) is future work; see docs/pooling.md.
package pool

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cxl0/internal/core"
	"cxl0/internal/kv"
	"cxl0/internal/obs"
)

// DefaultBuckets is the pool-level virtual-bucket count when
// Config.Buckets is zero, mirroring kv.DefaultBuckets.
const DefaultBuckets = 128

// Batch aliases kv.Batch so pool-only callers need one import; Apply
// accepts exactly kv's type, as the DB interface requires.
type Batch = kv.Batch

// Config describes a Router.
type Config struct {
	// Clusters is the number of independent pooled clusters (default 1).
	Clusters int
	// Buckets is the pool-level virtual-bucket count (default
	// DefaultBuckets), rounded up to a multiple of Clusters so the
	// initial layout spreads buckets evenly.
	Buckets int
	// Store configures each cluster's store identically — shards,
	// strategy, capacity and variant are per cluster. Store.Seed seeds
	// cluster 0; cluster c runs at Store.Seed + c so the pooled fabrics
	// are deterministic but not in lockstep.
	Store kv.Config
}

func (c Config) withDefaults() Config {
	if c.Clusters <= 0 {
		c.Clusters = 1
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.Buckets < c.Clusters {
		c.Buckets = c.Clusters
	}
	if r := c.Buckets % c.Clusters; r != 0 {
		c.Buckets += c.Clusters - r
	}
	return c
}

// Router pools N cluster-backed stores behind the kv.DB interface.
// Shards are addressed by global index: cluster c's shard i is
// c*shardsPerCluster + i. The cluster map is immutable after Open, and
// every store serializes its own operations, so Router methods are safe
// for concurrent use; operations on distinct clusters do not serialize
// against each other (they hold mu only for reading). Metrics,
// ResetMetrics and Observe take mu exclusively, so a Metrics snapshot is
// atomically consistent — it never observes a fan-out operation half
// applied.
type Router struct {
	cfg        Config
	stores     []*kv.Store
	clusterMap []int // pool bucket -> cluster
	shardBase  []int // cluster -> first global shard index
	nShards    int

	// mu is held shared by every operation and exclusively by
	// Metrics/ResetMetrics/Observe. scanDiscarded is atomic because Scan
	// updates it under the shared lock.
	mu            sync.RWMutex
	scanDiscarded atomic.Uint64
	rec           *obs.Recorder
}

// Router implements the full DB surface over pooled clusters.
var _ kv.DB = (*Router)(nil)

// Open builds Clusters independent cluster-backed stores and the router
// over them.
func Open(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	r := &Router{cfg: cfg, clusterMap: make([]int, cfg.Buckets)}
	for b := range r.clusterMap {
		r.clusterMap[b] = b % cfg.Clusters
	}
	for c := 0; c < cfg.Clusters; c++ {
		scfg := cfg.Store
		scfg.Seed += int64(c)
		st, err := kv.Open(scfg)
		if err != nil {
			return nil, fmt.Errorf("pool: cluster %d: %w", c, err)
		}
		r.shardBase = append(r.shardBase, r.nShards)
		r.nShards += st.NumShards()
		r.stores = append(r.stores, st)
	}
	return r, nil
}

// Observe attaches rec to the router and, derived per cluster with the
// cluster's tag and global shard base, to every pooled store — so every
// store-level event carries its cluster and global shard index while all
// clusters share one bus, one aggregate and one span-ID sequence. The
// router itself emits fan-out parent/leg spans for MultiGet, Scan and
// Apply. Pass nil to detach. Like kv.Store.Observe, instrumentation only
// reads the simulated clocks — the pooled timeline is bit-identical with
// and without a recorder.
func (r *Router) Observe(rec *obs.Recorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rec = rec
	for c, st := range r.stores {
		st.Observe(rec.Tagged(c, r.shardBase[c]))
	}
}

// NumClusters returns the pooled cluster count.
func (r *Router) NumClusters() int { return len(r.stores) }

// NumBuckets returns the pool-level virtual-bucket count.
func (r *Router) NumBuckets() int { return len(r.clusterMap) }

// BucketOf returns the pool bucket key k hashes to. The hash must be
// independent of the store-level shard map's (bare Fibonacci
// multiplication): both maps reduce modulo bucket counts that share
// factors in common configurations (128 by default), so reusing the
// store's hash would alias cluster routing with shard routing — at
// Clusters == Shards every cluster would serve all of its traffic on the
// single shard congruent to its own index. The avalanche finisher
// (Murmur3-style, the same mixing idiom as kv's record checksums)
// decorrelates the two levels.
func (r *Router) BucketOf(k core.Val) int {
	h := uint64(k) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(r.clusterMap)))
}

// ClusterOf returns the cluster key k currently routes to.
func (r *Router) ClusterOf(k core.Val) int { return r.clusterMap[r.BucketOf(k)] }

// ClusterOfBucket returns the cluster serving pool bucket b.
func (r *Router) ClusterOfBucket(b int) int { return r.clusterMap[b] }

// Cluster returns cluster c's backing store (for inspection and tests).
func (r *Router) Cluster(c int) *kv.Store { return r.stores[c] }

// store returns the store serving key k.
func (r *Router) store(k core.Val) *kv.Store { return r.stores[r.ClusterOf(k)] }

// globalShard lifts cluster c's local shard index to the pool's global
// index space.
func (r *Router) globalShard(c, local int) int { return r.shardBase[c] + local }

// localShard resolves a global shard index to (cluster, local index).
func (r *Router) localShard(i int) (c, local int) {
	for c = len(r.stores) - 1; c > 0; c-- {
		if i >= r.shardBase[c] {
			break
		}
	}
	return c, i - r.shardBase[c]
}

// clusterErr tags a per-store error with the cluster it came from — a
// pooled deployment has Clusters copies of every shard index, so a bare
// "shard 1 is down/full" is ambiguous without it. fmt.Errorf's %w keeps
// errors.Is/errors.As (ErrShardDown, *ShardFullError, ...) working.
func clusterErr(c int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("pool: cluster %d: %w", c, err)
}

// Put routes the write to the key's cluster. The returned Ack's Shard is
// a global index.
func (r *Router) Put(key, val core.Val) (kv.Ack, error) {
	if key < 0 {
		return kv.Ack{}, kv.ErrBadKey
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := r.ClusterOf(key)
	ack, err := r.stores[c].Put(key, val)
	if err != nil {
		return kv.Ack{}, clusterErr(c, err)
	}
	ack.Shard = r.globalShard(c, ack.Shard)
	return ack, nil
}

// Delete routes the tombstone to the key's cluster.
func (r *Router) Delete(key core.Val) (kv.Ack, error) {
	if key < 0 {
		return kv.Ack{}, kv.ErrBadKey
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := r.ClusterOf(key)
	ack, err := r.stores[c].Delete(key)
	if err != nil {
		return kv.Ack{}, clusterErr(c, err)
	}
	ack.Shard = r.globalShard(c, ack.Shard)
	return ack, nil
}

// Get routes the lookup to the key's cluster.
func (r *Router) Get(key core.Val) (core.Val, bool, error) {
	if key < 0 {
		return 0, false, kv.ErrBadKey
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := r.ClusterOf(key)
	v, ok, err := r.stores[c].Get(key)
	return v, ok, clusterErr(c, err)
}

// MultiGet fans the keys out to their clusters — one MultiGet per
// involved cluster, carrying that cluster's keys in input order — and
// merges the per-cluster results back into input order. Partitioned
// shards degrade the call, not fail it: clusters whose MultiGet returned
// a kv.PartialResultError contribute their reachable results, and the
// merged call returns one pool-level PartialResultError with the
// unreachable shards lifted to global indices. A crashed shard still
// fails the whole call (see kv.PartialResultError for why the two paths
// differ).
func (r *Router) MultiGet(keys []core.Val) ([]kv.Lookup, error) {
	for _, k := range keys {
		if k < 0 {
			return nil, kv.ErrBadKey
		}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	byCluster := make([][]core.Val, len(r.stores))
	byClusterPos := make([][]int, len(r.stores))
	for i, k := range keys {
		c := r.ClusterOf(k)
		byCluster[c] = append(byCluster[c], k)
		byClusterPos[c] = append(byClusterPos[c], i)
	}
	var span uint64
	if r.rec != nil {
		span = r.rec.NewSpan()
	}
	pstart := r.nowNS()
	out := make([]kv.Lookup, len(keys))
	var unavailable []int
	missing := 0
	for c, sub := range byCluster {
		if len(sub) == 0 {
			continue
		}
		var lstart float64
		if r.rec != nil {
			lstart = r.stores[c].NowNS()
		}
		res, err := r.stores[c].MultiGet(sub)
		var partial *kv.PartialResultError
		if err != nil && !errors.As(err, &partial) {
			return nil, clusterErr(c, err)
		}
		if partial != nil {
			// Cluster order is ascending and each cluster reports its
			// unavailable shards ascending, so the global list stays sorted.
			for _, sh := range partial.Unavailable {
				unavailable = append(unavailable, r.globalShard(c, sh))
			}
			missing += partial.Missing
		}
		if r.rec != nil {
			r.rec.FanOutLeg(span, obs.OpMultiGet, c, lstart, r.stores[c].NowNS(), len(sub)-missingOf(partial))
		}
		for j, l := range res {
			out[byClusterPos[c][j]] = l
		}
	}
	if r.rec != nil {
		r.rec.FanOut(span, obs.OpMultiGet, pstart, r.nowNS(), len(keys))
	}
	if missing > 0 {
		return out, &kv.PartialResultError{Op: "multiget", Unavailable: unavailable, Missing: missing}
	}
	return out, nil
}

// missingOf returns a partial-result error's withheld-entry count (0 for
// nil — a fully-served leg).
func missingOf(e *kv.PartialResultError) int {
	if e == nil {
		return 0
	}
	return e.Missing
}

// Scan fans the range out across the clusters and merges the per-cluster
// results — each already in key order — into one globally key-ordered
// slice, truncated to limit. A limited scan fetches progressively: the
// first round asks every cluster for limit/Clusters + 1 pairs, then only
// clusters whose next unread key could still displace the current
// limit-th smallest are asked again, and no cluster is ever asked for
// more than limit pairs in total. Pairs fetched but cut by the merge are
// counted in Metrics.ScanDiscardedPairs; each refetch round ticks the
// owning store's Scans counter. Like MultiGet, partitioned shards degrade
// the scan to a partial result (reachable shards' pairs plus one
// pool-level kv.PartialResultError) while a crashed in-range shard fails
// it.
func (r *Router) Scan(lo, hi core.Val, limit int) ([]kv.Pair, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var span uint64
	if r.rec != nil {
		span = r.rec.NewSpan()
	}
	pstart := r.nowNS()
	unavail := make([]bool, r.nShards)

	legs := make([]scanLeg, len(r.stores))
	for c := range legs {
		legs[c].next = lo
	}

	per := limit
	if limit > 0 {
		per = limit/len(r.stores) + 1
	}
	for {
		progressed := false
		for c := range legs {
			l := &legs[c]
			if l.done {
				continue
			}
			ask := per
			if limit > 0 && limit-l.fetched < ask {
				ask = limit - l.fetched
			}
			if r.rec != nil && !l.everAsked {
				l.simStart = r.stores[c].NowNS()
			}
			l.everAsked = true
			pairs, err := r.stores[c].Scan(l.next, hi, ask)
			if r.rec != nil {
				l.simEnd = r.stores[c].NowNS()
			}
			var partial *kv.PartialResultError
			if err != nil && !errors.As(err, &partial) {
				return nil, clusterErr(c, err)
			}
			if partial != nil {
				for _, sh := range partial.Unavailable {
					unavail[r.globalShard(c, sh)] = true
				}
				// Every round's range is a subset of the first's, so the
				// largest count seen is the leg's total withheld entries —
				// summing rounds would double-count them.
				if partial.Missing > l.missing {
					l.missing = partial.Missing
				}
			}
			l.fetched += len(pairs)
			l.pairs = append(l.pairs, pairs...)
			progressed = progressed || len(pairs) > 0
			if limit <= 0 || len(pairs) < ask {
				// Unlimited scans finish in one round; a short return
				// means the cluster's range is exhausted.
				l.done = true
			} else {
				l.next = pairs[len(pairs)-1].Key + 1
				if l.next >= hi || l.fetched >= limit {
					// A cluster's limit smallest in-range keys are the
					// only ones that can survive the merge — no point
					// fetching past the cap.
					l.done = true
				}
			}
		}
		// Settle check: a cluster needs another round only if its next
		// unread key could still displace the limit-th smallest fetched
		// so far (or fewer than limit pairs are fetched in total).
		total := 0
		for c := range legs {
			total += legs[c].fetched
		}
		allSettled := true
		if limit <= 0 || total < limit {
			for c := range legs {
				if !legs[c].done {
					allSettled = false
					break
				}
			}
		} else {
			kth := kthSmallestKey(legs, limit)
			for c := range legs {
				if !legs[c].done && legs[c].next <= kth {
					allSettled = false
					break
				}
			}
		}
		if allSettled || !progressed {
			break
		}
	}

	var merged []kv.Pair
	fetched := 0
	for c := range legs {
		merged = append(merged, legs[c].pairs...)
		fetched += legs[c].fetched
	}
	// Clusters partition the keyspace, so pairs are unique across them and
	// a sort is a merge.
	sort.Slice(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	if d := fetched - len(merged); d > 0 {
		r.scanDiscarded.Add(uint64(d))
	}
	if r.rec != nil {
		for c := range legs {
			if legs[c].everAsked {
				r.rec.FanOutLeg(span, obs.OpScan, c, legs[c].simStart, legs[c].simEnd, legs[c].fetched)
			}
		}
		r.rec.FanOut(span, obs.OpScan, pstart, r.nowNS(), len(merged))
	}
	missing := 0
	for c := range legs {
		missing += legs[c].missing
	}
	if missing > 0 {
		var shards []int
		for i, hit := range unavail {
			if hit {
				shards = append(shards, i)
			}
		}
		return merged, &kv.PartialResultError{Op: "scan", Unavailable: shards, Missing: missing}
	}
	return merged, nil
}

// scanLeg tracks one cluster's progress through a progressive pooled
// scan.
type scanLeg struct {
	pairs     []kv.Pair
	next      core.Val // resume point: one past the last fetched key
	done      bool     // range exhausted or per-cluster cap reached
	fetched   int
	missing   int // in-range entries withheld by partitioned shards
	simStart  float64
	simEnd    float64
	everAsked bool
}

// kthSmallestKey returns the limit-th smallest key fetched across the
// legs. The caller has checked at least limit pairs are fetched.
func kthSmallestKey(legs []scanLeg, limit int) core.Val {
	keys := make([]core.Val, 0, limit*2)
	for c := range legs {
		for _, p := range legs[c].pairs {
			keys = append(keys, p.Key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys[limit-1]
}

// Apply splits the batch into per-cluster sub-batches (each preserving
// the batch's operation order — order across clusters is irrelevant
// because clusters partition the keyspace) and applies them in cluster
// order. Each sub-batch commits inside its own cluster, so on success the
// whole batch is durable and acknowledged with one Ack; on error, whole
// sub-batches (and a prefix of the failing one) may already be applied —
// the same partial-prefix caveat kv.Store.Apply carries, at cluster
// granularity. The returned Ack identifies the last record of the
// sub-batch holding the batch's final operation, with Shard global.
func (r *Router) Apply(b *Batch) (kv.Ack, error) {
	if b == nil || b.Len() == 0 {
		return kv.Ack{Shard: -1, Seq: -1, Durable: true}, nil
	}
	ops := b.Ops()
	for _, op := range ops {
		if op.Key < 0 || (!op.IsDelete() && op.Val < 1) {
			return kv.Ack{}, kv.ErrBadKey
		}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	sub := make([]kv.Batch, len(r.stores))
	lastCluster := 0
	for _, op := range ops {
		c := r.ClusterOf(op.Key)
		if op.IsDelete() {
			sub[c].Delete(op.Key)
		} else {
			sub[c].Put(op.Key, op.Val)
		}
		lastCluster = c
	}
	var span uint64
	if r.rec != nil {
		span = r.rec.NewSpan()
	}
	pstart := r.nowNS()
	var final kv.Ack
	for c := range sub {
		if sub[c].Len() == 0 {
			continue
		}
		var lstart float64
		if r.rec != nil {
			lstart = r.stores[c].NowNS()
		}
		ack, err := r.stores[c].Apply(&sub[c])
		if err != nil {
			return kv.Ack{}, clusterErr(c, err)
		}
		if r.rec != nil {
			r.rec.FanOutLeg(span, obs.OpApply, c, lstart, r.stores[c].NowNS(), sub[c].Len())
		}
		ack.Shard = r.globalShard(c, ack.Shard)
		if c == lastCluster {
			final = ack
		}
	}
	if r.rec != nil {
		r.rec.FanOut(span, obs.OpApply, pstart, r.nowNS(), b.Len())
	}
	return final, nil
}

// Sync commits every cluster's open batches.
func (r *Router) Sync() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for c, st := range r.stores {
		if err := st.Sync(); err != nil {
			return clusterErr(c, err)
		}
	}
	return nil
}

// Compact runs each cluster's log compaction — entirely cluster-local
// machinery, like Rebalance — and returns the union of per-shard stats
// with shard indices lifted to the global space.
func (r *Router) Compact() ([]kv.CompactionStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var all []kv.CompactionStats
	for c, st := range r.stores {
		stats, err := st.Compact()
		for i := range stats {
			stats[i].Shard = r.globalShard(c, stats[i].Shard)
		}
		all = append(all, stats...)
		if err != nil {
			return all, clusterErr(c, err)
		}
	}
	return all, nil
}

// NumShards returns the total shard count across clusters.
func (r *Router) NumShards() int { return r.nShards }

// Crash fails the machine of the shard with global index i.
func (r *Router) Crash(i int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, local := r.localShard(i)
	r.stores[c].Crash(local)
}

// Recover restarts the shard with global index i; the returned stats
// carry the global index.
func (r *Router) Recover(i int) (kv.RecoveryStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, local := r.localShard(i)
	stats, err := r.stores[c].Recover(local)
	if err != nil {
		return kv.RecoveryStats{}, clusterErr(c, err)
	}
	stats.Shard = r.globalShard(c, stats.Shard)
	return stats, nil
}

// Partition cuts the machine of the shard with global index i off its
// cluster's fabric. The blast radius is cluster-local but strategy-
// dependent: under the GPF-based strategies the partitioned cluster
// cannot commit at all, while the other pooled clusters are entirely
// unaffected — exactly the isolation pooling exists to provide.
func (r *Router) Partition(i int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, local := r.localShard(i)
	r.stores[c].Partition(local)
}

// Heal reconnects the shard with global index i to its cluster's fabric.
func (r *Router) Heal(i int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, local := r.localShard(i)
	r.stores[c].Heal(local)
}

// Degrade sets the latency multiplier of the shard with global index i's
// device.
func (r *Router) Degrade(i int, factor float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, local := r.localShard(i)
	r.stores[c].Degrade(local, factor)
}

// Health concatenates every cluster's shard health in global shard order.
func (r *Router) Health() []kv.ShardHealth {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var all []kv.ShardHealth
	for c, st := range r.stores {
		hs := st.Health()
		for j := range hs {
			hs[j].Shard = r.globalShard(c, hs[j].Shard)
		}
		all = append(all, hs...)
	}
	return all
}

// Rebalance runs each cluster's load-aware rebalancer — bucket migration
// stays within a cluster today (cross-cluster migration is future work) —
// and returns the union of moves with shard indices lifted to the global
// space.
func (r *Router) Rebalance() ([]kv.MigrationStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var all []kv.MigrationStats
	for c, st := range r.stores {
		moves, err := st.Rebalance()
		for i := range moves {
			moves[i].From = r.globalShard(c, moves[i].From)
			moves[i].To = r.globalShard(c, moves[i].To)
		}
		all = append(all, moves...)
		if err != nil {
			return all, clusterErr(c, err)
		}
	}
	return all, nil
}

// CrashFront fails every cluster's front-end machine — the pooled
// analogue of one coordinator process dying: each cluster's data plane
// fails with kv.ErrFrontDown until RecoverFront.
func (r *Router) CrashFront() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, st := range r.stores {
		st.CrashFront()
	}
}

// RecoverFront restarts every cluster's front end and re-attaches its
// shards by replaying their durable logs, returning the union of
// per-shard stats with shard indices lifted to the global space. On a
// cluster's error the earlier clusters stay recovered (their stats are
// returned) and the failing cluster's front stays down — retry after
// addressing the error.
func (r *Router) RecoverFront() ([]kv.RecoveryStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var all []kv.RecoveryStats
	for c, st := range r.stores {
		stats, err := st.RecoverFront()
		for i := range stats {
			stats[i].Shard = r.globalShard(c, stats[i].Shard)
		}
		all = append(all, stats...)
		if err != nil {
			return all, clusterErr(c, err)
		}
	}
	return all, nil
}

// FrontDown reports whether any cluster's front end is currently
// crashed (after CrashFront: all of them, until RecoverFront).
func (r *Router) FrontDown() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, st := range r.stores {
		if st.FrontDown() {
			return true
		}
	}
	return false
}

// Router implements the optional front-end failover surface by fan-out.
var _ kv.FrontRecoverer = (*Router)(nil)

// Metrics aggregates every cluster's snapshot: counters summed, per-shard
// series concatenated in global shard order, latency and recovery samples
// pooled, plus the router's own ScanDiscardedPairs. kv.Metrics' derived
// views keep their meaning: MaxBusyNS is the pooled service makespan
// (clusters run in parallel like shards do) and MaxMeanBusyRatio the
// placement skew across all shards of all clusters. The snapshot is
// atomically consistent — Metrics holds the router lock exclusively, so
// no operation (in particular no multi-cluster Apply) is in flight while
// the clusters are read.
func (r *Router) Metrics() kv.Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	var agg kv.Metrics
	for _, st := range r.stores {
		m := st.Metrics()
		agg.Puts += m.Puts
		agg.Gets += m.Gets
		agg.Deletes += m.Deletes
		agg.Scans += m.Scans
		agg.ScannedPairs += m.ScannedPairs
		agg.ScanDiscardedPairs += m.ScanDiscardedPairs
		agg.MultiGets += m.MultiGets
		agg.Batches += m.Batches
		agg.Commits += m.Commits
		agg.Acked += m.Acked
		agg.DroppedPending += m.DroppedPending
		agg.Recoveries += m.Recoveries
		agg.Migrations += m.Migrations
		agg.MigratedRecords += m.MigratedRecords
		agg.Compactions += m.Compactions
		agg.ReclaimedSlots += m.ReclaimedSlots
		agg.RecoveryNS = append(agg.RecoveryNS, m.RecoveryNS...)
		agg.CompactionNS = append(agg.CompactionNS, m.CompactionNS...)
		agg.PerShardBusyNS = append(agg.PerShardBusyNS, m.PerShardBusyNS...)
		agg.PerShardChurnNS = append(agg.PerShardChurnNS, m.PerShardChurnNS...)
		agg.PerShardFill = append(agg.PerShardFill, m.PerShardFill...)
		agg.PerShardLive = append(agg.PerShardLive, m.PerShardLive...)
		agg.WriteLatencies = append(agg.WriteLatencies, m.WriteLatencies...)
		agg.IssueLatencies = append(agg.IssueLatencies, m.IssueLatencies...)
		agg.PipelinedCommits += m.PipelinedCommits
		if m.MaxInFlight > agg.MaxInFlight {
			agg.MaxInFlight = m.MaxInFlight
		}
		agg.PerShardInFlight = append(agg.PerShardInFlight, m.PerShardInFlight...)
		agg.PerShardAcked = append(agg.PerShardAcked, m.PerShardAcked...)
		// Each pooled cluster's front end owns its own read cache
		// (Config.Store passes ReadCache/Prefetch through), so the pooled
		// counters are the sum over per-front-end caches.
		agg.CacheHits += m.CacheHits
		agg.CacheMisses += m.CacheMisses
		agg.SpeculativeFills += m.SpeculativeFills
		agg.CacheInvalidations += m.CacheInvalidations
		agg.CacheSize += m.CacheSize
	}
	agg.ScanDiscardedPairs += r.scanDiscarded.Load()
	return agg
}

// ResetMetrics zeroes every cluster's counters and clocks, and the
// router's discarded-pair counter.
func (r *Router) ResetMetrics() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.stores {
		st.ResetMetrics()
	}
	r.scanDiscarded.Store(0)
}

// nowNS sums the pooled clusters' clocks without taking the router lock
// (the store slice is immutable and each store's clock read is
// internally synchronized).
func (r *Router) nowNS() float64 {
	total := 0.0
	for _, st := range r.stores {
		total += st.NowNS()
	}
	return total
}

// NowNS returns the sum of the pooled clusters' independent simulated
// clocks — the pool's total consumed simulated time. Deltas around an
// operation measure its cost (its owning cluster is the only clock that
// advances; a fan-out op's delta is the summed cost across clusters).
func (r *Router) NowNS() float64 {
	return r.nowNS()
}
