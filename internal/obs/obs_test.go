package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBusDeliveryInOrder(t *testing.T) {
	b := NewBus(8)
	sub := b.Subscribe()
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: KindOp, N: i})
	}
	evs := sub.Poll(0)
	if len(evs) != 5 {
		t.Fatalf("Poll returned %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) || e.N != i {
			t.Fatalf("event %d = seq %d n %d, want seq %d n %d", i, e.Seq, e.N, i+1, i)
		}
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("Dropped() = %d, want 0", d)
	}
	if evs := sub.Poll(0); evs != nil {
		t.Fatalf("second Poll returned %d events, want none", len(evs))
	}
}

func TestBusDropCounting(t *testing.T) {
	b := NewBus(4)
	sub := b.Subscribe()
	for i := 0; i < 10; i++ {
		b.Publish(Event{N: i})
	}
	// Ring holds seqs 7..10; 1..6 were overwritten before the poll.
	evs := sub.Poll(0)
	if len(evs) != 4 {
		t.Fatalf("Poll returned %d events, want 4", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("Poll returned seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
	if d := sub.Dropped(); d != 6 {
		t.Fatalf("Dropped() = %d, want 6", d)
	}
}

func TestBusKeepingUpDropsNothing(t *testing.T) {
	b := NewBus(16)
	sub := b.Subscribe()
	total := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			b.Publish(Event{})
		}
		total += len(sub.Poll(0))
	}
	if total != 500 {
		t.Fatalf("drained %d events, want 500", total)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("Dropped() = %d, want 0", d)
	}
}

func TestBusSubscribeSeesOnlyFutureEvents(t *testing.T) {
	b := NewBus(8)
	b.Publish(Event{N: 1})
	sub := b.Subscribe()
	b.Publish(Event{N: 2})
	evs := sub.Poll(0)
	if len(evs) != 1 || evs[0].N != 2 {
		t.Fatalf("Poll = %+v, want the single post-subscribe event", evs)
	}
}

func TestBusNextWakesOnPublish(t *testing.T) {
	b := NewBus(8)
	sub := b.Subscribe()
	done := make(chan []Event, 1)
	go func() { done <- sub.Next(10, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond) //cxl0:hostclock — test scheduling wait, not sim time
	b.Publish(Event{N: 42})
	select {
	case evs := <-done:
		if len(evs) != 1 || evs[0].N != 42 {
			t.Fatalf("Next = %+v, want one event with N 42", evs)
		}
	case <-time.After(2 * time.Second): //cxl0:hostclock — test timeout
		t.Fatal("Next did not wake on publish")
	}
	if evs := sub.Next(10, 10*time.Millisecond); evs != nil {
		t.Fatalf("idle Next = %+v, want timeout nil", evs)
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Publish(Event{})
			}
		}()
	}
	wg.Wait()
	if b.Seq() != 800 {
		t.Fatalf("Seq() = %d, want 800", b.Seq())
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 100 samples at ~1000ns, 10 at ~1e6ns: p50 in the 1000ns bucket,
	// p99 in the 1e6 bucket. Log2 buckets are coarse, so assert the
	// right power-of-two neighborhood, not exact values.
	for i := 0; i < 100; i++ {
		h.add(1000)
	}
	for i := 0; i < 10; i++ {
		h.add(1e6)
	}
	if h.N() != 110 {
		t.Fatalf("N = %d, want 110", h.N())
	}
	p50 := h.Quantile(0.50)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %g, want within the 1000ns bucket neighborhood", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 512e3 || p99 > 2048e3 {
		t.Fatalf("p99 = %g, want within the 1e6ns bucket neighborhood", p99)
	}
	if mean := h.Mean(); math.Abs(mean-(100*1000+10*1e6)/110) > 1e-6 {
		t.Fatalf("Mean = %g, want exact mean", mean)
	}
	var empty Hist
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty Hist quantile/mean should be 0")
	}
}

func TestRateWindowRolls(t *testing.T) {
	var w rateWindow
	now := int64(1000)
	for i := 0; i < 30; i++ {
		w.add(now)
	}
	if r := w.perSec(now); r != 3.0 {
		t.Fatalf("perSec = %g, want 3.0 (30 events / 10s window)", r)
	}
	// rateSecs seconds later the window has rolled past every bucket.
	if r := w.perSec(now + rateSecs); r != 0 {
		t.Fatalf("perSec after window rolled = %g, want 0", r)
	}
}

func TestStatsSnapshot(t *testing.T) {
	s := NewStats()
	fixed := time.Unix(5000, 0)
	s.now = func() time.Time { return fixed }
	rec := NewRecorder(nil, s)
	for i := 0; i < 10; i++ {
		rec.OpSpan(OpPut, 1, 0, 2000, 1, 1, true)
	}
	rec.OpSpan(OpGet, 0, 0, 500, 1, 0, false)
	rec.Commit(1, 0, 100, 4, 4, 1, 0)
	rec.MigrationStep("before-copy", 3, 0, 1, 7, 0)
	rec.MigrationStep("after-flip", 3, 0, 1, 7, 0)
	rec.CompactionStep("after-reclaim", 0, 1, 5, 9, 0)
	rec.Crash(0, 0)
	rec.Recover(0, 0, 10, 3, 1, 2)
	rec.Rebalance(2, 0, 50)

	snap := s.Snapshot()
	if snap.OpSpans != 11 || snap.Commits != 1 || snap.Migrations != 1 ||
		snap.Compactions != 1 || snap.Crashes != 1 || snap.Recoveries != 1 || snap.Rebalances != 1 {
		t.Fatalf("snapshot counters = %+v", snap)
	}
	if len(snap.Ops) != 2 {
		t.Fatalf("snapshot has %d op rows, want 2 (put, get)", len(snap.Ops))
	}
	var put *OpSnapshot
	for i := range snap.Ops {
		if snap.Ops[i].Op == "put" {
			put = &snap.Ops[i]
		}
	}
	if put == nil || put.Count != 10 {
		t.Fatalf("put row = %+v, want count 10", put)
	}
	if put.RatePerSec != 1.0 {
		t.Fatalf("put rate = %g, want 1.0 (10 events / 10s window)", put.RatePerSec)
	}
	if len(snap.Shards) != 2 || snap.Shards[0].Shard != 0 || snap.Shards[1].Shard != 1 {
		t.Fatalf("shard rows = %+v, want shards 0 and 1 in order", snap.Shards)
	}
}

func TestRecorderTagging(t *testing.T) {
	b := NewBus(32)
	sub := b.Subscribe()
	root := NewRecorder(b, nil)
	c1 := root.Tagged(1, 4) // cluster 1, shards start at global index 4
	c1.OpSpan(OpPut, 2, 0, 10, 1, 1, true)
	root.OpSpan(OpGet, 2, 0, 10, 1, 0, true)
	evs := sub.Poll(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Cluster != 1 || evs[0].Shard != 6 {
		t.Fatalf("tagged event = cluster %d shard %d, want cluster 1 shard 6", evs[0].Cluster, evs[0].Shard)
	}
	if evs[1].Cluster != -1 || evs[1].Shard != 2 {
		t.Fatalf("untagged event = cluster %d shard %d, want cluster -1 shard 2", evs[1].Cluster, evs[1].Shard)
	}
	if evs[0].Span == evs[1].Span || evs[0].Span == 0 {
		t.Fatalf("span IDs %d and %d should be distinct and nonzero", evs[0].Span, evs[1].Span)
	}
}

func TestRecorderFanOutLinking(t *testing.T) {
	b := NewBus(32)
	sub := b.Subscribe()
	rec := NewRecorder(b, NewStats())
	span := rec.NewSpan()
	rec.FanOutLeg(span, OpMultiGet, 0, 0, 5, 2)
	rec.FanOutLeg(span, OpMultiGet, 1, 0, 7, 3)
	rec.FanOut(span, OpMultiGet, 0, 12, 5)
	evs := sub.Poll(0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for _, e := range evs[:2] {
		if e.Parent != span {
			t.Fatalf("leg parent = %d, want %d", e.Parent, span)
		}
	}
	if evs[2].Span != span || evs[2].Parent != 0 {
		t.Fatalf("parent event span/parent = %d/%d, want %d/0", evs[2].Span, evs[2].Parent, span)
	}
	// Fan-out events are events-only: no histogram samples.
	if snap := rec.Stats().Snapshot(); snap.OpSpans != 0 || len(snap.Ops) != 0 {
		t.Fatalf("fan-out events leaked into stats: %+v", snap)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.OpSpan(OpPut, 0, 0, 1, 1, 1, true)
	r.FanOut(1, OpScan, 0, 1, 1)
	r.FanOutLeg(1, OpScan, 0, 0, 1, 1)
	r.Commit(0, 0, 1, 1, 1, 1, 0)
	r.WriteLatency(1, 1)
	r.Crash(0, 0)
	r.Recover(0, 0, 1, 1, 1, 1)
	r.MigrationStep("after-flip", 0, 0, 1, 1, 0)
	r.CompactionStep("after-reclaim", 0, 1, 1, 1, 0)
	r.Rebalance(0, 0, 1)
	if r.NewSpan() != 0 || r.Tagged(1, 2) != nil || r.Bus() != nil || r.Stats() != nil {
		t.Fatal("nil recorder accessors should return zero values")
	}
}

func TestEventJSON(t *testing.T) {
	e := Event{
		Seq: 7, Kind: KindMigration, Step: "after-flip",
		Cluster: 1, Shard: 3, Bucket: 12, From: 3, To: 5, N: 9,
		StartNS: 100, EndNS: 100,
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"kind":"migration"`, `"step":"after-flip"`, `"bucket":12`, `"seq":7`} {
		if !strings.Contains(s, want) {
			t.Fatalf("marshaled event %s missing %s", s, want)
		}
	}
	if strings.Contains(s, `"op":""`) {
		t.Fatalf("empty op should be omitted: %s", s)
	}
}
