package obs

import (
	"sync"
	"time"
)

// DefaultBusSize is the ring capacity when NewBus is given size <= 0.
const DefaultBusSize = 4096

// Bus is a ring-buffered, drop-counting event channel. Publish never
// blocks: it assigns the next sequence number, stores the event in the
// ring (overwriting the oldest once full) and nudges subscribers.
// Subscribers read at their own pace with Poll or Next; one that falls
// more than a full ring behind skips the overwritten events and counts
// them as dropped. With no subscribers the ring simply wraps — an
// unobserved bus costs one mutex acquisition and one slot store per
// event.
type Bus struct {
	mu   sync.Mutex
	buf  []Event // ring: sequence n lives at (n-1) % size
	size int
	seq  uint64 // last assigned sequence number (0 = nothing published)
	subs map[*Sub]struct{}
}

// NewBus returns a bus with the given ring capacity (DefaultBusSize when
// size <= 0).
func NewBus(size int) *Bus {
	if size <= 0 {
		size = DefaultBusSize
	}
	return &Bus{size: size, subs: map[*Sub]struct{}{}}
}

// Publish assigns the event its sequence number, stores it and wakes
// subscribers. It returns the assigned sequence number.
func (b *Bus) Publish(e Event) uint64 {
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	if len(b.buf) < b.size {
		b.buf = append(b.buf, e)
	} else {
		b.buf[(b.seq-1)%uint64(b.size)] = e
	}
	seq := b.seq
	for s := range b.subs {
		select {
		case s.notify <- struct{}{}:
		default: // already nudged
		}
	}
	b.mu.Unlock()
	return seq
}

// Seq returns the last assigned sequence number (the total number of
// events ever published).
func (b *Bus) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Size returns the ring capacity.
func (b *Bus) Size() int { return b.size }

// Subscribers returns the number of attached subscribers.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscribe attaches a new subscriber positioned at the current sequence
// number: it sees events published from now on.
func (b *Bus) Subscribe() *Sub {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &Sub{bus: b, cursor: b.seq, notify: make(chan struct{}, 1)}
	b.subs[s] = struct{}{}
	return s
}

// Sub is one subscriber's cursor into the bus.
type Sub struct {
	bus     *Bus
	cursor  uint64 // last sequence number delivered
	dropped uint64
	notify  chan struct{}
	closed  bool
}

// Poll returns up to max pending events (nil when none are pending). If
// the subscriber fell behind the ring, the overwritten events are skipped
// and added to Dropped.
func (s *Sub) Poll(max int) []Event {
	if max <= 0 {
		max = s.bus.size
	}
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.cursor >= b.seq {
		return nil
	}
	oldest := b.seq - uint64(len(b.buf)) + 1 // oldest sequence still in the ring
	if s.cursor+1 < oldest {
		s.dropped += oldest - 1 - s.cursor
		s.cursor = oldest - 1
	}
	n := int(b.seq - s.cursor)
	if n > max {
		n = max
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		seq := s.cursor + 1 + uint64(i)
		out = append(out, b.buf[(seq-1)%uint64(b.size)])
	}
	s.cursor += uint64(n)
	return out
}

// Next polls, and when nothing is pending blocks up to timeout for a
// publication before polling once more. It returns nil on timeout — the
// caller's loop shape is `for evs := sub.Next(...); ...`.
func (s *Sub) Next(max int, timeout time.Duration) []Event {
	if evs := s.Poll(max); len(evs) > 0 {
		return evs
	}
	// Wall-clock wait for a publication; events themselves carry sim time.
	timer := time.NewTimer(timeout) //cxl0:hostclock
	defer timer.Stop()
	select {
	case <-s.notify:
		return s.Poll(max)
	case <-timer.C:
		return nil
	}
}

// Dropped returns how many events this subscriber lost to ring overwrite.
func (s *Sub) Dropped() uint64 {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// Close detaches the subscriber from the bus.
func (s *Sub) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if !s.closed {
		delete(s.bus.subs, s)
		s.closed = true
	}
}
