package obs

import "sync/atomic"

// Recorder is the emission facade instrumented code holds: one Bus (may
// be nil — stats only), one Stats (may be nil — events only) and the
// attribution tag of the instrumented layer. A store outside a pool runs
// the untagged recorder (cluster -1, shard indices pass through); a
// router tags one derived recorder per cluster with Tagged, so every
// store-level event carries its cluster and global shard index while all
// of them share one bus, one aggregate and one span-ID sequence.
//
// Every method on a nil *Recorder is a no-op, but hot paths should guard
// with an explicit nil check so argument evaluation is skipped too.
type Recorder struct {
	bus       *Bus
	stats     *Stats
	cluster   int
	shardBase int
	spanSeq   *atomic.Uint64
}

// NewRecorder ties a bus and a stats aggregate together, untagged
// (cluster -1, shard indices pass through). Either may be nil.
func NewRecorder(bus *Bus, stats *Stats) *Recorder {
	return &Recorder{bus: bus, stats: stats, cluster: -1, spanSeq: &atomic.Uint64{}}
}

// Tagged derives a recorder attributing its events to cluster, with
// local shard indices lifted by shardBase into the pool's global index
// space. The derived recorder shares the bus, stats and span sequence.
func (r *Recorder) Tagged(cluster, shardBase int) *Recorder {
	if r == nil {
		return nil
	}
	d := *r
	d.cluster = cluster
	d.shardBase = shardBase
	return &d
}

// Bus returns the recorder's bus (nil for a stats-only recorder).
func (r *Recorder) Bus() *Bus {
	if r == nil {
		return nil
	}
	return r.bus
}

// Stats returns the recorder's aggregate (nil for an events-only
// recorder).
func (r *Recorder) Stats() *Stats {
	if r == nil {
		return nil
	}
	return r.stats
}

// NewSpan allocates a fresh span ID (shared across derived recorders, so
// parent/leg links never collide).
func (r *Recorder) NewSpan() uint64 {
	if r == nil {
		return 0
	}
	return r.spanSeq.Add(1)
}

// shard lifts a local shard index into the global space (-1 passes
// through).
func (r *Recorder) shard(local int) int {
	if local < 0 {
		return -1
	}
	return r.shardBase + local
}

// publish stamps the recorder's cluster tag and defaults, then publishes.
func (r *Recorder) publish(e Event) {
	if r.bus != nil {
		r.bus.Publish(e)
	}
}

// base returns an event skeleton with the recorder's tag and the
// unattributed defaults filled in.
func (r *Recorder) base(kind Kind) Event {
	return Event{Kind: kind, Cluster: r.cluster, Shard: -1, Bucket: -1, From: -1, To: -1}
}

// OpSpan records one served operation: a span event on the bus and a
// latency sample (endNS-startNS, simulated) in the per-op and per-shard
// histograms. shard is the store-local shard index (-1 for ops spanning
// shards); n is the op's size (pairs scanned, keys resolved, batch
// length); acked is the number of client writes the op acknowledged
// durable at return (0 under the batched strategies, where acks ride
// commit events instead). Returns the span ID.
func (r *Recorder) OpSpan(op Op, shard int, startNS, endNS float64, n, acked int, durable bool) uint64 {
	if r == nil {
		return 0
	}
	g := r.shard(shard)
	if r.stats != nil {
		r.stats.recordOp(op, g, endNS-startNS)
	}
	span := r.NewSpan()
	e := r.base(KindOp)
	e.Op, e.Span, e.Shard = op, span, g
	e.N, e.Acked, e.Durable = n, acked, durable
	e.StartNS, e.EndNS = startNS, endNS
	r.publish(e)
	return span
}

// FanOut records a router-level parent span over a fan-out operation
// (MultiGet/Scan/Apply). It is events-only: the per-cluster store spans
// already feed the histograms, and double-counting the parent would
// inflate them. Acked is always 0 on the parent — the store-level events
// carry the acks.
func (r *Recorder) FanOut(span uint64, op Op, startNS, endNS float64, n int) {
	if r == nil {
		return
	}
	e := r.base(KindOp)
	e.Op, e.Span = op, span
	e.N = n
	e.StartNS, e.EndNS = startNS, endNS
	r.publish(e)
}

// FanOutLeg records one cluster's leg of a fan-out operation, linked to
// the parent span. Events-only, like FanOut.
func (r *Recorder) FanOutLeg(parent uint64, op Op, cluster int, startNS, endNS float64, n int) {
	if r == nil {
		return
	}
	e := r.base(KindOp)
	e.Op, e.Span, e.Parent = op, r.NewSpan(), parent
	e.Cluster = cluster
	e.N = n
	e.StartNS, e.EndNS = startNS, endNS
	r.publish(e)
}

// Commit records one commit flush of a shard's open batch: n pending
// records flushed, acked of them client writes acknowledged at this
// commit point (migration copy flushes commit with acked 0). depth is
// the commit pipeline's occupancy at issue (1 for a blocking commit)
// and queueNS the batch's wait for the shard's flush lane before the
// startNS..endNS flush span began (0 for a blocking commit). The
// queue-wait and flush-span samples feed the commit-latency histograms.
func (r *Recorder) Commit(shard int, startNS, endNS float64, n, acked, depth int, queueNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.recordCommit(queueNS, endNS-startNS)
	}
	e := r.base(KindCommit)
	e.Shard = r.shard(shard)
	e.N, e.Acked = n, acked
	e.Depth, e.QueueNS = depth, queueNS
	e.StartNS, e.EndNS = startNS, endNS
	r.publish(e)
}

// WriteLatency records one acknowledged client write's latency pair:
// ackNS from submit to durable acknowledgment (including any commit-
// pipeline lane wait) and issueNS from submit to the write path's
// return. Stats-only — the covering op-span or commit event already
// represents the write on the bus.
func (r *Recorder) WriteLatency(ackNS, issueNS float64) {
	if r == nil || r.stats == nil {
		return
	}
	r.stats.recordWrite(ackNS, issueNS)
}

// Crash records a shard machine failure.
func (r *Recorder) Crash(shard int, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindCrash)
	}
	e := r.base(KindCrash)
	e.Shard = r.shard(shard)
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// Partition records a shard machine cut off by a fabric partition.
// Instantaneous and ack-free, like Crash.
func (r *Recorder) Partition(shard int, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindPartition)
	}
	e := r.base(KindPartition)
	e.Shard = r.shard(shard)
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// Heal records a partitioned shard machine reconnecting to the fabric.
func (r *Recorder) Heal(shard int, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindHeal)
	}
	e := r.base(KindHeal)
	e.Shard = r.shard(shard)
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// Degrade records a change of a shard device's latency multiplier; the
// new factor rides N in percent (100 = full speed restored).
func (r *Recorder) Degrade(shard int, factor float64, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindDegrade)
	}
	e := r.base(KindDegrade)
	e.Shard = r.shard(shard)
	e.N = int(factor * 100)
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// CacheHit records one served read answered from the front end's read
// cache without a simulated Load. Emitted only with the cache enabled
// (kv.Config.ReadCache > 0), so a cache-off stream is unchanged.
func (r *Recorder) CacheHit(shard int, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindCacheHit)
	}
	e := r.base(KindCacheHit)
	e.Shard = r.shard(shard)
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// CacheMiss records one served read that consulted the cache, paid the
// simulated Load and filled the value back. Cache-enabled only, like
// CacheHit.
func (r *Recorder) CacheMiss(shard int, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindCacheMiss)
	}
	e := r.base(KindCacheMiss)
	e.Shard = r.shard(shard)
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// SpeculativeFill records one prefetcher warm-up: a predicted key's
// value installed in the read cache ahead of demand. Instantaneous on
// the simulated clock — the speculative read is modeled as fully
// overlapped (see docs/caching.md).
func (r *Recorder) SpeculativeFill(shard int, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindSpeculative)
	}
	e := r.base(KindSpeculative)
	e.Shard = r.shard(shard)
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// Recover records a completed shard recovery: recovered surviving log
// records, salvaged client writes acknowledged by the recovery (pending
// batched writes the scan validated), lost records destroyed by the
// crash.
func (r *Recorder) Recover(shard int, startNS, endNS float64, recovered, salvaged, lost int) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindRecover)
	}
	e := r.base(KindRecover)
	e.Shard = r.shard(shard)
	e.N, e.Acked, e.Lost = recovered, salvaged, lost
	e.StartNS, e.EndNS = startNS, endNS
	r.publish(e)
}

// MigrationStep records one bucket-migration checkpoint; step is the
// kv.MigrateStep name, records the live records being moved. The
// "after-flip" step completes the migration and bumps the Migrations
// counter.
func (r *Recorder) MigrationStep(step string, bucket, from, to, records int, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil && step == "after-flip" {
		r.stats.count(KindMigration)
	}
	e := r.base(KindMigration)
	e.Step = step
	e.Bucket, e.From, e.To = bucket, r.shard(from), r.shard(to)
	e.N = records
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// CompactionStep records one compaction checkpoint; step is the
// kv.CompactStep name, live the folded record count, reclaimed the slots
// retired (known only at "after-reclaim", which completes the compaction
// and bumps the Compactions counter; earlier steps pass 0). Reclaimed
// slots ride the Lost field — records retired, like a recovery's.
func (r *Recorder) CompactionStep(step string, shard int, epoch uint64, live, reclaimed int, nowNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil && step == "after-reclaim" {
		r.stats.count(KindCompaction)
	}
	e := r.base(KindCompaction)
	e.Step = step
	e.Shard = r.shard(shard)
	e.Epoch = epoch
	e.N, e.Lost = live, reclaimed
	e.StartNS, e.EndNS = nowNS, nowNS
	r.publish(e)
}

// Rebalance records one load-aware rebalance decision: moves migrations
// performed — possibly 0, a "balanced" decision is a signal too. The
// per-move detail (buckets, records) rides the MigrationStep events the
// moves emitted.
func (r *Recorder) Rebalance(moves int, startNS, endNS float64) {
	if r == nil {
		return
	}
	if r.stats != nil {
		r.stats.count(KindRebalance)
	}
	e := r.base(KindRebalance)
	e.N = moves
	e.StartNS, e.EndNS = startNS, endNS
	r.publish(e)
}
