// Package obs is the observability layer of the CXL0 stack: a
// zero-dependency, typed event bus plus rolling counters and latency
// histograms, spanning every layer from the shard logs up to the pooled
// router.
//
// The design splits into three pieces:
//
//   - Event is the typed record: op spans (Put/Get/Scan/MultiGet/Apply
//     with simulated start/end times and their shard route), commit
//     flushes, bucket-migration steps, compaction checkpoints,
//     crash/recover, and rebalance decisions.
//   - Bus is a ring-buffered publish/subscribe channel for Events.
//     Subscribers poll at their own pace; a subscriber that falls more
//     than one ring behind loses the overwritten events and its drop
//     counter says exactly how many. With no subscriber the ring just
//     wraps — publishing never blocks and never allocates per event
//     beyond the ring slot.
//   - Stats aggregates what flows through: per-op and per-shard latency
//     histograms (log2-bucketed, in simulated nanoseconds), event-kind
//     counters, and rolling per-second rates on the host clock.
//
// A Recorder ties a Bus and a Stats together behind one emission API and
// carries the attribution tag (cluster, global-shard base) of the layer
// it instruments. Instrumented code holds a possibly-nil *Recorder and
// pays a single nil-check when observability is off — no event is built,
// no lock is taken.
//
// Time semantics: span start/end times are simulated nanoseconds from the
// instrumented cluster's clock (deltas are simulated cost, the same
// currency as kv.Metrics busy time), while rolling rates run on the host
// clock (events per host second — the liveness signal a dashboard wants).
package obs

import (
	"encoding/json"
	"fmt"
)

// Kind classifies an Event.
type Kind int

const (
	// KindOp is an operation span: one client operation served by a
	// store (or a router fan-out parent/leg, linked by Span/Parent).
	KindOp Kind = iota
	// KindCommit is one commit flush of a shard's open batch (GPF or
	// ranged), carrying the count of client writes it acknowledged.
	KindCommit
	// KindMigration is one checkpoint of a bucket migration (Step names
	// it; "after-flip" completes the migration).
	KindMigration
	// KindCompaction is one checkpoint of a shard compaction (Step names
	// it; "after-reclaim" completes the compaction).
	KindCompaction
	// KindCrash is a shard machine failure.
	KindCrash
	// KindRecover is a completed shard recovery, carrying the salvaged
	// (acknowledged-at-recovery) and lost record counts.
	KindRecover
	// KindRebalance is one load-aware rebalance decision, carrying the
	// number of migrations it performed (possibly zero).
	KindRebalance
	// KindPartition is a shard machine cut off by a fabric partition
	// (operations routed to it fail with kv.ErrUnavailable until the
	// matching KindHeal).
	KindPartition
	// KindHeal is a partitioned shard machine reconnecting to the fabric.
	// No recovery follows: nothing was lost.
	KindHeal
	// KindDegrade is a change of a shard device's latency multiplier,
	// carrying the new factor in percent (N = 100 × factor; N == 100
	// restores full speed).
	KindDegrade
	// KindCacheHit is a served read answered from the front end's local
	// read cache (kv.Config.ReadCache) without a simulated Load, and
	// KindCacheMiss one that paid the Load and filled the cache. Both are
	// emitted only with the cache enabled, so a cache-off event stream is
	// byte-identical to a pre-cache one.
	KindCacheHit
	KindCacheMiss
	// KindSpeculative is one speculative prefetch fill: the predictor
	// warmed the cache with a key ahead of demand (see docs/caching.md).
	KindSpeculative

	numKinds
)

var kindNames = [...]string{
	"op", "commit", "migration", "compaction", "crash", "recover", "rebalance",
	"partition", "heal", "degrade", "hit", "miss", "speculative",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op names the operation of a KindOp event.
type Op int

const (
	// OpNone marks events that are not operation spans.
	OpNone Op = iota
	// OpPut is a single-key write.
	OpPut
	// OpDelete is a single-key tombstone write.
	OpDelete
	// OpGet is a point lookup.
	OpGet
	// OpMultiGet is a batched lookup.
	OpMultiGet
	// OpScan is a range scan.
	OpScan
	// OpApply is a write batch.
	OpApply

	numOps
)

var opNames = [...]string{"", "put", "delete", "get", "multiget", "scan", "apply"}

func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Event is one typed observability record. Fields that do not apply to a
// kind hold their -1/zero defaults; Cluster and Shard use -1 for "not
// attributed" (a store outside a pool, an op spanning shards).
type Event struct {
	// Seq is the bus-assigned publication sequence number (1, 2, ...).
	Seq uint64
	// Kind classifies the event; Op names the operation for KindOp.
	Kind Kind
	Op   Op
	// Step names the checkpoint for migration and compaction events
	// (kv.MigrateStep / kv.CompactStep strings).
	Step string
	// Span identifies an operation span; Parent links a router fan-out
	// leg to its parent span. 0 = none.
	Span, Parent uint64
	// Cluster attributes the event to one pooled cluster (-1 outside a
	// pool or for a router-level parent span). Shard is the global shard
	// index (-1 when the event is not shard-scoped).
	Cluster, Shard int
	// Bucket, From and To describe a bucket migration (-1 otherwise).
	Bucket, From, To int
	// Epoch is the snapshot epoch a compaction event belongs to.
	Epoch uint64
	// N is the event's generic size: pairs returned by a scan, keys of a
	// multiget, records of a batch/migration/recovery, moves of a
	// rebalance.
	N int
	// Acked is the number of client writes this event acknowledged
	// durable. Summed over a store's op-span, commit and recover events
	// it equals the store's Metrics.Acked — the ack-agreement invariant
	// kvtest pins.
	Acked int
	// Lost counts retired records: appended records a recovery found
	// destroyed, or slots a compaction's "after-reclaim" step retired.
	Lost int
	// Durable reports an op span's ack state at return (Ack.Durable).
	Durable bool
	// Depth is a commit event's pipeline occupancy at issue (1 for a
	// blocking commit; 0 on non-commit events) and QueueNS how long the
	// batch waited for the shard's flush lane behind earlier in-flight
	// flushes before its flush started (0 for a blocking commit, whose
	// span is pure flush). The event's StartNS..EndNS span is the flush
	// itself; queue wait precedes it.
	Depth   int
	QueueNS float64
	// StartNS and EndNS are simulated nanoseconds; their delta is the
	// event's simulated cost. Instantaneous events carry StartNS == EndNS.
	StartNS, EndNS float64
}

// eventJSON is Event's wire form: kinds and ops by name, steps omitted
// when empty. Every numeric field is always present so consumers need no
// per-kind schema.
type eventJSON struct {
	Seq     uint64  `json:"seq"`
	Kind    string  `json:"kind"`
	Op      string  `json:"op,omitempty"`
	Step    string  `json:"step,omitempty"`
	Span    uint64  `json:"span,omitempty"`
	Parent  uint64  `json:"parent,omitempty"`
	Cluster int     `json:"cluster"`
	Shard   int     `json:"shard"`
	Bucket  int     `json:"bucket"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	Epoch   uint64  `json:"epoch,omitempty"`
	N       int     `json:"n"`
	Acked   int     `json:"acked"`
	Lost    int     `json:"lost"`
	Durable bool    `json:"durable"`
	Depth   int     `json:"depth"`
	QueueNS float64 `json:"queue_ns"`
	StartNS float64 `json:"start_ns"`
	EndNS   float64 `json:"end_ns"`
}

// MarshalJSON renders the event with kind and op as their names.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Seq: e.Seq, Kind: e.Kind.String(), Op: e.Op.String(), Step: e.Step,
		Span: e.Span, Parent: e.Parent, Cluster: e.Cluster, Shard: e.Shard,
		Bucket: e.Bucket, From: e.From, To: e.To, Epoch: e.Epoch,
		N: e.N, Acked: e.Acked, Lost: e.Lost, Durable: e.Durable,
		Depth: e.Depth, QueueNS: e.QueueNS,
		StartNS: e.StartNS, EndNS: e.EndNS,
	})
}
