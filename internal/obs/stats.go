package obs

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Hist is a log2-bucketed latency histogram over simulated nanoseconds:
// bucket i counts values in [2^(i-1), 2^i) (bucket 0 counts values below
// 1ns). The bucketing trades ~50% relative resolution for fixed size and
// allocation-free adds — the right trade for p50/p95/p99 snapshots over
// latencies spanning DRAM hits to GPF stalls.
type Hist struct {
	counts [64]uint64
	n      uint64
	sum    float64
}

// add records one latency sample.
func (h *Hist) add(ns float64) {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i > 63 {
		i = 63
	}
	h.counts[i]++
	h.n++
	h.sum += ns
}

// N returns the sample count.
func (h *Hist) N() uint64 { return h.n }

// Mean returns the exact mean of the recorded samples (the sum is kept
// unbucketed), or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q-quantile (q in [0,1]) as the geometric midpoint
// of the bucket holding the rank — an estimate with log2-bucket
// resolution, documented in docs/observability.md. Returns 0 with no
// samples.
func (h *Hist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0.5
			}
			return 1.5 * math.Ldexp(1, i-1) // mid of [2^(i-1), 2^i)
		}
	}
	return 0
}

// rateSecs is the rolling-rate window length in host seconds.
const rateSecs = 10

// rateWindow counts events into per-second buckets of the host clock and
// reports a rolling events-per-second rate over the last rateSecs seconds.
type rateWindow struct {
	counts [rateSecs]uint64
	second [rateSecs]int64 // unix second each bucket currently holds
}

func (w *rateWindow) add(now int64) {
	i := now % rateSecs
	if w.second[i] != now {
		w.second[i] = now
		w.counts[i] = 0
	}
	w.counts[i]++
}

func (w *rateWindow) perSec(now int64) float64 {
	total := uint64(0)
	for i := range w.counts {
		if now-w.second[i] < rateSecs {
			total += w.counts[i]
		}
	}
	return float64(total) / rateSecs
}

// Stats aggregates the event stream into counters, rolling rates and
// latency histograms keyed by op type and by (op, global shard). Latency
// samples are simulated nanoseconds; rates run on the host clock. A
// Recorder feeds it; Snapshot renders it for /metrics.
type Stats struct {
	mu       sync.Mutex
	now      func() time.Time // host clock, injectable for tests
	kinds    [numKinds]uint64 // completed events per kind (see Recorder)
	perOp    [numOps]Hist
	rates    [numOps]rateWindow
	perShard map[int][numOps]*Hist
	// Write-latency split (Recorder.WriteLatency): submit-to-durable-ack
	// vs submit-to-return per acknowledged write. With the commit
	// pipeline off the two nearly coincide; the gap is what pipelining
	// buys (see docs/pipeline.md).
	writeAck, writeIssue Hist
	// Commit-latency split (Recorder.Commit): flush-lane queue wait vs
	// the flush span itself, per commit flush.
	commitQueue, commitFlush Hist
}

// NewStats returns an empty aggregate on the real host clock.
func NewStats() *Stats {
	// Host-clock rate windows only; never feeds simulated state.
	return &Stats{now: time.Now, perShard: map[int][numOps]*Hist{}} //cxl0:hostclock
}

// recordOp feeds one op span's simulated latency (and its host-time rate
// tick) into the aggregate.
func (s *Stats) recordOp(op Op, shard int, simNS float64) {
	if op <= OpNone || op >= numOps {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kinds[KindOp]++
	s.perOp[op].add(simNS)
	s.rates[op].add(s.now().Unix())
	if shard >= 0 {
		hs, ok := s.perShard[shard]
		if !ok {
			for i := range hs {
				hs[i] = &Hist{}
			}
			s.perShard[shard] = hs
		}
		hs[op].add(simNS)
	}
}

// count bumps one non-op kind counter.
func (s *Stats) count(k Kind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kinds[k]++
}

// recordWrite feeds one acknowledged write's ack/issue latency pair.
func (s *Stats) recordWrite(ackNS, issueNS float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeAck.add(ackNS)
	s.writeIssue.add(issueNS)
}

// recordCommit counts one commit flush and feeds its queue-wait and
// flush-span samples.
func (s *Stats) recordCommit(queueNS, flushNS float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kinds[KindCommit]++
	s.commitQueue.add(queueNS)
	s.commitFlush.add(flushNS)
}

// OpSnapshot is one op type's aggregate: sample count, rolling host-rate
// and simulated-latency percentiles.
type OpSnapshot struct {
	Op         string  `json:"op"`
	Count      uint64  `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	MeanNS     float64 `json:"mean_ns"`
	P50NS      float64 `json:"p50_ns"`
	P95NS      float64 `json:"p95_ns"`
	P99NS      float64 `json:"p99_ns"`
}

// ShardSnapshot is one global shard's per-op aggregates.
type ShardSnapshot struct {
	Shard int          `json:"shard"`
	Ops   []OpSnapshot `json:"ops"`
}

// Snapshot is the JSON-ready view of a Stats.
type Snapshot struct {
	// Ops aggregates per op type across all shards; Shards breaks the
	// shard-routable ops down by global shard index.
	Ops    []OpSnapshot    `json:"ops"`
	Shards []ShardSnapshot `json:"shards"`
	// WriteLat splits acknowledged writes' latency into the "ack"
	// (submit to durable ack) and "issue" (submit to return) rows, and
	// CommitLat splits commit flushes into their "queue" (flush-lane
	// wait) and "flush" (the flush span) rows. Omitted with no samples.
	WriteLat  []OpSnapshot `json:"write_latency,omitempty"`
	CommitLat []OpSnapshot `json:"commit_latency,omitempty"`
	// Completed-event counters: operation spans, commit flushes,
	// completed migrations ("after-flip") and compactions
	// ("after-reclaim"), crashes, recoveries, rebalance decisions, and
	// fault-campaign churn (partitions, heals, degrade changes).
	OpSpans     uint64 `json:"op_spans"`
	Commits     uint64 `json:"commits"`
	Migrations  uint64 `json:"migrations"`
	Compactions uint64 `json:"compactions"`
	Crashes     uint64 `json:"crashes"`
	Recoveries  uint64 `json:"recoveries"`
	Rebalances  uint64 `json:"rebalances"`
	Partitions  uint64 `json:"partitions"`
	Heals       uint64 `json:"heals"`
	Degrades    uint64 `json:"degrades"`
	// Read-cache counters (all 0 with kv.Config.ReadCache off): reads
	// served from the front end's local cache, reads that paid the Load
	// and filled it, and speculative prefetch fills.
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	SpeculativeFills uint64 `json:"speculative_fills"`
}

func opSnapshot(op Op, h *Hist, rate float64) OpSnapshot {
	return histSnapshot(op.String(), h, rate)
}

// histSnapshot renders one histogram under an arbitrary row label —
// opSnapshot's core, shared with the non-op rows (write/commit latency
// splits).
func histSnapshot(label string, h *Hist, rate float64) OpSnapshot {
	return OpSnapshot{
		Op:         label,
		Count:      h.N(),
		RatePerSec: rate,
		MeanNS:     h.Mean(),
		P50NS:      h.Quantile(0.50),
		P95NS:      h.Quantile(0.95),
		P99NS:      h.Quantile(0.99),
	}
}

// Snapshot renders the aggregate. Ops and shards with no samples are
// omitted.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now().Unix()
	snap := Snapshot{
		OpSpans:     s.kinds[KindOp],
		Commits:     s.kinds[KindCommit],
		Migrations:  s.kinds[KindMigration],
		Compactions: s.kinds[KindCompaction],
		Crashes:     s.kinds[KindCrash],
		Recoveries:  s.kinds[KindRecover],
		Rebalances:  s.kinds[KindRebalance],
		Partitions:  s.kinds[KindPartition],
		Heals:       s.kinds[KindHeal],
		Degrades:    s.kinds[KindDegrade],

		CacheHits:        s.kinds[KindCacheHit],
		CacheMisses:      s.kinds[KindCacheMiss],
		SpeculativeFills: s.kinds[KindSpeculative],
	}
	for op := OpNone + 1; op < numOps; op++ {
		if s.perOp[op].N() == 0 {
			continue
		}
		snap.Ops = append(snap.Ops, opSnapshot(op, &s.perOp[op], s.rates[op].perSec(now)))
	}
	if s.writeAck.N() > 0 {
		snap.WriteLat = []OpSnapshot{
			histSnapshot("ack", &s.writeAck, 0),
			histSnapshot("issue", &s.writeIssue, 0),
		}
	}
	if s.commitFlush.N() > 0 {
		snap.CommitLat = []OpSnapshot{
			histSnapshot("queue", &s.commitQueue, 0),
			histSnapshot("flush", &s.commitFlush, 0),
		}
	}
	shards := make([]int, 0, len(s.perShard))
	for id := range s.perShard {
		shards = append(shards, id)
	}
	for i := 0; i < len(shards); i++ { // insertion sort: tiny n, no extra import
		for j := i; j > 0 && shards[j] < shards[j-1]; j-- {
			shards[j], shards[j-1] = shards[j-1], shards[j]
		}
	}
	for _, id := range shards {
		hs := s.perShard[id]
		row := ShardSnapshot{Shard: id}
		for op := OpNone + 1; op < numOps; op++ {
			if hs[op].N() == 0 {
				continue
			}
			row.Ops = append(row.Ops, opSnapshot(op, hs[op], 0))
		}
		if len(row.Ops) > 0 {
			snap.Shards = append(snap.Shards, row)
		}
	}
	return snap
}
