package crashtest

import (
	"math/rand"
	"sync"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/ds"
	"cxl0/internal/flit"
	"cxl0/internal/history"
	"cxl0/internal/memsim"
)

// TestDurableLinearizabilityIsLocal exercises the paper's composability
// claim: "combining (durably) linearizable objects yields (durably)
// linearizable histories". Two independent objects — a queue and a map —
// share the cluster, the memory host, the FliT counter table, and the
// crash; each object's projected history must be durably linearizable on
// its own, with no cross-object reasoning.
func TestDurableLinearizabilityIsLocal(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cluster := memsim.NewCluster([]memsim.MachineConfig{
			{Name: "computeA", Mem: core.NonVolatile, Heap: 16},
			{Name: "computeB", Mem: core.NonVolatile, Heap: 16},
			{Name: "memhost", Mem: core.NonVolatile, Heap: 8192},
		}, memsim.Config{EvictEvery: 6, Seed: seed})

		heap, err := flit.NewHeap(cluster, memHost)
		if err != nil {
			t.Fatal(err)
		}
		setupTh, err := cluster.NewThread(computeA)
		if err != nil {
			t.Fatal(err)
		}
		setup := flit.NewSession(flit.CXL0FliT, setupTh)
		queue, err := ds.NewQueue(heap, setup)
		if err != nil {
			t.Fatal(err)
		}
		hmap, err := ds.NewMap(heap, 4)
		if err != nil {
			t.Fatal(err)
		}

		var qRec, mRec history.Recorder
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				machine := computeA
				if w%2 == 1 {
					machine = computeB
				}
				th, err := cluster.NewThread(machine)
				if err != nil {
					errs <- err
					return
				}
				se := flit.NewSession(flit.CXL0FliT, th)
				rng := rand.New(rand.NewSource(seed*100 + int64(w)))
				for i := 0; i < 6; i++ {
					var err error
					if rng.Intn(2) == 0 {
						err = queueOp(queue, se, &qRec, cluster, w, rng)
					} else {
						err = mapOp(hmap, se, &mRec, cluster, w, rng)
					}
					if err == memsim.ErrCrashed {
						return
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		// Crash the shared memory host mid-run.
		cluster.Crash(memHost)
		cluster.Recover(memHost)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		// Observe both objects with a fresh client.
		obsTh, err := cluster.NewThread(computeA)
		if err != nil {
			t.Fatal(err)
		}
		obs := flit.NewSession(flit.CXL0FliT, obsTh)
		if err := queue.Recover(obs); err != nil {
			t.Fatal(err)
		}
		for {
			tok := qRec.Begin(9, "deq", 0, 0, cluster.Stamp())
			v, ok, err := queue.Dequeue(obs)
			if err != nil {
				t.Fatal(err)
			}
			qRec.End(tok, v, ok, cluster.Stamp())
			if !ok {
				break
			}
		}
		for k := core.Val(1); k <= keySpace; k++ {
			tok := mRec.Begin(9, "get", k, 0, cluster.Stamp())
			v, ok, err := hmap.Get(obs, k)
			if err != nil {
				t.Fatal(err)
			}
			mRec.End(tok, v, ok, cluster.Stamp())
		}

		qh, mh := qRec.History(), mRec.History()
		if err := qh.WellFormed(); err != nil {
			t.Fatal(err)
		}
		if err := mh.WellFormed(); err != nil {
			t.Fatal(err)
		}
		if !history.Linearizable(qh, history.QueueSpec{}) {
			t.Fatalf("seed %d: queue projection not durably linearizable: %v", seed, qh.Ops)
		}
		if !history.LinearizablePartitioned(mh, history.ByKey, history.MapSpec{}) {
			t.Fatalf("seed %d: map projection not durably linearizable: %v", seed, mh.Ops)
		}
	}
}

func queueOp(q *ds.Queue, se *flit.Session, rec *history.Recorder, cl *memsim.Cluster, client int, rng *rand.Rand) error {
	if rng.Intn(2) == 0 {
		v := core.Val(1 + rng.Intn(keySpace))
		tok := rec.Begin(client, "enq", v, 0, cl.Stamp())
		if err := q.Enqueue(se, v); err != nil {
			return err
		}
		rec.End(tok, 0, true, cl.Stamp())
		return nil
	}
	tok := rec.Begin(client, "deq", 0, 0, cl.Stamp())
	v, ok, err := q.Dequeue(se)
	if err != nil {
		return err
	}
	rec.End(tok, v, ok, cl.Stamp())
	return nil
}

func mapOp(m *ds.Map, se *flit.Session, rec *history.Recorder, cl *memsim.Cluster, client int, rng *rand.Rand) error {
	k := core.Val(1 + rng.Intn(keySpace))
	switch rng.Intn(3) {
	case 0:
		v := core.Val(1 + rng.Intn(9))
		tok := rec.Begin(client, "put", k, v, cl.Stamp())
		if err := m.Put(se, k, v); err != nil {
			return err
		}
		rec.End(tok, 0, true, cl.Stamp())
	case 1:
		tok := rec.Begin(client, "get", k, 0, cl.Stamp())
		v, ok, err := m.Get(se, k)
		if err != nil {
			return err
		}
		rec.End(tok, v, ok, cl.Stamp())
	default:
		tok := rec.Begin(client, "del", k, 0, cl.Stamp())
		ok, err := m.Delete(se, k)
		if err != nil {
			return err
		}
		rec.End(tok, 0, ok, cl.Stamp())
	}
	return nil
}
