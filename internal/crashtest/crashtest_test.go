package crashtest

import (
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/ds"
	"cxl0/internal/flit"
	"cxl0/internal/history"
	"cxl0/internal/memsim"
)

// TestCorrectStrategiesAreDurablyLinearizable is the positive half of the
// §6 theorem: FliT-for-CXL0 (and the stronger baselines) keep every
// structure durably linearizable under every crash mode, across seeds.
func TestCorrectStrategiesAreDurablyLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow")
	}
	for _, strat := range []flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt, flit.MStoreAll} {
		for _, structure := range Structures {
			for _, mode := range CrashModes {
				name := strat.String() + "/" + structure.String() + "/" + mode.String()
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					ok, bad, first, err := Sweep(Options{
						Structure: structure,
						Strategy:  strat,
						Crash:     mode,
					}, 6)
					if err != nil {
						t.Fatal(err)
					}
					if bad != 0 {
						t.Fatalf("%d/%d runs not durably linearizable; first: %v",
							bad, ok+bad, first.History.Ops)
					}
				})
			}
		}
	}
}

// TestOriginalFliTViolatesUnderPartialCrash is the negative half: the
// unmodified x86 FliT (local flushes only) loses completed operations when
// the memory host crashes. This is a deterministic reproduction of the
// paper's motivating failure.
func TestOriginalFliTViolatesUnderPartialCrash(t *testing.T) {
	// Deterministic scenario: no background eviction, so the flushed value
	// deterministically sits in the memory host's cache at crash time.
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "computeA", Mem: core.NonVolatile, Heap: 16},
		{Name: "computeB", Mem: core.NonVolatile, Heap: 16},
		{Name: "memhost", Mem: core.NonVolatile, Heap: 256},
	}, memsim.Config{})
	heap, err := flit.NewHeap(cluster, memHost)
	if err != nil {
		t.Fatal(err)
	}
	th, err := cluster.NewThread(computeA)
	if err != nil {
		t.Fatal(err)
	}
	se := flit.NewSession(flit.OriginalFliT, th)
	reg, err := ds.NewRegister(heap)
	if err != nil {
		t.Fatal(err)
	}

	var rec history.Recorder
	tok := rec.Begin(0, "write", 5, 0, cluster.Stamp())
	if err := reg.Write(se, 5); err != nil {
		t.Fatal(err)
	}
	rec.End(tok, 0, true, cluster.Stamp())

	cluster.Crash(memHost)
	cluster.Recover(memHost)

	tok = rec.Begin(1, "read", 0, 0, cluster.Stamp())
	v, err := reg.Read(se)
	if err != nil {
		t.Fatal(err)
	}
	rec.End(tok, v, true, cluster.Stamp())

	if v != 0 {
		t.Fatalf("expected the completed write to be lost under OriginalFliT; read %d", v)
	}
	if history.Linearizable(rec.History(), history.RegisterSpec{}) {
		t.Fatalf("checker accepted a lost completed write")
	}
}

// TestCXL0FliTSurvivesTheSameScenario runs the identical deterministic
// scenario under Algorithm 2: the write persists.
func TestCXL0FliTSurvivesTheSameScenario(t *testing.T) {
	for _, strat := range []flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt, flit.MStoreAll} {
		cluster := memsim.NewCluster([]memsim.MachineConfig{
			{Name: "computeA", Mem: core.NonVolatile, Heap: 16},
			{Name: "computeB", Mem: core.NonVolatile, Heap: 16},
			{Name: "memhost", Mem: core.NonVolatile, Heap: 256},
		}, memsim.Config{})
		heap, err := flit.NewHeap(cluster, memHost)
		if err != nil {
			t.Fatal(err)
		}
		th, err := cluster.NewThread(computeA)
		if err != nil {
			t.Fatal(err)
		}
		se := flit.NewSession(strat, th)
		reg, err := ds.NewRegister(heap)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Write(se, 5); err != nil {
			t.Fatal(err)
		}
		cluster.Crash(memHost)
		cluster.Recover(memHost)
		v, err := reg.Read(se)
		if err != nil {
			t.Fatal(err)
		}
		if v != 5 {
			t.Errorf("%v: write lost across memory-host crash: read %d", strat, v)
		}
	}
}

// TestUnsoundStrategiesProduceViolations sweeps the randomized workload
// with the unsound strategies; at least one seed must yield a durable-
// linearizability violation for the queue under a memory-host crash.
func TestUnsoundStrategiesProduceViolations(t *testing.T) {
	for _, strat := range []flit.Strategy{flit.OriginalFliT, flit.NoPersist} {
		t.Run(strat.String(), func(t *testing.T) {
			_, bad, first, err := Sweep(Options{
				Structure:    StructQueue,
				Strategy:     strat,
				Crash:        CrashMemoryHost,
				Workers:      3,
				OpsPerWorker: 8,
			}, 12)
			if err != nil {
				t.Fatal(err)
			}
			if bad == 0 {
				t.Fatalf("no violation found for %v across 12 seeds", strat)
			}
			if first != nil && first.Err != nil {
				t.Fatalf("violating run errored: %v", first.Err)
			}
		})
	}
}

// TestNoCrashAllStrategiesLinearizable: without crashes even the unsound
// strategies are plain linearizable (they only lack durability).
func TestNoCrashAllStrategiesLinearizable(t *testing.T) {
	for _, strat := range flit.Strategies {
		for _, structure := range []Structure{StructQueue, StructRegister, StructCounter} {
			r := Run(Options{Structure: structure, Strategy: strat, Crash: CrashNone, Seed: 3})
			if r.Err != nil {
				t.Fatalf("%v/%v: %v", strat, structure, r.Err)
			}
			if !r.Linearizable {
				t.Errorf("%v/%v: crash-free run not linearizable: %v", strat, structure, r.History.Ops)
			}
		}
	}
}

// TestPSNVariantStillCorrect runs the correct strategies under the PSN
// hardware variant across all crash modes. Poisoning destroys surviving
// machines' cached copies of the crashed owner's lines, which defeats the
// unguarded Algorithm 2 (see TestPSNOwnerCrashAnomaly) — but the
// crash-epoch guard in the sound strategies detects the owner's crash and
// re-issues the affected stores, and MStore-everything bypasses caches
// entirely, so both must stay durably linearizable.
func TestPSNVariantStillCorrect(t *testing.T) {
	for _, strat := range []flit.Strategy{flit.CXL0FliT, flit.MStoreAll} {
		for _, mode := range CrashModes {
			ok, bad, first, err := Sweep(Options{
				Structure: StructQueue,
				Strategy:  strat,
				Crash:     mode,
				Variant:   core.PSN,
			}, 4)
			if err != nil {
				t.Fatal(err)
			}
			if bad != 0 {
				t.Fatalf("PSN/%v/%v: %d/%d violations; first: %v", strat, mode, bad, ok+bad, first.History.Ops)
			}
		}
	}
}

// TestPSNOwnerCrashAnomaly documents a reproduction finding: under the PSN
// variant, a crash of the memory OWNER poisons the writer's cached copy of
// an in-flight store. The surviving writer's RFlush then completes
// vacuously (the line is gone from every cache), so the operation returns
// as completed without its value ever reaching persistence — a durable-
// linearizability violation that cache-line poisoning inflicts on any
// store-then-flush transformation that is not poison-aware. The paper's
// Alg. 2 targets base CXL0; this test pins down why PSN needs more (either
// poison-aware failure handling or cache-bypassing MStores).
func TestPSNOwnerCrashAnomaly(t *testing.T) {
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "computeA", Mem: core.NonVolatile, Heap: 16},
		{Name: "computeB", Mem: core.NonVolatile, Heap: 16},
		{Name: "memhost", Mem: core.NonVolatile, Heap: 256},
	}, memsim.Config{Variant: core.PSN})
	heap, err := flit.NewHeap(cluster, memHost)
	if err != nil {
		t.Fatal(err)
	}
	th, err := cluster.NewThread(computeA)
	if err != nil {
		t.Fatal(err)
	}
	se := flit.NewSession(flit.CXL0FliT, th)
	v, err := heap.AllocVar()
	if err != nil {
		t.Fatal(err)
	}

	// Reproduce shared_store's internals with the crash in the vulnerable
	// window: after the LStore, before the RFlush.
	if _, err := th.FAA(core.OpMRMW, v.Ctr, 1); err != nil {
		t.Fatal(err)
	}
	if err := th.LStore(v.Data, 5); err != nil {
		t.Fatal(err)
	}
	cluster.Crash(memHost) // PSN: poisons the cached 5 in computeA
	cluster.Recover(memHost)
	if err := th.RFlush(v.Data); err != nil { // completes vacuously
		t.Fatal(err)
	}
	if _, err := th.FAA(core.OpLRMW, v.Ctr, -1); err != nil {
		t.Fatal(err)
	}
	got, err := se.Load(v)
	if err != nil {
		t.Fatal(err)
	}
	if got == 5 {
		t.Fatalf("PSN anomaly no longer reproduces: poisoned in-flight store survived")
	}
}

// TestLWBVariantStillCorrect does the same for the LWB variant.
func TestLWBVariantStillCorrect(t *testing.T) {
	for _, mode := range CrashModes {
		ok, bad, first, err := Sweep(Options{
			Structure: StructMap,
			Strategy:  flit.CXL0FliT,
			Crash:     mode,
			Variant:   core.LWB,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Fatalf("LWB/%v: %d/%d violations; first: %v", mode, bad, ok+bad, first.History.Ops)
		}
	}
}
