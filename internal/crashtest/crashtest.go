// Package crashtest runs the paper's §6 experiment end to end: concurrent
// workloads over FliT-transformed data structures with injected machine
// crashes, checked for durable linearizability.
//
// A run builds a three-machine cluster (two compute nodes and one NVM
// memory host holding the structure), spawns workers issuing randomized
// operations, crashes a machine mid-run (the memory host, a compute node,
// or both), recovers, drains/reads the structure, and hands the recorded
// history to the durable-linearizability checker.
//
// Under the correct strategies (Algorithm 2, its §6.1 optimisation, and
// MStore-everything) every run must be durably linearizable. The original
// x86 FliT and the no-persistence baseline are expected to produce
// violations: a completed operation's effect can vanish with the memory
// host's volatile cache.
package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"cxl0/internal/core"
	"cxl0/internal/ds"
	"cxl0/internal/flit"
	"cxl0/internal/history"
	"cxl0/internal/memsim"
)

// Structure selects the data structure under test.
type Structure int

const (
	StructQueue Structure = iota
	StructStack
	StructRegister
	StructCounter
	StructSet
	StructMap
)

var structNames = [...]string{"queue", "stack", "register", "counter", "set", "map"}

func (s Structure) String() string { return structNames[s] }

// Structures lists every testable structure.
var Structures = []Structure{StructQueue, StructStack, StructRegister, StructCounter, StructSet, StructMap}

// CrashMode selects which machine crashes mid-run.
type CrashMode int

const (
	// CrashNone injects no crash (plain linearizability check).
	CrashNone CrashMode = iota
	// CrashMemoryHost crashes the machine owning the structure's memory:
	// its cache content is lost, its NVM survives.
	CrashMemoryHost
	// CrashCompute crashes one compute machine: its workers die mid-
	// operation, leaving pending operations.
	CrashCompute
	// CrashBoth crashes the memory host and a compute machine.
	CrashBoth
)

var crashModeNames = [...]string{"none", "memory-host", "compute", "both"}

func (m CrashMode) String() string { return crashModeNames[m] }

// CrashModes lists all crash modes.
var CrashModes = []CrashMode{CrashNone, CrashMemoryHost, CrashCompute, CrashBoth}

// Options configures one run.
type Options struct {
	Structure    Structure
	Strategy     flit.Strategy
	Crash        CrashMode
	Seed         int64
	Workers      int // concurrent clients, spread over the two compute machines
	OpsPerWorker int
	Variant      core.Variant
}

// Result is the outcome of one run.
type Result struct {
	Options      Options
	History      history.History
	Linearizable bool
	Err          error
}

// spec returns the sequential specification for a structure.
func spec(s Structure) history.Spec {
	switch s {
	case StructQueue:
		return history.QueueSpec{}
	case StructStack:
		return history.StackSpec{}
	case StructRegister:
		return history.RegisterSpec{}
	case StructCounter:
		return history.CounterSpec{}
	case StructSet:
		return history.SetSpec{}
	default:
		return history.MapSpec{}
	}
}

const (
	computeA = core.MachineID(0)
	computeB = core.MachineID(1)
	memHost  = core.MachineID(2)
	keySpace = 5 // small, to force conflicts
)

// Run executes one crash experiment.
func Run(o Options) Result {
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.OpsPerWorker <= 0 {
		o.OpsPerWorker = 6
	}
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "computeA", Mem: core.NonVolatile, Heap: 16},
		{Name: "computeB", Mem: core.NonVolatile, Heap: 16},
		{Name: "memhost", Mem: core.NonVolatile, Heap: 8192},
	}, memsim.Config{Variant: o.Variant, EvictEvery: 7, Seed: o.Seed})

	heap, err := flit.NewHeap(cluster, memHost)
	if err != nil {
		return Result{Options: o, Err: err}
	}
	setupThread, err := cluster.NewThread(computeA)
	if err != nil {
		return Result{Options: o, Err: err}
	}
	setup := flit.NewSession(o.Strategy, setupThread)

	obj, err := newObject(o.Structure, heap, setup)
	if err != nil {
		return Result{Options: o, Err: err}
	}

	var (
		rec         history.Recorder
		opsDone     atomic.Int64
		workersDone atomic.Int64
		wg          sync.WaitGroup
		runErrMu    sync.Mutex
		runErr      error
	)
	fail := func(err error) {
		runErrMu.Lock()
		defer runErrMu.Unlock()
		if runErr == nil {
			runErr = err
		}
	}

	total := int64(o.Workers * o.OpsPerWorker)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer workersDone.Add(1)
			machine := computeA
			if w%2 == 1 {
				machine = computeB
			}
			th, err := cluster.NewThread(machine)
			if err != nil {
				fail(err)
				return
			}
			se := flit.NewSession(o.Strategy, th)
			rng := rand.New(rand.NewSource(o.Seed*1000 + int64(w)))
			for i := 0; i < o.OpsPerWorker; i++ {
				if err := obj.randomOp(se, &rec, cluster, w, rng); err != nil {
					if errors.Is(err, memsim.ErrCrashed) {
						return // worker died with the machine; its op stays pending
					}
					if errors.Is(err, ds.ErrCorrupt) {
						// The crash destroyed the structure's anchors — a
						// durability failure only unsound strategies can
						// produce. The op stays pending; the observation
						// phase will expose the loss to the checker.
						return
					}
					fail(fmt.Errorf("worker %d: %w", w, err))
					return
				}
				opsDone.Add(1)
			}
		}(w)
	}

	// Crash controller: wait until roughly half the operations completed,
	// then fail the selected machines and recover them.
	if o.Crash != CrashNone {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for opsDone.Load() < total/2 && workersDone.Load() < int64(o.Workers) {
				runtime.Gosched()
			}
			if o.Crash == CrashMemoryHost || o.Crash == CrashBoth {
				cluster.Crash(memHost)
				cluster.Recover(memHost)
			}
			if o.Crash == CrashCompute || o.Crash == CrashBoth {
				cluster.Crash(computeB)
				cluster.Recover(computeB)
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return Result{Options: o, Err: runErr}
	}

	// Recovery phase: fresh thread, observe the entire structure.
	obsThread, err := cluster.NewThread(computeA)
	if err != nil {
		return Result{Options: o, Err: err}
	}
	obs := flit.NewSession(o.Strategy, obsThread)
	if err := obj.observe(obs, &rec, cluster, o.Workers); err != nil {
		return Result{Options: o, Err: err}
	}

	h := rec.History()
	if err := h.WellFormed(); err != nil {
		return Result{Options: o, Err: err}
	}
	ok := history.Linearizable(h, spec(o.Structure))
	return Result{Options: o, History: h, Linearizable: ok}
}

// object adapts one data structure to the harness.
type object struct {
	kind  Structure
	queue *ds.Queue
	stack *ds.Stack
	reg   *ds.Register
	ctr   *ds.Counter
	set   *ds.Set
	hmap  *ds.Map
}

func newObject(kind Structure, heap *flit.Heap, se *flit.Session) (*object, error) {
	o := &object{kind: kind}
	var err error
	switch kind {
	case StructQueue:
		o.queue, err = ds.NewQueue(heap, se)
	case StructStack:
		o.stack, err = ds.NewStack(heap)
	case StructRegister:
		o.reg, err = ds.NewRegister(heap)
	case StructCounter:
		o.ctr, err = ds.NewCounter(heap)
	case StructSet:
		o.set, err = ds.NewSet(heap)
	case StructMap:
		o.hmap, err = ds.NewMap(heap, 4)
	}
	return o, err
}

// randomOp performs one randomized operation, recording it. Values are ≥ 1
// so that a zeroed (lost) location can never masquerade as real data.
func (o *object) randomOp(se *flit.Session, rec *history.Recorder, cl *memsim.Cluster, client int, rng *rand.Rand) error {
	arg := core.Val(1 + rng.Intn(keySpace))
	switch o.kind {
	case StructQueue:
		if rng.Intn(2) == 0 {
			tok := rec.Begin(client, "enq", arg, 0, cl.Stamp())
			if err := o.queue.Enqueue(se, arg); err != nil {
				return err
			}
			rec.End(tok, 0, true, cl.Stamp())
			return nil
		}
		tok := rec.Begin(client, "deq", 0, 0, cl.Stamp())
		v, ok, err := o.queue.Dequeue(se)
		if err != nil {
			return err
		}
		rec.End(tok, v, ok, cl.Stamp())
	case StructStack:
		if rng.Intn(2) == 0 {
			tok := rec.Begin(client, "push", arg, 0, cl.Stamp())
			if err := o.stack.Push(se, arg); err != nil {
				return err
			}
			rec.End(tok, 0, true, cl.Stamp())
			return nil
		}
		tok := rec.Begin(client, "pop", 0, 0, cl.Stamp())
		v, ok, err := o.stack.Pop(se)
		if err != nil {
			return err
		}
		rec.End(tok, v, ok, cl.Stamp())
	case StructRegister:
		switch rng.Intn(3) {
		case 0:
			tok := rec.Begin(client, "write", arg, 0, cl.Stamp())
			if err := o.reg.Write(se, arg); err != nil {
				return err
			}
			rec.End(tok, 0, true, cl.Stamp())
		case 1:
			tok := rec.Begin(client, "read", 0, 0, cl.Stamp())
			v, err := o.reg.Read(se)
			if err != nil {
				return err
			}
			rec.End(tok, v, true, cl.Stamp())
		default:
			old, new := arg, core.Val(1+rng.Intn(keySpace))
			tok := rec.Begin(client, "cas", old, new, cl.Stamp())
			ok, err := o.reg.CompareAndSwap(se, old, new)
			if err != nil {
				return err
			}
			rec.End(tok, 0, ok, cl.Stamp())
		}
	case StructCounter:
		if rng.Intn(3) > 0 {
			tok := rec.Begin(client, "add", 1, 0, cl.Stamp())
			prev, err := o.ctr.Inc(se)
			if err != nil {
				return err
			}
			rec.End(tok, prev, true, cl.Stamp())
			return nil
		}
		tok := rec.Begin(client, "get", 0, 0, cl.Stamp())
		v, err := o.ctr.Value(se)
		if err != nil {
			return err
		}
		rec.End(tok, v, true, cl.Stamp())
	case StructSet:
		switch rng.Intn(3) {
		case 0:
			tok := rec.Begin(client, "ins", arg, 0, cl.Stamp())
			ok, err := o.set.Insert(se, arg)
			if err != nil {
				return err
			}
			rec.End(tok, 0, ok, cl.Stamp())
		case 1:
			tok := rec.Begin(client, "rem", arg, 0, cl.Stamp())
			ok, err := o.set.Remove(se, arg)
			if err != nil {
				return err
			}
			rec.End(tok, 0, ok, cl.Stamp())
		default:
			tok := rec.Begin(client, "has", arg, 0, cl.Stamp())
			ok, err := o.set.Contains(se, arg)
			if err != nil {
				return err
			}
			rec.End(tok, 0, ok, cl.Stamp())
		}
	case StructMap:
		switch rng.Intn(3) {
		case 0:
			val := core.Val(1 + rng.Intn(9))
			tok := rec.Begin(client, "put", arg, val, cl.Stamp())
			if err := o.hmap.Put(se, arg, val); err != nil {
				return err
			}
			rec.End(tok, 0, true, cl.Stamp())
		case 1:
			tok := rec.Begin(client, "get", arg, 0, cl.Stamp())
			v, ok, err := o.hmap.Get(se, arg)
			if err != nil {
				return err
			}
			rec.End(tok, v, ok, cl.Stamp())
		default:
			tok := rec.Begin(client, "del", arg, 0, cl.Stamp())
			ok, err := o.hmap.Delete(se, arg)
			if err != nil {
				return err
			}
			rec.End(tok, 0, ok, cl.Stamp())
		}
	}
	return nil
}

// observe reads the whole structure after recovery, recording the reads as
// operations of a fresh client so that the checker can confront them with
// the pre-crash history.
func (o *object) observe(se *flit.Session, rec *history.Recorder, cl *memsim.Cluster, client int) error {
	switch o.kind {
	case StructQueue:
		if err := o.queue.Recover(se); err != nil {
			return err
		}
		for {
			tok := rec.Begin(client, "deq", 0, 0, cl.Stamp())
			v, ok, err := o.queue.Dequeue(se)
			if err != nil {
				return err
			}
			rec.End(tok, v, ok, cl.Stamp())
			if !ok {
				return nil
			}
		}
	case StructStack:
		for {
			tok := rec.Begin(client, "pop", 0, 0, cl.Stamp())
			v, ok, err := o.stack.Pop(se)
			if err != nil {
				return err
			}
			rec.End(tok, v, ok, cl.Stamp())
			if !ok {
				return nil
			}
		}
	case StructRegister:
		tok := rec.Begin(client, "read", 0, 0, cl.Stamp())
		v, err := o.reg.Read(se)
		if err != nil {
			return err
		}
		rec.End(tok, v, true, cl.Stamp())
	case StructCounter:
		tok := rec.Begin(client, "get", 0, 0, cl.Stamp())
		v, err := o.ctr.Value(se)
		if err != nil {
			return err
		}
		rec.End(tok, v, true, cl.Stamp())
	case StructSet:
		for k := core.Val(1); k <= keySpace; k++ {
			tok := rec.Begin(client, "has", k, 0, cl.Stamp())
			ok, err := o.set.Contains(se, k)
			if err != nil {
				return err
			}
			rec.End(tok, 0, ok, cl.Stamp())
		}
	case StructMap:
		for k := core.Val(1); k <= keySpace; k++ {
			tok := rec.Begin(client, "get", k, 0, cl.Stamp())
			v, ok, err := o.hmap.Get(se, k)
			if err != nil {
				return err
			}
			rec.End(tok, v, ok, cl.Stamp())
		}
	}
	return nil
}

// Sweep runs the experiment across seeds and reports how many runs were
// durably linearizable.
func Sweep(base Options, seeds int) (ok, violations int, firstViolation *Result, err error) {
	for s := 0; s < seeds; s++ {
		o := base
		o.Seed = int64(s + 1)
		r := Run(o)
		if r.Err != nil {
			return ok, violations, firstViolation, r.Err
		}
		if r.Linearizable {
			ok++
		} else {
			violations++
			if firstViolation == nil {
				cp := r
				firstViolation = &cp
			}
		}
	}
	return ok, violations, firstViolation, nil
}
