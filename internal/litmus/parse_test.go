package litmus

import (
	"strings"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/explore"
)

const sampleScript = `
# Figure 3, test 5, in the script format.
machines: M1:nvm M2:nvm
locs: x@M2
trace: LStore1(x,1) RFlush1(x) E2 Load1(x,0)
expect: base=forbidden lwb=forbidden psn=forbidden
trace: LStore1(x,1); LFlush1(x); E2; Load1(x,0)
expect: base=allowed
`

func TestParseScript(t *testing.T) {
	s, err := ParseScript(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	if s.Topo.NumMachines() != 2 || s.Topo.NumLocs() != 1 {
		t.Fatalf("topology: %d machines, %d locs", s.Topo.NumMachines(), s.Topo.NumLocs())
	}
	if s.Topo.Mem(0) != core.NonVolatile {
		t.Errorf("M1 memory kind wrong")
	}
	if len(s.Traces) != 2 {
		t.Fatalf("got %d traces", len(s.Traces))
	}
	tr := s.Traces[0]
	if len(tr.Labels) != 4 {
		t.Fatalf("trace 0 has %d labels", len(tr.Labels))
	}
	want := []core.Op{core.OpLStore, core.OpRFlush, core.OpCrash, core.OpLoad}
	for i, op := range want {
		if tr.Labels[i].Op != op {
			t.Errorf("label %d op = %v, want %v", i, tr.Labels[i].Op, op)
		}
	}
	if tr.Labels[2].M != 1 {
		t.Errorf("crash machine = %d, want 1", tr.Labels[2].M)
	}
	if got := tr.Expect[core.Base]; got {
		t.Errorf("expect base = %v, want forbidden", got)
	}
	if allowed, ok := s.Traces[1].Expect[core.Base]; !ok || !allowed {
		t.Errorf("trace 1 base expectation wrong")
	}
}

func TestParsedScriptVerdicts(t *testing.T) {
	s, err := ParseScript(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range s.Traces {
		for variant, want := range tr.Expect {
			got := explore.Allows(s.Topo, variant, tr.Labels)
			if got != want {
				t.Errorf("trace %d under %v: got %v, want %v", i, variant, got, want)
			}
		}
	}
}

func TestParseRMWEvents(t *testing.T) {
	s, err := ParseScript(`
machines: M1:nvm
locs: x@M1
trace: LRMW1(x,0,1) MRMW1(x,1,2) E1 Load1(x,2)
expect: base=allowed
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Traces[0]
	if tr.Labels[0].Op != core.OpLRMW || tr.Labels[0].Old != 0 || tr.Labels[0].New != 1 {
		t.Errorf("LRMW parsed wrong: %+v", tr.Labels[0])
	}
	if !explore.Allows(s.Topo, core.Base, tr.Labels) {
		t.Errorf("M-RMW result should persist across the crash")
	}
}

func TestParseGPF(t *testing.T) {
	s, err := ParseScript(`
machines: M1:nvm M2:nvm
locs: x@M1 y@M2
trace: LStore1(x,1) LStore1(y,2) GPF1 E1 E2 Load1(x,1) Load1(y,2)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !explore.Allows(s.Topo, core.Base, s.Traces[0].Labels) {
		t.Errorf("GPF trace should be allowed")
	}
}

func TestParseRFlushRange(t *testing.T) {
	s, err := ParseScript(`
machines: M1:nvm M2:nvm
locs: x@M2 y@M2
trace: LStore1(x,1) LStore1(y,2) RFlushRange1(x,2) E1 E2 Load1(x,1) Load1(y,2)
expect: base=allowed psn=allowed lwb=allowed
trace: LStore1(x,1) LStore1(y,2) RFlushRange1(x,2) E1 E2 Load1(y,0)
expect: base=forbidden psn=forbidden lwb=forbidden
`)
	if err != nil {
		t.Fatal(err)
	}
	lbl := s.Traces[0].Labels[2]
	if lbl.Op != core.OpRFlushRange || lbl.M != 0 || lbl.N != 2 {
		t.Fatalf("parsed ranged flush = %+v", lbl)
	}
	for i, tr := range s.Traces {
		for variant, want := range tr.Expect {
			if got := explore.Allows(s.Topo, variant, tr.Labels); got != want {
				t.Errorf("trace %d under %v: got %v, want %v", i, variant, got, want)
			}
		}
	}
	// A range running past the declared locations is a parse error, not a
	// model panic.
	if _, err := ParseScript(`
machines: M1:nvm
locs: x@M1
trace: RFlushRange1(x,2)
`); err == nil || !strings.Contains(err.Error(), "range") {
		t.Errorf("oversized range not rejected: %v", err)
	}
	if _, err := ParseScript(`
machines: M1:nvm
locs: x@M1
trace: RFlushRange1(x,0)
`); err == nil {
		t.Error("zero range count accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"no machines", "locs: x@M1\ntrace: E1", "locs before machines"},
		{"bad machine name", "machines: A:nvm", "must be named M1..Mn"},
		{"bad mem kind", "machines: M1:ssd", "unknown memory kind"},
		{"bad loc", "machines: M1:nvm\nlocs: x", "must be NAME@Mi"},
		{"unknown loc", "machines: M1:nvm\nlocs: x@M1\ntrace: Load1(z,0)", "unknown location"},
		{"machine out of range", "machines: M1:nvm\nlocs: x@M1\ntrace: Load9(x,0)", "out of range"},
		{"unknown event", "machines: M1:nvm\nlocs: x@M1\ntrace: Frob1(x)", "unknown event"},
		{"expect before trace", "machines: M1:nvm\nlocs: x@M1\nexpect: base=allowed", "expect before any trace"},
		{"bad verdict", "machines: M1:nvm\nlocs: x@M1\ntrace: E1\nexpect: base=maybe", "must be allowed or forbidden"},
		{"no trace", "machines: M1:nvm\nlocs: x@M1", "no trace directive"},
		{"negative value", "machines: M1:nvm\nlocs: x@M1\ntrace: LStore1(x,-1)", "bad value"},
		{"wrong arity", "machines: M1:nvm\nlocs: x@M1\ntrace: LStore1(x)", "want 2 arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseScript(c.input)
			if err == nil {
				t.Fatalf("no error for %q", c.input)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestRoundTripPaperTests re-encodes the Figure 3 corpus through the script
// format and checks verdicts survive the round trip.
func TestRoundTripPaperTests(t *testing.T) {
	script := `
machines: M1:nvm M2:nvm M3:nvm
locs: x1@M1 x2@M2 x3@M3 y1@M1
trace: RStore1(x1,1) E1 Load1(x1,0)
expect: base=allowed
trace: MStore1(x1,1) E1 Load1(x1,0)
expect: base=forbidden
trace: LStore1(x3,1) Load2(x3,1) LFlush2(x3) E1 E2 Load2(x3,0)
expect: base=forbidden
trace: RStore1(x2,1) Load2(x2,1) RStore2(y1,1) E2 Load1(y1,1) Load1(x2,0)
expect: base=allowed
`
	s, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range s.Traces {
		got := explore.Allows(s.Topo, core.Base, tr.Labels)
		if got != tr.Expect[core.Base] {
			t.Errorf("round-trip trace %d (%s): got %v, want %v", i, tr.Source, got, tr.Expect[core.Base])
		}
	}
}
