package litmus

import (
	"testing"

	"cxl0/internal/core"
)

// TestFigure3 re-derives the verdicts of all nine Figure 3 litmus tests and
// compares them with the paper.
func TestFigure3(t *testing.T) {
	for _, r := range RunAll(Figure3()) {
		if !r.Agrees() {
			t.Errorf("test %d %q under %v: got %s, paper says %s",
				r.Test.ID, r.Test.Paper, r.Variant, Mark(r.Got), Mark(r.Expected))
		}
	}
}

// TestVariantTriples re-derives the (CXL0, LWB, PSN) verdict triples of
// tests 10–12.
func TestVariantTriples(t *testing.T) {
	for _, r := range RunAll(VariantTests()) {
		if !r.Agrees() {
			t.Errorf("test %d %q under %v: got %s, paper says %s",
				r.Test.ID, r.Test.Paper, r.Variant, Mark(r.Got), Mark(r.Expected))
		}
	}
}

// TestVariantsAreIncomparable confirms the paper's claim that PSN and LWB
// are incomparable: each forbids a trace the other allows.
func TestVariantsAreIncomparable(t *testing.T) {
	var lwbStricterSomewhere, psnStricterSomewhere bool
	for _, tt := range VariantTests() {
		lwb, psn := tt.Run(core.LWB), tt.Run(core.PSN)
		if psn && !lwb {
			lwbStricterSomewhere = true
		}
		if lwb && !psn {
			psnStricterSomewhere = true
		}
	}
	if !lwbStricterSomewhere || !psnStricterSomewhere {
		t.Errorf("variants not shown incomparable: lwbStricter=%v psnStricter=%v",
			lwbStricterSomewhere, psnStricterSomewhere)
	}
}

// TestMotivatingVerdicts checks the §6 example end-to-end: the plain LStore
// program fails the assertion; MStore or RFlush repairs it.
func TestMotivatingVerdicts(t *testing.T) {
	if MotivatingAssertionHolds(core.OpLStore, false) {
		t.Errorf("plain LStore program unexpectedly satisfies assert(r1==r2)")
	}
	if !MotivatingAssertionHolds(core.OpMStore, false) {
		t.Errorf("MStore repair does not satisfy the assertion")
	}
	if !MotivatingAssertionHolds(core.OpLStore, true) {
		t.Errorf("RFlush repair does not satisfy the assertion")
	}
}

// TestCorpusShape sanity-checks the corpus statically.
func TestCorpusShape(t *testing.T) {
	f3 := Figure3()
	if len(f3) != 9 {
		t.Fatalf("Figure 3 corpus has %d tests, want 9", len(f3))
	}
	for i, tt := range f3 {
		if tt.ID != i+1 {
			t.Errorf("test %d has ID %d", i+1, tt.ID)
		}
		if len(tt.Trace) == 0 || tt.Paper == "" {
			t.Errorf("test %d incomplete", tt.ID)
		}
		if _, ok := tt.Expected[core.Base]; !ok {
			t.Errorf("test %d missing Base expectation", tt.ID)
		}
	}
	vt := VariantTests()
	if len(vt) != 3 {
		t.Fatalf("variant corpus has %d tests, want 3", len(vt))
	}
	for _, tt := range vt {
		if len(tt.Expected) != 3 {
			t.Errorf("test %d: want verdicts for all three variants", tt.ID)
		}
	}
}
