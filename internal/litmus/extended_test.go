package litmus

import (
	"testing"

	"cxl0/internal/core"
)

// TestExtendedCorpus re-derives every verdict of the extended corpus (the
// reproduction-finding traces) from the model.
func TestExtendedCorpus(t *testing.T) {
	tests := Extended()
	if len(tests) < 10 {
		t.Fatalf("extended corpus has %d tests", len(tests))
	}
	for _, r := range RunAll(tests) {
		if !r.Agrees() {
			t.Errorf("extended test %d %q under %v: got %s, expected %s\n  note: %s",
				r.Test.ID, r.Test.Paper, r.Variant, Mark(r.Got), Mark(r.Expected), r.Test.Note)
		}
	}
}

// TestExtendedCrashWindowPair pins the F2 pair: with the crash in the
// store-flush window both survival and loss are reachable — the crux of
// the vacuous-flush finding.
func TestExtendedCrashWindowPair(t *testing.T) {
	var loss, survival *Test
	for _, tt := range Extended() {
		switch tt.ID {
		case 101:
			loss = tt
		case 102:
			survival = tt
		}
	}
	if loss == nil || survival == nil {
		t.Fatal("F2 pair missing from corpus")
	}
	if !loss.Run(core.Base) || !survival.Run(core.Base) {
		t.Fatalf("both outcomes of the crash window must be reachable")
	}
}
