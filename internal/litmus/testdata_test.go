package litmus

import (
	"os"
	"path/filepath"
	"testing"

	"cxl0/internal/explore"
)

// TestScriptCorpusFiles parses and verifies every .litmus script under
// testdata — the same files a user would feed to cxl0-explore.
func TestScriptCorpusFiles(t *testing.T) {
	files, err := filepath.Glob("testdata/*.litmus")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected at least 3 script files, found %d", len(files))
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			script, err := ParseScript(string(raw))
			if err != nil {
				t.Fatal(err)
			}
			checked := 0
			for i, tr := range script.Traces {
				if len(tr.Expect) == 0 {
					t.Errorf("trace %d has no expectations", i+1)
				}
				for variant, want := range tr.Expect {
					if got := explore.Allows(script.Topo, variant, tr.Labels); got != want {
						t.Errorf("trace %d (%s) under %v: got %v, want %v",
							i+1, tr.Source, variant, got, want)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Error("no expectations checked")
			}
		})
	}
}
