// Package litmus encodes the paper's litmus tests: the nine tests of
// Figure 3 (base model), the three variant-separating tests 10–12 of §3.5,
// and the motivating example of §6. Each test carries the verdicts printed
// in the paper; the runner re-derives them by exhaustive trace exploration
// and reports agreement.
package litmus

import (
	"fmt"

	"cxl0/internal/core"
	"cxl0/internal/explore"
)

// Test is one litmus test: a trace over a fixed topology plus the paper's
// verdict per model variant. A verdict of true means the trace is allowed.
type Test struct {
	ID    int
	Paper string // the trace as printed in the paper
	Note  string
	Topo  *core.Topology
	Trace []core.Label
	// Expected maps each variant to the paper's verdict. Tests 1–9 are
	// specified for Base only; 10–12 carry all three verdicts.
	Expected map[core.Variant]bool
}

// Run returns the verdict derived from the model for the given variant.
func (t *Test) Run(v core.Variant) bool {
	return explore.Allows(t.Topo, v, t.Trace)
}

// figure3Topo is the three-machine, all-NVM topology used by tests 1–9:
// x1 ∈ Loc_1, x2 ∈ Loc_2, x3 ∈ Loc_3, y1 ∈ Loc_1.
func figure3Topo() (t *core.Topology, x1, x2, x3, y1 core.LocID) {
	t = core.NewTopology()
	m1 := t.AddMachine("machine1", core.NonVolatile)
	m2 := t.AddMachine("machine2", core.NonVolatile)
	m3 := t.AddMachine("machine3", core.NonVolatile)
	x1 = t.AddLoc("x1", m1)
	x2 = t.AddLoc("x2", m2)
	x3 = t.AddLoc("x3", m3)
	y1 = t.AddLoc("y1", m1)
	return
}

// variantTopo is the two-machine topology of §3.5: machine1 has NVMM,
// machine2 has volatile memory; x1 ∈ Loc_1.
func variantTopo() (t *core.Topology, x1 core.LocID) {
	t = core.NewTopology()
	m1 := t.AddMachine("machine1", core.NonVolatile)
	t.AddMachine("machine2", core.Volatile)
	x1 = t.AddLoc("x1", m1)
	return
}

const (
	m1 = core.MachineID(0)
	m2 = core.MachineID(1)
	m3 = core.MachineID(2)
)

// Figure3 returns tests 1–9 with the paper's Base-model verdicts.
func Figure3() []*Test {
	topo, x1, x2, x3, y1 := figure3Topo()
	base := func(ok bool) map[core.Variant]bool { return map[core.Variant]bool{core.Base: ok} }
	return []*Test{
		{
			ID: 1, Topo: topo, Expected: base(true),
			Paper: "RStore1(x1,1); E1; Load1(x1,0)",
			Note:  "an RStore may be lost if it has not propagated to persistence",
			Trace: []core.Label{core.RStoreL(m1, x1, 1), core.CrashL(m1), core.LoadL(m1, x1, 0)},
		},
		{
			ID: 2, Topo: topo, Expected: base(false),
			Paper: "MStore1(x1,1); E1; Load1(x1,0)",
			Note:  "MStore persists before returning",
			Trace: []core.Label{core.MStoreL(m1, x1, 1), core.CrashL(m1), core.LoadL(m1, x1, 0)},
		},
		{
			ID: 3, Topo: topo, Expected: base(false),
			Paper: "LStore1(x1,1); LFlush1(x1); E1; Load1(x1,0)",
			Note:  "an owner's LFlush forces propagation to its persistent memory",
			Trace: []core.Label{core.LStoreL(m1, x1, 1), core.LFlushL(m1, x1), core.CrashL(m1), core.LoadL(m1, x1, 0)},
		},
		{
			ID: 4, Topo: topo, Expected: base(true),
			Paper: "LStore1(x2,1); LFlush1(x2); E2; Load1(x2,0)",
			Note:  "a non-owner's LFlush only reaches the remote cache, which the crash destroys",
			Trace: []core.Label{core.LStoreL(m1, x2, 1), core.LFlushL(m1, x2), core.CrashL(m2), core.LoadL(m1, x2, 0)},
		},
		{
			ID: 5, Topo: topo, Expected: base(false),
			Paper: "LStore1(x2,1); RFlush1(x2); E2; Load1(x2,0)",
			Note:  "RFlush forces propagation into the remote persistent memory",
			Trace: []core.Label{core.LStoreL(m1, x2, 1), core.RFlushL(m1, x2), core.CrashL(m2), core.LoadL(m1, x2, 0)},
		},
		{
			ID: 6, Topo: topo, Expected: base(false),
			Paper: "LStore1(x3,1); Load2(x3,1); E1; Load2(x3,0)",
			Note:  "loading copies the value into the reader's cache, protecting it from the writer's crash",
			Trace: []core.Label{core.LStoreL(m1, x3, 1), core.LoadL(m2, x3, 1), core.CrashL(m1), core.LoadL(m2, x3, 0)},
		},
		{
			ID: 7, Topo: topo, Expected: base(false),
			Paper: "LStore1(x3,1); Load2(x3,1); LFlush2(x3); E1; E2; Load2(x3,0)",
			Note:  "machine2's flush pushes the copy to machine3's cache, surviving both crashes",
			Trace: []core.Label{
				core.LStoreL(m1, x3, 1), core.LoadL(m2, x3, 1), core.LFlushL(m2, x3),
				core.CrashL(m1), core.CrashL(m2), core.LoadL(m2, x3, 0),
			},
		},
		{
			ID: 8, Topo: topo, Expected: base(true),
			Paper: "RStore1(x2,1); RStore2(y1,x2); E2; Load1(y1,1); Load1(x2,0)",
			Note:  "a later operation can persist while an earlier observed value is lost",
			Trace: []core.Label{
				core.RStoreL(m1, x2, 1),
				core.LoadL(m2, x2, 1), core.RStoreL(m2, y1, 1), // RStore2(y1,x2) shorthand
				core.CrashL(m2),
				core.LoadL(m1, y1, 1), core.LoadL(m1, x2, 0),
			},
		},
		{
			ID: 9, Topo: topo, Expected: base(false),
			Paper: "MStore1(x2,1); RStore2(y1,x2); E2; Load1(y1,1); Load1(x2,0)",
			Note:  "MStore for the first write forbids the inconsistent recovery",
			Trace: []core.Label{
				core.MStoreL(m1, x2, 1),
				core.LoadL(m2, x2, 1), core.RStoreL(m2, y1, 1),
				core.CrashL(m2),
				core.LoadL(m1, y1, 1), core.LoadL(m1, x2, 0),
			},
		},
	}
}

// VariantTests returns tests 10–12 with the paper's (CXL0, CXL0-LWB,
// CXL0-PSN) verdict triples.
func VariantTests() []*Test {
	topo, x1 := variantTopo()
	triple := func(base, lwb, psn bool) map[core.Variant]bool {
		return map[core.Variant]bool{core.Base: base, core.LWB: lwb, core.PSN: psn}
	}
	return []*Test{
		{
			ID: 10, Topo: topo, Expected: triple(true, false, true),
			Paper: "RStore2(x1,1); Load2(x1,1); E1; Load2(x1,0)",
			Note:  "LWB forces the remote load to persist the line first",
			Trace: []core.Label{core.RStoreL(m2, x1, 1), core.LoadL(m2, x1, 1), core.CrashL(m1), core.LoadL(m2, x1, 0)},
		},
		{
			ID: 11, Topo: topo, Expected: triple(true, false, true),
			Paper: "LStore1(x1,1); Load2(x1,1); E1; Load1(x1,0)",
			Note:  "same as test 10 with the initial store issued by machine1",
			Trace: []core.Label{core.LStoreL(m1, x1, 1), core.LoadL(m2, x1, 1), core.CrashL(m1), core.LoadL(m1, x1, 0)},
		},
		{
			ID: 12, Topo: topo, Expected: triple(true, true, false),
			Paper: "LStore2(x1,1); E1; Load1(x1,1); E1; Load2(x1,0)",
			Note:  "poisoning prevents inconsistencies across consecutive crashes",
			Trace: []core.Label{
				core.LStoreL(m2, x1, 1), core.CrashL(m1), core.LoadL(m1, x1, 1),
				core.CrashL(m1), core.LoadL(m2, x1, 0),
			},
		},
	}
}

// Result pairs a test with derived and expected verdicts for one variant.
type Result struct {
	Test     *Test
	Variant  core.Variant
	Got      bool
	Expected bool
}

// Agrees reports whether the model reproduced the paper's verdict.
func (r Result) Agrees() bool { return r.Got == r.Expected }

// RunAll evaluates every test in the given set under every variant it
// specifies an expectation for.
func RunAll(tests []*Test) []Result {
	var out []Result
	for _, t := range tests {
		for _, v := range core.Variants {
			want, ok := t.Expected[v]
			if !ok {
				continue
			}
			out = append(out, Result{Test: t, Variant: v, Got: t.Run(v), Expected: want})
		}
	}
	return out
}

// Mark renders a verdict in the paper's ✔/✗ notation.
func Mark(allowed bool) string {
	if allowed {
		return "✔"
	}
	return "✗"
}

// MotivatingProgram returns the §6 motivating example as an explorable
// program: x lives on M2; M1 runs `x=1; r1=x; r2=x` with one possible M2
// crash. storeOp selects the store primitive for `x=1`, and withRFlush
// inserts an RFlush after the store.
func MotivatingProgram(storeOp core.Op, withRFlush bool) (*core.Topology, explore.Program) {
	topo := core.NewTopology()
	mm1 := topo.AddMachine("M1", core.NonVolatile)
	mm2 := topo.AddMachine("M2", core.NonVolatile)
	x := topo.AddLoc("x", mm2)

	instrs := []explore.Instr{{Kind: explore.IStore, Op: storeOp, Loc: x, Src: explore.ConstOp(1)}}
	if withRFlush {
		instrs = append(instrs, explore.Instr{Kind: explore.IFlush, Op: core.OpRFlush, Loc: x})
	}
	instrs = append(instrs,
		explore.Instr{Kind: explore.ILoad, Loc: x, Dst: 0},
		explore.Instr{Kind: explore.ILoad, Loc: x, Dst: 1},
	)
	return topo, explore.Program{
		Threads:    []explore.Thread{{Machine: mm1, NumRegs: 2, Instrs: instrs}},
		MaxCrashes: 1,
		Crashable:  []core.MachineID{mm2},
	}
}

// MotivatingAssertionHolds explores the motivating program and reports
// whether assert(r1==r2) holds in every surviving outcome.
func MotivatingAssertionHolds(storeOp core.Op, withRFlush bool) bool {
	topo, prog := MotivatingProgram(storeOp, withRFlush)
	for _, o := range explore.Explore(topo, core.Base, prog) {
		if !o.Died[0] && o.Regs[0][0] != o.Regs[0][1] {
			return false
		}
	}
	return true
}

// Describe renders a one-line summary of a test for tooling.
func (t *Test) Describe() string {
	return fmt.Sprintf("(%d) %s", t.ID, t.Paper)
}
