package litmus

import (
	"fmt"
	"strconv"
	"strings"

	"cxl0/internal/core"
)

// This file implements a small text format for litmus tests, used by
// cmd/cxl0-explore, so new tests can be checked without writing Go. The
// syntax mirrors the paper's notation:
//
//	# three machines, one location each, all non-volatile
//	machines: M1:nvm M2:nvm M3:vol
//	locs: x@M1 y@M2
//	trace: LStore1(x,1) LFlush1(x) E1 Load1(x,0)
//	expect: base=forbidden lwb=forbidden psn=forbidden
//
// Machine names must be M1..Mn (the digit after an operation name refers
// to them). `expect:` is optional; when present the checker reports
// agreement. Lines starting with '#' are comments. Multiple trace/expect
// pairs may follow one machines/locs header.

// Script is a parsed litmus script: one topology and one or more traces.
type Script struct {
	Topo   *core.Topology
	Traces []ScriptTrace
}

// ScriptTrace is one trace line plus its optional expectations.
type ScriptTrace struct {
	Source string
	Labels []core.Label
	// Expect maps variants to the expected verdict (true = allowed);
	// missing entries mean "no expectation stated".
	Expect map[core.Variant]bool
}

// ParseScript parses the litmus text format.
func ParseScript(input string) (*Script, error) {
	s := &Script{}
	var locs map[string]core.LocID
	var machineCount int

	lineNo := 0
	for _, raw := range strings.Split(input, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("line %d: expected 'directive: ...', got %q", lineNo, line)
		}
		rest = strings.TrimSpace(rest)
		switch strings.TrimSpace(key) {
		case "machines":
			if s.Topo != nil {
				return nil, fmt.Errorf("line %d: duplicate machines directive", lineNo)
			}
			topo := core.NewTopology()
			for i, spec := range strings.Fields(rest) {
				name, kind, ok := strings.Cut(spec, ":")
				if !ok {
					return nil, fmt.Errorf("line %d: machine spec %q must be NAME:nvm or NAME:vol", lineNo, spec)
				}
				if name != fmt.Sprintf("M%d", i+1) {
					return nil, fmt.Errorf("line %d: machines must be named M1..Mn in order, got %q", lineNo, name)
				}
				var mk core.MemKind
				switch kind {
				case "nvm":
					mk = core.NonVolatile
				case "vol", "volatile":
					mk = core.Volatile
				default:
					return nil, fmt.Errorf("line %d: unknown memory kind %q (want nvm or vol)", lineNo, kind)
				}
				topo.AddMachine(name, mk)
				machineCount++
			}
			if machineCount == 0 {
				return nil, fmt.Errorf("line %d: no machines declared", lineNo)
			}
			s.Topo = topo
		case "locs":
			if s.Topo == nil {
				return nil, fmt.Errorf("line %d: locs before machines", lineNo)
			}
			locs = map[string]core.LocID{}
			for _, spec := range strings.Fields(rest) {
				name, owner, ok := strings.Cut(spec, "@")
				if !ok {
					return nil, fmt.Errorf("line %d: loc spec %q must be NAME@Mi", lineNo, spec)
				}
				m, err := parseMachine(owner, machineCount)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				locs[name] = s.Topo.AddLoc(name, m)
			}
		case "trace":
			if s.Topo == nil || locs == nil {
				return nil, fmt.Errorf("line %d: trace before machines/locs", lineNo)
			}
			labels, err := parseTrace(rest, locs, machineCount)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			s.Traces = append(s.Traces, ScriptTrace{Source: rest, Labels: labels})
		case "expect":
			if len(s.Traces) == 0 {
				return nil, fmt.Errorf("line %d: expect before any trace", lineNo)
			}
			tr := &s.Traces[len(s.Traces)-1]
			if tr.Expect == nil {
				tr.Expect = map[core.Variant]bool{}
			}
			for _, spec := range strings.Fields(rest) {
				vs, verdict, ok := strings.Cut(spec, "=")
				if !ok {
					return nil, fmt.Errorf("line %d: expect spec %q must be variant=allowed|forbidden", lineNo, spec)
				}
				var variant core.Variant
				switch vs {
				case "base":
					variant = core.Base
				case "psn":
					variant = core.PSN
				case "lwb":
					variant = core.LWB
				default:
					return nil, fmt.Errorf("line %d: unknown variant %q", lineNo, vs)
				}
				switch verdict {
				case "allowed":
					tr.Expect[variant] = true
				case "forbidden":
					tr.Expect[variant] = false
				default:
					return nil, fmt.Errorf("line %d: verdict %q must be allowed or forbidden", lineNo, verdict)
				}
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, key)
		}
	}
	if s.Topo == nil {
		return nil, fmt.Errorf("no machines directive found")
	}
	if len(s.Traces) == 0 {
		return nil, fmt.Errorf("no trace directive found")
	}
	return s, nil
}

func parseMachine(name string, count int) (core.MachineID, error) {
	if !strings.HasPrefix(name, "M") {
		return 0, fmt.Errorf("machine name %q must be M1..M%d", name, count)
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 1 || n > count {
		return 0, fmt.Errorf("machine name %q out of range M1..M%d", name, count)
	}
	return core.MachineID(n - 1), nil
}

// parseTrace parses events in the paper's notation, whitespace- or
// semicolon-separated: LStore1(x,1) RFlush2(x) GPF1 E2 Load1(x,0)
// RMW events: LRMW1(x,0,1) RRMW2(y,1,2) MRMW1(x,2,3).
// Ranged flush: RFlushRange1(x,2) flushes the 2 consecutively declared
// locations starting at x.
func parseTrace(text string, locs map[string]core.LocID, machines int) ([]core.Label, error) {
	text = strings.ReplaceAll(text, ";", " ")
	var out []core.Label
	for _, tok := range strings.Fields(text) {
		l, err := parseEvent(tok, locs, machines)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return out, nil
}

var eventOps = []struct {
	prefix string
	op     core.Op
	args   int // 0: none, 1: loc, 2: loc+val, 3: loc+old+new, 4: loc+count
}{
	{"LStore", core.OpLStore, 2},
	{"RStore", core.OpRStore, 2},
	{"MStore", core.OpMStore, 2},
	{"LFlush", core.OpLFlush, 1},
	// RFlushRange must precede RFlush: prefixes are matched in order.
	{"RFlushRange", core.OpRFlushRange, 4},
	{"RFlush", core.OpRFlush, 1},
	{"LRMW", core.OpLRMW, 3},
	{"RRMW", core.OpRRMW, 3},
	{"MRMW", core.OpMRMW, 3},
	{"Load", core.OpLoad, 2},
	{"GPF", core.OpGPF, 0},
	{"E", core.OpCrash, 0},
}

func parseEvent(tok string, locs map[string]core.LocID, machines int) (core.Label, error) {
	for _, e := range eventOps {
		if !strings.HasPrefix(tok, e.prefix) {
			continue
		}
		rest := tok[len(e.prefix):]
		// Machine index digits follow the op name.
		digits := 0
		for digits < len(rest) && rest[digits] >= '0' && rest[digits] <= '9' {
			digits++
		}
		if digits == 0 {
			return core.Label{}, fmt.Errorf("event %q: missing machine index", tok)
		}
		n, _ := strconv.Atoi(rest[:digits])
		if n < 1 || n > machines {
			return core.Label{}, fmt.Errorf("event %q: machine M%d out of range", tok, n)
		}
		m := core.MachineID(n - 1)
		rest = rest[digits:]

		if e.args == 0 {
			if rest != "" {
				return core.Label{}, fmt.Errorf("event %q: unexpected arguments", tok)
			}
			return core.Label{Op: e.op, M: m}, nil
		}
		if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
			return core.Label{}, fmt.Errorf("event %q: expected (...) arguments", tok)
		}
		parts := strings.Split(rest[1:len(rest)-1], ",")
		wantParts := e.args
		if e.args == 4 {
			wantParts = 2 // loc + count
		}
		if len(parts) != wantParts {
			return core.Label{}, fmt.Errorf("event %q: want %d arguments, got %d", tok, wantParts, len(parts))
		}
		loc, ok := locs[strings.TrimSpace(parts[0])]
		if !ok {
			return core.Label{}, fmt.Errorf("event %q: unknown location %q", tok, parts[0])
		}
		lbl := core.Label{Op: e.op, M: m, Loc: loc}
		parseVal := func(s string) (core.Val, error) {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("event %q: bad value %q", tok, s)
			}
			return core.Val(v), nil
		}
		var err error
		switch e.args {
		case 2:
			if lbl.Val, err = parseVal(parts[1]); err != nil {
				return core.Label{}, err
			}
		case 3:
			if lbl.Old, err = parseVal(parts[1]); err != nil {
				return core.Label{}, err
			}
			if lbl.New, err = parseVal(parts[2]); err != nil {
				return core.Label{}, err
			}
		case 4:
			// The count spans consecutively declared locations: script
			// locations get consecutive LocIDs in `locs:` order, so
			// RFlushRange1(x,2) flushes x and the location declared right
			// after it.
			n, perr := strconv.Atoi(strings.TrimSpace(parts[1]))
			if perr != nil || n < 1 {
				return core.Label{}, fmt.Errorf("event %q: bad range count %q", tok, parts[1])
			}
			if int(loc)+n > len(locs) {
				return core.Label{}, fmt.Errorf("event %q: range of %d runs past the declared locations", tok, n)
			}
			lbl.N = n
		}
		return lbl, nil
	}
	return core.Label{}, fmt.Errorf("unknown event %q", tok)
}
