package litmus

import (
	"cxl0/internal/core"
)

// Extended returns litmus tests beyond the paper's corpus: model-level
// encodings of the reproduction findings from EXPERIMENTS.md (counter
// rollback, vacuous flushes, poisoned in-flight stores) and additional
// sanity traces for GPF and RMW persistence. Expected verdicts were
// derived by hand from the Figure 2 semantics and are revalidated by the
// checker on every test run.
func Extended() []*Test {
	topo := core.NewTopology()
	m1 := topo.AddMachine("machine1", core.NonVolatile) // compute
	m2 := topo.AddMachine("machine2", core.NonVolatile) // compute
	m3 := topo.AddMachine("machine3", core.NonVolatile) // memory host
	x := topo.AddLoc("x", m3)
	c := topo.AddLoc("c", m3) // a FliT counter cell
	_ = m2

	base := func(ok bool) map[core.Variant]bool { return map[core.Variant]bool{core.Base: ok} }
	all3 := func(b, l, p bool) map[core.Variant]bool {
		return map[core.Variant]bool{core.Base: b, core.LWB: l, core.PSN: p}
	}

	return []*Test{
		{
			ID: 101, Topo: topo, Expected: base(true),
			Paper: "F2: LStore1(x,1); E3; RFlush1(x); Load1(x,0)",
			Note: "vacuous flush: eviction may park x in the owner's cache, the owner's " +
				"crash destroys it, and the later RFlush succeeds over the empty caches " +
				"— the store+flush pair is not crash-atomic",
			Trace: []core.Label{
				core.LStoreL(m1, x, 1), core.CrashL(m3), core.RFlushL(m1, x), core.LoadL(m1, x, 0),
			},
		},
		{
			ID: 102, Topo: topo, Expected: base(true),
			Paper: "F2': LStore1(x,1); E3; RFlush1(x); Load1(x,1)",
			Note: "…but the value may equally survive in the writer's cache, so both " +
				"outcomes of the crash window are reachable (hence the need for crash " +
				"detection or MStore)",
			Trace: []core.Label{
				core.LStoreL(m1, x, 1), core.CrashL(m3), core.RFlushL(m1, x), core.LoadL(m1, x, 1),
			},
		},
		{
			ID: 103, Topo: topo, Expected: base(false),
			Paper: "F2 repair: MStore1(x,1); E3; Load1(x,0)",
			Note:  "MStore closes the window: no crash placement can lose the value",
			Trace: []core.Label{core.MStoreL(m1, x, 1), core.CrashL(m3), core.LoadL(m1, x, 0)},
		},
		{
			ID: 104, Topo: topo, Expected: base(true),
			Paper: "F1: L-RMW1(c,0,1); LStore1(x,1); Load2(x,1); E1; Load2(c,0)",
			Note: "counter rollback: the cached counter increment dies with machine1 " +
				"while the data value, replicated by machine2's load, stays visible — " +
				"a reader can see new data with a zero counter",
			Trace: []core.Label{
				core.RMWL(core.OpLRMW, m1, c, 0, 1), core.LStoreL(m1, x, 1),
				core.LoadL(m2, x, 1), core.CrashL(m1), core.LoadL(m2, c, 0),
			},
		},
		{
			ID: 105, Topo: topo, Expected: base(false),
			Paper: "F1 repair: M-RMW1(c,0,1); LStore1(x,1); Load2(x,1); E1; Load2(c,0)",
			Note:  "a persistent (M-RMW) increment cannot roll back",
			Trace: []core.Label{
				core.RMWL(core.OpMRMW, m1, c, 0, 1), core.LStoreL(m1, x, 1),
				core.LoadL(m2, x, 1), core.CrashL(m1), core.LoadL(m2, c, 0),
			},
		},
		{
			ID: 106, Topo: topo, Expected: all3(true, false, false),
			Paper: "F3: LStore1(x,1); E3; Load2(x,1); E3; Load2(x,0)",
			Note: "consecutive owner crashes: only base CXL0 lets a value be observed " +
				"after the first crash and still die in the second — PSN poisons every " +
				"copy at the first crash (so observing 1 implies it persisted), and LWB " +
				"persists the value at the observing load",
			Trace: []core.Label{
				core.LStoreL(m1, x, 1), core.CrashL(m3), core.LoadL(m2, x, 1),
				core.CrashL(m3), core.LoadL(m2, x, 0),
			},
		},
		{
			ID: 107, Topo: topo, Expected: base(false),
			Paper: "GPF: LStore1(x,1); GPF1; E3; Load1(x,0)",
			Note:  "a global persistent flush before the crash forces persistence",
			Trace: []core.Label{
				core.LStoreL(m1, x, 1), core.GPFL(m1), core.CrashL(m3), core.LoadL(m1, x, 0),
			},
		},
		{
			ID: 108, Topo: topo, Expected: base(true),
			Paper: "RMW volatility: L-RMW1(x,0,1); E3; Load1(x,0)",
			Note:  "a cached RMW is as volatile as an LStore",
			Trace: []core.Label{
				core.RMWL(core.OpLRMW, m1, x, 0, 1), core.CrashL(m3), core.LoadL(m1, x, 0),
			},
		},
		{
			ID: 109, Topo: topo, Expected: base(false),
			Paper: "RMW persistence: M-RMW1(x,0,1); E3; Load1(x,0)",
			Note:  "an M-RMW is crash-atomic",
			Trace: []core.Label{
				core.RMWL(core.OpMRMW, m1, x, 0, 1), core.CrashL(m3), core.LoadL(m1, x, 0),
			},
		},
		{
			ID: 110, Topo: topo, Expected: all3(true, false, true),
			Paper: "LWB persists what it shows: LStore1(x,1); Load2(x,1); E1; E3; Load2(x,0)",
			Note: "under LWB machine2's load forces a write-back, so the value is " +
				"persistent the moment anyone else sees it; Base allows the loss via " +
				"eviction into machine3's dying cache, and PSN allows it too — the " +
				"poisoning at E3 destroys machine2's replicated copy outright",
			Trace: []core.Label{
				core.LStoreL(m1, x, 1), core.LoadL(m2, x, 1),
				core.CrashL(m1), core.CrashL(m3), core.LoadL(m2, x, 0),
			},
		},
	}
}
