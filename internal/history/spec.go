package history

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cxl0/internal/core"
)

// Spec is a sequential specification over string-encoded abstract states.
type Spec interface {
	// Name identifies the spec in messages.
	Name() string
	// Init returns the encoded initial state.
	Init() string
	// Step returns the successor states of applying op to state. For a
	// completed op the recorded outputs must match (no successors when
	// they cannot); for a pending op the outputs are unconstrained, so all
	// possible effects are returned.
	Step(state string, op Operation) []string
}

// --- value-list encoding helpers ---

func encodeVals(vs []core.Val) string {
	if len(vs) == 0 {
		return ""
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatInt(int64(v), 10)
	}
	return strings.Join(parts, ",")
}

func decodeVals(s string) []core.Val {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]core.Val, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			panic("history: corrupt state " + s)
		}
		out[i] = core.Val(n)
	}
	return out
}

// QueueSpec is a FIFO queue with operations "enq" (Arg) and "deq"
// (Ret, RetOK=false for empty).
type QueueSpec struct{}

func (QueueSpec) Name() string { return "queue" }
func (QueueSpec) Init() string { return "" }

func (QueueSpec) Step(state string, op Operation) []string {
	q := decodeVals(state)
	switch op.Kind {
	case "enq":
		return []string{encodeVals(append(append([]core.Val{}, q...), op.Arg))}
	case "deq":
		if op.Pending {
			out := []string{state} // observed empty, or took no effect worth distinguishing
			if len(q) > 0 {
				out = append(out, encodeVals(q[1:]))
			}
			return out
		}
		if !op.RetOK {
			if len(q) == 0 {
				return []string{state}
			}
			return nil
		}
		if len(q) > 0 && q[0] == op.Ret {
			return []string{encodeVals(q[1:])}
		}
		return nil
	}
	return nil
}

// StackSpec is a LIFO stack with operations "push" (Arg) and "pop"
// (Ret, RetOK=false for empty).
type StackSpec struct{}

func (StackSpec) Name() string { return "stack" }
func (StackSpec) Init() string { return "" }

func (StackSpec) Step(state string, op Operation) []string {
	s := decodeVals(state)
	switch op.Kind {
	case "push":
		return []string{encodeVals(append(append([]core.Val{}, s...), op.Arg))}
	case "pop":
		if op.Pending {
			out := []string{state}
			if len(s) > 0 {
				out = append(out, encodeVals(s[:len(s)-1]))
			}
			return out
		}
		if !op.RetOK {
			if len(s) == 0 {
				return []string{state}
			}
			return nil
		}
		if len(s) > 0 && s[len(s)-1] == op.Ret {
			return []string{encodeVals(s[:len(s)-1])}
		}
		return nil
	}
	return nil
}

// RegisterSpec is an atomic register with "read" (Ret), "write" (Arg) and
// "cas" (Arg=old, Arg2=new, RetOK=success).
type RegisterSpec struct{}

func (RegisterSpec) Name() string { return "register" }
func (RegisterSpec) Init() string { return "0" }

func (RegisterSpec) Step(state string, op Operation) []string {
	cur := decodeVals(state)[0]
	switch op.Kind {
	case "read":
		if op.Pending {
			return []string{state}
		}
		if op.Ret == cur {
			return []string{state}
		}
		return nil
	case "write":
		return []string{encodeVals([]core.Val{op.Arg})}
	case "cas":
		if op.Pending {
			if cur == op.Arg {
				return []string{encodeVals([]core.Val{op.Arg2}), state}
			}
			return []string{state}
		}
		if op.RetOK {
			if cur == op.Arg {
				return []string{encodeVals([]core.Val{op.Arg2})}
			}
			return nil
		}
		if cur != op.Arg {
			return []string{state}
		}
		return nil
	}
	return nil
}

// CounterSpec is a fetch-and-add counter with "add" (Arg=delta, Ret=prev)
// and "get" (Ret).
type CounterSpec struct{}

func (CounterSpec) Name() string { return "counter" }
func (CounterSpec) Init() string { return "0" }

func (CounterSpec) Step(state string, op Operation) []string {
	cur := decodeVals(state)[0]
	switch op.Kind {
	case "add":
		next := encodeVals([]core.Val{cur + op.Arg})
		if op.Pending {
			return []string{next}
		}
		if op.Ret == cur {
			return []string{next}
		}
		return nil
	case "get":
		if op.Pending || op.Ret == cur {
			return []string{state}
		}
		return nil
	}
	return nil
}

// SetSpec is a set of values with "ins", "rem" (Arg, RetOK=changed) and
// "has" (Arg, RetOK=member).
type SetSpec struct{}

func (SetSpec) Name() string { return "set" }
func (SetSpec) Init() string { return "" }

func setEncode(m map[core.Val]bool) string {
	keys := make([]core.Val, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return encodeVals(keys)
}

func setDecode(s string) map[core.Val]bool {
	m := map[core.Val]bool{}
	for _, v := range decodeVals(s) {
		m[v] = true
	}
	return m
}

func (SetSpec) Step(state string, op Operation) []string {
	m := setDecode(state)
	member := m[op.Arg]
	switch op.Kind {
	case "ins":
		with := setDecode(state)
		with[op.Arg] = true
		if op.Pending {
			return []string{setEncode(with)}
		}
		if op.RetOK != !member {
			return nil
		}
		return []string{setEncode(with)}
	case "rem":
		without := setDecode(state)
		delete(without, op.Arg)
		if op.Pending {
			return []string{setEncode(without)}
		}
		if op.RetOK != member {
			return nil
		}
		return []string{setEncode(without)}
	case "has":
		if op.Pending || op.RetOK == member {
			return []string{state}
		}
		return nil
	}
	return nil
}

// MapSpec is a key-value map with "put" (Arg=key, Arg2=value), "get"
// (Arg=key, Ret=value, RetOK=found) and "del" (Arg=key, RetOK=existed).
type MapSpec struct{}

func (MapSpec) Name() string { return "map" }
func (MapSpec) Init() string { return "" }

func mapEncode(m map[core.Val]core.Val) string {
	keys := make([]core.Val, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d:%d", k, m[k])
	}
	return strings.Join(parts, ";")
}

func mapDecode(s string) map[core.Val]core.Val {
	m := map[core.Val]core.Val{}
	if s == "" {
		return m
	}
	for _, part := range strings.Split(s, ";") {
		var k, v int64
		if _, err := fmt.Sscanf(part, "%d:%d", &k, &v); err != nil {
			panic("history: corrupt map state " + s)
		}
		m[core.Val(k)] = core.Val(v)
	}
	return m
}

func (MapSpec) Step(state string, op Operation) []string {
	m := mapDecode(state)
	cur, found := m[op.Arg]
	switch op.Kind {
	case "put":
		with := mapDecode(state)
		with[op.Arg] = op.Arg2
		return []string{mapEncode(with)}
	case "get":
		if op.Pending {
			return []string{state}
		}
		if op.RetOK {
			if found && cur == op.Ret {
				return []string{state}
			}
			return nil
		}
		if !found {
			return []string{state}
		}
		return nil
	case "del":
		without := mapDecode(state)
		delete(without, op.Arg)
		if op.Pending {
			return []string{mapEncode(without)}
		}
		if op.RetOK != found {
			return nil
		}
		return []string{mapEncode(without)}
	}
	return nil
}
