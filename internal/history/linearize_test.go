package history

import (
	"math"
	"testing"

	"cxl0/internal/core"
)

// op builds a completed operation.
func op(client int, kind string, arg, ret core.Val, retOK bool, inv, ret2 uint64) Operation {
	return Operation{Client: client, Kind: kind, Arg: arg, Ret: ret, RetOK: retOK, Invoke: inv, Return: ret2}
}

// pend builds a pending operation.
func pend(client int, kind string, arg core.Val, inv uint64) Operation {
	return Operation{Client: client, Kind: kind, Arg: arg, Invoke: inv, Return: math.MaxUint64, Pending: true}
}

func TestQueueLinearizableBasic(t *testing.T) {
	// c0: enq(1) [1,2]; c1: deq->1 [3,4]
	h := History{Ops: []Operation{
		op(0, "enq", 1, 0, false, 1, 2),
		op(1, "deq", 0, 1, true, 3, 4),
	}}
	if !Linearizable(h, QueueSpec{}) {
		t.Errorf("sequential enq/deq rejected")
	}
}

func TestQueueDequeueBeforeEnqueueRejected(t *testing.T) {
	// deq->1 strictly precedes enq(1): impossible.
	h := History{Ops: []Operation{
		op(0, "deq", 0, 1, true, 1, 2),
		op(1, "enq", 1, 0, false, 3, 4),
	}}
	if Linearizable(h, QueueSpec{}) {
		t.Errorf("deq before enq accepted")
	}
}

func TestQueueConcurrentOverlapAccepted(t *testing.T) {
	// enq(1) [1,10] overlaps deq->1 [2,9]: fine, enq linearizes first.
	h := History{Ops: []Operation{
		op(0, "enq", 1, 0, false, 1, 10),
		op(1, "deq", 0, 1, true, 2, 9),
	}}
	if !Linearizable(h, QueueSpec{}) {
		t.Errorf("overlapping enq/deq rejected")
	}
}

func TestQueueFIFOOrderEnforced(t *testing.T) {
	// enq(1) before enq(2) (both complete, sequential), then deq->2 first:
	// violates FIFO.
	h := History{Ops: []Operation{
		op(0, "enq", 1, 0, false, 1, 2),
		op(0, "enq", 2, 0, false, 3, 4),
		op(1, "deq", 0, 2, true, 5, 6),
		op(1, "deq", 0, 1, true, 7, 8),
	}}
	if Linearizable(h, QueueSpec{}) {
		t.Errorf("FIFO violation accepted")
	}
}

func TestQueueEmptyDequeue(t *testing.T) {
	h := History{Ops: []Operation{
		op(0, "enq", 1, 0, false, 1, 2),
		op(1, "deq", 0, 1, true, 3, 4),
		op(1, "deq", 0, 0, false, 5, 6), // empty
	}}
	if !Linearizable(h, QueueSpec{}) {
		t.Errorf("legal empty dequeue rejected")
	}
	bad := History{Ops: []Operation{
		op(0, "enq", 1, 0, false, 1, 2),
		op(1, "deq", 0, 0, false, 3, 4), // claims empty while 1 is enqueued
		op(1, "deq", 0, 1, true, 5, 6),
	}}
	if Linearizable(bad, QueueSpec{}) {
		t.Errorf("empty dequeue on non-empty queue accepted")
	}
}

func TestPendingEnqueueMayBeDroppedOrKept(t *testing.T) {
	// A pending enq(5) followed (post-crash) by deq->empty: fine (dropped).
	h := History{Ops: []Operation{
		pend(0, "enq", 5, 1),
		op(1, "deq", 0, 0, false, 10, 11),
	}}
	if !Linearizable(h, QueueSpec{}) {
		t.Errorf("droppable pending enq rejected")
	}
	// A pending enq(5) whose value IS observed: also fine (kept).
	h2 := History{Ops: []Operation{
		pend(0, "enq", 5, 1),
		op(1, "deq", 0, 5, true, 10, 11),
	}}
	if !Linearizable(h2, QueueSpec{}) {
		t.Errorf("kept pending enq rejected")
	}
}

func TestCompletedEnqueueMustSurvive(t *testing.T) {
	// The durable-linearizability core case: enq(5) completed before the
	// crash, but a full post-crash drain never sees it.
	h := History{Ops: []Operation{
		op(0, "enq", 5, 0, false, 1, 2),
		op(1, "deq", 0, 0, false, 10, 11), // drain: empty immediately
	}}
	if Linearizable(h, QueueSpec{}) {
		t.Errorf("lost completed enqueue accepted — durable linearizability broken")
	}
}

func TestRegisterSpec(t *testing.T) {
	good := History{Ops: []Operation{
		op(0, "write", 3, 0, false, 1, 2),
		op(1, "read", 0, 3, false, 3, 4),
		{Client: 1, Kind: "cas", Arg: 3, Arg2: 7, RetOK: true, Invoke: 5, Return: 6},
		op(1, "read", 0, 7, false, 7, 8),
	}}
	if !Linearizable(good, RegisterSpec{}) {
		t.Errorf("legal register history rejected")
	}
	bad := History{Ops: []Operation{
		op(0, "write", 3, 0, false, 1, 2),
		op(1, "read", 0, 0, false, 3, 4), // lost write
	}}
	if Linearizable(bad, RegisterSpec{}) {
		t.Errorf("lost register write accepted")
	}
}

func TestCounterSpec(t *testing.T) {
	good := History{Ops: []Operation{
		op(0, "add", 1, 0, false, 1, 10), // concurrent
		op(1, "add", 1, 1, false, 2, 9),
		op(0, "get", 0, 2, false, 11, 12),
	}}
	if !Linearizable(good, CounterSpec{}) {
		t.Errorf("legal counter history rejected")
	}
	bad := History{Ops: []Operation{
		op(0, "add", 1, 0, false, 1, 2),
		op(1, "add", 1, 0, false, 3, 4), // both claim prev=0 sequentially
	}}
	if Linearizable(bad, CounterSpec{}) {
		t.Errorf("duplicate fetch-add result accepted")
	}
}

func TestStackSpec(t *testing.T) {
	good := History{Ops: []Operation{
		op(0, "push", 1, 0, false, 1, 2),
		op(0, "push", 2, 0, false, 3, 4),
		op(1, "pop", 0, 2, true, 5, 6),
		op(1, "pop", 0, 1, true, 7, 8),
	}}
	if !Linearizable(good, StackSpec{}) {
		t.Errorf("legal LIFO history rejected")
	}
	bad := History{Ops: []Operation{
		op(0, "push", 1, 0, false, 1, 2),
		op(0, "push", 2, 0, false, 3, 4),
		op(1, "pop", 0, 1, true, 5, 6), // FIFO order from a stack
		op(1, "pop", 0, 2, true, 7, 8),
	}}
	if Linearizable(bad, StackSpec{}) {
		t.Errorf("LIFO violation accepted")
	}
}

func TestSetSpec(t *testing.T) {
	good := History{Ops: []Operation{
		op(0, "ins", 5, 0, true, 1, 2),
		op(1, "ins", 5, 0, false, 3, 4), // duplicate
		op(1, "has", 5, 0, true, 5, 6),
		op(0, "rem", 5, 0, true, 7, 8),
		op(1, "has", 5, 0, false, 9, 10),
	}}
	if !Linearizable(good, SetSpec{}) {
		t.Errorf("legal set history rejected")
	}
	bad := History{Ops: []Operation{
		op(0, "ins", 5, 0, true, 1, 2),
		op(1, "has", 5, 0, false, 3, 4), // completed insert invisible
		op(1, "has", 5, 0, true, 5, 6),
	}}
	if Linearizable(bad, SetSpec{}) {
		t.Errorf("temporarily lost insert accepted")
	}
}

func TestMapSpec(t *testing.T) {
	good := History{Ops: []Operation{
		{Client: 0, Kind: "put", Arg: 1, Arg2: 10, Invoke: 1, Return: 2},
		{Client: 1, Kind: "get", Arg: 1, Ret: 10, RetOK: true, Invoke: 3, Return: 4},
		{Client: 0, Kind: "put", Arg: 1, Arg2: 20, Invoke: 5, Return: 6},
		{Client: 1, Kind: "del", Arg: 1, RetOK: true, Invoke: 7, Return: 8},
		{Client: 1, Kind: "get", Arg: 1, RetOK: false, Invoke: 9, Return: 10},
	}}
	if !Linearizable(good, MapSpec{}) {
		t.Errorf("legal map history rejected")
	}
	bad := History{Ops: []Operation{
		{Client: 0, Kind: "put", Arg: 1, Arg2: 10, Invoke: 1, Return: 2},
		{Client: 1, Kind: "get", Arg: 1, Ret: 99, RetOK: true, Invoke: 3, Return: 4},
	}}
	if Linearizable(bad, MapSpec{}) {
		t.Errorf("phantom map value accepted")
	}
}

func TestCheckWitnessValid(t *testing.T) {
	h := History{Ops: []Operation{
		op(0, "enq", 1, 0, false, 1, 10),
		op(1, "deq", 0, 1, true, 2, 9),
		op(0, "enq", 2, 0, false, 11, 12),
	}}
	ok, witness := Check(h, QueueSpec{})
	if !ok {
		t.Fatalf("history rejected")
	}
	if len(witness) != 3 {
		t.Fatalf("witness has %d ops, want 3", len(witness))
	}
	// Replay the witness through the spec sequentially.
	state := QueueSpec{}.Init()
	for _, w := range witness {
		next := QueueSpec{}.Step(state, w)
		if len(next) == 0 {
			t.Fatalf("witness not replayable at %v (state %q)", w, state)
		}
		state = next[0]
	}
}

func TestWellFormed(t *testing.T) {
	good := History{Ops: []Operation{
		op(0, "enq", 1, 0, false, 1, 2),
		op(0, "enq", 2, 0, false, 3, 4),
		pend(0, "enq", 3, 5),
	}}
	if err := good.WellFormed(); err != nil {
		t.Errorf("well-formed history rejected: %v", err)
	}
	overlap := History{Ops: []Operation{
		op(0, "enq", 1, 0, false, 1, 5),
		op(0, "enq", 2, 0, false, 3, 7),
	}}
	if err := overlap.WellFormed(); err == nil {
		t.Errorf("overlapping same-client ops accepted")
	}
	afterPending := History{Ops: []Operation{
		pend(0, "enq", 1, 1),
		op(0, "enq", 2, 0, false, 3, 4),
	}}
	if err := afterPending.WellFormed(); err == nil {
		t.Errorf("op after pending op accepted")
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	tok := r.Begin(0, "enq", 5, 0, 1)
	r.End(tok, 0, false, 2)
	tok2 := r.Begin(1, "deq", 0, 0, 3)
	_ = tok2 // never ends: pending
	tok3 := r.Begin(2, "enq", 9, 0, 4)
	r.Abort(tok3)
	h := r.History()
	if len(h.Ops) != 2 {
		t.Fatalf("history has %d ops, want 2", len(h.Ops))
	}
	if h.Ops[0].Pending || !h.Ops[1].Pending {
		t.Errorf("pending flags wrong: %v", h.Ops)
	}
	if err := h.WellFormed(); err != nil {
		t.Errorf("recorder produced ill-formed history: %v", err)
	}
}
