package history

import "fmt"

// Partitioned checking exploits the locality of (durable) linearizability
// the paper leans on in §6: a history over independent sub-objects is
// linearizable iff each sub-object's projection is. For keyed structures
// (maps, sets) every operation touches exactly one key, so the history
// splits by key and each piece is checked separately — turning the
// checker's exponential blow-up in history size into a sum of small
// problems.

// PartitionFunc maps an operation to the sub-object it touches.
type PartitionFunc func(Operation) string

// ByKey partitions keyed operations (map and set histories) by Arg.
func ByKey(op Operation) string { return fmt.Sprintf("k%d", op.Arg) }

// LinearizablePartitioned reports whether every per-partition projection of
// h is linearizable against spec. It is sound and complete when operations
// in different partitions are independent (commute on the abstract state),
// as map and set operations on distinct keys are.
func LinearizablePartitioned(h History, partition PartitionFunc, spec Spec) bool {
	ok, _ := CheckPartitioned(h, partition, spec)
	return ok
}

// CheckPartitioned is LinearizablePartitioned with the name of the first
// failing partition.
func CheckPartitioned(h History, partition PartitionFunc, spec Spec) (bool, string) {
	parts := map[string][]Operation{}
	for _, op := range h.Ops {
		key := partition(op)
		parts[key] = append(parts[key], op)
	}
	for key, ops := range parts {
		if !Linearizable(History{Ops: ops}, spec) {
			return false, key
		}
	}
	return true, ""
}
