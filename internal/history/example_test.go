package history_test

import (
	"fmt"
	"math"

	"cxl0/internal/history"
)

// ExampleLinearizable checks the core durable-linearizability scenario: an
// acknowledged enqueue must be observed after a crash, while one that was
// still pending may vanish.
func ExampleLinearizable() {
	completed := history.History{Ops: []history.Operation{
		{Client: 0, Kind: "enq", Arg: 5, Invoke: 1, Return: 2},
		// ...crash and recovery here...
		{Client: 1, Kind: "deq", RetOK: false, Invoke: 10, Return: 11}, // empty!
	}}
	pending := history.History{Ops: []history.Operation{
		{Client: 0, Kind: "enq", Arg: 5, Invoke: 1, Return: math.MaxUint64, Pending: true},
		{Client: 1, Kind: "deq", RetOK: false, Invoke: 10, Return: 11},
	}}

	fmt.Println("completed enqueue may be lost:", history.Linearizable(completed, history.QueueSpec{}))
	fmt.Println("pending enqueue may be lost:  ", history.Linearizable(pending, history.QueueSpec{}))

	// Output:
	// completed enqueue may be lost: false
	// pending enqueue may be lost:   true
}
