package history

import (
	"fmt"
	"sort"
)

// maxCheckableOps bounds history size for the bitmask-based checker.
const maxCheckableOps = 62

// Linearizable reports whether the history has a linearization consistent
// with spec. Completed operations must all take effect with their recorded
// results, respecting real-time order; pending operations may take effect
// (with any legal result) or be dropped.
//
// Calling this on a history that spans crashes — with the operations cut
// short by each crash left pending — is exactly the durable-linearizability
// check of §6: durable linearizability requires the history to be
// linearizable after crash events are removed.
func Linearizable(h History, spec Spec) bool {
	ok, _ := Check(h, spec)
	return ok
}

// Check is Linearizable with an explanation: on success the witness is a
// valid linearization order (indices into a stably-sorted op list); on
// failure it is nil.
func Check(h History, spec Spec) (bool, []Operation) {
	ops := append([]Operation(nil), h.Ops...)
	if len(ops) > maxCheckableOps {
		panic(fmt.Sprintf("history: %d operations exceed checker capacity %d", len(ops), maxCheckableOps))
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	var completeMask uint64
	for i, op := range ops {
		if !op.Pending {
			completeMask |= 1 << uint(i)
		}
	}

	type key struct {
		mask  uint64
		state string
	}
	failed := map[key]bool{}
	var witness []Operation

	var dfs func(mask uint64, state string) bool
	dfs = func(mask uint64, state string) bool {
		if mask&completeMask == completeMask {
			return true
		}
		k := key{mask, state}
		if failed[k] {
			return false
		}
		for i, op := range ops {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 {
				continue
			}
			// Minimality: op may linearize next only if no unlinearized
			// completed operation finished before op was invoked.
			blocked := false
			for j, p := range ops {
				if mask&(1<<uint(j)) != 0 || p.Pending || j == i {
					continue
				}
				if p.Return < op.Invoke {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			for _, next := range spec.Step(state, op) {
				if dfs(mask|bit, next) {
					witness = append(witness, op)
					return true
				}
			}
		}
		failed[k] = true
		return false
	}

	if !dfs(0, spec.Init()) {
		return false, nil
	}
	// The witness was collected in reverse (unwinding the recursion).
	for i, j := 0, len(witness)-1; i < j; i, j = i+1, j-1 {
		witness[i], witness[j] = witness[j], witness[i]
	}
	return true, witness
}
