package history

import (
	"math/rand"
	"testing"

	"cxl0/internal/core"
)

// TestPartitionedAgreesWithFull compares the partitioned checker with the
// full checker on randomized small map histories (both legal and illegal).
func TestPartitionedAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 300; iter++ {
		h := randomMapHistory(rng, 10, 3)
		full := Linearizable(h, MapSpec{})
		part := LinearizablePartitioned(h, ByKey, MapSpec{})
		if full != part {
			t.Fatalf("iter %d: full=%v partitioned=%v for %v", iter, full, part, h.Ops)
		}
	}
}

// TestPartitionedScales checks a history far beyond the flat checker's
// 62-op capacity.
func TestPartitionedScales(t *testing.T) {
	var h History
	stamp := uint64(1)
	// 50 keys × (put, get, del, get) = 200 sequential ops, all legal.
	for k := core.Val(1); k <= 50; k++ {
		add := func(kind string, arg2, ret core.Val, retOK bool) {
			h.Ops = append(h.Ops, Operation{
				Client: 0, Kind: kind, Arg: k, Arg2: arg2, Ret: ret, RetOK: retOK,
				Invoke: stamp, Return: stamp + 1,
			})
			stamp += 2
		}
		add("put", k*10, 0, false)
		add("get", 0, k*10, true)
		add("del", 0, 0, true)
		add("get", 0, 0, false)
	}
	if !LinearizablePartitioned(h, ByKey, MapSpec{}) {
		t.Fatal("legal 200-op history rejected")
	}
	// Corrupt one key's projection.
	h.Ops[1].Ret = 999
	ok, key := CheckPartitioned(h, ByKey, MapSpec{})
	if ok {
		t.Fatal("corrupted history accepted")
	}
	if key != "k1" {
		t.Errorf("failing partition = %q, want k1", key)
	}
}

// randomMapHistory generates a history of concurrent map operations whose
// results come from a sequential oracle run in a random linearization
// order, occasionally corrupted to produce illegal histories.
func randomMapHistory(rng *rand.Rand, n, keys int) History {
	type pendingOp struct {
		op  Operation
		idx int
	}
	var h History
	state := map[core.Val]core.Val{}
	stamp := uint64(1)
	var pending []pendingOp

	flush := func() {
		// Linearize pending ops in random order; assign results.
		rng.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
		for _, p := range pending {
			op := &h.Ops[p.idx]
			switch op.Kind {
			case "put":
				state[op.Arg] = op.Arg2
			case "get":
				v, ok := state[op.Arg]
				op.Ret, op.RetOK = v, ok
			case "del":
				_, ok := state[op.Arg]
				op.RetOK = ok
				delete(state, op.Arg)
			}
			op.Return = stamp
			stamp++
		}
		pending = nil
	}

	for i := 0; i < n; i++ {
		k := core.Val(1 + rng.Intn(keys))
		op := Operation{Client: i, Invoke: stamp}
		stamp++
		switch rng.Intn(3) {
		case 0:
			op.Kind, op.Arg, op.Arg2 = "put", k, core.Val(1+rng.Intn(5))
		case 1:
			op.Kind, op.Arg = "get", k
		default:
			op.Kind, op.Arg = "del", k
		}
		h.Ops = append(h.Ops, op)
		pending = append(pending, pendingOp{op, len(h.Ops) - 1})
		if rng.Intn(2) == 0 {
			flush()
		}
	}
	flush()

	// A third of histories get corrupted.
	if rng.Intn(3) == 0 && len(h.Ops) > 0 {
		i := rng.Intn(len(h.Ops))
		switch h.Ops[i].Kind {
		case "get":
			h.Ops[i].Ret += 100
			h.Ops[i].RetOK = true
		case "del", "put":
			h.Ops[i].Kind = "get"
			h.Ops[i].Ret = 12345
			h.Ops[i].RetOK = true
		}
	}
	return h
}
