package history

import (
	"strings"
	"testing"
)

func TestTimelineRendersAllClientsAndOps(t *testing.T) {
	h := History{Ops: []Operation{
		op(0, "enq", 1, 0, true, 1, 4),
		op(1, "deq", 0, 1, true, 2, 6),
		pend(0, "enq", 7, 8),
	}}
	out := Timeline(h)
	t.Logf("\n%s", out)
	if !strings.Contains(out, "c0") || !strings.Contains(out, "c1") {
		t.Errorf("missing client rows:\n%s", out)
	}
	for _, frag := range []string{"enq(1)", "deq", "enq(7)=>?"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("want one row per client, got %d rows", len(lines))
	}
}

func TestTimelineEmpty(t *testing.T) {
	if out := Timeline(History{}); !strings.Contains(out, "empty") {
		t.Errorf("empty history rendering: %q", out)
	}
}

func TestTimelineOverlapVisible(t *testing.T) {
	// Two overlapping ops by different clients must start at different
	// columns reflecting their stamps.
	h := History{Ops: []Operation{
		op(0, "write", 5, 0, true, 1, 10),
		op(1, "read", 0, 5, true, 3, 8),
	}}
	out := Timeline(h)
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	w := strings.Index(rows[0], "|write")
	r := strings.Index(rows[1], "|read")
	if w < 0 || r < 0 || r <= w {
		t.Errorf("overlap not reflected (write at %d, read at %d):\n%s", w, r, out)
	}
}
