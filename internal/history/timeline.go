package history

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline renders a history as an ASCII per-client Gantt chart, for
// debugging failed linearizability checks. Each row is a client; each
// operation spans its invocation-to-response interval on a common stamp
// axis; pending operations run to the right edge.
//
//	c0 |--enq(1)=>ok--|        |--deq=>2--|
//	c1      |--enq(2)=>ok--|
//
// The axis is compressed: only stamps that begin or end an operation are
// columns.
func Timeline(h History) string {
	if len(h.Ops) == 0 {
		return "(empty history)\n"
	}
	// Collect clients and the stamp axis.
	clientSet := map[int]bool{}
	stampSet := map[uint64]bool{}
	var maxStamp uint64
	for _, op := range h.Ops {
		clientSet[op.Client] = true
		stampSet[op.Invoke] = true
		if !op.Pending {
			stampSet[op.Return] = true
			if op.Return > maxStamp {
				maxStamp = op.Return
			}
		}
		if op.Invoke > maxStamp {
			maxStamp = op.Invoke
		}
	}
	clients := make([]int, 0, len(clientSet))
	for c := range clientSet {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	stamps := make([]uint64, 0, len(stampSet))
	for s := range stampSet {
		stamps = append(stamps, s)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
	col := map[uint64]int{}
	for i, s := range stamps {
		col[s] = i
	}

	label := func(op Operation) string {
		out := op.Kind
		if op.Arg != 0 || op.Kind == "put" || op.Kind == "write" || op.Kind == "enq" || op.Kind == "push" {
			out += fmt.Sprintf("(%d", op.Arg)
			if op.Arg2 != 0 {
				out += fmt.Sprintf(",%d", op.Arg2)
			}
			out += ")"
		}
		if op.Pending {
			return out + "=>?"
		}
		if op.RetOK {
			return out + fmt.Sprintf("=>%d", op.Ret)
		}
		return out + "=>⊥"
	}

	// Column widths: wide enough for any label starting there.
	colWidth := make([]int, len(stamps))
	for i := range colWidth {
		colWidth[i] = 2
	}
	for _, op := range h.Ops {
		c := col[op.Invoke]
		if w := len(label(op)) + 4; w > colWidth[c] {
			colWidth[c] = w
		}
	}
	colStart := make([]int, len(stamps)+1)
	for i, w := range colWidth {
		colStart[i+1] = colStart[i] + w
	}

	var sb strings.Builder
	for _, client := range clients {
		row := []rune(strings.Repeat(" ", colStart[len(stamps)]+8))
		for _, op := range h.Ops {
			if op.Client != client {
				continue
			}
			start := colStart[col[op.Invoke]]
			end := colStart[len(stamps)] + 4
			if !op.Pending {
				end = colStart[col[op.Return]]
			}
			if end <= start {
				end = start + 1
			}
			text := "|" + label(op)
			for i := start; i < end && i < len(row); i++ {
				row[i] = '-'
			}
			copy(row[start:], []rune(text))
			if end < len(row) {
				row[end] = '|'
			}
		}
		fmt.Fprintf(&sb, "c%-3d %s\n", client, strings.TrimRight(string(row), " "))
	}
	return sb.String()
}
