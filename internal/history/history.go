// Package history records concurrent operation histories with crash events
// and checks them for linearizability and durable linearizability, the
// correctness criterion of the paper's §6 (Izraelevitz et al.'s notion,
// applied unchanged to CXL0's partial-crash model).
//
// A history is durably linearizable when, after removing crash events, it
// is linearizable: every operation that completed (returned) must take
// effect, while operations pending at a crash may take effect or be
// dropped. The checker is a Wing–Gong-style exhaustive search with
// memoization on (linearized-set, abstract-state) pairs.
package history

import (
	"fmt"
	"math"
	"sync"

	"cxl0/internal/core"
)

// Operation is one recorded high-level operation.
type Operation struct {
	// Client identifies the sequential actor that issued the operation.
	Client int
	// Kind names the operation ("enq", "deq", "push", "pop", "read",
	// "write", "cas", "add", "ins", "rem", "has", "put", "get", "del").
	Kind string
	// Arg and Arg2 are the inputs (value; key/value for map put; old/new
	// for cas).
	Arg, Arg2 core.Val
	// Ret and RetOK are the outputs; meaningless while Pending.
	Ret   core.Val
	RetOK bool
	// Invoke and Return are monotonic event stamps. Return is
	// math.MaxUint64 while the operation is pending.
	Invoke, Return uint64
	// Pending marks an operation with no response (its client crashed
	// mid-operation, or the run was cut short).
	Pending bool
}

func (o Operation) String() string {
	if o.Pending {
		return fmt.Sprintf("c%d:%s(%d,%d)?", o.Client, o.Kind, o.Arg, o.Arg2)
	}
	return fmt.Sprintf("c%d:%s(%d,%d)=>(%d,%v)", o.Client, o.Kind, o.Arg, o.Arg2, o.Ret, o.RetOK)
}

// History is a set of recorded operations.
type History struct {
	Ops []Operation
}

// Recorder builds a history from concurrent clients. It is safe for
// concurrent use. Stamps must come from a single monotonic source (e.g.
// memsim.Cluster.Stamp).
type Recorder struct {
	mu  sync.Mutex
	ops []Operation
}

// Begin records an invocation and returns a token for End.
func (r *Recorder) Begin(client int, kind string, arg, arg2 core.Val, stamp uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, Operation{
		Client: client, Kind: kind, Arg: arg, Arg2: arg2,
		Invoke: stamp, Return: math.MaxUint64, Pending: true,
	})
	return len(r.ops) - 1
}

// End records the response for a previously begun operation.
func (r *Recorder) End(token int, ret core.Val, retOK bool, stamp uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := &r.ops[token]
	op.Ret, op.RetOK, op.Return, op.Pending = ret, retOK, stamp, false
}

// Abort removes a begun operation that never took effect on shared memory
// (e.g. it failed before its first shared access). Operations cut short by
// a crash should NOT be aborted — leave them pending.
func (r *Recorder) Abort(token int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[token].Kind = ""
}

// History returns the recorded history, dropping aborted entries.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ops []Operation
	for _, op := range r.ops {
		if op.Kind != "" {
			ops = append(ops, op)
		}
	}
	return History{Ops: ops}
}

// WellFormed checks that each client's operations are sequential: no client
// has two overlapping operations, and at most one pending operation (its
// last).
func (h History) WellFormed() error {
	lastReturn := map[int]uint64{}
	pending := map[int]bool{}
	for _, op := range h.Ops {
		if pending[op.Client] {
			return fmt.Errorf("history: client %d has operations after a pending one", op.Client)
		}
		if op.Invoke <= lastReturn[op.Client] {
			return fmt.Errorf("history: client %d operations overlap (%v)", op.Client, op)
		}
		if op.Pending {
			pending[op.Client] = true
			continue
		}
		if op.Return <= op.Invoke {
			return fmt.Errorf("history: operation returns before invocation (%v)", op)
		}
		lastReturn[op.Client] = op.Return
	}
	return nil
}
