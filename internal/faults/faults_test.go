package faults_test

import (
	"errors"
	"reflect"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/faults"
	"cxl0/internal/kv"
	"cxl0/internal/obs"
)

func open(t *testing.T, shards int) *kv.Store {
	t.Helper()
	st, err := kv.Open(kv.Config{Shards: shards, Strategy: kv.GroupCommit, Batch: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// tolerate is the workload loop's stance: a fault-window denial is
// expected, anything else is a test failure.
func tolerate(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	var partial *kv.PartialResultError
	if errors.As(err, &partial) || errors.Is(err, kv.ErrUnavailable) || errors.Is(err, kv.ErrShardDown) {
		return
	}
	t.Fatalf("unexpected op error: %v", err)
}

func TestForClassShapes(t *testing.T) {
	for _, class := range []string{"none", "uniform", "correlated", "degraded", "partitioned"} {
		c, err := faults.ForClass(class, 400, 4, 100)
		if err != nil {
			t.Fatalf("ForClass(%s): %v", class, err)
		}
		if c.Name != class {
			t.Fatalf("ForClass(%s) named %q", class, c.Name)
		}
		if class == "none" {
			if len(c.Events) != 0 {
				t.Fatalf("none campaign has %d events", len(c.Events))
			}
			continue
		}
		// Windows at 100, 200, 300: two events each (inject + restore).
		if len(c.Events) != 6 {
			t.Fatalf("%s campaign has %d events, want 6", class, len(c.Events))
		}
	}
	if _, err := faults.ForClass("meteor", 400, 4, 100); err == nil {
		t.Fatal("unknown class accepted")
	}
	// Blast clamps to the shard count on tiny fleets.
	c, err := faults.ForClass("correlated", 200, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range c.Events {
		if len(ev.Shards) != 1 {
			t.Fatalf("1-shard correlated blast targets %v", ev.Shards)
		}
	}
}

func TestCorrelatedBlastCrashesTogether(t *testing.T) {
	st := open(t, 4)
	c := faults.Correlated(200, 4, 50, 2)
	eng := faults.New(st, c)
	sawDown := false
	for i := 0; i < 200; i++ {
		if err := eng.Step(i); err != nil {
			t.Fatal(err)
		}
		if i == 50 {
			// The whole blast radius fell at one instant.
			if !eng.Down(0) || !eng.Down(1) {
				t.Fatalf("blast {0,1} not down at op 50: %v %v", eng.Down(0), eng.Down(1))
			}
			h := st.Health()
			if !h[0].Down || !h[1].Down || h[2].Down || h[3].Down {
				t.Fatalf("health disagrees with blast: %+v", h)
			}
			sawDown = true
		}
		if i == 80 && (eng.Down(0) || eng.Down(1)) {
			t.Fatal("blast not recovered half a period later")
		}
		_, err := st.Put(core.Val(i%40), core.Val(i+1))
		tolerate(t, err)
	}
	if !sawDown {
		t.Fatal("campaign never fired")
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	// Windows at 50, 100, 150 × blast 2.
	if s.Crashes != 6 || s.Recoveries != 6 {
		t.Fatalf("crashes=%d recoveries=%d, want 6/6", s.Crashes, s.Recoveries)
	}
	if len(s.OutageNS) != 6 || len(s.RecoveryNS) != 6 {
		t.Fatalf("outage/recovery samples %d/%d, want 6/6", len(s.OutageNS), len(s.RecoveryNS))
	}
	for _, o := range s.OutageNS {
		if o <= 0 {
			t.Fatalf("non-positive outage window %g", o)
		}
	}
}

func TestPartitionDeniesButLosesNothing(t *testing.T) {
	st := open(t, 2)
	for k := 0; k < 20; k++ {
		if _, err := st.Put(core.Val(k), core.Val(k+100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	eng := faults.New(st, &faults.Campaign{Name: "p", Events: []faults.Event{
		{At: 1, Action: faults.Partition, Shards: []int{0}},
		{At: 2, Action: faults.Heal, Shards: []int{0}},
	}})
	if err := eng.Step(1); err != nil {
		t.Fatal(err)
	}
	denied := 0
	for k := 0; k < 20; k++ {
		_, _, err := st.Get(core.Val(k))
		if err == nil {
			continue
		}
		if !errors.Is(err, kv.ErrUnavailable) {
			t.Fatalf("partitioned get failed with %v, want ErrUnavailable", err)
		}
		if errors.Is(err, kv.ErrShardDown) {
			t.Fatal("partition must not masquerade as a crash")
		}
		denied++
	}
	if denied == 0 {
		t.Fatal("no op was denied by the partition")
	}
	if err := eng.Step(2); err != nil {
		t.Fatal(err)
	}
	// Heal is instant and lossless: every key reads back, no recovery.
	for k := 0; k < 20; k++ {
		v, ok, err := st.Get(core.Val(k))
		if err != nil || !ok || v != core.Val(k+100) {
			t.Fatalf("post-heal get(%d) = %v %v %v", k, v, ok, err)
		}
	}
	s := eng.Stats()
	if s.Partitions != 1 || s.Heals != 1 || s.Recoveries != 0 || s.RecordsLost != 0 {
		t.Fatalf("partition stats %+v", s)
	}
	if len(s.PartitionNS) != 1 || s.PartitionNS[0] <= 0 {
		t.Fatalf("partition window samples %v", s.PartitionNS)
	}
}

func TestDegradeIsCostOnly(t *testing.T) {
	st := open(t, 2)
	eng := faults.New(st, &faults.Campaign{Name: "d", Events: []faults.Event{
		{At: 1, Action: faults.Degrade, Shards: []int{1}, Factor: 8},
		{At: 2, Action: faults.Degrade, Shards: []int{1}, Factor: 1},
	}})
	if err := eng.Step(1); err != nil {
		t.Fatal(err)
	}
	if f := st.Health()[1].DegradeFactor; f != 8 {
		t.Fatalf("degrade factor %g, want 8", f)
	}
	// Degraded ops succeed — slow is not down.
	for k := 0; k < 10; k++ {
		if _, err := st.Put(core.Val(k), core.Val(k+1)); err != nil {
			t.Fatalf("degraded put failed: %v", err)
		}
	}
	if err := eng.Step(2); err != nil {
		t.Fatal(err)
	}
	if f := st.Health()[1].DegradeFactor; f != 1 {
		t.Fatalf("restore left factor %g", f)
	}
	if s := eng.Stats(); s.Degrades != 2 || s.Crashes != 0 || s.Skipped != 0 {
		t.Fatalf("degrade stats %+v", s)
	}
}

func TestSkippedInjectionsNeverDoubleApply(t *testing.T) {
	st := open(t, 2)
	eng := faults.New(st, &faults.Campaign{Name: "dup", Events: []faults.Event{
		{At: 1, Action: faults.Crash, Shards: []int{0}},
		{At: 2, Action: faults.Crash, Shards: []int{0}}, // down: skip
		{At: 3, Action: faults.Partition, Shards: []int{1}},
		{At: 4, Action: faults.Partition, Shards: []int{1}}, // partitioned: skip
		{At: 5, Action: faults.Partition, Shards: []int{0}}, // down: skip
		{At: 6, Action: faults.Heal, Shards: []int{0}},      // not partitioned: skip
		{At: 7, Action: faults.Recover, Shards: []int{1}},   // not down: skip
	}})
	if err := eng.Step(10); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Crashes != 1 || s.Partitions != 1 || s.Skipped != 5 {
		t.Fatalf("crashes=%d partitions=%d skipped=%d, want 1/1/5", s.Crashes, s.Partitions, s.Skipped)
	}
	if err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	for i, h := range st.Health() {
		if h.Down || h.Partitioned {
			t.Fatalf("shard %d still impaired after Finish: %+v", i, h)
		}
	}
}

func TestRecoverHealsPartitionFirst(t *testing.T) {
	st := open(t, 4)
	eng := faults.New(st, &faults.Campaign{Name: "ph", Events: []faults.Event{
		// Same tick, schedule order: the shard is cut off, then its
		// machine dies behind the partition.
		{At: 1, Action: faults.Partition, Shards: []int{2}},
		{At: 1, Action: faults.Crash, Shards: []int{2}},
		{At: 2, Action: faults.Recover, Shards: []int{2}},
	}})
	if err := eng.Step(1); err != nil {
		t.Fatal(err)
	}
	h := st.Health()[2]
	if !h.Down || !h.Partitioned {
		t.Fatalf("shard 2 should be down AND partitioned: %+v", h)
	}
	// Recovery needs the fabric: the engine heals before recovering.
	if err := eng.Step(2); err != nil {
		t.Fatal(err)
	}
	h = st.Health()[2]
	if h.Down || h.Partitioned {
		t.Fatalf("shard 2 still impaired after recover: %+v", h)
	}
	s := eng.Stats()
	if s.Heals != 1 || s.Recoveries != 1 || s.Crashes != 1 || s.Partitions != 1 {
		t.Fatalf("heal-then-recover stats %+v", s)
	}
}

// TestObservedCampaignBitIdentical is the acceptance invariant: running
// the same campaign with an observability recorder attached must leave
// the simulated clock, the data, and the campaign measurements
// bit-identical to the unobserved run.
func TestObservedCampaignBitIdentical(t *testing.T) {
	run := func(observe bool) (float64, faults.Stats, []core.Val) {
		st := open(t, 4)
		if observe {
			st.Observe(obs.NewRecorder(obs.NewBus(obs.DefaultBusSize), obs.NewStats()))
		}
		c, err := faults.ForClass("correlated", 240, 4, 60)
		if err != nil {
			t.Fatal(err)
		}
		eng := faults.New(st, c)
		for i := 0; i < 240; i++ {
			if err := eng.Step(i); err != nil {
				t.Fatal(err)
			}
			_, err := st.Put(core.Val(i%48), core.Val(i+1))
			tolerate(t, err)
		}
		if err := eng.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		var vals []core.Val
		for k := 0; k < 48; k++ {
			v, _, err := st.Get(core.Val(k))
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, v)
		}
		return st.NowNS(), eng.Stats(), vals
	}
	nowA, statsA, valsA := run(false)
	nowB, statsB, valsB := run(true)
	if nowA != nowB {
		t.Fatalf("observed clock diverged: %g vs %g", nowA, nowB)
	}
	if !reflect.DeepEqual(statsA, statsB) {
		t.Fatalf("observed campaign stats diverged:\n%+v\n%+v", statsA, statsB)
	}
	if !reflect.DeepEqual(valsA, valsB) {
		t.Fatal("observed data diverged")
	}
}

func TestPercentileNS(t *testing.T) {
	xs := []float64{30, 10, 20, 40}
	if p := faults.PercentileNS(xs, 50); p != 20 {
		t.Fatalf("p50 = %g, want 20", p)
	}
	if p := faults.PercentileNS(xs, 95); p != 40 {
		t.Fatalf("p95 = %g, want 40", p)
	}
	if p := faults.PercentileNS(nil, 95); p != 0 {
		t.Fatalf("empty p95 = %g, want 0", p)
	}
	if got := xs[0]; got != 30 {
		t.Fatal("PercentileNS mutated its input")
	}
}
