// Package faults drives scripted fault campaigns against a kv.DB: a
// Campaign is a deterministic schedule of fault events — correlated
// multi-shard crashes, fabric partitions, per-device degradation — keyed
// to operation indices, and an Engine fires them as a workload advances,
// measuring the outage and recovery windows they cause.
//
// Campaigns replace the uniform crash-churn knob (workload
// Options.CrashEvery) with structured fault classes:
//
//   - Uniform: one crash+immediate-recover cycle rotating over shards —
//     the legacy knob, expressed as a campaign so the classes share one
//     measurement path.
//   - Correlated: several shards crash at the same operation index (one
//     blast radius, as when a rack or fabric switch fails) and recover
//     together later — in schedule order, which is the campaign's order,
//     not the caller's.
//   - Degraded: a device serves at a latency multiple for a window — the
//     slow-device failure mode, which charges realistic costs instead of
//     failing.
//   - Partitioned: a shard becomes unreachable for a window and then
//     heals; nothing is lost, so no recovery follows.
//
// The engine is deterministic: same campaign, same workload, same
// timeline — bit-identical with and without observability attached. See
// docs/faults.md.
package faults

import (
	"fmt"
	"math"
	"sort"

	"cxl0/internal/kv"
)

// Action is the kind of one campaign event.
type Action int

const (
	// Crash fails the target shards' machines at the same simulated
	// instant — one correlated blast. Shards already down are skipped
	// (counted in Stats.Skipped), never double-injected.
	Crash Action = iota
	// Recover restarts the target shards in the listed order — the
	// campaign's schedule decides recovery order, not the caller. A
	// partitioned target is healed first (partition-heal-then-recover);
	// targets that are not down are skipped.
	Recover
	// Partition cuts the target shards off the fabric. Already
	// partitioned or down targets are skipped.
	Partition
	// Heal reconnects partitioned targets; others are skipped.
	Heal
	// Degrade sets the target devices' latency multiplier to Factor
	// (Factor 1 restores full speed). Never skipped — re-degrading is a
	// factor change, not an injection.
	Degrade
)

var actionNames = [...]string{"crash", "recover", "partition", "heal", "degrade"}

func (a Action) String() string {
	if a >= 0 && int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Event is one scheduled fault: at measured-operation index At, apply
// Action to Shards (global indices). Factor is the Degrade multiplier,
// ignored by other actions.
type Event struct {
	At     int     `json:"at"`
	Action Action  `json:"action"`
	Shards []int   `json:"shards"`
	Factor float64 `json:"factor,omitempty"`
}

// Campaign is a named, deterministic fault schedule. Events fire in
// slice order once their At index is reached; events sharing an At fire
// back to back at the same simulated instant (that is what makes a
// multi-shard Crash event correlated — and distinct events at one At
// stay ordered, so "partition then crash" at the same tick is
// expressible).
type Campaign struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// sorted returns the events in firing order: ascending At, schedule
// order within one At (stable).
func (c *Campaign) sorted() []Event {
	evs := make([]Event, len(c.Events))
	copy(evs, c.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Stats is what one campaign run measured.
type Stats struct {
	// Campaign names the schedule that ran.
	Campaign string `json:"campaign"`
	// Injection counters: faults actually applied (skipped injections —
	// a crash into an already-down shard, a partition of a partitioned
	// one — count in Skipped instead, never double-applied).
	Crashes    int `json:"crashes"`
	Recoveries int `json:"recoveries"`
	Partitions int `json:"partitions"`
	Heals      int `json:"heals"`
	Degrades   int `json:"degrades"`
	Skipped    int `json:"skipped"`
	// RecordsLost sums the records destroyed by the campaign's crashes,
	// as reported by the recoveries.
	RecordsLost int `json:"records_lost"`
	// RecoveryNS are the simulated costs of the recoveries themselves
	// (the replay/truncate work); OutageNS the full crash-to-recovered
	// windows on the simulated clock; PartitionNS the partition-to-heal
	// windows. Each is in event order.
	RecoveryNS  []float64 `json:"-"`
	OutageNS    []float64 `json:"-"`
	PartitionNS []float64 `json:"-"`
}

// Engine fires one campaign against one DB as a workload advances. Not
// safe for concurrent use; drive it from the workload loop.
type Engine struct {
	db     kv.DB
	events []Event
	next   int

	downAt    map[int]float64 // shard -> NowNS at crash
	downOrder []int           // down shards in crash order
	partAt    map[int]float64 // shard -> NowNS at partition
	partOrder []int           // partitioned shards in partition order

	stats Stats
}

// New builds an engine firing c against db. The schedule is copied and
// ordered; the campaign value is not retained.
func New(db kv.DB, c *Campaign) *Engine {
	return &Engine{
		db:     db,
		events: c.sorted(),
		downAt: map[int]float64{},
		partAt: map[int]float64{},
		stats:  Stats{Campaign: c.Name},
	}
}

// Step fires every not-yet-fired event whose At index is <= op. Call it
// once per measured operation, before executing the operation.
func (e *Engine) Step(op int) error {
	for e.next < len(e.events) && e.events[e.next].At <= op {
		if err := e.fire(e.events[e.next]); err != nil {
			return err
		}
		e.next++
	}
	return nil
}

func (e *Engine) fire(ev Event) error {
	switch ev.Action {
	case Crash:
		for _, sh := range ev.Shards {
			e.crash(sh)
		}
	case Recover:
		for _, sh := range ev.Shards {
			if err := e.recover(sh); err != nil {
				return err
			}
		}
	case Partition:
		for _, sh := range ev.Shards {
			e.partition(sh)
		}
	case Heal:
		for _, sh := range ev.Shards {
			e.heal(sh)
		}
	case Degrade:
		for _, sh := range ev.Shards {
			e.db.Degrade(sh, ev.Factor)
			e.stats.Degrades++
		}
	default:
		return fmt.Errorf("faults: unknown action %v at op %d", ev.Action, ev.At)
	}
	return nil
}

func (e *Engine) crash(sh int) {
	if _, down := e.downAt[sh]; down {
		e.stats.Skipped++
		return
	}
	e.downAt[sh] = e.db.NowNS()
	e.downOrder = append(e.downOrder, sh)
	e.db.Crash(sh)
	e.stats.Crashes++
}

func (e *Engine) recover(sh int) error {
	since, down := e.downAt[sh]
	if !down {
		e.stats.Skipped++
		return nil
	}
	// A crashed shard behind a partition heals first: recovery needs the
	// fabric (kv.Store.Recover refuses with ErrUnavailable otherwise).
	if _, part := e.partAt[sh]; part {
		e.heal(sh)
	}
	start := e.db.NowNS()
	stats, err := e.db.Recover(sh)
	if err != nil {
		return fmt.Errorf("faults: recover shard %d: %w", sh, err)
	}
	now := e.db.NowNS()
	e.stats.Recoveries++
	e.stats.RecordsLost += stats.Lost
	e.stats.RecoveryNS = append(e.stats.RecoveryNS, now-start)
	e.stats.OutageNS = append(e.stats.OutageNS, now-since)
	delete(e.downAt, sh)
	for i, d := range e.downOrder {
		if d == sh {
			e.downOrder = append(e.downOrder[:i], e.downOrder[i+1:]...)
			break
		}
	}
	return nil
}

func (e *Engine) partition(sh int) {
	_, part := e.partAt[sh]
	_, down := e.downAt[sh]
	if part || down {
		e.stats.Skipped++
		return
	}
	e.partAt[sh] = e.db.NowNS()
	e.partOrder = append(e.partOrder, sh)
	e.db.Partition(sh)
	e.stats.Partitions++
}

func (e *Engine) heal(sh int) {
	since, part := e.partAt[sh]
	if !part {
		e.stats.Skipped++
		return
	}
	e.db.Heal(sh)
	e.stats.Heals++
	e.stats.PartitionNS = append(e.stats.PartitionNS, e.db.NowNS()-since)
	delete(e.partAt, sh)
	for i, p := range e.partOrder {
		if p == sh {
			e.partOrder = append(e.partOrder[:i], e.partOrder[i+1:]...)
			break
		}
	}
}

// Down reports whether the campaign currently holds shard sh down.
func (e *Engine) Down(sh int) bool {
	_, down := e.downAt[sh]
	return down
}

// Finish drains the campaign: remaining scheduled events fire, then
// every still-partitioned shard heals (in partition order) and every
// still-down shard recovers (in crash order — the campaign schedule's
// order, preserved). A run therefore always ends with a healthy service.
func (e *Engine) Finish() error {
	if err := e.Step(math.MaxInt); err != nil {
		return err
	}
	for len(e.partOrder) > 0 {
		e.heal(e.partOrder[0])
	}
	for len(e.downOrder) > 0 {
		if err := e.recover(e.downOrder[0]); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns what the campaign has measured so far.
func (e *Engine) Stats() Stats { return e.stats }

// PercentileNS returns the p-th percentile (nearest-rank, p in [0,100])
// of xs, which need not be sorted. Returns 0 for an empty slice.
func PercentileNS(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// The class generators below script the benchmark's campaign classes.
// All are deterministic in their arguments; shards rotate round-robin so
// repeated windows spread over the service.

// ForClass builds the named campaign class over ops operations and
// shards shards (global indices), one fault window per `every` ops:
// "none" (an empty baseline schedule), "uniform", "correlated" (blast
// of 2), "degraded" (8× device latency) and "partitioned".
func ForClass(name string, ops, shards, every int) (*Campaign, error) {
	switch name {
	case "none":
		return &Campaign{Name: "none"}, nil
	case "uniform":
		return Uniform(ops, shards, every), nil
	case "correlated":
		blast := 2
		if shards < 2 {
			blast = 1
		}
		return Correlated(ops, shards, every, blast), nil
	case "degraded":
		return Degraded(ops, shards, every, 8), nil
	case "partitioned":
		return Partitioned(ops, shards, every), nil
	}
	return nil, fmt.Errorf("faults: unknown campaign class %q (want none, uniform, correlated, degraded or partitioned)", name)
}

// Uniform is the legacy crash-churn knob as a campaign: every `every`
// measured ops, one shard (rotating) crashes and recovers immediately.
func Uniform(ops, shards, every int) *Campaign {
	c := &Campaign{Name: "uniform"}
	s := 0
	for at := every; at < ops; at += every {
		target := []int{s % shards}
		c.Events = append(c.Events,
			Event{At: at, Action: Crash, Shards: target},
			Event{At: at, Action: Recover, Shards: target},
		)
		s++
	}
	return c
}

// Correlated crashes `blast` consecutive shards (rotating start) at one
// instant every `every` ops and recovers them — in schedule order —
// half a period later.
func Correlated(ops, shards, every, blast int) *Campaign {
	if blast > shards {
		blast = shards
	}
	c := &Campaign{Name: "correlated"}
	s := 0
	for at := every; at < ops; at += every {
		targets := make([]int, blast)
		for i := range targets {
			targets[i] = (s + i) % shards
		}
		c.Events = append(c.Events,
			Event{At: at, Action: Crash, Shards: targets},
			Event{At: at + every/2, Action: Recover, Shards: targets},
		)
		s++
	}
	return c
}

// Degraded slows one device (rotating) to factor× for half of every
// `every`-op period, then restores it.
func Degraded(ops, shards, every int, factor float64) *Campaign {
	c := &Campaign{Name: "degraded"}
	s := 0
	for at := every; at < ops; at += every {
		target := []int{s % shards}
		c.Events = append(c.Events,
			Event{At: at, Action: Degrade, Shards: target, Factor: factor},
			Event{At: at + every/2, Action: Degrade, Shards: target, Factor: 1},
		)
		s++
	}
	return c
}

// Partitioned cuts one shard (rotating) off the fabric for half of
// every `every`-op period, then heals it.
func Partitioned(ops, shards, every int) *Campaign {
	c := &Campaign{Name: "partitioned"}
	s := 0
	for at := every; at < ops; at += every {
		target := []int{s % shards}
		c.Events = append(c.Events,
			Event{At: at, Action: Partition, Shards: target},
			Event{At: at + every/2, Action: Heal, Shards: target},
		)
		s++
	}
	return c
}
