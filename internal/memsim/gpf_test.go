package memsim

import (
	"testing"

	"cxl0/internal/core"
)

// TestGPFPlannedShutdown exercises the paper's intended GPF use case: drain
// every cache before a planned whole-system shutdown, so that nothing is
// lost no matter which machines fail afterwards.
func TestGPFPlannedShutdown(t *testing.T) {
	c := NewCluster([]MachineConfig{
		{Name: "h1", Mem: core.NonVolatile, Heap: 8},
		{Name: "h2", Mem: core.NonVolatile, Heap: 8},
		{Name: "pool", Mem: core.NonVolatile, Heap: 32},
	}, Config{Seed: 2})
	t1, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Alloc(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter unflushed stores from both hosts across the pool.
	for i := core.LocID(0); i < 8; i++ {
		th := t1
		if i%2 == 1 {
			th = t2
		}
		if err := th.LStore(base+i, core.Val(i)+10); err != nil {
			t.Fatal(err)
		}
	}
	// Values are dirty somewhere in the hierarchy; a GPF drains them all.
	if err := t1.GPF(); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if !snap.CachesEmpty() {
		t.Fatalf("caches not empty after GPF: %v", snap)
	}
	// Now the whole system can go down; the pool keeps everything.
	c.Crash(0)
	c.Crash(1)
	c.Crash(2)
	for i := core.LocID(0); i < 8; i++ {
		if got := c.PersistedValue(base + i); got != core.Val(i)+10 {
			t.Errorf("pool[%d] = %d after full shutdown, want %d", i, got, core.Val(i)+10)
		}
	}
}

// TestGPFOnDeadMachineFails: a crashed machine cannot issue a GPF.
func TestGPFOnDeadMachineFails(t *testing.T) {
	c := NewCluster([]MachineConfig{{Name: "m", Mem: core.NonVolatile, Heap: 4}}, Config{})
	th, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(0)
	if err := th.GPF(); err == nil {
		t.Fatal("GPF from a dead thread succeeded")
	}
}

// TestSnapshotIsACopy ensures Snapshot isolates callers from the live
// state.
func TestSnapshotIsACopy(t *testing.T) {
	c := NewCluster([]MachineConfig{{Name: "m", Mem: core.NonVolatile, Heap: 4}}, Config{})
	th, _ := c.NewThread(0)
	x, _ := c.Alloc(0, 1)
	if err := th.MStore(x, 5); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if err := th.MStore(x, 6); err != nil {
		t.Fatal(err)
	}
	if snap.Mem(x) != 5 {
		t.Errorf("snapshot mutated by later store: %d", snap.Mem(x))
	}
}
