package memsim

import (
	"fmt"

	"cxl0/internal/core"
)

// Thread executes CXL0 primitives on behalf of one machine. Threads are
// cheap handles; create one per goroutine. A thread dies with its machine:
// after Crash(m), all threads bound to m return ErrCrashed forever, and new
// threads (with fresh identity, as the paper prescribes) must be created
// after recovery.
type Thread struct {
	c     *Cluster
	m     core.MachineID
	epoch uint64
}

// Machine returns the machine this thread runs on.
func (t *Thread) Machine() core.MachineID { return t.m }

// Cluster returns the owning cluster.
func (t *Thread) Cluster() *Cluster { return t.c }

// Local reports whether the thread's machine owns location l.
func (t *Thread) Local(l core.LocID) bool { return t.c.topo.Owner(l) == t.m }

func (t *Thread) checkAliveLocked() error {
	if !t.c.alive[t.m] || t.c.epoch[t.m] != t.epoch {
		return ErrCrashed
	}
	return nil
}

// checkOpLocked gates one single-location primitive: the thread's machine
// must be alive and the target line's owner reachable from it. The checks
// run before any state mutation or cost charge, so a failed operation has
// no effect at all — like an op rejected by a dead machine.
func (t *Thread) checkOpLocked(x core.LocID) error {
	if err := t.checkAliveLocked(); err != nil {
		return err
	}
	return t.c.reachableLocked(t.m, x)
}

// applyLocked performs a deterministic labeled step, which must be enabled.
func (t *Thread) applyLocked(l core.Label) {
	if !core.ApplyInPlace(t.c.st, l, t.c.cfg.Variant) {
		panic(fmt.Sprintf("memsim: %v not enabled in %v", l, t.c.st))
	}
}

// drainLocked forces propagation steps until location x is absent from the
// caches selected by all (every cache vs. just this thread's). This is how
// the runtime executes the paper's "blocking" flush semantics: the flush
// waits for (here: forces) the nondeterministic propagation it depends on.
func (t *Thread) drainLocked(x core.LocID, all bool) {
	owner := t.c.topo.Owner(x)
	if !all {
		if t.c.st.Cache(t.m, x) != core.Bot {
			t.c.applyTauLocked(core.TauStep{From: t.m, Loc: x, ToMemory: t.m == owner})
		}
		return
	}
	for {
		holder := core.MachineID(-1)
		for m := 0; m < t.c.topo.NumMachines(); m++ {
			if t.c.st.Cache(core.MachineID(m), x) != core.Bot {
				holder = core.MachineID(m)
				break
			}
		}
		if holder < 0 {
			return
		}
		t.c.applyTauLocked(core.TauStep{From: holder, Loc: x, ToMemory: holder == owner})
	}
}

// Load reads location x.
func (t *Thread) Load(x core.LocID) (core.Val, error) {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if err := t.checkOpLocked(x); err != nil {
		return 0, err
	}
	cached := t.c.hotLocked(t.m, x)
	var v core.Val
	if t.c.cfg.Variant == core.LWB {
		// Implicit write-back: a load never reads a peer's cache; if the
		// line is cached remotely the hardware drains it to memory first.
		if own := t.c.st.Cache(t.m, x); own != core.Bot {
			v = own
		} else {
			t.drainLocked(x, true)
			v = t.c.st.Mem(x)
		}
	} else {
		v = t.c.st.Readable(x)
	}
	t.applyLocked(core.LoadL(t.m, x, v))
	t.c.warmLocked(t.m, x)
	t.c.chargeLocked(core.OpLoad, t.c.topo.Owner(x), t.Local(x), cached)
	t.c.maybeEvictLocked()
	return v, nil
}

func (t *Thread) store(op core.Op, x core.LocID, v core.Val) error {
	if v < 0 {
		return fmt.Errorf("memsim: negative value %d (values must be non-negative)", v)
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if err := t.checkOpLocked(x); err != nil {
		return err
	}
	t.applyLocked(core.Label{Op: op, M: t.m, Loc: x, Val: v})
	switch op {
	case core.OpLStore:
		t.c.warmLocked(t.m, x)
		t.c.coolExceptLocked(t.m, x)
	case core.OpRStore:
		owner := t.c.topo.Owner(x)
		t.c.warmLocked(owner, x)
		t.c.coolExceptLocked(owner, x)
	case core.OpMStore:
		t.c.coolAllLocked(x)
	default:
		// Only the three store ops reach this path; a new op added to
		// the instruction set must decide its hot-line overlay effect
		// here explicitly.
	}
	t.c.chargeLocked(op, t.c.topo.Owner(x), t.Local(x), false)
	t.c.maybeEvictLocked()
	return nil
}

// LStore stores v into the thread's local cache; it may be lost on crash
// until flushed or evicted towards the owner's memory.
func (t *Thread) LStore(x core.LocID, v core.Val) error { return t.store(core.OpLStore, x, v) }

// RStore stores v into the owner's cache.
func (t *Thread) RStore(x core.LocID, v core.Val) error { return t.store(core.OpRStore, x, v) }

// MStore stores v into the owner's physical memory; it is persistent on
// return.
func (t *Thread) MStore(x core.LocID, v core.Val) error { return t.store(core.OpMStore, x, v) }

// LFlush drains x from this machine's cache to the next level (the owner's
// cache, or local memory when this machine owns x).
func (t *Thread) LFlush(x core.LocID) error {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if err := t.checkOpLocked(x); err != nil {
		return err
	}
	t.drainLocked(x, false)
	t.applyLocked(core.LFlushL(t.m, x))
	delete(t.c.hot[t.m], x)
	t.c.chargeLocked(core.OpLFlush, t.c.topo.Owner(x), t.Local(x), false)
	t.c.maybeEvictLocked()
	return nil
}

// RFlush drains x from every cache into the owner's physical memory; x is
// persistent on return.
func (t *Thread) RFlush(x core.LocID) error {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if err := t.checkOpLocked(x); err != nil {
		return err
	}
	t.drainLocked(x, true)
	t.applyLocked(core.RFlushL(t.m, x))
	t.c.coolAllLocked(x)
	t.c.chargeLocked(core.OpRFlush, t.c.topo.Owner(x), t.Local(x), false)
	t.c.maybeEvictLocked()
	return nil
}

// RFlushRange drains the n consecutive locations starting at base from
// every cache into their owners' physical memories; the whole range is
// persistent on return. It is the ranged persistent flush of the paper's §7
// sketch: RFlushRange(x, 1) behaves exactly like RFlush(x), and unlike GPF
// only the devices owning lines of the range participate — the simulated
// cost is charged per owning device (one flush command each, plus a
// per-line media write) and is therefore independent of cluster size.
func (t *Thread) RFlushRange(base core.LocID, n int) error {
	if n < 1 {
		return fmt.Errorf("memsim: RFlushRange needs n >= 1, got %d", n)
	}
	if int(base) < 0 || int(base)+n > t.c.topo.NumLocs() {
		return fmt.Errorf("memsim: RFlushRange [%d,%d) outside the %d allocated locations",
			base, int(base)+n, t.c.topo.NumLocs())
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if err := t.checkAliveLocked(); err != nil {
		return err
	}
	// Every device owning part of the range participates in the flush, so
	// each must be reachable; a partition anywhere in the range fails the
	// whole primitive before anything drains.
	for i := 0; i < n; i++ {
		if err := t.c.reachableLocked(t.m, base+core.LocID(i)); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		t.drainLocked(base+core.LocID(i), true)
	}
	t.applyLocked(core.RFlushRangeL(t.m, base, n))
	for i := 0; i < n; i++ {
		t.c.coolAllLocked(base + core.LocID(i))
	}
	t.c.chargeRangedFlushLocked(t.m, base, n)
	t.c.maybeEvictLocked()
	return nil
}

// GPF performs a Global Persistent Flush: every cache in the system drains
// to memory before it returns.
func (t *Thread) GPF() error {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if err := t.checkAliveLocked(); err != nil {
		return err
	}
	// The drain must reach every cache in the system: one partitioned
	// machine anywhere blocks the global flush entirely.
	if err := t.c.fabricWholeLocked(); err != nil {
		return err
	}
	for x := 0; x < t.c.topo.NumLocs(); x++ {
		t.drainLocked(core.LocID(x), true)
	}
	t.applyLocked(core.GPFL(t.m))
	t.c.chargeGPFLocked()
	return nil
}

// rmwHotLocked updates the performance-cache overlay after an RMW's store
// half.
func (t *Thread) rmwHotLocked(op core.Op, x core.LocID) {
	switch op {
	case core.OpLRMW:
		t.c.warmLocked(t.m, x)
		t.c.coolExceptLocked(t.m, x)
	case core.OpRRMW:
		owner := t.c.topo.Owner(x)
		t.c.warmLocked(owner, x)
		t.c.coolExceptLocked(owner, x)
	case core.OpMRMW:
		t.c.coolAllLocked(x)
	default:
		// Only the three RMW ops have a store half; a new op added to
		// the instruction set must decide its overlay effect here.
	}
}

// CAS atomically compares-and-swaps x from old to new using the RMW kind in
// op (OpLRMW, OpRRMW or OpMRMW). A failed CAS acts as a plain read.
func (t *Thread) CAS(op core.Op, x core.LocID, old, new core.Val) (bool, error) {
	if !op.IsRMW() {
		return false, fmt.Errorf("memsim: CAS requires an RMW op, got %v", op)
	}
	if new < 0 {
		return false, fmt.Errorf("memsim: negative value %d", new)
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if err := t.checkOpLocked(x); err != nil {
		return false, err
	}
	cached := t.c.hotLocked(t.m, x)
	cur := t.c.st.Readable(x)
	if cur != old {
		// Failed RMW ≡ plain read (§3.3): the line is pulled like a load.
		t.applyLocked(core.LoadL(t.m, x, cur))
		t.c.warmLocked(t.m, x)
		t.c.chargeLocked(core.OpLoad, t.c.topo.Owner(x), t.Local(x), cached)
		t.c.maybeEvictLocked()
		return false, nil
	}
	t.applyLocked(core.RMWL(op, t.m, x, old, new))
	t.rmwHotLocked(op, x)
	t.c.chargeLocked(op, t.c.topo.Owner(x), t.Local(x), cached)
	t.c.maybeEvictLocked()
	return true, nil
}

// FAA atomically fetches-and-adds delta to x using the RMW kind in op,
// returning the previous value.
func (t *Thread) FAA(op core.Op, x core.LocID, delta core.Val) (core.Val, error) {
	if !op.IsRMW() {
		return 0, fmt.Errorf("memsim: FAA requires an RMW op, got %v", op)
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if err := t.checkOpLocked(x); err != nil {
		return 0, err
	}
	cached := t.c.hotLocked(t.m, x)
	cur := t.c.st.Readable(x)
	if cur+delta < 0 {
		return 0, fmt.Errorf("memsim: FAA would produce negative value %d", cur+delta)
	}
	t.applyLocked(core.RMWL(op, t.m, x, cur, cur+delta))
	t.rmwHotLocked(op, x)
	t.c.chargeLocked(op, t.c.topo.Owner(x), t.Local(x), cached)
	t.c.maybeEvictLocked()
	return cur, nil
}
