// Package memsim is an executable runtime for the CXL0 model: a simulated
// cluster of machines sharing coherent disaggregated memory, on which real
// goroutines run concurrent algorithms against the paper's operational
// semantics.
//
// Every primitive takes the cluster's global lock and applies the
// corresponding CXL0 transition from package core, so the set of traces the
// runtime can produce is exactly the set the LTS allows. Nondeterministic
// cache eviction (the τ steps) is injected probabilistically after
// operations and on demand via Churn; crashes and recoveries are injected
// through Crash and Recover. A simulated clock charges each primitive the
// latency model's cost, enabling performance comparisons between
// persistence strategies that wall-clock time on a single host cannot
// expose.
package memsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"cxl0/internal/core"
	"cxl0/internal/latency"
)

// ErrCrashed is returned by thread operations after the thread's machine
// crashed: the thread's local state (registers, program counter) is gone,
// per the paper's failure model. A fresh thread must be created after
// Recover.
var ErrCrashed = errors.New("memsim: machine crashed; thread lost")

// ErrOutOfMemory is returned when a machine's heap is exhausted.
var ErrOutOfMemory = errors.New("memsim: machine heap exhausted")

// ErrUnreachable is returned by thread operations that need the fabric to
// reach a partitioned machine. Unlike ErrCrashed, the machine itself is
// healthy: its caches and memory are intact, its threads stay valid, and
// Heal restores service without any recovery procedure. A partitioned
// machine is an isolated island — it can still operate on its own
// locations, but no cross-machine access succeeds in either direction.
var ErrUnreachable = errors.New("memsim: machine unreachable (fabric partition)")

// MachineConfig describes one machine of a cluster.
type MachineConfig struct {
	Name string
	Mem  core.MemKind
	// Heap is the number of shared memory locations attached to this
	// machine.
	Heap int
}

// Config controls a cluster's nondeterminism and cost accounting.
type Config struct {
	// Variant selects the model flavour (Base, PSN, LWB).
	Variant core.Variant
	// EvictEvery injects one random τ propagation step after roughly every
	// n-th primitive (0 disables background eviction; 1 evicts after every
	// operation).
	EvictEvery int
	// Seed drives the eviction randomness, for reproducibility.
	Seed int64
	// Latency, when non-nil, charges each primitive its modeled cost on
	// the simulated clock.
	Latency *latency.Model
}

// Cluster is a running CXL0 system.
type Cluster struct {
	mu    sync.Mutex
	topo  *core.Topology
	st    *core.State
	cfg   Config
	rng   *rand.Rand
	alive []bool
	epoch []uint64
	// unreach marks machines cut off by a fabric partition: healthy but
	// unreachable from every other machine (see ErrUnreachable). degrade
	// holds per-machine latency multipliers (values < 1 read as 1): a
	// degraded device charges factor× the modeled cost for every operation
	// its memory serves, without any semantic effect.
	unreach []bool
	degrade []float64
	// allocation state, per machine
	heapBase []core.LocID
	heapSize []int
	heapNext []int

	clockNS float64
	stamp   uint64
	opCount uint64
	opStats [16]uint64 // indexed by core.Op

	// hot tracks, per machine, lines for which the machine holds a CLEAN
	// cached copy. The CXL0 LTS deliberately does not model clean copies
	// (a copy equal to memory is observationally irrelevant for crash
	// behaviour, so LOAD-from-M leaves C unchanged), but they matter for
	// cost: real hardware serves repeated reads of a clean line from
	// cache. This overlay exists purely for latency accounting and never
	// influences semantics.
	hot []map[core.LocID]bool
}

// NewCluster builds a cluster with the given machines and pre-provisioned
// heaps.
func NewCluster(machines []MachineConfig, cfg Config) *Cluster {
	topo := core.NewTopology()
	c := &Cluster{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for _, mc := range machines {
		m := topo.AddMachine(mc.Name, mc.Mem)
		c.heapBase = append(c.heapBase, core.LocID(topo.NumLocs()))
		c.heapSize = append(c.heapSize, mc.Heap)
		c.heapNext = append(c.heapNext, 0)
		if mc.Heap > 0 {
			topo.AddLocs(m, mc.Heap)
		}
		c.alive = append(c.alive, true)
		c.epoch = append(c.epoch, 0)
		c.unreach = append(c.unreach, false)
		c.degrade = append(c.degrade, 1)
		c.hot = append(c.hot, map[core.LocID]bool{})
	}
	c.topo = topo
	c.st = core.NewState(topo)
	return c
}

// Topology returns the cluster's topology.
func (c *Cluster) Topology() *core.Topology { return c.topo }

// Machines returns the number of machines.
func (c *Cluster) Machines() int { return c.topo.NumMachines() }

// Alloc reserves n contiguous locations on machine m's heap.
func (c *Cluster) Alloc(m core.MachineID, n int) (core.LocID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.heapNext[m]+n > c.heapSize[m] {
		return 0, fmt.Errorf("%w: machine %s (%d of %d used)",
			ErrOutOfMemory, c.topo.MachineName(m), c.heapNext[m], c.heapSize[m])
	}
	l := c.heapBase[m] + core.LocID(c.heapNext[m])
	c.heapNext[m] += n
	return l, nil
}

// Owner returns the machine owning location l.
func (c *Cluster) Owner(l core.LocID) core.MachineID { return c.topo.Owner(l) }

// NewThread creates a thread bound to machine m. It fails if m is down.
func (c *Cluster) NewThread(m core.MachineID) (*Thread, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.alive[m] {
		return nil, fmt.Errorf("%w: machine %s is down", ErrCrashed, c.topo.MachineName(m))
	}
	return &Thread{c: c, m: m, epoch: c.epoch[m]}, nil
}

// Crash fails machine m: its cache vanishes, volatile memory resets, and
// every thread bound to it dies (subsequent operations return ErrCrashed).
// Under the PSN variant, m-owned lines are poisoned in all other caches.
func (c *Cluster) Crash(m core.MachineID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	core.CrashInPlace(c.st, m, c.cfg.Variant)
	c.hot[m] = map[core.LocID]bool{}
	if c.cfg.Variant == core.PSN {
		for j := range c.hot {
			for x := range c.hot[j] { //cxl0:order-insensitive — uniform delete, order-free
				if c.topo.Owner(x) == m {
					delete(c.hot[j], x)
				}
			}
		}
	}
	c.epoch[m]++
	c.alive[m] = false
	c.bumpStampLocked()
}

// Recover brings machine m back. Its memory retains what the crash
// semantics preserved; new threads may now be created on it.
func (c *Cluster) Recover(m core.MachineID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.alive[m] = true
	c.bumpStampLocked()
}

// Alive reports whether machine m is up.
func (c *Cluster) Alive(m core.MachineID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive[m]
}

// Partition cuts machine m off the fabric: cross-machine operations
// touching it fail with ErrUnreachable in either direction, and a global
// persistent flush cannot complete anywhere while any machine is
// partitioned. Unlike Crash nothing is lost — caches and memory stay
// intact, the crash epoch does not advance, and existing threads remain
// valid — so Heal restores service without a recovery procedure.
func (c *Cluster) Partition(m core.MachineID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unreach[m] = true
	c.bumpStampLocked()
}

// Heal reconnects a partitioned machine to the fabric.
func (c *Cluster) Heal(m core.MachineID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unreach[m] = false
	c.bumpStampLocked()
}

// Partitioned reports whether machine m is cut off the fabric.
func (c *Cluster) Partitioned(m core.MachineID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.unreach[m]
}

// Degrade sets machine m's device latency multiplier: every operation
// served by m's memory charges factor× the modeled cost. Factors below 1
// are clamped to 1 (Degrade(m, 1) restores full speed). Degradation is
// pure cost — it never changes what any operation returns or persists.
func (c *Cluster) Degrade(m core.MachineID, factor float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if factor < 1 {
		factor = 1
	}
	c.degrade[m] = factor
	c.bumpStampLocked()
}

// DegradeFactor returns machine m's current device latency multiplier.
func (c *Cluster) DegradeFactor(m core.MachineID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degrade[m]
}

// reachableLocked checks that a thread on issuer can operate on location
// x: always, when issuer owns x (a partitioned machine keeps serving its
// own island); otherwise both ends must be connected to the fabric.
func (c *Cluster) reachableLocked(issuer core.MachineID, x core.LocID) error {
	owner := c.topo.Owner(x)
	if owner == issuer {
		return nil
	}
	if c.unreach[issuer] {
		return fmt.Errorf("%w: issuer %s is partitioned", ErrUnreachable, c.topo.MachineName(issuer))
	}
	if c.unreach[owner] {
		return fmt.Errorf("%w: %s (owner of the target line) is partitioned", ErrUnreachable, c.topo.MachineName(owner))
	}
	return nil
}

// fabricWholeLocked checks that no machine is partitioned — the
// precondition of a global persistent flush, whose drain must reach every
// cache in the system.
func (c *Cluster) fabricWholeLocked() error {
	for m := range c.unreach {
		if c.unreach[m] {
			return fmt.Errorf("%w: %s is partitioned; global flush cannot drain it",
				ErrUnreachable, c.topo.MachineName(core.MachineID(m)))
		}
	}
	return nil
}

// Epoch returns machine m's crash epoch: the number of times it has
// crashed. Surviving machines can compare epochs around an operation to
// detect that a peer failed meanwhile — modeling the crash notifications a
// real fabric delivers (CXL link-down and management events). The FliT
// adaptation uses this to make its store-then-flush sequences crash-atomic.
func (c *Cluster) Epoch(m core.MachineID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch[m]
}

// Churn performs n random τ propagation steps, modeling cache-replacement
// pressure.
func (c *Cluster) Churn(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		c.evictOnceLocked()
	}
}

func (c *Cluster) evictOnceLocked() {
	steps := core.TauSteps(c.st)
	if len(steps) == 0 {
		return
	}
	c.applyTauLocked(steps[c.rng.Intn(len(steps))])
}

// applyTauLocked performs one propagation step and maintains the hot-line
// overlay: horizontal propagation removes the source's copy; vertical
// propagation (writeback) invalidates the line everywhere.
func (c *Cluster) applyTauLocked(ts core.TauStep) {
	core.ApplyTauInPlace(c.st, ts)
	if ts.ToMemory {
		c.coolAllLocked(ts.Loc)
	} else {
		delete(c.hot[ts.From], ts.Loc)
		c.hot[c.topo.Owner(ts.Loc)][ts.Loc] = true
	}
}

// warmLocked records that machine m now holds a (possibly clean) copy of x.
func (c *Cluster) warmLocked(m core.MachineID, x core.LocID) {
	c.hot[m][x] = true
}

// coolExceptLocked invalidates x in every machine's performance cache but
// m's (a store by m gained exclusive ownership).
func (c *Cluster) coolExceptLocked(m core.MachineID, x core.LocID) {
	for j := range c.hot {
		if core.MachineID(j) != m {
			delete(c.hot[j], x)
		}
	}
}

// coolAllLocked invalidates x everywhere (writeback, MStore, flush).
func (c *Cluster) coolAllLocked(x core.LocID) {
	for j := range c.hot {
		delete(c.hot[j], x)
	}
}

// hotLocked reports whether machine m holds a (semantic or clean) copy of
// x, for cost accounting.
func (c *Cluster) hotLocked(m core.MachineID, x core.LocID) bool {
	return c.st.Cache(m, x) != core.Bot || c.hot[m][x]
}

func (c *Cluster) maybeEvictLocked() {
	if c.cfg.EvictEvery <= 0 {
		return
	}
	c.opCount++
	if c.opCount%uint64(c.cfg.EvictEvery) == 0 {
		c.evictOnceLocked()
	}
}

// Stamp returns a fresh monotonically increasing event stamp, used by
// history recording to order invocations and responses.
func (c *Cluster) Stamp() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bumpStampLocked()
}

func (c *Cluster) bumpStampLocked() uint64 {
	c.stamp++
	return c.stamp
}

// NowNS returns the simulated clock in nanoseconds.
func (c *Cluster) NowNS() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clockNS
}

// chargeLocked charges one primitive touching a line of device dev. A
// degraded device multiplies the modeled cost: the operation still
// succeeds, it just pays a realistic penalty for the slow medium.
func (c *Cluster) chargeLocked(op core.Op, dev core.MachineID, local, cached bool) {
	c.opStats[op]++
	if c.cfg.Latency != nil {
		c.clockNS += c.cfg.Latency.CXL0CostCached(op, local, cached) * c.degrade[dev]
	}
}

// chargeGPFLocked charges one global persistent flush. The drain completes
// only when the slowest participating device has written back, so the cost
// scales with the maximum degradation factor across the cluster —
// a single slow device gates every fabric-wide flush.
func (c *Cluster) chargeGPFLocked() {
	c.opStats[core.OpGPF]++
	if c.cfg.Latency == nil {
		return
	}
	worst := 1.0
	for _, f := range c.degrade {
		if f > worst {
			worst = f
		}
	}
	c.clockNS += c.cfg.Latency.CXL0CostCached(core.OpGPF, false, false) * worst
}

// chargeRangedFlushLocked charges one ranged persistent flush issued by
// issuer over [base, base+n). Unlike GPF — whose drain involves every cache
// in the fabric — the cost is per owning device: each device covering part
// of the range pays one flush command plus its share of per-line media
// writes, so the total depends on the range, never on the cluster size.
func (c *Cluster) chargeRangedFlushLocked(issuer core.MachineID, base core.LocID, n int) {
	c.opStats[core.OpRFlushRange]++
	if c.cfg.Latency == nil {
		return
	}
	perDevice := map[core.MachineID]int{}
	for i := 0; i < n; i++ {
		perDevice[c.topo.Owner(base+core.LocID(i))]++
	}
	// Charge devices in machine order: float64 addition is not
	// associative, and map-iteration order would make the simulated clock
	// nondeterministic for ranges spanning several owners. Each device's
	// portion scales with its own degradation factor — a slow device slows
	// exactly its share of the range, not the whole fabric.
	for dev := 0; dev < c.topo.NumMachines(); dev++ {
		if lines := perDevice[core.MachineID(dev)]; lines > 0 {
			c.clockNS += c.cfg.Latency.RFlushRangeCost(lines, core.MachineID(dev) == issuer) * c.degrade[dev]
		}
	}
}

// Stats returns the number of primitives executed so far, per CXL0
// operation. Useful for explaining benchmark results: it shows each
// persistence strategy's primitive mix.
func (c *Cluster) Stats() map[core.Op]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[core.Op]uint64{}
	for op, n := range c.opStats {
		if n > 0 {
			out[core.Op(op)] = n
		}
	}
	return out
}

// Snapshot returns a copy of the current model state, for invariant checks
// and debugging.
func (c *Cluster) Snapshot() *core.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.Clone()
}

// CheckInvariant verifies the CXL0 global cache invariant on the live
// state.
func (c *Cluster) CheckInvariant() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.CheckInvariant()
}

// PersistedValue reads location l directly from its owner's memory,
// bypassing caches — what a recovery procedure would find on the physical
// medium. Intended for tests and post-mortem inspection.
func (c *Cluster) PersistedValue(l core.LocID) core.Val {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.Mem(l)
}
