package memsim_test

import (
	"fmt"

	"cxl0/internal/core"
	"cxl0/internal/memsim"
)

// ExampleThread_RFlush shows the paper's LStore+RFlush persistence idiom:
// the store lands in the writer's cache and would be lost if the writer
// crashed, while after the remote flush the value is on the owner's
// physical medium and survives every crash.
func ExampleThread_RFlush() {
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "host", Mem: core.NonVolatile, Heap: 0},
		{Name: "pool", Mem: core.NonVolatile, Heap: 4},
	}, memsim.Config{})
	th, _ := c.NewThread(0)
	x, _ := c.Alloc(1, 1)

	th.LStore(x, 42)
	fmt.Println("persisted after LStore: ", c.PersistedValue(x))
	th.RFlush(x)
	fmt.Println("persisted after RFlush: ", c.PersistedValue(x))

	c.Crash(0)
	c.Crash(1)
	fmt.Println("persisted after crashes:", c.PersistedValue(x))
	// Output:
	// persisted after LStore:  0
	// persisted after RFlush:  42
	// persisted after crashes: 42
}

// ExampleThread_RFlushRange persists a whole record — several consecutive
// locations — with a single ranged flush instead of one RFlush per word or
// a fabric-wide GPF.
func ExampleThread_RFlushRange() {
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "host", Mem: core.NonVolatile, Heap: 0},
		{Name: "pool", Mem: core.NonVolatile, Heap: 8},
	}, memsim.Config{})
	th, _ := c.NewThread(0)
	rec, _ := c.Alloc(1, 3) // [key, value, checksum]

	th.LStore(rec, 7)
	th.LStore(rec+1, 700)
	th.LStore(rec+2, 707)
	th.RFlushRange(rec, 3) // one flush for the whole record

	c.Crash(0)
	c.Crash(1)
	fmt.Println(c.PersistedValue(rec), c.PersistedValue(rec+1), c.PersistedValue(rec+2))
	// Output:
	// 7 700 707
}
