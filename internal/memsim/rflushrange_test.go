package memsim

import (
	"errors"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/latency"
)

// TestRFlushRangePersistsExactlyTheRange: a ranged flush is the shard-local
// counterpart of GPF's planned-shutdown use: it makes its range crash-proof
// while leaving unrelated dirty lines alone.
func TestRFlushRangePersistsExactlyTheRange(t *testing.T) {
	for _, variant := range core.Variants {
		c := NewCluster([]MachineConfig{
			{Name: "host", Mem: core.NonVolatile, Heap: 0},
			{Name: "devA", Mem: core.NonVolatile, Heap: 8},
			{Name: "devB", Mem: core.NonVolatile, Heap: 8},
		}, Config{Variant: variant, Seed: 3})
		th, err := c.NewThread(0)
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.Alloc(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Alloc(2, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := core.LocID(0); i < 4; i++ {
			if err := th.LStore(a+i, core.Val(i)+10); err != nil {
				t.Fatal(err)
			}
			if err := th.LStore(b+i, core.Val(i)+20); err != nil {
				t.Fatal(err)
			}
		}
		// Flush only devA's range; devB's lines stay dirty in the host
		// cache (no background eviction in this cluster).
		if err := th.RFlushRange(a, 4); err != nil {
			t.Fatal(err)
		}
		snap := c.Snapshot()
		for i := core.LocID(0); i < 4; i++ {
			if !snap.NoCacheHolds(a + i) {
				t.Fatalf("%v: a+%d still cached after RFlushRange", variant, i)
			}
		}
		c.Crash(0)
		c.Crash(1)
		c.Crash(2)
		for i := core.LocID(0); i < 4; i++ {
			if got := c.PersistedValue(a + i); got != core.Val(i)+10 {
				t.Errorf("%v: flushed a+%d = %d after crash, want %d", variant, i, got, core.Val(i)+10)
			}
			if got := c.PersistedValue(b + i); got != 0 {
				t.Errorf("%v: unflushed b+%d = %d survived without a flush", variant, i, got)
			}
		}
	}
}

// TestRFlushRangeCostIsClusterSizeIndependent: the charged cost of a ranged
// flush depends on the range (lines, owning devices), not on how many
// machines the fabric has — the property that makes commits built on it
// shard-local.
func TestRFlushRangeCostIsClusterSizeIndependent(t *testing.T) {
	flushCost := func(machines int) float64 {
		cfg := []MachineConfig{{Name: "host", Mem: core.NonVolatile, Heap: 0}}
		for i := 1; i < machines; i++ {
			cfg = append(cfg, MachineConfig{Name: "dev", Mem: core.NonVolatile, Heap: 16})
		}
		c := NewCluster(cfg, Config{Latency: latency.NewModel()})
		th, err := c.NewThread(0)
		if err != nil {
			t.Fatal(err)
		}
		base, err := c.Alloc(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := core.LocID(0); i < 8; i++ {
			if err := th.LStore(base+i, 1); err != nil {
				t.Fatal(err)
			}
		}
		before := c.NowNS()
		if err := th.RFlushRange(base, 8); err != nil {
			t.Fatal(err)
		}
		return c.NowNS() - before
	}
	small, large := flushCost(2), flushCost(9)
	if small != large {
		t.Errorf("RFlushRange cost grew with cluster size: %d machines %.0f ns, %d machines %.0f ns",
			2, small, 9, large)
	}
}

// TestRFlushRangeCheaperThanPerLineRFlush: one ranged flush of n lines is
// charged less than n separate RFlushes of the same lines.
func TestRFlushRangeCheaperThanPerLineRFlush(t *testing.T) {
	const n = 8
	run := func(ranged bool) float64 {
		c := NewCluster([]MachineConfig{
			{Name: "host", Mem: core.NonVolatile, Heap: 0},
			{Name: "dev", Mem: core.NonVolatile, Heap: n},
		}, Config{Latency: latency.NewModel()})
		th, err := c.NewThread(0)
		if err != nil {
			t.Fatal(err)
		}
		base, err := c.Alloc(1, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := core.LocID(0); i < n; i++ {
			if err := th.LStore(base+i, 5); err != nil {
				t.Fatal(err)
			}
		}
		before := c.NowNS()
		if ranged {
			if err := th.RFlushRange(base, n); err != nil {
				t.Fatal(err)
			}
		} else {
			for i := core.LocID(0); i < n; i++ {
				if err := th.RFlush(base + i); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c.NowNS() - before
	}
	rangedNS, perLineNS := run(true), run(false)
	if rangedNS >= perLineNS {
		t.Errorf("RFlushRange of %d lines (%.0f ns) not below %d RFlushes (%.0f ns)",
			n, rangedNS, n, perLineNS)
	}
}

// TestRFlushRangeArguments covers the error paths: bad ranges and dead
// machines.
func TestRFlushRangeArguments(t *testing.T) {
	c := NewCluster([]MachineConfig{{Name: "m", Mem: core.NonVolatile, Heap: 4}}, Config{})
	th, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Alloc(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.RFlushRange(base, 0); err == nil {
		t.Error("zero-length range accepted")
	}
	if err := th.RFlushRange(base, 5); err == nil {
		t.Error("range past the heap accepted")
	}
	if err := th.RFlushRange(base, 4); err != nil {
		t.Errorf("full-heap range rejected: %v", err)
	}
	c.Crash(0)
	if err := th.RFlushRange(base, 1); !errors.Is(err, ErrCrashed) {
		t.Errorf("RFlushRange from a dead thread: %v", err)
	}
}

// TestRFlushRangeMatchesModelSemantics: after the runtime's ranged flush,
// the live model state satisfies exactly the LTS's enabling condition for
// the RFlushRange label — the runtime's "force the τ drains, then step" is
// conformant with core.Apply.
func TestRFlushRangeMatchesModelSemantics(t *testing.T) {
	c := NewCluster([]MachineConfig{
		{Name: "a", Mem: core.NonVolatile, Heap: 4},
		{Name: "b", Mem: core.NonVolatile, Heap: 4},
	}, Config{Seed: 7})
	ta, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	baseA, _ := c.Alloc(0, 4)
	baseB, _ := c.Alloc(1, 4)
	// Cross stores: each machine dirties the other's lines.
	for i := core.LocID(0); i < 4; i++ {
		if err := ta.LStore(baseB+i, core.Val(i)+1); err != nil {
			t.Fatal(err)
		}
		if err := tb.LStore(baseA+i, core.Val(i)+5); err != nil {
			t.Fatal(err)
		}
	}
	if err := ta.RFlushRange(baseB, 4); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if got := core.Apply(snap, core.RFlushRangeL(0, baseB, 4), core.Base); len(got) != 1 {
		t.Fatal("RFlushRange label not enabled on the post-flush state")
	}
	if err := c.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}
