package memsim

import (
	"errors"
	"math/rand"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/explore"
)

// TestRuntimeConformsToExplorer validates the runtime against the model
// checker: for a fixed concurrent program with crash injection, every
// outcome the runtime produces under randomized scheduling must be in the
// exhaustively-enumerated outcome set of the explorer. (The runtime drives
// threads step-by-step from a single goroutine so schedules are
// reproducible.)
func TestRuntimeConformsToExplorer(t *testing.T) {
	build := func() (*core.Topology, explore.Program) {
		topo := core.NewTopology()
		mA := topo.AddMachine("A", core.NonVolatile)
		mB := topo.AddMachine("B", core.NonVolatile)
		x := topo.AddLoc("x", mA)
		y := topo.AddLoc("y", mB)

		prog := explore.Program{
			Threads: []explore.Thread{
				{Machine: mA, NumRegs: 2, Instrs: []explore.Instr{
					{Kind: explore.IStore, Op: core.OpLStore, Loc: y, Src: explore.ConstOp(1)},
					{Kind: explore.ILoad, Loc: x, Dst: 0},
					{Kind: explore.ICAS, Op: core.OpLRMW, Loc: x, Old: 0, New: 2, Dst: 1},
				}},
				{Machine: mB, NumRegs: 2, Instrs: []explore.Instr{
					{Kind: explore.IStore, Op: core.OpMStore, Loc: x, Src: explore.ConstOp(3)},
					{Kind: explore.ILoad, Loc: y, Dst: 0},
					{Kind: explore.IFlush, Op: core.OpRFlush, Loc: y},
					{Kind: explore.ILoad, Loc: y, Dst: 1},
				}},
			},
			MaxCrashes: 1,
			Crashable:  []core.MachineID{mB},
		}
		return topo, prog
	}

	topo, prog := build()
	allowed := map[string]bool{}
	for _, o := range explore.Explore(topo, core.Base, prog) {
		allowed[o.Key()] = true
	}
	if len(allowed) == 0 {
		t.Fatal("explorer produced no outcomes")
	}

	// Drive the same program through the runtime under many randomized
	// schedules (thread interleaving, eviction churn, crash placement).
	for seed := int64(0); seed < 400; seed++ {
		outcome := runScheduled(t, prog, seed)
		if !allowed[outcome.Key()] {
			t.Fatalf("seed %d: runtime outcome %v not reachable in the model", seed, outcome)
		}
	}
}

// runScheduled executes prog on a fresh cluster with a random schedule
// derived from seed and returns the explorer-comparable outcome.
func runScheduled(t *testing.T, prog explore.Program, seed int64) explore.Outcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	// The cluster mirrors the program's topology: one heap word per
	// location, in declaration order.
	c := NewCluster([]MachineConfig{
		{Name: "A", Mem: core.NonVolatile, Heap: 1},
		{Name: "B", Mem: core.NonVolatile, Heap: 1},
	}, Config{Seed: seed})

	type threadState struct {
		th   *Thread
		pc   int
		regs []core.Val
		dead bool
	}
	states := make([]*threadState, len(prog.Threads))
	for i, pt := range prog.Threads {
		th, err := c.NewThread(pt.Machine)
		if err != nil {
			t.Fatal(err)
		}
		states[i] = &threadState{th: th, regs: make([]core.Val, pt.NumRegs)}
	}

	crashBudget := prog.MaxCrashes
	for {
		// Collect runnable threads.
		var runnable []int
		for i, st := range states {
			if !st.dead && st.pc < len(prog.Threads[i].Instrs) {
				runnable = append(runnable, i)
			}
		}
		if len(runnable) == 0 {
			break
		}
		// Random scheduler action: run a thread step, churn, or crash.
		switch k := rng.Intn(10); {
		case k == 0 && crashBudget > 0:
			m := prog.Crashable[rng.Intn(len(prog.Crashable))]
			c.Crash(m)
			c.Recover(m)
			crashBudget--
			for i, st := range states {
				if prog.Threads[i].Machine == m {
					st.dead = true
				}
			}
		case k <= 2:
			c.Churn(1)
		default:
			i := runnable[rng.Intn(len(runnable))]
			st := states[i]
			ins := prog.Threads[i].Instrs[st.pc]
			err := execInstr(st.th, ins, st.regs)
			if errors.Is(err, ErrCrashed) {
				st.dead = true
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			st.pc++
		}
	}

	out := explore.Outcome{
		Regs: make([][]core.Val, len(states)),
		Died: make([]bool, len(states)),
	}
	for i, st := range states {
		out.Died[i] = st.dead
		if !st.dead {
			out.Regs[i] = st.regs
		} else {
			out.Regs[i] = make([]core.Val, len(st.regs))
		}
	}
	return out
}

// execInstr runs one explorer instruction through the runtime thread API.
func execInstr(th *Thread, ins explore.Instr, regs []core.Val) error {
	switch ins.Kind {
	case explore.ILoad:
		v, err := th.Load(ins.Loc)
		if err != nil {
			return err
		}
		regs[ins.Dst] = v
		return nil
	case explore.IStore:
		v := ins.Src.Const
		if ins.Src.IsReg {
			v = regs[ins.Src.Reg]
		}
		switch ins.Op {
		case core.OpLStore:
			return th.LStore(ins.Loc, v)
		case core.OpRStore:
			return th.RStore(ins.Loc, v)
		default:
			return th.MStore(ins.Loc, v)
		}
	case explore.IFlush:
		if ins.Op == core.OpLFlush {
			return th.LFlush(ins.Loc)
		}
		return th.RFlush(ins.Loc)
	case explore.IGPF:
		return th.GPF()
	case explore.ICAS:
		ok, err := th.CAS(ins.Op, ins.Loc, ins.Old, ins.New)
		if err != nil {
			return err
		}
		if ok {
			regs[ins.Dst] = 1
		} else {
			regs[ins.Dst] = 0
		}
		return nil
	case explore.IFAA:
		prev, err := th.FAA(ins.Op, ins.Loc, ins.Delta)
		if err != nil {
			return err
		}
		regs[ins.Dst] = prev
		return nil
	}
	return nil
}

// TestRuntimeConformsUnderVariants repeats a smaller conformance check for
// the PSN and LWB variants.
func TestRuntimeConformsUnderVariants(t *testing.T) {
	for _, variant := range []core.Variant{core.PSN, core.LWB} {
		topo := core.NewTopology()
		mA := topo.AddMachine("A", core.NonVolatile)
		mB := topo.AddMachine("B", core.NonVolatile)
		x := topo.AddLoc("x", mA)
		_ = mB

		prog := explore.Program{
			Threads: []explore.Thread{
				{Machine: mB, NumRegs: 2, Instrs: []explore.Instr{
					{Kind: explore.IStore, Op: core.OpLStore, Loc: x, Src: explore.ConstOp(1)},
					{Kind: explore.ILoad, Loc: x, Dst: 0},
					{Kind: explore.ILoad, Loc: x, Dst: 1},
				}},
			},
			MaxCrashes: 1,
			Crashable:  []core.MachineID{mA},
		}
		allowed := map[string]bool{}
		for _, o := range explore.Explore(topo, variant, prog) {
			allowed[o.Key()] = true
		}

		for seed := int64(0); seed < 200; seed++ {
			rng := rand.New(rand.NewSource(seed))
			c := NewCluster([]MachineConfig{
				{Name: "A", Mem: core.NonVolatile, Heap: 1},
				{Name: "B", Mem: core.NonVolatile, Heap: 0},
			}, Config{Variant: variant, Seed: seed})
			th, err := c.NewThread(mB)
			if err != nil {
				t.Fatal(err)
			}
			regs := make([]core.Val, 2)
			crashLeft := 1
			for pc := 0; pc < len(prog.Threads[0].Instrs); {
				switch k := rng.Intn(8); {
				case k == 0 && crashLeft > 0:
					c.Crash(mA)
					c.Recover(mA)
					crashLeft--
				case k <= 2:
					c.Churn(1)
				default:
					if err := execInstr(th, prog.Threads[0].Instrs[pc], regs); err != nil {
						t.Fatal(err)
					}
					pc++
				}
			}
			out := explore.Outcome{Regs: [][]core.Val{regs}, Died: []bool{false}}
			if !allowed[out.Key()] {
				t.Fatalf("%v seed %d: runtime outcome %v not in model set", variant, seed, out)
			}
		}
	}
}
