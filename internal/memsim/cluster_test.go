package memsim

import (
	"errors"
	"sync"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/latency"
)

func pair(t *testing.T, cfg Config) (*Cluster, *Thread, *Thread) {
	t.Helper()
	c := NewCluster([]MachineConfig{
		{Name: "m1", Mem: core.NonVolatile, Heap: 64},
		{Name: "m2", Mem: core.NonVolatile, Heap: 64},
	}, cfg)
	t1, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	return c, t1, t2
}

func TestStoreLoadRoundTrip(t *testing.T) {
	c, t1, t2 := pair(t, Config{})
	x, err := c.Alloc(1, 1) // owned by m2
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.LStore(x, 7); err != nil {
		t.Fatal(err)
	}
	for _, th := range []*Thread{t1, t2} {
		v, err := th.Load(x)
		if err != nil || v != 7 {
			t.Errorf("load = %d, %v; want 7", v, err)
		}
	}
	if err := c.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestLStoreLostOnOwnerCrash(t *testing.T) {
	c, t1, _ := pair(t, Config{})
	x, _ := c.Alloc(1, 1) // owned by m2
	if err := t1.LStore(x, 9); err != nil {
		t.Fatal(err)
	}
	// Push the value into m2's cache (but not memory), then crash m2.
	if err := t1.LFlush(x); err != nil {
		t.Fatal(err)
	}
	c.Crash(1)
	c.Recover(1)
	if v, _ := t1.Load(x); v != 0 {
		t.Errorf("value survived in %v; want lost (0), got %d", c.Snapshot(), v)
	}
}

func TestRFlushPersists(t *testing.T) {
	c, t1, _ := pair(t, Config{})
	x, _ := c.Alloc(1, 1)
	if err := t1.LStore(x, 9); err != nil {
		t.Fatal(err)
	}
	if err := t1.RFlush(x); err != nil {
		t.Fatal(err)
	}
	if got := c.PersistedValue(x); got != 9 {
		t.Fatalf("persisted value = %d, want 9", got)
	}
	c.Crash(1)
	c.Recover(1)
	if v, _ := t1.Load(x); v != 9 {
		t.Errorf("flushed value lost: got %d", v)
	}
}

func TestMStorePersistsImmediately(t *testing.T) {
	c, t1, _ := pair(t, Config{})
	x, _ := c.Alloc(1, 1)
	if err := t1.MStore(x, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.PersistedValue(x); got != 5 {
		t.Errorf("MStore not persistent: %d", got)
	}
}

func TestVolatileMemoryResetsOnCrash(t *testing.T) {
	c := NewCluster([]MachineConfig{
		{Name: "nvm", Mem: core.NonVolatile, Heap: 4},
		{Name: "vol", Mem: core.Volatile, Heap: 4},
	}, Config{})
	th, _ := c.NewThread(0)
	a, _ := c.Alloc(0, 1)
	b, _ := c.Alloc(1, 1)
	if err := th.MStore(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := th.MStore(b, 2); err != nil {
		t.Fatal(err)
	}
	c.Crash(1)
	c.Recover(1)
	if v := c.PersistedValue(a); v != 1 {
		t.Errorf("NVM value lost: %d", v)
	}
	if v := c.PersistedValue(b); v != 0 {
		t.Errorf("volatile value survived its machine's crash: %d", v)
	}
}

func TestCrashKillsThreads(t *testing.T) {
	c, t1, t2 := pair(t, Config{})
	x, _ := c.Alloc(0, 1)
	c.Crash(0)
	if err := t1.LStore(x, 1); !errors.Is(err, ErrCrashed) {
		t.Errorf("op on crashed machine: err = %v, want ErrCrashed", err)
	}
	// Peers keep running.
	if _, err := t2.Load(x); err != nil {
		t.Errorf("peer thread affected by crash: %v", err)
	}
	// A thread created before recovery fails; after recovery it works.
	if _, err := c.NewThread(0); err == nil {
		t.Errorf("NewThread on downed machine succeeded")
	}
	c.Recover(0)
	t1b, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1b.LStore(x, 1); err != nil {
		t.Errorf("recovered thread: %v", err)
	}
	// The old thread stays dead even after recovery (fresh identities only).
	if err := t1.LStore(x, 1); !errors.Is(err, ErrCrashed) {
		t.Errorf("stale thread resurrected: %v", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	c := NewCluster([]MachineConfig{{Name: "m", Mem: core.NonVolatile, Heap: 3}}, Config{})
	if _, err := c.Alloc(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(0, 2); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("over-allocation: err = %v", err)
	}
	if _, err := c.Alloc(0, 1); err != nil {
		t.Errorf("remaining capacity unusable: %v", err)
	}
}

func TestConcurrentFAA(t *testing.T) {
	c, _, _ := pair(t, Config{EvictEvery: 3, Seed: 42})
	x, _ := c.Alloc(0, 1)
	const perThread = 200
	var wg sync.WaitGroup
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m core.MachineID) {
			defer wg.Done()
			th, err := c.NewThread(m)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perThread; i++ {
				if _, err := th.FAA(core.OpLRMW, x, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(core.MachineID(m))
	}
	wg.Wait()
	th, _ := c.NewThread(0)
	v, err := th.Load(x)
	if err != nil || v != 2*perThread {
		t.Errorf("counter = %d, %v; want %d", v, err, 2*perThread)
	}
	if err := c.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestConcurrentCASMutualExclusion(t *testing.T) {
	c, _, _ := pair(t, Config{EvictEvery: 2, Seed: 7})
	x, _ := c.Alloc(1, 1)
	wins := make(chan int, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th, err := c.NewThread(core.MachineID(i % 2))
			if err != nil {
				t.Error(err)
				return
			}
			ok, err := th.CAS(core.OpLRMW, x, 0, core.Val(i+1))
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				wins <- i
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Errorf("%d CAS winners, want exactly 1", n)
	}
}

func TestChurnPreservesInvariantAndValues(t *testing.T) {
	c, t1, t2 := pair(t, Config{Seed: 3})
	x, _ := c.Alloc(0, 1)
	y, _ := c.Alloc(1, 1)
	if err := t1.LStore(x, 11); err != nil {
		t.Fatal(err)
	}
	if err := t2.LStore(y, 22); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Churn(1)
		if err := c.CheckInvariant(); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
		if v, _ := t1.Load(x); v != 11 {
			t.Fatalf("churn %d: x = %d", i, v)
		}
		if v, _ := t2.Load(y); v != 22 {
			t.Fatalf("churn %d: y = %d", i, v)
		}
	}
}

func TestSimulatedClockChargesRemotePremium(t *testing.T) {
	mdl := latency.NewModel()
	c := NewCluster([]MachineConfig{
		{Name: "m1", Mem: core.NonVolatile, Heap: 8},
		{Name: "m2", Mem: core.NonVolatile, Heap: 8},
	}, Config{Latency: mdl})
	th, _ := c.NewThread(0)
	local, _ := c.Alloc(0, 1)
	remote, _ := c.Alloc(1, 1)

	start := c.NowNS()
	if err := th.MStore(local, 1); err != nil {
		t.Fatal(err)
	}
	localCost := c.NowNS() - start

	start = c.NowNS()
	if err := th.MStore(remote, 1); err != nil {
		t.Fatal(err)
	}
	remoteCost := c.NowNS() - start

	if localCost <= 0 || remoteCost <= localCost {
		t.Errorf("MStore costs: local %.0f, remote %.0f; want 0 < local < remote", localCost, remoteCost)
	}
	ratio := remoteCost / localCost
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("remote/local MStore ratio %.2f outside plausible band", ratio)
	}
}

func TestLWBRuntimeLoadDrains(t *testing.T) {
	c := NewCluster([]MachineConfig{
		{Name: "m1", Mem: core.NonVolatile, Heap: 4},
		{Name: "m2", Mem: core.NonVolatile, Heap: 4},
	}, Config{Variant: core.LWB})
	t1, _ := c.NewThread(0)
	t2, _ := c.NewThread(1)
	x, _ := c.Alloc(0, 1)
	if err := t2.LStore(x, 6); err != nil { // line sits in m2's cache
		t.Fatal(err)
	}
	v, err := t1.Load(x) // LWB: must drain to memory first
	if err != nil || v != 6 {
		t.Fatalf("LWB load = %d, %v", v, err)
	}
	if got := c.PersistedValue(x); got != 6 {
		t.Errorf("LWB load did not write back: persisted = %d", got)
	}
}

func TestFailedCASActsAsRead(t *testing.T) {
	c, t1, _ := pair(t, Config{})
	x, _ := c.Alloc(1, 1)
	if err := t1.MStore(x, 3); err != nil {
		t.Fatal(err)
	}
	ok, err := t1.CAS(core.OpLRMW, x, 7, 8)
	if err != nil || ok {
		t.Fatalf("CAS should fail cleanly: ok=%v err=%v", ok, err)
	}
	if v, _ := t1.Load(x); v != 3 {
		t.Errorf("failed CAS changed the value: %d", v)
	}
}
