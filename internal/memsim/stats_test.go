package memsim

import (
	"testing"

	"cxl0/internal/core"
)

// TestStatsCountPrimitives: the per-primitive counters reflect exactly the
// operations performed.
func TestStatsCountPrimitives(t *testing.T) {
	c := NewCluster([]MachineConfig{
		{Name: "a", Mem: core.NonVolatile, Heap: 8},
		{Name: "b", Mem: core.NonVolatile, Heap: 8},
	}, Config{})
	th, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := c.Alloc(1, 1)
	mustOK := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustOK(th.LStore(x, 1))
	mustOK(th.LStore(x, 2))
	mustOK(th.RFlush(x))
	mustOK(th.RFlushRange(x, 1))
	if _, err := th.Load(x); err != nil {
		t.Fatal(err)
	}
	if _, err := th.FAA(core.OpLRMW, x, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := th.CAS(core.OpMRMW, x, 3, 4); err != nil {
		t.Fatal(err)
	}
	mustOK(th.MStore(x, 9))

	stats := c.Stats()
	want := map[core.Op]uint64{
		core.OpLStore:      2,
		core.OpRFlush:      1,
		core.OpRFlushRange: 1,
		core.OpLoad:        1,
		core.OpLRMW:        1,
		core.OpMRMW:        1,
		core.OpMStore:      1,
	}
	for op, n := range want { //cxl0:order-insensitive — independent per-op asserts
		if stats[op] != n {
			t.Errorf("stats[%v] = %d, want %d (all: %v)", op, stats[op], n, stats)
		}
	}
	// A failed CAS counts as a load.
	if _, err := th.CAS(core.OpLRMW, x, 12345, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats()[core.OpLoad]; got != 2 {
		t.Errorf("failed CAS not counted as a read: loads = %d", got)
	}
}
