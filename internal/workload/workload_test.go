package workload

import (
	"testing"

	"cxl0/internal/kv"
)

func TestSpecsValidate(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		spec, err := YCSB(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("workload %s: %v", name, err)
		}
	}
	if _, err := YCSB("Z"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec, _ := YCSB("A")
	spec.Keys = 100
	a, b := NewGenerator(spec, 42), NewGenerator(spec, 42)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("op %d diverged between equal seeds", i)
		}
	}
	c := NewGenerator(spec, 43)
	same := true
	for i := 0; i < 50; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorMixAndBounds(t *testing.T) {
	spec, _ := YCSB("E")
	spec.Keys = 50
	g := NewGenerator(spec, 7)
	scans, inserts := 0, 0
	for i := 0; i < 1000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpScan:
			scans++
			if op.ScanLen < 1 || op.ScanLen > spec.MaxScanLen {
				t.Fatalf("scan length %d out of [1,%d]", op.ScanLen, spec.MaxScanLen)
			}
		case OpInsert:
			inserts++
			if op.Value < 1 {
				t.Fatalf("insert value %d < 1", op.Value)
			}
		default:
			t.Fatalf("workload E generated %v", op.Kind)
		}
		if op.Key < 0 {
			t.Fatalf("negative key %d", op.Key)
		}
	}
	if scans < 900 || inserts < 10 {
		t.Fatalf("mix off: %d scans, %d inserts in 1000 ops", scans, inserts)
	}
}

func TestZipfianSkew(t *testing.T) {
	spec, _ := YCSB("B")
	spec.Keys = 1000
	g := NewGenerator(spec, 3)
	hot := 0
	for i := 0; i < 2000; i++ {
		if op := g.Next(); op.Key < 10 {
			hot++
		}
	}
	if hot < 600 {
		t.Fatalf("zipfian: only %d/2000 ops hit the 10 hottest keys", hot)
	}
}

func TestRunSmoke(t *testing.T) {
	spec, _ := YCSB("A")
	spec.Keys = 60
	res, err := Run(Options{
		Spec:       spec,
		Store:      kv.Config{Shards: 2, Strategy: kv.GroupCommit, Batch: 8, EvictEvery: 4},
		Ops:        300,
		CrashEvery: 120,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads+res.Updates+res.Inserts+res.Scans != 300 {
		t.Fatalf("op counts sum to %d, want 300", res.Reads+res.Updates+res.Inserts+res.Scans)
	}
	if res.SimNS <= 0 || res.ThroughputOpsPerSec <= 0 {
		t.Fatalf("no simulated time recorded: %+v", res)
	}
	if res.P50NS <= 0 || res.P99NS < res.P50NS || res.MaxNS < res.P99NS {
		t.Fatalf("percentiles inconsistent: p50=%.0f p99=%.0f max=%.0f", res.P50NS, res.P99NS, res.MaxNS)
	}
	if res.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 (ops 120 and 240)", res.Recoveries)
	}
	if res.RecoveryMeanNS <= 0 {
		t.Fatal("no recovery time recorded")
	}
}

func TestRunReproducible(t *testing.T) {
	spec, _ := YCSB("B")
	spec.Keys = 40
	opts := Options{
		Spec:  spec,
		Store: kv.Config{Shards: 2, Strategy: kv.StoreFlush, EvictEvery: 3},
		Ops:   200,
		Seed:  5,
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same options, different results:\n%+v\n%+v", a, b)
	}
}

// TestRunRebalanced: under the zipfian update-heavy mix, enabling the
// rebalance knob must actually migrate buckets and lower the max/mean
// busy-share skew against the identical static run.
func TestRunRebalanced(t *testing.T) {
	spec, _ := YCSB("A")
	spec.Keys = 120
	run := func(rebalanceEvery int) Result {
		res, err := Run(Options{
			Spec:           spec,
			Store:          kv.Config{Shards: 4, Strategy: kv.RangedCommit, Batch: 8},
			Ops:            1200,
			RebalanceEvery: rebalanceEvery,
			Seed:           6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(0)
	reb := run(150)
	if static.MaxMeanBusy <= 1 {
		t.Fatalf("static zipfian run reports no skew: max/mean = %.2f", static.MaxMeanBusy)
	}
	if static.Migrations != 0 || reb.RebalanceEvery != 150 {
		t.Fatalf("knob bookkeeping off: static %d migrations, rebalanced echoes %d",
			static.Migrations, reb.RebalanceEvery)
	}
	if reb.Migrations == 0 || reb.MigratedRecords == 0 {
		t.Fatalf("rebalanced run migrated nothing: %+v", reb)
	}
	if reb.MaxMeanBusy >= static.MaxMeanBusy {
		t.Fatalf("rebalancing did not reduce skew: %.2f static, %.2f rebalanced",
			static.MaxMeanBusy, reb.MaxMeanBusy)
	}
}

// TestRunPooled drives the runner through a pooled Router: the clusters
// dimension must echo into the result, crash churn must rotate across
// every cluster's shards, and the run must stay deterministic.
func TestRunPooled(t *testing.T) {
	spec, _ := YCSB("A")
	spec.Keys = 60
	opts := Options{
		Spec:       spec,
		Store:      kv.Config{Shards: 2, Strategy: kv.RangedCommit, Batch: 8, EvictEvery: 4},
		Clusters:   2,
		Ops:        300,
		CrashEvery: 60,
		Seed:       8,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 || res.Shards != 2 {
		t.Fatalf("pool shape not echoed: clusters=%d shards=%d", res.Clusters, res.Shards)
	}
	// Crashes rotate over all 4 global shards: ops 60..240 give 4
	// recoveries, one per shard across both clusters.
	if res.Recoveries != 4 {
		t.Fatalf("recoveries = %d, want 4 across the pool", res.Recoveries)
	}
	if res.SimNS <= 0 || res.ThroughputOpsPerSec <= 0 || res.P99NS < res.P50NS {
		t.Fatalf("implausible pooled result: %+v", res)
	}
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res != again {
		t.Fatalf("pooled run not reproducible:\n%+v\n%+v", res, again)
	}
}

// TestPoolingScalesThroughput is the capacity-scaling claim the pooled
// bench rows record: the same traffic over 4 pooled clusters beats one
// cluster's makespan (clusters share nothing, so they run in parallel).
func TestPoolingScalesThroughput(t *testing.T) {
	spec, _ := YCSB("A")
	spec.Keys = 80
	run := func(clusters int) Result {
		res, err := Run(Options{
			Spec:     spec,
			Store:    kv.Config{Shards: 2, Strategy: kv.RangedCommit, Batch: 8},
			Clusters: clusters,
			Ops:      400,
			Seed:     4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if four.ThroughputOpsPerSec <= one.ThroughputOpsPerSec {
		t.Fatalf("4 clusters %.0f ops/s not above 1 cluster %.0f ops/s",
			four.ThroughputOpsPerSec, one.ThroughputOpsPerSec)
	}
}

func TestGroupCommitBeatsPerOpGPF(t *testing.T) {
	spec, _ := YCSB("A")
	spec.Keys = 60
	run := func(s kv.Strategy) Result {
		res, err := Run(Options{
			Spec:  spec,
			Store: kv.Config{Shards: 2, Strategy: s, Batch: 16},
			Ops:   400,
			Seed:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gpf := run(kv.GPFEach)
	group := run(kv.GroupCommit)
	if group.ThroughputOpsPerSec <= gpf.ThroughputOpsPerSec {
		t.Fatalf("group commit %.0f ops/s not above per-op GPF %.0f ops/s",
			group.ThroughputOpsPerSec, gpf.ThroughputOpsPerSec)
	}
}

// TestRangedCommitScalesWhereGroupCommitStalls: under a write-heavy
// workload, GroupCommit's per-op commit cost grows with shard count (every
// batch's GPF is charged fabric-wide) while RangedCommit's stays flat, so
// at high shard counts ranged commits win the makespan.
func TestRangedCommitScalesWhereGroupCommitStalls(t *testing.T) {
	spec, _ := YCSB("A")
	spec.Keys = 60
	run := func(s kv.Strategy, shards int) Result {
		res, err := Run(Options{
			Spec:  spec,
			Store: kv.Config{Shards: shards, Strategy: s, Batch: 8},
			Ops:   600,
			Seed:  3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	perOp := func(r Result) float64 { return r.TotalCostNS / float64(r.Ops) }
	group2, group12 := run(kv.GroupCommit, 2), run(kv.GroupCommit, 12)
	ranged2, ranged12 := run(kv.RangedCommit, 2), run(kv.RangedCommit, 12)
	if perOp(ranged12) > 1.25*perOp(ranged2) {
		t.Errorf("ranged per-op cost grew with shards: %.0f -> %.0f sim-ns",
			perOp(ranged2), perOp(ranged12))
	}
	if perOp(group12) < 1.5*perOp(group2) {
		t.Errorf("group per-op cost did not grow with shards: %.0f -> %.0f sim-ns",
			perOp(group2), perOp(group12))
	}
	if ranged12.ThroughputOpsPerSec <= group12.ThroughputOpsPerSec {
		t.Errorf("at 12 shards ranged commit %.0f ops/s not above group commit %.0f ops/s",
			ranged12.ThroughputOpsPerSec, group12.ThroughputOpsPerSec)
	}
}

func TestShardingScalesWriteThroughput(t *testing.T) {
	spec, _ := YCSB("A")
	spec.Keys = 80
	run := func(shards int) Result {
		res, err := Run(Options{
			Spec:  spec,
			Store: kv.Config{Shards: shards, Strategy: kv.MStoreEach},
			Ops:   400,
			Seed:  4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if four.ThroughputOpsPerSec <= one.ThroughputOpsPerSec {
		t.Fatalf("4 shards %.0f ops/s not above 1 shard %.0f ops/s",
			four.ThroughputOpsPerSec, one.ThroughputOpsPerSec)
	}
}
