// Package workload drives any kv.DB — a single cluster-backed kv.Store
// or a pool.Router over several clusters (Options.Clusters) — with
// YCSB-style synthetic traffic and reports machine-readable results:
// simulated throughput, latency percentiles from the latency model, and
// crash-recovery times under an injected crash-churn schedule.
//
// Generators are deterministic: the same Spec and seed produce the same
// operation stream, so benchmark results are reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"
)

// Dist selects the key distribution of a workload.
type Dist int

const (
	// Uniform draws keys uniformly from the keyspace.
	Uniform Dist = iota
	// Zipfian draws keys with YCSB's skew: a few hot keys dominate.
	Zipfian
	// Latest skews reads towards recently inserted keys (YCSB-D).
	Latest
)

var distNames = [...]string{"uniform", "zipfian", "latest"}

func (d Dist) String() string {
	if d >= 0 && int(d) < len(distNames) {
		return distNames[d]
	}
	return fmt.Sprintf("Dist(%d)", int(d))
}

// OpKind is one operation type.
type OpKind int

const (
	// OpRead is a point lookup.
	OpRead OpKind = iota
	// OpUpdate overwrites an existing key.
	OpUpdate
	// OpInsert writes a fresh key.
	OpInsert
	// OpScan is a short range scan.
	OpScan
)

var opNames = [...]string{"read", "update", "insert", "scan"}

func (k OpKind) String() string {
	if k >= 0 && int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     int64
	Value   int64
	ScanLen int
}

// Spec describes a workload mix, YCSB-style.
type Spec struct {
	// Name labels the workload in reports.
	Name string `json:"name"`
	// ReadPct, UpdatePct, InsertPct and ScanPct are the operation mix in
	// percent; they must sum to 100.
	ReadPct   int `json:"read_pct"`
	UpdatePct int `json:"update_pct"`
	InsertPct int `json:"insert_pct"`
	ScanPct   int `json:"scan_pct"`
	// Dist is the key distribution for reads and updates.
	Dist Dist `json:"-"`
	// Keys is the preloaded keyspace size.
	Keys int `json:"keys"`
	// MaxScanLen bounds scan lengths (uniform in [1, MaxScanLen]).
	MaxScanLen int `json:"max_scan_len,omitempty"`
}

// YCSB returns the named standard workload:
//
//	A — update-heavy: 50% reads, 50% updates, zipfian.
//	B — read-mostly: 95% reads, 5% updates, zipfian.
//	C — read-only: 100% reads, zipfian.
//	D — read-latest: 95% reads, 5% inserts, latest distribution.
//	E — scan-heavy: 95% short scans, 5% inserts, zipfian.
func YCSB(name string) (Spec, error) {
	switch name {
	case "A", "a":
		return Spec{Name: "A", ReadPct: 50, UpdatePct: 50, Dist: Zipfian, Keys: 1000}, nil
	case "B", "b":
		return Spec{Name: "B", ReadPct: 95, UpdatePct: 5, Dist: Zipfian, Keys: 1000}, nil
	case "C", "c":
		return Spec{Name: "C", ReadPct: 100, Dist: Zipfian, Keys: 1000}, nil
	case "D", "d":
		return Spec{Name: "D", ReadPct: 95, InsertPct: 5, Dist: Latest, Keys: 1000}, nil
	case "E", "e":
		return Spec{Name: "E", ScanPct: 95, InsertPct: 5, Dist: Zipfian, Keys: 1000, MaxScanLen: 16}, nil
	}
	return Spec{}, fmt.Errorf("workload: unknown YCSB workload %q (want A, B, C, D or E)", name)
}

// Validate checks the mix sums to 100 and the keyspace is positive.
func (s Spec) Validate() error {
	if s.ReadPct+s.UpdatePct+s.InsertPct+s.ScanPct != 100 {
		return fmt.Errorf("workload %s: operation mix sums to %d, want 100",
			s.Name, s.ReadPct+s.UpdatePct+s.InsertPct+s.ScanPct)
	}
	if s.Keys <= 0 {
		return fmt.Errorf("workload %s: keyspace must be positive", s.Name)
	}
	if s.ScanPct > 0 && s.MaxScanLen <= 0 {
		return fmt.Errorf("workload %s: scans require MaxScanLen > 0", s.Name)
	}
	return nil
}

// Generator produces a deterministic operation stream for one Spec.
type Generator struct {
	spec     Spec
	rng      *rand.Rand
	zipf     *rand.Zipf
	inserted int64 // keys [0, inserted) exist
}

// NewGenerator seeds a generator. The keyspace [0, spec.Keys) is assumed
// preloaded (see Runner).
func NewGenerator(spec Spec, seed int64) *Generator {
	g := &Generator{spec: spec, rng: rand.New(rand.NewSource(seed)), inserted: int64(spec.Keys)}
	g.reskew()
	return g
}

// reskew rebuilds the zipf sampler over the current keyspace so keys
// inserted during the run join the selectable population. rand.NewZipf
// only stores parameters (it draws nothing), so rebuilding keeps the
// stream deterministic. s=1.1, v=1 approximates YCSB's 0.99 zipfian
// constant within rand.Zipf's s>1 requirement.
func (g *Generator) reskew() {
	if g.spec.Dist == Zipfian || g.spec.Dist == Latest {
		g.zipf = rand.NewZipf(g.rng, 1.1, 1, uint64(g.inserted-1))
	}
}

// key draws a key from the existing keyspace per the spec's distribution.
func (g *Generator) key() int64 {
	switch g.spec.Dist {
	case Zipfian:
		return int64(g.zipf.Uint64())
	case Latest:
		return g.inserted - 1 - int64(g.zipf.Uint64())
	default:
		return g.rng.Int63n(g.inserted)
	}
}

// value draws a positive payload value.
func (g *Generator) value() int64 { return 1 + g.rng.Int63n(1<<30) }

// Next returns the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Intn(100)
	switch {
	case p < g.spec.ReadPct:
		return Op{Kind: OpRead, Key: g.key()}
	case p < g.spec.ReadPct+g.spec.UpdatePct:
		return Op{Kind: OpUpdate, Key: g.key(), Value: g.value()}
	case p < g.spec.ReadPct+g.spec.UpdatePct+g.spec.InsertPct:
		k := g.inserted
		g.inserted++
		g.reskew()
		return Op{Kind: OpInsert, Key: k, Value: g.value()}
	default:
		return Op{Kind: OpScan, Key: g.key(), ScanLen: 1 + g.rng.Intn(g.spec.MaxScanLen)}
	}
}
