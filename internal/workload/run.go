package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cxl0/internal/core"
	"cxl0/internal/faults"
	"cxl0/internal/kv"
	"cxl0/internal/pool"
)

// Options configures one benchmark run: a workload spec driving one
// service configuration, with an optional crash-churn schedule. The
// runner drives the kv.DB interface only: a single cluster-backed store,
// or — with Clusters > 1 — a pool.Router over several.
type Options struct {
	// Spec is the workload mix.
	Spec Spec
	// Store is the per-cluster store configuration. If Store.Capacity is
	// zero the runner sizes each shard's log to fit the worst case
	// (preload plus every operation being a write).
	Store kv.Config
	// Clusters pools several independent clusters behind a router
	// (0 or 1 = a single cluster; the run then matches the pre-pooling
	// harness bit for bit).
	Clusters int
	// Ops is the number of measured operations (after preload).
	Ops int
	// CrashEvery injects one crash+recover cycle (rotating over shards)
	// every CrashEvery measured operations; 0 disables crash churn. The
	// rotation skips shards a concurrent Campaign already holds down or
	// partitioned — injecting into a down shard would double-count
	// recovery churn.
	CrashEvery int
	// Campaign is a scripted fault schedule driven alongside the
	// operation stream (see internal/faults); nil runs fault-free (or
	// with only the uniform CrashEvery churn). Under a campaign,
	// operations denied by an injected fault are tolerated and counted
	// (Result.FailedOps and friends) instead of aborting the run, and
	// the run always ends healthy: remaining events fire, partitions
	// heal and down shards recover — in schedule order — before the
	// final Sync.
	Campaign *faults.Campaign
	// RebalanceEvery calls the store's load-aware rebalancer every
	// RebalanceEvery measured operations; 0 keeps the static shard map.
	RebalanceEvery int
	// CacheSweep marks the run as part of the bench's read-cache on/off
	// sweep: the Result carries the cache counters and the mean served-read
	// latency (the read_cache headline's inputs) on top of the usual
	// fields. The cache itself is configured through Store.ReadCache /
	// Store.Prefetch — a CacheSweep run with Store.ReadCache == 0 is the
	// sweep's cache-off baseline.
	CacheSweep bool
	// Seed drives the operation stream.
	Seed int64
}

// Result is one run's machine-readable outcome. Simulated times come from
// the cluster's latency-model clock, not the host's.
type Result struct {
	Workload string `json:"workload"`
	Strategy string `json:"strategy"`
	// Shards is the per-cluster shard count and Clusters the pooled
	// cluster count (1 = a single cluster); the service's total shard
	// count is their product.
	Shards   int    `json:"shards"`
	Clusters int    `json:"clusters"`
	Variant  string `json:"variant"`
	Batch    int    `json:"batch,omitempty"`
	Colocate bool   `json:"colocate,omitempty"`
	Seed     int64  `json:"seed"`
	// Capacity echoes an explicitly constrained per-shard log capacity
	// (0 = the runner's worst-case auto-sizing) and CompactAtFill the
	// auto-compaction threshold, for capacity-pressure rows.
	Capacity      int     `json:"capacity,omitempty"`
	CompactAtFill float64 `json:"compact_at_fill,omitempty"`

	Ops     int `json:"ops"`
	Reads   int `json:"reads"`
	Updates int `json:"updates"`
	Inserts int `json:"inserts"`
	Scans   int `json:"scans"`

	// SimNS is the service makespan: the busiest shard's simulated time
	// (shards run on distinct machines in parallel; global flushes are
	// charged to every shard).
	SimNS float64 `json:"sim_ns"`
	// TotalCostNS is the summed simulated cost across shards — what a
	// single unsharded machine would have paid.
	TotalCostNS float64 `json:"total_cost_ns"`
	// ThroughputOpsPerSec is Ops divided by the simulated makespan.
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	// GoodputOpsPerSec counts only served operations: faults deny
	// operations at zero simulated cost, so under a campaign the plain
	// throughput ratio would reward outages (fewer ops served, same
	// denominator ops count, smaller makespan). Goodput excludes
	// FailedOps and UnavailableOps; it equals ThroughputOpsPerSec on a
	// fault-free run and is the campaign headline's retention metric.
	GoodputOpsPerSec float64 `json:"goodput_ops_per_sec"`

	// Latency percentiles over per-operation ack latencies, in simulated
	// nanoseconds (writes: submit to durable-ack; reads/scans: call
	// duration measured as consumed simulated time). A pooled fan-out
	// read's legs run on independent clusters in parallel, so its sample
	// is the leg makespan — the slowest cluster's clock delta — matching
	// SimNS's parallel accounting. The summed-legs figure (the serial
	// upper bound the pre-fix harness reported as the percentile itself)
	// is kept in the Serial* fields on pooled rows.
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	P99NS float64 `json:"p99_ns"`
	MaxNS float64 `json:"max_ns"`
	// Serial* are the same latency population with each pooled fan-out
	// read sampled as its summed per-cluster cost instead of the leg
	// makespan — what one cluster would have paid serially. Emitted only
	// on pooled rows (Clusters > 1); on a single cluster the two
	// accountings coincide.
	SerialP50NS float64 `json:"serial_p50_ns,omitempty"`
	SerialP95NS float64 `json:"serial_p95_ns,omitempty"`
	SerialP99NS float64 `json:"serial_p99_ns,omitempty"`

	// Load balance. MaxMeanBusy is the busiest shard's busy time over the
	// mean — the skew metric: the makespan exceeds a perfectly balanced
	// service's by this factor. RebalanceEvery echoes the knob (0 =
	// static shard map); Migrations and MigratedRecords count the
	// rebalancer's bucket moves and the live records they copied.
	MaxMeanBusy     float64 `json:"max_mean_busy"`
	RebalanceEvery  int     `json:"rebalance_every"`
	Migrations      int     `json:"migrations"`
	MigratedRecords int     `json:"migrated_records"`

	// Log compaction. Compactions counts committed shard compactions and
	// ReclaimedSlots the dead records they retired; CompactionMeanNS is
	// the mean simulated compaction duration (charged as churn, like
	// recovery time).
	Compactions      int     `json:"compactions"`
	ReclaimedSlots   int     `json:"reclaimed_slots"`
	CompactionMeanNS float64 `json:"compaction_mean_ns,omitempty"`

	// Crash churn.
	Recoveries     int     `json:"recoveries"`
	RecoveryMeanNS float64 `json:"recovery_mean_ns,omitempty"`
	RecoveryMaxNS  float64 `json:"recovery_max_ns,omitempty"`
	RecordsLost    int     `json:"records_lost,omitempty"`
	DroppedPending int     `json:"dropped_pending,omitempty"`

	// Fault campaign. Campaign names the scripted schedule ("" = none;
	// the uniform CrashEvery knob is not a campaign). The fields are
	// always emitted — zero on campaign-free rows — so every row carries
	// the same key set. Under a campaign, operations denied by an
	// injected fault count here instead of aborting the run: FailedOps
	// hit crashed shards (kv.ErrShardDown), UnavailableOps hit
	// partitioned ones (kv.ErrUnavailable), and PartialResults counts
	// fan-out reads that degraded to partial results and still returned
	// the reachable shards' data.
	Campaign       string `json:"campaign"`
	FailedOps      int    `json:"failed_ops"`
	UnavailableOps int    `json:"unavailable_ops"`
	PartialResults int    `json:"partial_results"`
	// Campaign recovery distribution, on the simulated clock: Outage*
	// are crash-to-recovered windows, Recovery* the recovery work
	// itself, PartitionP95NS the partition-to-heal window.
	OutageP50NS    float64 `json:"outage_p50_ns"`
	OutageP95NS    float64 `json:"outage_p95_ns"`
	RecoveryP50NS  float64 `json:"recovery_p50_ns"`
	RecoveryP95NS  float64 `json:"recovery_p95_ns"`
	PartitionP95NS float64 `json:"partition_p95_ns"`

	// Commits is the number of committed batches (batched strategies only).
	Commits uint64 `json:"commits,omitempty"`

	// Commit pipeline (kv.Config.PipelineDepth > 1 under a batched
	// strategy). Every field is omitted at depth 1, so pipeline-off rows
	// keep the pre-pipeline schema byte for byte. The Ack percentiles
	// are acknowledged writes' submit-to-durable-ack latencies
	// (including flush-lane queue wait) and the Issue percentiles the
	// same writes' submit-to-return latencies; the gap between the two
	// distributions is the commit cost the pipeline moved off the
	// client's critical path.
	PipelineDepth int     `json:"pipeline_depth,omitempty"`
	AckP50NS      float64 `json:"ack_p50_ns,omitempty"`
	AckP95NS      float64 `json:"ack_p95_ns,omitempty"`
	AckP99NS      float64 `json:"ack_p99_ns,omitempty"`
	IssueP50NS    float64 `json:"issue_p50_ns,omitempty"`
	IssueP95NS    float64 `json:"issue_p95_ns,omitempty"`
	IssueP99NS    float64 `json:"issue_p99_ns,omitempty"`

	// Read-cache sweep (Options.CacheSweep; see docs/caching.md). Every
	// field is omitted on non-sweep rows, so the pre-cache schema is
	// untouched. CacheSweep marks the row; ReadCache echoes the cache
	// capacity (0 = the sweep's cache-off baseline); CacheHitRate is
	// CacheHits/(CacheHits+CacheMisses) over served reads that resolved a
	// value; ReadMeanNS is the mean served-read latency (point reads and
	// scans) the read_cache headline divides to report the reduction.
	CacheSweep       bool    `json:"cache_sweep,omitempty"`
	ReadCache        int     `json:"read_cache,omitempty"`
	CacheHits        uint64  `json:"cache_hits,omitempty"`
	CacheMisses      uint64  `json:"cache_misses,omitempty"`
	SpeculativeFills uint64  `json:"speculative_fills,omitempty"`
	CacheHitRate     float64 `json:"cache_hit_rate,omitempty"`
	ReadMeanNS       float64 `json:"read_mean_ns,omitempty"`
}

// Run executes one workload against one service configuration, driving
// it purely through the kv.DB interface.
func Run(o Options) (Result, error) {
	if err := o.Spec.Validate(); err != nil {
		return Result{}, err
	}
	if o.Ops <= 0 {
		o.Ops = 1000
	}
	clusters := o.Clusters
	if clusters < 1 {
		clusters = 1
	}
	cfg := o.Store
	if cfg.Seed == 0 {
		cfg.Seed = o.Seed + 1
	}
	if cfg.Capacity <= 0 {
		// Worst case: every measured op appends one record, all to one
		// shard, on top of the preload; recovery truncation reuses slots,
		// so this bound holds across crash churn too. Rebalancing appends
		// migrated copies and move markers on top — double the log. The
		// bound is per cluster, and pooling only spreads load, so it keeps
		// holding at any cluster count.
		cfg.Capacity = o.Spec.Keys + o.Ops + 8
		if o.RebalanceEvery > 0 {
			cfg.Capacity *= 2
		}
	}
	rt, err := pool.Open(pool.Config{Clusters: clusters, Store: cfg})
	if err != nil {
		return Result{}, err
	}
	var db kv.DB = rt

	// clocks snapshots every pooled cluster's independent simulated clock.
	// Bracketing a read with two snapshots yields both latency accountings
	// at once: the max per-cluster delta is the parallel makespan of a
	// fan-out's legs, the sum the serial upper bound (Router.NowNS deltas
	// report only the sum — the pre-fix figure).
	clocks := func() []float64 {
		out := make([]float64, rt.NumClusters())
		for c := range out {
			out[c] = rt.Cluster(c).NowNS()
		}
		return out
	}

	// Preload the keyspace, then exclude it from measurement.
	for k := 0; k < o.Spec.Keys; k++ {
		if _, err := db.Put(core.Val(k), core.Val(1+k)); err != nil {
			return Result{}, fmt.Errorf("preload key %d: %w", k, err)
		}
	}
	if err := db.Sync(); err != nil {
		return Result{}, err
	}
	db.ResetMetrics()

	gen := NewGenerator(o.Spec, o.Seed)
	res := Result{
		Workload: o.Spec.Name,
		Strategy: cfg.Strategy.String(),
		Shards:   db.NumShards() / clusters,
		Clusters: clusters,
		Variant:  cfg.Variant.String(),
		Colocate: cfg.Colocate,
		Seed:     o.Seed,
		Ops:      o.Ops,

		RebalanceEvery: o.RebalanceEvery,
	}
	if o.Store.Capacity > 0 {
		res.Capacity = o.Store.Capacity
	}
	res.CompactAtFill = cfg.CompactAtFill
	if cfg.Strategy.Batched() {
		res.Batch = cfg.Batch
		if res.Batch <= 0 {
			res.Batch = kv.DefaultBatch
		}
	}

	var eng *faults.Engine
	if o.Campaign != nil {
		eng = faults.New(db, o.Campaign)
	}
	// tolerate classifies an operation error under a campaign: faults
	// the campaign injected deny operations by design, so they count
	// instead of aborting. Partial results are checked first — they
	// unwrap to ErrUnavailable but did serve the reachable shards.
	tolerate := func(err error) bool {
		if eng == nil {
			return false
		}
		var partial *kv.PartialResultError
		if errors.As(err, &partial) {
			res.PartialResults++
			return true
		}
		if errors.Is(err, kv.ErrUnavailable) {
			res.UnavailableOps++
			return true
		}
		if errors.Is(err, kv.ErrShardDown) {
			res.FailedOps++
			return true
		}
		return false
	}

	var readLat, readLatSerial []float64
	// sampleRead folds one bracketed read into both latency populations.
	sampleRead := func(start, end []float64) {
		makespan, serial := 0.0, 0.0
		for c := range end {
			d := end[c] - start[c]
			serial += d
			if d > makespan {
				makespan = d
			}
		}
		readLat = append(readLat, makespan)
		readLatSerial = append(readLatSerial, serial)
	}
	crashShard := 0
	recoveryLost := 0
	for i := 0; i < o.Ops; i++ {
		if eng != nil {
			if err := eng.Step(i); err != nil {
				return Result{}, err
			}
		}
		if o.CrashEvery > 0 && i > 0 && i%o.CrashEvery == 0 {
			// Rotate to the next healthy shard; a shard the campaign
			// already holds down (or partitioned — recovery would need a
			// heal first) is skipped, not double-injected.
			shard := -1
			health := db.Health()
			for probe := 0; probe < len(health); probe++ {
				cand := (crashShard + probe) % len(health)
				if !health[cand].Down && !health[cand].Partitioned {
					shard = cand
					crashShard = cand + 1
					break
				}
			}
			if shard >= 0 {
				db.Crash(shard)
				stats, err := db.Recover(shard)
				if err != nil {
					return Result{}, fmt.Errorf("recover shard %d: %w", shard, err)
				}
				recoveryLost += stats.Lost
			}
		}
		if o.RebalanceEvery > 0 && i > 0 && i%o.RebalanceEvery == 0 {
			if _, err := db.Rebalance(); err != nil {
				return Result{}, fmt.Errorf("rebalance at op %d: %w", i, err)
			}
		}
		op := gen.Next()
		switch op.Kind {
		case OpRead:
			res.Reads++
			start := clocks()
			if _, _, err := db.Get(core.Val(op.Key)); err != nil {
				if !tolerate(err) {
					return Result{}, fmt.Errorf("op %d read: %w", i, err)
				}
				break // a denied read costs nothing; no latency sample
			}
			sampleRead(start, clocks())
		case OpUpdate:
			res.Updates++
			if _, err := db.Put(core.Val(op.Key), core.Val(op.Value)); err != nil {
				if !tolerate(err) {
					return Result{}, fmt.Errorf("op %d update: %w", i, err)
				}
			}
		case OpInsert:
			res.Inserts++
			if _, err := db.Put(core.Val(op.Key), core.Val(op.Value)); err != nil {
				if !tolerate(err) {
					return Result{}, fmt.Errorf("op %d insert: %w", i, err)
				}
			}
		case OpScan:
			res.Scans++
			start := clocks()
			_, err := db.Scan(core.Val(op.Key), math.MaxInt64, op.ScanLen)
			if err != nil && !tolerate(err) {
				return Result{}, fmt.Errorf("op %d scan: %w", i, err)
			}
			if err == nil || errors.Is(err, kv.ErrUnavailable) {
				// Partial scans did real work on the reachable shards;
				// their cost belongs in the latency distribution.
				sampleRead(start, clocks())
			}
		}
	}
	if eng != nil {
		if err := eng.Finish(); err != nil {
			return Result{}, err
		}
	}
	if err := db.Sync(); err != nil {
		return Result{}, err
	}

	m := db.Metrics()
	res.SimNS = m.MaxBusyNS()
	res.TotalCostNS = m.TotalBusyNS()
	if res.SimNS > 0 {
		res.ThroughputOpsPerSec = float64(o.Ops) / (res.SimNS * 1e-9)
		res.GoodputOpsPerSec = float64(o.Ops-res.FailedOps-res.UnavailableOps) / (res.SimNS * 1e-9)
	}
	lat := append(append([]float64(nil), readLat...), m.WriteLatencies...)
	sort.Float64s(lat)
	res.P50NS = percentile(lat, 50)
	res.P95NS = percentile(lat, 95)
	res.P99NS = percentile(lat, 99)
	res.MaxNS = percentile(lat, 100)
	if clusters > 1 {
		slat := append(append([]float64(nil), readLatSerial...), m.WriteLatencies...)
		sort.Float64s(slat)
		res.SerialP50NS = percentile(slat, 50)
		res.SerialP95NS = percentile(slat, 95)
		res.SerialP99NS = percentile(slat, 99)
	}
	if o.CacheSweep {
		res.CacheSweep = true
		res.ReadCache = cfg.ReadCache
		res.CacheHits = m.CacheHits
		res.CacheMisses = m.CacheMisses
		res.SpeculativeFills = m.SpeculativeFills
		if served := m.CacheHits + m.CacheMisses; served > 0 {
			res.CacheHitRate = float64(m.CacheHits) / float64(served)
		}
		for _, d := range readLat {
			res.ReadMeanNS += d
		}
		if len(readLat) > 0 {
			res.ReadMeanNS /= float64(len(readLat))
		}
	}
	if cfg.Strategy.Batched() && cfg.PipelineDepth > 1 {
		res.PipelineDepth = cfg.PipelineDepth
		ackLat := append([]float64(nil), m.WriteLatencies...)
		sort.Float64s(ackLat)
		issueLat := append([]float64(nil), m.IssueLatencies...)
		sort.Float64s(issueLat)
		res.AckP50NS = percentile(ackLat, 50)
		res.AckP95NS = percentile(ackLat, 95)
		res.AckP99NS = percentile(ackLat, 99)
		res.IssueP50NS = percentile(issueLat, 50)
		res.IssueP95NS = percentile(issueLat, 95)
		res.IssueP99NS = percentile(issueLat, 99)
	}
	res.Recoveries = int(m.Recoveries)
	res.RecordsLost = recoveryLost
	res.DroppedPending = int(m.DroppedPending)
	res.Commits = m.Commits
	res.MaxMeanBusy = m.MaxMeanBusyRatio()
	res.Migrations = int(m.Migrations)
	res.MigratedRecords = int(m.MigratedRecords)
	res.Compactions = int(m.Compactions)
	res.ReclaimedSlots = int(m.ReclaimedSlots)
	for _, c := range m.CompactionNS {
		res.CompactionMeanNS += c
	}
	if len(m.CompactionNS) > 0 {
		res.CompactionMeanNS /= float64(len(m.CompactionNS))
	}
	for _, r := range m.RecoveryNS {
		res.RecoveryMeanNS += r
		if r > res.RecoveryMaxNS {
			res.RecoveryMaxNS = r
		}
	}
	if len(m.RecoveryNS) > 0 {
		res.RecoveryMeanNS /= float64(len(m.RecoveryNS))
	}
	if eng != nil {
		fs := eng.Stats()
		res.Campaign = fs.Campaign
		res.RecordsLost += fs.RecordsLost
		res.OutageP50NS = faults.PercentileNS(fs.OutageNS, 50)
		res.OutageP95NS = faults.PercentileNS(fs.OutageNS, 95)
		res.RecoveryP50NS = faults.PercentileNS(fs.RecoveryNS, 50)
		res.RecoveryP95NS = faults.PercentileNS(fs.RecoveryNS, 95)
		res.PartitionP95NS = faults.PercentileNS(fs.PartitionNS, 95)
	}
	return res, nil
}

// percentile returns the p-th percentile of the already sorted slice xs
// (nearest-rank; p=100 is the maximum). Returns 0 for an empty slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
