package latency

import (
	"fmt"
	"sort"

	"cxl0/internal/cxlsim"
)

// splitmix64 advances a deterministic PRNG state; used to jitter samples
// the way real measurements scatter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sample returns the i-th measured latency of a primitive: the model cost
// plus deterministic measurement noise (up to ±6%, with an occasional
// long-tail outlier, as DRAM refresh and link retraining produce in
// practice).
func (m *Model) Sample(class AccessClass, p cxlsim.Primitive, i int) (ns float64, ok bool) {
	base, ok := m.Latency(class, p)
	if !ok {
		return 0, false
	}
	h := splitmix64(uint64(class)<<40 ^ uint64(p)<<20 ^ uint64(i))
	jitter := (float64(h%1200) - 600) / 10000 // ±6%
	ns = base * (1 + jitter)
	if h%97 == 0 { // rare long tail
		ns += base * 0.5
	}
	return ns, true
}

// Measure returns the median of n samples, mirroring §5.2's "median over
// 1000 measurements of sequential memory accesses".
func (m *Model) Measure(class AccessClass, p cxlsim.Primitive, n int) (ns float64, ok bool) {
	if _, ok := m.Latency(class, p); !ok {
		return 0, false
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i], _ = m.Sample(class, p, i)
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2], true
	}
	return (xs[n/2-1] + xs[n/2]) / 2, true
}

// Figure5Primitives lists the x-axis of Figure 5 in order.
var Figure5Primitives = []cxlsim.Primitive{
	cxlsim.PRead, cxlsim.PLStore, cxlsim.PRStore, cxlsim.PMStore, cxlsim.PLFlush, cxlsim.PRFlush,
}

// Figure5Cell is one bar of Figure 5.
type Figure5Cell struct {
	Class      AccessClass
	Prim       cxlsim.Primitive
	MedianNS   float64
	Measurable bool
}

// Figure5 regenerates all bars of Figure 5: the median of `samples`
// measurements for every (primitive, access class) pair, with
// not-measurable cells marked.
func Figure5(m *Model, samples int) []Figure5Cell {
	var out []Figure5Cell
	for _, p := range Figure5Primitives {
		for _, c := range Classes {
			med, ok := m.Measure(c, p, samples)
			out = append(out, Figure5Cell{Class: c, Prim: p, MedianNS: med, Measurable: ok})
		}
	}
	return out
}

// Ratio is a named latency ratio with the paper's reported value.
type Ratio struct {
	Name      string
	Value     float64
	PaperSays float64
}

// Figure5Ratios computes the relative claims of §5.2 from the model, paired
// with the paper's numbers.
func Figure5Ratios(m *Model) []Ratio {
	at := func(c AccessClass, p cxlsim.Primitive) float64 {
		v, ok := m.Latency(c, p)
		if !ok {
			panic(fmt.Sprintf("latency: ratio over unmeasurable cell %v/%v", c, p))
		}
		return v
	}
	return []Ratio{
		{
			Name:      "host remote/local Read",
			Value:     at(HostToHDM, cxlsim.PRead) / at(HostToHM, cxlsim.PRead),
			PaperSays: 2.34,
		},
		{
			Name:      "device remote/local Read",
			Value:     at(DevToHM, cxlsim.PRead) / at(DevToHDMDeviceBias, cxlsim.PRead),
			PaperSays: 1.94,
		},
		{
			Name:      "device->HM MStore/RStore",
			Value:     at(DevToHM, cxlsim.PMStore) / at(DevToHM, cxlsim.PRStore),
			PaperSays: 1.45,
		},
		{
			Name:      "device->HM RStore/LStore",
			Value:     at(DevToHM, cxlsim.PRStore) / at(DevToHM, cxlsim.PLStore),
			PaperSays: 2.08,
		},
		{
			Name:      "host remote Read vs device remote Read",
			Value:     at(DevToHM, cxlsim.PRead) / at(HostToHDM, cxlsim.PRead),
			PaperSays: 1.0,
		},
		{
			Name:      "host RFlush/MStore (HDM)",
			Value:     at(HostToHDM, cxlsim.PRFlush) / at(HostToHDM, cxlsim.PMStore),
			PaperSays: 1.0,
		},
		{
			Name:      "device RFlush/MStore (HM)",
			Value:     at(DevToHM, cxlsim.PRFlush) / at(DevToHM, cxlsim.PMStore),
			PaperSays: 1.0,
		},
	}
}

// Generation is a projected CXL hardware generation for the what-if study:
// the paper expects its latency trends to "persist in subsequent CXL
// versions"; Projection quantifies how the §5.2 ratios move as link and
// memory components improve.
type Generation struct {
	Name string
	// LinkScale scales the per-hop link cost (PCIe generation gains).
	LinkScale float64
	// MemScale scales the device-memory access cost.
	MemScale float64
}

// Generations is a plausible progression: the measured CXL 1.1/PCIe 5
// testbed, a PCIe 6 part, and a mature far-future part.
var Generations = []Generation{
	{Name: "CXL1.1/PCIe5 (measured)", LinkScale: 1.0, MemScale: 1.0},
	{Name: "CXL2.0/PCIe6", LinkScale: 0.7, MemScale: 0.9},
	{Name: "CXL3.x/PCIe7", LinkScale: 0.5, MemScale: 0.85},
}

// Project returns a model with scaled link/memory components.
func Project(g Generation) *Model {
	c := DefaultComponents()
	c.LinkHop *= g.LinkScale
	c.BiasPermission *= g.LinkScale
	c.DevIPOverhead *= g.LinkScale
	c.DevMem *= g.MemScale
	return &Model{C: c}
}

// ProjectionRow is one generation's headline numbers.
type ProjectionRow struct {
	Generation      Generation
	HostRemoteRead  float64
	HostLocalRead   float64
	RemoteOverLocal float64
}

// Projection computes the local/remote read gap across generations: the
// structural penalty of disaggregation shrinks with every link generation
// but never disappears — the persistent motivation for data-placement
// control (§5's conclusion).
func Projection() []ProjectionRow {
	var out []ProjectionRow
	for _, g := range Generations {
		m := Project(g)
		local, _ := m.Latency(HostToHM, cxlsim.PRead)
		remote, _ := m.Latency(HostToHDM, cxlsim.PRead)
		out = append(out, ProjectionRow{
			Generation:      g,
			HostRemoteRead:  remote,
			HostLocalRead:   local,
			RemoteOverLocal: remote / local,
		})
	}
	return out
}
