package latency

import (
	"math"
	"testing"

	"cxl0/internal/cxlsim"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s = %.3f, want %.3f (±%.0f%%)", name, got, want, tol*100)
	}
}

// TestFigure5Ratios checks every relative claim of §5.2 against the model.
func TestFigure5Ratios(t *testing.T) {
	m := NewModel()
	for _, r := range Figure5Ratios(m) {
		within(t, r.Name, r.Value, r.PaperSays, 0.15)
	}
}

// TestNotMeasurableCells checks that exactly the paper's seven bars are
// unmeasurable: host RStore and LFlush (2 classes each) and device LFlush
// (3 classes).
func TestNotMeasurableCells(t *testing.T) {
	m := NewModel()
	count := 0
	for _, p := range Figure5Primitives {
		for _, c := range Classes {
			hostClass := c == HostToHM || c == HostToHDM
			var want bool
			switch {
			case p == cxlsim.PLFlush:
				want = true
			case p == cxlsim.PRStore && hostClass:
				want = true
			}
			got := m.NotMeasurable(c, p)
			if got != want {
				t.Errorf("NotMeasurable(%v, %v) = %v, want %v", c, p, got, want)
			}
			if got {
				count++
			}
		}
	}
	if count != 7 {
		t.Errorf("unmeasurable cells = %d, want 7", count)
	}
}

// TestOrderingLStoreLtRStoreLtMStore checks the paper's expected latency
// trend for the store primitives wherever all three are measurable.
func TestOrderingLStoreLtRStoreLtMStore(t *testing.T) {
	m := NewModel()
	for _, c := range []AccessClass{DevToHM, DevToHDMHostBias, DevToHDMDeviceBias} {
		l, _ := m.Latency(c, cxlsim.PLStore)
		r, _ := m.Latency(c, cxlsim.PRStore)
		s, _ := m.Latency(c, cxlsim.PMStore)
		if !(l < r && r < s) {
			t.Errorf("%v: want LStore < RStore < MStore, got %.0f, %.0f, %.0f", c, l, r, s)
		}
	}
}

// TestHostWriteBufferAdvantage checks that the CPU's LStore outruns the
// device's (the CPU has deep write buffers; the IP has a single cache
// level), and that the device's HM cache writes are slower than HDM ones.
func TestHostWriteBufferAdvantage(t *testing.T) {
	m := NewModel()
	host, _ := m.Latency(HostToHM, cxlsim.PLStore)
	devHM, _ := m.Latency(DevToHM, cxlsim.PLStore)
	devHDM, _ := m.Latency(DevToHDMDeviceBias, cxlsim.PLStore)
	if host >= devHM || host >= devHDM {
		t.Errorf("host LStore (%.0f) should beat device LStores (%.0f, %.0f)", host, devHM, devHDM)
	}
	if devHM <= devHDM {
		t.Errorf("device LStore to HM (%.0f) should be slower than to HDM (%.0f)", devHM, devHDM)
	}
}

// TestBiasModeCost checks host-bias access costs more than device-bias.
func TestBiasModeCost(t *testing.T) {
	m := NewModel()
	for _, p := range []cxlsim.Primitive{cxlsim.PRead, cxlsim.PMStore, cxlsim.PRFlush} {
		hb, _ := m.Latency(DevToHDMHostBias, p)
		db, _ := m.Latency(DevToHDMDeviceBias, p)
		if hb <= db {
			t.Errorf("%v: host-bias (%.0f) should cost more than device-bias (%.0f)", p, hb, db)
		}
	}
}

// TestMeasureMedianNearModel checks the measurement harness: the median of
// many jittered samples stays within 2% of the model value.
func TestMeasureMedianNearModel(t *testing.T) {
	m := NewModel()
	for _, c := range Classes {
		for _, p := range Figure5Primitives {
			base, ok := m.Latency(c, p)
			if !ok {
				if _, mok := m.Measure(c, p, 1000); mok {
					t.Errorf("Measure(%v,%v) measurable but Latency is not", c, p)
				}
				continue
			}
			med, _ := m.Measure(c, p, 1001)
			within(t, "median "+c.String()+"/"+p.String(), med, base, 0.02)
		}
	}
}

// TestMeasureDeterministic confirms repeated measurement yields identical
// medians (the harness is deterministic for reproducibility).
func TestMeasureDeterministic(t *testing.T) {
	m := NewModel()
	a, _ := m.Measure(HostToHDM, cxlsim.PRead, 1000)
	b, _ := m.Measure(HostToHDM, cxlsim.PRead, 1000)
	if a != b {
		t.Errorf("measurement not deterministic: %f vs %f", a, b)
	}
}

// TestFigure5Shape checks the full figure: 30 bars, measurable values in a
// plausible 0–600 ns range (the figure's y-axis).
func TestFigure5Shape(t *testing.T) {
	cells := Figure5(NewModel(), 1001)
	if len(cells) != 30 {
		t.Fatalf("Figure 5 has %d bars, want 30", len(cells))
	}
	for _, c := range cells {
		if !c.Measurable {
			continue
		}
		if c.MedianNS <= 0 || c.MedianNS > 600 {
			t.Errorf("%v/%v: median %.0f ns outside the figure's range", c.Class, c.Prim, c.MedianNS)
		}
	}
}
