package latency

import "cxl0/internal/core"

// CXL0Cost returns the modeled cost, in nanoseconds, of one CXL0 primitive
// issued in a symmetric future CXL system (every primitive available on
// every node, as §4's "future configurations" anticipate). local says
// whether the issuing machine owns the accessed line.
//
// The runtime (package memsim) charges these costs to its simulated clock,
// which is what makes the §6.1 performance comparisons between persistence
// strategies meaningful: an MStore-everything transformation pays the full
// remote-memory round trip on every write, while FliT's LStore+RFlush pays
// it only at flush points, and the owner-local optimisation replaces remote
// flushes with local ones.
func (m *Model) CXL0Cost(op core.Op, local bool) float64 {
	return m.CXL0CostCached(op, local, false)
}

// CXL0CostCached refines CXL0Cost with line hotness: cached says whether
// the issuing machine's cache already holds the line, in which case loads
// and the read half of RMWs are cache hits rather than full fills. Flushes
// and MStores always pay the full propagation path.
func (m *Model) CXL0CostCached(op core.Op, local, cached bool) float64 {
	c := m.C
	rtt := 2 * c.LinkHop
	localLoad := c.HostDRAM
	remoteLoad := rtt + c.DevMem
	localPersist := c.HostDRAM + c.FenceLocal
	remotePersist := rtt + c.DevMem + c.FenceLocal + c.DevIPOverhead
	loadCost := func() float64 {
		if cached {
			return c.CacheHit
		}
		if local {
			return localLoad
		}
		return remoteLoad
	}

	switch op {
	case core.OpLoad:
		return loadCost()
	case core.OpLStore:
		return c.HostWriteBuffer
	case core.OpRStore:
		if local {
			return c.HostWriteBuffer // RStore by the owner ≡ LStore
		}
		return rtt // push into the owner's cache
	case core.OpMStore:
		if local {
			return localPersist
		}
		return remotePersist
	case core.OpLFlush:
		if local {
			return localPersist // owner's LFlush drains to local memory
		}
		return rtt // drains into the owner's cache
	case core.OpRFlush:
		if local {
			// Even a local RFlush must confirm that no remote cache holds
			// the line — one fabric round trip on top of the local drain.
			// (This is exactly the cost the §6.1 owner-local LFlush
			// optimisation removes.)
			return localPersist + rtt
		}
		return remotePersist
	case core.OpGPF:
		// Two-phase global drain: several fabric round trips.
		return 4*rtt + c.DevMem + c.HostDRAM
	case core.OpRFlushRange:
		// Callers with a real range should use RFlushRangeCost (it needs
		// the per-device line counts); a one-line range prices like RFlush.
		return m.RFlushRangeCost(1, local)
	case core.OpLRMW:
		// Line pull (or hit) plus locked update in the local cache.
		return loadCost() + c.FenceLocal
	case core.OpRRMW:
		if local {
			return loadCost() + c.FenceLocal
		}
		return loadCost() + rtt
	case core.OpMRMW:
		if local {
			return loadCost() + localPersist
		}
		return loadCost() + remotePersist
	case core.OpCrash:
		// A crash is an event, not a fabric command: it costs nothing on
		// the simulated clock (outage windows are measured by the fault
		// engine, not priced here).
		return 0
	}
	return 0
}

// RFlushRangeCost returns the modeled cost of the portion of one ranged
// persistent flush (core.OpRFlushRange) that lands on a single owning
// device: lines is how many of the range's cache lines that device owns,
// and local says whether the issuing machine is that device.
//
// The command cost — the fabric round trip, the device's flush-IP overhead
// and the completion fence — is paid once per device rather than once per
// line, so a ranged flush amortizes exactly the part of RFlush's cost that
// repeating RFlush per line cannot: RFlushRangeCost(1, local) equals
// CXL0Cost(OpRFlush, local), and each additional line adds only the
// device-side media write. Crucially the total never depends on how many
// machines the fabric has — that is what makes commits built on it
// shard-local, where GPF's global drain stalls every device.
func (m *Model) RFlushRangeCost(lines int, local bool) float64 {
	if lines < 1 {
		lines = 1
	}
	c := m.C
	rtt := 2 * c.LinkHop
	if local {
		// Like a local RFlush, the device must still confirm over the
		// fabric that no remote cache holds any line of its range (one
		// round trip), then drains each line to its local medium.
		return rtt + c.FenceLocal + float64(lines)*c.HostDRAM
	}
	// One flush command round trip and one fence + flush-IP overhead for
	// the whole range; the device then writes each line to its media.
	return rtt + c.FenceLocal + c.DevIPOverhead + float64(lines)*c.DevMem
}
