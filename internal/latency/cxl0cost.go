package latency

import "cxl0/internal/core"

// CXL0Cost returns the modeled cost, in nanoseconds, of one CXL0 primitive
// issued in a symmetric future CXL system (every primitive available on
// every node, as §4's "future configurations" anticipate). local says
// whether the issuing machine owns the accessed line.
//
// The runtime (package memsim) charges these costs to its simulated clock,
// which is what makes the §6.1 performance comparisons between persistence
// strategies meaningful: an MStore-everything transformation pays the full
// remote-memory round trip on every write, while FliT's LStore+RFlush pays
// it only at flush points, and the owner-local optimisation replaces remote
// flushes with local ones.
func (m *Model) CXL0Cost(op core.Op, local bool) float64 {
	return m.CXL0CostCached(op, local, false)
}

// CXL0CostCached refines CXL0Cost with line hotness: cached says whether
// the issuing machine's cache already holds the line, in which case loads
// and the read half of RMWs are cache hits rather than full fills. Flushes
// and MStores always pay the full propagation path.
func (m *Model) CXL0CostCached(op core.Op, local, cached bool) float64 {
	c := m.C
	rtt := 2 * c.LinkHop
	localLoad := c.HostDRAM
	remoteLoad := rtt + c.DevMem
	localPersist := c.HostDRAM + c.FenceLocal
	remotePersist := rtt + c.DevMem + c.FenceLocal + c.DevIPOverhead
	loadCost := func() float64 {
		if cached {
			return c.CacheHit
		}
		if local {
			return localLoad
		}
		return remoteLoad
	}

	switch op {
	case core.OpLoad:
		return loadCost()
	case core.OpLStore:
		return c.HostWriteBuffer
	case core.OpRStore:
		if local {
			return c.HostWriteBuffer // RStore by the owner ≡ LStore
		}
		return rtt // push into the owner's cache
	case core.OpMStore:
		if local {
			return localPersist
		}
		return remotePersist
	case core.OpLFlush:
		if local {
			return localPersist // owner's LFlush drains to local memory
		}
		return rtt // drains into the owner's cache
	case core.OpRFlush:
		if local {
			// Even a local RFlush must confirm that no remote cache holds
			// the line — one fabric round trip on top of the local drain.
			// (This is exactly the cost the §6.1 owner-local LFlush
			// optimisation removes.)
			return localPersist + rtt
		}
		return remotePersist
	case core.OpGPF:
		// Two-phase global drain: several fabric round trips.
		return 4*rtt + c.DevMem + c.HostDRAM
	case core.OpLRMW:
		// Line pull (or hit) plus locked update in the local cache.
		return loadCost() + c.FenceLocal
	case core.OpRRMW:
		if local {
			return loadCost() + c.FenceLocal
		}
		return loadCost() + rtt
	case core.OpMRMW:
		if local {
			return loadCost() + localPersist
		}
		return loadCost() + remotePersist
	}
	return 0
}
