// Package latency models the cost of individual CXL0 primitives on the
// paper's host + Type-2 device testbed (§5.2, Figure 5), replacing
// LATTester on the CPU and the AXI cycle counters on the FPGA.
//
// Latencies are composed from hardware components (cache hits, DRAM
// accesses, link hops, bias-permission round trips, write-buffer
// absorption) rather than transcribed from the figure. The paper's claims
// are relative, and those shapes fall out of the composition:
//
//   - local loads/MStores are ≈2.34× (host) and ≈1.94× (device) faster
//     than remote ones;
//   - host and device remote accesses cost about the same;
//   - for device writes to HM: LStore ≪ RStore (≈2.08×) ≪ MStore (≈1.45×
//     over RStore);
//   - RFlush costs about as much as MStore;
//   - seven (class, primitive) cells are not measurable at all (host
//     RStore and LFlush, device LFlush), matching Table 1's ??? rows.
package latency

import (
	"cxl0/internal/cxlsim"
)

// AccessClass is one of the five access categories of Figure 5.
type AccessClass int

const (
	// HostToHM: host access to Host-attached Memory (local).
	HostToHM AccessClass = iota
	// HostToHDM: host access to Host-managed Device Memory (remote).
	HostToHDM
	// DevToHM: device access to Host-attached Memory (remote).
	DevToHM
	// DevToHDMHostBias: device access to its own memory in host bias
	// (local, but requires the host's permission).
	DevToHDMHostBias
	// DevToHDMDeviceBias: device access to its own memory in device bias
	// (local).
	DevToHDMDeviceBias
)

var classNames = [...]string{
	"Host to Host-attached Memory",
	"Host to HDM",
	"Device to Host-attached Memory",
	"Device to HDM in Host-Bias",
	"Device to HDM in Device-Bias",
}

func (c AccessClass) String() string { return classNames[c] }

// Classes lists the five access classes in Figure 5's legend order.
var Classes = []AccessClass{HostToHM, HostToHDM, DevToHM, DevToHDMHostBias, DevToHDMDeviceBias}

// Components are the hardware cost constituents, in nanoseconds.
type Components struct {
	// CacheHit is a local cache hit (loads and hot RMWs).
	CacheHit float64
	// HostWriteBuffer absorbs host cacheable stores.
	HostWriteBuffer float64
	// HostDRAM is a host local memory access.
	HostDRAM float64
	// LinkHop is one CXL link traversal (one way, including PHY and
	// protocol overhead).
	LinkHop float64
	// DevMem is a device-attached memory access.
	DevMem float64
	// DevCacheHM is a device IP cache write for HM-backed lines (the IP
	// uses a smaller, slower cache for remote lines).
	DevCacheHM float64
	// DevCacheHDM is a device IP cache write for HDM-backed lines.
	DevCacheHDM float64
	// DevIPOverhead is the device IP's fixed per-transaction overhead.
	DevIPOverhead float64
	// BiasPermission is the host-bias permission exchange.
	BiasPermission float64
	// FenceLocal drains a local write pipe (fence after NT store).
	FenceLocal float64
	// FlushAck is the completion handshake of an eviction/flush.
	FlushAck float64
}

// DefaultComponents returns the calibration used for Figure 5. The values
// are in the ballpark of published CXL 1.1 measurements (local DRAM ≈
// 110 ns, a link traversal ≈ 60 ns) and produce the paper's ratios.
func DefaultComponents() Components {
	return Components{
		CacheHit:        5,
		HostWriteBuffer: 9,
		HostDRAM:        110,
		LinkHop:         62,
		DevMem:          133,
		DevCacheHM:      60,
		DevCacheHDM:     28,
		DevIPOverhead:   23,
		BiasPermission:  110,
		FenceLocal:      8,
		FlushAck:        56,
	}
}

// Model computes per-primitive latencies from components.
type Model struct {
	C Components
}

// NewModel returns a model over the default calibration.
func NewModel() *Model { return &Model{C: DefaultComponents()} }

// Latency returns the cost in nanoseconds of one primitive in one access
// class, with ok=false for the seven not-measurable combinations (host
// RStore/LFlush, device LFlush — the ??? rows of Table 1).
//
// All costs assume the measurement protocol of §5.2: lines start invalid in
// every cache, and stores write full cache lines.
func (m *Model) Latency(class AccessClass, p cxlsim.Primitive) (ns float64, ok bool) {
	c := m.C
	rtt := 2 * c.LinkHop
	switch class {
	case HostToHM:
		switch p {
		case cxlsim.PRead:
			return c.HostDRAM, true
		case cxlsim.PLStore:
			return c.HostWriteBuffer, true
		case cxlsim.PMStore:
			return c.HostDRAM + c.FenceLocal, true
		case cxlsim.PRFlush:
			return c.HostDRAM + c.FenceLocal, true
		}
	case HostToHDM:
		switch p {
		case cxlsim.PRead:
			return rtt + c.DevMem, true
		case cxlsim.PLStore:
			return c.HostWriteBuffer, true
		case cxlsim.PMStore:
			return rtt + c.DevMem + c.FenceLocal + c.DevIPOverhead, true
		case cxlsim.PRFlush:
			return rtt + c.DevMem + c.FenceLocal + c.DevIPOverhead, true
		}
	case DevToHM:
		switch p {
		case cxlsim.PRead:
			return rtt + c.HostDRAM + c.DevIPOverhead, true
		case cxlsim.PLStore:
			return c.DevCacheHM, true
		case cxlsim.PRStore:
			// ItoMWr: push into the host cache, no memory access.
			return rtt, true
		case cxlsim.PMStore:
			// RdOwn + DirtyEvict: ownership round trip plus flush handshake.
			return rtt + c.FlushAck, true
		case cxlsim.PRFlush:
			return rtt + c.FlushAck, true
		}
	case DevToHDMHostBias:
		switch p {
		case cxlsim.PRead:
			return c.DevMem + c.BiasPermission, true
		case cxlsim.PLStore:
			return c.DevCacheHDM, true
		case cxlsim.PRStore:
			// Caching write; ownership must come from the host.
			return c.DevCacheHDM + c.BiasPermission + c.DevIPOverhead, true
		case cxlsim.PMStore:
			return c.DevMem + c.BiasPermission + c.FenceLocal, true
		case cxlsim.PRFlush:
			return c.DevMem + c.BiasPermission + c.FenceLocal, true
		}
	case DevToHDMDeviceBias:
		switch p {
		case cxlsim.PRead:
			return c.DevMem, true
		case cxlsim.PLStore:
			return c.DevCacheHDM, true
		case cxlsim.PRStore:
			return c.DevCacheHDM + c.DevIPOverhead, true
		case cxlsim.PMStore:
			return c.DevMem + c.FenceLocal, true
		case cxlsim.PRFlush:
			return c.DevMem + c.FenceLocal, true
		}
	}
	return 0, false
}

// NotMeasurable reports whether the (class, primitive) cell is one of the
// seven "not measurable" bars of Figure 5.
func (m *Model) NotMeasurable(class AccessClass, p cxlsim.Primitive) bool {
	_, ok := m.Latency(class, p)
	return !ok
}
