package latency

import (
	"testing"

	"cxl0/internal/core"
)

// TestCXL0CostShape checks the structural properties of the runtime cost
// model: remote costs dominate local ones, persistence dominates caching,
// hot lines are nearly free to read, and every primitive has a positive
// cost.
func TestCXL0CostShape(t *testing.T) {
	m := NewModel()
	ops := []core.Op{
		core.OpLoad, core.OpLStore, core.OpRStore, core.OpMStore,
		core.OpLFlush, core.OpRFlush, core.OpGPF,
		core.OpLRMW, core.OpRRMW, core.OpMRMW,
	}
	for _, op := range ops {
		for _, local := range []bool{true, false} {
			if c := m.CXL0Cost(op, local); c <= 0 {
				t.Errorf("CXL0Cost(%v, local=%v) = %.1f", op, local, c)
			}
		}
	}
	// Remote ≥ local for the memory-touching primitives.
	for _, op := range []core.Op{core.OpLoad, core.OpMStore, core.OpRFlush, core.OpMRMW} {
		if m.CXL0Cost(op, false) < m.CXL0Cost(op, true) {
			t.Errorf("%v: remote cheaper than local", op)
		}
	}
	// LStore is the cheapest primitive (write-buffer absorption).
	ls := m.CXL0Cost(core.OpLStore, false)
	for _, op := range []core.Op{core.OpLoad, core.OpMStore, core.OpRFlush, core.OpLRMW} {
		if m.CXL0Cost(op, false) <= ls {
			t.Errorf("%v remote not above LStore", op)
		}
	}
	// Hot loads are near-free compared to cold ones.
	hot := m.CXL0CostCached(core.OpLoad, false, true)
	cold := m.CXL0CostCached(core.OpLoad, false, false)
	if hot*10 > cold {
		t.Errorf("hot load %.1f not ≪ cold load %.1f", hot, cold)
	}
	// The §6.1 point: a local RFlush pays a fabric confirmation that a
	// local LFlush avoids.
	if m.CXL0Cost(core.OpRFlush, true) <= m.CXL0Cost(core.OpLFlush, true) {
		t.Errorf("local RFlush not above local LFlush")
	}
	// GPF is the most expensive single primitive.
	gpf := m.CXL0Cost(core.OpGPF, false)
	for _, op := range ops {
		if op == core.OpGPF {
			continue
		}
		if m.CXL0Cost(op, false) >= gpf {
			t.Errorf("%v costs more than GPF", op)
		}
	}
	// RStore by the owner degenerates to LStore.
	if m.CXL0Cost(core.OpRStore, true) != m.CXL0Cost(core.OpLStore, true) {
		t.Errorf("owner RStore != LStore cost")
	}
}

// TestCXL0CostOrderingMatchesProp1Strength: stronger primitives (per
// Proposition 1) cost at least as much as the ones they strengthen, for
// remote accesses.
func TestCXL0CostOrderingMatchesProp1Strength(t *testing.T) {
	m := NewModel()
	pairs := [][2]core.Op{
		{core.OpLStore, core.OpRStore}, // RStore stronger than LStore
		{core.OpRStore, core.OpMStore}, // MStore stronger than RStore
		{core.OpLFlush, core.OpRFlush}, // RFlush stronger than LFlush
	}
	for _, p := range pairs {
		weak, strong := m.CXL0Cost(p[0], false), m.CXL0Cost(p[1], false)
		if strong < weak {
			t.Errorf("stronger %v (%.0f) cheaper than weaker %v (%.0f)", p[1], strong, p[0], weak)
		}
	}
}
