package latency

import (
	"testing"

	"cxl0/internal/core"
)

// TestCXL0CostShape checks the structural properties of the runtime cost
// model: remote costs dominate local ones, persistence dominates caching,
// hot lines are nearly free to read, and every primitive has a positive
// cost.
func TestCXL0CostShape(t *testing.T) {
	m := NewModel()
	ops := []core.Op{
		core.OpLoad, core.OpLStore, core.OpRStore, core.OpMStore,
		core.OpLFlush, core.OpRFlush, core.OpGPF,
		core.OpLRMW, core.OpRRMW, core.OpMRMW,
	}
	for _, op := range ops {
		for _, local := range []bool{true, false} {
			if c := m.CXL0Cost(op, local); c <= 0 {
				t.Errorf("CXL0Cost(%v, local=%v) = %.1f", op, local, c)
			}
		}
	}
	// Remote ≥ local for the memory-touching primitives.
	for _, op := range []core.Op{core.OpLoad, core.OpMStore, core.OpRFlush, core.OpMRMW} {
		if m.CXL0Cost(op, false) < m.CXL0Cost(op, true) {
			t.Errorf("%v: remote cheaper than local", op)
		}
	}
	// LStore is the cheapest primitive (write-buffer absorption).
	ls := m.CXL0Cost(core.OpLStore, false)
	for _, op := range []core.Op{core.OpLoad, core.OpMStore, core.OpRFlush, core.OpLRMW} {
		if m.CXL0Cost(op, false) <= ls {
			t.Errorf("%v remote not above LStore", op)
		}
	}
	// Hot loads are near-free compared to cold ones.
	hot := m.CXL0CostCached(core.OpLoad, false, true)
	cold := m.CXL0CostCached(core.OpLoad, false, false)
	if hot*10 > cold {
		t.Errorf("hot load %.1f not ≪ cold load %.1f", hot, cold)
	}
	// The §6.1 point: a local RFlush pays a fabric confirmation that a
	// local LFlush avoids.
	if m.CXL0Cost(core.OpRFlush, true) <= m.CXL0Cost(core.OpLFlush, true) {
		t.Errorf("local RFlush not above local LFlush")
	}
	// GPF is the most expensive single primitive.
	gpf := m.CXL0Cost(core.OpGPF, false)
	for _, op := range ops {
		if op == core.OpGPF {
			continue
		}
		if m.CXL0Cost(op, false) >= gpf {
			t.Errorf("%v costs more than GPF", op)
		}
	}
	// RStore by the owner degenerates to LStore.
	if m.CXL0Cost(core.OpRStore, true) != m.CXL0Cost(core.OpLStore, true) {
		t.Errorf("owner RStore != LStore cost")
	}
}

// TestRFlushRangeCostShape checks the amortization structure of the ranged
// flush: a one-line range prices exactly like RFlush, additional lines add
// only the device-side media write, and the whole-range cost stays well
// under both per-line RFlushing and a GPF-per-batch once ranges grow.
func TestRFlushRangeCostShape(t *testing.T) {
	m := NewModel()
	for _, local := range []bool{true, false} {
		if got, want := m.RFlushRangeCost(1, local), m.CXL0Cost(core.OpRFlush, local); got != want {
			t.Errorf("RFlushRangeCost(1, local=%v) = %.1f, want RFlush cost %.1f", local, got, want)
		}
		// Degenerate inputs price as one line.
		if m.RFlushRangeCost(0, local) != m.RFlushRangeCost(1, local) {
			t.Errorf("local=%v: zero-line range not priced as one line", local)
		}
		prev := 0.0
		for n := 1; n <= 64; n *= 2 {
			c := m.RFlushRangeCost(n, local)
			if c <= prev {
				t.Errorf("local=%v: cost not increasing at %d lines", local, n)
			}
			prev = c
			if n > 1 {
				perLine := float64(n) * m.CXL0Cost(core.OpRFlush, local)
				if c >= perLine {
					t.Errorf("local=%v: ranged flush of %d lines (%.0f) not below %d RFlushes (%.0f)",
						local, n, c, n, perLine)
				}
			}
		}
	}
	// The command overhead is paid once per device: for a fixed line count,
	// splitting across devices only adds overhead.
	if m.RFlushRangeCost(8, false) >= 2*m.RFlushRangeCost(4, false) {
		t.Errorf("one 8-line range not cheaper than two 4-line ranges")
	}
	// CXL0Cost routes the ranged op through the one-line price.
	if m.CXL0Cost(core.OpRFlushRange, false) != m.RFlushRangeCost(1, false) {
		t.Errorf("CXL0Cost(OpRFlushRange) disagrees with RFlushRangeCost(1)")
	}
}

// TestCXL0CostOrderingMatchesProp1Strength: stronger primitives (per
// Proposition 1) cost at least as much as the ones they strengthen, for
// remote accesses.
func TestCXL0CostOrderingMatchesProp1Strength(t *testing.T) {
	m := NewModel()
	pairs := [][2]core.Op{
		{core.OpLStore, core.OpRStore}, // RStore stronger than LStore
		{core.OpRStore, core.OpMStore}, // MStore stronger than RStore
		{core.OpLFlush, core.OpRFlush}, // RFlush stronger than LFlush
	}
	for _, p := range pairs {
		weak, strong := m.CXL0Cost(p[0], false), m.CXL0Cost(p[1], false)
		if strong < weak {
			t.Errorf("stronger %v (%.0f) cheaper than weaker %v (%.0f)", p[1], strong, p[0], weak)
		}
	}
}
