package latency

import "testing"

// TestProjectionShrinksButKeepsGap: faster links shrink the remote/local
// read ratio monotonically, but the gap stays well above 1 — remote memory
// never becomes free.
func TestProjectionShrinksButKeepsGap(t *testing.T) {
	rows := Projection()
	if len(rows) != len(Generations) {
		t.Fatalf("rows: %d", len(rows))
	}
	if r0 := rows[0].RemoteOverLocal; r0 < 2.2 || r0 > 2.5 {
		t.Errorf("measured-generation ratio %.2f should match the paper's 2.34", r0)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RemoteOverLocal >= rows[i-1].RemoteOverLocal {
			t.Errorf("ratio not shrinking: %v", rows)
		}
	}
	last := rows[len(rows)-1].RemoteOverLocal
	if last < 1.3 {
		t.Errorf("final-generation ratio %.2f implausibly small — memory access itself bounds it", last)
	}
}

// TestProjectUnchangedBaseline: the identity generation reproduces the
// default model exactly.
func TestProjectUnchangedBaseline(t *testing.T) {
	m := Project(Generations[0])
	d := NewModel()
	for _, c := range Classes {
		for _, p := range Figure5Primitives {
			a, okA := m.Latency(c, p)
			b, okB := d.Latency(c, p)
			if okA != okB || a != b {
				t.Fatalf("%v/%v: projected %v,%v vs default %v,%v", c, p, a, okA, b, okB)
			}
		}
	}
}
