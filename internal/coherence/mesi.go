// Package coherence implements a MESI cache-line state machine for a
// two-agent (host + device) coherence domain. It is the substrate for the
// transaction-level CXL simulator (package cxlsim): within a single-root
// host-device pairing, CXL.cache implements MESI-based coherence on
// individual cache lines (§2.1 of the paper).
package coherence

import "fmt"

// State is a MESI cache-line state.
type State int

const (
	// Invalid: the cache does not hold the line.
	Invalid State = iota
	// Shared: a clean copy that other caches may also hold.
	Shared
	// Exclusive: a clean copy held by no other cache.
	Exclusive
	// Modified: a dirty copy held by no other cache.
	Modified
)

var stateNames = [...]string{"I", "S", "E", "M"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Valid reports whether the line is present (non-Invalid).
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the line holds data newer than memory.
func (s State) Dirty() bool { return s == Modified }

// Owned reports whether the holder may write without a coherence action.
func (s State) Owned() bool { return s == Exclusive || s == Modified }

// States lists all MESI states.
var States = []State{Invalid, Shared, Exclusive, Modified}

// PairLegal reports whether (a, b) is a legal simultaneous state pair for
// two caches holding the same line: an owned (E/M) copy excludes any other
// valid copy; Shared copies may coexist.
func PairLegal(a, b State) bool {
	if a.Owned() && b.Valid() {
		return false
	}
	if b.Owned() && a.Valid() {
		return false
	}
	return true
}

// LegalPairs enumerates every legal (a, b) state pair.
func LegalPairs() [][2]State {
	var out [][2]State
	for _, a := range States {
		for _, b := range States {
			if PairLegal(a, b) {
				out = append(out, [2]State{a, b})
			}
		}
	}
	return out
}

// Line is one cache line: a MESI state plus the cached data word.
type Line struct {
	State State
	Data  uint64
}

// ReadHit reports whether a local read is served without a coherence
// action.
func (l Line) ReadHit() bool { return l.State.Valid() }

// WriteHit reports whether a local write is served without a coherence
// action.
func (l Line) WriteHit() bool { return l.State.Owned() }

// OnFill installs data obtained from memory or a peer. exclusive selects E
// over S.
func (l *Line) OnFill(data uint64, exclusive bool) {
	l.Data = data
	if exclusive {
		l.State = Exclusive
	} else {
		l.State = Shared
	}
}

// OnLocalWrite applies a local write; the caller must have established
// ownership (the line must not be Shared or Invalid).
func (l *Line) OnLocalWrite(data uint64) {
	if !l.State.Owned() {
		panic(fmt.Sprintf("coherence: local write in state %v without ownership", l.State))
	}
	l.Data = data
	l.State = Modified
}

// OnGrantOwnership upgrades the line to Exclusive (clean) after the peer
// has been invalidated; data is the (possibly refreshed) line contents.
func (l *Line) OnGrantOwnership(data uint64) {
	l.Data = data
	l.State = Exclusive
}

// OnSnoopInvalidate invalidates the line, returning its data and whether it
// was dirty (in which case the data must be written back or forwarded).
func (l *Line) OnSnoopInvalidate() (data uint64, dirty bool) {
	data, dirty = l.Data, l.State.Dirty()
	l.State = Invalid
	l.Data = 0
	return data, dirty
}

// OnEvict removes the line as part of a replacement or explicit flush,
// returning its data and whether a writeback is required.
func (l *Line) OnEvict() (data uint64, dirty bool) {
	return l.OnSnoopInvalidate()
}
