package coherence

import "testing"

func TestLegalPairs(t *testing.T) {
	pairs := LegalPairs()
	if len(pairs) != 8 {
		t.Fatalf("got %d legal pairs, want 8: %v", len(pairs), pairs)
	}
	want := map[[2]State]bool{
		{Invalid, Invalid}: true, {Invalid, Shared}: true, {Invalid, Exclusive}: true, {Invalid, Modified}: true,
		{Shared, Invalid}: true, {Shared, Shared}: true, {Exclusive, Invalid}: true, {Modified, Invalid}: true,
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected legal pair %v", p)
		}
	}
	if PairLegal(Modified, Shared) || PairLegal(Exclusive, Exclusive) || PairLegal(Shared, Modified) {
		t.Errorf("owned copies must exclude other valid copies")
	}
}

func TestStatePredicates(t *testing.T) {
	if Invalid.Valid() || !Shared.Valid() || !Exclusive.Valid() || !Modified.Valid() {
		t.Errorf("Valid() wrong")
	}
	if Shared.Dirty() || Exclusive.Dirty() || !Modified.Dirty() {
		t.Errorf("Dirty() wrong")
	}
	if Shared.Owned() || !Exclusive.Owned() || !Modified.Owned() {
		t.Errorf("Owned() wrong")
	}
}

func TestLineLifecycle(t *testing.T) {
	var l Line
	if l.ReadHit() || l.WriteHit() {
		t.Fatalf("zero line must miss")
	}
	l.OnFill(42, false)
	if l.State != Shared || !l.ReadHit() || l.WriteHit() {
		t.Fatalf("after shared fill: %+v", l)
	}
	l.OnGrantOwnership(42)
	if l.State != Exclusive || !l.WriteHit() {
		t.Fatalf("after ownership grant: %+v", l)
	}
	l.OnLocalWrite(43)
	if l.State != Modified || l.Data != 43 {
		t.Fatalf("after write: %+v", l)
	}
	data, dirty := l.OnEvict()
	if data != 43 || !dirty || l.State != Invalid {
		t.Fatalf("after evict: data=%d dirty=%v %+v", data, dirty, l)
	}
}

func TestSnoopCleanVsDirty(t *testing.T) {
	var l Line
	l.OnFill(7, true)
	if _, dirty := l.OnSnoopInvalidate(); dirty {
		t.Errorf("clean exclusive line reported dirty on snoop")
	}
	l.OnFill(7, true)
	l.OnLocalWrite(8)
	data, dirty := l.OnSnoopInvalidate()
	if !dirty || data != 8 {
		t.Errorf("dirty line snoop: data=%d dirty=%v", data, dirty)
	}
}

func TestLocalWriteWithoutOwnershipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("write to Shared line did not panic")
		}
	}()
	l := Line{State: Shared}
	l.OnLocalWrite(1)
}
