package flitbench

import (
	"cxl0/internal/core"
	"cxl0/internal/ds"
	"cxl0/internal/flit"
	"cxl0/internal/latency"
	"cxl0/internal/memsim"
)

// Ablation studies for the design choices DESIGN.md calls out: how
// sensitive each persistence strategy is to cache-replacement pressure,
// where the owner-local optimisation starts to pay as data placement
// shifts, and how the FliT counter-table size trades false sharing against
// footprint.

// EvictionPoint is one cell of the eviction-pressure ablation.
type EvictionPoint struct {
	EvictEvery int // one random eviction per N primitives (0 = off)
	Strategy   flit.Strategy
	SimNSPerOp float64
}

// EvictionAblation measures the queue workload under increasing
// cache-replacement pressure. Strategies that keep data cached between the
// store and the flush (the FliT family) feel eviction more than
// cache-bypassing MStore.
func EvictionAblation(strategies []flit.Strategy, rates []int, ops int) ([]EvictionPoint, error) {
	var out []EvictionPoint
	for _, rate := range rates {
		for _, s := range strategies {
			st, err := runWithCluster(Config{Workload: QueuePingPong, Strategy: s, Placement: Remote, Ops: ops, Seed: 1}, rate, 128)
			if err != nil {
				return nil, err
			}
			out = append(out, EvictionPoint{EvictEvery: rate, Strategy: s, SimNSPerOp: st.SimNSPerOp})
		}
	}
	return out, nil
}

// MixPoint is one cell of the placement-mix ablation.
type MixPoint struct {
	LocalPercent int
	Strategy     flit.Strategy
	SimNSPerOp   float64
}

// PlacementMixAblation sweeps the fraction of operations that hit
// owner-local data (two registers: one local, one remote) and reports the
// per-strategy cost curve — where the §6.1 owner-local optimisation starts
// to separate from plain Algorithm 2.
func PlacementMixAblation(strategies []flit.Strategy, percents []int, ops int) ([]MixPoint, error) {
	var out []MixPoint
	for _, pct := range percents {
		for _, s := range strategies {
			cost, err := runMix(s, pct, ops)
			if err != nil {
				return nil, err
			}
			out = append(out, MixPoint{LocalPercent: pct, Strategy: s, SimNSPerOp: cost})
		}
	}
	return out, nil
}

func runMix(s flit.Strategy, localPct, ops int) (float64, error) {
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "worker", Mem: core.NonVolatile, Heap: 1024},
		{Name: "memhost", Mem: core.NonVolatile, Heap: 1024},
	}, memsim.Config{Latency: latency.NewModel(), EvictEvery: 64, Seed: 1})
	th, err := cluster.NewThread(0)
	if err != nil {
		return 0, err
	}
	se := flit.NewSession(s, th)
	localHeap, err := flit.NewHeap(cluster, 0)
	if err != nil {
		return 0, err
	}
	remoteHeap, err := flit.NewHeap(cluster, 1)
	if err != nil {
		return 0, err
	}
	localReg, err := ds.NewRegister(localHeap)
	if err != nil {
		return 0, err
	}
	remoteReg, err := ds.NewRegister(remoteHeap)
	if err != nil {
		return 0, err
	}

	seed := uint64(99)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	start := cluster.NowNS()
	for i := 0; i < ops; i++ {
		reg := remoteReg
		if next(100) < localPct {
			reg = localReg
		}
		if next(2) == 0 {
			if err := reg.Write(se, core.Val(1+next(50))); err != nil {
				return 0, err
			}
		} else {
			if _, err := reg.Read(se); err != nil {
				return 0, err
			}
		}
	}
	return (cluster.NowNS() - start) / float64(ops), nil
}

// TablePoint is one cell of the counter-table ablation.
type TablePoint struct {
	TableSize  int
	SimNSPerOp float64
	// HelpedLoads counts reads that observed a positive (possibly aliased)
	// counter and paid a helping flush.
	HelpedLoads int
}

// CounterTableAblation measures false sharing in the hashed FliT counter
// table: a writer keeps one owner-local variable mid-store (counter
// raised) while a reader reads many unrelated variables. With a tiny table
// the reader's variables alias the raised counter and every read pays a
// spurious helping flush; a larger table makes aliasing vanish.
func CounterTableAblation(sizes []int, readsPerSize int) ([]TablePoint, error) {
	var out []TablePoint
	for _, size := range sizes {
		cluster := memsim.NewCluster([]memsim.MachineConfig{
			{Name: "owner", Mem: core.NonVolatile, Heap: 4096},
			{Name: "reader", Mem: core.NonVolatile, Heap: 16},
		}, memsim.Config{Latency: latency.NewModel(), Seed: 1})
		ownerTh, err := cluster.NewThread(0)
		if err != nil {
			return nil, err
		}
		readerTh, err := cluster.NewThread(1)
		if err != nil {
			return nil, err
		}
		heap, err := flit.NewHeapSized(cluster, 0, size)
		if err != nil {
			return nil, err
		}
		writer := flit.NewSession(flit.CXL0FliTOpt, ownerTh)
		reader := flit.NewSession(flit.CXL0FliTOpt, readerTh)

		hot, err := heap.AllocVar()
		if err != nil {
			return nil, err
		}
		vars, err := heap.AllocVars(64)
		if err != nil {
			return nil, err
		}
		// Warm the reader's view of every variable.
		for _, v := range vars {
			if _, err := reader.Load(v); err != nil {
				return nil, err
			}
		}
		// The writer parks mid-store on the hot variable: counter raised.
		if err := writer.StoreBegin(hot, 1); err != nil {
			return nil, err
		}

		helped := 0
		start := cluster.NowNS()
		for i := 0; i < readsPerSize; i++ {
			v := vars[i%len(vars)]
			before := cluster.NowNS()
			if _, err := reader.Load(v); err != nil {
				return nil, err
			}
			// A helping flush costs at least a memory round trip; plain
			// cached reads cost a few ns.
			if cluster.NowNS()-before > 100 {
				helped++
			}
		}
		total := cluster.NowNS() - start
		if err := writer.StoreFinish(hot); err != nil {
			return nil, err
		}
		out = append(out, TablePoint{
			TableSize:   size,
			SimNSPerOp:  total / float64(readsPerSize),
			HelpedLoads: helped,
		})
	}
	return out, nil
}

// runWithCluster is Run with explicit eviction rate and counter-table
// size.
func runWithCluster(cfg Config, evictEvery, tableSize int) (Stats, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 2000
	}
	heapWords := cfg.Ops*8 + 1024
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "worker", Mem: core.NonVolatile, Heap: heapWords},
		{Name: "memhost", Mem: core.NonVolatile, Heap: heapWords},
	}, memsim.Config{Latency: latency.NewModel(), EvictEvery: evictEvery, Seed: cfg.Seed})

	home := core.MachineID(1)
	if cfg.Placement == Local {
		home = 0
	}
	heap, err := flit.NewHeapSized(cluster, home, tableSize)
	if err != nil {
		return Stats{}, err
	}
	th, err := cluster.NewThread(0)
	if err != nil {
		return Stats{}, err
	}
	se := flit.NewSession(cfg.Strategy, th)

	step, err := newStepper(cfg.Workload, heap, se)
	if err != nil {
		return Stats{}, err
	}
	rng := newRand(cfg.Seed + 1)
	for i := 0; i < 32; i++ {
		if err := step(se, rng); err != nil {
			return Stats{}, err
		}
	}
	start := cluster.NowNS()
	for i := 0; i < cfg.Ops; i++ {
		if err := step(se, rng); err != nil {
			return Stats{}, err
		}
	}
	total := cluster.NowNS() - start
	return Stats{Config: cfg, Ops: cfg.Ops, SimNS: total, SimNSPerOp: total / float64(cfg.Ops)}, nil
}
