package flitbench

import (
	"testing"

	"cxl0/internal/flit"
)

func cell(t *testing.T, w Workload, s flit.Strategy, p Placement) float64 {
	t.Helper()
	st, err := Run(Config{Workload: w, Strategy: s, Placement: p, Ops: 600, Seed: 1})
	if err != nil {
		t.Fatalf("%v/%v/%v: %v", w, s, p, err)
	}
	if st.SimNSPerOp <= 0 {
		t.Fatalf("%v/%v/%v: non-positive cost", w, s, p)
	}
	return st.SimNSPerOp
}

// TestDurabilityCostsSomething: the untransformed object (no-persist) is
// the cost floor; every sound strategy pays a real premium for durability.
func TestDurabilityCostsSomething(t *testing.T) {
	for _, w := range Workloads {
		floor := cell(t, w, flit.NoPersist, Remote)
		for _, s := range []flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt, flit.MStoreAll, flit.FlushOnRead} {
			if got := cell(t, w, s, Remote); got <= floor {
				t.Errorf("%v/%v: %.0f ns/op not above the no-persist floor %.0f", w, s, got, floor)
			}
		}
	}
}

// TestFliTBeatsFlushOnReadOnReadMostly is the FliT design point: the
// counter lets readers skip flushes, so on read-mostly workloads FliT must
// clearly beat the Izraelevitz-style flush-every-access construction.
func TestFliTBeatsFlushOnReadOnReadMostly(t *testing.T) {
	flitCost := cell(t, MapReadMostly, flit.CXL0FliT, Remote)
	forCost := cell(t, MapReadMostly, flit.FlushOnRead, Remote)
	if flitCost >= forCost {
		t.Errorf("read-mostly: cxl0-flit %.0f ns/op should beat flush-on-read %.0f", flitCost, forCost)
	}
	if forCost/flitCost < 1.1 {
		t.Errorf("read-mostly advantage too small: %.2fx", forCost/flitCost)
	}
}

// TestOwnerLocalOptimisationPays: with data on the worker's own machine,
// the §6.1 LFlush substitution must not lose to plain Algorithm 2, and
// must win visibly on store-heavy workloads.
func TestOwnerLocalOptimisationPays(t *testing.T) {
	for _, w := range Workloads {
		plain := cell(t, w, flit.CXL0FliT, Local)
		opt := cell(t, w, flit.CXL0FliTOpt, Local)
		if opt > plain*1.02 {
			t.Errorf("%v local: opt %.0f ns/op worse than plain %.0f", w, opt, plain)
		}
	}
	plain := cell(t, CounterHot, flit.CXL0FliT, Local)
	opt := cell(t, CounterHot, flit.CXL0FliTOpt, Local)
	if opt >= plain {
		t.Errorf("counter-hot local: opt %.0f should strictly beat plain %.0f", opt, plain)
	}
}

// TestSoundStrategiesComparable: with only synchronous invalidating
// flushes available (the CXL limitation §3.2 highlights), the sound
// strategies all end up within a small factor of one another — persisting
// costs roughly a memory round trip no matter how it is spelled.
func TestSoundStrategiesComparable(t *testing.T) {
	for _, w := range Workloads {
		costs := map[flit.Strategy]float64{}
		for _, s := range []flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt, flit.MStoreAll} {
			costs[s] = cell(t, w, s, Remote)
		}
		min, max := costs[flit.CXL0FliT], costs[flit.CXL0FliT]
		for _, c := range costs {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max/min > 4 {
			t.Errorf("%v: sound strategies spread %.1fx (min %.0f, max %.0f)", w, max/min, min, max)
		}
	}
}

// TestLocalCheaperThanRemote: placement matters — the same workload on
// owner-local data must cost less than on remote data for the sound
// strategies.
func TestLocalCheaperThanRemote(t *testing.T) {
	for _, s := range []flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt, flit.MStoreAll} {
		remote := cell(t, QueuePingPong, s, Remote)
		local := cell(t, QueuePingPong, s, Local)
		if local >= remote {
			t.Errorf("%v: local %.0f ns/op not cheaper than remote %.0f", s, local, remote)
		}
	}
}

// TestDeterministicGivenSeed: identical configs yield identical simulated
// costs (the whole simulation is deterministic for a fixed seed).
func TestDeterministicGivenSeed(t *testing.T) {
	a := cell(t, MapWriteHeavy, flit.CXL0FliT, Remote)
	b := cell(t, MapWriteHeavy, flit.CXL0FliT, Remote)
	if a != b {
		t.Errorf("non-deterministic: %.2f vs %.2f", a, b)
	}
}
