package flitbench

import (
	"testing"

	"cxl0/internal/flit"
)

// TestEvictionAblation checks that the sound strategies tolerate cache-
// replacement pressure: costs rise monotonically-ish with eviction rate
// but stay bounded, and the run is valid at every rate including "evict
// after every primitive".
func TestEvictionAblation(t *testing.T) {
	strategies := []flit.Strategy{flit.CXL0FliT, flit.MStoreAll, flit.NoPersist}
	points, err := EvictionAblation(strategies, []int{0, 64, 8, 1}, 400)
	if err != nil {
		t.Fatal(err)
	}
	costs := map[flit.Strategy]map[int]float64{}
	for _, p := range points {
		if costs[p.Strategy] == nil {
			costs[p.Strategy] = map[int]float64{}
		}
		costs[p.Strategy][p.EvictEvery] = p.SimNSPerOp
	}
	for _, s := range strategies {
		calm, stormy := costs[s][0], costs[s][1]
		if calm <= 0 || stormy <= 0 {
			t.Fatalf("%v: non-positive costs %v", s, costs[s])
		}
		if stormy < calm*0.9 {
			t.Errorf("%v: heavy eviction (%0.f) cheaper than none (%.0f)?", s, stormy, calm)
		}
		if s.Correct() && stormy > calm*6 {
			t.Errorf("%v: eviction blow-up %.1fx — sound strategies should be placement-stable", s, stormy/calm)
		}
	}
	// The sound strategies bypass caches for remote mutations, so eviction
	// pressure barely moves them; the cache-reliant baseline must degrade
	// visibly more.
	soundRatio := costs[flit.CXL0FliT][1] / costs[flit.CXL0FliT][0]
	nakedRatio := costs[flit.NoPersist][1] / costs[flit.NoPersist][0]
	if nakedRatio <= soundRatio {
		t.Errorf("no-persist eviction sensitivity %.2fx not above sound %.2fx", nakedRatio, soundRatio)
	}
}

// TestPlacementMixAblation checks the §6.1 crossover claim: the owner-local
// optimisation's advantage over plain Algorithm 2 grows with the fraction
// of local accesses, and vanishes when everything is remote.
func TestPlacementMixAblation(t *testing.T) {
	strategies := []flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt}
	points, err := PlacementMixAblation(strategies, []int{0, 50, 100}, 800)
	if err != nil {
		t.Fatal(err)
	}
	at := map[int]map[flit.Strategy]float64{}
	for _, p := range points {
		if at[p.LocalPercent] == nil {
			at[p.LocalPercent] = map[flit.Strategy]float64{}
		}
		at[p.LocalPercent][p.Strategy] = p.SimNSPerOp
	}
	// All-remote: identical code paths.
	r0 := at[0]
	if diff := r0[flit.CXL0FliT] - r0[flit.CXL0FliTOpt]; diff < -1 || diff > 1 {
		t.Errorf("0%% local: plain %.0f vs opt %.0f should coincide", r0[flit.CXL0FliT], r0[flit.CXL0FliTOpt])
	}
	// All-local: opt strictly cheaper.
	r100 := at[100]
	if r100[flit.CXL0FliTOpt] >= r100[flit.CXL0FliT] {
		t.Errorf("100%% local: opt %.0f not cheaper than plain %.0f", r100[flit.CXL0FliTOpt], r100[flit.CXL0FliT])
	}
	// Advantage grows with locality.
	adv50 := at[50][flit.CXL0FliT] - at[50][flit.CXL0FliTOpt]
	adv100 := r100[flit.CXL0FliT] - r100[flit.CXL0FliTOpt]
	if !(adv100 > adv50 && adv50 >= 0) {
		t.Errorf("advantage not growing with locality: 50%%=%.0f, 100%%=%.0f", adv50, adv100)
	}
}

// TestCounterTableAblation checks the false-sharing trade-off: with a
// single shared counter every read during a concurrent store pays a
// spurious helping flush; with a large table almost none do.
func TestCounterTableAblation(t *testing.T) {
	points, err := CounterTableAblation([]int{1, 8, 1024}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	tiny, mid, big := points[0], points[1], points[2]
	if tiny.HelpedLoads <= big.HelpedLoads {
		t.Errorf("aliasing did not shrink with table size: size1=%d helped, size1024=%d",
			tiny.HelpedLoads, big.HelpedLoads)
	}
	if tiny.HelpedLoads < 100 {
		t.Errorf("size-1 table: expected nearly every read to help, got %d/128", tiny.HelpedLoads)
	}
	if big.HelpedLoads > 8 {
		t.Errorf("size-1024 table: expected almost no aliasing, got %d/128 helped", big.HelpedLoads)
	}
	if tiny.SimNSPerOp <= big.SimNSPerOp {
		t.Errorf("false sharing should cost time: size1 %.0f ns/op vs size1024 %.0f",
			tiny.SimNSPerOp, big.SimNSPerOp)
	}
	_ = mid
}
