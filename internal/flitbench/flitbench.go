// Package flitbench measures the cost of persistence strategies (§6.1 of
// the paper) on the runtime's simulated clock: how many simulated
// nanoseconds of CXL traffic one high-level operation costs under each
// transformation, for different workloads and data placements.
//
// Wall-clock time on the simulation host is meaningless here; the
// simulated clock charges each CXL0 primitive the latency model's cost
// (§5.2 / Figure 5), so the comparison reflects what the paper's hardware
// would see.
package flitbench

import (
	"fmt"
	"math/rand"

	"cxl0/internal/core"
	"cxl0/internal/ds"
	"cxl0/internal/flit"
	"cxl0/internal/latency"
	"cxl0/internal/memsim"
)

// Workload selects a benchmark workload.
type Workload int

const (
	// QueuePingPong alternates enqueue and dequeue.
	QueuePingPong Workload = iota
	// MapReadMostly is 90% Get / 10% Put over a small key space.
	MapReadMostly
	// MapWriteHeavy is 50% Put / 30% Get / 20% Delete.
	MapWriteHeavy
	// CounterHot hammers one fetch-and-add counter.
	CounterHot
	// RegisterMixed is 50% read / 40% write / 10% CAS.
	RegisterMixed
	// StackChurn alternates push and pop.
	StackChurn
)

var workloadNames = [...]string{
	"queue-pingpong", "map-read-mostly", "map-write-heavy", "counter-hot", "register-mixed", "stack-churn",
}

func (w Workload) String() string { return workloadNames[w] }

// Workloads lists all benchmark workloads.
var Workloads = []Workload{QueuePingPong, MapReadMostly, MapWriteHeavy, CounterHot, RegisterMixed, StackChurn}

// Placement says where the structure's memory lives relative to the worker.
type Placement int

const (
	// Remote places the structure on a memory host distinct from the
	// worker's machine (the disaggregated case).
	Remote Placement = iota
	// Local places the structure on the worker's own machine.
	Local
)

func (p Placement) String() string {
	if p == Local {
		return "local"
	}
	return "remote"
}

// Config is one benchmark cell.
type Config struct {
	Workload  Workload
	Strategy  flit.Strategy
	Placement Placement
	Ops       int
	Seed      int64
}

// Stats is the result of one cell.
type Stats struct {
	Config     Config
	Ops        int
	SimNS      float64
	SimNSPerOp float64
}

// Run executes one benchmark cell on a fresh cluster.
func Run(cfg Config) (Stats, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 2000
	}
	heapWords := cfg.Ops*8 + 1024
	cluster := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "worker", Mem: core.NonVolatile, Heap: heapWords},
		{Name: "memhost", Mem: core.NonVolatile, Heap: heapWords},
	}, memsim.Config{Latency: latency.NewModel(), EvictEvery: 64, Seed: cfg.Seed})

	home := core.MachineID(1)
	if cfg.Placement == Local {
		home = 0
	}
	heap, err := flit.NewHeap(cluster, home)
	if err != nil {
		return Stats{}, err
	}
	th, err := cluster.NewThread(0)
	if err != nil {
		return Stats{}, err
	}
	se := flit.NewSession(cfg.Strategy, th)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	step, err := newStepper(cfg.Workload, heap, se)
	if err != nil {
		return Stats{}, err
	}
	// Warm up structure and caches a little before timing.
	for i := 0; i < 32; i++ {
		if err := step(se, rng); err != nil {
			return Stats{}, err
		}
	}
	start := cluster.NowNS()
	for i := 0; i < cfg.Ops; i++ {
		if err := step(se, rng); err != nil {
			return Stats{}, err
		}
	}
	total := cluster.NowNS() - start
	return Stats{Config: cfg, Ops: cfg.Ops, SimNS: total, SimNSPerOp: total / float64(cfg.Ops)}, nil
}

// newRand returns the deterministic PRNG used by benchmark cells.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// stepper performs one workload operation.
type stepper func(se *flit.Session, rng *rand.Rand) error

func newStepper(w Workload, heap *flit.Heap, se *flit.Session) (stepper, error) {
	switch w {
	case QueuePingPong:
		q, err := ds.NewQueue(heap, se)
		if err != nil {
			return nil, err
		}
		toggle := false
		return func(se *flit.Session, rng *rand.Rand) error {
			toggle = !toggle
			if toggle {
				return q.Enqueue(se, core.Val(1+rng.Intn(100)))
			}
			_, _, err := q.Dequeue(se)
			return err
		}, nil
	case MapReadMostly, MapWriteHeavy:
		m, err := ds.NewMap(heap, 16)
		if err != nil {
			return nil, err
		}
		readPct := 90
		if w == MapWriteHeavy {
			readPct = 30
		}
		return func(se *flit.Session, rng *rand.Rand) error {
			k := core.Val(1 + rng.Intn(32))
			r := rng.Intn(100)
			switch {
			case r < readPct:
				_, _, err := m.Get(se, k)
				return err
			case w == MapWriteHeavy && r >= 80:
				_, err := m.Delete(se, k)
				return err
			default:
				return m.Put(se, k, core.Val(1+rng.Intn(100)))
			}
		}, nil
	case CounterHot:
		c, err := ds.NewCounter(heap)
		if err != nil {
			return nil, err
		}
		return func(se *flit.Session, rng *rand.Rand) error {
			_, err := c.Inc(se)
			return err
		}, nil
	case RegisterMixed:
		r, err := ds.NewRegister(heap)
		if err != nil {
			return nil, err
		}
		return func(se *flit.Session, rng *rand.Rand) error {
			switch n := rng.Intn(10); {
			case n < 5:
				_, err := r.Read(se)
				return err
			case n < 9:
				return r.Write(se, core.Val(1+rng.Intn(100)))
			default:
				_, err := r.CompareAndSwap(se, core.Val(rng.Intn(100)), core.Val(1+rng.Intn(100)))
				return err
			}
		}, nil
	case StackChurn:
		s, err := ds.NewStack(heap)
		if err != nil {
			return nil, err
		}
		toggle := false
		return func(se *flit.Session, rng *rand.Rand) error {
			toggle = !toggle
			if toggle {
				return s.Push(se, core.Val(1+rng.Intn(100)))
			}
			_, _, err := s.Pop(se)
			return err
		}, nil
	}
	return nil, fmt.Errorf("flitbench: unknown workload %d", int(w))
}
