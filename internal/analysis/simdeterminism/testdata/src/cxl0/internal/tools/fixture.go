// Package tools is outside both the sim-path and host-boundary sets:
// the analyzer must stay silent here.
package tools

import (
	"math/rand"
	"time"
)

// Free may do all of it.
func Free() int {
	_ = time.Now()
	n := rand.Intn(10)
	m := map[int]int{1: 1}
	for k := range m {
		n += k
	}
	return n
}
