// Package obs is a host-boundary fixture for the simdeterminism
// analyzer: the clock and RNG rules apply (with //cxl0:hostclock
// escapes expected), the map-iteration rule does not.
package obs

import "time"

// Host reads the host clock for host-visible output.
func Host() int {
	_ = time.Now()  // want `time\.Now reads the host clock`
	t := time.Now() //cxl0:hostclock — rolling host-rate window
	m := map[int]int{1: 1}
	sum := 0
	for k := range m { // ok: feeds host-visible output only
		sum += k
	}
	return sum + t.Nanosecond()
}
