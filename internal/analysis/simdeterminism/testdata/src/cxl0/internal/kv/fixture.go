// Package kv is a sim-path fixture for the simdeterminism analyzer:
// every rule applies here.
package kv

import (
	"math/rand"
	"time"
)

// Sim exercises the host-clock, global-RNG and map-iteration rules.
func Sim() int {
	_ = time.Now()   // want `time\.Now reads the host clock`
	time.Sleep(0)    // want `time\.Sleep reads the host clock`
	d := time.Second // ok: pure arithmetic, no clock read
	_ = d

	n := rand.Intn(10) // want `rand\.Intn draws from the global math/rand source`
	rand.Seed(7)       // want `rand\.Seed draws from the global math/rand source`
	r := rand.New(rand.NewSource(42))
	n += r.Intn(10) // ok: seeded, locally-owned generator

	m := map[int]int{1: 1, 2: 2}
	sum := 0
	for k := range m { // want `map iteration order is randomized per run`
		sum += k
	}
	//cxl0:order-insensitive — commutative sum, no ordering escapes
	for k, v := range m {
		sum += k * v
	}
	for i := range []int{1, 2, 3} { // ok: slice iteration is ordered
		sum += i
	}
	return n + sum
}
