package simdeterminism_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"cxl0/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), simdeterminism.Analyzer,
		"cxl0/internal/kv", "cxl0/internal/obs", "cxl0/internal/tools")
}
