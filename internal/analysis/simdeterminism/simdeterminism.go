// Package simdeterminism defines an analyzer enforcing the simulator's
// reproducibility contract: an observed run must be bit-identical to an
// unobserved one, and a seeded run must replay bit-identically. Three
// things break that silently and are therefore forbidden in the
// sim-path packages:
//
//   - host-clock reads (time.Now and friends) — simulated cost must be
//     charged on the simulated clock, never measured on the host's;
//   - the global math/rand source — all randomness must flow from a
//     seeded, locally-owned *rand.Rand so a seed pins the whole run;
//   - ranging over a map where the iteration feeds sim-visible state —
//     Go randomizes map iteration order per run, so any clock charge,
//     event payload, log/slot ordering or shard selection derived from
//     it diverges between bit-identical seeds.
//
// The host-facing packages (internal/obs rolling rates, cmd/cxl0-serve)
// legitimately read the host clock; those sites carry a
// //cxl0:hostclock annotation. A map iteration whose effect is provably
// order-insensitive (e.g. draining a set where every element gets the
// same treatment and no order-dependent state escapes) may carry
// //cxl0:order-insensitive. See docs/analysis.md.
package simdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"cxl0/internal/analysis/annot"
)

// simPkgs are the packages on the simulated timeline: every rule
// applies.
var simPkgs = flagSet(
	"cxl0/internal/core",
	"cxl0/internal/memsim",
	"cxl0/internal/kv",
	"cxl0/internal/kv/kvtest",
	"cxl0/internal/pool",
	"cxl0/internal/faults",
	"cxl0/internal/workload",
)

// hostPkgs sit at the host boundary: the clock and RNG rules apply
// (with //cxl0:hostclock escapes expected), but map iteration there
// feeds host-visible output only.
var hostPkgs = flagSet(
	"cxl0/internal/obs",
	"cxl0/cmd/cxl0-serve",
)

// hostClockFuncs are the time package's host-clock entry points. Pure
// arithmetic (time.Duration, time.Unix) stays allowed.
var hostClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// globalRandFuncs are the package-level math/rand (and v2) functions
// backed by the process-global source. Constructors for locally seeded
// generators (New, NewSource, NewZipf, NewPCG, NewChaCha8) are allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Uint32": true, "Uint64": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true, "Uint": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid host-clock reads, the global math/rand source, and sim-visible map iteration in sim-path packages\n\n" +
		"The benchmark methodology depends on seeded runs replaying bit-identically and on observation having zero " +
		"simulated cost; this analyzer rejects the three constructs that silently break that.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&extraSimPkgs, "simpkgs", "", "comma-separated extra import paths to treat as sim-path")
	Analyzer.Flags.StringVar(&extraHostPkgs, "hostpkgs", "", "comma-separated extra import paths to treat as host-boundary")
}

var extraSimPkgs, extraHostPkgs string

func flagSet(paths ...string) map[string]bool {
	m := map[string]bool{}
	for _, p := range paths {
		m[p] = true
	}
	return m
}

func inSet(set map[string]bool, extra, path string) bool {
	if set[path] {
		return true
	}
	for _, p := range strings.Split(extra, ",") {
		if p != "" && p == path {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	sim := inSet(simPkgs, extraSimPkgs, path)
	host := inSet(hostPkgs, extraHostPkgs, path)
	if !sim && !host {
		return nil, nil
	}
	anns := annot.Gather(pass.Fset, pass.Files)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // a method (e.g. on a seeded *rand.Rand), not a package-level function
				}
				switch obj.Pkg().Path() {
				case "time":
					if hostClockFuncs[obj.Name()] && !anns.Allows(n.Pos(), "hostclock") {
						pass.ReportRangef(n, "time.%s reads the host clock: sim-path code must charge the simulated clock "+
							"(annotate //cxl0:hostclock only for genuinely host-visible sites like rolling rates)", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if globalRandFuncs[obj.Name()] {
						pass.ReportRangef(n, "rand.%s draws from the global math/rand source: use a seeded, locally-owned "+
							"*rand.Rand so the run replays bit-identically from its seed", obj.Name())
					}
				}
			case *ast.RangeStmt:
				if !sim {
					return true
				}
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap && !anns.Allows(n.For, "order-insensitive") {
					pass.ReportRangef(n.X, "map iteration order is randomized per run: sim-visible state (clock charges, "+
						"event payloads, log/slot ordering, shard selection) must not depend on it — iterate sorted keys, "+
						"or annotate //cxl0:order-insensitive with a rationale if no ordering escapes")
				}
			}
			return true
		})
	}
	return nil, nil
}
