// Package guardedby defines an annotation-driven lock-discipline
// analyzer. A struct field annotated
//
//	//cxl0:guarded-by mu
//
// may only be read or written while a mutex named mu is held. The
// analyzer tracks Lock/RLock/Unlock/RUnlock calls in source order
// through each function body (a deferred Unlock does not release for
// the remainder of the body) and reports any guarded access outside a
// held region. Two escapes express "the lock is held by contract":
// functions whose name ends in Locked (the repo's caller-holds
// convention, e.g. commitLocked) and functions annotated
// //cxl0:locked mu — both are also the right marker for constructors
// whose receiver has not escaped yet.
//
// The tracking is deliberately a source-order approximation, not a
// path-sensitive proof: it is the static half of a pincer whose dynamic
// half is the -race CI job over the same state (docs/analysis.md lays
// out what each half catches). Composite-literal keys are not accesses;
// the contents of a func literal are checked under the lock state at
// its creation point.
package guardedby

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"cxl0/internal/analysis/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated //cxl0:guarded-by mu may only be accessed while the named mutex is held\n\n" +
		"Protects the pipelined commit path's crash-safety argument: the acked watermark, flight queue and " +
		"shadow map only change under the shard lock.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	guarded := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				lock, ok := annot.In([]*ast.CommentGroup{field.Doc, field.Comment}, "guarded-by")
				if !ok {
					continue
				}
				lock = firstWord(lock)
				if lock == "" {
					pass.ReportRangef(field, "//cxl0:guarded-by needs the mutex field name, e.g. //cxl0:guarded-by mu")
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = lock
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil, nil
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // caller-holds convention
			}
			w := &walker{pass: pass, guarded: guarded, held: map[string]bool{}}
			if lock, ok := annot.In([]*ast.CommentGroup{fn.Doc}, "locked"); ok {
				for _, name := range strings.Fields(lock) {
					w.held[name] = true
				}
			}
			w.walk(fn.Body)
		}
	}
	return nil, nil
}

func firstWord(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// walker checks one function body, tracking which mutex names are held
// in source order.
type walker struct {
	pass    *analysis.Pass
	guarded map[types.Object]string
	held    map[string]bool
	inDefer bool
}

func (w *walker) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		// Arguments and receiver evaluate before the call's effect.
		for _, arg := range n.Args {
			w.walk(arg)
		}
		if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
			w.walk(sel.X) // the receiver chain may itself access guarded fields
			if lockName, ok := mutexName(sel); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if !w.inDefer {
						w.held[lockName] = true
					}
				case "Unlock", "RUnlock":
					if !w.inDefer {
						delete(w.held, lockName)
					}
				}
				return
			}
			w.checkSelector(sel)
			return
		}
		w.walk(n.Fun)

	case *ast.DeferStmt:
		saved := w.inDefer
		w.inDefer = true
		w.walk(n.Call)
		w.inDefer = saved

	case *ast.SelectorExpr:
		w.walk(n.X)
		w.checkSelector(n)

	case *ast.CompositeLit:
		// Struct-literal keys name fields but do not access them on a
		// live value; the values are ordinary expressions.
		w.walk(n.Type)
		for _, elt := range n.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if _, isIdent := kv.Key.(*ast.Ident); isIdent {
					w.walk(kv.Value)
					continue
				}
			}
			w.walk(elt)
		}

	default:
		inorder(n, w.walk)
	}
}

// checkSelector reports a guarded-field access outside its lock.
func (w *walker) checkSelector(sel *ast.SelectorExpr) {
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		obj = w.pass.TypesInfo.Defs[sel.Sel]
	}
	lockName, ok := w.guarded[obj]
	if !ok {
		return
	}
	if !w.held[lockName] {
		w.pass.ReportRangef(sel, "%s is guarded by %s (//cxl0:guarded-by): lock %s on every path to this access, "+
			"or mark the enclosing function //cxl0:locked %s (or name it ...Locked) if its caller holds the lock",
			sel.Sel.Name, lockName, lockName, lockName)
	}
}

// mutexName reports whether sel is a Lock/RLock/Unlock/RUnlock method
// selection on a sync.Mutex or sync.RWMutex, returning the name of the
// mutex-valued field or variable it locks.
func mutexName(sel *ast.SelectorExpr) (string, bool) {
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		return x.Sel.Name, true
	}
	return "", false
}

// inorder visits n's immediate children in source order.
func inorder(n ast.Node, visit func(ast.Node)) {
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		children = append(children, c)
		return false
	})
	for _, c := range children {
		visit(c)
	}
}
