// Package kv is a lock-discipline fixture for the guardedby analyzer.
package kv

import "sync"

type counter struct {
	mu sync.Mutex
	//cxl0:guarded-by mu
	n int
	// free is unguarded: accessible anywhere.
	free int
}

func (c *counter) Bad() int {
	return c.n // want `n is guarded by mu`
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // ok: lock held (the deferred Unlock releases after return)
}

func (c *counter) Sloppy() {
	c.mu.Lock()
	c.n++ // ok: inside the held region
	c.mu.Unlock()
	c.n++ // want `n is guarded by mu`
}

// bumpLocked relies on the caller-holds suffix convention.
func (c *counter) bumpLocked() { c.n++ }

// bumpContract documents the same contract by annotation.
//
//cxl0:locked mu
func (c *counter) bumpContract() { c.n++ }

func (c *counter) Free() int { return c.free } // ok: unguarded field

type rw struct {
	mu sync.RWMutex
	//cxl0:guarded-by mu
	v int
}

func (r *rw) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v // ok: reader lock counts
}

func (r *rw) Leak() int {
	return r.v // want `v is guarded by mu`
}
