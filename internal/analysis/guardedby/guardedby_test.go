package guardedby_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"cxl0/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer,
		"cxl0/internal/kv")
}
