package strategyswitch_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"cxl0/internal/analysis/strategyswitch"
)

func TestStrategySwitch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), strategyswitch.Analyzer,
		"cxl0/internal/kv")
}
