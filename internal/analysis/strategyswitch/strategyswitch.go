// Package strategyswitch defines an exhaustiveness analyzer for the
// simulator's closed enums: any switch over kv.Strategy, core.Op (the
// litmus op kinds) or workload.OpKind must either cover every declared
// constant of the type or carry an explicit default clause. The next
// strategy or op added to the simulator then fails the lint job at
// every dispatch it silently falls through (store.go's strategy
// dispatch being the load-bearing one), instead of persisting nothing.
package strategyswitch

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "strategyswitch",
	Doc: "switches over the simulator's closed enums must be exhaustive or carry an explicit default\n\n" +
		"Covers kv.Strategy, core.Op and workload.OpKind: adding an enumerator must break every dispatch " +
		"that has not decided what to do with it.",
	Run: run,
}

var typesFlag string

func init() {
	Analyzer.Flags.StringVar(&typesFlag, "types",
		"cxl0/internal/kv.Strategy,cxl0/internal/core.Op,cxl0/internal/workload.OpKind",
		"comma-separated qualified named types whose switches must be exhaustive")
}

func run(pass *analysis.Pass) (interface{}, error) {
	enums := map[string]bool{}
	for _, t := range strings.Split(typesFlag, ",") {
		if t != "" {
			enums[t] = true
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypesInfo.TypeOf(sw.Tag)
			named, ok := tagType.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			qualified := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if !enums[qualified] {
				return true
			}

			covered := map[string]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, expr := range cc.List {
					if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
						covered[tv.Value.ExactString()] = true
					}
				}
			}
			if hasDefault {
				return true
			}

			var missing []string
			for _, c := range enumerators(named) {
				if !covered[c.Val().ExactString()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.ReportRangef(sw.Tag, "switch over %s is not exhaustive: missing %s (add the cases, or an explicit default that decides what a new enumerator means here)",
					qualified, strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil, nil
}

// enumerators returns the package-level constants of exactly the named
// type, in declaration-value order. Blank constants and count sentinels
// (names beginning "num") are not enumerators.
func enumerators(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Name() == "_" || strings.HasPrefix(c.Name(), "num") {
			continue
		}
		if types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Int64Val(out[i].Val())
		vj, _ := constant.Int64Val(out[j].Val())
		if vi != vj {
			return vi < vj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}
