// Package kv is an enum-switch fixture for the strategyswitch analyzer.
// The Strategy type here stands in for the real kv.Strategy: the
// analyzer matches switches by the qualified type name, which this
// GOPATH fixture reproduces exactly.
package kv

// Strategy mirrors the real enum's shape.
type Strategy int

const (
	// MStoreEach is the first enumerator.
	MStoreEach Strategy = iota
	// StoreFlush is the second.
	StoreFlush
	// GroupCommit is the third.
	GroupCommit
)

// numStrategies is a count sentinel, not an enumerator: exhaustive
// switches need not cover it.
const numStrategies Strategy = 3

// _ is blank and likewise not an enumerator.
const _ Strategy = 99

func incomplete(s Strategy) int {
	switch s { // want `switch over cxl0/internal/kv\.Strategy is not exhaustive: missing GroupCommit`
	case MStoreEach:
		return 1
	case StoreFlush:
		return 2
	}
	return 0
}

func exhaustive(s Strategy) int {
	switch s { // ok: every enumerator covered (sentinels excluded)
	case MStoreEach, StoreFlush:
		return 1
	case GroupCommit:
		return 2
	}
	return 0
}

func defaulted(s Strategy) int {
	switch s { // ok: the default decides what a new enumerator means here
	case MStoreEach:
		return 1
	default:
		return 0
	}
}

func otherType(n int) int {
	switch n { // ok: not a tracked enum
	case 1:
		return 1
	}
	return 0
}
