// Package errtaxonomy defines an analyzer enforcing the kv error
// taxonomy at raise sites. Protocol code in internal/kv and
// internal/pool must fail with the typed sentinels callers errors.Is
// against (ErrShardDown, ErrUnavailable, ErrFrontDown, ErrBadKey,
// ErrDurabilityViolation, the structured ShardFullError and
// PartialResultError, ...): the fault-campaign degradation contract
// (docs/faults.md) is built on callers being able to classify failures.
//
// The analyzer flags, inside function bodies of those packages:
//
//   - fmt.Errorf calls whose format string does not wrap anything with
//     %w — the resulting error matches no sentinel;
//   - errors.New calls — a fresh unwrappable error (package-level
//     errors.New declarations are the taxonomy's sentinels and stay
//     allowed).
//
// A raise site that is genuinely outside the protocol surface (e.g. a
// CLI flag parse error) can carry //cxl0:adhoc-error with a rationale.
// See docs/analysis.md.
package errtaxonomy

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"cxl0/internal/analysis/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: "protocol raise sites in internal/kv and internal/pool must fail with the typed error taxonomy\n\n" +
		"Callers errors.Is/errors.As against the kv sentinels; an ad-hoc fmt.Errorf or in-function errors.New " +
		"produces an error no caller can classify.",
	Run: run,
}

var pkgsFlag string

func init() {
	Analyzer.Flags.StringVar(&pkgsFlag, "pkgs", "cxl0/internal/kv,cxl0/internal/pool",
		"comma-separated import paths whose raise sites must use the typed taxonomy")
}

func run(pass *analysis.Pass) (interface{}, error) {
	checked := false
	for _, p := range strings.Split(pkgsFlag, ",") {
		if p != "" && p == pass.Pkg.Path() {
			checked = true
		}
	}
	if !checked {
		return nil, nil
	}
	anns := annot.Gather(pass.Fset, pass.Files)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				switch {
				case obj.Pkg().Path() == "errors" && obj.Name() == "New":
					if !anns.Allows(call.Pos(), "adhoc-error") {
						pass.ReportRangef(call, "errors.New inside a function raises an error no caller can errors.Is: "+
							"use (or add) a sentinel from the kv error taxonomy, or annotate //cxl0:adhoc-error with a rationale")
					}
				case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf":
					if len(call.Args) == 0 {
						return true
					}
					format, known := stringConstant(pass, call.Args[0])
					if known && strings.Contains(format, "%w") {
						return true
					}
					if anns.Allows(call.Pos(), "adhoc-error") {
						return true
					}
					if !known {
						pass.ReportRangef(call, "fmt.Errorf with a non-constant format cannot be checked for %%w wrapping: "+
							"wrap a taxonomy sentinel explicitly, or annotate //cxl0:adhoc-error with a rationale")
						return true
					}
					pass.ReportRangef(call, "fmt.Errorf without %%w raises an error no caller can errors.Is: "+
						"wrap a sentinel from the kv error taxonomy, or annotate //cxl0:adhoc-error with a rationale")
				}
				return true
			})
		}
	}
	return nil, nil
}

// stringConstant resolves expr to its constant string value, if it has
// one.
func stringConstant(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
