package errtaxonomy_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/analysistest"

	"cxl0/internal/analysis/errtaxonomy"
)

func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errtaxonomy.Analyzer,
		"cxl0/internal/kv", "cxl0/internal/tools")
}
