// Package kv is a raise-site fixture for the errtaxonomy analyzer.
package kv

import (
	"errors"
	"fmt"
)

// ErrThing is a taxonomy sentinel: package-level errors.New declarations
// ARE the taxonomy and stay allowed.
var ErrThing = errors.New("kv: thing")

func raise(i int) error {
	switch i {
	case 0:
		return errors.New("boom") // want `errors\.New inside a function`
	case 1:
		return fmt.Errorf("shard %d broke", i) // want `fmt\.Errorf without %w`
	case 2:
		return fmt.Errorf("shard %d: %w", i, ErrThing) // ok: wraps a sentinel
	case 3:
		format := "not even a verb"
		return fmt.Errorf(format) // want `non-constant format`
	case 4:
		return errors.New("usage: fixture [flags]") //cxl0:adhoc-error — CLI usage, not protocol surface
	}
	return nil
}
