// Package tools is outside the checked package set: ad-hoc errors are
// fine here and the analyzer must stay silent.
package tools

import "errors"

func raise() error {
	return errors.New("anything goes")
}
