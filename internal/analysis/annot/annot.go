// Package annot parses the //cxl0: source annotations the analyzers in
// internal/analysis understand. An annotation is a line comment of the
// form
//
//	//cxl0:NAME [args...] [— free-form rationale]
//
// attached either to a declaration's doc/line comment group (fields,
// functions) or positionally: on the same line as the construct it
// allows, or on the line immediately above it. docs/analysis.md is the
// annotation catalog.
package annot

import (
	"go/ast"
	"go/token"
	"strings"
)

// An Ann is one parsed //cxl0: annotation.
type Ann struct {
	Name string // e.g. "hostclock", "guarded-by"
	Args string // text after the name, e.g. the mutex field name
	Line int
}

// parse extracts the annotation from one comment's text, if any.
func parse(text string) (name, args string, ok bool) {
	rest, found := strings.CutPrefix(text, "//cxl0:")
	if !found {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", false
	}
	return fields[0], strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])), true
}

// In scans a comment group (a declaration's Doc or a field's trailing
// Comment) for the named annotation and returns its args.
func In(groups []*ast.CommentGroup, name string) (args string, ok bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if n, a, found := parse(c.Text); found && n == name {
				return a, true
			}
		}
	}
	return "", false
}

// Index is the positional annotation index of a set of files: every
// //cxl0: comment, keyed by file and line.
type Index struct {
	fset   *token.FileSet
	byFile map[string]map[int][]Ann
}

// Gather indexes every //cxl0: annotation in the files.
func Gather(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, byFile: map[string]map[int][]Ann{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := parse(c.Text)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				lines := ix.byFile[posn.Filename]
				if lines == nil {
					lines = map[int][]Ann{}
					ix.byFile[posn.Filename] = lines
				}
				lines[posn.Line] = append(lines[posn.Line], Ann{Name: name, Args: args, Line: posn.Line})
			}
		}
	}
	return ix
}

// Allows reports whether the named annotation covers pos: it sits on
// the same line or on the line immediately above.
func (ix *Index) Allows(pos token.Pos, name string) bool {
	posn := ix.fset.Position(pos)
	lines := ix.byFile[posn.Filename]
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		for _, a := range lines[line] {
			if a.Name == name {
				return true
			}
		}
	}
	return false
}
