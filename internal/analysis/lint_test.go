package analysis_test

import (
	"os/exec"
	"testing"
)

// TestLintCleanOverTree is the meta-check behind the CI lint job: the
// full cxl0-lint suite must run clean over the whole repository. A
// finding here is either a genuine new violation (fix it) or a
// deliberate exception (annotate it — see docs/analysis.md).
func TestLintCleanOverTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full dependency graph; run without -short")
	}
	cmd := exec.Command("go", "run", "./cmd/cxl0-lint", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cxl0-lint is not clean over ./...:\n%s(%v)", out, err)
	}
}
