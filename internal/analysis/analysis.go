// Package analysis collects the cxl0 static-analysis suite: the
// go/analysis passes that mechanically enforce the simulator's
// determinism and protocol invariants. cmd/cxl0-lint is the multichecker
// binary over exactly this set; docs/analysis.md is the rule catalog.
package analysis

import (
	xanalysis "golang.org/x/tools/go/analysis"

	"cxl0/internal/analysis/errtaxonomy"
	"cxl0/internal/analysis/guardedby"
	"cxl0/internal/analysis/simdeterminism"
	"cxl0/internal/analysis/strategyswitch"
)

// All returns the full cxl0 analyzer suite, in the order cxl0-lint runs
// it.
func All() []*xanalysis.Analyzer {
	return []*xanalysis.Analyzer{
		simdeterminism.Analyzer,
		errtaxonomy.Analyzer,
		strategyswitch.Analyzer,
		guardedby.Analyzer,
	}
}
