// Package core implements CXL0, the operational programming model for
// coherent disaggregated memory over CXL introduced by Assa et al.
// (ASPLOS 2026).
//
// The model is a labeled transition system. A system consists of N machines
// connected by a CXL fabric. Each machine i has an abstract local cache
// C_i : Loc -> Val ∪ {⊥} over the whole shared address space, and an
// abstract local memory M_i : Loc_i -> Val over the locations it owns.
// "Cache" and "memory" do not correspond one-to-one to hardware structures;
// they capture how far a write has propagated towards physical persistence.
//
// Transitions are labeled with the CXL0 primitives
//
//	Load_i(x,v)    — read; served from any valid cache copy (all valid
//	                 copies agree, by the global invariant), else from the
//	                 owner's memory when no cache holds the line
//	LStore_i(x,v)  — store into the issuer's cache
//	RStore_i(x,v)  — store into the owner's cache
//	MStore_i(x,v)  — store directly into the owner's memory
//	LFlush_i(x)    — block until the issuer's cache no longer holds x
//	RFlush_i(x)    — block until no cache holds x
//	RFlushRange_i(x,n) — ranged persistent flush: block until no cache holds
//	                 any of the n consecutive locations starting at x (§7's
//	                 finer-grained flush sketch; RFlushRange(x,1) ≡ RFlush(x))
//	GPF_i          — global persistent flush: block until all caches drain
//	L/R/M-RMW      — atomic read-modify-write, store half as above
//
// plus silent nondeterministic propagation steps τ (cache-to-owner-cache and
// owner-cache-to-memory, modeling cache replacement) and per-machine crash
// steps E_i (the cache vanishes; volatile memory resets to zero).
//
// Two hardware variants from §3.5 of the paper are supported:
//
//	PSN — crash with cache-line poisoning: a crash of machine i also
//	      invalidates i-owned lines in every other cache.
//	LWB — remote loads with implicit write-back: loads are served from the
//	      issuer's own cache or, after full propagation, from memory;
//	      a machine never reads directly out of a peer's cache.
//
// The package provides states, labels, the step relation (per variant), and
// the global single-valid-value invariant. Exhaustive exploration utilities
// live in package explore; the executable concurrent runtime lives in
// package memsim.
package core
