package core

import "testing"

// twoMachines builds the standard two-machine topology of Figure 1: machine
// 0 owns x, machine 1 owns y, both non-volatile unless flipped by the test.
func twoMachines(t *testing.T) (*Topology, LocID, LocID) {
	t.Helper()
	topo := NewTopology()
	m0 := topo.AddMachine("left", NonVolatile)
	m1 := topo.AddMachine("right", NonVolatile)
	x := topo.AddLoc("x", m0)
	y := topo.AddLoc("y", m1)
	return topo, x, y
}

func mustApply(t *testing.T, s *State, l Label, v Variant) *State {
	t.Helper()
	out := Apply(s, l, v)
	if len(out) != 1 {
		t.Fatalf("Apply(%v) under %v: got %d successors, want 1 (state %v)", l, v, len(out), s)
	}
	if err := out[0].CheckInvariant(); err != nil {
		t.Fatalf("Apply(%v): invariant broken: %v", l, err)
	}
	return out[0]
}

func TestInitialState(t *testing.T) {
	topo, x, y := twoMachines(t)
	s := NewState(topo)
	for m := 0; m < topo.NumMachines(); m++ {
		for l := 0; l < topo.NumLocs(); l++ {
			if got := s.Cache(MachineID(m), LocID(l)); got != Bot {
				t.Errorf("initial C%d(loc%d) = %d, want ⊥", m, l, got)
			}
		}
	}
	if s.Mem(x) != 0 || s.Mem(y) != 0 {
		t.Errorf("initial memory not zeroed: %v", s)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("initial state breaks invariant: %v", err)
	}
}

func TestLStoreWritesIssuerCacheAndInvalidatesOthers(t *testing.T) {
	topo, x, _ := twoMachines(t)
	s := NewState(topo)
	s.SetCache(1, x, 0) // stale copy at machine 1
	n := mustApply(t, s, LStoreL(0, x, 7), Base)
	if n.Cache(0, x) != 7 {
		t.Errorf("C0(x) = %d, want 7", n.Cache(0, x))
	}
	if n.Cache(1, x) != Bot {
		t.Errorf("C1(x) = %d, want ⊥ (invalidated)", n.Cache(1, x))
	}
	if n.Mem(x) != 0 {
		t.Errorf("M(x) = %d, want 0 (LStore must not touch memory)", n.Mem(x))
	}
}

func TestRStoreWritesOwnerCache(t *testing.T) {
	topo, _, y := twoMachines(t)
	s := NewState(topo)
	n := mustApply(t, s, RStoreL(0, y, 5), Base)
	if n.Cache(1, y) != 5 {
		t.Errorf("C1(y) = %d, want 5 (owner's cache)", n.Cache(1, y))
	}
	if n.Cache(0, y) != Bot {
		t.Errorf("C0(y) = %d, want ⊥", n.Cache(0, y))
	}
	if n.Mem(y) != 0 {
		t.Errorf("M(y) = %d, want 0", n.Mem(y))
	}
}

func TestRStoreByOwnerEqualsLStore(t *testing.T) {
	topo, x, _ := twoMachines(t)
	s := NewState(topo)
	a := mustApply(t, s, RStoreL(0, x, 3), Base)
	b := mustApply(t, s, LStoreL(0, x, 3), Base)
	if !a.Equal(b) {
		t.Errorf("owner RStore %v != owner LStore %v", a, b)
	}
	_ = topo
}

func TestMStoreWritesMemoryAndInvalidatesAllCaches(t *testing.T) {
	topo, _, y := twoMachines(t)
	s := NewState(topo)
	s.SetCache(0, y, 2)
	n := mustApply(t, s, MStoreL(0, y, 9), Base)
	if n.Mem(y) != 9 {
		t.Errorf("M(y) = %d, want 9", n.Mem(y))
	}
	if !n.NoCacheHolds(y) {
		t.Errorf("caches still hold y after MStore: %v", n)
	}
	_ = topo
}

func TestLoadFromCacheCopiesIntoIssuer(t *testing.T) {
	topo, _, y := twoMachines(t)
	s := NewState(topo)
	s.SetCache(1, y, 4)
	n := mustApply(t, s, LoadL(0, y, 4), Base)
	if n.Cache(0, y) != 4 {
		t.Errorf("C0(y) = %d, want 4 (load must replicate into issuer's cache)", n.Cache(0, y))
	}
	if n.Cache(1, y) != 4 {
		t.Errorf("C1(y) = %d, want 4 (source copy must remain)", n.Cache(1, y))
	}
	_ = topo
}

func TestLoadWrongValueNotEnabled(t *testing.T) {
	topo, x, _ := twoMachines(t)
	s := NewState(topo)
	s.SetCache(0, x, 4)
	if out := Apply(s, LoadL(1, x, 5), Base); len(out) != 0 {
		t.Errorf("load of wrong value enabled: %d successors", len(out))
	}
	// Load-from-M is blocked while any cache holds the line.
	if out := Apply(s, LoadL(1, x, 0), Base); len(out) != 0 {
		t.Errorf("load served from memory while cache holds the line")
	}
	_ = topo
}

func TestLoadFromMemoryWhenNoCacheHolds(t *testing.T) {
	topo, x, _ := twoMachines(t)
	s := NewState(topo)
	s.SetMem(x, 8)
	n := mustApply(t, s, LoadL(1, x, 8), Base)
	// LOAD-from-M does not populate any cache.
	if n.Cache(1, x) != Bot {
		t.Errorf("C1(x) = %d, want ⊥ (LOAD-from-M leaves caches unchanged)", n.Cache(1, x))
	}
	_ = topo
}

func TestLWBLoadOnlyFromOwnCacheOrMemory(t *testing.T) {
	topo, x, _ := twoMachines(t)
	s := NewState(topo)
	s.SetCache(0, x, 4)
	// Machine 1 cannot read machine 0's cache under LWB.
	if out := Apply(s, LoadL(1, x, 4), LWB); len(out) != 0 {
		t.Errorf("LWB load served from a peer's cache")
	}
	// Machine 0 can read its own cache, with no state change.
	n := mustApply(t, s, LoadL(0, x, 4), LWB)
	if !n.Equal(s) {
		t.Errorf("LWB own-cache load changed state: %v -> %v", s, n)
	}
	// After draining, machine 1 loads from memory.
	drained := ApplyTau(s, TauStep{From: 0, Loc: x, ToMemory: true})
	n2 := mustApply(t, drained, LoadL(1, x, 4), LWB)
	if n2.Cache(1, x) != Bot {
		t.Errorf("LWB memory load populated cache")
	}
	_ = topo
}

func TestFlushPreconditions(t *testing.T) {
	topo, _, y := twoMachines(t)
	s := NewState(topo)
	s.SetCache(0, y, 6)

	if out := Apply(s, LFlushL(0, y), Base); len(out) != 0 {
		t.Errorf("LFlush enabled while issuer caches the line")
	}
	if out := Apply(s, RFlushL(0, y), Base); len(out) != 0 {
		t.Errorf("RFlush enabled while some cache holds the line")
	}
	if out := Apply(s, GPFL(0), Base); len(out) != 0 {
		t.Errorf("GPF enabled while caches are non-empty")
	}

	// One horizontal propagation satisfies LFlush for machine 0 but not
	// RFlush; a further vertical propagation satisfies both.
	h := ApplyTau(s, TauStep{From: 0, Loc: y, ToMemory: false})
	if len(Apply(h, LFlushL(0, y), Base)) != 1 {
		t.Errorf("LFlush not enabled after issuer's copy propagated")
	}
	if len(Apply(h, RFlushL(0, y), Base)) != 0 {
		t.Errorf("RFlush enabled while owner cache holds the line")
	}
	vy := ApplyTau(h, TauStep{From: 1, Loc: y, ToMemory: true})
	if len(Apply(vy, RFlushL(0, y), Base)) != 1 {
		t.Errorf("RFlush not enabled after full drain")
	}
	if vy.Mem(y) != 6 {
		t.Errorf("M(y) = %d after drain, want 6", vy.Mem(y))
	}
	if len(Apply(vy, GPFL(0), Base)) != 1 {
		t.Errorf("GPF not enabled after all caches drained")
	}
	_ = topo
}

func TestTauStepsEnumeration(t *testing.T) {
	topo, x, y := twoMachines(t)
	s := NewState(topo)
	s.SetCache(0, x, 1) // owner: vertical only
	s.SetCache(0, y, 2) // non-owner: horizontal only
	steps := TauSteps(s)
	if len(steps) != 2 {
		t.Fatalf("TauSteps: got %d steps %v, want 2", len(steps), steps)
	}
	var sawVert, sawHoriz bool
	for _, st := range steps {
		if st.Loc == x && st.ToMemory && st.From == 0 {
			sawVert = true
		}
		if st.Loc == y && !st.ToMemory && st.From == 0 {
			sawHoriz = true
		}
	}
	if !sawVert || !sawHoriz {
		t.Errorf("missing expected τ steps: %v", steps)
	}
}

func TestVerticalPropagationInvalidatesAllCaches(t *testing.T) {
	topo, x, _ := twoMachines(t)
	s := NewState(topo)
	s.SetCache(0, x, 3)
	s.SetCache(1, x, 3) // shared copy
	n := ApplyTau(s, TauStep{From: 0, Loc: x, ToMemory: true})
	if n.Mem(x) != 3 {
		t.Errorf("M(x) = %d, want 3", n.Mem(x))
	}
	if !n.NoCacheHolds(x) {
		t.Errorf("caches still hold x after vertical propagation: %v", n)
	}
	_ = topo
}

func TestCrashVolatileVsNonVolatile(t *testing.T) {
	topo := NewTopology()
	mv := topo.AddMachine("vol", Volatile)
	mn := topo.AddMachine("nvm", NonVolatile)
	a := topo.AddLoc("a", mv)
	b := topo.AddLoc("b", mn)
	s := NewState(topo)
	s.SetMem(a, 5)
	s.SetMem(b, 6)
	s.SetCache(mv, b, 9)

	afterV := Crash(s, mv, Base)
	if afterV.Mem(a) != 0 {
		t.Errorf("volatile memory survived crash: M(a)=%d", afterV.Mem(a))
	}
	if afterV.Cache(mv, b) != Bot {
		t.Errorf("crashed machine's cache survived")
	}
	if afterV.Mem(b) != 6 {
		t.Errorf("peer memory affected by crash: M(b)=%d", afterV.Mem(b))
	}

	afterN := Crash(s, mn, Base)
	if afterN.Mem(b) != 6 {
		t.Errorf("non-volatile memory lost on crash: M(b)=%d", afterN.Mem(b))
	}
}

func TestCrashPSNPoisonsRemoteCopies(t *testing.T) {
	topo, x, y := twoMachines(t)
	s := NewState(topo)
	s.SetCache(1, x, 7) // machine 1 caches a line owned by machine 0
	s.SetCache(1, y, 8) // machine 1's own line

	base := Crash(s, 0, Base)
	if base.Cache(1, x) != 7 {
		t.Errorf("base crash invalidated a remote copy: C1(x)=%d", base.Cache(1, x))
	}
	psn := Crash(s, 0, PSN)
	if psn.Cache(1, x) != Bot {
		t.Errorf("PSN crash did not poison remote copy of owned line")
	}
	if psn.Cache(1, y) != 8 {
		t.Errorf("PSN crash poisoned an unrelated line: C1(y)=%d", psn.Cache(1, y))
	}
	_ = topo
}

func TestRMWKinds(t *testing.T) {
	topo, _, y := twoMachines(t)
	s := NewState(topo)

	// L-RMW from memory: all caches empty, M(y)=0, CAS 0->4.
	n := mustApply(t, s, RMWL(OpLRMW, 0, y, 0, 4), Base)
	if n.Cache(0, y) != 4 || n.Mem(y) != 0 {
		t.Errorf("L-RMW: got %v", n)
	}
	// Failed RMW is not a transition (callers model it as a Load).
	if out := Apply(s, RMWL(OpLRMW, 0, y, 3, 4), Base); len(out) != 0 {
		t.Errorf("RMW with wrong expected value enabled")
	}
	// R-RMW from a cached copy.
	s2 := NewState(topo)
	s2.SetCache(0, y, 1)
	n2 := mustApply(t, s2, RMWL(OpRRMW, 0, y, 1, 2), Base)
	if n2.Cache(1, y) != 2 || n2.Cache(0, y) != Bot {
		t.Errorf("R-RMW: got %v", n2)
	}
	// M-RMW persists directly.
	n3 := mustApply(t, s, RMWL(OpMRMW, 1, y, 0, 5), Base)
	if n3.Mem(y) != 5 || !n3.NoCacheHolds(y) {
		t.Errorf("M-RMW: got %v", n3)
	}
	_ = topo
}

func TestInvariantDetectsDivergentCaches(t *testing.T) {
	topo, x, _ := twoMachines(t)
	s := NewState(topo)
	s.SetCache(0, x, 1)
	s.SetCache(1, x, 2)
	if err := s.CheckInvariant(); err == nil {
		t.Errorf("divergent caches not caught by invariant")
	}
	_ = topo
}

func TestKeyRoundTrip(t *testing.T) {
	topo, x, y := twoMachines(t)
	a := NewState(topo)
	b := NewState(topo)
	if a.Key() != b.Key() {
		t.Errorf("equal states, different keys")
	}
	a.SetCache(0, x, 1)
	if a.Key() == b.Key() {
		t.Errorf("different states, same key")
	}
	b.SetCache(0, x, 1)
	if a.Key() != b.Key() {
		t.Errorf("equal states after mutation, different keys")
	}
	a.SetMem(y, 3)
	if a.Key() == b.Key() {
		t.Errorf("memory difference not reflected in key")
	}
}

func TestSetupAvailability(t *testing.T) {
	cases := []struct {
		setup Setup
		role  NodeRole
		op    Op
		want  bool
	}{
		{FullCXL0, RoleHost, OpRStore, true},
		{HostDevicePair, RoleHost, OpRStore, false},
		{HostDevicePair, RoleDevice, OpRStore, true},
		{HostDevicePair, RoleHost, OpLFlush, false},
		{HostDevicePair, RoleDevice, OpLFlush, false},
		{HostDevicePair, RoleHost, OpMStore, true},
		{HostDevicePair, RoleHost, OpRRMW, false},
		{PartitionedPool, RoleHost, OpRStore, false},
		{PartitionedPool, RoleHost, OpMStore, true},
		{PartitionedPool, RoleHost, OpLFlush, true},
		{SharedPoolCoherent, RoleHost, OpLFlush, false},
		{SharedPoolCoherent, RoleHost, OpRFlush, true},
		{SharedPoolNonCoherent, RoleHost, OpLStore, false},
		{SharedPoolNonCoherent, RoleHost, OpMStore, true},
		{SharedPoolNonCoherent, RoleHost, OpMRMW, true},
		{SharedPoolNonCoherent, RoleHost, OpLoad, true},
	}
	for _, c := range cases {
		if got := c.setup.Available(c.role, c.op); got != c.want {
			t.Errorf("%v.Available(%v, %v) = %v, want %v", c.setup, c.role, c.op, got, c.want)
		}
	}
}
