package core

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// State is a CXL0 system state γ = (C, M): per-machine caches over the whole
// address space (Bot = invalid) and one memory cell per location, held by
// its owner.
type State struct {
	topo  *Topology
	cache [][]Val // [machine][loc]; Bot means ⊥
	mem   []Val   // [loc], stored at Owner(loc)
}

// NewState returns the initial state for t: all caches ⊥, all memory zero.
func NewState(t *Topology) *State {
	s := &State{topo: t}
	s.cache = make([][]Val, t.NumMachines())
	for m := range s.cache {
		row := make([]Val, t.NumLocs())
		for l := range row {
			row[l] = Bot
		}
		s.cache[m] = row
	}
	s.mem = make([]Val, t.NumLocs())
	return s
}

// Topology returns the topology this state belongs to.
func (s *State) Topology() *Topology { return s.topo }

// Clone returns a deep copy of s.
func (s *State) Clone() *State {
	c := &State{topo: s.topo}
	c.cache = make([][]Val, len(s.cache))
	for m := range s.cache {
		c.cache[m] = append([]Val(nil), s.cache[m]...)
	}
	c.mem = append([]Val(nil), s.mem...)
	return c
}

// Cache returns C_m(l).
func (s *State) Cache(m MachineID, l LocID) Val { return s.cache[m][l] }

// Mem returns M_k(l) where k owns l.
func (s *State) Mem(l LocID) Val { return s.mem[l] }

// SetCache sets C_m(l) = v. Exported for test setup and the runtime; normal
// evolution goes through Apply and TauSuccessors.
func (s *State) SetCache(m MachineID, l LocID, v Val) { s.cache[m][l] = v }

// SetMem sets M(l) = v.
func (s *State) SetMem(l LocID, v Val) { s.mem[l] = v }

// CachedValue returns the unique valid cached value of l and true, or
// (Bot, false) when no cache holds l. The global invariant guarantees
// uniqueness.
func (s *State) CachedValue(l LocID) (Val, bool) {
	for m := range s.cache {
		if v := s.cache[m][l]; v != Bot {
			return v, true
		}
	}
	return Bot, false
}

// Readable returns the value a Load of l would observe in this state:
// the valid cached copy if one exists, otherwise the owner's memory.
func (s *State) Readable(l LocID) Val {
	if v, ok := s.CachedValue(l); ok {
		return v
	}
	return s.mem[l]
}

// NoCacheHolds reports whether no machine caches l (∀j. C_j(l) = ⊥).
func (s *State) NoCacheHolds(l LocID) bool {
	for m := range s.cache {
		if s.cache[m][l] != Bot {
			return false
		}
	}
	return true
}

// NoCacheHoldsRange reports whether no machine caches any of the n
// consecutive locations starting at l — the enabling condition of a ranged
// persistent flush.
func (s *State) NoCacheHoldsRange(l LocID, n int) bool {
	for i := 0; i < n; i++ {
		if !s.NoCacheHolds(l + LocID(i)) {
			return false
		}
	}
	return true
}

// CachesEmpty reports whether every cache is entirely empty.
func (s *State) CachesEmpty() bool {
	for m := range s.cache {
		for _, v := range s.cache[m] {
			if v != Bot {
				return false
			}
		}
	}
	return true
}

// CheckInvariant verifies the CXL0 global invariant: for every location, all
// valid cached copies hold the same value, and memory values are
// non-negative. It returns a descriptive error on violation.
func (s *State) CheckInvariant() error {
	for l := 0; l < s.topo.NumLocs(); l++ {
		have := Bot
		for m := range s.cache {
			v := s.cache[m][l]
			if v == Bot {
				continue
			}
			if have != Bot && v != have {
				return fmt.Errorf("core: invariant violation at %s: caches hold both %d and %d",
					s.topo.LocName(LocID(l)), have, v)
			}
			have = v
		}
		if s.mem[l] < 0 {
			return fmt.Errorf("core: negative memory value %d at %s", s.mem[l], s.topo.LocName(LocID(l)))
		}
	}
	return nil
}

// Key returns a compact canonical encoding of the state, suitable as a map
// key for memoized exploration. Two states of the same topology have equal
// keys iff they are equal.
func (s *State) Key() string {
	var b []byte
	for m := range s.cache {
		for _, v := range s.cache[m] {
			b = binary.AppendVarint(b, int64(v))
		}
	}
	for _, v := range s.mem {
		b = binary.AppendVarint(b, int64(v))
	}
	return string(b)
}

// Equal reports whether s and o are the same state of the same topology.
func (s *State) Equal(o *State) bool {
	if s.topo != o.topo {
		return false
	}
	for m := range s.cache {
		for l := range s.cache[m] {
			if s.cache[m][l] != o.cache[m][l] {
				return false
			}
		}
	}
	for l := range s.mem {
		if s.mem[l] != o.mem[l] {
			return false
		}
	}
	return true
}

// String renders the state for debugging, e.g.
// "C0{x=1} C1{} | M{x:0 y:2}".
func (s *State) String() string {
	var sb strings.Builder
	for m := range s.cache {
		if m > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "C%d{", m)
		first := true
		for l, v := range s.cache[m] {
			if v == Bot {
				continue
			}
			if !first {
				sb.WriteByte(' ')
			}
			first = false
			fmt.Fprintf(&sb, "%s=%d", s.topo.LocName(LocID(l)), v)
		}
		sb.WriteByte('}')
	}
	sb.WriteString(" | M{")
	for l, v := range s.mem {
		if l > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s:%d", s.topo.LocName(LocID(l)), v)
	}
	sb.WriteByte('}')
	return sb.String()
}
