package core

import "fmt"

// Setup enumerates the system-model variations of §4 of the paper. Each
// setup restricts which CXL0 primitives a node may issue; CXL0 itself is the
// most general model and applies to all cache-coherent setups.
type Setup int

const (
	// FullCXL0 places no restrictions: fully symmetric hosts and devices
	// with coherent sharing (the model's general form, and the paper's
	// "future configurations").
	FullCXL0 Setup = iota
	// HostDevicePair is the host + Type-2 accelerator pairing (Fig. 4a),
	// the configuration the paper measures in §5. The host cannot issue
	// RStore, LFlush, or remote RMWs; the device cannot issue LFlush or
	// remote RMWs.
	HostDevicePair
	// PartitionedPool is a disaggregated memory pool whose partitions are
	// private to each host (Fig. 4b, left): no inter-host cache
	// interaction, so RStore, loads from peer caches, horizontal
	// propagation, and remote RMWs are all excluded.
	PartitionedPool
	// SharedPoolCoherent is a fully cache-coherent shared pool per the
	// CXL 3.0+ specification: the pool is a memory-only node, so remote
	// caches cannot be targeted (no RStore, LFlush on pool lines, or
	// remote RMWs).
	SharedPoolCoherent
	// SharedPoolNonCoherent is today's realistic shared pool without
	// back-invalidation: CXL0's coherence assumption fails, and only the
	// cache-bypassing primitives (MStore, loads from memory, M-RMW) are
	// sound.
	SharedPoolNonCoherent
)

var setupNames = [...]string{
	FullCXL0:              "full CXL0 (symmetric coherent sharing)",
	HostDevicePair:        "host-device pair (CXL.cache + CXL.mem)",
	PartitionedPool:       "partitioned disaggregated memory pool",
	SharedPoolCoherent:    "shared disaggregated memory pool (coherent)",
	SharedPoolNonCoherent: "shared disaggregated memory pool (non-coherent)",
}

func (s Setup) String() string {
	if int(s) < len(setupNames) {
		return setupNames[s]
	}
	return fmt.Sprintf("Setup(%d)", int(s))
}

// Setups lists all §4 configurations.
var Setups = []Setup{FullCXL0, HostDevicePair, PartitionedPool, SharedPoolCoherent, SharedPoolNonCoherent}

// NodeRole distinguishes node kinds inside a Setup when availability is
// asymmetric (the host-device pair).
type NodeRole int

const (
	// RoleHost is a CPU root complex.
	RoleHost NodeRole = iota
	// RoleDevice is a Type-2 accelerator endpoint.
	RoleDevice
)

func (r NodeRole) String() string {
	if r == RoleHost {
		return "host"
	}
	return "device"
}

// Available reports whether a node of the given role may issue op under
// setup s, per §4 of the paper. OpCrash is always "available" (crashes are
// environmental, not issued).
func (s Setup) Available(role NodeRole, op Op) bool {
	if op == OpCrash {
		return true
	}
	switch s {
	case FullCXL0:
		return true
	case HostDevicePair:
		// "The host can issue all available CXL0 primitives apart from
		// RStore, LFlush and remote RMWs. The device can issue all stores,
		// including RStore, but cannot issue LFlush and remote RMWs."
		switch op {
		case OpRStore:
			return role == RoleDevice
		case OpLFlush, OpRRMW, OpMRMW:
			return false
		default:
			return true
		}
	case PartitionedPool:
		// "We exclude RStore, LOAD-from-C, Propagate-C-C, and remote RMWs,
		// as there is no interaction between hosts." Loads remain available
		// as a primitive (they are always served locally or from the pool);
		// the structural exclusions are properties of the topology.
		switch op {
		case OpRStore, OpRRMW, OpMRMW:
			return false
		default:
			return true
		}
	case SharedPoolCoherent:
		// "Interactions with remote caches and remote RMWs are unavailable,
		// so RStore, LOAD-from-C, LFlush, Propagate-C-C, and remote RMWs
		// are excluded."
		switch op {
		case OpRStore, OpLFlush, OpRRMW, OpMRMW:
			return false
		default:
			return true
		}
	case SharedPoolNonCoherent:
		// "Bypassing caches, i.e. only allowing the CXL0 primitives MStore,
		// LOAD-from-M, and M-RMW, retains correctness."
		switch op {
		case OpMStore, OpLoad, OpMRMW:
			return true
		default:
			return false
		}
	}
	return false
}

// AllOps lists every issuable CXL0 primitive (excluding crash).
// OpRFlushRange targets owners' persistence domains exactly like OpRFlush,
// so Available treats the two identically: present wherever RFlush is,
// excluded only in the non-coherent shared pool.
var AllOps = []Op{OpLoad, OpLStore, OpRStore, OpMStore, OpLFlush, OpRFlush, OpRFlushRange, OpGPF, OpLRMW, OpRRMW, OpMRMW}
