package core

import "fmt"

// Variant selects one of the paper's model flavours (§3.5).
type Variant int

const (
	// Base is plain CXL0 (Figure 2).
	Base Variant = iota
	// PSN is CXL0 with cache-line poisoning on crash: a crash of machine i
	// additionally invalidates i-owned lines in every other cache.
	PSN
	// LWB is CXL0 with implicit write-back on remote loads: loads are served
	// from the issuer's own cache, or from memory once no cache holds the
	// line; peers' caches are never read directly.
	LWB
)

func (v Variant) String() string {
	switch v {
	case Base:
		return "CXL0"
	case PSN:
		return "CXL0-PSN"
	case LWB:
		return "CXL0-LWB"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all model variants.
var Variants = []Variant{Base, PSN, LWB}

// Apply returns the states reachable from s by performing exactly the
// labeled transition l under variant v, with no interleaved τ steps. The
// result is empty when l is not enabled (e.g. a Load whose expected value
// does not match, or a flush whose precondition does not hold yet).
//
// All rules of Figure 2 are implemented here; τ (silent propagation) is in
// TauSuccessors, since it carries no label.
func Apply(s *State, l Label, v Variant) []*State {
	switch l.Op {
	case OpLoad:
		return applyLoad(s, l, v)
	case OpLStore:
		n := s.Clone()
		for m := range n.cache {
			n.cache[m][l.Loc] = Bot
		}
		n.cache[l.M][l.Loc] = l.Val
		return []*State{n}
	case OpRStore:
		k := s.topo.Owner(l.Loc)
		n := s.Clone()
		for m := range n.cache {
			n.cache[m][l.Loc] = Bot
		}
		n.cache[k][l.Loc] = l.Val
		return []*State{n}
	case OpMStore:
		n := s.Clone()
		for m := range n.cache {
			n.cache[m][l.Loc] = Bot
		}
		n.mem[l.Loc] = l.Val
		return []*State{n}
	case OpLFlush:
		if s.cache[l.M][l.Loc] != Bot {
			return nil // blocks until τ drains the issuer's copy
		}
		return []*State{s.Clone()}
	case OpRFlush:
		if !s.NoCacheHolds(l.Loc) {
			return nil // blocks until τ drains every copy
		}
		return []*State{s.Clone()}
	case OpRFlushRange:
		// The ranged flush generalizes RFlush to n consecutive locations:
		// it blocks until every copy of every line in [Loc, Loc+N) has
		// drained to its owner's memory. Like the per-line flushes, it is
		// variant-independent: Base, PSN and LWB differ in how copies come
		// to exist (loads, poisoning), not in how they drain.
		if l.N < 1 {
			return nil
		}
		if !s.NoCacheHoldsRange(l.Loc, l.N) {
			return nil // blocks until τ drains every copy of every line
		}
		return []*State{s.Clone()}
	case OpGPF:
		if !s.CachesEmpty() {
			return nil // blocks until all caches drain entirely
		}
		return []*State{s.Clone()}
	case OpLRMW, OpRRMW, OpMRMW:
		return applyRMW(s, l)
	case OpCrash:
		return []*State{Crash(s, l.M, v)}
	default:
		panic(fmt.Sprintf("core: Apply: unknown op %v", l.Op))
	}
}

func applyLoad(s *State, l Label, v Variant) []*State {
	switch v {
	case LWB:
		// LOAD-from-C(LWB): only the issuer's own cache can serve the load,
		// and doing so does not change the state.
		if own := s.cache[l.M][l.Loc]; own != Bot {
			if own != l.Val {
				return nil
			}
			return []*State{s.Clone()}
		}
		// Otherwise LOAD-from-M: requires every cache to have drained.
		if !s.NoCacheHolds(l.Loc) {
			return nil
		}
		if s.mem[l.Loc] != l.Val {
			return nil
		}
		return []*State{s.Clone()}
	default: // Base and PSN share the load rules.
		if cv, ok := s.CachedValue(l.Loc); ok {
			// LOAD-from-C: read the (unique) valid copy and replicate it
			// into the issuer's cache.
			if cv != l.Val {
				return nil
			}
			n := s.Clone()
			n.cache[l.M][l.Loc] = cv
			return []*State{n}
		}
		// LOAD-from-M.
		if s.mem[l.Loc] != l.Val {
			return nil
		}
		return []*State{s.Clone()}
	}
}

// applyRMW implements the six RMW rules: the read half observes the unique
// cached copy, or memory when no cache holds the line; the write half
// behaves like the corresponding store. A failed RMW (current value ≠ Old)
// is not a transition here — the paper equates it with a plain read, which
// callers express as OpLoad.
func applyRMW(s *State, l Label) []*State {
	cur, cached := s.CachedValue(l.Loc)
	if !cached {
		cur = s.mem[l.Loc]
	}
	if cur != l.Old {
		return nil
	}
	var storeOp Op
	switch l.Op {
	case OpLRMW:
		storeOp = OpLStore
	case OpRRMW:
		storeOp = OpRStore
	case OpMRMW:
		storeOp = OpMStore
	default:
		return nil // not an RMW label: no store half, no successor state
	}
	return Apply(s, Label{Op: storeOp, M: l.M, Loc: l.Loc, Val: l.New}, Base)
}

// Crash returns the state after machine m crashes under variant v: C_m is
// wiped; M_m resets to zero iff volatile. Under PSN, every other cache
// additionally poisons (invalidates) all m-owned lines.
func Crash(s *State, m MachineID, v Variant) *State {
	n := s.Clone()
	for l := range n.cache[m] {
		n.cache[m][l] = Bot
	}
	if s.topo.Mem(m) == Volatile {
		for l := 0; l < s.topo.NumLocs(); l++ {
			if s.topo.Owner(LocID(l)) == m {
				n.mem[l] = 0
			}
		}
	}
	if v == PSN {
		for j := range n.cache {
			if MachineID(j) == m {
				continue
			}
			for l := 0; l < s.topo.NumLocs(); l++ {
				if s.topo.Owner(LocID(l)) == m {
					n.cache[j][l] = Bot
				}
			}
		}
	}
	return n
}

// TauStep describes one silent propagation step.
type TauStep struct {
	// From is the machine whose cache gives up the line.
	From MachineID
	// Loc is the propagated location.
	Loc LocID
	// ToMemory is true for owner-cache→memory (vertical) propagation and
	// false for cache→owner-cache (horizontal) propagation.
	ToMemory bool
}

func (t TauStep) String() string {
	if t.ToMemory {
		return fmt.Sprintf("τ(C%d→M, loc%d)", t.From, t.Loc)
	}
	return fmt.Sprintf("τ(C%d→C, loc%d)", t.From, t.Loc)
}

// TauSteps enumerates the silent propagation steps enabled in s:
//
//   - Propagate-C-C: a non-owner cache holding x moves its copy to the
//     owner's cache (removing it locally).
//   - Propagate-C-M: the owner's cache holding x writes it back to the
//     owner's memory, invalidating x in every cache.
func TauSteps(s *State) []TauStep {
	var steps []TauStep
	for m := range s.cache {
		for l, val := range s.cache[m] {
			if val == Bot {
				continue
			}
			if s.topo.Owner(LocID(l)) == MachineID(m) {
				steps = append(steps, TauStep{From: MachineID(m), Loc: LocID(l), ToMemory: true})
			} else {
				steps = append(steps, TauStep{From: MachineID(m), Loc: LocID(l), ToMemory: false})
			}
		}
	}
	return steps
}

// ApplyTau performs one silent propagation step, which must be enabled.
func ApplyTau(s *State, t TauStep) *State {
	v := s.cache[t.From][t.Loc]
	if v == Bot {
		panic("core: ApplyTau: step not enabled")
	}
	n := s.Clone()
	if t.ToMemory {
		if s.topo.Owner(t.Loc) != t.From {
			panic("core: ApplyTau: vertical propagation from non-owner")
		}
		for m := range n.cache {
			n.cache[m][t.Loc] = Bot
		}
		n.mem[t.Loc] = v
	} else {
		k := s.topo.Owner(t.Loc)
		n.cache[t.From][t.Loc] = Bot
		n.cache[k][t.Loc] = v
	}
	return n
}

// TauSuccessors returns the states reachable from s by exactly one τ step.
func TauSuccessors(s *State) []*State {
	steps := TauSteps(s)
	out := make([]*State, 0, len(steps))
	for _, st := range steps {
		out = append(out, ApplyTau(s, st))
	}
	return out
}
