package core_test

import (
	"fmt"

	"cxl0/internal/core"
)

// Example builds the two-machine system of Figure 1 and steps it through a
// store, a crash, and a load — showing how an unflushed value dies with
// the owner's cache.
func Example() {
	topo := core.NewTopology()
	left := topo.AddMachine("left", core.NonVolatile)
	right := topo.AddMachine("right", core.NonVolatile)
	y := topo.AddLoc("y", right)

	s := core.NewState(topo)

	// The left machine stores into the right machine's cache.
	s = core.Apply(s, core.RStoreL(left, y, 7), core.Base)[0]
	fmt.Println("after RStore:", s)

	// The right machine crashes before the value reaches its memory.
	s = core.Crash(s, right, core.Base)
	fmt.Println("after crash: ", s)

	// Output:
	// after RStore: C0{} C1{y=7} | M{y:0}
	// after crash:  C0{} C1{} | M{y:0}
}

// ExampleApply_flushBlocks shows the paper's blocking-flush semantics: an
// RFlush is only enabled once propagation has drained every cached copy.
func ExampleApply_flushBlocks() {
	topo := core.NewTopology()
	m1 := topo.AddMachine("m1", core.NonVolatile)
	m2 := topo.AddMachine("m2", core.NonVolatile)
	x := topo.AddLoc("x", m2)

	s := core.NewState(topo)
	s = core.Apply(s, core.LStoreL(m1, x, 1), core.Base)[0]

	fmt.Println("flush enabled immediately:", len(core.Apply(s, core.RFlushL(m1, x), core.Base)) > 0)

	// Two propagation steps drain the value into m2's memory.
	for _, ts := range core.TauSteps(s) {
		s = core.ApplyTau(s, ts)
		break
	}
	for _, ts := range core.TauSteps(s) {
		s = core.ApplyTau(s, ts)
		break
	}
	fmt.Println("flush enabled after drain: ", len(core.Apply(s, core.RFlushL(m1, x), core.Base)) > 0)
	fmt.Println("persisted value:", s.Mem(x))

	// Output:
	// flush enabled immediately: false
	// flush enabled after drain:  true
	// persisted value: 1
}
