package core

import "fmt"

// Op enumerates CXL0 transition label kinds.
type Op int

const (
	// OpLoad is Load_i(x,v): read x, observing v.
	OpLoad Op = iota
	// OpLStore is LStore_i(x,v): store v into the issuer's cache.
	OpLStore
	// OpRStore is RStore_i(x,v): store v into the owner's cache.
	OpRStore
	// OpMStore is MStore_i(x,v): store v into the owner's memory.
	OpMStore
	// OpLFlush is LFlush_i(x): drain x from the issuer's cache.
	OpLFlush
	// OpRFlush is RFlush_i(x): drain x from every cache.
	OpRFlush
	// OpGPF is GPF_i: the Global Persistent Flush — drain all caches.
	OpGPF
	// OpLRMW is L-RMW_i(x,old,new): atomic read-modify-write whose store
	// half behaves like LStore.
	OpLRMW
	// OpRRMW is R-RMW_i(x,old,new): store half behaves like RStore.
	OpRRMW
	// OpMRMW is M-RMW_i(x,old,new): store half behaves like MStore.
	OpMRMW
	// OpCrash is E_i: machine i crashes.
	OpCrash
	// OpRFlushRange is RFlushRange_i(x,n): drain the n consecutive
	// locations starting at x from every cache into their owners'
	// memories — a ranged persistent flush (§7's finer-grained flush
	// sketch). RFlushRange_i(x,1) is exactly RFlush_i(x); unlike GPF, only
	// the lines in the range (and thus only their owning devices'
	// persistence domains) are involved.
	OpRFlushRange
)

var opNames = [...]string{
	OpLoad: "Load", OpLStore: "LStore", OpRStore: "RStore", OpMStore: "MStore",
	OpLFlush: "LFlush", OpRFlush: "RFlush", OpGPF: "GPF",
	OpLRMW: "L-RMW", OpRRMW: "R-RMW", OpMRMW: "M-RMW", OpCrash: "E",
	OpRFlushRange: "RFlushRange",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsStore reports whether o is one of the three store primitives.
func (o Op) IsStore() bool { return o == OpLStore || o == OpRStore || o == OpMStore }

// IsRMW reports whether o is one of the three RMW primitives.
func (o Op) IsRMW() bool { return o == OpLRMW || o == OpRRMW || o == OpMRMW }

// IsFlush reports whether o is LFlush, RFlush, RFlushRange or GPF.
func (o Op) IsFlush() bool {
	return o == OpLFlush || o == OpRFlush || o == OpRFlushRange || o == OpGPF
}

// Label is a CXL0 transition label. M is the issuing machine (the crashing
// machine for OpCrash). Loc and Val are used by loads and stores; Old/New by
// RMWs; Loc and N by ranged flushes. Silent τ steps have no label; see
// TauSuccessors.
type Label struct {
	Op  Op
	M   MachineID
	Loc LocID
	Val Val // stored value, or the value a Load observes
	Old Val // RMW: expected old value
	New Val // RMW: new value
	N   int // RFlushRange: number of consecutive locations (>= 1)
}

// Convenience constructors, mirroring the paper's notation.

// LoadL is Load_m(x, v).
func LoadL(m MachineID, x LocID, v Val) Label { return Label{Op: OpLoad, M: m, Loc: x, Val: v} }

// LStoreL is LStore_m(x, v).
func LStoreL(m MachineID, x LocID, v Val) Label { return Label{Op: OpLStore, M: m, Loc: x, Val: v} }

// RStoreL is RStore_m(x, v).
func RStoreL(m MachineID, x LocID, v Val) Label { return Label{Op: OpRStore, M: m, Loc: x, Val: v} }

// MStoreL is MStore_m(x, v).
func MStoreL(m MachineID, x LocID, v Val) Label { return Label{Op: OpMStore, M: m, Loc: x, Val: v} }

// LFlushL is LFlush_m(x).
func LFlushL(m MachineID, x LocID) Label { return Label{Op: OpLFlush, M: m, Loc: x} }

// RFlushL is RFlush_m(x).
func RFlushL(m MachineID, x LocID) Label { return Label{Op: OpRFlush, M: m, Loc: x} }

// RFlushRangeL is RFlushRange_m(x, n), the ranged persistent flush over the
// n consecutive locations starting at x.
func RFlushRangeL(m MachineID, x LocID, n int) Label {
	if n < 1 {
		panic("core: RFlushRangeL requires n >= 1")
	}
	return Label{Op: OpRFlushRange, M: m, Loc: x, N: n}
}

// GPFL is GPF_m.
func GPFL(m MachineID) Label { return Label{Op: OpGPF, M: m} }

// CrashL is E_m.
func CrashL(m MachineID) Label { return Label{Op: OpCrash, M: m} }

// RMWL is an RMW label of the given kind (OpLRMW, OpRRMW or OpMRMW).
func RMWL(kind Op, m MachineID, x LocID, old, new Val) Label {
	if !kind.IsRMW() {
		panic("core: RMWL requires an RMW op")
	}
	return Label{Op: kind, M: m, Loc: x, Old: old, New: new}
}

// String renders the label in the paper's notation, e.g. "LStore1(x,1)".
func (l Label) String() string {
	switch l.Op {
	case OpLoad, OpLStore, OpRStore, OpMStore:
		return fmt.Sprintf("%s%d(loc%d,%d)", l.Op, l.M, l.Loc, l.Val)
	case OpLFlush, OpRFlush:
		return fmt.Sprintf("%s%d(loc%d)", l.Op, l.M, l.Loc)
	case OpRFlushRange:
		return fmt.Sprintf("%s%d(loc%d,%d)", l.Op, l.M, l.Loc, l.N)
	case OpGPF:
		return fmt.Sprintf("GPF%d", l.M)
	case OpCrash:
		return fmt.Sprintf("E%d", l.M)
	default:
		return fmt.Sprintf("%s%d(loc%d,%d,%d)", l.Op, l.M, l.Loc, l.Old, l.New)
	}
}

// Pretty renders the label using location names from t.
func (l Label) Pretty(t *Topology) string {
	switch l.Op {
	case OpLoad, OpLStore, OpRStore, OpMStore:
		return fmt.Sprintf("%s%d(%s,%d)", l.Op, l.M+1, t.LocName(l.Loc), l.Val)
	case OpLFlush, OpRFlush:
		return fmt.Sprintf("%s%d(%s)", l.Op, l.M+1, t.LocName(l.Loc))
	case OpRFlushRange:
		return fmt.Sprintf("%s%d(%s,%d)", l.Op, l.M+1, t.LocName(l.Loc), l.N)
	case OpGPF:
		return fmt.Sprintf("GPF%d", l.M+1)
	case OpCrash:
		return fmt.Sprintf("E%d", l.M+1)
	default:
		return fmt.Sprintf("%s%d(%s,%d,%d)", l.Op, l.M+1, t.LocName(l.Loc), l.Old, l.New)
	}
}
