package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLabel draws a random label over a two-machine topology.
func randomLabel(rng *rand.Rand) Label {
	m := MachineID(rng.Intn(2))
	x := LocID(rng.Intn(2))
	v := Val(rng.Intn(3))
	switch rng.Intn(10) {
	case 0:
		return LoadL(m, x, v)
	case 1:
		return LStoreL(m, x, v)
	case 2:
		return RStoreL(m, x, v)
	case 3:
		return MStoreL(m, x, v)
	case 4:
		return LFlushL(m, x)
	case 5:
		return RFlushL(m, x)
	case 6:
		return CrashL(m)
	case 7:
		return RMWL(OpLRMW, m, x, v, Val(rng.Intn(3)))
	case 8:
		return RFlushRangeL(m, x, 1+rng.Intn(2-int(x)))
	default:
		return RMWL(OpMRMW, m, x, v, Val(rng.Intn(3)))
	}
}

// TestInPlaceAgreesWithApply property-checks that ApplyInPlace defines the
// same (deterministic fragment of the) transition relation as Apply: for
// random states and labels, enabledness matches, and when enabled the
// in-place result equals Apply's successor.
func TestInPlaceAgreesWithApply(t *testing.T) {
	topo := NewTopology()
	m0 := topo.AddMachine("m1", NonVolatile)
	m1 := topo.AddMachine("m2", Volatile)
	topo.AddLoc("x", m0)
	topo.AddLoc("y", m1)

	f := func(seed int64, variantRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		variant := Variants[int(variantRaw)%len(Variants)]
		s := NewState(topo)
		for step := 0; step < 40; step++ {
			l := randomLabel(rng)
			viaClone := Apply(s, l, variant)
			inPlace := s.Clone()
			enabled := ApplyInPlace(inPlace, l, variant)
			if enabled != (len(viaClone) > 0) {
				t.Logf("enabledness mismatch at %v (state %v): clone=%d inplace=%v",
					l, s, len(viaClone), enabled)
				return false
			}
			if !enabled {
				// Also check the failed in-place application left the state
				// alone (loads/RMWs may not, per contract, mutate on failure).
				if !inPlace.Equal(s) {
					t.Logf("disabled %v mutated the state", l)
					return false
				}
				continue
			}
			if len(viaClone) != 1 {
				t.Logf("nondeterministic label %v yields %d successors", l, len(viaClone))
				return false
			}
			if !inPlace.Equal(viaClone[0]) {
				t.Logf("result mismatch at %v: %v vs %v", l, inPlace, viaClone[0])
				return false
			}
			s = viaClone[0]
			// Occasionally interleave a τ step through both APIs.
			if steps := TauSteps(s); len(steps) > 0 && rng.Intn(3) == 0 {
				ts := steps[rng.Intn(len(steps))]
				cloned := ApplyTau(s, ts)
				ip := s.Clone()
				ApplyTauInPlace(ip, ts)
				if !ip.Equal(cloned) {
					t.Logf("τ mismatch at %v", ts)
					return false
				}
				s = cloned
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashInPlaceMatchesCrash compares the two crash implementations on
// random states under all variants.
func TestCrashInPlaceMatchesCrash(t *testing.T) {
	topo := NewTopology()
	m0 := topo.AddMachine("m1", NonVolatile)
	m1 := topo.AddMachine("m2", Volatile)
	x := topo.AddLoc("x", m0)
	y := topo.AddLoc("y", m1)

	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 300; iter++ {
		s := NewState(topo)
		if rng.Intn(2) == 0 {
			s.SetCache(MachineID(rng.Intn(2)), x, Val(rng.Intn(3)))
		}
		if rng.Intn(2) == 0 {
			s.SetCache(MachineID(rng.Intn(2)), y, Val(rng.Intn(3)))
		}
		s.SetMem(x, Val(rng.Intn(3)))
		s.SetMem(y, Val(rng.Intn(3)))
		if s.CheckInvariant() != nil {
			continue
		}
		for _, variant := range Variants {
			for _, m := range []MachineID{m0, m1} {
				want := Crash(s, m, variant)
				got := s.Clone()
				CrashInPlace(got, m, variant)
				if !got.Equal(want) {
					t.Fatalf("crash mismatch: machine %d variant %v state %v", m, variant, s)
				}
			}
		}
	}
}
