package core

import "testing"

// rangeTopo builds two machines with two locations each: x,y owned by M1
// and z,w owned by M2, declared in that order so their LocIDs are
// consecutive (x=0, y=1, z=2, w=3).
func rangeTopo() (*Topology, [4]LocID) {
	topo := NewTopology()
	m1 := topo.AddMachine("m1", NonVolatile)
	m2 := topo.AddMachine("m2", NonVolatile)
	x := topo.AddLoc("x", m1)
	y := topo.AddLoc("y", m1)
	z := topo.AddLoc("z", m2)
	w := topo.AddLoc("w", m2)
	return topo, [4]LocID{x, y, z, w}
}

// TestRFlushRangeBlocksUntilRangeDrained: the ranged flush is enabled iff
// no cache holds any line of the range; lines outside the range do not
// block it.
func TestRFlushRangeBlocksUntilRangeDrained(t *testing.T) {
	for _, v := range Variants {
		topo, locs := rangeTopo()
		s := NewState(topo)
		s.SetCache(0, locs[0], 1) // x dirty in M1's cache
		s.SetCache(1, locs[1], 2) // y dirty in M2's cache
		s.SetCache(0, locs[3], 3) // w dirty, outside the [x,y] range

		if got := Apply(s, RFlushRangeL(0, locs[0], 2), v); got != nil {
			t.Fatalf("%v: RFlushRange enabled with the range still cached", v)
		}
		if ok := ApplyInPlace(s.Clone(), RFlushRangeL(0, locs[0], 2), v); ok {
			t.Fatalf("%v: in-place RFlushRange enabled with the range still cached", v)
		}

		// Drain x and y (but not w) through τ steps; the ranged flush over
		// [x,y] must then fire even though w is still dirty.
		s = ApplyTau(s, TauStep{From: 0, Loc: locs[0], ToMemory: true})
		s = ApplyTau(s, TauStep{From: 1, Loc: locs[1], ToMemory: false})
		if got := Apply(s, RFlushRangeL(0, locs[0], 2), v); got != nil {
			t.Fatalf("%v: RFlushRange enabled with y still in the owner's cache", v)
		}
		s = ApplyTau(s, TauStep{From: 0, Loc: locs[1], ToMemory: true})
		succ := Apply(s, RFlushRangeL(0, locs[0], 2), v)
		if len(succ) != 1 {
			t.Fatalf("%v: RFlushRange not enabled after the range drained", v)
		}
		if !succ[0].Equal(s) {
			t.Fatalf("%v: RFlushRange changed the state", v)
		}
		if succ[0].Mem(locs[0]) != 1 || succ[0].Mem(locs[1]) != 2 {
			t.Fatalf("%v: range values not in memory: x=%d y=%d",
				v, succ[0].Mem(locs[0]), succ[0].Mem(locs[1]))
		}
		if succ[0].Cache(0, locs[3]) != 3 {
			t.Fatalf("%v: RFlushRange touched a line outside the range", v)
		}
	}
}

// TestRFlushRangeOfOneEquivalentToRFlush: RFlushRange(x,1) and RFlush(x)
// are enabled in exactly the same states.
func TestRFlushRangeOfOneEquivalentToRFlush(t *testing.T) {
	topo, locs := rangeTopo()
	states := []*State{NewState(topo)}
	dirty := NewState(topo)
	dirty.SetCache(1, locs[0], 7)
	states = append(states, dirty)
	for _, s := range states {
		for _, v := range Variants {
			single := Apply(s, RFlushL(0, locs[0]), v)
			ranged := Apply(s, RFlushRangeL(0, locs[0], 1), v)
			if (single == nil) != (ranged == nil) {
				t.Fatalf("%v: RFlush and RFlushRange(·,1) disagree on %v", v, s)
			}
		}
	}
}

// TestRFlushRangeSpansOwners: one ranged flush may cover lines owned by
// different machines; it drains each line to its own owner's memory.
func TestRFlushRangeSpansOwners(t *testing.T) {
	topo, locs := rangeTopo()
	s := NewState(topo)
	s.SetCache(0, locs[1], 4) // y@M1 in its owner's cache
	s.SetCache(0, locs[2], 5) // z@M2 in a non-owner cache

	if got := Apply(s, RFlushRangeL(1, locs[1], 2), Base); got != nil {
		t.Fatal("cross-owner RFlushRange enabled while cached")
	}
	s = ApplyTau(s, TauStep{From: 0, Loc: locs[1], ToMemory: true})
	s = ApplyTau(s, TauStep{From: 0, Loc: locs[2], ToMemory: false})
	s = ApplyTau(s, TauStep{From: 1, Loc: locs[2], ToMemory: true})
	succ := Apply(s, RFlushRangeL(1, locs[1], 2), Base)
	if len(succ) != 1 {
		t.Fatal("cross-owner RFlushRange not enabled after draining")
	}
	if succ[0].Mem(locs[1]) != 4 || succ[0].Mem(locs[2]) != 5 {
		t.Fatalf("cross-owner values not persistent: y=%d z=%d",
			succ[0].Mem(locs[1]), succ[0].Mem(locs[2]))
	}
}

// TestRFlushRangeDegenerate: a non-positive range is never enabled, and the
// constructor rejects it outright.
func TestRFlushRangeDegenerate(t *testing.T) {
	topo, locs := rangeTopo()
	s := NewState(topo)
	if got := Apply(s, Label{Op: OpRFlushRange, M: 0, Loc: locs[0], N: 0}, Base); got != nil {
		t.Fatal("zero-length RFlushRange enabled")
	}
	if ApplyInPlace(s.Clone(), Label{Op: OpRFlushRange, M: 0, Loc: locs[0], N: 0}, Base) {
		t.Fatal("zero-length in-place RFlushRange enabled")
	}
	defer func() {
		if recover() == nil {
			t.Error("RFlushRangeL(m, x, 0) did not panic")
		}
	}()
	RFlushRangeL(0, locs[0], 0)
}

// TestRFlushRangeLabelRendering covers String/Pretty and the predicates.
func TestRFlushRangeLabelRendering(t *testing.T) {
	topo, locs := rangeTopo()
	l := RFlushRangeL(0, locs[0], 3)
	if got := l.String(); got != "RFlushRange0(loc0,3)" {
		t.Errorf("String() = %q", got)
	}
	if got := l.Pretty(topo); got != "RFlushRange1(x,3)" {
		t.Errorf("Pretty() = %q", got)
	}
	if !OpRFlushRange.IsFlush() || OpRFlushRange.IsStore() || OpRFlushRange.IsRMW() {
		t.Error("OpRFlushRange predicates wrong")
	}
	if OpRFlushRange.String() != "RFlushRange" {
		t.Errorf("OpRFlushRange.String() = %q", OpRFlushRange)
	}
}

// TestRFlushRangeAvailability: the ranged flush targets owners' persistence
// domains exactly like RFlush, so §4's availability matrix treats the two
// identically.
func TestRFlushRangeAvailability(t *testing.T) {
	for _, setup := range Setups {
		for _, role := range []NodeRole{RoleHost, RoleDevice} {
			if setup.Available(role, OpRFlushRange) != setup.Available(role, OpRFlush) {
				t.Errorf("%v/%v: RFlushRange availability differs from RFlush", setup, role)
			}
		}
	}
}
