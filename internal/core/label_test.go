package core

import (
	"strings"
	"testing"
)

func TestOpPredicates(t *testing.T) {
	stores := []Op{OpLStore, OpRStore, OpMStore}
	rmws := []Op{OpLRMW, OpRRMW, OpMRMW}
	flushes := []Op{OpLFlush, OpRFlush, OpGPF}
	for _, op := range stores {
		if !op.IsStore() || op.IsRMW() || op.IsFlush() {
			t.Errorf("%v predicates wrong", op)
		}
	}
	for _, op := range rmws {
		if !op.IsRMW() || op.IsStore() || op.IsFlush() {
			t.Errorf("%v predicates wrong", op)
		}
	}
	for _, op := range flushes {
		if !op.IsFlush() || op.IsStore() || op.IsRMW() {
			t.Errorf("%v predicates wrong", op)
		}
	}
	if OpLoad.IsStore() || OpLoad.IsRMW() || OpLoad.IsFlush() || OpCrash.IsStore() {
		t.Errorf("Load/Crash predicates wrong")
	}
}

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpLoad: "Load", OpLStore: "LStore", OpRStore: "RStore", OpMStore: "MStore",
		OpLFlush: "LFlush", OpRFlush: "RFlush", OpGPF: "GPF",
		OpLRMW: "L-RMW", OpRRMW: "R-RMW", OpMRMW: "M-RMW", OpCrash: "E",
	}
	for op, s := range want { //cxl0:order-insensitive — independent per-op asserts
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), s)
		}
	}
}

func TestLabelString(t *testing.T) {
	cases := []struct {
		l    Label
		want string
	}{
		{LStoreL(0, 1, 5), "LStore0(loc1,5)"},
		{LoadL(1, 0, 3), "Load1(loc0,3)"},
		{RFlushL(2, 1), "RFlush2(loc1)"},
		{GPFL(0), "GPF0"},
		{CrashL(1), "E1"},
		{RMWL(OpLRMW, 0, 1, 2, 3), "L-RMW0(loc1,2,3)"},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLabelPretty(t *testing.T) {
	topo := NewTopology()
	m1 := topo.AddMachine("machine1", NonVolatile)
	x := topo.AddLoc("x1", m1)
	// Pretty uses the paper's 1-based machine numbering.
	if got := LStoreL(m1, x, 1).Pretty(topo); got != "LStore1(x1,1)" {
		t.Errorf("Pretty = %q", got)
	}
	if got := CrashL(m1).Pretty(topo); got != "E1" {
		t.Errorf("Pretty crash = %q", got)
	}
	if got := RMWL(OpMRMW, m1, x, 0, 2).Pretty(topo); got != "M-RMW1(x1,0,2)" {
		t.Errorf("Pretty RMW = %q", got)
	}
	if got := LFlushL(m1, x).Pretty(topo); got != "LFlush1(x1)" {
		t.Errorf("Pretty flush = %q", got)
	}
	if got := GPFL(m1).Pretty(topo); got != "GPF1" {
		t.Errorf("Pretty GPF = %q", got)
	}
}

func TestRMWLPanicsOnNonRMW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RMWL with a store op did not panic")
		}
	}()
	RMWL(OpLStore, 0, 0, 0, 1)
}

func TestTopologyAccessors(t *testing.T) {
	topo := NewTopology()
	m1 := topo.AddMachine("alpha", NonVolatile)
	m2 := topo.AddMachine("beta", Volatile)
	x := topo.AddLoc("x", m1)
	y := topo.AddLoc("y", m2)

	if topo.NumMachines() != 2 || topo.NumLocs() != 2 {
		t.Fatalf("counts wrong")
	}
	if topo.MachineName(m2) != "beta" || topo.LocName(y) != "y" {
		t.Errorf("names wrong")
	}
	if topo.Owner(x) != m1 || topo.Owner(y) != m2 {
		t.Errorf("owners wrong")
	}
	if topo.Mem(m1) != NonVolatile || topo.Mem(m2) != Volatile {
		t.Errorf("memory kinds wrong")
	}
	if got, ok := topo.LocByName("x"); !ok || got != x {
		t.Errorf("LocByName(x) = %v, %v", got, ok)
	}
	if _, ok := topo.LocByName("zzz"); ok {
		t.Errorf("LocByName found a ghost")
	}
	if NonVolatile.String() != "non-volatile" || Volatile.String() != "volatile" {
		t.Errorf("MemKind strings wrong")
	}
}

func TestTopologyDuplicateLocPanics(t *testing.T) {
	topo := NewTopology()
	m := topo.AddMachine("m", NonVolatile)
	topo.AddLoc("x", m)
	defer func() {
		if recover() == nil {
			t.Error("duplicate location name did not panic")
		}
	}()
	topo.AddLoc("x", m)
}

func TestAddLocsContiguous(t *testing.T) {
	topo := NewTopology()
	m := topo.AddMachine("m", NonVolatile)
	first := topo.AddLocs(m, 5)
	if topo.NumLocs() != 5 {
		t.Fatalf("NumLocs = %d", topo.NumLocs())
	}
	for i := 0; i < 5; i++ {
		if topo.Owner(first+LocID(i)) != m {
			t.Errorf("loc %d owner wrong", i)
		}
	}
}

func TestStateString(t *testing.T) {
	topo := NewTopology()
	m := topo.AddMachine("m", NonVolatile)
	x := topo.AddLoc("x", m)
	s := NewState(topo)
	s.SetCache(m, x, 7)
	s.SetMem(x, 3)
	out := s.String()
	for _, frag := range []string{"x=7", "x:3", "C0{"} {
		if !strings.Contains(out, frag) {
			t.Errorf("State.String() = %q missing %q", out, frag)
		}
	}
}

func TestVariantAndSetupStrings(t *testing.T) {
	if Base.String() != "CXL0" || PSN.String() != "CXL0-PSN" || LWB.String() != "CXL0-LWB" {
		t.Errorf("variant strings wrong")
	}
	for _, s := range Setups {
		if s.String() == "" || strings.HasPrefix(s.String(), "Setup(") {
			t.Errorf("setup %d has no name", int(s))
		}
	}
	if RoleHost.String() != "host" || RoleDevice.String() != "device" {
		t.Errorf("role strings wrong")
	}
}

func TestTauStepString(t *testing.T) {
	v := TauStep{From: 1, Loc: 2, ToMemory: true}
	h := TauStep{From: 0, Loc: 1}
	if !strings.Contains(v.String(), "C1→M") || !strings.Contains(h.String(), "C0→C") {
		t.Errorf("TauStep strings: %q, %q", v, h)
	}
}

// TestReadableAndCachedValue covers the read helpers.
func TestReadableAndCachedValue(t *testing.T) {
	topo := NewTopology()
	m1 := topo.AddMachine("a", NonVolatile)
	m2 := topo.AddMachine("b", NonVolatile)
	x := topo.AddLoc("x", m1)
	s := NewState(topo)
	s.SetMem(x, 4)
	if v := s.Readable(x); v != 4 {
		t.Errorf("Readable from memory = %d", v)
	}
	if _, ok := s.CachedValue(x); ok {
		t.Errorf("CachedValue on empty caches")
	}
	s.SetCache(m2, x, 9)
	if v := s.Readable(x); v != 9 {
		t.Errorf("Readable prefers cache: %d", v)
	}
	if v, ok := s.CachedValue(x); !ok || v != 9 {
		t.Errorf("CachedValue = %d, %v", v, ok)
	}
}
