package core

import "fmt"

// MachineID identifies a machine (node) in the system.
type MachineID int

// LocID identifies a shared memory location. Location IDs are dense indices
// assigned by the Topology in creation order.
type LocID int

// Val is a memory value. The distinguished value 0 initializes every
// location. Values stored to memory must be non-negative; Bot is reserved
// as the cache-invalid sentinel ⊥.
type Val int64

// Bot is the "invalid" cache sentinel ⊥. It never appears in memory.
const Bot Val = -1

// MemKind says whether a machine's attached memory survives its crash.
type MemKind int

const (
	// Volatile memory resets to zero when its machine crashes.
	Volatile MemKind = iota
	// NonVolatile memory survives crashes of its machine (NVMM, or memory
	// in a separate failure domain such as an external pool).
	NonVolatile
)

func (k MemKind) String() string {
	switch k {
	case Volatile:
		return "volatile"
	case NonVolatile:
		return "non-volatile"
	}
	return fmt.Sprintf("MemKind(%d)", int(k))
}

// MachineSpec describes one machine in a topology.
type MachineSpec struct {
	Name string
	Mem  MemKind
}

// Topology is the static shape of a CXL0 system: the set of machines and
// the assignment of every shared location to its owning machine. A Topology
// is immutable once states have been created from it.
type Topology struct {
	machines []MachineSpec
	owner    []MachineID // indexed by LocID
	locNames []string
	locIndex map[string]LocID
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{locIndex: make(map[string]LocID)}
}

// AddMachine registers a machine and returns its ID.
func (t *Topology) AddMachine(name string, mem MemKind) MachineID {
	t.machines = append(t.machines, MachineSpec{Name: name, Mem: mem})
	return MachineID(len(t.machines) - 1)
}

// AddLoc registers a shared location owned by machine m and returns its ID.
// Location names must be unique.
func (t *Topology) AddLoc(name string, m MachineID) LocID {
	if _, dup := t.locIndex[name]; dup {
		panic(fmt.Sprintf("core: duplicate location name %q", name))
	}
	if int(m) < 0 || int(m) >= len(t.machines) {
		panic(fmt.Sprintf("core: AddLoc(%q): no machine %d", name, m))
	}
	id := LocID(len(t.owner))
	t.owner = append(t.owner, m)
	t.locNames = append(t.locNames, name)
	t.locIndex[name] = id
	return id
}

// AddLocs registers n anonymous locations owned by machine m and returns the
// ID of the first; the rest follow contiguously.
func (t *Topology) AddLocs(m MachineID, n int) LocID {
	first := LocID(len(t.owner))
	for i := 0; i < n; i++ {
		t.AddLoc(fmt.Sprintf("%s[%d]", t.machines[m].Name, int(first)+i), m)
	}
	return first
}

// NumMachines returns the number of machines.
func (t *Topology) NumMachines() int { return len(t.machines) }

// NumLocs returns the number of shared locations.
func (t *Topology) NumLocs() int { return len(t.owner) }

// Owner returns the machine owning location l.
func (t *Topology) Owner(l LocID) MachineID { return t.owner[l] }

// Mem returns the memory kind of machine m.
func (t *Topology) Mem(m MachineID) MemKind { return t.machines[m].Mem }

// MachineName returns the name of machine m.
func (t *Topology) MachineName(m MachineID) string { return t.machines[m].Name }

// LocName returns the name of location l.
func (t *Topology) LocName(l LocID) string { return t.locNames[l] }

// LocByName returns the location with the given name.
func (t *Topology) LocByName(name string) (LocID, bool) {
	l, ok := t.locIndex[name]
	return l, ok
}
