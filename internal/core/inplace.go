package core

import "fmt"

// This file provides destructive counterparts of Apply/ApplyTau/Crash for
// the executable runtime (package memsim): the runtime holds a single live
// state behind a lock and has no use for persistent snapshots, so mutating
// in place avoids cloning the whole state on every primitive. Exploration
// code must keep using the cloning API.
//
// TestInPlaceAgreesWithApply property-checks that both APIs define the same
// transition relation.

// ApplyInPlace mutates s by the labeled transition l under variant v and
// reports whether l was enabled (s is unchanged when not). For OpLoad under
// the Base/PSN variants the transition is deterministic, matching Apply's
// single successor.
func ApplyInPlace(s *State, l Label, v Variant) bool {
	switch l.Op {
	case OpLoad:
		return loadInPlace(s, l, v)
	case OpLStore:
		for m := range s.cache {
			s.cache[m][l.Loc] = Bot
		}
		s.cache[l.M][l.Loc] = l.Val
		return true
	case OpRStore:
		k := s.topo.Owner(l.Loc)
		for m := range s.cache {
			s.cache[m][l.Loc] = Bot
		}
		s.cache[k][l.Loc] = l.Val
		return true
	case OpMStore:
		for m := range s.cache {
			s.cache[m][l.Loc] = Bot
		}
		s.mem[l.Loc] = l.Val
		return true
	case OpLFlush:
		return s.cache[l.M][l.Loc] == Bot
	case OpRFlush:
		return s.NoCacheHolds(l.Loc)
	case OpRFlushRange:
		return l.N >= 1 && s.NoCacheHoldsRange(l.Loc, l.N)
	case OpGPF:
		return s.CachesEmpty()
	case OpLRMW, OpRRMW, OpMRMW:
		return rmwInPlace(s, l)
	case OpCrash:
		CrashInPlace(s, l.M, v)
		return true
	default:
		panic(fmt.Sprintf("core: ApplyInPlace: unknown op %v", l.Op))
	}
}

func loadInPlace(s *State, l Label, v Variant) bool {
	if v == LWB {
		if own := s.cache[l.M][l.Loc]; own != Bot {
			return own == l.Val
		}
		if !s.NoCacheHolds(l.Loc) {
			return false
		}
		return s.mem[l.Loc] == l.Val
	}
	if cv, ok := s.CachedValue(l.Loc); ok {
		if cv != l.Val {
			return false
		}
		s.cache[l.M][l.Loc] = cv
		return true
	}
	return s.mem[l.Loc] == l.Val
}

func rmwInPlace(s *State, l Label) bool {
	cur, cached := s.CachedValue(l.Loc)
	if !cached {
		cur = s.mem[l.Loc]
	}
	if cur != l.Old {
		return false
	}
	var storeOp Op
	switch l.Op {
	case OpLRMW:
		storeOp = OpLStore
	case OpRRMW:
		storeOp = OpRStore
	case OpMRMW:
		storeOp = OpMStore
	default:
		return false // not an RMW label: no store half to apply
	}
	return ApplyInPlace(s, Label{Op: storeOp, M: l.M, Loc: l.Loc, Val: l.New}, Base)
}

// ApplyTauInPlace mutates s by one silent propagation step, which must be
// enabled.
func ApplyTauInPlace(s *State, t TauStep) {
	v := s.cache[t.From][t.Loc]
	if v == Bot {
		panic("core: ApplyTauInPlace: step not enabled")
	}
	if t.ToMemory {
		if s.topo.Owner(t.Loc) != t.From {
			panic("core: ApplyTauInPlace: vertical propagation from non-owner")
		}
		for m := range s.cache {
			s.cache[m][t.Loc] = Bot
		}
		s.mem[t.Loc] = v
	} else {
		k := s.topo.Owner(t.Loc)
		s.cache[t.From][t.Loc] = Bot
		s.cache[k][t.Loc] = v
	}
}

// CrashInPlace mutates s by the crash of machine m under variant v.
func CrashInPlace(s *State, m MachineID, v Variant) {
	for l := range s.cache[m] {
		s.cache[m][l] = Bot
	}
	if s.topo.Mem(m) == Volatile {
		for l := 0; l < s.topo.NumLocs(); l++ {
			if s.topo.Owner(LocID(l)) == m {
				s.mem[l] = 0
			}
		}
	}
	if v == PSN {
		for j := range s.cache {
			if MachineID(j) == m {
				continue
			}
			for l := 0; l < s.topo.NumLocs(); l++ {
				if s.topo.Owner(LocID(l)) == m {
					s.cache[j][l] = Bot
				}
			}
		}
	}
}
