package cxlsim

import (
	"fmt"
	"sort"
	"strings"

	"cxl0/internal/coherence"
)

// Node distinguishes the issuing side of a Table 1 row.
type Node int

const (
	// NodeHost rows are issued by the CPU.
	NodeHost Node = iota
	// NodeDevice rows are issued by the Type-2 device.
	NodeDevice
)

func (n Node) String() string {
	if n == NodeHost {
		return "Host"
	}
	return "Device"
}

// Primitive enumerates the CXL0 primitives of Table 1's rows.
type Primitive int

const (
	PRead Primitive = iota
	PLStore
	PRStore
	PMStore
	PLFlush
	PRFlush
)

var primNames = [...]string{"Read", "LStore", "RStore", "MStore", "LFlush", "RFlush"}

func (p Primitive) String() string { return primNames[p] }

// Primitives lists Table 1's rows in order.
var Primitives = []Primitive{PRead, PLStore, PRStore, PMStore, PLFlush, PRFlush}

// OperationName returns Table 1's "Operation" column: the instruction or IP
// flow used to realize the primitive, or "???" when unavailable.
func OperationName(n Node, p Primitive) string {
	if n == NodeHost {
		switch p {
		case PRead:
			return "Load"
		case PLStore:
			return "Store"
		case PMStore:
			return "Non-Temporal Store + Fence"
		case PRFlush:
			return "CLFlush"
		}
		return "???"
	}
	switch p {
	case PRead:
		return "Caching Read"
	case PLStore:
		return "Caching Write"
	case PRStore:
		return "HM: ItoMWr / HDM: Caching Write"
	case PMStore:
		return "Caching Write + CLFlush"
	case PRFlush:
		return "CLFlush"
	}
	return "???"
}

// Cell is one Table 1 cell: the set of distinct link-transaction sequences
// observed across all legal initial MESI state pairs (and, for the device
// MStore row, all IP write modes). "None" records a trial with no link
// traffic.
type Cell struct {
	Node      Node
	Prim      Primitive
	Target    Region
	Available bool
	// Observed is the sorted set of distinct sequences, e.g.
	// ["None", "SnpInv"] or ["DirtyEvict", "RdOwn + DirtyEvict"].
	Observed []string
	// ByState maps "(H,D)" (plus "/mode" for multi-mode rows) to the
	// sequence observed from that initial state.
	ByState map[string]string
}

// seqString renders an analyzer capture as a Table 1 entry.
func seqString(ops []TxnOp) string {
	if len(ops) == 0 {
		return "None"
	}
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " + ")
}

// runPrimitive executes one primitive on a fresh system prepared in the
// given state pair and returns the observed transaction sequence. ok=false
// means the primitive is unavailable.
func runPrimitive(n Node, p Primitive, a Addr, h, d coherence.State, mode WriteMode) (string, bool) {
	sys := NewSystem()
	sys.DevWriteMode = mode
	sys.SetLine(a, h, d, 7)
	switch n {
	case NodeHost:
		switch p {
		case PRead:
			sys.HostLoad(a)
		case PLStore:
			sys.HostLStore(a, 55)
		case PMStore:
			sys.HostMStore(a, 55)
		case PRFlush:
			sys.HostRFlush(a)
		default:
			return "", false
		}
	default:
		switch p {
		case PRead:
			sys.DevLoad(a)
		case PLStore:
			sys.DevLStore(a, 55)
		case PRStore:
			sys.DevRStore(a, 55)
		case PMStore:
			sys.DevMStore(a, 55)
		case PRFlush:
			sys.DevRFlush(a)
		default:
			return "", false
		}
	}
	if err := sys.CheckCoherence(); err != nil {
		panic(err)
	}
	return seqString(sys.An.Ops()), true
}

// GenerateTable1 regenerates the paper's Table 1 by driving every primitive
// from every legal initial MESI state pair through the simulator and
// recording the link traffic.
//
// Enumeration notes, mirroring the paper's measurement protocol: device
// flush rows are exercised only from states in which the device holds the
// line (flushing an absent line is a no-op the paper's table omits), and the
// device MStore-to-HM row is exercised under all three IP write modes,
// which is where the WOWrInv/F and WrInv alternatives come from.
func GenerateTable1() []Cell {
	var cells []Cell
	for _, n := range []Node{NodeHost, NodeDevice} {
		for _, p := range Primitives {
			for _, reg := range []Region{HM, HDM} {
				cells = append(cells, generateCell(n, p, reg))
			}
		}
	}
	return cells
}

func generateCell(n Node, p Primitive, reg Region) Cell {
	cell := Cell{Node: n, Prim: p, Target: reg, ByState: map[string]string{}}
	a := Addr{Region: reg, Line: 1}
	modes := []WriteMode{CacheableWrite}
	if n == NodeDevice && p == PMStore && reg == HM {
		modes = []WriteMode{CacheableWrite, WeaklyOrderedWrite, NonCacheableWrite}
	}
	set := map[string]bool{}
	for _, pair := range coherence.LegalPairs() {
		h, d := pair[0], pair[1]
		if n == NodeDevice && p == PRFlush && !d.Valid() {
			continue // flushes are measured on lines the device holds
		}
		for _, mode := range modes {
			seq, ok := runPrimitive(n, p, a, h, d, mode)
			if !ok {
				return cell // unavailable: Available stays false
			}
			key := fmt.Sprintf("(%v,%v)", h, d)
			if len(modes) > 1 {
				key += "/" + map[WriteMode]string{CacheableWrite: "cache", WeaklyOrderedWrite: "wo", NonCacheableWrite: "nc"}[mode]
			}
			cell.ByState[key] = seq
			set[seq] = true
		}
	}
	cell.Available = true
	for s := range set {
		cell.Observed = append(cell.Observed, s)
	}
	sort.Strings(cell.Observed)
	return cell
}

// PaperTable1 is the expected content of every Table 1 cell as printed in
// the paper, used to verify the regenerated mapping. Sequences within a
// cell are sorted.
func PaperTable1() map[string][]string {
	return map[string][]string{
		"Host/Read/HM":      {"None", "SnpInv"},
		"Host/Read/HDM":     {"MemRdData", "None"},
		"Host/LStore/HM":    {"None", "SnpInv"},
		"Host/LStore/HDM":   {"MemRd", "MemRdData", "None"},
		"Host/MStore/HM":    {"SnpInv"},
		"Host/MStore/HDM":   {"MemWr"},
		"Host/RFlush/HM":    {"None", "SnpInv"},
		"Host/RFlush/HDM":   {"MemInv", "MemWr", "None"},
		"Device/Read/HM":    {"None", "RdShared"},
		"Device/Read/HDM":   {"None", "RdShared"},
		"Device/LStore/HM":  {"None", "RdOwn"},
		"Device/LStore/HDM": {"None", "RdOwn"},
		"Device/RStore/HM":  {"ItoMWr"},
		"Device/RStore/HDM": {"None", "RdOwn"},
		"Device/MStore/HM":  {"DirtyEvict", "RdOwn + DirtyEvict", "WOWrInv/F", "WrInv"},
		"Device/MStore/HDM": {"MemRd", "None"},
		"Device/RFlush/HM":  {"CleanEvict", "DirtyEvict"},
		"Device/RFlush/HDM": {"MemRd", "None"},
	}
}

// CellKey returns the PaperTable1 lookup key for a cell.
func (c Cell) CellKey() string {
	return fmt.Sprintf("%v/%v/%v", c.Node, c.Prim, c.Target)
}

// Unavailable lists the (node, primitive) combinations marked ??? in
// Table 1.
func Unavailable() [][2]string {
	return [][2]string{
		{"Host", "RStore"}, {"Host", "LFlush"}, {"Device", "LFlush"},
	}
}
