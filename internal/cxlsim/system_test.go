package cxlsim

import (
	"errors"
	"reflect"
	"testing"

	"cxl0/internal/coherence"
)

func TestHostLoadHM(t *testing.T) {
	sys := NewSystem()
	a := Addr{HM, 1}

	// Cold read: no device copy, no transaction, value from memory.
	sys.SetLine(a, coherence.Invalid, coherence.Invalid, 10)
	if v := sys.HostLoad(a); v != 10 {
		t.Errorf("cold host load = %d, want 10", v)
	}
	if sys.An.Len() != 0 {
		t.Errorf("cold host load emitted %v", sys.An.Ops())
	}

	// Device holds a dirty copy: SnpInv and the dirty value is returned.
	sys = NewSystem()
	sys.SetLine(a, coherence.Invalid, coherence.Modified, 10)
	if v := sys.HostLoad(a); v != 110 {
		t.Errorf("host load of device-dirty line = %d, want 110", v)
	}
	if got := sys.An.Ops(); !reflect.DeepEqual(got, []TxnOp{SnpInv}) {
		t.Errorf("transactions = %v, want [SnpInv]", got)
	}
	if sys.DevState(a).Valid() {
		t.Errorf("device copy not invalidated")
	}
	if sys.Mem(a) != 110 {
		t.Errorf("dirty data not written back: mem=%d", sys.Mem(a))
	}
}

func TestHostLoadHDM(t *testing.T) {
	sys := NewSystem()
	a := Addr{HDM, 2}
	sys.SetLine(a, coherence.Invalid, coherence.Modified, 20)
	if v := sys.HostLoad(a); v != 120 {
		t.Errorf("host HDM load = %d, want 120 (device's dirty value)", v)
	}
	if got := sys.An.Ops(); !reflect.DeepEqual(got, []TxnOp{MemRdData}) {
		t.Errorf("transactions = %v, want [MemRdData]", got)
	}
	// Warm read: no traffic.
	sys.An.Reset()
	if v := sys.HostLoad(a); v != 120 || sys.An.Len() != 0 {
		t.Errorf("warm HDM load: v=%d txns=%v", v, sys.An.Ops())
	}
}

func TestHostStoreThenDeviceRead(t *testing.T) {
	sys := NewSystem()
	a := Addr{HM, 3}
	sys.HostLStore(a, 42)
	if v := sys.DevLoad(a); v != 42 {
		t.Errorf("device read after host store = %d, want 42", v)
	}
	if got := sys.An.Ops(); !reflect.DeepEqual(got, []TxnOp{RdShared}) {
		t.Errorf("transactions = %v, want [RdShared]", got)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestDeviceWriteInvalidatesHost(t *testing.T) {
	sys := NewSystem()
	a := Addr{HM, 4}
	sys.SetLine(a, coherence.Modified, coherence.Invalid, 5)
	sys.DevLStore(a, 77)
	if got := sys.An.Ops(); !reflect.DeepEqual(got, []TxnOp{RdOwn}) {
		t.Errorf("transactions = %v, want [RdOwn]", got)
	}
	if sys.HostState(a).Valid() {
		t.Errorf("host copy survived device RdOwn")
	}
	if v := sys.DevLoad(a); v != 77 {
		t.Errorf("device readback = %d, want 77", v)
	}
	// The host's dirty value was written back before being overwritten in
	// the device cache; memory holds the host's old dirty data until the
	// device flushes.
	if sys.Mem(a) != 105 {
		t.Errorf("host dirty writeback missing: mem=%d, want 105", sys.Mem(a))
	}
}

func TestDevRStorePushesIntoHostCache(t *testing.T) {
	sys := NewSystem()
	a := Addr{HM, 5}
	sys.DevRStore(a, 9)
	if got := sys.An.Ops(); !reflect.DeepEqual(got, []TxnOp{ItoMWr}) {
		t.Errorf("transactions = %v, want [ItoMWr]", got)
	}
	if sys.HostState(a) != coherence.Modified {
		t.Errorf("host cache state = %v, want M", sys.HostState(a))
	}
	if sys.Mem(a) == 9 {
		t.Errorf("RStore must land in the host cache, not memory")
	}
	sys.An.Reset()
	if v := sys.HostLoad(a); v != 9 || sys.An.Len() != 0 {
		t.Errorf("host read of pushed line: v=%d txns=%v", v, sys.An.Ops())
	}
}

func TestDevMStorePersistsUnderAllModes(t *testing.T) {
	for _, mode := range []WriteMode{CacheableWrite, WeaklyOrderedWrite, NonCacheableWrite} {
		sys := NewSystem()
		sys.DevWriteMode = mode
		a := Addr{HM, 6}
		sys.SetLine(a, coherence.Shared, coherence.Shared, 1)
		sys.DevMStore(a, 88)
		if sys.Mem(a) != 88 {
			t.Errorf("mode %v: MStore did not reach memory: %d", mode, sys.Mem(a))
		}
		if err := sys.CheckCoherence(); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func TestHostMStoreReachesDeviceMemory(t *testing.T) {
	sys := NewSystem()
	a := Addr{HDM, 7}
	sys.SetLine(a, coherence.Modified, coherence.Invalid, 3)
	sys.HostMStore(a, 66)
	if got := sys.An.Ops(); !reflect.DeepEqual(got, []TxnOp{MemWr}) {
		t.Errorf("transactions = %v, want [MemWr]", got)
	}
	if sys.Mem(a) != 66 {
		t.Errorf("MStore value not in device memory: %d", sys.Mem(a))
	}
	if sys.HostState(a).Valid() {
		t.Errorf("host cache still valid after NT store")
	}
}

func TestHostRFlushWritesBackDirtyHDM(t *testing.T) {
	sys := NewSystem()
	a := Addr{HDM, 8}
	sys.HostLStore(a, 31) // host gains M
	sys.An.Reset()
	sys.HostRFlush(a)
	if got := sys.An.Ops(); !reflect.DeepEqual(got, []TxnOp{MemWr}) {
		t.Errorf("transactions = %v, want [MemWr]", got)
	}
	if sys.Mem(a) != 31 {
		t.Errorf("flush did not persist: mem=%d", sys.Mem(a))
	}
}

func TestDeviceBiasDirectAccess(t *testing.T) {
	sys := NewSystem()
	a := Addr{HDM, 9}
	sys.SetBias(a, DeviceBias)
	sys.DevLStore(a, 12)
	sys.DevRFlush(a)
	if sys.An.Len() != 0 {
		t.Errorf("device-bias access emitted link traffic: %v", sys.An.Ops())
	}
	if sys.Mem(a) != 12 {
		t.Errorf("device-bias store+flush did not persist: %d", sys.Mem(a))
	}
	if v := sys.DevLoad(a); v != 12 {
		t.Errorf("device-bias load = %d, want 12", v)
	}
}

func TestUnavailablePrimitives(t *testing.T) {
	sys := NewSystem()
	a := Addr{HM, 10}
	if err := sys.HostRStore(a, 1); !errors.Is(err, ErrNotAvailable) {
		t.Errorf("HostRStore err = %v", err)
	}
	if err := sys.HostLFlush(a); !errors.Is(err, ErrNotAvailable) {
		t.Errorf("HostLFlush err = %v", err)
	}
	if err := sys.DevLFlush(a); !errors.Is(err, ErrNotAvailable) {
		t.Errorf("DevLFlush err = %v", err)
	}
}

// TestCoherenceAfterRandomOps drives a long pseudo-random operation mix and
// checks MESI legality and read-your-writes throughout.
func TestCoherenceAfterRandomOps(t *testing.T) {
	sys := NewSystem()
	addrs := []Addr{{HM, 0}, {HM, 1}, {HDM, 0}, {HDM, 1}}
	last := map[Addr]uint64{}
	seed := uint64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for i := 0; i < 3000; i++ {
		a := addrs[next(len(addrs))]
		v := uint64(next(1000))
		switch next(7) {
		case 0:
			sys.HostLStore(a, v)
			last[a] = v
		case 1:
			sys.HostMStore(a, v)
			last[a] = v
		case 2:
			sys.DevLStore(a, v)
			last[a] = v
		case 3:
			sys.DevRStore(a, v)
			last[a] = v
		case 4:
			sys.DevMStore(a, v)
			last[a] = v
		case 5:
			sys.HostRFlush(a)
		case 6:
			sys.DevRFlush(a)
		}
		if err := sys.CheckCoherence(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if w, ok := last[a]; ok {
			if got := sys.HostLoad(a); got != w {
				t.Fatalf("op %d: host read %d, want %d at %v", i, got, w, a)
			}
			if got := sys.DevLoad(a); got != w {
				t.Fatalf("op %d: device read %d, want %d at %v", i, got, w, a)
			}
		}
	}
}
