// Package cxlsim is a transaction-level simulator of a CXL 1.1 host–device
// pairing (Fig. 4a of the paper): an x86-style host and a Type-2 accelerator
// sharing Host-attached Memory (HM) and Host-managed Device Memory (HDM) in
// a MESI coherence domain. The host reaches HDM via CXL.mem; the device
// reaches HM via CXL.cache.
//
// The package replaces the paper's physical testbed (x86 CPU + Intel FPGA
// CXL IP + Teledyne LeCroy T516 protocol analyzer): operations issued
// through the System API drive MESI line-state machines and emit the CXL
// link transactions the paper observed in §5.1; an embedded Analyzer
// records them, which is how Table 1 is regenerated.
package cxlsim

import "fmt"

// Protocol is the CXL sub-protocol a transaction belongs to.
type Protocol int

const (
	// CacheProto is CXL.cache (device coherence protocol).
	CacheProto Protocol = iota
	// MemProto is CXL.mem (host memory protocol).
	MemProto
)

func (p Protocol) String() string {
	if p == CacheProto {
		return "CXL.cache"
	}
	return "CXL.mem"
}

// Channel is the direction of a transaction.
type Channel int

const (
	// D2H is CXL.cache device-to-host.
	D2H Channel = iota
	// H2D is CXL.cache host-to-device.
	H2D
	// M2S is CXL.mem master-to-subordinate (host to device memory).
	M2S
	// S2M is CXL.mem subordinate-to-master.
	S2M
)

var channelNames = [...]string{"D2H", "H2D", "M2S", "S2M"}

func (c Channel) String() string {
	if int(c) < len(channelNames) {
		return channelNames[c]
	}
	return fmt.Sprintf("Channel(%d)", int(c))
}

// TxnOp enumerates the CXL transaction opcodes observed in the paper's
// Table 1 (a small but sufficient subset of the specification's opcode
// space).
type TxnOp int

const (
	// SnpInv is a CXL.cache H2D snoop-invalidate.
	SnpInv TxnOp = iota
	// RdShared is a CXL.cache D2H cacheable read for a Shared copy.
	RdShared
	// RdOwn is a CXL.cache D2H read-for-ownership.
	RdOwn
	// ItoMWr is a CXL.cache D2H full-line push write into the host cache.
	ItoMWr
	// CleanEvict is a CXL.cache D2H eviction of a clean line.
	CleanEvict
	// DirtyEvict is a CXL.cache D2H eviction of a dirty line (writeback).
	DirtyEvict
	// WOWrInvF is a CXL.cache D2H weakly-ordered full-line write-invalidate.
	WOWrInvF
	// WrInv is a CXL.cache D2H (non-cacheable) write-invalidate.
	WrInv
	// MemRd is a CXL.mem M2S read with ownership (RFO-style).
	MemRd
	// MemRdData is a CXL.mem M2S data read without ownership.
	MemRdData
	// MemWr is a CXL.mem M2S memory write.
	MemWr
	// MemInv is a CXL.mem M2S invalidation without data.
	MemInv
)

var txnOpNames = [...]string{
	SnpInv: "SnpInv", RdShared: "RdShared", RdOwn: "RdOwn", ItoMWr: "ItoMWr",
	CleanEvict: "CleanEvict", DirtyEvict: "DirtyEvict", WOWrInvF: "WOWrInv/F",
	WrInv: "WrInv", MemRd: "MemRd", MemRdData: "MemRdData", MemWr: "MemWr", MemInv: "MemInv",
}

func (o TxnOp) String() string {
	if int(o) < len(txnOpNames) {
		return txnOpNames[o]
	}
	return fmt.Sprintf("TxnOp(%d)", int(o))
}

// channelOf returns the protocol and channel an opcode travels on.
func channelOf(o TxnOp) (Protocol, Channel) {
	switch o {
	case SnpInv:
		return CacheProto, H2D
	case RdShared, RdOwn, ItoMWr, CleanEvict, DirtyEvict, WOWrInvF, WrInv:
		return CacheProto, D2H
	case MemRd, MemRdData, MemWr, MemInv:
		return MemProto, M2S
	}
	panic(fmt.Sprintf("cxlsim: unknown opcode %d", int(o)))
}

// Transaction is one request observed on the simulated link.
type Transaction struct {
	Protocol Protocol
	Channel  Channel
	Op       TxnOp
	Addr     Addr
}

func (t Transaction) String() string {
	return fmt.Sprintf("%s %s %s @%v", t.Protocol, t.Channel, t.Op, t.Addr)
}

// Analyzer passively records link transactions, standing in for the
// hardware protocol analyzer of §5.
type Analyzer struct {
	txns []Transaction
}

// Record appends a transaction to the capture buffer.
func (a *Analyzer) Record(t Transaction) { a.txns = append(a.txns, t) }

// Trace returns the captured transactions in order.
func (a *Analyzer) Trace() []Transaction { return append([]Transaction(nil), a.txns...) }

// Ops returns just the opcodes of the captured transactions.
func (a *Analyzer) Ops() []TxnOp {
	out := make([]TxnOp, len(a.txns))
	for i, t := range a.txns {
		out[i] = t.Op
	}
	return out
}

// Reset clears the capture buffer.
func (a *Analyzer) Reset() { a.txns = a.txns[:0] }

// Len returns the number of captured transactions.
func (a *Analyzer) Len() int { return len(a.txns) }
