package cxlsim

import (
	"errors"
	"fmt"

	"cxl0/internal/coherence"
)

// Region says which memory an address belongs to.
type Region int

const (
	// HM is Host-attached Memory.
	HM Region = iota
	// HDM is Host-managed Device Memory.
	HDM
)

func (r Region) String() string {
	if r == HM {
		return "HM"
	}
	return "HDM"
}

// Addr is a cache-line address within one region.
type Addr struct {
	Region Region
	Line   int
}

func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Region, a.Line) }

// Bias is the page bias of an HDM line (§2.1).
type Bias int

const (
	// HostBias: the host owns the page; the device must ask permission.
	HostBias Bias = iota
	// DeviceBias: the device owns the page and accesses it directly.
	DeviceBias
)

func (b Bias) String() string {
	if b == HostBias {
		return "host-bias"
	}
	return "device-bias"
}

// WriteMode selects how the device's CXL IP issues persistent (MStore)
// writes to Host-attached Memory; the paper observed all three.
type WriteMode int

const (
	// CacheableWrite acquires ownership (RdOwn if needed) and flushes
	// (DirtyEvict).
	CacheableWrite WriteMode = iota
	// WeaklyOrderedWrite streams a weakly-ordered full-line
	// write-invalidate (WOWrInv/F).
	WeaklyOrderedWrite
	// NonCacheableWrite issues a plain write-invalidate (WrInv).
	NonCacheableWrite
)

// ErrNotAvailable marks CXL0 primitives no current instruction or IP flow
// can generate — the "???" cells of Table 1: RStore and LFlush on the host,
// LFlush on the device.
var ErrNotAvailable = errors.New("cxlsim: primitive not implementable on this node under CXL 1.1 (\"???\" in Table 1)")

// System is a simulated CXL 1.1 host–device pairing: one host with attached
// memory (HM), one Type-2 device with host-managed device memory (HDM),
// coherent caches on both sides, and an analyzer on the link.
type System struct {
	An *Analyzer
	// DevWriteMode selects the device IP's flow for MStore-to-HM.
	DevWriteMode WriteMode

	hostCache map[Addr]*coherence.Line
	devCache  map[Addr]*coherence.Line
	hostMem   map[Addr]uint64
	devMem    map[Addr]uint64
	bias      map[Addr]Bias
}

// NewSystem returns a system with empty caches, zeroed memories, and all
// HDM lines in host bias.
func NewSystem() *System {
	return &System{
		An:        &Analyzer{},
		hostCache: map[Addr]*coherence.Line{},
		devCache:  map[Addr]*coherence.Line{},
		hostMem:   map[Addr]uint64{},
		devMem:    map[Addr]uint64{},
		bias:      map[Addr]Bias{},
	}
}

func (s *System) hline(a Addr) *coherence.Line {
	l, ok := s.hostCache[a]
	if !ok {
		l = &coherence.Line{}
		s.hostCache[a] = l
	}
	return l
}

func (s *System) dline(a Addr) *coherence.Line {
	l, ok := s.devCache[a]
	if !ok {
		l = &coherence.Line{}
		s.devCache[a] = l
	}
	return l
}

func (s *System) memRead(a Addr) uint64 {
	if a.Region == HM {
		return s.hostMem[a]
	}
	return s.devMem[a]
}

func (s *System) memWrite(a Addr, v uint64) {
	if a.Region == HM {
		s.hostMem[a] = v
	} else {
		s.devMem[a] = v
	}
}

// SetBias sets the bias of an HDM line.
func (s *System) SetBias(a Addr, b Bias) {
	if a.Region != HDM {
		panic("cxlsim: bias applies to HDM lines only")
	}
	s.bias[a] = b
}

// BiasOf returns the bias of an HDM line (HostBias by default).
func (s *System) BiasOf(a Addr) Bias { return s.bias[a] }

// HostState returns the host cache state for a.
func (s *System) HostState(a Addr) coherence.State { return s.hline(a).State }

// DevState returns the device cache state for a.
func (s *System) DevState(a Addr) coherence.State { return s.dline(a).State }

// Mem returns the backing-memory value of a.
func (s *System) Mem(a Addr) uint64 { return s.memRead(a) }

// SetLine installs an initial coherence state pair for a, as the paper's
// measurement setup does ("we create all possible pairs of cache coherence
// states"). memVal seeds the backing memory; clean copies hold memVal and a
// Modified copy holds memVal+100 (a newer value, to make writeback flows
// observable).
func (s *System) SetLine(a Addr, host, dev coherence.State, memVal uint64) {
	if !coherence.PairLegal(host, dev) {
		panic(fmt.Sprintf("cxlsim: illegal state pair (%v,%v)", host, dev))
	}
	s.memWrite(a, memVal)
	h, d := s.hline(a), s.dline(a)
	*h = coherence.Line{State: host, Data: memVal}
	*d = coherence.Line{State: dev, Data: memVal}
	if host == coherence.Modified {
		h.Data = memVal + 100
	}
	if dev == coherence.Modified {
		d.Data = memVal + 100
	}
}

// CheckCoherence verifies MESI pair legality for every touched line.
func (s *System) CheckCoherence() error {
	for a, h := range s.hostCache {
		if d, ok := s.devCache[a]; ok {
			if !coherence.PairLegal(h.State, d.State) {
				return fmt.Errorf("cxlsim: illegal pair (%v,%v) at %v", h.State, d.State, a)
			}
		}
	}
	return nil
}

func (s *System) emit(op TxnOp, a Addr) {
	p, c := channelOf(op)
	s.An.Record(Transaction{Protocol: p, Channel: c, Op: op, Addr: a})
}

// ---------------------------------------------------------------------------
// Host operations (§5.1, Table 1 upper half). The host reaches HM through
// its own coherence domain (snooping the device over CXL.cache H2D) and HDM
// through CXL.mem M2S.
// ---------------------------------------------------------------------------

// reclaimBias flips a device-biased HDM line back to host bias before a
// host access: the host re-acquires page ownership (observed as an M2S
// MemRd) and the device's copy is resolved. This is the §2.1 tradeoff in
// action — device-bias gives the device fast local access at the price of
// an ownership reclaim whenever the host touches the page.
func (s *System) reclaimBias(a Addr) {
	if a.Region != HDM || s.BiasOf(a) != DeviceBias {
		return
	}
	s.emit(MemRd, a)
	d := s.dline(a)
	if d.State.Dirty() {
		s.memWrite(a, d.Data)
	}
	d.State = coherence.Invalid
	s.bias[a] = HostBias
}

// HostLoad performs a CXL0 Read from the host (an ordinary load).
func (s *System) HostLoad(a Addr) uint64 {
	s.reclaimBias(a)
	h, d := s.hline(a), s.dline(a)
	switch a.Region {
	case HM:
		// The measured host snoop-invalidates any device copy, even when it
		// already holds the line Shared.
		if d.State.Valid() {
			s.emit(SnpInv, a)
			data, dirty := d.OnSnoopInvalidate()
			if dirty {
				s.memWrite(a, data)
			}
		}
		if !h.State.Valid() {
			h.OnFill(s.memRead(a), true) // device just invalidated: exclusive
		}
		return h.Data
	default: // HDM
		if h.State.Valid() {
			return h.Data
		}
		s.emit(MemRdData, a)
		// The device's coherence engine resolves its own copy internally:
		// a dirty copy is written back, and any owned copy downgrades to
		// Shared now that the host holds the line too.
		if d.State.Dirty() {
			s.memWrite(a, d.Data)
		}
		if d.State.Owned() {
			d.State = coherence.Shared
		}
		h.OnFill(s.memRead(a), !d.State.Valid())
		return h.Data
	}
}

// HostLStore performs a CXL0 LStore from the host (an ordinary cacheable
// store).
func (s *System) HostLStore(a Addr, v uint64) {
	s.reclaimBias(a)
	h, d := s.hline(a), s.dline(a)
	switch a.Region {
	case HM:
		if !h.State.Owned() {
			if d.State.Valid() {
				s.emit(SnpInv, a)
				data, dirty := d.OnSnoopInvalidate()
				if dirty {
					s.memWrite(a, data)
				}
			}
			// Shared→E upgrades and local fills stay inside the host.
			h.OnGrantOwnership(s.valueOrCached(h, a))
		}
		h.OnLocalWrite(v)
	default: // HDM
		if !h.State.Owned() {
			switch h.State {
			case coherence.Invalid:
				// Store miss: read-for-ownership over CXL.mem.
				s.emit(MemRd, a)
			case coherence.Shared:
				// Ownership upgrade: the measured CPU re-fetches the line
				// data before claiming it (observed as MemRdData).
				s.emit(MemRdData, a)
			}
			if d.State.Dirty() {
				s.memWrite(a, d.Data)
			}
			d.State = coherence.Invalid
			h.OnGrantOwnership(s.memRead(a))
		}
		h.OnLocalWrite(v)
	}
}

// valueOrCached returns the line's cached data when valid, else memory.
func (s *System) valueOrCached(l *coherence.Line, a Addr) uint64 {
	if l.State.Valid() {
		return l.Data
	}
	return s.memRead(a)
}

// HostMStore performs a CXL0 MStore from the host (a non-temporal store
// followed by a fence): the value reaches physical memory before returning.
func (s *System) HostMStore(a Addr, v uint64) {
	s.reclaimBias(a)
	h, d := s.hline(a), s.dline(a)
	switch a.Region {
	case HM:
		// The NT store bypasses the cache and snoop-invalidates globally;
		// the paper observed SnpInv in every initial state.
		s.emit(SnpInv, a)
		d.OnSnoopInvalidate() // full-line write: prior dirty data is overwritten
		h.OnSnoopInvalidate()
		s.memWrite(a, v)
	default:
		s.emit(MemWr, a)
		h.OnSnoopInvalidate()
		d.OnSnoopInvalidate()
		s.memWrite(a, v)
	}
}

// HostRFlush performs a CXL0 RFlush from the host (CLFLUSH): the line is
// written back to its physical memory and no cache retains it.
func (s *System) HostRFlush(a Addr) {
	s.reclaimBias(a)
	h, d := s.hline(a), s.dline(a)
	switch a.Region {
	case HM:
		if d.State.Valid() {
			s.emit(SnpInv, a)
			data, dirty := d.OnSnoopInvalidate()
			if dirty {
				s.memWrite(a, data)
			}
		}
		if h.State.Valid() {
			data, dirty := h.OnEvict() // host-internal writeback
			if dirty {
				s.memWrite(a, data)
			}
		}
	default:
		switch {
		case h.State.Dirty():
			data, _ := h.OnEvict()
			s.emit(MemWr, a)
			s.memWrite(a, data)
		case h.State.Valid():
			h.OnEvict()
			s.emit(MemInv, a)
		}
		if d.State.Dirty() {
			s.memWrite(a, d.Data)
		}
		d.State = coherence.Invalid
	}
}

// HostRStore is not generatable by any x86 instruction sequence (??? in
// Table 1).
func (s *System) HostRStore(a Addr, v uint64) error { return ErrNotAvailable }

// HostLFlush is not generatable by any x86 instruction sequence (??? in
// Table 1).
func (s *System) HostLFlush(a Addr) error { return ErrNotAvailable }

// ---------------------------------------------------------------------------
// Device operations (§5.1, Table 1 lower half). The device reaches HM
// through CXL.cache D2H and its own HDM either through the host (host bias)
// or directly (device bias).
// ---------------------------------------------------------------------------

// DevLoad performs a CXL0 Read from the device (a caching read).
func (s *System) DevLoad(a Addr) uint64 {
	h, d := s.hline(a), s.dline(a)
	if a.Region == HDM && s.BiasOf(a) == DeviceBias {
		// Device-bias: direct access, no link traffic.
		if !d.State.Valid() {
			if h.State.Dirty() { // stale host copy cannot exist in device bias, but be safe
				s.memWrite(a, h.Data)
				h.State = coherence.Invalid
			}
			d.OnFill(s.memRead(a), true)
		}
		return d.Data
	}
	if d.State.Valid() {
		return d.Data
	}
	s.emit(RdShared, a)
	// The host's home agent provides the data, downgrading a dirty copy.
	if h.State.Dirty() {
		s.memWrite(a, h.Data)
		h.State = coherence.Shared
	} else if h.State == coherence.Exclusive {
		h.State = coherence.Shared
	}
	d.OnFill(s.memRead(a), !h.State.Valid())
	return d.Data
}

// DevLStore performs a CXL0 LStore from the device (a caching write).
func (s *System) DevLStore(a Addr, v uint64) {
	h, d := s.hline(a), s.dline(a)
	if a.Region == HDM && s.BiasOf(a) == DeviceBias {
		if !d.State.Owned() {
			d.OnGrantOwnership(s.memRead(a))
		}
		d.OnLocalWrite(v)
		return
	}
	if !d.State.Owned() {
		s.emit(RdOwn, a)
		if h.State.Valid() {
			data, dirty := h.OnSnoopInvalidate() // host-side handling of RdOwn
			if dirty {
				s.memWrite(a, data)
			}
		}
		d.OnGrantOwnership(s.memRead(a))
	}
	d.OnLocalWrite(v)
}

// DevRStore performs a CXL0 RStore from the device: the value is pushed
// into the remote (host) cache. For HM this is the dedicated ItoMWr flow;
// for the device's own HDM it degenerates to a caching write (Table 1).
func (s *System) DevRStore(a Addr, v uint64) {
	h, d := s.hline(a), s.dline(a)
	if a.Region == HM {
		s.emit(ItoMWr, a)
		d.OnSnoopInvalidate()
		h.OnSnoopInvalidate()
		h.OnGrantOwnership(v)
		h.OnLocalWrite(v) // line lands Modified in the host cache
		return
	}
	s.DevLStore(a, v)
}

// DevMStore performs a CXL0 MStore from the device: the value reaches
// physical memory before returning.
//
// For HM the flow depends on the IP's write mode: a cacheable write
// acquires ownership and immediately flushes (RdOwn + DirtyEvict), a
// weakly-ordered write streams WOWrInv/F, and a non-cacheable write issues
// WrInv. For host-biased HDM the device writes its own memory directly; if
// the host holds the line, the host's extraction shows up as an M2S MemRd.
func (s *System) DevMStore(a Addr, v uint64) {
	h, d := s.hline(a), s.dline(a)
	if a.Region == HM {
		switch s.DevWriteMode {
		case WeaklyOrderedWrite, NonCacheableWrite:
			op := WOWrInvF
			if s.DevWriteMode == NonCacheableWrite {
				op = WrInv
			}
			s.emit(op, a)
			h.OnSnoopInvalidate() // full-line write-invalidate
			d.OnSnoopInvalidate()
			s.memWrite(a, v)
		default: // CacheableWrite
			if !d.State.Owned() {
				s.emit(RdOwn, a)
				if h.State.Valid() {
					data, dirty := h.OnSnoopInvalidate()
					if dirty {
						s.memWrite(a, data)
					}
				}
				d.OnGrantOwnership(s.memRead(a))
			}
			d.OnLocalWrite(v)
			s.emit(DirtyEvict, a)
			data, _ := d.OnEvict()
			s.memWrite(a, data)
		}
		return
	}
	// HDM: direct write into the device's own memory. Under host bias an
	// outstanding host copy is extracted first, observed as M2S MemRd.
	if s.BiasOf(a) == HostBias && h.State.Valid() {
		s.emit(MemRd, a)
		h.OnSnoopInvalidate() // full-line write: host data superseded
	}
	d.OnSnoopInvalidate()
	s.memWrite(a, v)
}

// DevRFlush performs a CXL0 RFlush from the device (CLFlush): the line is
// written back to its physical memory.
func (s *System) DevRFlush(a Addr) {
	h, d := s.hline(a), s.dline(a)
	if a.Region == HM {
		switch {
		case d.State.Dirty():
			data, _ := d.OnEvict()
			s.emit(DirtyEvict, a)
			s.memWrite(a, data)
		case d.State.Valid():
			d.OnEvict()
			s.emit(CleanEvict, a)
		}
		return
	}
	// HDM: the device's own writeback is internal; a host-held copy must be
	// extracted through the host, observed as M2S MemRd.
	if s.BiasOf(a) == HostBias && h.State.Valid() {
		s.emit(MemRd, a)
		data, dirty := h.OnSnoopInvalidate()
		if dirty {
			s.memWrite(a, data)
		}
	}
	if d.State.Valid() {
		data, dirty := d.OnEvict()
		if dirty {
			s.memWrite(a, data)
		}
	}
}

// DevLFlush is not generatable: the proprietary IP offers no control to
// issue it (??? in Table 1).
func (s *System) DevLFlush(a Addr) error { return ErrNotAvailable }
