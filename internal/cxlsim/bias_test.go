package cxlsim

import (
	"reflect"
	"testing"
)

// TestBiasFlipOnHostAccess: touching a device-biased page from the host
// reclaims ownership (one MemRd), flips the page to host bias, and
// preserves the device's dirty data.
func TestBiasFlipOnHostAccess(t *testing.T) {
	sys := NewSystem()
	a := Addr{HDM, 3}
	sys.SetBias(a, DeviceBias)
	sys.DevLStore(a, 77) // device writes its own page directly: no traffic
	if sys.An.Len() != 0 {
		t.Fatalf("device-bias store emitted %v", sys.An.Ops())
	}

	v := sys.HostLoad(a)
	if v != 77 {
		t.Errorf("host read %d across bias flip, want 77", v)
	}
	ops := sys.An.Ops()
	if len(ops) == 0 || ops[0] != MemRd {
		t.Errorf("bias reclaim not observed: %v", ops)
	}
	if sys.BiasOf(a) != HostBias {
		t.Errorf("page still device-biased after host access")
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Error(err)
	}

	// Subsequent device access now follows host-bias flows.
	sys.An.Reset()
	sys.DevLStore(a, 78)
	if got := sys.An.Ops(); !reflect.DeepEqual(got, []TxnOp{RdOwn}) {
		t.Errorf("post-flip device store = %v, want [RdOwn]", got)
	}
}

// TestBiasFlipPreservesPersistedData: host MStore to a device-biased page
// reclaims, then writes memory; nothing is lost.
func TestBiasFlipPreservesPersistedData(t *testing.T) {
	sys := NewSystem()
	a := Addr{HDM, 4}
	sys.SetBias(a, DeviceBias)
	sys.DevLStore(a, 5)
	sys.DevRFlush(a) // device-bias flush: internal, persists 5
	if sys.Mem(a) != 5 {
		t.Fatalf("setup: device flush did not persist")
	}
	sys.HostMStore(a, 6)
	if sys.Mem(a) != 6 {
		t.Errorf("host MStore lost across bias flip: %d", sys.Mem(a))
	}
	if sys.BiasOf(a) != HostBias {
		t.Errorf("bias not flipped")
	}
}

// TestSetBiasOnHMPanics: bias applies to HDM only.
func TestSetBiasOnHMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetBias on HM did not panic")
		}
	}()
	NewSystem().SetBias(Addr{HM, 0}, DeviceBias)
}

// TestTable1UnaffectedByBiasFlip: the Table 1 generator uses host-biased
// lines, so the flip machinery must not alter the regenerated mapping.
func TestTable1UnaffectedByBiasFlip(t *testing.T) {
	want := PaperTable1()
	for _, cell := range GenerateTable1() {
		if exp, ok := want[cell.CellKey()]; ok && cell.Available {
			if !reflect.DeepEqual(cell.Observed, exp) {
				t.Errorf("%s changed: %v vs %v", cell.CellKey(), cell.Observed, exp)
			}
		}
	}
}
