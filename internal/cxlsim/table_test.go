package cxlsim

import (
	"reflect"
	"testing"
)

// TestTable1MatchesPaper regenerates every Table 1 cell from the simulator
// and compares the observed transaction sets with the paper's.
func TestTable1MatchesPaper(t *testing.T) {
	want := PaperTable1()
	covered := map[string]bool{}
	for _, cell := range GenerateTable1() {
		key := cell.CellKey()
		exp, ok := want[key]
		if !ok {
			// Must be an unavailable row (??? in the paper).
			if cell.Available {
				t.Errorf("%s: simulator produced %v but the paper marks no such cell", key, cell.Observed)
			}
			continue
		}
		covered[key] = true
		if !cell.Available {
			t.Errorf("%s: primitive unexpectedly unavailable", key)
			continue
		}
		if !reflect.DeepEqual(cell.Observed, exp) {
			t.Errorf("%s: observed %v, paper says %v\n  per-state: %v", key, cell.Observed, exp, cell.ByState)
		}
	}
	for key := range want {
		if !covered[key] {
			t.Errorf("cell %s never generated", key)
		}
	}
}

// TestTable1UnavailableRows checks the ??? rows: host RStore/LFlush and
// device LFlush have no realizable flow.
func TestTable1UnavailableRows(t *testing.T) {
	unavailable := map[string]bool{}
	for _, cell := range GenerateTable1() {
		if !cell.Available {
			unavailable[cell.Node.String()+"/"+cell.Prim.String()] = true
		}
	}
	want := Unavailable()
	if len(unavailable) != len(want) {
		t.Errorf("unavailable rows = %v, want %v", unavailable, want)
	}
	for _, u := range want {
		if !unavailable[u[0]+"/"+u[1]] {
			t.Errorf("row %s/%s should be unavailable", u[0], u[1])
		}
	}
}

// TestTable1ManyToOne verifies the paper's observation that the mapping
// from CXL transactions to CXL0 primitives is many-to-one: the same
// transaction appears under several primitives.
func TestTable1ManyToOne(t *testing.T) {
	users := map[string]map[string]bool{}
	for _, cell := range GenerateTable1() {
		if !cell.Available {
			continue
		}
		for _, seq := range cell.Observed {
			if seq == "None" {
				continue
			}
			if users[seq] == nil {
				users[seq] = map[string]bool{}
			}
			users[seq][cell.CellKey()] = true
		}
	}
	multi := 0
	for _, cells := range users {
		if len(cells) > 1 {
			multi++
		}
	}
	if multi < 3 {
		t.Errorf("mapping not visibly many-to-one: only %d shared sequences", multi)
	}
}

// TestOperationNames spot-checks Table 1's operation column.
func TestOperationNames(t *testing.T) {
	cases := []struct {
		node Node
		prim Primitive
		want string
	}{
		{NodeHost, PMStore, "Non-Temporal Store + Fence"},
		{NodeHost, PRStore, "???"},
		{NodeHost, PLFlush, "???"},
		{NodeDevice, PLFlush, "???"},
		{NodeDevice, PRStore, "HM: ItoMWr / HDM: Caching Write"},
		{NodeDevice, PRFlush, "CLFlush"},
	}
	for _, c := range cases {
		if got := OperationName(c.node, c.prim); got != c.want {
			t.Errorf("OperationName(%v,%v) = %q, want %q", c.node, c.prim, got, c.want)
		}
	}
}
