package explore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cxl0/internal/core"
)

// Reg names a thread-local register. Registers are lost when the thread's
// machine crashes.
type Reg int

// InstrKind enumerates program instructions.
type InstrKind int

const (
	// ILoad reads Loc into Dst.
	ILoad InstrKind = iota
	// IStore writes Src to Loc using the store primitive in Op.
	IStore
	// IFlush performs the flush primitive in Op (OpLFlush or OpRFlush) on
	// Loc; it blocks until its precondition holds.
	IFlush
	// IGPF performs a Global Persistent Flush.
	IGPF
	// ICAS compare-and-swaps Loc from Old to New using the RMW kind in Op;
	// Dst receives 1 on success and 0 on failure. A failed CAS behaves as
	// a plain read (per §3.3 of the paper).
	ICAS
	// IFAA fetch-and-adds Delta to Loc using the RMW kind in Op; Dst
	// receives the previous value.
	IFAA
)

// Operand is either a constant or a register reference.
type Operand struct {
	IsReg bool
	Reg   Reg
	Const core.Val
}

// ConstOp returns a constant operand.
func ConstOp(v core.Val) Operand { return Operand{Const: v} }

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{IsReg: true, Reg: r} }

// Instr is one program instruction.
type Instr struct {
	Kind  InstrKind
	Op    core.Op // store kind, flush kind, or RMW kind
	Loc   core.LocID
	Src   Operand // IStore: value to store
	Dst   Reg     // ILoad, ICAS, IFAA: result register
	Old   core.Val
	New   core.Val
	Delta core.Val
}

// Thread is a straight-line program running on one machine.
type Thread struct {
	Machine core.MachineID
	Instrs  []Instr
	NumRegs int
}

// Program is a set of threads plus a crash budget.
type Program struct {
	Threads []Thread
	// MaxCrashes bounds the number of crash events injected during
	// exploration.
	MaxCrashes int
	// Crashable lists machines allowed to crash; nil means all machines.
	Crashable []core.MachineID
}

// Outcome is a terminal result of a program execution: the final register
// file of every thread, or nil for threads whose machine crashed.
type Outcome struct {
	Regs [][]core.Val
	Died []bool
}

// Key returns a canonical encoding of the outcome.
func (o Outcome) Key() string {
	var b []byte
	for i := range o.Regs {
		if o.Died[i] {
			b = append(b, 'X')
			continue
		}
		for _, v := range o.Regs[i] {
			b = binary.AppendVarint(b, int64(v))
		}
		b = append(b, '|')
	}
	return string(b)
}

func (o Outcome) String() string {
	s := ""
	for i := range o.Regs {
		if i > 0 {
			s += " "
		}
		if o.Died[i] {
			s += fmt.Sprintf("T%d:dead", i)
			continue
		}
		s += fmt.Sprintf("T%d:%v", i, o.Regs[i])
	}
	return s
}

// maxProgramConfigs caps the explored configuration count.
const maxProgramConfigs = 1 << 22

type progConfig struct {
	st      *core.State
	pc      []int
	regs    [][]core.Val
	dead    []bool // per thread
	crashes int
}

func (c *progConfig) key() string {
	var b []byte
	b = append(b, c.st.Key()...)
	b = append(b, '#')
	for i := range c.pc {
		b = binary.AppendVarint(b, int64(c.pc[i]))
		if c.dead[i] {
			b = append(b, 'X')
		} else {
			for _, v := range c.regs[i] {
				b = binary.AppendVarint(b, int64(v))
			}
		}
	}
	b = binary.AppendVarint(b, int64(c.crashes))
	return string(b)
}

func (c *progConfig) clone() *progConfig {
	n := &progConfig{st: c.st, crashes: c.crashes}
	n.pc = append([]int(nil), c.pc...)
	n.dead = append([]bool(nil), c.dead...)
	n.regs = make([][]core.Val, len(c.regs))
	for i := range c.regs {
		n.regs[i] = append([]core.Val(nil), c.regs[i]...)
	}
	return n
}

// Explore exhaustively enumerates all interleavings of p's threads with τ
// propagation and up to MaxCrashes crash events under variant v, starting
// from the initial state of t. It returns the set of distinct terminal
// outcomes, sorted by key for determinism.
func Explore(t *core.Topology, v core.Variant, p Program) []Outcome {
	init := &progConfig{st: core.NewState(t)}
	init.pc = make([]int, len(p.Threads))
	init.dead = make([]bool, len(p.Threads))
	init.regs = make([][]core.Val, len(p.Threads))
	for i, th := range p.Threads {
		init.regs[i] = make([]core.Val, th.NumRegs)
	}

	crashable := p.Crashable
	if crashable == nil {
		for m := 0; m < t.NumMachines(); m++ {
			crashable = append(crashable, core.MachineID(m))
		}
	}

	seen := map[string]bool{}
	outcomes := map[string]Outcome{}
	stack := []*progConfig{init}

	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := c.key()
		if seen[k] {
			continue
		}
		if len(seen) >= maxProgramConfigs {
			panic("explore: program state space exceeded safety cap")
		}
		seen[k] = true

		if done(p, c) {
			o := Outcome{Regs: c.regs, Died: c.dead}
			outcomes[o.Key()] = o
			continue
		}

		// Thread steps.
		for i := range p.Threads {
			if c.dead[i] || c.pc[i] >= len(p.Threads[i].Instrs) {
				continue
			}
			for _, n := range stepThread(p, c, i, v) {
				stack = append(stack, n)
			}
		}
		// τ propagation.
		for _, ts := range core.TauSteps(c.st) {
			n := c.clone()
			n.st = core.ApplyTau(c.st, ts)
			stack = append(stack, n)
		}
		// Crashes.
		if c.crashes < p.MaxCrashes {
			for _, m := range crashable {
				n := c.clone()
				n.st = core.Crash(c.st, m, v)
				n.crashes++
				for i, th := range p.Threads {
					if th.Machine == m {
						n.dead[i] = true
					}
				}
				stack = append(stack, n)
			}
		}
	}

	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Outcome, 0, len(keys))
	for _, k := range keys {
		out = append(out, outcomes[k])
	}
	return out
}

func done(p Program, c *progConfig) bool {
	for i := range p.Threads {
		if !c.dead[i] && c.pc[i] < len(p.Threads[i].Instrs) {
			return false
		}
	}
	return true
}

func (o Operand) eval(regs []core.Val) core.Val {
	if o.IsReg {
		return regs[o.Reg]
	}
	return o.Const
}

// loadValue returns the value a load by machine m of loc observes in st
// under variant v, or false when the load is blocked (LWB with the line in
// a peer's cache only).
func loadValue(st *core.State, m core.MachineID, loc core.LocID, v core.Variant) (core.Val, bool) {
	if v == core.LWB {
		if own := st.Cache(m, loc); own != core.Bot {
			return own, true
		}
		if !st.NoCacheHolds(loc) {
			return 0, false
		}
		return st.Mem(loc), true
	}
	return st.Readable(loc), true
}

func stepThread(p Program, c *progConfig, i int, v core.Variant) []*progConfig {
	ins := p.Threads[i].Instrs[c.pc[i]]
	advance := func(st *core.State, set func(regs []core.Val)) *progConfig {
		n := c.clone()
		n.st = st
		n.pc[i]++
		if set != nil {
			set(n.regs[i])
		}
		return n
	}

	switch ins.Kind {
	case ILoad:
		val, ok := loadValue(c.st, p.Threads[i].Machine, ins.Loc, v)
		if !ok {
			return nil
		}
		next := core.Apply(c.st, core.LoadL(p.Threads[i].Machine, ins.Loc, val), v)
		var out []*progConfig
		for _, st := range next {
			out = append(out, advance(st, func(r []core.Val) { r[ins.Dst] = val }))
		}
		return out
	case IStore:
		val := ins.Src.eval(c.regs[i])
		lbl := core.Label{Op: ins.Op, M: p.Threads[i].Machine, Loc: ins.Loc, Val: val}
		var out []*progConfig
		for _, st := range core.Apply(c.st, lbl, v) {
			out = append(out, advance(st, nil))
		}
		return out
	case IFlush:
		lbl := core.Label{Op: ins.Op, M: p.Threads[i].Machine, Loc: ins.Loc}
		var out []*progConfig
		for _, st := range core.Apply(c.st, lbl, v) {
			out = append(out, advance(st, nil))
		}
		return out
	case IGPF:
		var out []*progConfig
		for _, st := range core.Apply(c.st, core.GPFL(p.Threads[i].Machine), v) {
			out = append(out, advance(st, nil))
		}
		return out
	case ICAS:
		cur := c.st.Readable(ins.Loc)
		if cur == ins.Old {
			lbl := core.RMWL(ins.Op, p.Threads[i].Machine, ins.Loc, ins.Old, ins.New)
			var out []*progConfig
			for _, st := range core.Apply(c.st, lbl, core.Base) {
				out = append(out, advance(st, func(r []core.Val) { r[ins.Dst] = 1 }))
			}
			return out
		}
		// Failed CAS acts as a plain read: it pulls the line like a load.
		var out []*progConfig
		for _, st := range core.Apply(c.st, core.LoadL(p.Threads[i].Machine, ins.Loc, cur), core.Base) {
			out = append(out, advance(st, func(r []core.Val) { r[ins.Dst] = 0 }))
		}
		return out
	case IFAA:
		cur := c.st.Readable(ins.Loc)
		lbl := core.RMWL(ins.Op, p.Threads[i].Machine, ins.Loc, cur, cur+ins.Delta)
		var out []*progConfig
		for _, st := range core.Apply(c.st, lbl, core.Base) {
			out = append(out, advance(st, func(r []core.Val) { r[ins.Dst] = cur }))
		}
		return out
	}
	panic(fmt.Sprintf("explore: unknown instruction kind %d", ins.Kind))
}
