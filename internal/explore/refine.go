package explore

import (
	"cxl0/internal/core"
)

// Refinement comparison between model variants, playing the role FDR4
// plays in the paper (§3.5): the paper encodes the variants as CSP
// processes and asks the refinement checker for traces of CXL0 that the
// variants forbid, and for witnesses that the two variants are
// incomparable. Here we enumerate a focused trace family and compare
// admissibility under two variants directly.
//
// The family — one focus location; a store (any kind, value 1) optionally
// followed by a flush; an optional pre-crash observation; then one or two
// rounds of crash-then-load — is exactly the shape of the paper's
// variant-separating tests 10–12, and small enough (a few thousand traces)
// to enumerate exhaustively.

// Separator is a trace admissible under Allowed but not under Forbidden —
// a witness that Forbidden is strictly stricter than Allowed on this
// behaviour.
type Separator struct {
	Allowed   core.Variant
	Forbidden core.Variant
	Trace     []core.Label
}

// Pretty renders the witness in the paper's notation.
func (s *Separator) Pretty(topo *core.Topology) string {
	out := ""
	for i, l := range s.Trace {
		if i > 0 {
			out += "; "
		}
		out += l.Pretty(topo)
	}
	return out
}

// candidateTraces enumerates the focused trace family over the topology.
func candidateTraces(topo *core.Topology) [][]core.Label {
	var out [][]core.Label
	machines := topo.NumMachines()

	for x := 0; x < topo.NumLocs(); x++ {
		loc := core.LocID(x)
		for w := 0; w < machines; w++ {
			writer := core.MachineID(w)
			for _, storeOp := range []core.Op{core.OpLStore, core.OpRStore, core.OpMStore} {
				prefixBase := []core.Label{{Op: storeOp, M: writer, Loc: loc, Val: 1}}
				// Optional flush by the writer.
				prefixes := [][]core.Label{prefixBase}
				for _, flushOp := range []core.Op{core.OpLFlush, core.OpRFlush} {
					prefixes = append(prefixes,
						append(append([]core.Label{}, prefixBase...),
							core.Label{Op: flushOp, M: writer, Loc: loc}))
				}
				for _, prefix := range prefixes {
					// Optional pre-crash observation by any machine.
					obsOptions := [][]core.Label{nil}
					for r := 0; r < machines; r++ {
						obsOptions = append(obsOptions,
							[]core.Label{core.LoadL(core.MachineID(r), loc, 1)})
					}
					for _, obs := range obsOptions {
						head := append(append([]core.Label{}, prefix...), obs...)
						out = append(out, crashLoadRounds(topo, head, loc, 2)...)
					}
				}
			}
		}
	}
	return out
}

// crashLoadRounds extends head with up to `rounds` rounds of
// crash-then-load (every machine × load value × reader), returning every
// intermediate extension that ends in a load.
func crashLoadRounds(topo *core.Topology, head []core.Label, loc core.LocID, rounds int) [][]core.Label {
	if rounds == 0 {
		return nil
	}
	var out [][]core.Label
	for c := 0; c < topo.NumMachines(); c++ {
		afterCrash := append(append([]core.Label{}, head...), core.CrashL(core.MachineID(c)))
		for r := 0; r < topo.NumMachines(); r++ {
			for _, v := range []core.Val{0, 1} {
				t := append(append([]core.Label{}, afterCrash...),
					core.LoadL(core.MachineID(r), loc, v))
				out = append(out, t)
				out = append(out, crashLoadRounds(topo, t, loc, rounds-1)...)
			}
		}
	}
	return out
}

// FindSeparator enumerates the focused trace family and returns a
// minimized trace admissible under variant a but not under variant b, or
// nil when the family contains none.
func FindSeparator(topo *core.Topology, a, b core.Variant) *Separator {
	for _, trace := range candidateTraces(topo) {
		if Allows(topo, a, trace) && !Allows(topo, b, trace) {
			return &Separator{Allowed: a, Forbidden: b, Trace: Minimize(topo, a, b, trace)}
		}
	}
	return nil
}

// Minimize shrinks a separating trace by repeatedly dropping events while
// it still separates the two variants, yielding a human-readable witness.
func Minimize(topo *core.Topology, a, b core.Variant, trace []core.Label) []core.Label {
	separates := func(t []core.Label) bool {
		return len(t) > 0 && Allows(topo, a, t) && !Allows(topo, b, t)
	}
	out := append([]core.Label(nil), trace...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(out); i++ {
			cand := append(append([]core.Label(nil), out[:i]...), out[i+1:]...)
			if separates(cand) {
				out = cand
				changed = true
				break
			}
		}
	}
	return out
}

// Incomparable reports whether two variants are trace-incomparable over
// the given topology — each forbids some behaviour the other allows —
// returning the two witnesses. This mechanically rediscovers the paper's
// §3.5 result for PSN and LWB.
func Incomparable(topo *core.Topology, a, b core.Variant) (abWitness, baWitness *Separator) {
	return FindSeparator(topo, a, b), FindSeparator(topo, b, a)
}
