package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cxl0/internal/core"
)

// enumStates enumerates every invariant-respecting state of a two-machine
// topology (machine 0 owns x, machine 1 owns y) over values {0,1}.
func enumStates(t *testing.T) (*core.Topology, []*core.State) {
	t.Helper()
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	topo.AddLoc("x", m0)
	topo.AddLoc("y", m1)

	vals := []core.Val{core.Bot, 0, 1}
	var states []*core.State
	for _, c00 := range vals {
		for _, c01 := range vals {
			for _, c10 := range vals {
				for _, c11 := range vals {
					for _, mx := range []core.Val{0, 1} {
						for _, my := range []core.Val{0, 1} {
							s := core.NewState(topo)
							s.SetCache(0, 0, c00)
							s.SetCache(0, 1, c01)
							s.SetCache(1, 0, c10)
							s.SetCache(1, 1, c11)
							s.SetMem(0, mx)
							s.SetMem(1, my)
							if s.CheckInvariant() == nil {
								states = append(states, s)
							}
						}
					}
				}
			}
		}
	}
	return topo, states
}

type prop struct {
	name string
	// lhs ⊆ rhs must hold for every state, machine i and value v.
	lhs, rhs func(i core.MachineID, x core.LocID, v core.Val) []core.Label
	// onlyNonOwner restricts the check to machines that do not own x.
	onlyNonOwner bool
	// onlyOwner restricts the check to the owner of x.
	onlyOwner bool
}

// proposition1 encodes the eight items of Proposition 1 as reach-set
// inclusions: if γ --lhs--> γ' then γ --rhs--> γ'.
var proposition1 = []prop{
	{
		name: "1: RStore is stronger than LStore",
		lhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.RStoreL(i, x, v)}
		},
		rhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.LStoreL(i, x, v)}
		},
	},
	{
		name:      "2: RStore and LStore by the owner are equivalent",
		onlyOwner: true,
		lhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.LStoreL(i, x, v)}
		},
		rhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.RStoreL(i, x, v)}
		},
	},
	{
		name: "3: MStore is stronger than RStore",
		lhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.MStoreL(i, x, v)}
		},
		rhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.RStoreL(i, x, v)}
		},
	},
	{
		name: "4: RFlush is stronger than LFlush",
		lhs:  func(i core.MachineID, x core.LocID, v core.Val) []core.Label { return []core.Label{core.RFlushL(i, x)} },
		rhs:  func(i core.MachineID, x core.LocID, v core.Val) []core.Label { return []core.Label{core.LFlushL(i, x)} },
	},
	{
		name:         "5: LFlush after RStore by non-owner is redundant",
		onlyNonOwner: true,
		lhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.RStoreL(i, x, v)}
		},
		rhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.RStoreL(i, x, v), core.LFlushL(i, x)}
		},
	},
	{
		name: "6: RFlush after MStore is redundant",
		lhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.MStoreL(i, x, v)}
		},
		rhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.MStoreL(i, x, v), core.RFlushL(i, x)}
		},
	},
	{
		name:         "7: RStore by non-owner simulates LStore+LFlush",
		onlyNonOwner: true,
		lhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.LStoreL(i, x, v), core.LFlushL(i, x)}
		},
		rhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.RStoreL(i, x, v)}
		},
	},
	{
		name: "8: MStore simulates LStore+RFlush",
		lhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.LStoreL(i, x, v), core.RFlushL(i, x)}
		},
		rhs: func(i core.MachineID, x core.LocID, v core.Val) []core.Label {
			return []core.Label{core.MStoreL(i, x, v)}
		},
	},
}

// TestProposition1Exhaustive verifies all eight items of Proposition 1 on
// every invariant-respecting two-machine state over values {0,1}.
func TestProposition1Exhaustive(t *testing.T) {
	topo, states := enumStates(t)
	if len(states) < 100 {
		t.Fatalf("state enumeration suspiciously small: %d", len(states))
	}
	for _, p := range proposition1 {
		t.Run(p.name, func(t *testing.T) {
			checked := 0
			for _, s := range states {
				for i := 0; i < topo.NumMachines(); i++ {
					for x := 0; x < topo.NumLocs(); x++ {
						mi, lx := core.MachineID(i), core.LocID(x)
						if p.onlyNonOwner && topo.Owner(lx) == mi {
							continue
						}
						if p.onlyOwner && topo.Owner(lx) != mi {
							continue
						}
						for _, v := range []core.Val{0, 1} {
							lhs := ReachVia(s, core.Base, p.lhs(mi, lx, v)...)
							rhs := ReachVia(s, core.Base, p.rhs(mi, lx, v)...)
							if !Subset(lhs, rhs) {
								t.Fatalf("state %v, machine %d, loc %d, val %d: lhs ⊄ rhs", s, i, x, v)
							}
							checked++
						}
					}
				}
			}
			if checked == 0 {
				t.Fatal("no combinations checked")
			}
		})
	}
}

// randomState builds an invariant-respecting three-machine state from raw
// random bytes, for property-based checking on a larger topology than the
// exhaustive test covers.
func randomState(topo *core.Topology, raw []byte) *core.State {
	s := core.NewState(topo)
	at := 0
	next := func() byte {
		if len(raw) == 0 {
			return 0
		}
		b := raw[at%len(raw)]
		at++
		return b
	}
	for l := 0; l < topo.NumLocs(); l++ {
		// Pick a single cached value (or none) for this location, then
		// scatter it over a subset of caches so the invariant holds.
		v := core.Val(next() % 3) // 0,1,2
		mask := next()
		if mask%4 != 0 { // 75%: someone caches the line
			for m := 0; m < topo.NumMachines(); m++ {
				if mask&(1<<uint(m)) != 0 {
					s.SetCache(core.MachineID(m), core.LocID(l), v)
				}
			}
		}
		s.SetMem(core.LocID(l), core.Val(next()%3))
	}
	return s
}

// TestProposition1Randomized property-checks Proposition 1 on random
// three-machine states using testing/quick.
func TestProposition1Randomized(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.Volatile)
	m2 := topo.AddMachine("m3", core.NonVolatile)
	topo.AddLoc("x", m0)
	topo.AddLoc("y", m1)
	topo.AddLoc("z", m2)

	f := func(raw []byte, mRaw, lRaw uint8, vRaw uint8) bool {
		s := randomState(topo, raw)
		if s.CheckInvariant() != nil {
			return false // generator bug
		}
		i := core.MachineID(int(mRaw) % topo.NumMachines())
		x := core.LocID(int(lRaw) % topo.NumLocs())
		v := core.Val(vRaw % 3)
		for _, p := range proposition1 {
			if p.onlyNonOwner && topo.Owner(x) == i {
				continue
			}
			if p.onlyOwner && topo.Owner(x) != i {
				continue
			}
			lhs := ReachVia(s, core.Base, p.lhs(i, x, v)...)
			rhs := ReachVia(s, core.Base, p.rhs(i, x, v)...)
			if !Subset(lhs, rhs) {
				t.Logf("violated %q at state %v i=%d x=%d v=%d", p.name, s, i, x, v)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestVariantsRefineBase checks the paper's claim that "every trace allowed
// by the above variants is also allowed by CXL0" on randomized traces.
func TestVariantsRefineBase(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.Volatile)
	x := topo.AddLoc("x", m0)
	y := topo.AddLoc("y", m1)

	rng := rand.New(rand.NewSource(7))
	locs := []core.LocID{x, y}

	randTrace := func(rng *rand.Rand, n int) []core.Label {
		trace := make([]core.Label, 0, n)
		for i := 0; i < n; i++ {
			m := core.MachineID(rng.Intn(2))
			l := locs[rng.Intn(2)]
			v := core.Val(rng.Intn(2))
			switch rng.Intn(7) {
			case 0:
				trace = append(trace, core.LoadL(m, l, v))
			case 1:
				trace = append(trace, core.LStoreL(m, l, v))
			case 2:
				trace = append(trace, core.RStoreL(m, l, v))
			case 3:
				trace = append(trace, core.MStoreL(m, l, v))
			case 4:
				trace = append(trace, core.LFlushL(m, l))
			case 5:
				trace = append(trace, core.RFlushL(m, l))
			case 6:
				trace = append(trace, core.CrashL(m))
			}
		}
		return trace
	}

	for iter := 0; iter < 500; iter++ {
		trace := randTrace(rng, 2+rng.Intn(5))
		base := Allows(topo, core.Base, trace)
		for _, v := range []core.Variant{core.PSN, core.LWB} {
			if Allows(topo, v, trace) && !base {
				t.Fatalf("trace allowed under %v but not under Base: %v", v, trace)
			}
		}
	}
}
