package explore_test

import (
	"fmt"

	"cxl0/internal/core"
	"cxl0/internal/explore"
)

// ExampleAllows checks two of the paper's Figure 3 litmus tests: an
// unflushed RStore may be lost across the owner's crash, while an MStore
// may not.
func ExampleAllows() {
	topo := core.NewTopology()
	m1 := topo.AddMachine("machine1", core.NonVolatile)
	x := topo.AddLoc("x1", m1)

	lossy := []core.Label{core.RStoreL(m1, x, 1), core.CrashL(m1), core.LoadL(m1, x, 0)}
	safe := []core.Label{core.MStoreL(m1, x, 1), core.CrashL(m1), core.LoadL(m1, x, 0)}

	fmt.Println("RStore lost across crash allowed:", explore.Allows(topo, core.Base, lossy))
	fmt.Println("MStore lost across crash allowed:", explore.Allows(topo, core.Base, safe))

	// Output:
	// RStore lost across crash allowed: true
	// MStore lost across crash allowed: false
}

// ExampleExplore enumerates all outcomes of the paper's §6 motivating
// program — `x=1; r1=x; r2=x` on machine 1 with x owned by a crashable
// machine 2 — and reports whether the two reads can ever disagree.
func ExampleExplore() {
	topo := core.NewTopology()
	m1 := topo.AddMachine("M1", core.NonVolatile)
	m2 := topo.AddMachine("M2", core.NonVolatile)
	x := topo.AddLoc("x", m2)

	prog := explore.Program{
		Threads: []explore.Thread{{
			Machine: m1,
			NumRegs: 2,
			Instrs: []explore.Instr{
				{Kind: explore.IStore, Op: core.OpLStore, Loc: x, Src: explore.ConstOp(1)},
				{Kind: explore.ILoad, Loc: x, Dst: 0},
				{Kind: explore.ILoad, Loc: x, Dst: 1},
			},
		}},
		MaxCrashes: 1,
		Crashable:  []core.MachineID{m2},
	}

	disagree := false
	for _, o := range explore.Explore(topo, core.Base, prog) {
		if !o.Died[0] && o.Regs[0][0] != o.Regs[0][1] {
			disagree = true
		}
	}
	fmt.Println("assert(r1==r2) can fail:", disagree)

	// Output:
	// assert(r1==r2) can fail: true
}
