package explore

import (
	"testing"

	"cxl0/internal/core"
)

func TestAllowsBasicPersistence(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	x := topo.AddLoc("x", m0)

	// An un-flushed LStore may be lost across a crash...
	lost := []core.Label{core.LStoreL(m0, x, 1), core.CrashL(m0), core.LoadL(m0, x, 0)}
	if !Allows(topo, core.Base, lost) {
		t.Errorf("un-flushed LStore should be losable across a crash")
	}
	// ...but may also survive if τ drained it in time.
	kept := []core.Label{core.LStoreL(m0, x, 1), core.CrashL(m0), core.LoadL(m0, x, 1)}
	if !Allows(topo, core.Base, kept) {
		t.Errorf("LStore should be able to survive via τ drain before the crash")
	}
	// An MStore can never be lost.
	mst := []core.Label{core.MStoreL(m0, x, 1), core.CrashL(m0), core.LoadL(m0, x, 0)}
	if Allows(topo, core.Base, mst) {
		t.Errorf("MStore lost across a crash")
	}
}

func TestAllowsGPFDrainsEverything(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	x := topo.AddLoc("x", m0)
	y := topo.AddLoc("y", m1)

	trace := []core.Label{
		core.LStoreL(m0, x, 1),
		core.LStoreL(m0, y, 2),
		core.GPFL(m0),
		core.CrashL(m0), core.CrashL(m1),
		core.LoadL(m0, x, 1),
		core.LoadL(m0, y, 2),
	}
	if !Allows(topo, core.Base, trace) {
		t.Errorf("GPF-drained values did not persist")
	}
	lossy := append(append([]core.Label{}, trace[:4]...), core.LoadL(m0, x, 0))
	if Allows(topo, core.Base, lossy) {
		t.Errorf("value lost despite GPF before crash")
	}
}

func TestAllowsRMWTrace(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	x := topo.AddLoc("x", m0)
	_ = m1

	trace := []core.Label{
		core.RMWL(core.OpLRMW, m1, x, 0, 1), // CAS 0->1 by non-owner
		core.RMWL(core.OpMRMW, m0, x, 1, 2), // M-RMW 1->2 by owner
		core.CrashL(m0),
		core.LoadL(m1, x, 2),
	}
	if !Allows(topo, core.Base, trace) {
		t.Errorf("M-RMW result should persist across owner crash")
	}
	bad := append(append([]core.Label{}, trace[:3]...), core.LoadL(m1, x, 1))
	if Allows(topo, core.Base, bad) {
		t.Errorf("stale value readable after persistent M-RMW")
	}
}

// motivatingTopo returns the §6 motivating example topology: the program
// runs on M1, x lives on M2 (non-volatile).
func motivatingTopo() (*core.Topology, core.MachineID, core.MachineID, core.LocID) {
	topo := core.NewTopology()
	m1 := topo.AddMachine("M1", core.NonVolatile)
	m2 := topo.AddMachine("M2", core.NonVolatile)
	x := topo.AddLoc("x", m2)
	return topo, m1, m2, x
}

// TestMotivatingExample reproduces the §6 litmus test: under CXL0 a remote
// machine's crash can make two successive reads of the same location
// disagree (x=1; r1=x; r2=x; assert r1==r2 fails), which is impossible in
// the full-system crash model.
func TestMotivatingExample(t *testing.T) {
	topo, m1, m2, x := motivatingTopo()

	prog := Program{
		Threads: []Thread{{
			Machine: m1,
			NumRegs: 2,
			Instrs: []Instr{
				{Kind: IStore, Op: core.OpLStore, Loc: x, Src: ConstOp(1)},
				{Kind: ILoad, Loc: x, Dst: 0},
				{Kind: ILoad, Loc: x, Dst: 1},
			},
		}},
		MaxCrashes: 1,
		Crashable:  []core.MachineID{m2},
	}
	outcomes := Explore(topo, core.Base, prog)

	var sawViolation, sawEqual bool
	for _, o := range outcomes {
		if o.Died[0] {
			continue
		}
		r1, r2 := o.Regs[0][0], o.Regs[0][1]
		if r1 != r2 {
			sawViolation = true
			if r1 != 1 || r2 != 0 {
				t.Errorf("unexpected violating outcome r1=%d r2=%d", r1, r2)
			}
		} else {
			sawEqual = true
		}
	}
	if !sawViolation {
		t.Errorf("assert(r1==r2) never violated; the motivating anomaly is missing")
	}
	if !sawEqual {
		t.Errorf("no non-violating outcome found")
	}
}

// TestMotivatingExampleRepaired shows the two repairs the paper discusses:
// an MStore, or an RFlush between the store and the reads, restore the
// assertion.
func TestMotivatingExampleRepaired(t *testing.T) {
	topo, m1, m2, x := motivatingTopo()

	repairs := map[string][]Instr{
		"MStore": {
			{Kind: IStore, Op: core.OpMStore, Loc: x, Src: ConstOp(1)},
			{Kind: ILoad, Loc: x, Dst: 0},
			{Kind: ILoad, Loc: x, Dst: 1},
		},
		"RFlush": {
			{Kind: IStore, Op: core.OpLStore, Loc: x, Src: ConstOp(1)},
			{Kind: IFlush, Op: core.OpRFlush, Loc: x},
			{Kind: ILoad, Loc: x, Dst: 0},
			{Kind: ILoad, Loc: x, Dst: 1},
		},
	}
	for name, instrs := range repairs {
		t.Run(name, func(t *testing.T) {
			prog := Program{
				Threads:    []Thread{{Machine: m1, NumRegs: 2, Instrs: instrs}},
				MaxCrashes: 1,
				Crashable:  []core.MachineID{m2},
			}
			for _, o := range Explore(topo, core.Base, prog) {
				if o.Died[0] {
					continue
				}
				if o.Regs[0][0] != o.Regs[0][1] {
					t.Errorf("assertion violated despite %s repair: %v", name, o)
				}
			}
		})
	}
}

// TestMotivatingExampleLFlushInsufficient confirms the paper's remark that
// an LFlush (or any flush that only evicts from M1's cache) does NOT repair
// the assertion: the value can still be lost inside M2.
func TestMotivatingExampleLFlushInsufficient(t *testing.T) {
	topo, m1, m2, x := motivatingTopo()
	prog := Program{
		Threads: []Thread{{
			Machine: m1,
			NumRegs: 2,
			Instrs: []Instr{
				{Kind: IStore, Op: core.OpLStore, Loc: x, Src: ConstOp(1)},
				{Kind: IFlush, Op: core.OpLFlush, Loc: x},
				{Kind: ILoad, Loc: x, Dst: 0},
				{Kind: ILoad, Loc: x, Dst: 1},
			},
		}},
		MaxCrashes: 1,
		Crashable:  []core.MachineID{m2},
	}
	violated := false
	for _, o := range Explore(topo, core.Base, prog) {
		if !o.Died[0] && o.Regs[0][0] != o.Regs[0][1] {
			violated = true
		}
	}
	if !violated {
		t.Errorf("LFlush unexpectedly repaired the motivating example")
	}
}

// TestExploreConcurrentCAS checks mutual exclusion of CAS across machines:
// two threads CAS x from 0 to distinct values; exactly one must win.
func TestExploreConcurrentCAS(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	x := topo.AddLoc("x", m0)

	prog := Program{
		Threads: []Thread{
			{Machine: m0, NumRegs: 1, Instrs: []Instr{{Kind: ICAS, Op: core.OpLRMW, Loc: x, Old: 0, New: 1, Dst: 0}}},
			{Machine: m1, NumRegs: 1, Instrs: []Instr{{Kind: ICAS, Op: core.OpLRMW, Loc: x, Old: 0, New: 2, Dst: 0}}},
		},
	}
	outcomes := Explore(topo, core.Base, prog)
	if len(outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	for _, o := range outcomes {
		wins := o.Regs[0][0] + o.Regs[1][0]
		if wins != 1 {
			t.Errorf("CAS mutual exclusion violated: %v", o)
		}
	}
}

// TestExploreFAA checks that two concurrent FAAs always sum.
func TestExploreFAA(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	x := topo.AddLoc("x", m0)

	prog := Program{
		Threads: []Thread{
			{Machine: m0, NumRegs: 2, Instrs: []Instr{
				{Kind: IFAA, Op: core.OpLRMW, Loc: x, Delta: 1, Dst: 0},
				{Kind: ILoad, Loc: x, Dst: 1},
			}},
			{Machine: m1, NumRegs: 1, Instrs: []Instr{
				{Kind: IFAA, Op: core.OpLRMW, Loc: x, Delta: 1, Dst: 0},
			}},
		},
	}
	for _, o := range Explore(topo, core.Base, prog) {
		// Previous values must be {0,1} in some order.
		prevs := []core.Val{o.Regs[0][0], o.Regs[1][0]}
		if !((prevs[0] == 0 && prevs[1] == 1) || (prevs[0] == 1 && prevs[1] == 0)) {
			t.Errorf("FAA previous values wrong: %v", o)
		}
		if o.Regs[0][1] < 1 || o.Regs[0][1] > 2 {
			t.Errorf("final read out of range: %v", o)
		}
	}
}

// TestExploreSequentiallyConsistentWithoutCrashes checks the paper's remark
// that without crashes CXL0 is sequentially consistent: a same-machine
// store-then-load always observes the stored value.
func TestExploreSequentiallyConsistentWithoutCrashes(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	x := topo.AddLoc("x", m1)

	for _, storeOp := range []core.Op{core.OpLStore, core.OpRStore, core.OpMStore} {
		prog := Program{
			Threads: []Thread{{
				Machine: m0,
				NumRegs: 1,
				Instrs: []Instr{
					{Kind: IStore, Op: storeOp, Loc: x, Src: ConstOp(1)},
					{Kind: ILoad, Loc: x, Dst: 0},
				},
			}},
		}
		for _, o := range Explore(topo, core.Base, prog) {
			if o.Regs[0][0] != 1 {
				t.Errorf("%v: read-own-write violated without crashes: %v", storeOp, o)
			}
		}
	}
}

// TestExploreMessagePassingNeedsNoFence checks load-buffering-style message
// passing: with serialized execution order (the model's premise), a reader
// that observes the flag also observes the payload.
func TestExploreMessagePassing(t *testing.T) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	data := topo.AddLoc("data", m0)
	flag := topo.AddLoc("flag", m0)

	prog := Program{
		Threads: []Thread{
			{Machine: m0, Instrs: []Instr{
				{Kind: IStore, Op: core.OpLStore, Loc: data, Src: ConstOp(42)},
				{Kind: IStore, Op: core.OpLStore, Loc: flag, Src: ConstOp(1)},
			}},
			{Machine: m1, NumRegs: 2, Instrs: []Instr{
				{Kind: ILoad, Loc: flag, Dst: 0},
				{Kind: ILoad, Loc: data, Dst: 1},
			}},
		},
	}
	for _, o := range Explore(topo, core.Base, prog) {
		if o.Regs[1][0] == 1 && o.Regs[1][1] != 42 {
			t.Errorf("observed flag without payload: %v", o)
		}
	}
}
