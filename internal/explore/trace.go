// Package explore provides exhaustive exploration of the CXL0 labeled
// transition system: trace admissibility with arbitrary τ interleavings
// (used to check the paper's litmus tests), τ-closed reachability sets (used
// to verify Proposition 1), and an interleaving explorer for small
// concurrent programs with bounded crash injection.
package explore

import (
	"cxl0/internal/core"
)

// maxTraceStates caps memoized configurations during trace checking as a
// safety net against degenerate inputs; litmus-sized traces stay well below
// it.
const maxTraceStates = 1 << 22

// Allows reports whether the labeled trace is executable under variant v
// from the initial state of topology t, with any number of silent τ
// propagation steps interleaved anywhere (the paper's γ --α1...αn--> γ'
// notation). Flush labels act as blocking preconditions: they become
// enabled once τ steps have drained the relevant cache copies.
func Allows(t *core.Topology, v core.Variant, trace []core.Label) bool {
	return AllowsFrom(core.NewState(t), v, trace)
}

// AllowsFrom is Allows starting from an arbitrary state.
func AllowsFrom(s0 *core.State, v core.Variant, trace []core.Label) bool {
	type cfg struct {
		key string
		idx int
	}
	seen := map[cfg]bool{}
	type node struct {
		st  *core.State
		idx int
	}
	stack := []node{{s0, 0}}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.idx == len(trace) {
			return true
		}
		c := cfg{n.st.Key(), n.idx}
		if seen[c] {
			continue
		}
		if len(seen) >= maxTraceStates {
			panic("explore: trace state space exceeded safety cap")
		}
		seen[c] = true
		for _, next := range core.Apply(n.st, trace[n.idx], v) {
			stack = append(stack, node{next, n.idx + 1})
		}
		for _, next := range core.TauSuccessors(n.st) {
			stack = append(stack, node{next, n.idx})
		}
	}
	return false
}

// TauClosure returns all states reachable from the given states by any
// number of τ steps (including zero), keyed by State.Key.
func TauClosure(states ...*core.State) map[string]*core.State {
	out := map[string]*core.State{}
	var stack []*core.State
	for _, s := range states {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := s.Key()
		if _, ok := out[k]; ok {
			continue
		}
		out[k] = s
		stack = append(stack, core.TauSuccessors(s)...)
	}
	return out
}

// ReachVia returns the τ-closed set of states reachable from s by executing
// the labels in order, with τ steps allowed before, between, and after them.
// This realizes the γ --α1...αn--> γ' relation used by Proposition 1.
func ReachVia(s *core.State, v core.Variant, labels ...core.Label) map[string]*core.State {
	cur := TauClosure(s)
	for _, l := range labels {
		next := map[string]*core.State{}
		for _, st := range cur {
			for _, n := range core.Apply(st, l, v) {
				next[n.Key()] = n
			}
		}
		var flat []*core.State
		for _, st := range next {
			flat = append(flat, st)
		}
		cur = TauClosure(flat...)
	}
	return cur
}

// Subset reports whether every state key in a also appears in b.
func Subset(a, b map[string]*core.State) bool {
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}
