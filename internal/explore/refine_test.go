package explore

import (
	"testing"

	"cxl0/internal/core"
)

// refineTopo is the §3.5 comparison topology: machine1 NVM, machine2
// volatile, one location on each.
func refineTopo() *core.Topology {
	topo := core.NewTopology()
	m1 := topo.AddMachine("m1", core.NonVolatile)
	m2 := topo.AddMachine("m2", core.Volatile)
	topo.AddLoc("x", m1)
	topo.AddLoc("y", m2)
	return topo
}

// TestVariantsRefineBaseNoSeparatorExists: the paper states every variant
// trace is also a base trace, so no trace can be allowed by a variant and
// forbidden by base.
func TestVariantsRefineBaseNoSeparatorExists(t *testing.T) {
	topo := refineTopo()
	for _, v := range []core.Variant{core.PSN, core.LWB} {
		if sep := FindSeparator(topo, v, core.Base); sep != nil {
			t.Errorf("found a %v trace forbidden by base: %v", v, sep.Trace)
		}
	}
}

// TestBaseStrictlyWeakerThanVariants: the search must find traces of base
// CXL0 that each variant forbids (the paper's FDR4 finding).
func TestBaseStrictlyWeakerThanVariants(t *testing.T) {
	topo := refineTopo()
	for _, v := range []core.Variant{core.PSN, core.LWB} {
		sep := FindSeparator(topo, core.Base, v)
		if sep == nil {
			t.Fatalf("no base trace forbidden by %v found", v)
		}
		// Sanity: the minimized witness still separates.
		if !Allows(topo, core.Base, sep.Trace) || Allows(topo, v, sep.Trace) {
			t.Errorf("witness does not separate after minimization: %v", sep.Trace)
		}
		t.Logf("base-but-not-%v witness: %v", v, sep.Trace)
	}
}

// TestPSNAndLWBIncomparable mechanically rediscovers the paper's §3.5
// incomparability result: each variant allows a trace the other forbids.
func TestPSNAndLWBIncomparable(t *testing.T) {
	topo := refineTopo()
	ab, ba := Incomparable(topo, core.PSN, core.LWB)
	if ab == nil {
		t.Fatal("no PSN-but-not-LWB witness found")
	}
	if ba == nil {
		t.Fatal("no LWB-but-not-PSN witness found")
	}
	t.Logf("PSN-not-LWB: %s", ab.Pretty(topo))
	t.Logf("LWB-not-PSN: %s", ba.Pretty(topo))
	// Verify both witnesses.
	if !Allows(topo, core.PSN, ab.Trace) || Allows(topo, core.LWB, ab.Trace) {
		t.Errorf("PSN witness invalid")
	}
	if !Allows(topo, core.LWB, ba.Trace) || Allows(topo, core.PSN, ba.Trace) {
		t.Errorf("LWB witness invalid")
	}
}

// TestMinimizePreservesSeparation: minimization never loses the property
// and never grows the trace.
func TestMinimizePreservesSeparation(t *testing.T) {
	topo := refineTopo()
	sep := FindSeparator(topo, core.Base, core.LWB)
	if sep == nil {
		t.Fatal("no base/LWB separator found")
	}
	if len(sep.Trace) > 6 {
		t.Errorf("minimized witness suspiciously long: %v", sep.Trace)
	}
	if !Allows(topo, core.Base, sep.Trace) || Allows(topo, core.LWB, sep.Trace) {
		t.Errorf("minimized witness does not separate: %v", sep.Trace)
	}
}
