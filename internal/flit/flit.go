// Package flit implements the paper's §6: the FliT transformation adapted
// to CXL0 (Algorithm 2), which equips any linearizable object with durable
// linearizability in the partial-crash model, plus the baselines the paper
// discusses.
//
// The transformation wraps every memory access of an already-linearizable
// object:
//
//	shared_store(x,v):  flit_counter(x)++ ; LStore(x,v) ; RFlush(x) ; flit_counter(x)--
//	shared_load(x):     v := Load(x) ; if flit_counter(x) > 0 { RFlush(x) } ; return v
//	private_store(x,v): LStore(x,v) ; RFlush(x)
//	private_load(x):    Load(x)
//	completeOp():       (empty under CXL0's in-order, synchronous flushes)
//
// The per-variable FliT counter tells readers that a store may be globally
// visible but not yet persistent; a reader that observes a positive counter
// helps by flushing before its own operation completes, which is exactly
// what durable linearizability requires.
//
// Four strategies are provided:
//
//	CXL0FliT      — Algorithm 2 as above (correct).
//	CXL0FliTOpt   — Algorithm 2 with the §6.1 optimisation: RFlush is
//	                replaced by LFlush for locations owned by the issuing
//	                machine, where the owner's local flush already forces
//	                propagation to local persistent memory (correct).
//	MStoreAll     — every store is an MStore (correct, even without
//	                inter-host coherence, but pays the full memory round
//	                trip on every write).
//	FlushOnRead   — the Izraelevitz-style construction FliT improves on:
//	                every shared access, including loads, is followed by a
//	                synchronous RFlush (correct, but reads pay the full
//	                persistence round trip that FliT's counter avoids).
//	OriginalFliT  — the unmodified x86 FliT (Algorithm 1), whose Flush is a
//	                local flush: INCORRECT under partial crashes, because a
//	                flushed value may still sit in the remote owner's
//	                volatile cache when the owner crashes. Provided to
//	                reproduce the paper's motivating failure.
//	NoPersist     — plain loads and stores with no flushing (incorrect;
//	                the untransformed legacy object).
//
// As in the original FliT library, counters live in a fixed hashed counter
// table (one table per heap); distinct variables may share a counter, which
// only ever causes spurious helping flushes, never missed ones.
//
// # Counter crash-robustness (a partial-crash subtlety)
//
// Under the partial-crash model the counter itself needs care that the
// full-system-crash setting never did: a counter INCREMENT performed with a
// plain cached RMW lives in the incrementing machine's cache, so a crash
// can roll the counter back to zero while the in-flight data value is still
// visible in another machine's cache (loads replicate values across
// caches). A reader then sees the new value with a zero counter, skips the
// helping flush, and completes — and a second crash can destroy the value
// it observed, breaking durable linearizability. Our crash-injection
// harness (package crashtest) finds this interleaving mechanically.
//
// The sound strategies therefore persist counter increments (M-RMW): an
// increment can never roll back, so a zero counter really does mean "all
// stores to this counter's variables are persistent". Decrements stay
// cached — losing a decrement only leaves the counter too high, which
// causes spurious helping flushes but never unsound ones. Decrements use a
// CAS loop that skips when the counter already reads zero, so a rolled-back
// increment (possible only under the unsound OriginalFliT) never drives
// the counter negative.
package flit

import (
	"fmt"

	"cxl0/internal/core"
	"cxl0/internal/memsim"
)

// Strategy selects a persistence transformation.
type Strategy int

const (
	// CXL0FliT is Algorithm 2 of the paper.
	CXL0FliT Strategy = iota
	// CXL0FliTOpt is Algorithm 2 with owner-local LFlush substitution.
	CXL0FliTOpt
	// MStoreAll replaces every store with MStore.
	MStoreAll
	// FlushOnRead flushes after every shared access, loads included (the
	// Izraelevitz-style general construction).
	FlushOnRead
	// OriginalFliT is the x86 FliT (Algorithm 1) ported verbatim — unsound
	// under partial crashes.
	OriginalFliT
	// NoPersist performs no persistence work at all.
	NoPersist
)

var strategyNames = [...]string{"cxl0-flit", "cxl0-flit-opt", "mstore-all", "flush-on-read", "original-flit", "no-persist"}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists all persistence strategies.
var Strategies = []Strategy{CXL0FliT, CXL0FliTOpt, MStoreAll, FlushOnRead, OriginalFliT, NoPersist}

// Correct reports whether the strategy guarantees durable linearizability
// under CXL0's partial-crash model.
func (s Strategy) Correct() bool {
	switch s {
	case CXL0FliT, CXL0FliTOpt, MStoreAll, FlushOnRead:
		return true
	}
	return false
}

// Var is a persistent variable: a data location paired with its FliT
// counter location (an entry of the heap's hashed counter table). Counter
// and data live on the same machine.
type Var struct {
	Data core.LocID
	Ctr  core.LocID
}

// ctrTableSize is the number of entries in a heap's counter table. As in
// the FliT library, the table is small enough to stay cached.
const ctrTableSize = 128

// Heap allocates persistent variables on one machine of a cluster and owns
// that machine's FliT counter table.
type Heap struct {
	c    *memsim.Cluster
	m    core.MachineID
	ctrs core.LocID // base of the counter table
	ctrN int        // table entries
}

// NewHeap returns an allocator of Vars on machine m, reserving the
// machine's counter table at the default size.
func NewHeap(c *memsim.Cluster, m core.MachineID) (*Heap, error) {
	return NewHeapSized(c, m, ctrTableSize)
}

// NewHeapSized is NewHeap with an explicit counter-table size. Smaller
// tables save memory but alias more variables onto each counter, which
// makes readers perform spurious helping flushes while unrelated stores
// are in flight (see the counter-table ablation in package flitbench).
func NewHeapSized(c *memsim.Cluster, m core.MachineID, tableSize int) (*Heap, error) {
	if tableSize <= 0 {
		tableSize = ctrTableSize
	}
	base, err := c.Alloc(m, tableSize)
	if err != nil {
		return nil, err
	}
	return &Heap{c: c, m: m, ctrs: base, ctrN: tableSize}, nil
}

// ctrOf hashes a data location into the counter table.
func (h *Heap) ctrOf(data core.LocID) core.LocID {
	x := uint64(data) * 0x9e3779b97f4a7c15
	return h.ctrs + core.LocID(x%uint64(h.ctrN))
}

// Machine returns the machine this heap allocates on.
func (h *Heap) Machine() core.MachineID { return h.m }

// Cluster returns the backing cluster.
func (h *Heap) Cluster() *memsim.Cluster { return h.c }

// AllocVar reserves one persistent variable.
func (h *Heap) AllocVar() (Var, error) {
	base, err := h.c.Alloc(h.m, 1)
	if err != nil {
		return Var{}, err
	}
	return Var{Data: base, Ctr: h.ctrOf(base)}, nil
}

// AllocNode reserves nfields consecutive persistent variables in one
// atomic allocation and returns the base location; field i is
// h.FieldVar(base, i). Data structures use this for multi-field nodes so
// that field layout survives concurrent allocation.
func (h *Heap) AllocNode(nfields int) (core.LocID, error) {
	return h.c.Alloc(h.m, nfields)
}

// FieldVar returns the i-th persistent variable of a node allocated with
// AllocNode.
func (h *Heap) FieldVar(base core.LocID, i int) Var {
	d := base + core.LocID(i)
	return Var{Data: d, Ctr: h.ctrOf(d)}
}

// AllocVars reserves n persistent variables.
func (h *Heap) AllocVars(n int) ([]Var, error) {
	out := make([]Var, n)
	for i := range out {
		v, err := h.AllocVar()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Session binds a strategy to an executing thread; data-structure
// operations run inside a session. Sessions are cheap and not safe for
// concurrent use (use one per goroutine, like a thread).
type Session struct {
	S Strategy
	T *memsim.Thread
}

// NewSession returns a session applying strategy s on thread t.
func NewSession(s Strategy, t *memsim.Thread) *Session { return &Session{S: s, T: t} }

// flush performs the strategy's flush for x (the pflag-tagged path).
func (se *Session) flush(x Var) error {
	switch se.S {
	case CXL0FliT, FlushOnRead:
		return se.T.RFlush(x.Data)
	case CXL0FliTOpt:
		if se.T.Local(x.Data) {
			return se.T.LFlush(x.Data)
		}
		return se.T.RFlush(x.Data)
	case OriginalFliT:
		// Algorithm 1's Flush reaches only the next hierarchy level — not
		// necessarily persistence. This is the bug under partial crashes.
		return se.T.LFlush(x.Data)
	}
	return nil
}

// ownerEpoch returns the crash epoch of x's owner.
func (se *Session) ownerEpoch(x Var) uint64 {
	c := se.T.Cluster()
	return c.Epoch(c.Owner(x.Data))
}

// Load is shared_load with pflag set.
//
// For the sound strategies the load is guarded by the owner's crash epoch:
// if the owner crashed between the data read and the helping flush, the
// value the reader observed (and its own cached copy, under poisoning) may
// have been destroyed, so the read restarts. Owner-local reads need no
// guard — only the reader's own crash can destroy its copy, and that kills
// the thread itself.
func (se *Session) Load(x Var) (core.Val, error) {
	switch se.S {
	case MStoreAll, NoPersist:
		return se.T.Load(x.Data)
	case OriginalFliT:
		v, err := se.T.Load(x.Data)
		if err != nil {
			return 0, err
		}
		ctr, err := se.T.Load(x.Ctr)
		if err != nil {
			return 0, err
		}
		if ctr > 0 {
			if err := se.flush(x); err != nil {
				return 0, err
			}
		}
		return v, nil
	}
	local := se.T.Local(x.Data)
	for {
		epoch := se.ownerEpoch(x)
		v, err := se.T.Load(x.Data)
		if err != nil {
			return 0, err
		}
		helped := se.S == FlushOnRead
		if !helped {
			ctr, err := se.T.Load(x.Ctr)
			if err != nil {
				return 0, err
			}
			helped = ctr > 0
		}
		if helped {
			if err := se.flush(x); err != nil {
				return 0, err
			}
		}
		if local || se.ownerEpoch(x) == epoch {
			return v, nil
		}
		// The owner crashed mid-read; retry against the recovered state.
	}
}

// ctrInc increments x's FliT counter. For remote counters the sound
// strategies persist the increment (see the package comment on counter
// crash-robustness). An owner-local increment may stay cached: the only
// crash that can roll it back is the owner's own, which readers already
// detect through their crash-epoch guard (and which kills the incrementing
// thread).
func (se *Session) ctrInc(x Var) error {
	kind := core.OpMRMW
	if se.S == OriginalFliT || se.T.Local(x.Ctr) {
		kind = core.OpLRMW
	}
	_, err := se.T.FAA(kind, x.Ctr, 1)
	return err
}

// ctrDec decrements x's FliT counter, skipping when a crash already rolled
// the increment back (reachable only under OriginalFliT).
func (se *Session) ctrDec(x Var) error {
	for {
		v, err := se.T.Load(x.Ctr)
		if err != nil {
			return err
		}
		if v <= 0 {
			return nil
		}
		ok, err := se.T.CAS(core.OpLRMW, x.Ctr, v, v-1)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
}

// storeAndFlush performs the crash-epoch-guarded LStore + flush sequence
// used for PRIVATE stores: if the owner of x crashed during the window, the
// value may have been destroyed while sitting in the owner's cache (the
// flush then completed vacuously), so the store is re-issued. The retry is
// sound only because private data has no concurrent observers — for shared
// stores a retry can double-apply an already-observed write, which is why
// shared remote stores use MStore instead. Owner-local stores need no
// guard.
func (se *Session) storeAndFlush(x Var, v core.Val) error {
	local := se.T.Local(x.Data)
	for {
		epoch := se.ownerEpoch(x)
		if err := se.T.LStore(x.Data, v); err != nil {
			return err
		}
		if err := se.flush(x); err != nil {
			return err
		}
		if local || se.ownerEpoch(x) == epoch {
			return nil
		}
	}
}

// Store is shared_store with pflag set.
//
// Remote shared stores use MStore under the sound strategies: the
// store-then-flush sequence has a window in which the owner's crash can
// destroy the value after readers observed (and possibly helped persist)
// it, and a blind retry then applies the write a second time — the
// crash-injection harness exhibits both the loss and the double-apply as
// durable-linearizability violations. MStore has no such window. The cheap
// cached path survives for owner-local data, where the only crash that can
// destroy the cached value also kills the issuing thread.
func (se *Session) Store(x Var, v core.Val) error {
	switch se.S {
	case NoPersist:
		return se.T.LStore(x.Data, v)
	case MStoreAll:
		return se.T.MStore(x.Data, v)
	case FlushOnRead:
		if !se.T.Local(x.Data) {
			return se.T.MStore(x.Data, v)
		}
		if err := se.T.LStore(x.Data, v); err != nil {
			return err
		}
		return se.flush(x)
	case OriginalFliT:
		if err := se.ctrInc(x); err != nil {
			return err
		}
		if err := se.T.LStore(x.Data, v); err != nil {
			return err
		}
		if err := se.flush(x); err != nil {
			return err
		}
		return se.ctrDec(x)
	}
	if !se.T.Local(x.Data) {
		return se.T.MStore(x.Data, v)
	}
	if err := se.ctrInc(x); err != nil {
		return err
	}
	if err := se.T.LStore(x.Data, v); err != nil {
		return err
	}
	if err := se.flush(x); err != nil {
		return err
	}
	return se.ctrDec(x)
}

// CAS is the shared RMW wrapper.
//
// For remote variables under the sound strategies, the store half uses
// M-RMW: a read-modify-write is a linearization point whose effect must be
// crash-atomic, and retrying a cached CAS whose value was destroyed by the
// owner's crash is ambiguous (the outcome may already have been observed
// and built upon). M-RMW persists the effect in one step, with no
// vulnerable window. Owner-local CAS keeps the cheap cached path (counter,
// L-RMW, local flush): the only crash that can destroy the owner's cached
// value kills the issuing thread too.
func (se *Session) CAS(x Var, old, new core.Val) (bool, error) {
	switch se.S {
	case NoPersist:
		return se.T.CAS(core.OpLRMW, x.Data, old, new)
	case MStoreAll:
		return se.T.CAS(core.OpMRMW, x.Data, old, new)
	case OriginalFliT:
		if err := se.ctrInc(x); err != nil {
			return false, err
		}
		ok, err := se.T.CAS(core.OpLRMW, x.Data, old, new)
		if err != nil {
			return false, err
		}
		if ok {
			if err := se.flush(x); err != nil {
				return false, err
			}
		}
		if err := se.ctrDec(x); err != nil {
			return false, err
		}
		return ok, nil
	}
	if se.T.Local(x.Data) {
		if err := se.ctrInc(x); err != nil {
			return false, err
		}
		ok, err := se.T.CAS(core.OpLRMW, x.Data, old, new)
		if err != nil {
			return false, err
		}
		if ok {
			if err := se.flush(x); err != nil {
				return false, err
			}
		}
		if err := se.ctrDec(x); err != nil {
			return false, err
		}
		return ok, nil
	}
	return se.T.CAS(core.OpMRMW, x.Data, old, new)
}

// FAA is the shared fetch-and-add wrapper.
func (se *Session) FAA(x Var, delta core.Val) (core.Val, error) {
	switch se.S {
	case NoPersist:
		return se.T.FAA(core.OpLRMW, x.Data, delta)
	case MStoreAll:
		return se.T.FAA(core.OpMRMW, x.Data, delta)
	case OriginalFliT:
		if err := se.ctrInc(x); err != nil {
			return 0, err
		}
		prev, err := se.T.FAA(core.OpLRMW, x.Data, delta)
		if err != nil {
			return 0, err
		}
		if err := se.flush(x); err != nil {
			return 0, err
		}
		if err := se.ctrDec(x); err != nil {
			return 0, err
		}
		return prev, nil
	}
	if se.T.Local(x.Data) {
		if err := se.ctrInc(x); err != nil {
			return 0, err
		}
		prev, err := se.T.FAA(core.OpLRMW, x.Data, delta)
		if err != nil {
			return 0, err
		}
		if err := se.flush(x); err != nil {
			return 0, err
		}
		if err := se.ctrDec(x); err != nil {
			return 0, err
		}
		return prev, nil
	}
	// Remote FAA under sound strategies: crash-atomic M-RMW.
	return se.T.FAA(core.OpMRMW, x.Data, delta)
}

// StoreBegin performs the first half of an owner-local shared store —
// counter increment plus the cached store — leaving the variable in its
// vulnerable window (visible but unpersisted, counter raised). Paired with
// StoreFinish. Exposed for experiments and litmus construction (e.g. the
// counter-table false-sharing ablation); production code uses Store.
func (se *Session) StoreBegin(x Var, v core.Val) error {
	if !se.T.Local(x.Data) {
		return fmt.Errorf("flit: StoreBegin requires an owner-local variable")
	}
	if err := se.ctrInc(x); err != nil {
		return err
	}
	return se.T.LStore(x.Data, v)
}

// StoreFinish completes a store begun with StoreBegin: flush, then counter
// decrement.
func (se *Session) StoreFinish(x Var) error {
	if err := se.flush(x); err != nil {
		return err
	}
	return se.ctrDec(x)
}

// PrivateLoad is private_load: no helping, no counter.
func (se *Session) PrivateLoad(x Var) (core.Val, error) { return se.T.Load(x.Data) }

// PrivateStore is private_store with pflag set: store then flush, no
// counter (the location is never accessed concurrently). Sound strategies
// apply the same crash-epoch guard as shared stores.
func (se *Session) PrivateStore(x Var, v core.Val) error {
	switch se.S {
	case NoPersist:
		return se.T.LStore(x.Data, v)
	case MStoreAll:
		return se.T.MStore(x.Data, v)
	case OriginalFliT:
		if err := se.T.LStore(x.Data, v); err != nil {
			return err
		}
		return se.flush(x)
	}
	return se.storeAndFlush(x, v)
}

// Complete is completeOp: empty under CXL0's synchronous flushes (the
// original FliT's trailing MFENCE is unnecessary with in-order execution).
func (se *Session) Complete() error { return nil }

// LoadUnflagged is shared_load with pflag clear: for data that does not
// need durable linearizability (FliT's untagged operations). No counter
// check, no helping flush.
func (se *Session) LoadUnflagged(x Var) (core.Val, error) { return se.T.Load(x.Data) }

// StoreUnflagged is shared_store with pflag clear: a plain cached store
// with no persistence work. The value is visible immediately but may be
// lost in a crash — use only for data whose loss is acceptable (caches,
// hints, statistics).
func (se *Session) StoreUnflagged(x Var, v core.Val) error { return se.T.LStore(x.Data, v) }
