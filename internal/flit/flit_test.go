package flit

import (
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/memsim"
)

// rig builds worker (machine 0) + memhost (machine 1) and a session on the
// worker.
func rig(t *testing.T, strat Strategy) (*memsim.Cluster, *Heap, *Session) {
	t.Helper()
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "worker", Mem: core.NonVolatile, Heap: 512},
		{Name: "memhost", Mem: core.NonVolatile, Heap: 512},
	}, memsim.Config{})
	th, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c, h, NewSession(strat, th)
}

func TestStoreLoadAllStrategies(t *testing.T) {
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			_, h, se := rig(t, strat)
			x, err := h.AllocVar()
			if err != nil {
				t.Fatal(err)
			}
			if err := se.Store(x, 42); err != nil {
				t.Fatal(err)
			}
			v, err := se.Load(x)
			if err != nil || v != 42 {
				t.Fatalf("load = %d, %v", v, err)
			}
		})
	}
}

// TestSoundStoresPersistImmediately: for every sound strategy, a completed
// shared store must already be in physical memory.
func TestSoundStoresPersistImmediately(t *testing.T) {
	for _, strat := range Strategies {
		if !strat.Correct() {
			continue
		}
		t.Run(strat.String(), func(t *testing.T) {
			c, h, se := rig(t, strat)
			x, err := h.AllocVar()
			if err != nil {
				t.Fatal(err)
			}
			if err := se.Store(x, 7); err != nil {
				t.Fatal(err)
			}
			if got := c.PersistedValue(x.Data); got != 7 {
				t.Errorf("persisted = %d, want 7 (store must persist before returning)", got)
			}
			// Same for the RMW wrappers.
			ok, err := se.CAS(x, 7, 8)
			if err != nil || !ok {
				t.Fatalf("CAS: %v %v", ok, err)
			}
			if got := c.PersistedValue(x.Data); got != 8 {
				t.Errorf("persisted after CAS = %d, want 8", got)
			}
			if _, err := se.FAA(x, 2); err != nil {
				t.Fatal(err)
			}
			if got := c.PersistedValue(x.Data); got != 10 {
				t.Errorf("persisted after FAA = %d, want 10", got)
			}
			if err := se.PrivateStore(x, 11); err != nil {
				t.Fatal(err)
			}
			if got := c.PersistedValue(x.Data); got != 11 {
				t.Errorf("persisted after PrivateStore = %d, want 11", got)
			}
		})
	}
}

// TestUnsoundStoresMayNotPersist: OriginalFliT and NoPersist leave the
// value out of the owner's memory (in caches) on return.
func TestUnsoundStoresMayNotPersist(t *testing.T) {
	for _, strat := range []Strategy{OriginalFliT, NoPersist} {
		c, h, se := rig(t, strat)
		x, err := h.AllocVar()
		if err != nil {
			t.Fatal(err)
		}
		if err := se.Store(x, 7); err != nil {
			t.Fatal(err)
		}
		if got := c.PersistedValue(x.Data); got == 7 {
			t.Errorf("%v: store persisted eagerly; expected it to linger in caches", strat)
		}
	}
}

// TestLocalPathUsesCheapStores: on owner-local data the sound FliT
// strategies keep the cached store path (the §6.1 optimisation target), and
// still persist before returning.
func TestLocalPathUsesCheapStores(t *testing.T) {
	for _, strat := range []Strategy{CXL0FliT, CXL0FliTOpt} {
		c := memsim.NewCluster([]memsim.MachineConfig{
			{Name: "owner", Mem: core.NonVolatile, Heap: 512},
		}, memsim.Config{})
		th, err := c.NewThread(0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHeap(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		se := NewSession(strat, th)
		x, err := h.AllocVar()
		if err != nil {
			t.Fatal(err)
		}
		if err := se.Store(x, 5); err != nil {
			t.Fatal(err)
		}
		if got := c.PersistedValue(x.Data); got != 5 {
			t.Errorf("%v: local store not persisted: %d", strat, got)
		}
		ok, err := se.CAS(x, 5, 6)
		if err != nil || !ok {
			t.Fatalf("%v local CAS: %v %v", strat, ok, err)
		}
		if got := c.PersistedValue(x.Data); got != 6 {
			t.Errorf("%v: local CAS not persisted: %d", strat, got)
		}
	}
}

// TestCounterLifecycle: the FliT counter is positive during a local store's
// vulnerable window and returns to zero after completion.
func TestCounterLifecycle(t *testing.T) {
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "owner", Mem: core.NonVolatile, Heap: 512},
	}, memsim.Config{})
	th, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSession(CXL0FliT, th)
	x, err := h.AllocVar()
	if err != nil {
		t.Fatal(err)
	}
	// Reproduce the store's phases by hand and observe the counter.
	if err := se.ctrInc(x); err != nil {
		t.Fatal(err)
	}
	ctr, err := th.Load(x.Ctr)
	if err != nil || ctr != 1 {
		t.Fatalf("counter mid-store = %d, %v; want 1", ctr, err)
	}
	if err := se.ctrDec(x); err != nil {
		t.Fatal(err)
	}
	ctr, err = th.Load(x.Ctr)
	if err != nil || ctr != 0 {
		t.Fatalf("counter after = %d, %v; want 0", ctr, err)
	}
	// A rolled-back decrement never drives the counter negative.
	if err := se.ctrDec(x); err != nil {
		t.Fatal(err)
	}
	ctr, err = th.Load(x.Ctr)
	if err != nil || ctr != 0 {
		t.Fatalf("orphan decrement produced %d, %v", ctr, err)
	}
}

// TestCounterIncrementSurvivesOwnerCrash: the sound strategies persist
// counter increments, so a crash cannot roll them back (the counter-
// rollback anomaly found by the crash harness).
func TestCounterIncrementSurvivesOwnerCrash(t *testing.T) {
	c, h, se := rig(t, CXL0FliT)
	x, err := h.AllocVar()
	if err != nil {
		t.Fatal(err)
	}
	if err := se.ctrInc(x); err != nil {
		t.Fatal(err)
	}
	c.Crash(1) // counter lives on machine 1 (NVM)
	c.Recover(1)
	ctr, err := se.T.Load(x.Ctr)
	if err != nil || ctr != 1 {
		t.Fatalf("counter after owner crash = %d, %v; want 1 (persistent increment)", ctr, err)
	}
}

// TestReaderHelpsPersistLocalInFlightStore reproduces the helping protocol:
// a store on owner-local data is visible but unpersisted mid-window; a
// remote reader sees the positive counter and must persist the value before
// returning.
func TestReaderHelpsPersistLocalInFlightStore(t *testing.T) {
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "owner", Mem: core.NonVolatile, Heap: 512},
		{Name: "reader", Mem: core.NonVolatile, Heap: 16},
	}, memsim.Config{})
	ownerTh, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	readerTh, err := c.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeap(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	writer := NewSession(CXL0FliTOpt, ownerTh)
	reader := NewSession(CXL0FliTOpt, readerTh)
	x, err := h.AllocVar()
	if err != nil {
		t.Fatal(err)
	}

	// Writer mid-store: counter up, value in the owner's cache only.
	if err := writer.ctrInc(x); err != nil {
		t.Fatal(err)
	}
	if err := ownerTh.LStore(x.Data, 9); err != nil {
		t.Fatal(err)
	}
	if c.PersistedValue(x.Data) == 9 {
		t.Fatal("test setup broken: value persisted too early")
	}

	v, err := reader.Load(x)
	if err != nil || v != 9 {
		t.Fatalf("reader load = %d, %v", v, err)
	}
	if got := c.PersistedValue(x.Data); got != 9 {
		t.Errorf("reader completed without persisting the observed in-flight value (persisted=%d)", got)
	}
}

// TestFieldVarLayout checks node field addressing and counter-table
// hashing.
func TestFieldVarLayout(t *testing.T) {
	_, h, _ := rig(t, CXL0FliT)
	base, err := h.AllocNode(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f := h.FieldVar(base, i)
		if f.Data != base+core.LocID(i) {
			t.Errorf("field %d data at %d, want %d", i, f.Data, base+core.LocID(i))
		}
		if h.Cluster().Owner(f.Ctr) != h.Machine() {
			t.Errorf("field %d counter lives on machine %d, want %d",
				i, h.Cluster().Owner(f.Ctr), h.Machine())
		}
	}
	// Consecutive nodes don't overlap.
	base2, err := h.AllocNode(3)
	if err != nil {
		t.Fatal(err)
	}
	if base2 < base+3 {
		t.Errorf("nodes overlap: %d then %d", base, base2)
	}
}

// TestStrategyMetadata pins down names and soundness flags.
func TestStrategyMetadata(t *testing.T) {
	if len(Strategies) != 6 {
		t.Fatalf("expected 6 strategies, got %d", len(Strategies))
	}
	want := map[Strategy]bool{
		CXL0FliT: true, CXL0FliTOpt: true, MStoreAll: true, FlushOnRead: true,
		OriginalFliT: false, NoPersist: false,
	}
	for s, correct := range want {
		if s.Correct() != correct {
			t.Errorf("%v.Correct() = %v, want %v", s, s.Correct(), correct)
		}
		if s.String() == "" {
			t.Errorf("strategy %d has empty name", int(s))
		}
	}
}

// TestPrivateStoreRetriesAcrossOwnerCrash: the epoch-guarded private store
// must re-issue a value destroyed in the owner's dying cache.
func TestPrivateStoreRetriesAcrossOwnerCrash(t *testing.T) {
	c, h, se := rig(t, CXL0FliT)
	x, err := h.AllocVar()
	if err != nil {
		t.Fatal(err)
	}
	// Normal private store persists.
	if err := se.PrivateStore(x, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.PersistedValue(x.Data); got != 3 {
		t.Fatalf("persisted = %d", got)
	}
	// Crash + recovery of the owner between ops: next store still lands.
	c.Crash(1)
	c.Recover(1)
	if err := se.PrivateStore(x, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.PersistedValue(x.Data); got != 4 {
		t.Fatalf("post-crash private store lost: %d", got)
	}
}

// TestUnflaggedOperationsSkipPersistence: pflag-clear accesses are plain
// cached operations — cheap, visible, and deliberately not durable.
func TestUnflaggedOperationsSkipPersistence(t *testing.T) {
	c, h, se := rig(t, CXL0FliT)
	x, err := h.AllocVar()
	if err != nil {
		t.Fatal(err)
	}
	if err := se.StoreUnflagged(x, 9); err != nil {
		t.Fatal(err)
	}
	if v, err := se.LoadUnflagged(x); err != nil || v != 9 {
		t.Fatalf("unflagged load = %d, %v", v, err)
	}
	if got := c.PersistedValue(x.Data); got == 9 {
		t.Errorf("unflagged store persisted eagerly (%d) — it must stay cached", got)
	}
	// Let cache replacement push the value into the owner's cache, then
	// crash the owner: an unflagged store is allowed to vanish.
	if err := se.T.LFlush(x.Data); err != nil {
		t.Fatal(err)
	}
	c.Crash(1)
	c.Recover(1)
	if v, _ := se.LoadUnflagged(x); v != 0 {
		t.Errorf("unflagged store survived the owner's crash: %d", v)
	}
}

// TestSessionMatrixAllStrategies drives every Session operation under every
// strategy on both local and remote variables, checking functional results
// and post-conditions.
func TestSessionMatrixAllStrategies(t *testing.T) {
	for _, strat := range Strategies {
		for _, localData := range []bool{false, true} {
			name := strat.String()
			if localData {
				name += "/local"
			} else {
				name += "/remote"
			}
			t.Run(name, func(t *testing.T) {
				c := memsim.NewCluster([]memsim.MachineConfig{
					{Name: "worker", Mem: core.NonVolatile, Heap: 512},
					{Name: "memhost", Mem: core.NonVolatile, Heap: 512},
				}, memsim.Config{EvictEvery: 3, Seed: 7})
				home := core.MachineID(1)
				if localData {
					home = 0
				}
				h, err := NewHeap(c, home)
				if err != nil {
					t.Fatal(err)
				}
				th, err := c.NewThread(0)
				if err != nil {
					t.Fatal(err)
				}
				se := NewSession(strat, th)
				x, err := h.AllocVar()
				if err != nil {
					t.Fatal(err)
				}

				if err := se.Store(x, 5); err != nil {
					t.Fatal(err)
				}
				if v, _ := se.Load(x); v != 5 {
					t.Fatalf("load after store = %d", v)
				}
				ok, err := se.CAS(x, 5, 6)
				if err != nil || !ok {
					t.Fatalf("CAS 5->6: %v %v", ok, err)
				}
				ok, err = se.CAS(x, 5, 7)
				if err != nil || ok {
					t.Fatalf("stale CAS succeeded: %v %v", ok, err)
				}
				prev, err := se.FAA(x, 3)
				if err != nil || prev != 6 {
					t.Fatalf("FAA prev = %d, %v", prev, err)
				}
				if v, _ := se.Load(x); v != 9 {
					t.Fatalf("after FAA = %d", v)
				}
				if err := se.PrivateStore(x, 11); err != nil {
					t.Fatal(err)
				}
				if v, _ := se.PrivateLoad(x); v != 11 {
					t.Fatalf("private load = %d", v)
				}
				if err := se.Complete(); err != nil {
					t.Fatal(err)
				}
				// Sound strategies leave everything persistent.
				if strat.Correct() {
					if got := c.PersistedValue(x.Data); got != 11 {
						t.Errorf("persisted = %d, want 11", got)
					}
				}
				if err := c.CheckInvariant(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestStoreBeginFinish checks the two-phase experimental store API.
func TestStoreBeginFinish(t *testing.T) {
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "owner", Mem: core.NonVolatile, Heap: 512},
	}, memsim.Config{})
	h, err := NewHeap(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	th, err := c.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSession(CXL0FliT, th)
	x, err := h.AllocVar()
	if err != nil {
		t.Fatal(err)
	}
	if err := se.StoreBegin(x, 4); err != nil {
		t.Fatal(err)
	}
	if ctr, _ := th.Load(x.Ctr); ctr != 1 {
		t.Fatalf("counter mid-window = %d", ctr)
	}
	if c.PersistedValue(x.Data) == 4 {
		t.Fatal("value persisted before StoreFinish")
	}
	if err := se.StoreFinish(x); err != nil {
		t.Fatal(err)
	}
	if got := c.PersistedValue(x.Data); got != 4 {
		t.Errorf("persisted = %d", got)
	}
	if ctr, _ := th.Load(x.Ctr); ctr != 0 {
		t.Errorf("counter after finish = %d", ctr)
	}
	// StoreBegin requires an owner-local variable.
	c2 := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "worker", Mem: core.NonVolatile, Heap: 16},
		{Name: "memhost", Mem: core.NonVolatile, Heap: 512},
	}, memsim.Config{})
	h2, err := NewHeap(c2, 1)
	if err != nil {
		t.Fatal(err)
	}
	th2, err := c2.NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	se2 := NewSession(CXL0FliT, th2)
	y, err := h2.AllocVar()
	if err != nil {
		t.Fatal(err)
	}
	if err := se2.StoreBegin(y, 1); err == nil {
		t.Error("StoreBegin on a remote variable did not fail")
	}
}

// TestAllocVarsAndSizedHeap covers bulk allocation and table sizing edge
// cases.
func TestAllocVarsAndSizedHeap(t *testing.T) {
	c := memsim.NewCluster([]memsim.MachineConfig{
		{Name: "m", Mem: core.NonVolatile, Heap: 64},
	}, memsim.Config{})
	h, err := NewHeapSized(c, 0, 0) // 0 → default size, larger than heap
	if err == nil {
		_, err = h.AllocVar()
	}
	if err == nil {
		t.Fatal("expected allocation failure with default table on tiny heap")
	}
	h2, err := NewHeapSized(c, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	vars, err := h2.AllocVars(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 5 {
		t.Fatalf("AllocVars returned %d", len(vars))
	}
	for _, v := range vars {
		if c.Owner(v.Data) != 0 || c.Owner(v.Ctr) != 0 {
			t.Errorf("var not on machine 0: %+v", v)
		}
	}
	if _, err := h2.AllocVars(1000); err == nil {
		t.Error("oversized AllocVars did not fail")
	}
}
