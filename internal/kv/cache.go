package kv

// The per-front-end read cache (Config.ReadCache > 0). Every Get pays
// the simulated cost of loading the value from the owning shard's
// disaggregated memory; a front end that recently served a key can
// instead answer from a node-local volatile copy — the local cache tier
// CXL-SpecKV and XL-Share layer over disaggregated memory (PAPERS.md).
// The copy is modeled as a MESI cache line (internal/coherence, the same
// state machine the CXL.cache substrate uses): a fill installs the line
// Shared — the owning device keeps its copy — and every write path that
// can change the key's visible state snoops the line Invalid inline,
// under the same store lock that changes the state. There is no side
// channel to race with: a reader either sees the line before the snoop
// (and the old value was still the visible state, because the snoop
// happens with the lock held before the new state is readable) or after
// it (and misses to the authoritative medium).
//
// What "every write path" means, precisely (the invalidation table in
// docs/caching.md):
//
//   - append (Put/Delete/Apply): the written key, at index update.
//   - commit points — pipelined flight retirement and the blocking
//     commit's acknowledgment loop: every client key of the committed
//     range. Under the pipeline, reads are gated by the acked-watermark
//     (docs/pipeline.md) and may have cached the key's *shadow* (last
//     acked) state; retirement moves the watermark past the newer
//     record, so the cached shadow value must die with the shadow entry.
//   - bucket migration: the migrated bucket's keys, at the flip (and on
//     the recovery redo path, reindexBucket).
//   - compaction: the compacted shard's keys, at the reclaim.
//   - crash, recovery and front-end failover: the affected shard's keys
//     (crashLocked, recoverShard) or the whole cache (CrashFront). This
//     is load-bearing, not conservatism: under a batched strategy a read
//     can cache a visible-but-unacknowledged value, and recovery may
//     legitimately drop that record — the cached copy must go with it.
//   - partition transitions (Partition/Heal): the shard's keys,
//     conservatively — a partitioned owner cannot snoop the front end,
//     so the front end drops its copies instead of serving them while
//     the fabric cannot revoke them.
//
// A cache hit costs nothing on the simulated clock, like the index
// probe: the copy lives in the front end's local DRAM. Only found
// values are cached (a lookup that misses the index pays no Load either
// way). Capacity is bounded; eviction is exact LRU, which is
// deterministic — no randomness, no map iteration.

import (
	"cxl0/internal/coherence"
	"cxl0/internal/core"
)

// cacheEntry is one cached key: a MESI line holding the value word,
// threaded on the LRU list (head = most recently used).
type cacheEntry struct {
	key        core.Val
	line       coherence.Line
	prev, next *cacheEntry
}

// readCache is the bounded key→value cache one Store front end owns.
// All state is guarded by the owning store's mu: every method is
// ...Locked, called with the store lock held.
type readCache struct {
	capacity int
	// entries indexes the LRU list by key; head/tail are the list ends
	// (head = most recently used).
	//cxl0:guarded-by mu
	entries map[core.Val]*cacheEntry
	//cxl0:guarded-by mu
	head *cacheEntry
	//cxl0:guarded-by mu
	tail *cacheEntry
	// hits and misses count lookups on the served-read path (the hit
	// rate's denominator is exactly the reads that resolved a value);
	// specFills counts speculative prefetch fills, invalidations the
	// inline snoops, evictions the LRU replacements.
	//cxl0:guarded-by mu
	hits uint64
	//cxl0:guarded-by mu
	misses uint64
	//cxl0:guarded-by mu
	specFills uint64
	//cxl0:guarded-by mu
	invalidations uint64
	//cxl0:guarded-by mu
	evictions uint64
}

// newReadCache builds a cache bounded to capacity entries (capacity >= 1;
// the caller gates on Config.ReadCache > 0).
//
//cxl0:locked mu
func newReadCache(capacity int) *readCache {
	return &readCache{capacity: capacity, entries: make(map[core.Val]*cacheEntry, capacity)}
}

// unlinkLocked removes e from the LRU list (not from the map).
func (c *readCache) unlinkLocked(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFrontLocked inserts e at the list head (most recently used).
func (c *readCache) pushFrontLocked(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// lookupLocked consults the cache on the served-read path: a valid line
// is a hit (served locally, zero simulated cost, promoted to MRU), and
// anything else a miss the caller resolves with a paid Load and fills
// back. Counts hits and misses; speculative probes use containsLocked.
func (c *readCache) lookupLocked(key core.Val) (core.Val, bool) {
	e, ok := c.entries[key]
	if !ok || !e.line.ReadHit() {
		c.misses++
		return 0, false
	}
	c.hits++
	if c.head != e {
		c.unlinkLocked(e)
		c.pushFrontLocked(e)
	}
	return core.Val(e.line.Data), true
}

// containsLocked reports whether key holds a valid line, without
// touching the counters or the LRU order — the prefetcher's probe.
func (c *readCache) containsLocked(key core.Val) bool {
	e, ok := c.entries[key]
	return ok && e.line.ReadHit()
}

// fillLocked installs the value just read (or speculatively prefetched)
// for key. The line fills Shared: the owning shard keeps its copy, and
// ownership stays with the device — the front end never writes through
// the cache, so it never needs E/M. Evicts the LRU tail at capacity.
func (c *readCache) fillLocked(key, val core.Val, speculative bool) {
	if e, ok := c.entries[key]; ok {
		e.line.OnFill(uint64(val), false)
		if c.head != e {
			c.unlinkLocked(e)
			c.pushFrontLocked(e)
		}
		if speculative {
			c.specFills++
		}
		return
	}
	if len(c.entries) >= c.capacity {
		lru := c.tail
		c.unlinkLocked(lru)
		delete(c.entries, lru.key)
		lru.line.OnEvict()
		c.evictions++
	}
	e := &cacheEntry{key: key}
	e.line.OnFill(uint64(val), false)
	c.entries[key] = e
	c.pushFrontLocked(e)
	if speculative {
		c.specFills++
	}
}

// invalidateKeyLocked snoops key's line Invalid — the inline coherence
// action every write path performs for the keys whose visible state it
// changes. A no-op for an uncached key.
func (c *readCache) invalidateKeyLocked(key core.Val) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	e.line.OnSnoopInvalidate()
	c.unlinkLocked(e)
	delete(c.entries, key)
	c.invalidations++
}

// invalidateMatchLocked snoops every cached key matching pred — the
// shard- and bucket-scoped invalidations (crash, recovery, partition
// transitions, migration flips, compaction reclaim). Walks the LRU
// list, never the map: the walk order is the deterministic recency
// order, so the sweep is replay-safe.
func (c *readCache) invalidateMatchLocked(pred func(core.Val) bool) {
	for e := c.head; e != nil; {
		next := e.next
		if pred(e.key) {
			e.line.OnSnoopInvalidate()
			c.unlinkLocked(e)
			delete(c.entries, e.key)
			c.invalidations++
		}
		e = next
	}
}

// invalidateAllLocked drops every entry — front-end failover
// (CrashFront): the cache is front-end volatile state and dies with the
// front's machine.
func (c *readCache) invalidateAllLocked() {
	for e := c.head; e != nil; e = e.next {
		e.line.OnSnoopInvalidate()
		c.invalidations++
	}
	c.head, c.tail = nil, nil
	c.entries = make(map[core.Val]*cacheEntry, c.capacity)
}

// lenLocked returns the current entry count (gauges and tests).
func (c *readCache) lenLocked() int { return len(c.entries) }
