package kv

import (
	"fmt"
	"math"
	"sort"

	"cxl0/internal/core"
	"cxl0/internal/memsim"
)

// This file implements log compaction / checkpointing — the mechanism
// that turns the append-only shard logs into indefinitely reusable ones
// (ROADMAP "Log compaction"). Compacting shard sh proceeds in three
// durable phases, all under the store lock (no client operation
// interleaves):
//
//  1. Snapshot. The shard's open batch is committed, then the live index
//     — every key's newest record, excluding deleted, overwritten and
//     migrated-away records — is written in key order into the snapshot
//     region of the NEXT epoch (epoch e's snapshot lives in region e%2,
//     so writing epoch e+1's snapshot never disturbs the committed one)
//     and made durable with the store's own persistence strategy: under
//     RangedCommit one RFlushRange over exactly the snapshot's lines,
//     under the GPF strategies one GPF for the whole snapshot, under the
//     per-operation strategies each record persists as it is written.
//  2. Commit. The snapshot-epoch record — (epoch, length, checksum),
//     checksum word last — is MStored into its parity slot. MStore is
//     persistent at return under every strategy (the same primitive
//     recovery's log truncation relies on), so this record is the
//     migration-move-out-style commit point: a recovery that reads epoch
//     e+1 knows the snapshot is authoritative and the old log is dead.
//  3. Reclaim. The log restarts empty and the index is re-homed onto the
//     snapshot. Record checksums are bound to the snapshot epoch, so
//     every pre-compaction log record is already invalid under e+1 the
//     instant the commit record lands — the reclaim needs no medium
//     writes to be correct. The old records' checksum words are still
//     zeroed (best-effort, like recovery's truncation) so dead data is
//     also unreadable, and the cost of that sweep is the realistic price
//     of reclamation.
//
// Crash-safety, step by step: a crash before the commit record leaves
// the old epoch's record as the only valid one, so recovery resolves the
// old snapshot + the old log — the partially written next snapshot is
// garbage in a region nothing references (and its checksums only
// validate under an epoch that was never committed). A crash after the
// commit record resolves the new snapshot + an empty log tail: the old
// log's records fail epoch validation at slot 0. The epoch record itself
// is torn-write-safe because its two slots ping-pong (writing epoch
// e+1's slot never touches epoch e's) and its checksum word is written
// last — a partial epoch record validates in neither slot and recovery
// falls back to the previous epoch.
//
// Move markers never enter snapshots: compaction folds the index, and
// the in-memory shard map is current while the lock is held, so a marker
// whose flip has been applied is dead bookkeeping and a marker orphaned
// by a phase-2 migration failure is superseded by construction (the
// fold keeps exactly the acknowledged live state the superseded-marker
// recovery rule would preserve). The lost-flip redo window (commit
// record durable, flip lost) exists only across a front-end death inside
// MigrateBucket, and a dead front-end cannot compact, so compaction can
// never reclaim a marker that recovery still needs.

// epochWords is the snapshot-epoch record layout: [epoch, snapLen, chk].
const epochWords = 3

// CompactStep names the checkpoints of one shard compaction, in order.
// The test hook fires at each so crash-safety can be probed at every
// phase boundary.
type CompactStep int

const (
	// StepBeforeSnapshot fires after the open batch committed and the
	// live set was collected, before anything of the snapshot is written.
	StepBeforeSnapshot CompactStep = iota
	// StepMidSnapshot fires halfway through writing the snapshot records.
	StepMidSnapshot
	// StepAfterSnapshot fires once the snapshot is durable, before the
	// commit record.
	StepAfterSnapshot
	// StepBeforeEpoch fires immediately before the snapshot-epoch record
	// (the commit point) is written.
	StepBeforeEpoch
	// StepAfterEpoch fires after the commit record is durable and before
	// the reclaim sweep.
	StepAfterEpoch
	// StepAfterReclaim fires after the old log's checksum words were
	// zeroed and the in-memory log and index were re-homed.
	StepAfterReclaim
)

var compactStepNames = [...]string{
	"before-snapshot", "mid-snapshot", "after-snapshot",
	"before-epoch", "after-epoch", "after-reclaim",
}

func (st CompactStep) String() string {
	if st >= 0 && int(st) < len(compactStepNames) {
		return compactStepNames[st]
	}
	return fmt.Sprintf("CompactStep(%d)", int(st))
}

// CompactionStats reports one committed shard compaction.
type CompactionStats struct {
	// Shard is the compacted shard (global index under a pooled router).
	Shard int
	// Epoch is the snapshot epoch the compaction committed.
	Epoch uint64
	// Live is the number of live records folded into the snapshot.
	Live int
	// Reclaimed is the number of slots the compaction retired: old log
	// records plus old snapshot records minus the live set — deleted,
	// overwritten and migrated-away records, and superseded snapshot
	// entries.
	Reclaimed int
	// SimNS is the simulated time the compaction consumed (charged to the
	// shard as churn, like recovery time).
	SimNS float64
}

func (s *Store) hookCompact(step CompactStep) {
	if s.compactHook != nil {
		s.compactHook(step)
	}
}

// compactCheckpoint publishes the compaction checkpoint as an
// observability event, then fires the test hook — in that order, so the
// event records reaching the checkpoint even when the hook injects a
// crash there.
func (s *Store) compactCheckpoint(step CompactStep, sh *shard, epoch uint64, live, reclaimed int) {
	if s.rec != nil {
		s.rec.CompactionStep(step.String(), sh.id, epoch, live, reclaimed, s.cluster.NowNS())
	}
	s.hookCompact(step)
}

// compactThreshold is the log length at which auto-compaction triggers
// for a shard of the given capacity.
func (s *Store) compactThreshold(capacity int) int {
	n := int(math.Ceil(s.cfg.CompactAtFill * float64(capacity)))
	if n < 1 {
		n = 1
	}
	if n > capacity {
		n = capacity
	}
	return n
}

// SnapshotEpoch returns shard i's committed snapshot epoch (0 = never
// compacted).
func (s *Store) SnapshotEpoch(i int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[i].epoch
}

// SnapshotLen returns the record count of shard i's committed snapshot.
func (s *Store) SnapshotLen(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards[i].snap)
}

// Compact folds every shard's live index into a durable snapshot and
// reclaims its log, shard by shard; shards whose logs are empty are
// skipped (their snapshots already hold exactly the live set). Returns
// the per-shard stats of the compactions performed. A down shard with a
// non-empty log fails the call with ErrShardDown, like Sync.
func (s *Store) Compact() ([]CompactionStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frontDown {
		return nil, ErrFrontDown
	}
	var all []CompactionStats
	for _, sh := range s.shards {
		if len(sh.log) == 0 {
			continue
		}
		st, err := s.compactLocked(sh)
		if err != nil {
			return all, err
		}
		all = append(all, st)
	}
	return all, nil
}

// CompactShard compacts one shard. A no-op (zero stats) when the shard's
// log is empty.
func (s *Store) CompactShard(i int) (CompactionStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.shards) {
		return CompactionStats{}, fmt.Errorf("%w: shard %d not in [0,%d)", ErrOutOfRange, i, len(s.shards))
	}
	if s.frontDown {
		return CompactionStats{}, ErrFrontDown
	}
	return s.compactLocked(s.shards[i])
}

// compactLocked runs the three-phase protocol described above. The
// caller holds the store lock.
func (s *Store) compactLocked(sh *shard) (stats CompactionStats, err error) {
	stats = CompactionStats{Shard: sh.id}
	if sh.down {
		return stats, ErrShardDown
	}
	if sh.partitioned {
		return stats, ErrUnavailable
	}
	if len(sh.log) == 0 {
		return stats, nil
	}
	// A live set beyond the shard's capacity can never fold — this is the
	// one condition that remains a ShardFullError under auto-compaction.
	// Checked up front so a client retrying against a full shard fails
	// cheaply instead of re-running the collect phase every time.
	if live := len(sh.index); live > sh.cap {
		return stats, &ShardFullError{
			Shard: sh.id, Appended: live, Capacity: sh.cap, Need: live - sh.cap, Live: true,
		}
	}
	// Commit the open batch first so every record to fold is acknowledged
	// state. The commit acknowledges client writes, so its cost is
	// charged as ordinary traffic, like the append- and Sync-triggered
	// commits; everything after is compaction churn.
	cstart := s.cluster.NowNS()
	err = s.commitLocked(sh)
	sh.busyNS += s.cluster.NowNS() - cstart
	if err != nil {
		return stats, err
	}

	s.compacting = true
	start := s.cluster.NowNS()
	committed := false
	defer func() {
		s.compacting = false
		span := s.cluster.NowNS() - start
		sh.busyNS += span
		sh.churnNS += span
		if committed {
			stats.SimNS = span
			s.compactions++
			s.reclaimedSlots += uint64(stats.Reclaimed)
			s.compactionNS = append(s.compactionNS, span)
		}
	}()

	// Collect the live set in key order, paying the simulated cost of
	// reading each value from wherever it lives (log or old snapshot).
	keys := make([]core.Val, 0, len(sh.index))
	for k := range sh.index { //cxl0:order-insensitive — collected then sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	t := sh.thread()
	live := make([]rec, 0, len(keys))
	for _, k := range keys {
		if sh.down {
			return stats, ErrShardDown
		}
		v, err := t.Load(sh.valLocOf(sh.index[k]))
		if err != nil {
			return stats, err
		}
		live = append(live, rec{key: k, val: v})
	}

	next := sh.epoch + 1
	s.compactCheckpoint(StepBeforeSnapshot, sh, next, len(live), 0)
	if err := s.writeSnapshot(sh, t, next, live); err != nil {
		return stats, err
	}
	s.compactCheckpoint(StepAfterSnapshot, sh, next, len(live), 0)
	if sh.down {
		// The snapshot is durable but uncommitted: abort, and recovery
		// resolves the old epoch. Aborting after StepAfterSnapshot and
		// redoing later is always sound because nothing references the
		// next epoch's region until its commit record exists.
		return stats, ErrShardDown
	}
	s.compactCheckpoint(StepBeforeEpoch, sh, next, len(live), 0)
	if sh.down {
		return stats, ErrShardDown
	}

	// Phase 2: commit — the durable snapshot-epoch record.
	if err := s.writeEpochRecord(sh, t, next, len(live)); err != nil {
		return stats, err
	}
	s.compactCheckpoint(StepAfterEpoch, sh, next, len(live), 0)

	// Phase 3: reclaim. The commit point has passed, so the re-homing
	// proceeds even if the shard machine just failed — recovery resolves
	// to exactly this state (new snapshot, empty log tail).
	oldLog, oldSnap := len(sh.log), len(sh.snap)
	sh.epoch = next
	sh.snap = live
	sh.log = sh.log[:0]
	sh.acked, sh.pending = 0, 0
	sh.index = make(map[core.Val]int, len(live))
	for i, r := range live {
		sh.index[r.key] = sh.cap + i
	}
	if s.cache != nil {
		// Reclaim re-homed every live record into the new snapshot region:
		// the lines the front end's copies were filled against are being
		// retired, so the compaction snoops the shard's keys wholesale
		// (see docs/caching.md).
		s.cache.invalidateMatchLocked(func(k core.Val) bool { return s.shardOf(k) == sh.id })
	}
	// Zero the dead log's checksum words so reclaimed data is unreadable
	// as well as invalid. Best-effort: the epoch binding already retires
	// these records, so a crash mid-sweep loses nothing — the sweep just
	// stops (MStore to a down machine fails).
	for slot := 0; slot < oldLog && !sh.down; slot++ {
		if err := t.MStore(sh.chkLoc(slot), 0); err != nil {
			break
		}
	}
	s.compactCheckpoint(StepAfterReclaim, sh, next, len(live), oldLog+oldSnap-len(live))

	committed = true
	stats.Epoch = next
	stats.Live = len(live)
	stats.Reclaimed = oldLog + oldSnap - len(live)
	return stats, nil
}

// writeSnapshot writes the live records into epoch's snapshot region and
// makes them durable with the store's persistence strategy: per-word
// MStore / store+flush for the per-operation strategies, or one deferred
// flush — a single GPF, or under RangedCommit a single RFlushRange over
// exactly the snapshot's lines — for the batched and GPF strategies. The
// snapshot is private until the epoch record commits it, so a crash in
// here simply aborts; there is no retry.
func (s *Store) writeSnapshot(sh *shard, t *memsim.Thread, epoch uint64, live []rec) error {
	machineEpoch := s.cluster.Epoch(sh.machine)
	if len(live) == 0 {
		s.compactCheckpoint(StepMidSnapshot, sh, epoch, len(live), 0)
	}
	for i, r := range live {
		if i == len(live)/2 {
			s.compactCheckpoint(StepMidSnapshot, sh, epoch, len(live), 0)
		}
		if sh.down {
			return ErrShardDown
		}
		locs := [recWords]core.LocID{
			sh.snapKeyLoc(epoch, i), sh.snapValLoc(epoch, i), sh.snapChkLoc(epoch, i),
		}
		vals := [recWords]core.Val{r.key, r.val, snapChkOf(i, r.key, r.val, epoch)}
		var err error
		switch s.cfg.Strategy {
		case MStoreEach:
			err = mstoreWords(t, locs[:], vals[:])
		case StoreFlush, RStoreFlush:
			err = s.storeFlushWords(t, sh, locs[:], vals[:])
		case GPFEach, GroupCommit, RangedCommit:
			// Write now, flush the whole snapshot once below.
			for w, l := range locs {
				if err = t.LStore(l, vals[w]); err != nil {
					break
				}
			}
		default:
			err = fmt.Errorf("%w: %v", ErrUnknownStrategy, s.cfg.Strategy)
		}
		if err != nil {
			return err
		}
	}
	switch s.cfg.Strategy {
	case MStoreEach, StoreFlush, RStoreFlush:
		// Per-record strategies persisted every snapshot word in the
		// loop above; there is no batch flush to issue.
	case RangedCommit:
		if len(live) > 0 {
			if err := t.RFlushRange(sh.snapKeyLoc(epoch, 0), len(live)*recWords); err != nil {
				return err
			}
		}
	case GPFEach, GroupCommit:
		if err := s.gpf(sh, t, true); err != nil {
			return err
		}
	}
	if sh.down || s.cluster.Epoch(sh.machine) != machineEpoch {
		// The shard machine failed while the snapshot was in flight: parts
		// of it may have survived only in remote caches or not at all. It
		// is uncommitted, so abort.
		return ErrShardDown
	}
	return nil
}

// writeEpochRecord MStores the snapshot-epoch record (epoch, snapLen,
// checksum — checksum word last, so a torn write validates in neither
// slot) into its parity slot. MStore is persistent at return, making the
// completed record the compaction's commit point under every strategy.
func (s *Store) writeEpochRecord(sh *shard, t *memsim.Thread, epoch uint64, snapLen int) error {
	words := [epochWords]core.Val{core.Val(epoch), core.Val(snapLen), epochChkOf(epoch, snapLen)}
	for w, v := range words {
		if err := t.MStore(sh.epochLoc(epoch%2, w), v); err != nil {
			return err
		}
	}
	return nil
}

// readEpochRecord loads both snapshot-epoch slots and returns the valid
// one with the highest epoch; (0, 0) when neither validates (a shard
// that never compacted — the region's initial zeros are invalid in the
// epoch-checksum domain).
func (s *Store) readEpochRecord(sh *shard, t *memsim.Thread) (epoch uint64, snapLen int, err error) {
	for parity := uint64(0); parity < 2; parity++ {
		e, err := t.Load(sh.epochLoc(parity, 0))
		if err != nil {
			return 0, 0, err
		}
		n, err := t.Load(sh.epochLoc(parity, 1))
		if err != nil {
			return 0, 0, err
		}
		chk, err := t.Load(sh.epochLoc(parity, 2))
		if err != nil {
			return 0, 0, err
		}
		if e < 0 || n < 0 || chk != epochChkOf(uint64(e), int(n)) {
			continue
		}
		if uint64(e) > epoch {
			epoch, snapLen = uint64(e), int(n)
		}
	}
	return epoch, snapLen, nil
}
