package kv

// The asynchronous commit pipeline (Config.PipelineDepth > 1, batched
// strategies only). The blocking path commits a full batch inside the
// append that filled it: the shard's busy clock absorbs the flush cost
// before the next append can start, so commit latency gates append
// throughput. The pipeline breaks that serialization:
//
//   - When a batch fills, issueFlight performs the flush immediately on
//     the simulated fabric (the records are durable from that point —
//     crash semantics depend on it) but keeps its cost off the shard's
//     busy clock. The batch becomes a flight: an in-flight flush whose
//     completion point (endBusy, in shard-busy-time coordinates) is
//     where its cost has been fully absorbed. Ranged flushes cover
//     disjoint log ranges, so the device overlaps up to PipelineDepth
//     of them — the window K is the modeled device queue depth; a GPF
//     drains every cache in the fabric, so group flights serialize on a
//     per-shard flush lane (a global fence cannot overlap another).
//   - Appends keep streaming into the log while up to PipelineDepth
//     flights are in flight. The filling write returns Ack.Durable ==
//     false; the batch's client acks fire when its flight *retires* —
//     its own commit point, in batch order (the flight queue is FIFO).
//   - A flight retires for free once the shard's busy clock passes its
//     completion point (the flush overlapped useful work); issuing into
//     a full pipeline or draining (Sync, Compact, Apply's commit point,
//     migration) stalls the shard to the oldest flight's completion
//     point first — the only moments flush cost can surface in the
//     makespan.
//   - sh.acked — the acked-watermark — advances only at retirement, and
//     reads are gated by it: every key overwritten past the watermark
//     keeps its last acked state in the shard's shadow map, and
//     Get/MultiGet/Scan serve that state until the covering flight
//     retires. A read never observes a value a crash could take back.
//
// A crash with flights in flight folds them back into the pending tail
// (crashLocked): their records are already durable on the medium, so
// Recover's scan validates and salvages them — the acked prefix always
// survives, and flushed-but-unretired batches are acknowledged by the
// recovery exactly like a salvaged pending batch. See docs/pipeline.md
// for the full protocol and its crash-safety argument.

import "cxl0/internal/core"

// flight is one in-flight commit flush: log slots [first, limit) were
// flushed at issueNS on the simulated clock, and the flush's cost
// occupies the shard's flush lane until endBusy on the shard's busy
// clock.
type flight struct {
	first, limit int
	// issueNS and ackNS bound the flush on the simulated clock (the
	// commit event's span); queueNS is how long the batch waited to
	// start flushing behind earlier flights (always 0 under ranged
	// commit, whose disjoint-range flushes start at issue; nonzero for
	// group flights queued behind an earlier global flush).
	issueNS, ackNS float64
	queueNS        float64
	// endBusy is the flight's completion point in shard-busy-time
	// coordinates: once sh.busyNS passes it, the flush fully overlapped
	// other work and the flight retires for free.
	endBusy float64
	// depth is the pipeline occupancy at issue (this flight included).
	depth int
}

// shadowEntry is one key's acked-watermark state: what a read must
// serve while newer records of the key sit beyond the watermark.
type shadowEntry struct {
	// exists and slot give the key's newest acked state (slot is an
	// index-encoded slot, see valLocOf; meaningless when !exists).
	exists bool
	slot   int
	// newest is the slot of the key's newest appended record — the
	// entry dies when the watermark passes it.
	newest int
}

// pipelined reports whether the asynchronous commit pipeline is active:
// a pipeline depth above 1 under a batched strategy. At depth 1 every
// path below is bypassed and the store behaves exactly like the
// blocking commit it replaces.
func (s *Store) pipelined() bool {
	return s.cfg.PipelineDepth > 1 && s.cfg.Strategy.Batched()
}

// shadowTrack records the acked-watermark state of key before the
// append of slot lands in the index, so watermark-gated reads keep
// serving the acked state until the covering flight retires. Called
// only on the pipelined path, before the index update.
//
//cxl0:locked mu
func (s *Store) shadowTrack(sh *shard, key core.Val, slot int) {
	if e, ok := sh.shadow[key]; ok {
		e.newest = slot
		sh.shadow[key] = e
		return
	}
	if sh.shadow == nil {
		sh.shadow = map[core.Val]shadowEntry{}
	}
	prev, live := sh.index[key]
	sh.shadow[key] = shadowEntry{exists: live, slot: prev, newest: slot}
}

// issueFlight flushes shard sh's open batch and enqueues it as an
// in-flight flight instead of blocking the shard on it. The flush runs
// now on the simulated fabric — the records are durable from this
// moment, which is what makes crash recovery of in-flight batches a
// plain salvage — but its cost lands on the shard's flush lane; the
// shard's busy clock only absorbs it if the pipeline is already full
// (stallRetire) or a drain point forces it (drainFlights).
//
//cxl0:locked mu
func (s *Store) issueFlight(sh *shard) error {
	if sh.pending == 0 {
		return nil
	}
	if sh.down {
		return ErrShardDown
	}
	if sh.partitioned {
		return ErrUnavailable
	}
	for len(sh.flights) >= s.cfg.PipelineDepth {
		s.stallRetire(sh)
	}
	t := sh.thread()
	first := len(sh.log) - sh.pending
	fstart := s.cluster.NowNS()
	for {
		epoch := s.cluster.Epoch(sh.machine)
		if epoch != sh.batchE {
			// Same re-issue rule as flushPending: the shard machine
			// crashed and recovered since the batch opened, so the
			// LStored records may be gone. They are unacknowledged, so
			// re-issuing is sound.
			for slot := first; slot < len(sh.log); slot++ {
				if err := lstoreRecord(t, sh, slot, sh.log[slot]); err != nil {
					return err
				}
			}
			sh.batchE = epoch
			continue
		}
		var err error
		if s.cfg.Strategy == RangedCommit {
			err = s.rflushSlots(sh, t, first, len(sh.log))
		} else {
			err = s.gpf(sh, t, s.migrating || s.compacting)
		}
		if err != nil {
			return err
		}
		if s.cluster.Epoch(sh.machine) == epoch {
			break
		}
	}
	now := s.cluster.NowNS()
	cost := now - fstart
	// Bucket attribution mirrors flushPending: the rebalancer must see
	// commit cost on the committed keys' buckets whether the flush
	// blocked or pipelined.
	var batchKeys []core.Val
	for slot := first; slot < len(sh.log); slot++ {
		if r := sh.log[slot]; !r.move && !r.copied {
			batchKeys = append(batchKeys, r.key)
		}
	}
	if cost > 0 && len(batchKeys) > 0 {
		per := cost / float64(len(batchKeys))
		for _, k := range batchKeys {
			s.bucketWin[s.bucketOf(k)] += per
		}
	}
	// When the flush starts depends on the strategy's scope. Ranged
	// flushes cover disjoint log ranges, so the device processes up to
	// PipelineDepth of them concurrently — the software window is the
	// modeled device queue depth, and a new flight's flush starts the
	// moment it is issued. A GPF drains every cache in the fabric: two
	// global flushes cannot overlap, so group flights queue on the
	// shard's flush lane behind the previous one.
	lane := sh.busyNS
	if s.cfg.Strategy != RangedCommit && lane < sh.laneEnd {
		lane = sh.laneEnd
	}
	queue := lane - sh.busyNS
	f := flight{
		first: first, limit: len(sh.log),
		issueNS: fstart, ackNS: now,
		queueNS: queue,
		endBusy: lane + cost,
		depth:   len(sh.flights) + 1,
	}
	sh.laneEnd = f.endBusy
	sh.flights = append(sh.flights, f)
	sh.pending = 0
	s.commits++
	s.pipeCommits++
	if f.depth > s.maxInFlight {
		s.maxInFlight = f.depth
	}
	return nil
}

// retireFlight retires the oldest flight: its batch's commit point. The
// acked-watermark advances to the flight's limit, its client writes are
// acknowledged (ack latency spans submit to flush completion plus lane
// wait; issue latency was recorded at append), and the shadow map
// catches up — entries whose newest record the watermark just passed
// die, the rest advance to their newest record at or below it.
//
//cxl0:locked mu
func (s *Store) retireFlight(sh *shard) {
	f := sh.flights[0]
	sh.flights = sh.flights[1:]
	acked := 0
	now := f.ackNS
	for slot := f.first; slot < f.limit; slot++ {
		r := sh.log[slot]
		if r.move || r.copied {
			continue
		}
		ackLat := (now - r.startNS) + f.queueNS
		sh.writeLat = append(sh.writeLat, ackLat)
		sh.issueLat = append(sh.issueLat, r.issueNS-r.startNS)
		s.ackedWrites++
		acked++
		if s.rec != nil {
			s.rec.WriteLatency(ackLat, r.issueNS-r.startNS)
		}
	}
	for slot := f.first; slot < f.limit; slot++ {
		r := sh.log[slot]
		if r.move || r.copied {
			continue
		}
		e, ok := sh.shadow[r.key]
		if !ok {
			continue
		}
		if e.newest < f.limit {
			delete(sh.shadow, r.key)
		} else {
			e.exists = r.val != 0
			e.slot = slot
			sh.shadow[r.key] = e
		}
	}
	sh.acked = f.limit
	if s.cache != nil {
		// The watermark just passed these records: reads may have cached
		// their keys' shadow (pre-flight acked) state, which stopped being
		// the visible state this instant. Snoop those copies — the next
		// read misses to the newly acknowledged value (or to the advanced
		// shadow slot). This is the "cached value tracks the watermark"
		// half of the crash-safety argument in docs/caching.md.
		for slot := f.first; slot < f.limit; slot++ {
			if r := sh.log[slot]; !r.move {
				s.cache.invalidateKeyLocked(r.key)
			}
		}
	}
	if s.rec != nil {
		s.obsCommitAcked += uint64(acked)
		s.rec.Commit(sh.id, f.issueNS, f.ackNS, f.limit-f.first, acked, f.depth, f.queueNS)
	}
}

// retireReady retires every flight whose completion point the shard's
// busy clock has already passed — flushes that fully overlapped other
// work. Called at operation entry on the pipelined path; free.
//
//cxl0:locked mu
func (s *Store) retireReady(sh *shard) {
	for len(sh.flights) > 0 && sh.flights[0].endBusy <= sh.busyNS {
		s.retireFlight(sh)
	}
}

// stallRetire force-retires the oldest flight, stalling the shard's
// busy clock to the flight's completion point first: the pipeline is
// full (or draining), so the remaining flush cost surfaces as wait.
//
//cxl0:locked mu
func (s *Store) stallRetire(sh *shard) {
	if f := sh.flights[0]; f.endBusy > sh.busyNS {
		sh.busyNS = f.endBusy
	}
	s.retireFlight(sh)
}

// drainFlights retires every in-flight flush, stalling as needed — the
// pipeline's barrier, run at every drain point (Sync, Apply's commit,
// compaction, migration, recovery re-entry) before the open batch is
// committed.
//
//cxl0:locked mu
func (s *Store) drainFlights(sh *shard) {
	for len(sh.flights) > 0 {
		s.stallRetire(sh)
	}
}
