package kv

// Front-end failover. Every non-colocated worker thread is homed on the
// front-end machine, so the front's cache is where batched strategies
// stage their open batches (LStore lands in the issuing thread's home
// cache). A front crash therefore destroys exactly the state that was
// never flushed: open batches staged in its cache, plus the volatile
// pipeline bookkeeping (flight queue, flush lane, watermark shadow).
// The shards' media — logs, snapshots, epoch records — are untouched,
// and so are batches already flushed by the commit pipeline.
//
// RecoverFront restarts the front and re-attaches each shard by
// replaying its durable log through the same recovery core a crashed
// shard uses (recoverShard): scan the medium, cut at the first invalid
// record, salvage the durable pending tail — which includes every
// in-flight pipelined flush, flushed at issue — and drop what lived
// only in the front's cache. Colocated deployments stage batches in the
// shards' own caches, so there the replay typically salvages even the
// open batch. See docs/pipeline.md for the full argument.

import "fmt"

// CrashFront fails the front-end machine. Every client operation enters
// through the front end, so the entire service surface — data plane and
// placement/compaction control plane — fails with ErrFrontDown until
// RecoverFront. Unacknowledged batches staged in the front's cache are
// destroyed; in-flight pipelined flushes already hit the shards' media
// and survive. A no-op if the front is already down.
func (s *Store) CrashFront() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frontDown {
		return
	}
	s.cluster.Crash(s.front)
	s.frontDown = true
	for _, sh := range s.shards {
		// Fold every unretired record back into the pending tail (a no-op
		// at pipeline depth 1, where acked + pending always spans the
		// log); the re-attachment replay decides what survived. The
		// pipeline bookkeeping is volatile front-end state and dies here.
		sh.pending = len(sh.log) - sh.acked
		sh.flights = nil
		sh.laneEnd = 0
		sh.shadow = nil
	}
	if s.cache != nil {
		// The read cache is front-end DRAM, the most volatile state of
		// all: it dies with the front's machine, wholesale.
		s.cache.invalidateAllLocked()
	}
	if s.rec != nil {
		s.rec.Crash(-1, s.cluster.NowNS())
	}
}

// FrontDown reports whether the front-end machine is currently crashed.
func (s *Store) FrontDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frontDown
}

// RecoverFront restarts the front-end machine and re-attaches every
// healthy shard by replaying its durable log (see the file comment). It
// returns one RecoveryStats per re-attached shard, in shard order.
// Crashed shards are skipped — their machines need their own Recover
// once the front is back. Partitioned shards refuse the whole
// re-attachment: the replay must read every shard's medium, and a
// partitioned medium is unreachable. A no-op when the front is up.
func (s *Store) RecoverFront() ([]RecoveryStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.frontDown {
		return nil, nil
	}
	for _, sh := range s.shards {
		if sh.partitioned {
			return nil, fmt.Errorf(
				"%w: shard %d is partitioned; front-end re-attachment must read every shard's medium — heal first",
				ErrUnavailable, sh.id)
		}
	}
	s.cluster.Recover(s.front)
	var all []RecoveryStats
	for _, sh := range s.shards {
		if sh.down {
			continue
		}
		// Respawn the shard's workers on the restarted front (their old
		// threads died with it); colocated workers get fresh threads on
		// their shard machine, which is equivalent.
		if err := s.spawnThreads(sh); err != nil {
			return all, err
		}
		stats, err := s.recoverShard(sh)
		if err != nil {
			return all, err
		}
		all = append(all, stats)
	}
	s.frontDown = false
	return all, nil
}
