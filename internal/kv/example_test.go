package kv_test

import (
	"fmt"

	"cxl0/internal/core"
	"cxl0/internal/kv"
)

// ExampleStore_rangedCommit runs the sharded KV service under the
// RangedCommit strategy: writes are visible immediately but acknowledged
// durable only when their batch commits — with one ranged persistent flush
// over the batch's own log lines, so the commit never stalls other shards.
func ExampleStore_rangedCommit() {
	st, err := kv.Open(kv.Config{Shards: 2, Strategy: kv.RangedCommit, Batch: 3, Seed: 1})
	if err != nil {
		panic(err)
	}

	for k := core.Val(1); k <= 2; k++ {
		ack, _ := st.Put(k, 100+k)
		fmt.Printf("put %d: durable=%v\n", k, ack.Durable)
	}
	v, ok, _ := st.Get(1)
	fmt.Printf("get 1 before commit: %d %v\n", v, ok)

	// Sync commits every shard's open batch; the writes are now durable.
	if err := st.Sync(); err != nil {
		panic(err)
	}
	fmt.Printf("acked after sync: %d\n", st.Metrics().Acked)
	// Output:
	// put 1: durable=false
	// put 2: durable=false
	// get 1 before commit: 101 true
	// acked after sync: 2
}
