package kv_test

import (
	"fmt"

	"cxl0/internal/core"
	"cxl0/internal/kv"
)

// ExampleStore_apply shows the batch API every kv.DB implementation
// shares: a Batch of puts and deletes is applied in order and
// acknowledged with one Ack at its commit point — durable on return
// under every strategy, because Apply commits the shards it touched.
func ExampleStore_apply() {
	st, err := kv.Open(kv.Config{Shards: 2, Strategy: kv.GroupCommit, Batch: 64, Seed: 1})
	if err != nil {
		panic(err)
	}

	b := new(kv.Batch).Put(1, 101).Put(2, 202).Put(1, 111).Delete(2)
	ack, err := st.Apply(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("batch of %d: durable=%v\n", b.Len(), ack.Durable)

	// Last write wins within the batch; the in-batch delete holds.
	lookups, err := st.MultiGet([]core.Val{1, 2})
	if err != nil {
		panic(err)
	}
	for _, l := range lookups {
		fmt.Printf("key %d: found=%v value=%d\n", l.Key, l.Found, l.Val)
	}
	// Output:
	// batch of 4: durable=true
	// key 1: found=true value=111
	// key 2: found=false value=0
}

// ExampleStore_rangedCommit runs the sharded KV service under the
// RangedCommit strategy: writes are visible immediately but acknowledged
// durable only when their batch commits — with one ranged persistent flush
// over the batch's own log lines, so the commit never stalls other shards.
func ExampleStore_rangedCommit() {
	st, err := kv.Open(kv.Config{Shards: 2, Strategy: kv.RangedCommit, Batch: 3, Seed: 1})
	if err != nil {
		panic(err)
	}

	for k := core.Val(1); k <= 2; k++ {
		ack, _ := st.Put(k, 100+k)
		fmt.Printf("put %d: durable=%v\n", k, ack.Durable)
	}
	v, ok, _ := st.Get(1)
	fmt.Printf("get 1 before commit: %d %v\n", v, ok)

	// Sync commits every shard's open batch; the writes are now durable.
	if err := st.Sync(); err != nil {
		panic(err)
	}
	fmt.Printf("acked after sync: %d\n", st.Metrics().Acked)
	// Output:
	// put 1: durable=false
	// put 2: durable=false
	// get 1 before commit: 101 true
	// acked after sync: 2
}
