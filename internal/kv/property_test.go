package kv

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cxl0/internal/core"
)

// Property-based crash-recovery testing, mirroring internal/ds's
// property_test idiom: random operation streams with eviction churn and
// injected shard crashes, checked against a pure-Go reference model.
//
// The durability property: after Crash+Recover of a shard, the recovered
// state must equal the replay of a prefix of that shard's operation log
// that contains every acknowledged write — no acknowledged write is ever
// lost, under every persistence strategy and every hardware variant.

// modelOp is one reference-model log entry (val 0 = tombstone).
type modelOp struct{ key, val core.Val }

// replay folds a shard's model log into its expected visible contents.
func replay(log []modelOp) map[core.Val]core.Val {
	m := map[core.Val]core.Val{}
	for _, op := range log {
		if op.val == 0 {
			delete(m, op.key)
		} else {
			m[op.key] = op.val
		}
	}
	return m
}

// checkShard compares shard i's visible contents with the model.
func checkShard(t *testing.T, st *Store, i int, want map[core.Val]core.Val, maxKey core.Val) bool {
	t.Helper()
	for k := core.Val(0); k <= maxKey; k++ {
		if st.ShardOf(k) != i {
			continue
		}
		v, ok, err := st.Get(k)
		if err != nil {
			t.Logf("get(%d): %v", k, err)
			return false
		}
		wv, wok := want[k]
		if ok != wok || (ok && v != wv) {
			t.Logf("get(%d) = (%d,%v), model (%d,%v)", k, v, ok, wv, wok)
			return false
		}
	}
	return true
}

func testCrashRecovery(t *testing.T, strat Strategy, variant core.Variant) {
	const maxKey = 12
	f := func(seed int64, opsRaw []byte) bool {
		st, err := Open(Config{
			Shards:     2,
			Capacity:   256,
			Strategy:   strat,
			Batch:      3,
			Variant:    variant,
			EvictEvery: 2,
			Seed:       seed,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		logs := make([][]modelOp, st.NumShards())
		rng := rand.New(rand.NewSource(seed))
		for i, b := range opsRaw {
			if i > 70 {
				break
			}
			k := core.Val(int(b) % (maxKey + 1))
			shard := st.ShardOf(k)
			switch (b / 16) % 5 {
			case 0, 1:
				v := core.Val(1 + int(b)%90 + i)
				if _, err := st.Put(k, v); err != nil {
					t.Logf("op %d put(%d): %v", i, k, err)
					return false
				}
				logs[shard] = append(logs[shard], modelOp{k, v})
			case 2:
				if _, err := st.Delete(k); err != nil {
					t.Logf("op %d delete(%d): %v", i, k, err)
					return false
				}
				logs[shard] = append(logs[shard], modelOp{k, 0})
			case 3:
				// Visible state must always match the full model log.
				want := replay(logs[shard])
				wv, wok := want[k]
				v, ok, err := st.Get(k)
				if err != nil {
					t.Logf("op %d get(%d): %v", i, k, err)
					return false
				}
				if ok != wok || (ok && v != wv) {
					t.Logf("op %d: get(%d) = (%d,%v), model (%d,%v)", i, k, v, ok, wv, wok)
					return false
				}
			default:
				target := rng.Intn(st.NumShards())
				if rng.Intn(3) == 0 {
					st.Cluster().Churn(4)
					continue
				}
				ackedBefore := st.AckedCount(target)
				st.Crash(target)
				stats, err := st.Recover(target)
				if err != nil {
					t.Logf("op %d recover(%d): %v", i, target, err)
					return false
				}
				if stats.Recovered < ackedBefore {
					t.Logf("op %d: shard %d recovered only %d records, %d were acknowledged",
						i, target, stats.Recovered, ackedBefore)
					return false
				}
				if stats.Recovered > len(logs[target]) {
					t.Logf("op %d: shard %d recovered %d records, only %d ever appended",
						i, target, stats.Recovered, len(logs[target]))
					return false
				}
				// The store truncated its log to the durable (or still
				// visible) prefix; the model follows.
				logs[target] = logs[target][:stats.Recovered]
				if !checkShard(t, st, target, replay(logs[target]), maxKey) {
					t.Logf("op %d: shard %d state diverged after recovery (cut %d)",
						i, target, stats.Recovered)
					return false
				}
			}
		}
		// Final: sync, then every shard must match its full model log.
		if err := st.Sync(); err != nil {
			t.Log(err)
			return false
		}
		for i := range logs {
			if st.AckedCount(i) != len(logs[i]) {
				t.Logf("shard %d: %d acked after Sync, %d appended", i, st.AckedCount(i), len(logs[i]))
				return false
			}
			if !checkShard(t, st, i, replay(logs[i]), maxKey) {
				t.Logf("shard %d final state diverged", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(int64(strat)*31 + int64(variant)))}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range Strategies {
			t.Run(fmt.Sprintf("%v/%v", variant, strat), func(t *testing.T) {
				testCrashRecovery(t, strat, variant)
			})
		}
	}
}

// verifyMigrated checks the full store against the model after migrations
// and crashes: every acknowledged write must be served with its value,
// deleted keys must stay deleted, and no key may be indexed on more than
// one shard (or on a shard the map does not route it to).
func verifyMigrated(t *testing.T, st *Store, want map[core.Val]core.Val, maxKey core.Val) {
	t.Helper()
	for k := core.Val(0); k <= maxKey; k++ {
		v, ok, err := st.Get(k)
		if err != nil {
			t.Fatalf("get(%d): %v", k, err)
		}
		wv, wok := want[k]
		if ok != wok || (ok && v != wv) {
			t.Fatalf("get(%d) = (%d,%v), model (%d,%v)", k, v, ok, wv, wok)
		}
		owners := 0
		for i, sh := range st.shards {
			if _, present := sh.index[k]; present {
				owners++
				if st.ShardOf(k) != i {
					t.Fatalf("key %d indexed on shard %d but routed to shard %d", k, i, st.ShardOf(k))
				}
			}
		}
		if owners > 1 {
			t.Fatalf("key %d served from %d shards", k, owners)
		}
	}
}

// testMigrationCrashAt runs one migration with a crash injected at the
// given step (victim: source shard, destination shard, or both) and checks
// that acknowledged writes survive, ownership stays single-shard, and the
// store keeps working — through a repeated migration and one more full
// crash/recover cycle.
func testMigrationCrashAt(t *testing.T, strat Strategy, variant core.Variant, step MigrateStep, victim string) {
	const maxKey = 30
	st, err := Open(Config{
		Shards:     2,
		Buckets:    8,
		Capacity:   512,
		Strategy:   strat,
		Batch:      3,
		Variant:    variant,
		EvictEvery: 2,
		Seed:       int64(strat)*1000 + int64(variant)*100 + int64(step)*10 + int64(len(victim)),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.Val]core.Val{}
	for k := core.Val(0); k <= maxKey; k++ {
		if _, err := st.Put(k, 100+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 100 + k
	}
	for k := core.Val(0); k <= maxKey; k += 7 {
		if _, err := st.Delete(k); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	// Every surviving write above is acknowledged durable from here on.

	// Pick a bucket holding at least one live key.
	b := -1
	for k := core.Val(0); k <= maxKey; k++ {
		if _, ok := want[k]; ok {
			b = st.BucketOf(k)
			break
		}
	}
	if b < 0 {
		t.Fatal("no live bucket")
	}
	from := st.ShardOfBucket(b)
	to := 1 - from

	fired := false
	st.migrateHook = func(s MigrateStep) {
		if s != step || fired {
			return
		}
		fired = true
		if victim == "src" || victim == "both" {
			st.crashLocked(from)
		}
		if victim == "dst" || victim == "both" {
			st.crashLocked(to)
		}
	}
	_, migErr := st.MigrateBucket(b, to)
	st.migrateHook = nil
	if !fired {
		t.Fatalf("hook never fired at %v", step)
	}
	// Aborting (migErr != nil) and completing are both legal outcomes of a
	// mid-migration crash; what must hold afterwards is the contract below.
	for i := range st.shards {
		if st.shards[i].down {
			if _, err := st.Recover(i); err != nil {
				t.Fatalf("recover shard %d (migrate err %v): %v", i, migErr, err)
			}
		}
	}
	verifyMigrated(t, st, want, maxKey)

	// Mutate the bucket's keys so any orphaned copies the aborted attempt
	// left in a log now hold stale values — if a later replay fails to
	// retire them (the move-in marker's wipe rule), verification catches
	// the resurrection.
	mutated := false
	for k := core.Val(0); k <= maxKey; k++ {
		if st.BucketOf(k) != b {
			continue
		}
		if _, ok := want[k]; !ok {
			continue
		}
		if !mutated {
			if _, err := st.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(want, k)
			mutated = true
			continue
		}
		if _, err := st.Put(k, 900+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 900 + k
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	// The service must still migrate and serve: finish moving the bucket
	// (wherever it ended up) to the other shard, then survive one more
	// crash/recover round per shard.
	cur := st.ShardOfBucket(b)
	if _, err := st.MigrateBucket(b, 1-cur); err != nil {
		t.Fatalf("follow-up migration: %v", err)
	}
	verifyMigrated(t, st, want, maxKey)
	for i := range st.shards {
		st.Crash(i)
		if _, err := st.Recover(i); err != nil {
			t.Fatalf("post-migration recover shard %d: %v", i, err)
		}
	}
	verifyMigrated(t, st, want, maxKey)
}

// TestMigrationCrashSteps crashes the source shard, the destination shard,
// and both at every checkpoint of a bucket migration, across all six
// persistence strategies and all three hardware variants: acknowledged
// writes must survive and no key may ever be served from two shards.
func TestMigrationCrashSteps(t *testing.T) {
	steps := []MigrateStep{StepBeforeCopy, StepMidCopy, StepAfterCopy, StepBeforeFlip, StepAfterFlip}
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range Strategies {
			for _, step := range steps {
				for _, victim := range []string{"src", "dst", "both"} {
					t.Run(fmt.Sprintf("%v/%v/%v/%s", variant, strat, step, victim), func(t *testing.T) {
						testMigrationCrashAt(t, strat, variant, step, victim)
					})
				}
			}
		}
	}
}

// TestMigrationRedoFromLog simulates losing the in-memory map flip after
// the migration's commit point (the front-end dying between the durable
// move-out record and the flip, modeled by a panicking hook): recovery of
// the source shard must read the move-out record and complete the flip,
// serving the bucket from the destination's durable copies.
func TestMigrationRedoFromLog(t *testing.T) {
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			st, err := Open(Config{
				Shards: 2, Buckets: 8, Capacity: 256, Strategy: strat, Batch: 3, Seed: 21, EvictEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := map[core.Val]core.Val{}
			for k := core.Val(0); k <= 20; k++ {
				if _, err := st.Put(k, 500+k); err != nil {
					t.Fatal(err)
				}
				want[k] = 500 + k
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			b := st.BucketOf(0)
			from := st.ShardOfBucket(b)
			to := 1 - from

			st.migrateHook = func(s MigrateStep) {
				if s == StepBeforeFlip {
					st.crashLocked(from)
					panic("front-end died before the map flip")
				}
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("hook did not panic")
					}
				}()
				st.MigrateBucket(b, to)
			}()
			st.migrateHook = nil
			if st.ShardOfBucket(b) != from {
				t.Fatal("map flipped despite the lost flip")
			}
			if _, err := st.Recover(from); err != nil {
				t.Fatal(err)
			}
			if st.ShardOfBucket(b) != to {
				t.Fatalf("recovery did not redo the flip: bucket %d still on shard %d", b, from)
			}
			verifyMigrated(t, st, want, 20)
		})
	}
}

// TestMigrationRedoWithDestinationDown: recovery redoes a lost flip while
// the destination is also down. The destination's index must be rebuilt
// from its mirror anyway — so a Scan over the bucket's keys reports
// ErrShardDown instead of silently omitting acknowledged data — and after
// the destination recovers, every key is served from it.
func TestMigrationRedoWithDestinationDown(t *testing.T) {
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			st, err := Open(Config{
				Shards: 2, Buckets: 8, Capacity: 256, Strategy: strat, Batch: 3, Seed: 33, EvictEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := map[core.Val]core.Val{}
			for k := core.Val(0); k <= 20; k++ {
				if _, err := st.Put(k, 500+k); err != nil {
					t.Fatal(err)
				}
				want[k] = 500 + k
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			b := st.BucketOf(0)
			from := st.ShardOfBucket(b)
			to := 1 - from

			st.migrateHook = func(s MigrateStep) {
				if s == StepBeforeFlip {
					st.crashLocked(from)
					st.crashLocked(to)
					panic("front-end died before the map flip, both shards down")
				}
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("hook did not panic")
					}
				}()
				st.MigrateBucket(b, to)
			}()
			st.migrateHook = nil

			// Recover only the source: the redo flips the bucket to the
			// still-down destination.
			if _, err := st.Recover(from); err != nil {
				t.Fatal(err)
			}
			if st.ShardOfBucket(b) != to {
				t.Fatalf("recovery did not redo the flip onto the down destination")
			}
			// The bucket's keys are durably owned by the down destination:
			// reads and scans over them must fail loudly, not omit them.
			var bucketKey core.Val = -1
			for k := core.Val(0); k <= 20; k++ {
				if st.BucketOf(k) == b {
					bucketKey = k
					break
				}
			}
			if bucketKey < 0 {
				t.Fatal("bucket held no keys")
			}
			if _, _, err := st.Get(bucketKey); !errors.Is(err, ErrShardDown) {
				t.Fatalf("get on redo'd-down shard: %v, want ErrShardDown", err)
			}
			if _, err := st.Scan(bucketKey, bucketKey+1, 0); !errors.Is(err, ErrShardDown) {
				t.Fatalf("scan over redo'd-down shard's key: %v, want ErrShardDown", err)
			}
			if _, err := st.Recover(to); err != nil {
				t.Fatal(err)
			}
			verifyMigrated(t, st, want, 20)
		})
	}
}

// TestMigrationRedoSupersededByLaterWrites pins the one case where a
// durable move-out record must NOT be redone: the migration failed in
// phase 2 (commit record durable, map never flipped — modeled by a
// panicking hook with no machine crash), the source kept serving the
// bucket and acknowledged newer writes, and only then crashed. Redoing
// the flip would resurrect the destination's stale copies over the
// acknowledged values.
func TestMigrationRedoSupersededByLaterWrites(t *testing.T) {
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			st, err := Open(Config{
				Shards: 2, Buckets: 8, Capacity: 256, Strategy: strat, Batch: 3, Seed: 27, EvictEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := map[core.Val]core.Val{}
			for k := core.Val(0); k <= 20; k++ {
				if _, err := st.Put(k, 500+k); err != nil {
					t.Fatal(err)
				}
				want[k] = 500 + k
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			// A bucket with at least two live keys: the supersede must be
			// provable from a single rewritten key while the OTHER keys'
			// survival is what the wipe rule would otherwise destroy.
			b, rewrite := -1, core.Val(-1)
			for k := core.Val(0); k <= 20 && b < 0; k++ {
				n := 0
				for k2 := core.Val(0); k2 <= 20; k2++ {
					if st.BucketOf(k2) == st.BucketOf(k) {
						n++
					}
				}
				if n >= 2 {
					b, rewrite = st.BucketOf(k), k
				}
			}
			if b < 0 {
				t.Fatal("no bucket with two keys")
			}
			from := st.ShardOfBucket(b)

			// Phase-2 failure: move-out durable, flip lost, no crash.
			st.migrateHook = func(s MigrateStep) {
				if s == StepBeforeFlip {
					panic("phase-2 failure after the commit record")
				}
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("hook did not panic")
					}
				}()
				st.MigrateBucket(b, 1-from)
			}()
			st.migrateHook = nil

			// The source keeps serving the bucket and acknowledges ONE
			// newer write after the orphaned marker — every other key of
			// the bucket must survive recovery untouched.
			if _, err := st.Put(rewrite, 700+rewrite); err != nil {
				t.Fatal(err)
			}
			want[rewrite] = 700 + rewrite
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}

			st.Crash(from)
			if _, err := st.Recover(from); err != nil {
				t.Fatal(err)
			}
			if st.ShardOfBucket(b) != from {
				t.Fatalf("recovery redid a superseded flip: bucket %d moved to shard %d", b, st.ShardOfBucket(b))
			}
			verifyMigrated(t, st, want, 20)

			// The bucket must still migrate cleanly afterwards.
			if _, err := st.MigrateBucket(b, 1-from); err != nil {
				t.Fatal(err)
			}
			verifyMigrated(t, st, want, 20)
		})
	}
}

// testCompactionCrashAt runs one shard compaction with a crash injected
// at the given checkpoint and checks the compaction contract: every
// acknowledged write survives (served with its exact value — old state if
// the crash aborted the compaction, identical state if it committed),
// ownership stays single-shard, and the service keeps serving, compacting
// and recovering afterwards.
func testCompactionCrashAt(t *testing.T, strat Strategy, variant core.Variant, step CompactStep) {
	const maxKey = 30
	st, err := Open(Config{
		Shards:     2,
		Buckets:    8,
		Capacity:   128,
		Strategy:   strat,
		Batch:      3,
		Variant:    variant,
		EvictEvery: 2,
		Seed:       int64(strat)*1000 + int64(variant)*100 + int64(step)*10,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.Val]core.Val{}
	for k := core.Val(0); k <= maxKey; k++ {
		if _, err := st.Put(k, 100+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 100 + k
	}
	for k := core.Val(0); k <= maxKey; k += 7 {
		if _, err := st.Delete(k); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	for k := core.Val(1); k <= maxKey; k += 5 {
		if _, err := st.Put(k, 200+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 200 + k
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	// Every surviving write above is acknowledged durable from here on.

	target := st.ShardOf(1)
	fired := false
	st.compactHook = func(s CompactStep) {
		if s != step || fired {
			return
		}
		fired = true
		st.crashLocked(target)
	}
	_, compErr := st.CompactShard(target)
	st.compactHook = nil
	if !fired {
		t.Fatalf("hook never fired at %v", step)
	}
	// Aborting (compErr != nil) and committing are both legal outcomes of
	// a mid-compaction crash; what must hold afterwards is the contract
	// below.
	if st.shards[target].down {
		if _, err := st.Recover(target); err != nil {
			t.Fatalf("recover shard %d (compact err %v): %v", target, compErr, err)
		}
	}
	verifyMigrated(t, st, want, maxKey)

	// The service must keep serving and compacting: overwrite and delete
	// more keys (so a stale snapshot or log leftover would be caught as a
	// resurrection), compact again, and survive one more crash/recover
	// round per shard.
	for k := core.Val(2); k <= maxKey; k += 3 {
		if _, ok := want[k]; !ok {
			continue
		}
		if _, err := st.Put(k, 900+k); err != nil {
			t.Fatal(err)
		}
		want[k] = 900 + k
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CompactShard(target); err != nil {
		t.Fatalf("follow-up compaction: %v", err)
	}
	if st.SnapshotEpoch(target) == 0 {
		t.Fatal("no snapshot epoch committed by the follow-up compaction")
	}
	verifyMigrated(t, st, want, maxKey)
	for i := range st.shards {
		st.Crash(i)
		if _, err := st.Recover(i); err != nil {
			t.Fatalf("post-compaction recover shard %d: %v", i, err)
		}
	}
	verifyMigrated(t, st, want, maxKey)
}

// TestCompactionCrashSteps crashes the compacting shard at every
// checkpoint of a compaction — before/mid/after the snapshot write,
// before/after the epoch-record commit, after the reclaim — across all
// six persistence strategies and all three hardware variants:
// acknowledged writes must survive, state must resolve to old-or-new
// (never garbage), and the service must keep compacting.
func TestCompactionCrashSteps(t *testing.T) {
	steps := []CompactStep{
		StepBeforeSnapshot, StepMidSnapshot, StepAfterSnapshot,
		StepBeforeEpoch, StepAfterEpoch, StepAfterReclaim,
	}
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range Strategies {
			for _, step := range steps {
				t.Run(fmt.Sprintf("%v/%v/%v", variant, strat, step), func(t *testing.T) {
					testCompactionCrashAt(t, strat, variant, step)
				})
			}
		}
	}
}

// testAutoCompactChurn is the randomized layer over auto-compaction:
// random put/delete/get/crash streams against a capacity-constrained
// store with CompactAtFill set, checked against a reference model that
// tracks, per shard, which writes are committed (required) and which are
// still pending (whose post-crash value may be any prefix state: old or
// new, never garbage). Compactions interleave invisibly — the test's
// assertions are exactly the client-visible contract.
func testAutoCompactChurn(t *testing.T, strat Strategy, variant core.Variant, compactions *uint64) {
	const maxKey = 10
	f := func(seed int64, opsRaw []byte) bool {
		st, err := Open(Config{
			Shards:        2,
			Capacity:      12,
			CompactAtFill: 0.6,
			Strategy:      strat,
			Batch:         3,
			Variant:       variant,
			EvictEvery:    2,
			Seed:          seed,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[core.Val]core.Val{}             // required (committed) state; 0 = absent
		pending := make([][]modelOp, st.NumShards()) // uncommitted writes per shard, in order
		foldPending := func(shard int, k core.Val, upto int) core.Val {
			v := model[k]
			for i, op := range pending[shard] {
				if i >= upto {
					break
				}
				if op.key == k {
					v = op.val
				}
			}
			return v
		}
		commitShard := func(shard int) {
			for _, op := range pending[shard] {
				if op.val == 0 {
					delete(model, op.key)
				} else {
					model[op.key] = op.val
				}
			}
			pending[shard] = nil
		}
		for i, b := range opsRaw {
			if i > 70 {
				break
			}
			k := core.Val(int(b) % (maxKey + 1))
			shard := st.ShardOf(k)
			switch (b / 16) % 5 {
			case 0, 1:
				v := core.Val(1 + int(b)%90 + i)
				ack, err := st.Put(k, v)
				if err != nil {
					t.Logf("op %d put(%d): %v", i, k, err)
					return false
				}
				pending[shard] = append(pending[shard], modelOp{k, v})
				if ack.Durable {
					commitShard(shard)
				}
			case 2:
				ack, err := st.Delete(k)
				if err != nil {
					t.Logf("op %d delete(%d): %v", i, k, err)
					return false
				}
				pending[shard] = append(pending[shard], modelOp{k, 0})
				if ack.Durable {
					commitShard(shard)
				}
			case 3:
				// Visible state is exact: required state plus every pending
				// write applied in order (dirty reads, like an unflushed
				// RStore'd value).
				wv := foldPending(shard, k, len(pending[shard]))
				v, ok, err := st.Get(k)
				if err != nil {
					t.Logf("op %d get(%d): %v", i, k, err)
					return false
				}
				if ok != (wv != 0) || (ok && v != wv) {
					t.Logf("op %d: get(%d) = (%d,%v), model %d", i, k, v, ok, wv)
					return false
				}
			default:
				target := rng.Intn(st.NumShards())
				if rng.Intn(3) == 0 {
					st.Cluster().Churn(4)
					continue
				}
				st.Crash(target)
				if _, err := st.Recover(target); err != nil {
					t.Logf("op %d recover(%d): %v", i, target, err)
					return false
				}
				// Resolve the surviving state: recovery keeps a prefix of
				// the shard's pending writes, so each key must read as the
				// state after some prefix — old or new, never garbage —
				// and whatever it reads is durable (re-persisted) now.
				for k := core.Val(0); k <= maxKey; k++ {
					if st.ShardOf(k) != target {
						continue
					}
					v, ok, err := st.Get(k)
					if err != nil {
						t.Logf("op %d post-recovery get(%d): %v", i, k, err)
						return false
					}
					legal := false
					for upto := 0; upto <= len(pending[target]); upto++ {
						wv := foldPending(target, k, upto)
						if ok == (wv != 0) && (!ok || v == wv) {
							legal = true
							break
						}
					}
					if !legal {
						t.Logf("op %d: key %d = (%d,%v) after recovery matches no prefix state", i, k, v, ok)
						return false
					}
					if ok {
						model[k] = v
					} else {
						delete(model, k)
					}
				}
				pending[target] = nil
			}
		}
		if err := st.Sync(); err != nil {
			t.Log(err)
			return false
		}
		for shard := range pending {
			commitShard(shard)
		}
		for k := core.Val(0); k <= maxKey; k++ {
			v, ok, err := st.Get(k)
			if err != nil {
				t.Logf("final get(%d): %v", k, err)
				return false
			}
			wv, wok := model[k]
			if ok != wok || (ok && v != wv) {
				t.Logf("final: get(%d) = (%d,%v), model (%d,%v)", k, v, ok, wv, wok)
				return false
			}
		}
		*compactions += st.Metrics().Compactions
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(int64(strat)*37 + int64(variant)))}); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCompactCrashChurnProperty runs the randomized auto-compaction
// property for every strategy × variant, and requires the runs to have
// actually compacted (the capacity is sized so the streams overflow it).
func TestAutoCompactCrashChurnProperty(t *testing.T) {
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range Strategies {
			t.Run(fmt.Sprintf("%v/%v", variant, strat), func(t *testing.T) {
				var compactions uint64
				testAutoCompactChurn(t, strat, variant, &compactions)
				if compactions == 0 {
					t.Fatal("no run auto-compacted; the property never exercised compaction")
				}
			})
		}
	}
}

// testFaultCampaign extends the prefix-state model to campaign faults:
// random operation streams interleaved with fabric partitions (ops
// denied with ErrUnavailable, nothing lost on heal), device degradation
// (cost-only — crashes land while degraded), and correlated whole-blast
// crashes of every shard at one instant, recovered in campaign order
// with partition-heal-then-recover.
func testFaultCampaign(t *testing.T, strat Strategy, variant core.Variant) {
	const maxKey = 12
	f := func(seed int64, opsRaw []byte) bool {
		st, err := Open(Config{
			Shards:     2,
			Capacity:   256,
			Strategy:   strat,
			Batch:      3,
			Variant:    variant,
			EvictEvery: 2,
			Seed:       seed,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		logs := make([][]modelOp, st.NumShards())
		part := make([]bool, st.NumShards())
		anyPart := func() bool { return part[0] || part[1] }
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		// mutate applies one put/delete and folds the outcome into the
		// model. A write to a partitioned shard is denied outright; a
		// write to a healthy shard can still fail with ErrUnavailable
		// when a REMOTE partition blocks the commit (the GPF blast
		// radius) — then batched strategies have already appended the
		// visible, uncommitted record, while per-operation strategies
		// failed before any mutation.
		mutate := func(i int, k, v core.Val) bool {
			shard := st.ShardOf(k)
			var err error
			if v == 0 {
				_, err = st.Delete(k)
			} else {
				_, err = st.Put(k, v)
			}
			switch {
			case part[shard]:
				if !errors.Is(err, ErrUnavailable) {
					t.Logf("op %d: write to partitioned shard %d: %v, want ErrUnavailable", i, shard, err)
					return false
				}
			case err == nil:
				logs[shard] = append(logs[shard], modelOp{k, v})
			case errors.Is(err, ErrUnavailable) && anyPart():
				if !strat.Durable() {
					logs[shard] = append(logs[shard], modelOp{k, v})
				}
			default:
				t.Logf("op %d: write(%d): %v", i, k, err)
				return false
			}
			return true
		}
		for i, b := range opsRaw {
			if i > 60 {
				break
			}
			k := core.Val(int(b) % (maxKey + 1))
			shard := st.ShardOf(k)
			switch (b / 16) % 6 {
			case 0, 1:
				if !mutate(i, k, core.Val(1+int(b)%90+i)) {
					return false
				}
			case 2:
				if !mutate(i, k, 0) {
					return false
				}
			case 3:
				// Reads: denied on the partitioned shard, exact on the
				// others — visible state always matches the full model log.
				v, ok, err := st.Get(k)
				if part[shard] {
					if !errors.Is(err, ErrUnavailable) {
						t.Logf("op %d: get on partitioned shard %d: %v, want ErrUnavailable", i, shard, err)
						return false
					}
					continue
				}
				if err != nil {
					t.Logf("op %d get(%d): %v", i, k, err)
					return false
				}
				want := replay(logs[shard])
				wv, wok := want[k]
				if ok != wok || (ok && v != wv) {
					t.Logf("op %d: get(%d) = (%d,%v), model (%d,%v)", i, k, v, ok, wv, wok)
					return false
				}
			case 4:
				target := rng.Intn(st.NumShards())
				if rng.Intn(2) == 0 {
					// Degradation is cost-only: it never changes outcomes,
					// only the simulated clock — later crashes land while
					// degraded.
					st.Degrade(target, float64(1+rng.Intn(8)))
					continue
				}
				if part[target] {
					before := st.AckedCount(target)
					st.Heal(target)
					part[target] = false
					// A heal is instant and lossless: acknowledged state is
					// untouched and everything reads back.
					if st.AckedCount(target) != before {
						t.Logf("op %d: heal changed acked count %d -> %d", i, before, st.AckedCount(target))
						return false
					}
					if !checkShard(t, st, target, replay(logs[target]), maxKey) {
						t.Logf("op %d: shard %d state diverged after heal", i, target)
						return false
					}
				} else {
					st.Partition(target)
					part[target] = true
				}
			default:
				// Correlated blast: every shard crashes at one simulated
				// instant — some possibly degraded, some possibly
				// partitioned. Recovery refuses partitioned shards until
				// they heal, then proceeds in campaign (index) order.
				acked := make([]int, st.NumShards())
				for sh := range acked {
					acked[sh] = st.AckedCount(sh)
				}
				for sh := 0; sh < st.NumShards(); sh++ {
					st.Crash(sh)
				}
				for sh := range part {
					if !part[sh] {
						continue
					}
					if _, err := st.Recover(sh); !errors.Is(err, ErrUnavailable) {
						t.Logf("op %d: recover of partitioned shard %d: %v, want ErrUnavailable", i, sh, err)
						return false
					}
					st.Heal(sh)
					part[sh] = false
				}
				for sh := 0; sh < st.NumShards(); sh++ {
					stats, err := st.Recover(sh)
					if err != nil {
						t.Logf("op %d recover(%d): %v", i, sh, err)
						return false
					}
					if stats.Recovered < acked[sh] {
						t.Logf("op %d: shard %d recovered %d records, %d were acknowledged",
							i, sh, stats.Recovered, acked[sh])
						return false
					}
					if stats.Recovered > len(logs[sh]) {
						t.Logf("op %d: shard %d recovered %d records, only %d ever appended",
							i, sh, stats.Recovered, len(logs[sh]))
						return false
					}
					logs[sh] = logs[sh][:stats.Recovered]
				}
				for sh := range logs {
					if !checkShard(t, st, sh, replay(logs[sh]), maxKey) {
						t.Logf("op %d: shard %d state diverged after correlated recovery", i, sh)
						return false
					}
				}
			}
		}
		// Final: heal lingering partitions, sync, exact match everywhere.
		for sh := range part {
			if part[sh] {
				st.Heal(sh)
				part[sh] = false
			}
		}
		if err := st.Sync(); err != nil {
			t.Log(err)
			return false
		}
		for i := range logs {
			if st.AckedCount(i) != len(logs[i]) {
				t.Logf("shard %d: %d acked after Sync, %d appended", i, st.AckedCount(i), len(logs[i]))
				return false
			}
			if !checkShard(t, st, i, replay(logs[i]), maxKey) {
				t.Logf("shard %d final state diverged", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(int64(strat)*41 + int64(variant)))}); err != nil {
		t.Fatal(err)
	}
}

// TestFaultCampaignProperty sweeps the campaign-extended prefix-state
// model across all six persistence strategies and all three hardware
// variants.
func TestFaultCampaignProperty(t *testing.T) {
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range Strategies {
			t.Run(fmt.Sprintf("%v/%v", variant, strat), func(t *testing.T) {
				testFaultCampaign(t, strat, variant)
			})
		}
	}
}

// testApplyCorrelatedCrash crashes BOTH shards at one simulated instant
// in the middle of a client batch Apply: the batch must resolve per key
// to old-or-new (never garbage, never a torn value), the pre-batch
// acknowledged state must survive untouched, and re-applying the batch
// afterwards must complete it.
func testApplyCorrelatedCrash(t *testing.T, strat Strategy, variant core.Variant, at int) {
	const maxKey = 20
	st, err := Open(Config{
		Shards:     2,
		Capacity:   256,
		Strategy:   strat,
		Batch:      3,
		Variant:    variant,
		EvictEvery: 2,
		Seed:       int64(strat)*100 + int64(variant)*10 + int64(at),
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := core.Val(0); k <= maxKey; k++ {
		if _, err := st.Put(k, 100+k); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	b := &Batch{}
	for k := core.Val(0); k <= maxKey; k += 2 {
		b.Put(k, 300+k)
	}
	fired := false
	st.applyHook = func(i int) {
		if i != at || fired {
			return
		}
		fired = true
		// The whole blast radius at one instant, mid-batch.
		st.crashLocked(0)
		st.crashLocked(1)
	}
	_, applyErr := st.Apply(b)
	st.applyHook = nil
	if !fired {
		t.Fatalf("apply hook never fired at op %d", at)
	}
	if !errors.Is(applyErr, ErrShardDown) {
		t.Fatalf("mid-batch correlated crash: Apply returned %v, want ErrShardDown", applyErr)
	}
	for i := range st.shards {
		if st.shards[i].down {
			if _, err := st.Recover(i); err != nil {
				t.Fatalf("recover shard %d: %v", i, err)
			}
		}
	}
	// Old-or-new per key: batch keys read 100+k or 300+k, others exactly
	// 100+k.
	for k := core.Val(0); k <= maxKey; k++ {
		v, ok, err := st.Get(k)
		if err != nil || !ok {
			t.Fatalf("get(%d) after correlated mid-batch crash: (%d,%v,%v)", k, v, ok, err)
		}
		if k%2 == 0 {
			if v != 100+k && v != 300+k {
				t.Fatalf("key %d = %d after crash, want old %d or new %d", k, v, 100+k, 300+k)
			}
		} else if v != 100+k {
			t.Fatalf("non-batch key %d = %d, pre-batch acknowledged value %d destroyed", k, v, 100+k)
		}
	}
	// The service completes the batch on retry.
	if ack, err := st.Apply(b); err != nil || !ack.Durable {
		t.Fatalf("re-apply after recovery: ack %+v err %v", ack, err)
	}
	for k := core.Val(0); k <= maxKey; k += 2 {
		if v, ok, _ := st.Get(k); !ok || v != 300+k {
			t.Fatalf("key %d = %d after re-apply, want %d", k, v, 300+k)
		}
	}
}

// TestApplyCorrelatedCrash sweeps the mid-Apply correlated double-crash
// over early/mid/late batch positions for every strategy and variant.
func TestApplyCorrelatedCrash(t *testing.T) {
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range Strategies {
			for _, at := range []int{0, 4, 9} {
				t.Run(fmt.Sprintf("%v/%v/at%d", variant, strat, at), func(t *testing.T) {
					testApplyCorrelatedCrash(t, strat, variant, at)
				})
			}
		}
	}
}

// TestRecoveryAfterDoubleCrash exercises the log-truncation path: a crash
// with unacknowledged pending writes, recovery, more writes reusing the
// truncated slots, and a second crash — stale records from the first
// incarnation must never resurrect.
func TestRecoveryAfterDoubleCrash(t *testing.T) {
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		t.Run(variant.String(), func(t *testing.T) {
			st, err := Open(Config{
				Shards: 1, Capacity: 64, Strategy: GroupCommit, Batch: 8,
				Variant: variant, EvictEvery: 2, Seed: 9,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Acked batch, then unacked pending writes.
			for k := core.Val(0); k < 8; k++ {
				if _, err := st.Put(k, 100+k); err != nil {
					t.Fatal(err)
				}
			}
			for k := core.Val(20); k < 23; k++ {
				if _, err := st.Put(k, 200+k); err != nil {
					t.Fatal(err)
				}
			}
			st.Crash(0)
			stats, err := st.Recover(0)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Recovered < 8 {
				t.Fatalf("recovered %d, the 8 acknowledged writes must survive", stats.Recovered)
			}
			// Overwrite the reclaimed slots with different records.
			for k := core.Val(40); k < 43; k++ {
				if _, err := st.Put(k, 300+k); err != nil {
					t.Fatal(err)
				}
			}
			st.Crash(0)
			if _, err := st.Recover(0); err != nil {
				t.Fatal(err)
			}
			for k := core.Val(0); k < 8; k++ {
				v, ok, err := st.Get(k)
				if err != nil || !ok || v != 100+k {
					t.Fatalf("acked key %d = (%d,%v,%v) after double crash", k, v, ok, err)
				}
			}
			for k := core.Val(20); k < 23; k++ {
				if v, ok, _ := st.Get(k); ok && v != 200+k {
					t.Fatalf("key %d resurrected with corrupt value %d", k, v)
				}
			}
		})
	}
}
