package kv

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cxl0/internal/core"
)

// Property-based crash-recovery testing, mirroring internal/ds's
// property_test idiom: random operation streams with eviction churn and
// injected shard crashes, checked against a pure-Go reference model.
//
// The durability property: after Crash+Recover of a shard, the recovered
// state must equal the replay of a prefix of that shard's operation log
// that contains every acknowledged write — no acknowledged write is ever
// lost, under every persistence strategy and every hardware variant.

// modelOp is one reference-model log entry (val 0 = tombstone).
type modelOp struct{ key, val core.Val }

// replay folds a shard's model log into its expected visible contents.
func replay(log []modelOp) map[core.Val]core.Val {
	m := map[core.Val]core.Val{}
	for _, op := range log {
		if op.val == 0 {
			delete(m, op.key)
		} else {
			m[op.key] = op.val
		}
	}
	return m
}

// checkShard compares shard i's visible contents with the model.
func checkShard(t *testing.T, st *Store, i int, want map[core.Val]core.Val, maxKey core.Val) bool {
	t.Helper()
	for k := core.Val(0); k <= maxKey; k++ {
		if st.ShardOf(k) != i {
			continue
		}
		v, ok, err := st.Get(k)
		if err != nil {
			t.Logf("get(%d): %v", k, err)
			return false
		}
		wv, wok := want[k]
		if ok != wok || (ok && v != wv) {
			t.Logf("get(%d) = (%d,%v), model (%d,%v)", k, v, ok, wv, wok)
			return false
		}
	}
	return true
}

func testCrashRecovery(t *testing.T, strat Strategy, variant core.Variant) {
	const maxKey = 12
	f := func(seed int64, opsRaw []byte) bool {
		st, err := Open(Config{
			Shards:     2,
			Capacity:   256,
			Strategy:   strat,
			Batch:      3,
			Variant:    variant,
			EvictEvery: 2,
			Seed:       seed,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		logs := make([][]modelOp, st.NumShards())
		rng := rand.New(rand.NewSource(seed))
		for i, b := range opsRaw {
			if i > 70 {
				break
			}
			k := core.Val(int(b) % (maxKey + 1))
			shard := st.ShardOf(k)
			switch (b / 16) % 5 {
			case 0, 1:
				v := core.Val(1 + int(b)%90 + i)
				if _, err := st.Put(k, v); err != nil {
					t.Logf("op %d put(%d): %v", i, k, err)
					return false
				}
				logs[shard] = append(logs[shard], modelOp{k, v})
			case 2:
				if _, err := st.Delete(k); err != nil {
					t.Logf("op %d delete(%d): %v", i, k, err)
					return false
				}
				logs[shard] = append(logs[shard], modelOp{k, 0})
			case 3:
				// Visible state must always match the full model log.
				want := replay(logs[shard])
				wv, wok := want[k]
				v, ok, err := st.Get(k)
				if err != nil {
					t.Logf("op %d get(%d): %v", i, k, err)
					return false
				}
				if ok != wok || (ok && v != wv) {
					t.Logf("op %d: get(%d) = (%d,%v), model (%d,%v)", i, k, v, ok, wv, wok)
					return false
				}
			default:
				target := rng.Intn(st.NumShards())
				if rng.Intn(3) == 0 {
					st.Cluster().Churn(4)
					continue
				}
				ackedBefore := st.AckedCount(target)
				st.Crash(target)
				stats, err := st.Recover(target)
				if err != nil {
					t.Logf("op %d recover(%d): %v", i, target, err)
					return false
				}
				if stats.Recovered < ackedBefore {
					t.Logf("op %d: shard %d recovered only %d records, %d were acknowledged",
						i, target, stats.Recovered, ackedBefore)
					return false
				}
				if stats.Recovered > len(logs[target]) {
					t.Logf("op %d: shard %d recovered %d records, only %d ever appended",
						i, target, stats.Recovered, len(logs[target]))
					return false
				}
				// The store truncated its log to the durable (or still
				// visible) prefix; the model follows.
				logs[target] = logs[target][:stats.Recovered]
				if !checkShard(t, st, target, replay(logs[target]), maxKey) {
					t.Logf("op %d: shard %d state diverged after recovery (cut %d)",
						i, target, stats.Recovered)
					return false
				}
			}
		}
		// Final: sync, then every shard must match its full model log.
		if err := st.Sync(); err != nil {
			t.Log(err)
			return false
		}
		for i := range logs {
			if st.AckedCount(i) != len(logs[i]) {
				t.Logf("shard %d: %d acked after Sync, %d appended", i, st.AckedCount(i), len(logs[i]))
				return false
			}
			if !checkShard(t, st, i, replay(logs[i]), maxKey) {
				t.Logf("shard %d final state diverged", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(int64(strat)*31 + int64(variant)))}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range Strategies {
			t.Run(fmt.Sprintf("%v/%v", variant, strat), func(t *testing.T) {
				testCrashRecovery(t, strat, variant)
			})
		}
	}
}

// TestRecoveryAfterDoubleCrash exercises the log-truncation path: a crash
// with unacknowledged pending writes, recovery, more writes reusing the
// truncated slots, and a second crash — stale records from the first
// incarnation must never resurrect.
func TestRecoveryAfterDoubleCrash(t *testing.T) {
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		t.Run(variant.String(), func(t *testing.T) {
			st, err := Open(Config{
				Shards: 1, Capacity: 64, Strategy: GroupCommit, Batch: 8,
				Variant: variant, EvictEvery: 2, Seed: 9,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Acked batch, then unacked pending writes.
			for k := core.Val(0); k < 8; k++ {
				if _, err := st.Put(k, 100+k); err != nil {
					t.Fatal(err)
				}
			}
			for k := core.Val(20); k < 23; k++ {
				if _, err := st.Put(k, 200+k); err != nil {
					t.Fatal(err)
				}
			}
			st.Crash(0)
			stats, err := st.Recover(0)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Recovered < 8 {
				t.Fatalf("recovered %d, the 8 acknowledged writes must survive", stats.Recovered)
			}
			// Overwrite the reclaimed slots with different records.
			for k := core.Val(40); k < 43; k++ {
				if _, err := st.Put(k, 300+k); err != nil {
					t.Fatal(err)
				}
			}
			st.Crash(0)
			if _, err := st.Recover(0); err != nil {
				t.Fatal(err)
			}
			for k := core.Val(0); k < 8; k++ {
				v, ok, err := st.Get(k)
				if err != nil || !ok || v != 100+k {
					t.Fatalf("acked key %d = (%d,%v,%v) after double crash", k, v, ok, err)
				}
			}
			for k := core.Val(20); k < 23; k++ {
				if v, ok, _ := st.Get(k); ok && v != 200+k {
					t.Fatalf("key %d resurrected with corrupt value %d", k, v)
				}
			}
		})
	}
}
