package kv

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cxl0/internal/core"
	"cxl0/internal/memsim"
	"cxl0/internal/obs"
)

// Ack describes the acknowledgment state of a write when it returns.
type Ack struct {
	// Shard is the shard the write was routed to.
	Shard int
	// Seq is the write's slot in the shard's log.
	Seq int
	// Durable says whether the write is already persistent. Under the
	// batched strategies (GroupCommit, RangedCommit) it becomes true only
	// at the batch's commit point.
	Durable bool
}

// Pair is one key-value pair returned by Scan.
type Pair struct {
	Key core.Val `json:"key"`
	Val core.Val `json:"val"`
}

// RecoveryStats reports one shard recovery.
type RecoveryStats struct {
	// Shard is the recovered shard.
	Shard int
	// Recovered is the number of log records that survived (the durable —
	// or still-visible — prefix). Records folded into a snapshot by an
	// earlier compaction are counted in Snapshot, not here.
	Recovered int
	// Snapshot is the number of committed snapshot records the recovery
	// revalidated (0 when the shard never compacted).
	Snapshot int
	// Lost is the number of appended records the crash destroyed.
	Lost int
	// DroppedPending is the number of unacknowledged batched writes
	// discarded by the recovery.
	DroppedPending int
	// SimNS is the simulated time the recovery consumed (scan + log
	// truncation + re-persist).
	SimNS float64
}

// rec mirrors one appended log record on the Go side (the service's own
// bookkeeping; authoritative content lives in simulated memory).
type rec struct {
	key, val core.Val
	startNS  float64 // simulated submit time, for ack-latency accounting
	// issueNS is when the record's write path finished (the append
	// returned to the client): issueNS-startNS is the issue latency,
	// ack latency the (possibly much later) commit point minus startNS.
	issueNS float64
	// move marks a move-marker record (bucket-migration bookkeeping, keyed
	// by bucket rather than client key; checksummed in the moveChkOf
	// domain). copied marks a migrated copy of a client record — real
	// (key, value) content, but its write was acknowledged on the source
	// shard, so it is excluded from ack-latency and acked-write counting.
	move, copied bool
}

// chk returns the record's checksum word for slot under the shard's
// snapshot epoch, in the domain matching its kind.
func (r rec) chk(slot int, epoch uint64) core.Val {
	if r.move {
		return moveChkOf(slot, r.key, r.val, epoch)
	}
	return chkOf(slot, r.key, r.val, epoch)
}

// shard is one hash partition: a log region, a double-buffered snapshot
// region and a two-slot snapshot-epoch record on one machine, plus the
// volatile index over them.
type shard struct {
	id      int
	machine core.MachineID
	base    core.LocID
	cap     int
	// snapBase are the two snapshot regions (each cap records): the
	// snapshot of epoch e lives in region e%2, so writing the next
	// snapshot never disturbs the committed one. epochBase is the two-slot
	// snapshot-epoch record (the compaction commit record, parity-
	// addressed the same way).
	snapBase  [2]core.LocID
	epochBase core.LocID

	threads []*memsim.Thread
	rr      int

	index map[core.Val]int // key -> encoded slot of newest live record (see valLocOf)
	log   []rec            // appended records, slot-ordered
	// snap mirrors the committed snapshot's records (slot-ordered live
	// puts; no tombstones, no markers) and epoch is the committed
	// snapshot epoch (0 = never compacted).
	snap  []rec
	epoch uint64
	// acked is the durability watermark: log records [0, acked) are
	// acknowledged durable. It anchors the pipelined commit path's
	// crash-safety argument, so it may only move under the store lock.
	//cxl0:guarded-by mu
	acked   int
	pending int    // batched records awaiting their batch's commit flush
	batchE  uint64 // shard-machine crash epoch when the open batch began
	// Asynchronous commit pipeline state (Config.PipelineDepth > 1; see
	// pipeline.go). flights are the in-flight commit flushes, oldest
	// first; laneEnd is the flush lane's frontier in shard-busy-time
	// coordinates; shadow holds the acked-watermark read state of keys
	// overwritten past the watermark (nil when empty).
	//cxl0:guarded-by mu
	flights []flight
	//cxl0:guarded-by mu
	laneEnd float64
	//cxl0:guarded-by mu
	shadow map[core.Val]shadowEntry
	down   bool
	// partitioned marks the shard's machine as cut off by a fabric
	// partition: everything is intact but unreachable, so operations fail
	// with ErrUnavailable (no recovery needed — Heal restores service).
	partitioned bool
	// busyNS is the simulated time this shard's operations consumed.
	//cxl0:guarded-by mu
	busyNS float64
	// churnNS is the part of busyNS spent on crash recovery, bucket
	// migration and log compaction — exogenous, one-off costs that say
	// nothing about where traffic is placed. The placement-skew metric and
	// the rebalancer's load windows exclude it.
	//cxl0:guarded-by mu
	churnNS float64
	// Per-shard write-latency samples: ack latencies of acknowledged
	// writes and the issue (submit-to-return) latencies of the same.
	//cxl0:guarded-by mu
	writeLat []float64
	//cxl0:guarded-by mu
	issueLat []float64
}

func (sh *shard) keyLoc(slot int) core.LocID { return sh.base + core.LocID(slot*recWords) }
func (sh *shard) valLoc(slot int) core.LocID { return sh.base + core.LocID(slot*recWords+1) }
func (sh *shard) chkLoc(slot int) core.LocID { return sh.base + core.LocID(slot*recWords+2) }

// Snapshot-region locations, addressed by the epoch whose snapshot they
// hold (region epoch%2).
func (sh *shard) snapKeyLoc(epoch uint64, slot int) core.LocID {
	return sh.snapBase[epoch%2] + core.LocID(slot*recWords)
}
func (sh *shard) snapValLoc(epoch uint64, slot int) core.LocID {
	return sh.snapBase[epoch%2] + core.LocID(slot*recWords+1)
}
func (sh *shard) snapChkLoc(epoch uint64, slot int) core.LocID {
	return sh.snapBase[epoch%2] + core.LocID(slot*recWords+2)
}

// epochLoc addresses word w of the epoch-record slot with the given
// parity.
func (sh *shard) epochLoc(parity uint64, w int) core.LocID {
	return sh.epochBase + core.LocID(int(parity)*epochWords+w)
}

// valLocOf resolves an index entry to its value location: entries below
// cap are log slots, entries at cap and above are slots of the current
// snapshot (compaction re-homes live records there).
func (sh *shard) valLocOf(slot int) core.LocID {
	if slot >= sh.cap {
		return sh.snapValLoc(sh.epoch, slot-sh.cap)
	}
	return sh.valLoc(slot)
}

func (sh *shard) thread() *memsim.Thread {
	t := sh.threads[sh.rr%len(sh.threads)]
	sh.rr++
	return t
}

// Metrics is a snapshot of a store's service counters.
type Metrics struct {
	// Puts, Gets, Deletes and Scans count operations served. Gets counts
	// point lookups, including each key resolved by a MultiGet.
	Puts, Gets, Deletes, Scans uint64
	ScannedPairs               uint64
	// MultiGets counts MultiGet calls and Batches counts Apply calls (a
	// Router splitting one client batch across clusters counts one Apply
	// per sub-batch it forwards).
	MultiGets, Batches uint64
	Commits            uint64 // commit flushes issued (GPF or ranged batches)
	// ScanDiscardedPairs counts pairs a pooled scan fan-out loaded from
	// clusters and then discarded in the router's merge — always 0 on a
	// single store, where Scan never over-fetches (see pool.Router.Scan).
	ScanDiscardedPairs uint64
	// Acked is the cumulative count of client writes acknowledged durable
	// (at return, at a batch commit, via Sync, or by a recovery that
	// salvaged a pending batch). It only ever grows: recovery truncation
	// and bucket migration move log positions around, but an acknowledged
	// write stays acknowledged. Migrated copies are not client writes and
	// are counted in MigratedRecords instead.
	Acked           uint64
	DroppedPending  uint64
	Recoveries      uint64
	Migrations      uint64 // completed bucket migrations
	MigratedRecords uint64 // live records copied by completed migrations
	// Compactions counts committed shard compactions and ReclaimedSlots
	// the log and old-snapshot slots they retired (deleted, overwritten
	// and migrated-away records, plus superseded snapshot entries). Both
	// are cumulative and only ever grow.
	Compactions    uint64
	ReclaimedSlots uint64
	RecoveryNS     []float64
	// CompactionNS are the simulated durations of committed compactions
	// (charged to the compacted shard as churn, like recovery time).
	CompactionNS []float64
	// PerShardBusyNS is each shard's accumulated simulated busy time.
	// Shards run on distinct machines, so the service-level makespan under
	// perfect parallelism is the maximum entry. Global operations (GPF)
	// are charged to every shard because a Global Persistent Flush stalls
	// the whole fabric; RangedCommit's ranged flushes involve only the
	// shard's own device and are charged to that shard alone.
	PerShardBusyNS []float64
	// PerShardChurnNS is the part of PerShardBusyNS spent on crash
	// recovery and bucket migration: exogenous one-off costs, excluded
	// from the placement-skew metric (MaxMeanBusyRatio).
	PerShardChurnNS []float64
	// PerShardFill is each shard's log fill fraction at snapshot time
	// (appended records over capacity — live occupancy, not cumulative),
	// and PerShardLive its live record count (index size). Both follow
	// PerShardBusyNS's global shard order under a pooled router.
	PerShardFill []float64
	PerShardLive []int
	// WriteLatencies are simulated ack latencies of acknowledged writes
	// (submit to durable-ack, including any commit-pipeline lane wait);
	// IssueLatencies are the same writes' submit-to-return latencies.
	// With the pipeline off they nearly coincide; the gap between their
	// distributions is exactly what pipelining buys (see docs/pipeline.md).
	WriteLatencies []float64
	IssueLatencies []float64
	// PipelinedCommits counts commit flushes issued through the
	// asynchronous pipeline (always 0 at PipelineDepth 1) and
	// MaxInFlight the deepest pipeline occupancy any shard reached.
	// PerShardInFlight and PerShardAcked are gauges at snapshot time:
	// each shard's in-flight flush count and its acked-watermark
	// position (log records [0, acked) are acknowledged durable).
	PipelinedCommits uint64
	MaxInFlight      int
	PerShardInFlight []int
	PerShardAcked    []int
	// Read-cache counters (all 0 unless Config.ReadCache > 0; see
	// docs/caching.md). CacheHits and CacheMisses count cache
	// consultations on the served-read path — a hit was answered from the
	// front end's local copy without a simulated Load, so the hit rate is
	// CacheHits/(CacheHits+CacheMisses) over exactly the reads that
	// resolved a value. SpeculativeFills counts prefetcher warm-ups
	// installed ahead of demand, CacheInvalidations the inline coherence
	// snoops by write paths, and CacheSize is the entry-count gauge at
	// snapshot time.
	CacheHits, CacheMisses uint64
	SpeculativeFills       uint64
	CacheInvalidations     uint64
	CacheSize              int
}

// MaxBusyNS returns the busiest shard's simulated time — the service
// makespan under perfect shard parallelism.
func (m Metrics) MaxBusyNS() float64 {
	max := 0.0
	for _, b := range m.PerShardBusyNS {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalBusyNS returns the summed simulated time across shards (the
// single-machine-equivalent cost).
func (m Metrics) TotalBusyNS() float64 {
	total := 0.0
	for _, b := range m.PerShardBusyNS {
		total += b
	}
	return total
}

// MaxMeanBusyRatio returns the busiest shard's traffic time divided by
// the mean — the placement-skew metric: 1.0 is a perfectly balanced
// service, and the traffic makespan exceeds the ideally parallel one by
// exactly this factor. Churn time (crash recovery, bucket migration) is
// excluded: it is one-off cost unrelated to where traffic is routed, and
// the run's crash schedule would otherwise drown the signal. Returns 0
// when no traffic time has accumulated.
func (m Metrics) MaxMeanBusyRatio() float64 {
	max, total := 0.0, 0.0
	for i, b := range m.PerShardBusyNS {
		if i < len(m.PerShardChurnNS) {
			b -= m.PerShardChurnNS[i]
		}
		total += b
		if b > max {
			max = b
		}
	}
	if total <= 0 {
		return 0
	}
	return max / (total / float64(len(m.PerShardBusyNS)))
}

// Store is a sharded durable key-value service over one memsim cluster.
// Methods are safe for concurrent use; operations serialize per shard.
type Store struct {
	mu      sync.Mutex
	cfg     Config
	cluster *memsim.Cluster
	front   core.MachineID
	shards  []*shard

	// Shard map: keys hash to one of len(shardMap) virtual buckets;
	// shardMap assigns each bucket to a shard. bucketVer is the version of
	// the last migration applied per bucket and moveSeq the last version
	// allocated — recovery uses them to decide whether a durable move-out
	// record in a scanned log is newer than the in-memory map (redo) or
	// already applied.
	shardMap  []int
	bucketVer []uint64
	moveSeq   uint64

	// Rebalance window: winBase snapshots each shard's traffic time
	// (busyNS - churnNS) at the last Rebalance call and bucketWin
	// accumulates per-bucket busy time since, so load decisions track the
	// current traffic mix, not the whole run.
	winBase   []float64
	bucketWin []float64

	puts, gets, deletes, scans uint64
	scannedPairs               uint64
	multiGets, batches         uint64
	commits                    uint64
	pipeCommits                uint64
	maxInFlight                int
	ackedWrites                uint64
	dropped                    uint64
	recoveries                 uint64
	migrations                 uint64
	migratedRecords            uint64
	compactions                uint64
	reclaimedSlots             uint64
	recoveryNS                 []float64
	compactionNS               []float64

	// frontDown is true while the front-end machine is crashed: every
	// client operation enters through the front end, so the whole
	// service surface fails with ErrFrontDown until RecoverFront (see
	// failover.go).
	frontDown bool

	// migrating (resp. compacting) is true while a bucket migration (resp.
	// a log compaction) is writing and flushing its records, so shared
	// flush paths (flushPending's GPF cross-charge) can classify their
	// cost as churn.
	migrating  bool
	compacting bool

	// migrateHook and compactHook, when set (tests only), are called at
	// each checkpoint of a bucket migration / shard compaction with the
	// store lock held.
	migrateHook func(step MigrateStep)
	compactHook func(step CompactStep)
	// applyHook, when set (tests only), is called before each batch op of
	// an Apply with the op's index — the fault-campaign property tests
	// inject correlated crashes mid-batch through it.
	applyHook func(i int)

	// cache is the per-front-end volatile read cache (nil unless
	// Config.ReadCache > 0) and pred its speculative prefetcher (nil
	// unless Config.Prefetch); see cache.go, predictor.go and
	// docs/caching.md.
	//cxl0:guarded-by mu
	cache *readCache
	//cxl0:guarded-by mu
	pred *predictor

	// rec, when set (Observe), receives typed events and latency samples
	// for everything the store does. Instrumentation reads the simulated
	// clock but never advances it and never touches the fabric's RNG, so
	// an observed run is bit-identical on the simulated timeline to an
	// unobserved one; with rec nil the hot path pays one pointer check.
	// obsCommitAcked counts the client acks carried on emitted commit
	// events, so op spans can report exactly the acks not already
	// attributed to a commit event (the ack-agreement invariant).
	rec            *obs.Recorder
	obsCommitAcked uint64
}

// Open builds the cluster (one front-end machine plus one machine per
// shard, all with non-volatile memory) and the shards on it.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Strategy < 0 || int(cfg.Strategy) >= len(strategyNames) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownStrategy, cfg.Strategy)
	}
	machines := []memsim.MachineConfig{{Name: "front", Mem: core.NonVolatile, Heap: 0}}
	for i := 0; i < cfg.Shards; i++ {
		machines = append(machines, memsim.MachineConfig{
			Name: fmt.Sprintf("shard%d", i),
			Mem:  core.NonVolatile,
			// Log region, two snapshot regions, two epoch-record slots.
			Heap: 3*cfg.Capacity*recWords + 2*epochWords,
		})
	}
	cluster := memsim.NewCluster(machines, memsim.Config{
		Variant:    cfg.Variant,
		EvictEvery: cfg.EvictEvery,
		Seed:       cfg.Seed,
		Latency:    cfg.Latency,
	})
	var cache *readCache
	var pred *predictor
	if cfg.ReadCache > 0 {
		cache = newReadCache(cfg.ReadCache)
		if cfg.Prefetch {
			pred = newPredictor(cfg.Shards)
		}
	}
	s := &Store{
		cfg:       cfg,
		cluster:   cluster,
		front:     0,
		shardMap:  make([]int, cfg.Buckets),
		bucketVer: make([]uint64, cfg.Buckets),
		bucketWin: make([]float64, cfg.Buckets),
		winBase:   make([]float64, cfg.Shards),
		cache:     cache,
		pred:      pred,
	}
	for b := range s.shardMap {
		s.shardMap[b] = b % cfg.Shards
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:      i,
			machine: core.MachineID(i + 1),
			cap:     cfg.Capacity,
			index:   map[core.Val]int{},
		}
		base, err := cluster.Alloc(sh.machine, cfg.Capacity*recWords)
		if err != nil {
			return nil, err
		}
		sh.base = base
		for r := 0; r < 2; r++ {
			snapBase, err := cluster.Alloc(sh.machine, cfg.Capacity*recWords)
			if err != nil {
				return nil, err
			}
			sh.snapBase[r] = snapBase
		}
		epochBase, err := cluster.Alloc(sh.machine, 2*epochWords)
		if err != nil {
			return nil, err
		}
		sh.epochBase = epochBase
		if err := s.spawnThreads(sh); err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

func (s *Store) spawnThreads(sh *shard) error {
	home := s.front
	if s.cfg.Colocate {
		home = sh.machine
	}
	sh.threads = sh.threads[:0]
	for i := 0; i < s.cfg.ThreadsPerShard; i++ {
		t, err := s.cluster.NewThread(home)
		if err != nil {
			return err
		}
		sh.threads = append(sh.threads, t)
	}
	return nil
}

// Cluster returns the backing cluster (for churn injection and
// inspection).
func (s *Store) Cluster() *memsim.Cluster { return s.cluster }

// Observe attaches an observability recorder: every operation, commit
// flush, migration step, compaction checkpoint, crash, recovery and
// rebalance decision is published as a typed obs.Event, and op latencies
// feed the recorder's histograms. Pass nil to detach. Observation never
// touches the simulated clock: an observed run's simulated timeline is
// bit-identical to an unobserved one.
func (s *Store) Observe(rec *obs.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = rec
}

// NowNS returns the cluster's simulated clock.
func (s *Store) NowNS() float64 { return s.cluster.NowNS() }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// NumBuckets returns the virtual-bucket count of the shard map.
func (s *Store) NumBuckets() int { return len(s.shardMap) }

// BucketOf returns the virtual bucket key k hashes to. The assignment is
// fixed for a store's lifetime; which shard serves the bucket is not.
func (s *Store) BucketOf(k core.Val) int { return s.bucketOf(k) }

func (s *Store) bucketOf(k core.Val) int {
	return int(hashKey(k) % uint64(len(s.shardMap)))
}

// ShardOf returns the shard index key k currently routes to. It can change
// over the store's lifetime: bucket migration reassigns the key's bucket.
func (s *Store) ShardOf(k core.Val) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOf(k)
}

func (s *Store) shardOf(k core.Val) int { return s.shardMap[s.bucketOf(k)] }

// ShardOfBucket returns the shard currently serving bucket b.
func (s *Store) ShardOfBucket(b int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardMap[b]
}

// AckedCount returns how many of shard i's log records are acknowledged
// durable.
func (s *Store) AckedCount(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[i].acked
}

// AppendedCount returns how many records shard i has appended (acknowledged
// or pending).
func (s *Store) AppendedCount(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards[i].log)
}

// writeRecord makes the record at slot durable (or enqueues it, under the
// batched strategies) according to the strategy. The caller has already
// bounds-checked slot.
func (s *Store) writeRecord(sh *shard, slot int, r rec) error {
	t := sh.thread()
	locs := [recWords]core.LocID{sh.keyLoc(slot), sh.valLoc(slot), sh.chkLoc(slot)}
	vals := [recWords]core.Val{r.key, r.val, r.chk(slot, sh.epoch)}

	switch s.cfg.Strategy {
	case MStoreEach:
		return mstoreWords(t, locs[:], vals[:])

	case StoreFlush, RStoreFlush:
		// Store-then-flush has a window in which the owner's crash destroys
		// the stored value and the flush completes vacuously. Records are
		// private until indexed, so the epoch-guarded retry (the flit
		// PrivateStore idiom) is sound.
		for {
			epoch := s.cluster.Epoch(sh.machine)
			if err := s.storeFlushWords(t, sh, locs[:], vals[:]); err != nil {
				return err
			}
			if s.cluster.Epoch(sh.machine) == epoch {
				return nil
			}
		}

	case GPFEach:
		for {
			epoch := s.cluster.Epoch(sh.machine)
			if err := lstoreRecord(t, sh, slot, r); err != nil {
				return err
			}
			if err := s.gpf(sh, t, s.migrating || s.compacting); err != nil {
				return err
			}
			if s.cluster.Epoch(sh.machine) == epoch {
				return nil
			}
		}

	case GroupCommit, RangedCommit:
		if sh.pending == 0 {
			sh.batchE = s.cluster.Epoch(sh.machine)
		}
		if err := lstoreRecord(t, sh, slot, r); err != nil {
			return err
		}
		sh.pending++
		return nil
	}
	return fmt.Errorf("%w: %v", ErrUnknownStrategy, s.cfg.Strategy)
}

// mstoreWords persists each word with MStore — MStoreEach's per-record
// write, shared between the log and snapshot writers.
func mstoreWords(t *memsim.Thread, locs []core.LocID, vals []core.Val) error {
	for i, l := range locs {
		if err := t.MStore(l, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// storeFlushWords writes and persists each word with the store+flush
// idiom (RStore or LStore per the strategy, then the owner's LFlush when
// the worker is colocated under StoreFlush, RFlush otherwise) — one pass,
// shared between the log and snapshot writers. The caller owns the crash
// policy: writeRecord wraps it in the epoch-guarded retry, writeSnapshot
// aborts instead (the snapshot is uncommitted until its epoch record).
func (s *Store) storeFlushWords(t *memsim.Thread, sh *shard, locs []core.LocID, vals []core.Val) error {
	for i, l := range locs {
		var err error
		if s.cfg.Strategy == RStoreFlush {
			err = t.RStore(l, vals[i])
		} else {
			err = t.LStore(l, vals[i])
		}
		if err != nil {
			return err
		}
		if s.cfg.Strategy == StoreFlush && t.Machine() == sh.machine {
			err = t.LFlush(l)
		} else {
			err = t.RFlush(l)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// lstoreRecord writes the record at slot into the worker's cache (visible,
// not yet durable) — the batched strategies' enqueue and re-issue path.
func lstoreRecord(t *memsim.Thread, sh *shard, slot int, r rec) error {
	locs := [recWords]core.LocID{sh.keyLoc(slot), sh.valLoc(slot), sh.chkLoc(slot)}
	vals := [recWords]core.Val{r.key, r.val, r.chk(slot, sh.epoch)}
	for i, l := range locs {
		if err := t.LStore(l, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// gpf issues a Global Persistent Flush on behalf of shard sh and charges
// its cost to every other shard: a GPF drains every cache in the system,
// so the whole fabric stalls for its duration regardless of which shard
// triggered it. sh itself is charged by its caller's elapsed-span
// accounting, which contains this call. When the GPF serves churn work
// (crash recovery, bucket migration) rather than client traffic, the
// cross-charge is classified as churn on the stalled shards too, keeping
// the placement-skew metric clean of it.
//
//cxl0:locked mu
func (s *Store) gpf(sh *shard, t *memsim.Thread, churn bool) error {
	start := s.cluster.NowNS()
	if err := t.GPF(); err != nil {
		if errors.Is(err, memsim.ErrUnreachable) {
			// A GPF must drain every cache in the fabric, so one
			// partitioned machine anywhere blocks commits cluster-wide —
			// the blast radius the ranged strategies avoid.
			return fmt.Errorf("%w: global persistent flush blocked: %v", ErrUnavailable, err)
		}
		return err
	}
	cost := s.cluster.NowNS() - start
	for _, other := range s.shards {
		if other != sh {
			other.busyNS += cost
			if churn {
				other.churnNS += cost
			}
		}
	}
	return nil
}

// rflushSlots persists shard sh's log slots [first, limit) with one ranged
// flush over exactly those records' lines. Unlike gpf there is no
// cross-shard charge: a ranged flush involves only the shard's own device,
// so the rest of the fabric keeps running and the cost lands on sh alone
// (via the caller's elapsed-span accounting).
func (s *Store) rflushSlots(sh *shard, t *memsim.Thread, first, limit int) error {
	if first >= limit {
		return nil
	}
	return t.RFlushRange(sh.keyLoc(first), (limit-first)*recWords)
}

// flushPending makes shard sh's open batch durable — one GPF or one ranged
// flush over the batch's log lines, with the epoch-guarded re-issue — and
// advances the acked log position, without any client-acknowledgment
// bookkeeping. commitLocked layers that on top; bucket migration calls
// this directly for its copied records (which are not client writes).
//
//cxl0:locked mu
func (s *Store) flushPending(sh *shard) error {
	if sh.pending == 0 {
		return nil
	}
	if sh.down {
		return ErrShardDown
	}
	if sh.partitioned {
		return ErrUnavailable
	}
	t := sh.thread()
	fstart := s.cluster.NowNS()
	for {
		epoch := s.cluster.Epoch(sh.machine)
		if epoch != sh.batchE {
			// The shard machine crashed and recovered since the batch
			// opened: the LStored records may have been destroyed while
			// cached remotely. Records are unacknowledged, so re-issuing
			// them is sound.
			for slot := len(sh.log) - sh.pending; slot < len(sh.log); slot++ {
				if err := lstoreRecord(t, sh, slot, sh.log[slot]); err != nil {
					return err
				}
			}
			sh.batchE = epoch
			continue
		}
		var err error
		if s.cfg.Strategy == RangedCommit {
			err = s.rflushSlots(sh, t, len(sh.log)-sh.pending, len(sh.log))
		} else {
			err = s.gpf(sh, t, s.migrating || s.compacting)
		}
		if err != nil {
			return err
		}
		if s.cluster.Epoch(sh.machine) == epoch {
			break
		}
	}
	// Attribute the flush cost to the committed client records' buckets,
	// evenly — so the rebalancer sees a bucket's true load including its
	// share of commit cost, not just its write path. Migration flushes
	// (markers and copies) attribute nothing: their cost is churn.
	var batchKeys []core.Val
	for slot := len(sh.log) - sh.pending; slot < len(sh.log); slot++ {
		if r := sh.log[slot]; !r.move && !r.copied {
			batchKeys = append(batchKeys, r.key)
		}
	}
	if cost := s.cluster.NowNS() - fstart; cost > 0 && len(batchKeys) > 0 {
		per := cost / float64(len(batchKeys))
		for _, k := range batchKeys {
			s.bucketWin[s.bucketOf(k)] += per
		}
	}
	flushed := sh.pending
	sh.acked = len(sh.log)
	sh.pending = 0
	s.commits++
	if s.rec != nil {
		// The commit event carries the client acks this flush vouches
		// for — commitLocked's acknowledgment loop covers exactly the
		// batchKeys records, and migration-copy flushes carry 0.
		s.obsCommitAcked += uint64(len(batchKeys))
		s.rec.Commit(sh.id, fstart, s.cluster.NowNS(), flushed, len(batchKeys), 1, 0)
	}
	return nil
}

// commitLocked flushes shard sh's open batch (GroupCommit or RangedCommit)
// and acknowledges its client writes. On the pipelined path it is the
// drain point: every in-flight flight retires (in batch order, stalling
// the shard as needed) before the open batch commits, so after a
// successful return the acked-watermark covers the whole log.
func (s *Store) commitLocked(sh *shard) error {
	if s.pipelined() {
		s.drainFlights(sh)
	}
	if sh.pending == 0 {
		return nil
	}
	first := len(sh.log) - sh.pending
	if err := s.flushPending(sh); err != nil {
		return err
	}
	now := s.cluster.NowNS()
	for slot := first; slot < len(sh.log); slot++ {
		if r := sh.log[slot]; !r.move && !r.copied {
			sh.writeLat = append(sh.writeLat, now-r.startNS)
			sh.issueLat = append(sh.issueLat, r.issueNS-r.startNS)
			s.ackedWrites++
			if s.rec != nil {
				s.rec.WriteLatency(now-r.startNS, r.issueNS-r.startNS)
			}
		}
	}
	if s.cache != nil && s.pipelined() {
		// The commit moved the acked-watermark past these records: reads
		// may have cached their keys' shadow (pre-batch acked) state,
		// which just stopped being the visible state. Snoop them with the
		// shadow they die with. (With the pipeline off there is no shadow
		// to have cached — the blocking commit changes no visible value —
		// so the cached copies stay valid.)
		for slot := first; slot < len(sh.log); slot++ {
			if r := sh.log[slot]; !r.move {
				s.cache.invalidateKeyLocked(r.key)
			}
		}
	}
	// The watermark caught up with the log tip; no read needs shadow
	// state anymore.
	sh.shadow = nil
	return nil
}

// append routes one write (val 0 = tombstone) to shard sh.
//
//cxl0:locked mu
func (s *Store) append(sh *shard, key, val core.Val) (Ack, error) {
	if s.frontDown {
		return Ack{}, ErrFrontDown
	}
	if sh.down {
		return Ack{}, ErrShardDown
	}
	if sh.partitioned {
		return Ack{}, ErrUnavailable
	}
	// Count past the denial checks: Metrics.Puts/Deletes count operations
	// served, and a write denied above was never served.
	if val == 0 {
		s.deletes++
	} else {
		s.puts++
	}
	if s.pipelined() {
		s.retireReady(sh)
	}
	// Auto-compaction runs before this append's span stamp: compactLocked
	// charges its own time as churn, and charging it inside the append's
	// elapsed span too would double-count it as traffic — including when
	// the append is one record of an Apply batch (see TestAutoCompact
	// MidBatchAccounting).
	if s.cfg.CompactAtFill > 0 && len(sh.log) >= s.compactThreshold(sh.cap) {
		if _, err := s.compactLocked(sh); err != nil {
			return Ack{}, err
		}
	}
	if len(sh.log) >= sh.cap {
		return Ack{}, &ShardFullError{Shard: sh.id, Appended: len(sh.log), Capacity: sh.cap, Need: 1}
	}
	slot := len(sh.log)
	start := s.cluster.NowNS()
	r := rec{key: key, val: val, startNS: start}
	if err := s.writeRecord(sh, slot, r); err != nil {
		return Ack{}, err
	}
	r.issueNS = s.cluster.NowNS()
	if s.pipelined() {
		// Record the key's acked-watermark state before the index moves
		// past it: reads keep serving that state until this record's
		// batch retires.
		s.shadowTrack(sh, key, slot)
	}
	sh.log = append(sh.log, r)
	if val == 0 {
		delete(sh.index, key)
	} else {
		sh.index[key] = slot
	}
	if s.cache != nil {
		// Snoop the front end's cached copy inline with the index update:
		// the key's visible state just changed (or, under the pipeline,
		// reads now serve its shadow state, which retirement will snoop in
		// turn — see docs/caching.md).
		s.cache.invalidateKeyLocked(key)
	}
	// The write path's cost is this key's bucket's load; a batch commit
	// triggered below is shared cost, attributed to the whole batch's
	// buckets by flushPending.
	s.bucketWin[s.bucketOf(key)] += s.cluster.NowNS() - start
	durable := s.cfg.Strategy.Durable()
	if durable {
		now := s.cluster.NowNS()
		sh.acked = len(sh.log)
		sh.writeLat = append(sh.writeLat, now-start)
		sh.issueLat = append(sh.issueLat, r.issueNS-start)
		s.ackedWrites++
		if s.rec != nil {
			s.rec.WriteLatency(now-start, r.issueNS-start)
		}
	} else if sh.pending >= s.cfg.Batch {
		if s.pipelined() {
			// The pipelined commit point: close the append's span first
			// (the flush must not land on the busy clock), then issue
			// the batch as an in-flight flight. The filling write
			// returns unacknowledged — its ack fires at retirement.
			sh.busyNS += s.cluster.NowNS() - start
			if err := s.issueFlight(sh); err != nil {
				return Ack{}, err
			}
			return Ack{Shard: sh.id, Seq: slot, Durable: false}, nil
		}
		if err := s.commitLocked(sh); err != nil {
			return Ack{}, err
		}
		durable = true
	}
	sh.busyNS += s.cluster.NowNS() - start
	return Ack{Shard: sh.id, Seq: slot, Durable: durable}, nil
}

// Put maps key to val (val >= 1). The write is acknowledged durable per
// the strategy's ack discipline (see Ack.Durable).
func (s *Store) Put(key, val core.Val) (Ack, error) {
	if key < 0 || val < 1 {
		return Ack{}, ErrBadKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[s.shardOf(key)]
	if s.rec == nil {
		return s.append(sh, key, val)
	}
	start := s.cluster.NowNS()
	ackedW, commitW := s.ackedWrites, s.obsCommitAcked
	ack, err := s.append(sh, key, val)
	s.rec.OpSpan(obs.OpPut, sh.id, start, s.cluster.NowNS(),
		1, s.spanAcked(ackedW, commitW), ack.Durable)
	return ack, err
}

// spanAcked returns the client acks an op span should carry: the acks
// accumulated since the captured counters, minus those already carried
// on commit events emitted within the op. Per-operation strategies ack
// on the span; batched strategies route every ack through commit events
// (including batch-full commits an append triggers mid-op), so summing
// Acked over a store's op-span, commit and recover events always equals
// Metrics.Acked.
func (s *Store) spanAcked(ackedBefore, commitBefore uint64) int {
	return int(s.ackedWrites-ackedBefore) - int(s.obsCommitAcked-commitBefore)
}

// Delete removes key by appending a tombstone record.
func (s *Store) Delete(key core.Val) (Ack, error) {
	if key < 0 {
		return Ack{}, ErrBadKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[s.shardOf(key)]
	if s.rec == nil {
		return s.append(sh, key, 0)
	}
	start := s.cluster.NowNS()
	ackedW, commitW := s.ackedWrites, s.obsCommitAcked
	ack, err := s.append(sh, key, 0)
	s.rec.OpSpan(obs.OpDelete, sh.id, start, s.cluster.NowNS(),
		1, s.spanAcked(ackedW, commitW), ack.Durable)
	return ack, err
}

// Get returns the value mapped to key. The index probe is free (a
// volatile DRAM hashtable); the value load pays the simulated cost of
// reading the shard's memory.
func (s *Store) Get(key core.Val) (core.Val, bool, error) {
	if key < 0 {
		return 0, false, ErrBadKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rec == nil {
		return s.getLocked(key)
	}
	shard := s.shardOf(key)
	start := s.cluster.NowNS()
	v, ok, err := s.getLocked(key)
	n := 0
	if ok {
		n = 1
	}
	s.rec.OpSpan(obs.OpGet, shard, start, s.cluster.NowNS(), n, 0, false)
	return v, ok, err
}

// getLocked serves one point lookup with the store lock held — the path
// Get and MultiGet share.
func (s *Store) getLocked(key core.Val) (core.Val, bool, error) {
	sh := s.shards[s.shardOf(key)]
	if s.frontDown {
		return 0, false, ErrFrontDown
	}
	if sh.down {
		return 0, false, ErrShardDown
	}
	if sh.partitioned {
		return 0, false, ErrUnavailable
	}
	// Count past the denial checks: Metrics.Gets counts operations
	// served, and a denied read must neither count nor dilute the cache
	// hit rate's denominator.
	s.gets++
	if s.pipelined() {
		s.retireReady(sh)
	}
	slot, ok := sh.index[key]
	if s.pipelined() {
		// Watermark gate: a key overwritten past the acked-watermark is
		// served from its shadow (last acked) state — a read never
		// observes a value a crash could still take back.
		if e, shadowed := sh.shadow[key]; shadowed {
			slot, ok = e.slot, e.exists
		}
	}
	if !ok {
		return 0, false, nil
	}
	if s.cache != nil {
		if v, hit := s.cache.lookupLocked(key); hit {
			// Served from the front end's local copy: no simulated Load,
			// no shard busy time — this read never reached the fabric. The
			// copy is coherent by construction (every state change above
			// snooped it; see cache.go), so it equals what the Load below
			// would return.
			if s.rec != nil {
				s.rec.CacheHit(sh.id, s.cluster.NowNS())
			}
			s.observeReadLocked(sh, key)
			return v, true, nil
		}
	}
	start := s.cluster.NowNS()
	v, err := sh.thread().Load(sh.valLocOf(slot))
	span := s.cluster.NowNS() - start
	sh.busyNS += span
	s.bucketWin[s.bucketOf(key)] += span
	if err != nil {
		return 0, false, err
	}
	if s.cache != nil {
		s.cache.fillLocked(key, v, false)
		if s.rec != nil {
			s.rec.CacheMiss(sh.id, s.cluster.NowNS())
		}
		s.observeReadLocked(sh, key)
	}
	return v, true, nil
}

// MultiGet resolves a set of keys under one lock acquisition, returning
// one Lookup per key in input order. Each key pays the same simulated
// read cost as a Get; the amortization is the routing (one traversal of
// the service instead of one call per key). A key routed to a down shard
// fails the whole call, like Get. Keys routed to a *partitioned* shard
// degrade gracefully instead: their lookups come back Found == false and
// the call returns the other keys' results together with a
// *PartialResultError naming the unreachable shards.
func (s *Store) MultiGet(keys []core.Val) ([]Lookup, error) {
	for _, k := range keys {
		if k < 0 {
			return nil, ErrBadKey
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frontDown {
		return nil, ErrFrontDown
	}
	// Served-only counting, like getLocked: a denied MultiGet never ran.
	s.multiGets++
	var start float64
	if s.rec != nil {
		start = s.cluster.NowNS()
	}
	out := make([]Lookup, 0, len(keys))
	unavailable := make([]bool, len(s.shards))
	missing := 0
	for _, k := range keys {
		if sh := s.shards[s.shardOf(k)]; sh.partitioned && !sh.down {
			// Not counted in Gets: the placeholder lookup was denied by
			// the partition, not served.
			unavailable[sh.id] = true
			missing++
			out = append(out, Lookup{Key: k})
			continue
		}
		v, ok, err := s.getLocked(k)
		if err != nil {
			return nil, err
		}
		out = append(out, Lookup{Key: k, Val: v, Found: ok})
	}
	if s.rec != nil {
		s.rec.OpSpan(obs.OpMultiGet, -1, start, s.cluster.NowNS(), len(out)-missing, 0, false)
	}
	if missing > 0 {
		return out, &PartialResultError{Op: "multiget", Unavailable: shardList(unavailable), Missing: missing}
	}
	return out, nil
}

// shardList converts a membership mask into the ascending index list a
// PartialResultError carries.
func shardList(mask []bool) []int {
	var out []int
	for i, hit := range mask {
		if hit {
			out = append(out, i)
		}
	}
	return out
}

// Apply applies the batch's puts and deletes in order, then commits every
// shard the batch touched, acknowledging the whole batch with one Ack at
// that commit point: on success every record is durable (Ack.Durable ==
// true) regardless of strategy. Under GroupCommit/RangedCommit the client
// batch becomes the commit unit — one flush per touched shard — instead
// of acking at Config.Batch boundaries; under the per-operation
// strategies every record was durable as it was written and the trailing
// commit is a no-op. Apply is not a transaction: on error a prefix of the
// batch may already be applied. Ack.Shard/Seq identify the batch's last
// appended record.
func (s *Store) Apply(b *Batch) (Ack, error) {
	if b == nil || b.Len() == 0 {
		return Ack{Shard: -1, Seq: -1, Durable: true}, nil
	}
	for _, op := range b.ops {
		if op.Key < 0 || (!op.IsDelete() && op.Val < 1) {
			return Ack{}, ErrBadKey
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	if s.rec == nil {
		return s.applyLocked(b)
	}
	start := s.cluster.NowNS()
	ackedW, commitW := s.ackedWrites, s.obsCommitAcked
	ack, err := s.applyLocked(b)
	s.rec.OpSpan(obs.OpApply, -1, start, s.cluster.NowNS(),
		b.Len(), s.spanAcked(ackedW, commitW), ack.Durable)
	return ack, err
}

// applyLocked is Apply's body with the store lock held and the batch
// validated.
func (s *Store) applyLocked(b *Batch) (Ack, error) {
	touched := make([]bool, len(s.shards))
	var last Ack
	for bi, op := range b.ops {
		if s.applyHook != nil {
			s.applyHook(bi)
		}
		val := op.Val
		if op.IsDelete() {
			val = 0 // the tombstone value
		}
		sh := s.shards[s.shardOf(op.Key)]
		ack, err := s.append(sh, op.Key, val)
		if err != nil {
			return Ack{}, err
		}
		touched[sh.id] = true
		last = ack
	}
	// The batch's commit point: flush every touched shard's open batch
	// (which may also cover earlier writes pending on those shards — a
	// commit always acknowledges everything up to it).
	for id, hit := range touched {
		if !hit {
			continue
		}
		sh := s.shards[id]
		start := s.cluster.NowNS()
		err := s.commitLocked(sh)
		sh.busyNS += s.cluster.NowNS() - start
		if err != nil {
			return Ack{}, err
		}
	}
	return Ack{Shard: last.Shard, Seq: last.Seq, Durable: true}, nil
}

// Scan returns up to limit live pairs with lo <= key < hi, in key order,
// loading each value from its shard.
func (s *Store) Scan(lo, hi core.Val, limit int) ([]Pair, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frontDown {
		return nil, ErrFrontDown
	}
	// Served-only counting, like getLocked: a denied Scan never ran.
	s.scans++
	var sstart float64
	if s.rec != nil {
		sstart = s.cluster.NowNS()
	}
	type cand struct {
		key  core.Val
		slot int
		sh   *shard
	}
	var cands []cand
	unavailable := make([]bool, len(s.shards))
	missing := 0
	for _, sh := range s.shards {
		if s.pipelined() && !sh.down && !sh.partitioned {
			s.retireReady(sh)
		}
		for k, slot := range sh.index { //cxl0:order-insensitive — candidates sorted by key below
			if k >= lo && k < hi {
				// A down shard only fails the scan when it actually holds
				// keys in range; an idle down shard costs nothing. A
				// partitioned shard degrades the scan to a partial result
				// instead: its data is intact behind the partition, so
				// skipping it is safe and the typed error says what is
				// missing.
				if sh.down {
					return nil, ErrShardDown
				}
				if sh.partitioned {
					unavailable[sh.id] = true
					missing++
					continue
				}
				// Watermark gate: serve the key's last acked state — or
				// skip it entirely when it had none (its first write is
				// still in flight).
				if e, shadowed := sh.shadow[k]; shadowed {
					if e.exists {
						cands = append(cands, cand{key: k, slot: e.slot, sh: sh})
					}
					continue
				}
				cands = append(cands, cand{key: k, slot: slot, sh: sh})
			}
		}
		// Keys deleted past the watermark left the index but their acked
		// state is still readable — the shadow carries it.
		for k, e := range sh.shadow { //cxl0:order-insensitive — candidates sorted by key below
			if k < lo || k >= hi || !e.exists || sh.down || sh.partitioned {
				continue
			}
			if _, live := sh.index[k]; live {
				continue
			}
			cands = append(cands, cand{key: k, slot: e.slot, sh: sh})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	if limit > 0 && len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]Pair, 0, len(cands))
	for _, c := range cands {
		if s.cache != nil {
			if v, hit := s.cache.lookupLocked(c.key); hit {
				if s.rec != nil {
					s.rec.CacheHit(c.sh.id, s.cluster.NowNS())
				}
				out = append(out, Pair{Key: c.key, Val: v})
				continue
			}
		}
		start := s.cluster.NowNS()
		v, err := c.sh.thread().Load(c.sh.valLocOf(c.slot))
		span := s.cluster.NowNS() - start
		c.sh.busyNS += span
		s.bucketWin[s.bucketOf(c.key)] += span
		if err != nil {
			return nil, err
		}
		if s.cache != nil {
			s.cache.fillLocked(c.key, v, false)
			if s.rec != nil {
				s.rec.CacheMiss(c.sh.id, s.cluster.NowNS())
			}
		}
		out = append(out, Pair{Key: c.key, Val: v})
	}
	if s.pred != nil && len(out) > 0 {
		// Scan-run prefetch: warm the keys just past the scanned range
		// ahead of a continuing sweep (workload E's scans walk forward).
		last := out[len(out)-1].Key
		ahead := make([]core.Val, 0, scanRunAhead)
		for i := core.Val(1); i <= scanRunAhead; i++ {
			ahead = append(ahead, last+i)
		}
		s.prefetchLocked(ahead)
	}
	s.scannedPairs += uint64(len(out))
	if s.rec != nil {
		s.rec.OpSpan(obs.OpScan, -1, sstart, s.cluster.NowNS(), len(out), 0, false)
	}
	if missing > 0 {
		return out, &PartialResultError{Op: "scan", Unavailable: shardList(unavailable), Missing: missing}
	}
	return out, nil
}

// Sync commits every shard's open batch (GroupCommit or RangedCommit). A
// no-op under the per-operation strategies.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frontDown {
		return ErrFrontDown
	}
	for _, sh := range s.shards {
		if sh.pending == 0 && len(sh.flights) == 0 {
			continue
		}
		start := s.cluster.NowNS()
		err := s.commitLocked(sh)
		sh.busyNS += s.cluster.NowNS() - start
		if err != nil {
			return err
		}
	}
	return nil
}

// Crash fails shard i's machine. Operations routed to the shard return
// ErrShardDown until Recover.
func (s *Store) Crash(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashLocked(i)
}

// crashLocked is Crash without the lock — shared with the migration test
// hook, which runs while the store lock is already held.
func (s *Store) crashLocked(i int) {
	sh := s.shards[i]
	s.cluster.Crash(sh.machine)
	sh.down = true
	if s.pipelined() {
		// Fold in-flight flights back into the pending tail: their
		// records were flushed to the medium at issue, so Recover's scan
		// salvages them like any recovered pending batch — the acked
		// prefix is exactly [0, acked). The flight queue, flush lane and
		// watermark shadow are volatile bookkeeping and die with the
		// crash.
		sh.pending = len(sh.log) - sh.acked
		sh.flights = nil
		sh.laneEnd = 0
		sh.shadow = nil
	}
	if s.cache != nil {
		// Reads may have cached visible-but-unacknowledged values this
		// crash just destroyed; recovery decides what survives, so the
		// front end's copies of the shard's keys go now.
		s.cache.invalidateMatchLocked(func(k core.Val) bool { return s.shardOf(k) == i })
	}
	if s.rec != nil {
		s.rec.Crash(i, s.cluster.NowNS())
	}
}

// Partition cuts shard i's machine off the fabric. Operations routed to
// the shard return ErrUnavailable (fan-out reads degrade to partial
// results) until Heal; under the GPF-based strategies no shard of this
// store can commit meanwhile, because a global flush must drain the
// partitioned machine's cache too. Nothing is lost — caches, memory and
// the log stay intact, so Heal restores service without recovery.
func (s *Store) Partition(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[i]
	sh.partitioned = true
	s.cluster.Partition(sh.machine)
	if s.cache != nil {
		// A partitioned owner cannot snoop the front end's copies, so the
		// front end drops them instead of holding lines the fabric cannot
		// revoke (see docs/caching.md).
		s.cache.invalidateMatchLocked(func(k core.Val) bool { return s.shardOf(k) == i })
	}
	if s.rec != nil {
		s.rec.Partition(i, s.cluster.NowNS())
	}
}

// Heal reconnects shard i to the fabric, restoring service immediately.
// A no-op for a shard that is not partitioned.
func (s *Store) Heal(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[i]
	if !sh.partitioned {
		return
	}
	sh.partitioned = false
	s.cluster.Heal(sh.machine)
	if s.cache != nil {
		// Conservative partition-transition invalidation, mirroring
		// Partition's: service resumes from the authoritative medium, not
		// from copies cached across the outage.
		s.cache.invalidateMatchLocked(func(k core.Val) bool { return s.shardOf(k) == i })
	}
	if s.rec != nil {
		s.rec.Heal(i, s.cluster.NowNS())
	}
}

// Degrade sets shard i's device latency multiplier: every operation
// served by the shard's memory charges factor× the modeled cost (factor
// 1 restores full speed; below 1 clamps to 1). Pure cost, no semantic
// effect — the shard keeps serving, just slower, and its busy time grows
// accordingly.
func (s *Store) Degrade(i int, factor float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[i]
	s.cluster.Degrade(sh.machine, factor)
	if s.rec != nil {
		if factor < 1 {
			factor = 1
		}
		s.rec.Degrade(i, factor, s.cluster.NowNS())
	}
}

// Health reports each shard's fault state in shard order.
func (s *Store) Health() []ShardHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardHealth, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardHealth{
			Shard:         i,
			Down:          sh.down,
			Partitioned:   sh.partitioned,
			DegradeFactor: s.cluster.DegradeFactor(sh.machine),
		}
	}
	return out
}

// replayRecord applies one log record to an index under the move-marker
// wipe rule: a marker for bucket b supersedes every earlier record of b
// in the log — either the bucket moved away (move-out), or it moved
// (back) in and the copies following the marker carry its authoritative
// state (move-in). Without the wipe, a key deleted while its bucket lived
// elsewhere could resurrect from a pre-migration record. onlyBucket >= 0
// restricts the replay to that bucket's records (the redo re-index path);
// -1 replays everything (recovery's full index rebuild). Both crash-path
// call sites must agree on these semantics exactly, which is why they
// share this one implementation.
func (s *Store) replayRecord(index map[core.Val]int, slot int, r rec, onlyBucket int) {
	if r.move {
		b := int(r.key)
		if onlyBucket >= 0 && b != onlyBucket {
			return
		}
		for k := range index { //cxl0:order-insensitive — uniform delete, order-free
			if s.bucketOf(k) == b {
				delete(index, k)
			}
		}
		return
	}
	if onlyBucket >= 0 && s.bucketOf(r.key) != onlyBucket {
		return
	}
	if r.val == 0 {
		delete(index, r.key)
	} else {
		index[r.key] = slot
	}
}

// Recover restarts shard i after a crash: it resolves the shard's
// snapshot-epoch record (the compaction commit record — MStored, so its
// two slots are unconditionally durable and the valid one with the
// highest epoch is authoritative), revalidates the committed snapshot,
// scans the shard's log tail from the surviving state, truncates at the
// first incompletely persisted record, rebuilds the volatile index from
// snapshot plus scan, drops any unacknowledged batched writes, and
// re-persists the recovered log prefix — with one GPF, or under
// RangedCommit with one ranged flush over the shard's own recovered log
// lines, so even recovery stays off the rest of the fabric. Bucket-
// migration markers found in the log drive the wipe, redo and ownership
// rules that keep the shard map crash-consistent (see migrate.go and
// docs/rebalancing.md).
func (s *Store) Recover(i int) (RecoveryStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frontDown {
		// Non-colocated workers are homed on the front end; nothing can
		// run until it is back. RecoverFront recovers every shard's state
		// itself.
		return RecoveryStats{}, fmt.Errorf("%w: recover shard %d via RecoverFront", ErrFrontDown, i)
	}
	sh := s.shards[i]
	if !sh.down {
		return RecoveryStats{Shard: i}, nil
	}
	if sh.partitioned {
		return RecoveryStats{}, fmt.Errorf("%w: shard %d cannot recover while partitioned; heal first", ErrUnavailable, i)
	}
	s.cluster.Recover(sh.machine)
	if err := s.spawnThreads(sh); err != nil {
		return RecoveryStats{}, err
	}
	stats, err := s.recoverShard(sh)
	if err != nil {
		return RecoveryStats{}, err
	}
	sh.down = false
	return stats, nil
}

// recoverShard is the recovery core shared by Recover (a crashed shard
// machine, freshly restarted) and RecoverFront (a crashed front-end
// machine whose cache held the shards' open batches — see failover.go):
// resolve the epoch record, revalidate the snapshot, scan the log,
// truncate, re-persist, rebuild the index, redo lost migration flips and
// salvage the durable pending tail. The caller has already restarted
// whatever machine crashed and respawned the shard's workers; clearing
// sh.down (when set) is also the caller's job.
//
//cxl0:locked mu
func (s *Store) recoverShard(sh *shard) (RecoveryStats, error) {
	i := sh.id
	t := sh.thread()
	appended := len(sh.log)
	ackedBefore := sh.acked
	start := s.cluster.NowNS()

	// Resolve the snapshot-epoch record from the medium. It was MStored —
	// persistent the moment it was written — so it must agree with the
	// front-end's committed view; any divergence means the compaction
	// commit record was lost, which no crash can cause.
	epoch, snapLen, err := s.readEpochRecord(sh, t)
	if err != nil {
		return RecoveryStats{}, err
	}
	if epoch != sh.epoch || snapLen != len(sh.snap) {
		return RecoveryStats{}, fmt.Errorf(
			"%w: shard %d snapshot-epoch record reads (epoch %d, %d records), committed state is (epoch %d, %d records)",
			ErrDurabilityViolation, i, epoch, snapLen, sh.epoch, len(sh.snap))
	}

	// Revalidate the committed snapshot: every record was durable at the
	// epoch commit, so all snapLen of them must validate in the snapshot
	// domain under the committed epoch.
	snapScanned := make([]rec, 0, snapLen)
	for slot := 0; slot < snapLen; slot++ {
		k, err := t.Load(sh.snapKeyLoc(epoch, slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		v, err := t.Load(sh.snapValLoc(epoch, slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		chk, err := t.Load(sh.snapChkLoc(epoch, slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		if chk != snapChkOf(slot, k, v, epoch) {
			return RecoveryStats{}, fmt.Errorf(
				"%w: shard %d snapshot record %d of %d (epoch %d) failed validation",
				ErrDurabilityViolation, i, slot, snapLen, epoch)
		}
		snapScanned = append(snapScanned, rec{key: k, val: v})
	}

	// Scan: accept log records until the first one whose checksum does not
	// match its content in either domain (client records validate under
	// chkOf, move markers under moveChkOf) for the committed epoch — a
	// pre-compaction leftover carries an older epoch's checksum and cuts
	// the scan exactly where the reclaimed log ends. Acknowledged records
	// are all durable, so the cut can only fall in the unacknowledged
	// tail.
	cut := 0
	scanned := make([]rec, 0, appended)
scan:
	for slot := 0; slot < appended; slot++ {
		k, err := t.Load(sh.keyLoc(slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		v, err := t.Load(sh.valLoc(slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		chk, err := t.Load(sh.chkLoc(slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		r := rec{key: k, val: v}
		switch chk {
		case chkOf(slot, k, v, epoch):
		case moveChkOf(slot, k, v, epoch):
			r.move = true
		default:
			break scan
		}
		scanned = append(scanned, r)
		cut = slot + 1
	}

	// A cut inside the acknowledged prefix means an acknowledged — and
	// therefore durable — record failed to validate. No crash can cause
	// that while the strategies keep their contract, so it is reported as
	// a durability violation rather than silently truncated away.
	if cut < ackedBefore {
		return RecoveryStats{}, fmt.Errorf(
			"%w: shard %d validated only %d of %d acknowledged records",
			ErrDurabilityViolation, i, cut, ackedBefore)
	}

	// Truncate: invalidate the checksum words of the lost tail so a
	// half-persisted old record can never validate once its slot is
	// reused in a later incarnation.
	for slot := cut; slot < appended; slot++ {
		if err := t.MStore(sh.chkLoc(slot), 0); err != nil {
			return RecoveryStats{}, err
		}
	}

	// Re-persist: the scan may have read records that survived only in a
	// surviving machine's cache, and one flush makes the recovered prefix
	// durable again so it also survives the next crash. Only the slots
	// beyond the acknowledged prefix can need this: acknowledged records
	// were already persistent before the crash and are never overwritten
	// in place, so when the cut equals the acked prefix (always, under
	// the per-operation strategies) there is nothing to re-persist. The
	// truncated tail's checksums were MStored, which is persistent by
	// itself. Under RangedCommit the flush is a ranged one over exactly
	// the shard's own unacknowledged survivors; GroupCommit keeps the
	// fabric-wide GPF.
	if cut > ackedBefore {
		if s.cfg.Strategy == RangedCommit {
			if err := s.rflushSlots(sh, t, ackedBefore, cut); err != nil {
				return RecoveryStats{}, err
			}
		} else {
			if err := s.gpf(sh, t, true); err != nil {
				return RecoveryStats{}, err
			}
		}
	}

	// Classify orphaned move-out markers before rebuilding anything: a
	// client record of the marker's bucket *after* the marker proves this
	// shard kept serving the bucket — the migration failed in phase 2
	// with its commit record durable but the map never flipped, and
	// writes acknowledged since supersede the destination's (now stale)
	// copies. Such a marker has no authority at all: it must neither
	// wipe this log's earlier bucket records during the index rebuild
	// (they are still the live state) nor redo the flip (that would
	// resurrect the stale copies over acknowledged data). In the genuine
	// lost-flip case nothing can follow the marker: the migration holds
	// the store lock from commit point to flip.
	superseded := make([]bool, len(scanned))
	for idx, r := range scanned {
		if !r.move {
			continue
		}
		ver, out, _ := decodeMove(r.val, len(s.shards))
		if ver > s.moveSeq {
			// Redundant today — every scanned marker was written by this
			// Store instance under the lock, so ver <= moveSeq always —
			// but a future front-end-restart path (ROADMAP) that rebuilds
			// the map from shard logs must treat every logged version as
			// spent, and this loop is where that contract lives.
			s.moveSeq = ver
		}
		if !out {
			continue
		}
		b := int(r.key)
		for _, later := range scanned[idx+1:] {
			if !later.move && s.bucketOf(later.key) == b {
				superseded[idx] = true
				break
			}
		}
	}

	// Rebuild the index from what the scans actually read: the snapshot's
	// records first (they predate every log record — compaction folded
	// them before the reclaimed log restarted), then the log replay under
	// the move-marker wipe rule (see replayRecord); superseded markers are
	// inert. A marker's wipe covers the snapshot-derived entries of its
	// bucket too, exactly as it covers earlier log records.
	sh.index = map[core.Val]int{}
	for slot, r := range snapScanned {
		sh.index[r.key] = sh.cap + slot
	}
	sh.snap = snapScanned
	for slot, r := range scanned {
		if superseded[slot] {
			continue
		}
		s.replayRecord(sh.index, slot, r, -1)
	}

	// Redo: a durable move-out record is a migration's commit point. One
	// newer than the applied map state means the flip was lost between
	// the commit point and the in-memory map update; complete it now so
	// ownership is resolved from the log, deterministically.
	for idx, r := range scanned {
		if !r.move || superseded[idx] {
			continue
		}
		b := int(r.key)
		ver, out, to := decodeMove(r.val, len(s.shards))
		if !out || ver <= s.bucketVer[b] {
			continue
		}
		s.shardMap[b] = to
		s.bucketVer[b] = ver
		// Reindex the destination even when it is down: the copies the
		// flip lands on are durable (committed before the move-out), so
		// these mirror-derived entries are exactly what its own Recover
		// will rebuild — and until then they let Scan see that a down
		// shard holds keys in range instead of silently omitting them.
		s.reindexBucket(s.shards[to], b)
	}

	// Ownership sweep: drop index entries for buckets this shard no
	// longer serves — records that migrated away, and orphaned copies an
	// aborted inbound migration left in the log.
	for k := range sh.index { //cxl0:order-insensitive — uniform delete, order-free
		if s.shardOf(k) != sh.id {
			delete(sh.index, k)
		}
	}

	// Pending batched records occupy the log's tail; the client writes
	// among those the scan reached were recovered (and are durable after
	// the flush above), so they count as acknowledged — at a submit-to-
	// durable latency spanning the crash. Everything beyond the cut is
	// discarded; the durability check above already guaranteed the cut is
	// at or past the acknowledged prefix, so the lost records are exactly
	// the unacknowledged tail.
	droppedPending := 0
	salvaged := 0
	pendingStart := appended - sh.pending
	now := s.cluster.NowNS()
	for slot := pendingStart; slot < cut; slot++ {
		if r := sh.log[slot]; !r.move && !r.copied {
			sh.writeLat = append(sh.writeLat, now-r.startNS)
			sh.issueLat = append(sh.issueLat, r.issueNS-r.startNS)
			s.ackedWrites++
			salvaged++
			if s.rec != nil {
				s.rec.WriteLatency(now-r.startNS, r.issueNS-r.startNS)
			}
		}
	}
	for slot := cut; slot < appended; slot++ {
		// Lost migration markers and copies are not client writes; only
		// dropped client records count, mirroring the salvage loop above.
		if r := sh.log[slot]; !r.move && !r.copied {
			droppedPending++
		}
	}
	sh.log = sh.log[:cut]
	for slot := range sh.log {
		sh.log[slot].key = scanned[slot].key
		sh.log[slot].val = scanned[slot].val
	}
	sh.acked = cut
	sh.pending = 0

	if s.cache != nil {
		// Recovery truncated the unacknowledged tail and rebuilt the
		// shard's visible state; any copy cached from the pre-crash state
		// is suspect. (crashLocked already snooped the shard's keys, but
		// recoverShard also runs crash-free via RecoverFront, and a
		// migration redo above may have flipped buckets — sweep again.)
		s.cache.invalidateMatchLocked(func(k core.Val) bool { return s.shardOf(k) == sh.id })
	}

	simNS := s.cluster.NowNS() - start
	sh.busyNS += simNS
	sh.churnNS += simNS
	s.dropped += uint64(droppedPending)
	s.recoveries++
	s.recoveryNS = append(s.recoveryNS, simNS)
	if s.rec != nil {
		s.rec.Recover(i, start, s.cluster.NowNS(), cut, salvaged, appended-cut)
	}
	return RecoveryStats{
		Shard:          i,
		Recovered:      cut,
		Snapshot:       snapLen,
		Lost:           appended - cut,
		DroppedPending: droppedPending,
		SimNS:          simNS,
	}, nil
}

// Metrics returns a snapshot of the store's counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Puts:            s.puts,
		Gets:            s.gets,
		Deletes:         s.deletes,
		Scans:           s.scans,
		ScannedPairs:    s.scannedPairs,
		MultiGets:       s.multiGets,
		Batches:         s.batches,
		Commits:         s.commits,
		Acked:           s.ackedWrites,
		DroppedPending:  s.dropped,
		Recoveries:      s.recoveries,
		Migrations:      s.migrations,
		MigratedRecords: s.migratedRecords,
		Compactions:     s.compactions,
		ReclaimedSlots:  s.reclaimedSlots,
		RecoveryNS:      append([]float64(nil), s.recoveryNS...),
		CompactionNS:    append([]float64(nil), s.compactionNS...),
	}
	m.PipelinedCommits = s.pipeCommits
	m.MaxInFlight = s.maxInFlight
	if s.cache != nil {
		m.CacheHits = s.cache.hits
		m.CacheMisses = s.cache.misses
		m.SpeculativeFills = s.cache.specFills
		m.CacheInvalidations = s.cache.invalidations
		m.CacheSize = s.cache.lenLocked()
	}
	for _, sh := range s.shards {
		m.PerShardBusyNS = append(m.PerShardBusyNS, sh.busyNS)
		m.PerShardChurnNS = append(m.PerShardChurnNS, sh.churnNS)
		m.PerShardFill = append(m.PerShardFill, float64(len(sh.log))/float64(sh.cap))
		m.PerShardLive = append(m.PerShardLive, len(sh.index))
		m.WriteLatencies = append(m.WriteLatencies, sh.writeLat...)
		m.IssueLatencies = append(m.IssueLatencies, sh.issueLat...)
		m.PerShardInFlight = append(m.PerShardInFlight, len(sh.flights))
		m.PerShardAcked = append(m.PerShardAcked, sh.acked)
	}
	return m
}

// ResetMetrics zeroes the counters, busy clocks and latency records while
// keeping the stored data — used to exclude a preload phase from
// measurement.
func (s *Store) ResetMetrics() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts, s.gets, s.deletes, s.scans = 0, 0, 0, 0
	s.multiGets, s.batches = 0, 0
	s.scannedPairs, s.commits, s.dropped, s.recoveries = 0, 0, 0, 0
	s.ackedWrites, s.migrations, s.migratedRecords = 0, 0, 0
	s.compactions, s.reclaimedSlots = 0, 0
	s.recoveryNS, s.compactionNS = nil, nil
	s.pipeCommits, s.maxInFlight = 0, 0
	if s.cache != nil {
		s.cache.hits, s.cache.misses = 0, 0
		s.cache.specFills, s.cache.invalidations, s.cache.evictions = 0, 0, 0
	}
	for _, sh := range s.shards {
		sh.busyNS = 0
		sh.churnNS = 0
		sh.writeLat = nil
		sh.issueLat = nil
	}
	for i := range s.winBase {
		s.winBase[i] = 0
	}
	for b := range s.bucketWin {
		s.bucketWin[b] = 0
	}
}
