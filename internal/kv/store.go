package kv

import (
	"fmt"
	"sort"
	"sync"

	"cxl0/internal/core"
	"cxl0/internal/memsim"
)

// Ack describes the acknowledgment state of a write when it returns.
type Ack struct {
	// Shard is the shard the write was routed to.
	Shard int
	// Seq is the write's slot in the shard's log.
	Seq int
	// Durable says whether the write is already persistent. Under the
	// batched strategies (GroupCommit, RangedCommit) it becomes true only
	// at the batch's commit point.
	Durable bool
}

// Pair is one key-value pair returned by Scan.
type Pair struct {
	Key core.Val `json:"key"`
	Val core.Val `json:"val"`
}

// RecoveryStats reports one shard recovery.
type RecoveryStats struct {
	// Shard is the recovered shard.
	Shard int
	// Recovered is the number of log records that survived (the durable —
	// or still-visible — prefix).
	Recovered int
	// Lost is the number of appended records the crash destroyed.
	Lost int
	// DroppedPending is the number of unacknowledged batched writes
	// discarded by the recovery.
	DroppedPending int
	// SimNS is the simulated time the recovery consumed (scan + log
	// truncation + re-persist).
	SimNS float64
}

// rec mirrors one appended log record on the Go side (the service's own
// bookkeeping; authoritative content lives in simulated memory).
type rec struct {
	key, val core.Val
	startNS  float64 // simulated submit time, for ack-latency accounting
}

// shard is one hash partition: a log region on one machine plus the
// volatile index over it.
type shard struct {
	id      int
	machine core.MachineID
	base    core.LocID
	cap     int

	threads []*memsim.Thread
	rr      int

	index    map[core.Val]int // key -> slot of newest live record
	log      []rec            // appended records, slot-ordered
	acked    int              // records [0, acked) are acknowledged durable
	pending  int              // batched records awaiting their batch's commit flush
	batchE   uint64           // shard-machine crash epoch when the open batch began
	down     bool
	busyNS   float64   // simulated time this shard's operations consumed
	writeLat []float64 // ack latencies of acknowledged writes
}

func (sh *shard) keyLoc(slot int) core.LocID { return sh.base + core.LocID(slot*recWords) }
func (sh *shard) valLoc(slot int) core.LocID { return sh.base + core.LocID(slot*recWords+1) }
func (sh *shard) chkLoc(slot int) core.LocID { return sh.base + core.LocID(slot*recWords+2) }

func (sh *shard) thread() *memsim.Thread {
	t := sh.threads[sh.rr%len(sh.threads)]
	sh.rr++
	return t
}

// Metrics is a snapshot of a store's service counters.
type Metrics struct {
	Puts, Gets, Deletes, Scans uint64
	ScannedPairs               uint64
	Commits                    uint64 // commit flushes issued (GPF or ranged batches)
	Acked                      uint64 // acknowledged (durable) writes
	DroppedPending             uint64
	Recoveries                 uint64
	RecoveryNS                 []float64
	// PerShardBusyNS is each shard's accumulated simulated busy time.
	// Shards run on distinct machines, so the service-level makespan under
	// perfect parallelism is the maximum entry. Global operations (GPF)
	// are charged to every shard because a Global Persistent Flush stalls
	// the whole fabric; RangedCommit's ranged flushes involve only the
	// shard's own device and are charged to that shard alone.
	PerShardBusyNS []float64
	// WriteLatencies are simulated ack latencies of acknowledged writes.
	WriteLatencies []float64
}

// MaxBusyNS returns the busiest shard's simulated time — the service
// makespan under perfect shard parallelism.
func (m Metrics) MaxBusyNS() float64 {
	max := 0.0
	for _, b := range m.PerShardBusyNS {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalBusyNS returns the summed simulated time across shards (the
// single-machine-equivalent cost).
func (m Metrics) TotalBusyNS() float64 {
	total := 0.0
	for _, b := range m.PerShardBusyNS {
		total += b
	}
	return total
}

// Store is a sharded durable key-value service over one memsim cluster.
// Methods are safe for concurrent use; operations serialize per shard.
type Store struct {
	mu      sync.Mutex
	cfg     Config
	cluster *memsim.Cluster
	front   core.MachineID
	shards  []*shard

	puts, gets, deletes, scans uint64
	scannedPairs               uint64
	commits                    uint64
	dropped                    uint64
	recoveries                 uint64
	recoveryNS                 []float64
}

// Open builds the cluster (one front-end machine plus one machine per
// shard, all with non-volatile memory) and the shards on it.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Strategy < 0 || int(cfg.Strategy) >= len(strategyNames) {
		return nil, fmt.Errorf("kv: unknown strategy %v", cfg.Strategy)
	}
	machines := []memsim.MachineConfig{{Name: "front", Mem: core.NonVolatile, Heap: 0}}
	for i := 0; i < cfg.Shards; i++ {
		machines = append(machines, memsim.MachineConfig{
			Name: fmt.Sprintf("shard%d", i),
			Mem:  core.NonVolatile,
			Heap: cfg.Capacity * recWords,
		})
	}
	cluster := memsim.NewCluster(machines, memsim.Config{
		Variant:    cfg.Variant,
		EvictEvery: cfg.EvictEvery,
		Seed:       cfg.Seed,
		Latency:    cfg.Latency,
	})
	s := &Store{cfg: cfg, cluster: cluster, front: 0}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:      i,
			machine: core.MachineID(i + 1),
			cap:     cfg.Capacity,
			index:   map[core.Val]int{},
		}
		base, err := cluster.Alloc(sh.machine, cfg.Capacity*recWords)
		if err != nil {
			return nil, err
		}
		sh.base = base
		if err := s.spawnThreads(sh); err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

func (s *Store) spawnThreads(sh *shard) error {
	home := s.front
	if s.cfg.Colocate {
		home = sh.machine
	}
	sh.threads = sh.threads[:0]
	for i := 0; i < s.cfg.ThreadsPerShard; i++ {
		t, err := s.cluster.NewThread(home)
		if err != nil {
			return err
		}
		sh.threads = append(sh.threads, t)
	}
	return nil
}

// Cluster returns the backing cluster (for churn injection and
// inspection).
func (s *Store) Cluster() *memsim.Cluster { return s.cluster }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index key k routes to.
func (s *Store) ShardOf(k core.Val) int {
	return int(hashKey(k) % uint64(len(s.shards)))
}

// AckedCount returns how many of shard i's log records are acknowledged
// durable.
func (s *Store) AckedCount(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[i].acked
}

// AppendedCount returns how many records shard i has appended (acknowledged
// or pending).
func (s *Store) AppendedCount(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards[i].log)
}

// writeRecord makes the record at slot durable (or enqueues it, under
// GroupCommit) according to the strategy. The caller has already bounds-
// checked slot.
func (s *Store) writeRecord(sh *shard, slot int, key, val core.Val) error {
	t := sh.thread()
	chk := chkOf(slot, key, val)
	locs := [recWords]core.LocID{sh.keyLoc(slot), sh.valLoc(slot), sh.chkLoc(slot)}
	vals := [recWords]core.Val{key, val, chk}

	switch s.cfg.Strategy {
	case MStoreEach:
		for i, l := range locs {
			if err := t.MStore(l, vals[i]); err != nil {
				return err
			}
		}
		return nil

	case StoreFlush, RStoreFlush:
		// Store-then-flush has a window in which the owner's crash destroys
		// the stored value and the flush completes vacuously. Records are
		// private until indexed, so the epoch-guarded retry (the flit
		// PrivateStore idiom) is sound.
		for {
			epoch := s.cluster.Epoch(sh.machine)
			for i, l := range locs {
				var err error
				if s.cfg.Strategy == RStoreFlush {
					err = t.RStore(l, vals[i])
				} else {
					err = t.LStore(l, vals[i])
				}
				if err != nil {
					return err
				}
				if s.cfg.Strategy == StoreFlush && t.Machine() == sh.machine {
					err = t.LFlush(l)
				} else {
					err = t.RFlush(l)
				}
				if err != nil {
					return err
				}
			}
			if s.cluster.Epoch(sh.machine) == epoch {
				return nil
			}
		}

	case GPFEach:
		for {
			epoch := s.cluster.Epoch(sh.machine)
			if err := lstoreRecord(t, sh, slot, key, val); err != nil {
				return err
			}
			if err := s.gpf(sh, t); err != nil {
				return err
			}
			if s.cluster.Epoch(sh.machine) == epoch {
				return nil
			}
		}

	case GroupCommit, RangedCommit:
		if sh.pending == 0 {
			sh.batchE = s.cluster.Epoch(sh.machine)
		}
		if err := lstoreRecord(t, sh, slot, key, val); err != nil {
			return err
		}
		sh.pending++
		return nil
	}
	return fmt.Errorf("kv: unknown strategy %v", s.cfg.Strategy)
}

// lstoreRecord writes the record at slot into the worker's cache (visible,
// not yet durable) — the batched strategies' enqueue and re-issue path.
func lstoreRecord(t *memsim.Thread, sh *shard, slot int, key, val core.Val) error {
	locs := [recWords]core.LocID{sh.keyLoc(slot), sh.valLoc(slot), sh.chkLoc(slot)}
	vals := [recWords]core.Val{key, val, chkOf(slot, key, val)}
	for i, l := range locs {
		if err := t.LStore(l, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// gpf issues a Global Persistent Flush on behalf of shard sh and charges
// its cost to every other shard: a GPF drains every cache in the system,
// so the whole fabric stalls for its duration regardless of which shard
// triggered it. sh itself is charged by its caller's elapsed-span
// accounting, which contains this call.
func (s *Store) gpf(sh *shard, t *memsim.Thread) error {
	start := s.cluster.NowNS()
	if err := t.GPF(); err != nil {
		return err
	}
	cost := s.cluster.NowNS() - start
	for _, other := range s.shards {
		if other != sh {
			other.busyNS += cost
		}
	}
	return nil
}

// rflushSlots persists shard sh's log slots [first, limit) with one ranged
// flush over exactly those records' lines. Unlike gpf there is no
// cross-shard charge: a ranged flush involves only the shard's own device,
// so the rest of the fabric keeps running and the cost lands on sh alone
// (via the caller's elapsed-span accounting).
func (s *Store) rflushSlots(sh *shard, t *memsim.Thread, first, limit int) error {
	if first >= limit {
		return nil
	}
	return t.RFlushRange(sh.keyLoc(first), (limit-first)*recWords)
}

// commitLocked flushes shard sh's open batch (GroupCommit or RangedCommit)
// and acknowledges its writes.
func (s *Store) commitLocked(sh *shard) error {
	if sh.pending == 0 {
		return nil
	}
	if sh.down {
		return ErrShardDown
	}
	t := sh.thread()
	for {
		epoch := s.cluster.Epoch(sh.machine)
		if epoch != sh.batchE {
			// The shard machine crashed and recovered since the batch
			// opened: the LStored records may have been destroyed while
			// cached remotely. Records are unacknowledged, so re-issuing
			// them is sound.
			for slot := len(sh.log) - sh.pending; slot < len(sh.log); slot++ {
				if err := lstoreRecord(t, sh, slot, sh.log[slot].key, sh.log[slot].val); err != nil {
					return err
				}
			}
			sh.batchE = epoch
			continue
		}
		var err error
		if s.cfg.Strategy == RangedCommit {
			err = s.rflushSlots(sh, t, len(sh.log)-sh.pending, len(sh.log))
		} else {
			err = s.gpf(sh, t)
		}
		if err != nil {
			return err
		}
		if s.cluster.Epoch(sh.machine) == epoch {
			break
		}
	}
	now := s.cluster.NowNS()
	for slot := len(sh.log) - sh.pending; slot < len(sh.log); slot++ {
		sh.writeLat = append(sh.writeLat, now-sh.log[slot].startNS)
	}
	sh.acked = len(sh.log)
	sh.pending = 0
	s.commits++
	return nil
}

// append routes one write (val 0 = tombstone) to shard sh.
func (s *Store) append(sh *shard, key, val core.Val) (Ack, error) {
	if sh.down {
		return Ack{}, ErrShardDown
	}
	if len(sh.log) >= sh.cap {
		return Ack{}, fmt.Errorf("%w: shard %d at %d records", ErrShardFull, sh.id, sh.cap)
	}
	slot := len(sh.log)
	start := s.cluster.NowNS()
	if err := s.writeRecord(sh, slot, key, val); err != nil {
		return Ack{}, err
	}
	sh.log = append(sh.log, rec{key: key, val: val, startNS: start})
	if val == 0 {
		delete(sh.index, key)
	} else {
		sh.index[key] = slot
	}
	durable := s.cfg.Strategy.Durable()
	if durable {
		sh.acked = len(sh.log)
		sh.writeLat = append(sh.writeLat, s.cluster.NowNS()-start)
	} else if sh.pending >= s.cfg.Batch {
		if err := s.commitLocked(sh); err != nil {
			return Ack{}, err
		}
		durable = true
	}
	sh.busyNS += s.cluster.NowNS() - start
	return Ack{Shard: sh.id, Seq: slot, Durable: durable}, nil
}

// Put maps key to val (val >= 1). The write is acknowledged durable per
// the strategy's ack discipline (see Ack.Durable).
func (s *Store) Put(key, val core.Val) (Ack, error) {
	if key < 0 || val < 1 {
		return Ack{}, ErrBadKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	return s.append(s.shards[s.ShardOf(key)], key, val)
}

// Delete removes key by appending a tombstone record.
func (s *Store) Delete(key core.Val) (Ack, error) {
	if key < 0 {
		return Ack{}, ErrBadKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deletes++
	return s.append(s.shards[s.ShardOf(key)], key, 0)
}

// Get returns the value mapped to key. The index probe is free (a
// volatile DRAM hashtable); the value load pays the simulated cost of
// reading the shard's memory.
func (s *Store) Get(key core.Val) (core.Val, bool, error) {
	if key < 0 {
		return 0, false, ErrBadKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	sh := s.shards[s.ShardOf(key)]
	if sh.down {
		return 0, false, ErrShardDown
	}
	slot, ok := sh.index[key]
	if !ok {
		return 0, false, nil
	}
	start := s.cluster.NowNS()
	v, err := sh.thread().Load(sh.valLoc(slot))
	sh.busyNS += s.cluster.NowNS() - start
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Scan returns up to limit live pairs with lo <= key < hi, in key order,
// loading each value from its shard.
func (s *Store) Scan(lo, hi core.Val, limit int) ([]Pair, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scans++
	type cand struct {
		key  core.Val
		slot int
		sh   *shard
	}
	var cands []cand
	for _, sh := range s.shards {
		if sh.down {
			return nil, ErrShardDown
		}
		for k, slot := range sh.index {
			if k >= lo && k < hi {
				cands = append(cands, cand{key: k, slot: slot, sh: sh})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	if limit > 0 && len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]Pair, 0, len(cands))
	for _, c := range cands {
		start := s.cluster.NowNS()
		v, err := c.sh.thread().Load(c.sh.valLoc(c.slot))
		c.sh.busyNS += s.cluster.NowNS() - start
		if err != nil {
			return nil, err
		}
		out = append(out, Pair{Key: c.key, Val: v})
	}
	s.scannedPairs += uint64(len(out))
	return out, nil
}

// Sync commits every shard's open batch (GroupCommit or RangedCommit). A
// no-op under the per-operation strategies.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		if sh.pending == 0 {
			continue
		}
		start := s.cluster.NowNS()
		err := s.commitLocked(sh)
		sh.busyNS += s.cluster.NowNS() - start
		if err != nil {
			return err
		}
	}
	return nil
}

// Crash fails shard i's machine. Operations routed to the shard return
// ErrShardDown until Recover.
func (s *Store) Crash(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[i]
	s.cluster.Crash(sh.machine)
	sh.down = true
}

// Recover restarts shard i after a crash: it scans the shard's log from
// the surviving state, truncates at the first incompletely persisted
// record, rebuilds the volatile index from what the scan read, drops any
// unacknowledged batched writes, and re-persists the recovered prefix —
// with one GPF, or under RangedCommit with one ranged flush over the
// shard's own recovered log lines, so even recovery stays off the rest of
// the fabric.
func (s *Store) Recover(i int) (RecoveryStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[i]
	if !sh.down {
		return RecoveryStats{Shard: i}, nil
	}
	s.cluster.Recover(sh.machine)
	if err := s.spawnThreads(sh); err != nil {
		return RecoveryStats{}, err
	}
	t := sh.thread()
	appended := len(sh.log)
	ackedBefore := sh.acked
	start := s.cluster.NowNS()

	// Scan: accept records until the first one whose checksum does not
	// match its content. Acknowledged records are all durable, so the cut
	// can only fall in the unacknowledged tail.
	cut := 0
	scanned := make([]rec, 0, appended)
	for slot := 0; slot < appended; slot++ {
		k, err := t.Load(sh.keyLoc(slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		v, err := t.Load(sh.valLoc(slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		chk, err := t.Load(sh.chkLoc(slot))
		if err != nil {
			return RecoveryStats{}, err
		}
		if chk != chkOf(slot, k, v) {
			break
		}
		scanned = append(scanned, rec{key: k, val: v})
		cut = slot + 1
	}

	// Truncate: invalidate the checksum words of the lost tail so a
	// half-persisted old record can never validate once its slot is
	// reused in a later incarnation.
	for slot := cut; slot < appended; slot++ {
		if err := t.MStore(sh.chkLoc(slot), 0); err != nil {
			return RecoveryStats{}, err
		}
	}

	// Re-persist: the scan may have read records that survived only in a
	// surviving machine's cache, and one flush makes the recovered prefix
	// durable again so it also survives the next crash. Only the slots
	// beyond the acknowledged prefix can need this: acknowledged records
	// were already persistent before the crash and are never overwritten
	// in place, so when the cut equals the acked prefix (always, under
	// the per-operation strategies) there is nothing to re-persist. The
	// truncated tail's checksums were MStored, which is persistent by
	// itself. Under RangedCommit the flush is a ranged one over exactly
	// the shard's own unacknowledged survivors; GroupCommit keeps the
	// fabric-wide GPF.
	if cut > ackedBefore {
		if s.cfg.Strategy == RangedCommit {
			if err := s.rflushSlots(sh, t, ackedBefore, cut); err != nil {
				return RecoveryStats{}, err
			}
		} else {
			if err := s.gpf(sh, t); err != nil {
				return RecoveryStats{}, err
			}
		}
	}

	// Rebuild the index from what the scan actually read.
	sh.index = map[core.Val]int{}
	for slot, r := range scanned {
		if r.val == 0 {
			delete(sh.index, r.key)
		} else {
			sh.index[r.key] = slot
		}
	}
	// Pending GroupCommit records occupy the log's tail; the ones the
	// scan reached were recovered (and are durable after the GPF above),
	// so they count as acknowledged — at a submit-to-durable latency
	// spanning the crash. Only those beyond the cut are discarded.
	droppedPending := 0
	pendingStart := appended - sh.pending
	now := s.cluster.NowNS()
	for slot := pendingStart; slot < cut && slot < appended; slot++ {
		sh.writeLat = append(sh.writeLat, now-sh.log[slot].startNS)
	}
	if cut < appended {
		if pendingStart > cut {
			droppedPending = appended - pendingStart
		} else {
			droppedPending = appended - cut
		}
	}
	sh.log = sh.log[:cut]
	for slot := range sh.log {
		sh.log[slot].key = scanned[slot].key
		sh.log[slot].val = scanned[slot].val
	}
	sh.acked = cut
	sh.pending = 0
	sh.down = false

	simNS := s.cluster.NowNS() - start
	sh.busyNS += simNS
	s.dropped += uint64(droppedPending)
	s.recoveries++
	s.recoveryNS = append(s.recoveryNS, simNS)
	return RecoveryStats{
		Shard:          i,
		Recovered:      cut,
		Lost:           appended - cut,
		DroppedPending: droppedPending,
		SimNS:          simNS,
	}, nil
}

// Metrics returns a snapshot of the store's counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Puts:           s.puts,
		Gets:           s.gets,
		Deletes:        s.deletes,
		Scans:          s.scans,
		ScannedPairs:   s.scannedPairs,
		Commits:        s.commits,
		DroppedPending: s.dropped,
		Recoveries:     s.recoveries,
		RecoveryNS:     append([]float64(nil), s.recoveryNS...),
	}
	for _, sh := range s.shards {
		m.Acked += uint64(sh.acked)
		m.PerShardBusyNS = append(m.PerShardBusyNS, sh.busyNS)
		m.WriteLatencies = append(m.WriteLatencies, sh.writeLat...)
	}
	return m
}

// ResetMetrics zeroes the counters, busy clocks and latency records while
// keeping the stored data — used to exclude a preload phase from
// measurement.
func (s *Store) ResetMetrics() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts, s.gets, s.deletes, s.scans = 0, 0, 0, 0
	s.scannedPairs, s.commits, s.dropped, s.recoveries = 0, 0, 0, 0
	s.recoveryNS = nil
	for _, sh := range s.shards {
		sh.busyNS = 0
		sh.writeLat = nil
	}
}
