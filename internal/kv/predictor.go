package kv

// The speculative prefetcher (Config.Prefetch, requires ReadCache > 0).
// Two cheap signals over the served-read stream, per CXL-SpecKV's
// prediction tier (PAPERS.md):
//
//   - A per-shard Markov successor table: "after key A this client read
//     key B". One successor per key, last-writer-wins — the zipfian and
//     latest-biased YCSB mixes revisit the same short chains constantly,
//     so even a depth-1 chain predicts well.
//   - A scan-run detector: consecutive reads of adjacent keys (key ==
//     last+1) signal a sequential sweep; once a run is established the
//     next keys in line are prefetched ahead of it.
//
// Predictions turn into *speculative reads* that warm the read cache:
// the store resolves the predicted key against the shard's own
// authoritative Go-side mirror of the medium (the same bookkeeping
// recovery trusts), so the fill can never observe a torn or stale
// value, and charges no simulated time — the model is a prefetch fully
// overlapped with the foreground operation on spare fabric bandwidth,
// exactly like the flush/append overlap of the commit pipeline
// (docs/pipeline.md). A speculative fill is a plain Shared-state cache
// line like any demand fill: every invalidation path snoops it the same
// way, so a wrong or stale speculation can cost capacity, never
// correctness (docs/caching.md).
//
// All state is bounded and deterministic: fixed-size successor tables
// reset wholesale when full (no eviction policy that would need map
// iteration), and the tables are only ever indexed, never ranged over.

import "cxl0/internal/core"

const (
	// maxSuccessors bounds each shard's Markov table; at the bound the
	// table resets wholesale, which is deterministic and keeps the
	// steady-state working set (the hot chains re-form in a few reads).
	maxSuccessors = 1024
	// scanRunThreshold is how many consecutive adjacent reads establish
	// a sequential run worth prefetching ahead of.
	scanRunThreshold = 3
	// scanRunAhead is how many keys ahead of an established run the
	// prefetcher warms.
	scanRunAhead = 2
)

// predictor learns the read stream and proposes keys to prefetch. All
// state is guarded by the owning store's mu: every method is ...Locked,
// called with the store lock held.
type predictor struct {
	// succ[shard] maps a key to the key the client read next; last[shard]
	// is the previous served read on that shard (-1 before the first).
	//cxl0:guarded-by mu
	succ []map[core.Val]core.Val
	//cxl0:guarded-by mu
	last []core.Val
	// runKey/runLen track the store-wide sequential-scan run: runLen
	// consecutive reads ending at runKey with each key one above the
	// previous.
	//cxl0:guarded-by mu
	runKey core.Val
	//cxl0:guarded-by mu
	runLen int
}

// newPredictor builds a predictor for a store with shards shards.
//
//cxl0:locked mu
func newPredictor(shards int) *predictor {
	p := &predictor{
		succ:   make([]map[core.Val]core.Val, shards),
		last:   make([]core.Val, shards),
		runKey: -1,
	}
	for i := range p.succ {
		p.succ[i] = make(map[core.Val]core.Val, maxSuccessors)
		p.last[i] = -1
	}
	return p
}

// observeLocked feeds one served read into the model.
func (p *predictor) observeLocked(shard int, key core.Val) {
	if prev := p.last[shard]; prev >= 0 && prev != key {
		m := p.succ[shard]
		if _, ok := m[prev]; !ok && len(m) >= maxSuccessors {
			p.succ[shard] = make(map[core.Val]core.Val, maxSuccessors)
			m = p.succ[shard]
		}
		m[prev] = key
	}
	p.last[shard] = key
	if p.runKey >= 0 && key == p.runKey+1 {
		p.runLen++
	} else {
		p.runLen = 1
	}
	p.runKey = key
}

// observeReadLocked feeds one served read into the prefetcher and issues
// the speculative reads it proposes — the read path's tail call, a no-op
// unless Config.Prefetch is on.
func (s *Store) observeReadLocked(sh *shard, key core.Val) {
	if s.pred == nil {
		return
	}
	s.pred.observeLocked(sh.id, key)
	s.prefetchLocked(s.pred.predictLocked(sh.id, key))
}

// prefetchLocked issues non-blocking speculative reads for keys, warming
// the read cache ahead of demand. A speculative read resolves the key
// exactly like getLocked — current routing, index, and the pipelined
// shadow's acked-watermark gate — but reads the shard's authoritative
// Go-side record mirror instead of paying a simulated Load: the model is
// a prefetch fully overlapped with the foreground operation on spare
// fabric bandwidth, so it charges no simulated time and cannot perturb
// the timeline (a cache-off run and a prefetch-on run issue the same
// Loads for different costs, never different fabric traffic). Keys that
// are unroutable (down, partitioned), absent, or already cached are
// skipped.
func (s *Store) prefetchLocked(keys []core.Val) {
	if s.cache == nil {
		return
	}
	for _, k := range keys {
		if k < 0 || s.cache.containsLocked(k) {
			continue
		}
		sh := s.shards[s.shardOf(k)]
		if sh.down || sh.partitioned {
			continue
		}
		slot, ok := sh.index[k]
		if s.pipelined() {
			// The same watermark gate as getLocked: speculate only on the
			// state a demand read would be served.
			if e, shadowed := sh.shadow[k]; shadowed {
				slot, ok = e.slot, e.exists
			}
		}
		if !ok {
			continue
		}
		var v core.Val
		if slot >= sh.cap {
			v = sh.snap[slot-sh.cap].val
		} else {
			v = sh.log[slot].val
		}
		s.cache.fillLocked(k, v, true)
		if s.rec != nil {
			s.rec.SpeculativeFill(sh.id, s.cluster.NowNS())
		}
	}
}

// predictLocked proposes the keys to prefetch after serving key on
// shard: the learned successor, then the run continuation when a
// sequential sweep is established. Order is deterministic; duplicates
// and the key itself are filtered by the prefetch path's cache probe.
func (p *predictor) predictLocked(shard int, key core.Val) []core.Val {
	var out []core.Val
	if next, ok := p.succ[shard][key]; ok && next != key {
		out = append(out, next)
	}
	if p.runLen >= scanRunThreshold && key == p.runKey {
		for i := core.Val(1); i <= scanRunAhead; i++ {
			out = append(out, key+i)
		}
	}
	return out
}
