package kv

import (
	"errors"
	"fmt"
	"sort"

	"cxl0/internal/core"
)

// This file implements bucket migration — the mechanism behind load-aware
// rebalancing. Moving bucket b from shard src to shard dst proceeds in
// three durable phases, all under the store lock (no client operation
// interleaves):
//
//  1. Copy. Both shards' open batches are committed, then b's live
//     records are appended to dst's log — preceded by a move-in marker —
//     and made durable with the store's own persistence strategy: under
//     RangedCommit a single RFlushRange over exactly the copied records'
//     lines, under the GPF strategies one GPF, under the per-operation
//     strategies each copy persists as it is written.
//  2. Commit. A move-out marker for b is appended durably to src's log.
//     This record is the migration's commit point: the copies it vouches
//     for are already durable on dst, and a recovery that reads it knows
//     the handoff happened even if the in-memory flip below was lost.
//  3. Flip. The shard map entry for b is repointed at dst, the copied
//     records are indexed on dst, and b's keys leave src's index.
//
// Crash-safety hangs on two recovery rules (see Store.Recover):
//
//   - Wipe: during the recovery replay, a move marker for bucket b
//     supersedes every earlier record of b in that log. On src this
//     retires the moved-away records; on dst the move-in marker retires
//     orphaned copies a previously aborted inbound migration left behind,
//     so a key deleted while its bucket lived elsewhere can never
//     resurrect from a stale copy.
//   - Redo: a durable move-out record with a version newer than the
//     applied map state completes the flip during recovery — ownership is
//     resolved from the log, deterministically, on either shard.
//
// Both rules yield to one exception: a move-out marker followed in its
// own log by a client record of the same bucket is *orphaned* — the
// migration failed in phase 2 after its commit record persisted, the map
// never flipped, and the source kept acknowledging writes. Recovery
// strips such a marker of all authority (no wipe, no redo): the earlier
// records it would have retired are still the live state, and the
// destination's copies are stale.
//
// A crash before the commit point aborts the migration: the map keeps
// pointing at src, and the partial copies on dst are either checksum-
// zeroed (dst alive) or left for dst's own recovery to retire (dst down —
// they are unindexed by the ownership sweep and wiped by the next move-in
// marker). A crash after the commit point lets the flip proceed: the
// copies are durable, and a down destination simply answers ErrShardDown
// until it recovers.

// MigrateStep names the checkpoints of one bucket migration, in order. The
// test hook fires at each so crash-safety can be probed at every phase
// boundary.
type MigrateStep int

const (
	// StepBeforeCopy fires after both shards' open batches committed,
	// before anything of the migration is written.
	StepBeforeCopy MigrateStep = iota
	// StepMidCopy fires halfway through writing the copied records.
	StepMidCopy
	// StepAfterCopy fires once the copies are durable on the destination.
	StepAfterCopy
	// StepBeforeFlip fires after the move-out record is durable on the
	// source (the commit point) and before the in-memory map flip.
	StepBeforeFlip
	// StepAfterFlip fires after the map flip and index handoff.
	StepAfterFlip
)

var migrateStepNames = [...]string{"before-copy", "mid-copy", "after-copy", "before-flip", "after-flip"}

func (st MigrateStep) String() string {
	if st >= 0 && int(st) < len(migrateStepNames) {
		return migrateStepNames[st]
	}
	return fmt.Sprintf("MigrateStep(%d)", int(st))
}

// MigrationStats reports one completed bucket migration.
type MigrationStats struct {
	// Bucket is the migrated virtual bucket.
	Bucket int
	// From and To are the source and destination shards.
	From, To int
	// Records is the number of live records copied.
	Records int
	// SimNS is the simulated time the migration consumed across both
	// shards.
	SimNS float64
}

// encodeMove packs a move marker's payload word: version, direction
// (move-out markers commit a migration and carry redo authority; move-in
// markers only wipe) and the destination shard. Always >= 1, so the word
// is never mistaken for a delete tombstone.
func encodeMove(ver uint64, out bool, shard, nShards int) core.Val {
	d := uint64(0)
	if out {
		d = 1
	}
	return core.Val((ver*2+d)*uint64(nShards) + uint64(shard) + 1)
}

// decodeMove unpacks encodeMove.
func decodeMove(v core.Val, nShards int) (ver uint64, out bool, shard int) {
	u := uint64(v) - 1
	shard = int(u % uint64(nShards))
	u /= uint64(nShards)
	return u / 2, u%2 == 1, shard
}

func (s *Store) hookStep(step MigrateStep) {
	if s.migrateHook != nil {
		s.migrateHook(step)
	}
}

// stepCheckpoint publishes the migration checkpoint as an observability
// event, then fires the test hook — in that order, so the event records
// reaching the checkpoint even when the hook injects a crash there.
func (s *Store) stepCheckpoint(step MigrateStep, b, from, to, records int) {
	if s.rec != nil {
		s.rec.MigrationStep(step.String(), b, from, to, records, s.cluster.NowNS())
	}
	s.hookStep(step)
}

// chargeChurn charges the simulated span since start to shard sh as both
// busy time and churn — the accounting every migration phase shares.
//
//cxl0:locked mu
func (s *Store) chargeChurn(sh *shard, start float64) {
	span := s.cluster.NowNS() - start
	sh.busyNS += span
	sh.churnNS += span
}

// MigrateBucket moves bucket b's live records to shard `to`, durably, and
// repoints the shard map. A no-op when the bucket already lives there.
func (s *Store) MigrateBucket(b, to int) (MigrationStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b < 0 || b >= len(s.shardMap) {
		return MigrationStats{}, fmt.Errorf("%w: bucket %d not in [0,%d)", ErrOutOfRange, b, len(s.shardMap))
	}
	if to < 0 || to >= len(s.shards) {
		return MigrationStats{}, fmt.Errorf("%w: shard %d not in [0,%d)", ErrOutOfRange, to, len(s.shards))
	}
	if s.frontDown {
		return MigrationStats{}, ErrFrontDown
	}
	if s.shardMap[b] == to {
		return MigrationStats{Bucket: b, From: to, To: to}, nil
	}
	return s.migrateBucket(b, to)
}

// migrateBucket runs the three-phase protocol described above. The caller
// holds the store lock and has checked b and to are in range and distinct
// from the current owner.
//
//cxl0:locked mu
func (s *Store) migrateBucket(b, to int) (MigrationStats, error) {
	from := s.shardMap[b]
	src, dst := s.shards[from], s.shards[to]
	stats := MigrationStats{Bucket: b, From: from, To: to}
	if src.down || dst.down {
		return stats, ErrShardDown
	}
	if src.partitioned || dst.partitioned {
		return stats, ErrUnavailable
	}
	startNS := s.cluster.NowNS()

	// Phase 1: copy. Commit both shards first so every record to copy is
	// acknowledged state and the copies form one contiguous, cleanly
	// flushable batch. These flushes acknowledge client writes, so their
	// cost is charged as ordinary traffic (busyNS), like the append- and
	// Sync-triggered commits; everything after is migration churn.
	for _, sh := range []*shard{src, dst} {
		cstart := s.cluster.NowNS()
		err := s.commitLocked(sh)
		sh.busyNS += s.cluster.NowNS() - cstart
		if err != nil {
			return stats, err
		}
	}
	// With auto-compaction enabled, make log headroom up front instead of
	// failing: the copy needs live(b)+1 slots on the destination's log
	// and the move-out record one slot on the source's. Nothing of the
	// migration has been written yet, so compacting here is just the
	// ordinary checkpoint protocol — and it must run before the live
	// records are collected below, because it re-homes their slots onto
	// the snapshot. A compaction error (only a live set beyond capacity)
	// aborts the migration untouched.
	if s.cfg.CompactAtFill > 0 {
		need := 0
		for k := range src.index { //cxl0:order-insensitive — pure count, no ordering escapes
			if s.bucketOf(k) == b {
				need++
			}
		}
		if len(src.log) >= src.cap {
			if _, err := s.compactLocked(src); err != nil {
				return stats, err
			}
		}
		if len(dst.log) > 0 && len(dst.log)+need+1 > dst.cap {
			if _, err := s.compactLocked(dst); err != nil {
				return stats, err
			}
		}
	}

	s.migrating = true
	defer func() { s.migrating = false }()

	// Collect b's live records in slot order, paying the simulated cost
	// of reading each value from the source shard's memory.
	type pair struct {
		slot int
		key  core.Val
		val  core.Val
	}
	var pairs []pair
	for k, slot := range src.index { //cxl0:order-insensitive — collected then sorted by slot below
		if s.bucketOf(k) == b {
			pairs = append(pairs, pair{slot: slot, key: k})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].slot < pairs[j].slot })
	rstart := s.cluster.NowNS()
	rt := src.thread()
	readErr := func() error {
		for i := range pairs {
			// The newest record may live in the log or — after a
			// compaction — in the snapshot region; valLocOf dispatches.
			v, err := rt.Load(src.valLocOf(pairs[i].slot))
			if err != nil {
				return err
			}
			pairs[i].val = v
		}
		return nil
	}()
	s.chargeChurn(src, rstart)
	if readErr != nil {
		return stats, readErr
	}

	ver := s.moveSeq + 1
	s.moveSeq = ver
	if len(dst.log)+len(pairs)+1 > dst.cap {
		return stats, fmt.Errorf("migrating bucket %d: %w", b,
			&ShardFullError{Shard: to, Appended: len(dst.log), Capacity: dst.cap, Need: len(pairs) + 1})
	}
	if len(src.log) >= src.cap {
		return stats, fmt.Errorf("bucket %d move record: %w", b,
			&ShardFullError{Shard: from, Appended: len(src.log), Capacity: src.cap, Need: 1})
	}

	s.stepCheckpoint(StepBeforeCopy, b, from, to, len(pairs))
	preLen := len(dst.log)
	wstart := s.cluster.NowNS()
	copyErr := func() error {
		if src.down || dst.down {
			return ErrShardDown
		}
		// The move-in marker precedes the copies so a recovery replay
		// retires any orphaned copies of b from an earlier aborted
		// inbound migration before indexing the fresh ones.
		marker := rec{key: core.Val(b), val: encodeMove(ver, false, to, len(s.shards)), startNS: wstart, move: true}
		if err := s.writeRecord(dst, len(dst.log), marker); err != nil {
			return err
		}
		dst.log = append(dst.log, marker)
		for i, p := range pairs {
			if i == len(pairs)/2 {
				s.stepCheckpoint(StepMidCopy, b, from, to, len(pairs))
			}
			if src.down || dst.down {
				return ErrShardDown
			}
			r := rec{key: p.key, val: p.val, startNS: s.cluster.NowNS(), copied: true}
			if err := s.writeRecord(dst, len(dst.log), r); err != nil {
				return err
			}
			dst.log = append(dst.log, r)
		}
		if err := s.flushPending(dst); err != nil {
			return err
		}
		dst.acked = len(dst.log)
		return nil
	}()
	s.chargeChurn(dst, wstart)
	if copyErr != nil {
		return stats, s.abortCopies(dst, preLen, copyErr)
	}
	s.stepCheckpoint(StepAfterCopy, b, from, to, len(pairs))
	if src.down || dst.down {
		// No move-out record exists yet, so the migration can still be
		// aborted safely: the copies are never referenced.
		return stats, s.abortCopies(dst, preLen, ErrShardDown)
	}

	// Phase 2: commit — the durable move-out record on the source. If this
	// write fails, its durability is unknown, so the copies must survive:
	// either recovery reads the record and redoes the flip onto them, or
	// it doesn't and they stay orphaned (retired by the wipe and the
	// ownership sweep). Zeroing them here could lose acknowledged data.
	tstart := s.cluster.NowNS()
	moveOut := rec{key: core.Val(b), val: encodeMove(ver, true, to, len(s.shards)), startNS: tstart, move: true}
	writeOut := func() error {
		if err := s.writeRecord(src, len(src.log), moveOut); err != nil {
			return err
		}
		src.log = append(src.log, moveOut)
		if err := s.flushPending(src); err != nil {
			return err
		}
		src.acked = len(src.log)
		return nil
	}()
	s.chargeChurn(src, tstart)
	if writeOut != nil {
		return stats, writeOut
	}
	s.stepCheckpoint(StepBeforeFlip, b, from, to, len(pairs))

	// Phase 3: flip. The commit point has passed, so the flip proceeds
	// even if a machine just failed — recovery on either shard resolves
	// to exactly this state (redo on src, index rebuild on dst).
	s.shardMap[b] = to
	s.bucketVer[b] = ver
	for i, p := range pairs {
		dst.index[p.key] = preLen + 1 + i
		delete(src.index, p.key)
	}
	if s.cache != nil {
		// Move-in: the bucket's keys re-home to the destination's copies.
		// The values are unchanged, but the source — whose lines the front
		// end's copies were filled against — no longer owns them, so the
		// flip snoops the whole bucket (see docs/caching.md).
		s.cache.invalidateMatchLocked(func(k core.Val) bool { return s.bucketOf(k) == b })
	}
	s.migrations++
	s.migratedRecords += uint64(len(pairs))
	stats.Records = len(pairs)
	stats.SimNS = s.cluster.NowNS() - startNS
	s.stepCheckpoint(StepAfterFlip, b, from, to, len(pairs))
	return stats, nil
}

// abortCopies undoes a partial copy after a migration failed before its
// commit point. While the destination is alive the copied slots'
// checksums are zeroed (they can never validate again) and the mirror
// rolls back; when it is down the mirror must keep the slots so the
// destination's own recovery scans, truncates and retires them.
//
//cxl0:locked mu
func (s *Store) abortCopies(dst *shard, preLen int, cause error) error {
	if dst.down {
		return cause
	}
	start := s.cluster.NowNS()
	defer s.chargeChurn(dst, start)
	t := dst.thread()
	for slot := preLen; slot < len(dst.log); slot++ {
		if err := t.MStore(dst.chkLoc(slot), 0); err != nil {
			return cause
		}
	}
	dst.log = dst.log[:preLen]
	dst.pending = 0
	dst.acked = preLen
	return cause
}

// reindexBucket rebuilds dst's index entries for bucket b from its log
// mirror — the redo path when a recovery completes a flip whose
// destination never crashed (so its live index never indexed the copies).
// The replay applies the same wipe rule as recovery's full rebuild, via
// the shared replayRecord.
//
//cxl0:locked mu
func (s *Store) reindexBucket(dst *shard, b int) {
	for k := range dst.index { //cxl0:order-insensitive — uniform delete, order-free
		if s.bucketOf(k) == b {
			delete(dst.index, k)
		}
	}
	for slot, r := range dst.log {
		s.replayRecord(dst.index, slot, r, b)
	}
	if s.cache != nil {
		// The redo flip re-homed the bucket, same as migrateBucket's
		// in-line flip: snoop the front end's copies of its keys.
		s.cache.invalidateMatchLocked(func(k core.Val) bool { return s.bucketOf(k) == b })
	}
}

// Rebalance examines per-shard busy-time shares accumulated since the last
// call (or since Open/ResetMetrics) and, while the busiest shard's share
// exceeds Config.RebalanceThreshold × the mean, migrates its hottest
// buckets to the least-loaded shard — skipping moves that would merely
// relocate the hotspot. It returns the migrations performed; an empty
// slice means the service is balanced (or a shard is down or partitioned,
// in which case rebalancing waits for recovery or a heal). Call it periodically from the serving
// loop; each call also starts a fresh measurement window.
func (s *Store) Rebalance() ([]MigrationStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frontDown {
		return nil, ErrFrontDown
	}
	if s.rec == nil {
		return s.rebalanceLocked()
	}
	start := s.cluster.NowNS()
	moves, err := s.rebalanceLocked()
	s.rec.Rebalance(len(moves), start, s.cluster.NowNS())
	return moves, err
}

// rebalanceLocked is Rebalance's body; the caller holds the store lock.
func (s *Store) rebalanceLocked() ([]MigrationStats, error) {
	defer s.snapshotWindow()
	if len(s.shards) < 2 {
		return nil, nil
	}
	for _, sh := range s.shards {
		if sh.down || sh.partitioned {
			return nil, nil
		}
	}
	delta := make([]float64, len(s.shards))
	total := 0.0
	for i, sh := range s.shards {
		delta[i] = sh.busyNS - sh.churnNS - s.winBase[i]
		total += delta[i]
	}
	mean := total / float64(len(s.shards))
	if mean <= 0 {
		return nil, nil
	}

	const maxMoves = 4 // per check; the next window re-evaluates
	var moves []MigrationStats
	for len(moves) < maxMoves {
		hot, cold := 0, 0
		for i := range delta {
			if delta[i] > delta[hot] {
				hot = i
			}
			if delta[i] < delta[cold] {
				cold = i
			}
		}
		if delta[hot] <= s.cfg.RebalanceThreshold*mean {
			break
		}
		// Live-record counts per bucket on the hot shard, for the
		// destination-headroom check below (rebuilt per move: each
		// migration changes the indexes).
		counts := map[int]int{}
		for k := range s.shards[hot].index { //cxl0:order-insensitive — pure counting
			counts[s.bucketOf(k)]++
		}
		// Hottest bucket on the hot shard whose move strictly lowers the
		// makespan: a bucket so hot that the cold shard plus it would
		// exceed the hot shard's current share is left in place (moving
		// it would only relocate the bottleneck). Buckets that would eat
		// into the destination's last quarter of capacity are skipped too
		// — inbound copies must never starve client appends. Without
		// auto-compaction the headroom is raw log fill; with it
		// (Config.CompactAtFill), dead log records are reclaimable on
		// demand, so the binding constraint is the destination's live
		// set instead.
		cdst := s.shards[cold]
		fill := len(cdst.log)
		if s.cfg.CompactAtFill > 0 {
			fill = len(cdst.index)
		}
		best, bestW := -1, 0.0
		for b, owner := range s.shardMap {
			if owner != hot {
				continue
			}
			w := s.bucketWin[b]
			if w <= bestW || delta[cold]+w >= delta[hot] {
				continue
			}
			if fill+counts[b]+1 > cdst.cap-cdst.cap/4 {
				continue
			}
			best, bestW = b, w
		}
		if best < 0 {
			break
		}
		st, err := s.migrateBucket(best, cold)
		if err != nil {
			if errors.Is(err, ErrShardFull) {
				break
			}
			return moves, err
		}
		moves = append(moves, st)
		delta[hot] -= bestW
		delta[cold] += bestW
	}
	return moves, nil
}

// snapshotWindow starts a fresh rebalance measurement window.
//
//cxl0:locked mu
func (s *Store) snapshotWindow() {
	for i, sh := range s.shards {
		s.winBase[i] = sh.busyNS - sh.churnNS
	}
	for b := range s.bucketWin {
		s.bucketWin[b] = 0
	}
}
