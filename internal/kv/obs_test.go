package kv

import (
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/obs"
)

// obsCfg is the shared store shape for the event-stream tests: two
// shards, a batched strategy (so acks ride commit events) and a small
// batch.
func obsCfg() Config {
	return Config{Shards: 2, Strategy: GroupCommit, Batch: 4, Capacity: 256, Seed: 11}
}

// ackSum totals the client acks carried across op-span, commit and
// recover events — the event-side of the ack-agreement invariant.
func ackSum(evs []obs.Event) int {
	total := 0
	for _, e := range evs {
		switch e.Kind {
		case obs.KindOp, obs.KindCommit, obs.KindRecover:
			total += e.Acked
		}
	}
	return total
}

// TestObserveEventStream drives one of everything through an observed
// store and checks the emitted stream agrees with the metrics: every op
// has its span, every checkpoint machine fires in order, and the summed
// event acks equal Metrics.Acked.
func TestObserveEventStream(t *testing.T) {
	s, err := Open(obsCfg())
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus(0)
	sub := bus.Subscribe()
	s.Observe(obs.NewRecorder(bus, obs.NewStats()))

	for k := core.Val(0); k < 10; k++ {
		if _, err := s.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Delete(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(9999); err != nil { // miss is still a span
		t.Fatal(err)
	}
	if _, err := s.MultiGet([]core.Val{1, 2, 9999}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scan(0, 10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(new(Batch).Put(20, 21).Delete(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// One full migration: pick a bucket owned by shard 0, move it to 1.
	bkt := -1
	for b := 0; b < s.NumBuckets(); b++ {
		if s.ShardOfBucket(b) == 0 {
			bkt = b
			break
		}
	}
	if _, err := s.MigrateBucket(bkt, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Crash(0)
	rst, err := s.Recover(0)
	if err != nil {
		t.Fatal(err)
	}

	evs := sub.Poll(0)
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("sub dropped %d events on an unbounded-drain run", d)
	}

	byOp := map[obs.Op]int{}
	var migSteps, compSteps []string
	crashes, recovers := 0, 0
	for _, e := range evs {
		switch e.Kind {
		case obs.KindOp:
			byOp[e.Op]++
		case obs.KindMigration:
			migSteps = append(migSteps, e.Step)
			if e.Bucket != bkt || e.From != 0 || e.To != 1 {
				t.Fatalf("migration step %q routed %d: %d->%d, want %d: 0->1", e.Step, e.Bucket, e.From, e.To, bkt)
			}
		case obs.KindCompaction:
			compSteps = append(compSteps, e.Step)
		case obs.KindCrash:
			crashes++
			if e.Shard != 0 {
				t.Fatalf("crash event on shard %d, want 0", e.Shard)
			}
		case obs.KindRecover:
			recovers++
			if e.N != rst.Recovered || e.Lost != rst.Lost {
				t.Fatalf("recover event (n %d, lost %d) disagrees with stats %+v", e.N, e.Lost, rst)
			}
		}
	}
	if byOp[obs.OpPut] != 10 || byOp[obs.OpDelete] != 1 || byOp[obs.OpGet] != 2 ||
		byOp[obs.OpMultiGet] != 1 || byOp[obs.OpScan] != 1 || byOp[obs.OpApply] != 1 {
		t.Fatalf("op span counts %v disagree with the ops driven", byOp)
	}
	wantMig := []string{"before-copy", "mid-copy", "after-copy", "before-flip", "after-flip"}
	if len(migSteps) != len(wantMig) {
		t.Fatalf("migration steps %v, want %v", migSteps, wantMig)
	}
	for i, st := range wantMig {
		if migSteps[i] != st {
			t.Fatalf("migration steps %v, want %v", migSteps, wantMig)
		}
	}
	// Compact() sweeps both shards; each compaction fires its six
	// checkpoints in order.
	wantComp := []string{"before-snapshot", "mid-snapshot", "after-snapshot", "before-epoch", "after-epoch", "after-reclaim"}
	if len(compSteps)%len(wantComp) != 0 || len(compSteps) == 0 {
		t.Fatalf("compaction steps %v, want whole cycles of %v", compSteps, wantComp)
	}
	for i, st := range compSteps {
		if st != wantComp[i%len(wantComp)] {
			t.Fatalf("compaction steps %v, want repeated cycles of %v", compSteps, wantComp)
		}
	}
	if crashes != 1 || recovers != 1 {
		t.Fatalf("crash/recover events = %d/%d, want 1/1", crashes, recovers)
	}

	m := s.Metrics()
	if got := ackSum(evs); uint64(got) != m.Acked {
		t.Fatalf("event acks sum to %d, Metrics.Acked = %d", got, m.Acked)
	}
	after := 0
	for _, st := range migSteps {
		if st == "after-flip" {
			after++
		}
	}
	if uint64(after) != m.Migrations {
		t.Fatalf("after-flip events = %d, Metrics.Migrations = %d", after, m.Migrations)
	}
	reclaims, reclaimedSlots := 0, 0
	for _, e := range evs {
		if e.Kind == obs.KindCompaction && e.Step == "after-reclaim" {
			reclaims++
			reclaimedSlots += e.Lost
		}
	}
	if uint64(reclaims) != m.Compactions || uint64(reclaimedSlots) != m.ReclaimedSlots {
		t.Fatalf("compaction events (%d cycles, %d reclaimed) disagree with metrics (%d, %d)",
			reclaims, reclaimedSlots, m.Compactions, m.ReclaimedSlots)
	}
	if uint64(recovers) != m.Recoveries {
		t.Fatalf("recover events = %d, Metrics.Recoveries = %d", recovers, m.Recoveries)
	}

	// The stats side saw the same traffic.
	snap := s.rec.Stats().Snapshot()
	totalSpans := 0
	for _, n := range byOp { //cxl0:order-insensitive — commutative sum
		totalSpans += n
	}
	if snap.OpSpans != uint64(totalSpans) {
		t.Fatalf("stats saw %d op spans, events carried %d", snap.OpSpans, totalSpans)
	}
}

// TestObserveZeroClockImpact pins the no-overhead guarantee: an observed
// run and an unobserved run of the same workload land on the identical
// simulated timeline with identical metrics — instrumentation reads the
// clock, never advances it.
func TestObserveZeroClockImpact(t *testing.T) {
	run := func(observe bool) (float64, Metrics) {
		s, err := Open(obsCfg())
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			bus := obs.NewBus(0)
			bus.Subscribe() // a lagging subscriber must not perturb the store either
			s.Observe(obs.NewRecorder(bus, obs.NewStats()))
		}
		for k := core.Val(0); k < 50; k++ {
			if _, err := s.Put(k%20, k+1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Scan(0, 20, 5); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		s.Crash(1)
		if _, err := s.Recover(1); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		return s.NowNS(), s.Metrics()
	}
	plainNS, plainM := run(false)
	obsNS, obsM := run(true)
	if plainNS != obsNS {
		t.Fatalf("observed run consumed %g sim ns, unobserved %g — instrumentation touched the clock", obsNS, plainNS)
	}
	if plainM.Acked != obsM.Acked || plainM.Commits != obsM.Commits ||
		plainM.Compactions != obsM.Compactions || plainM.DroppedPending != obsM.DroppedPending {
		t.Fatalf("observed metrics %+v diverge from unobserved %+v", obsM, plainM)
	}
}

// TestMetricsAckInvariant churns a batched store through writes, crashes
// and recoveries, checking at every snapshot that acks never outrun the
// writes driven (Acked + DroppedPending <= Puts + Deletes, failed ops
// included on the right side only), and that after a final recovery and
// Sync every successful write is accounted acked or dropped.
func TestMetricsAckInvariant(t *testing.T) {
	s, err := Open(obsCfg())
	if err != nil {
		t.Fatal(err)
	}
	failed := uint64(0)
	check := func(stage string) {
		t.Helper()
		m := s.Metrics()
		if m.Acked+m.DroppedPending > m.Puts+m.Deletes {
			t.Fatalf("%s: Acked %d + DroppedPending %d exceeds writes %d",
				stage, m.Acked, m.DroppedPending, m.Puts+m.Deletes)
		}
	}
	for round := 0; round < 8; round++ {
		for k := core.Val(0); k < 10; k++ {
			if _, err := s.Put(k, core.Val(round)*100+k+1); err != nil {
				failed++
			}
			check("mid-churn")
		}
		if round%3 == 1 {
			sh := round % s.NumShards()
			s.Crash(sh)
			check("post-crash")
			if _, err := s.Recover(sh); err != nil {
				t.Fatal(err)
			}
			check("post-recover")
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Acked+m.DroppedPending+failed != m.Puts+m.Deletes {
		t.Fatalf("after sync: Acked %d + DroppedPending %d + failed %d != writes %d",
			m.Acked, m.DroppedPending, failed, m.Puts+m.Deletes)
	}
	if failed != 0 {
		t.Fatalf("churn unexpectedly failed %d writes (capacity too small for the test)", failed)
	}
}

// TestMetricsFillAndLive pins the new per-shard gauges: fill tracks the
// log length against capacity and live the index size, per shard.
func TestMetricsFillAndLive(t *testing.T) {
	cfg := obsCfg()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := core.Val(0); k < 12; k++ {
		if _, err := s.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if len(m.PerShardFill) != cfg.Shards || len(m.PerShardLive) != cfg.Shards {
		t.Fatalf("per-shard gauges sized %d/%d, want %d", len(m.PerShardFill), len(m.PerShardLive), cfg.Shards)
	}
	totalLive, totalFillSlots := 0, 0.0
	for i := 0; i < cfg.Shards; i++ {
		if m.PerShardFill[i] < 0 || m.PerShardFill[i] > 1 {
			t.Fatalf("shard %d fill %g outside [0,1]", i, m.PerShardFill[i])
		}
		totalLive += m.PerShardLive[i]
		totalFillSlots += m.PerShardFill[i] * float64(cfg.Capacity)
	}
	if totalLive != 12 {
		t.Fatalf("live records sum to %d, want 12", totalLive)
	}
	if totalFillSlots < 12-0.5 { // 12 appended records occupy log slots
		t.Fatalf("fill gauges account for %g slots, want >= 12", totalFillSlots)
	}
}
