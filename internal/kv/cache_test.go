package kv

import (
	"errors"
	"testing"

	"cxl0/internal/core"
)

// keyOnShard returns the first key >= from the store currently routes to
// shard want.
func keyOnShard(t *testing.T, st *Store, want int, from core.Val) core.Val {
	t.Helper()
	for k := from; k < from+10_000; k++ {
		if st.ShardOf(k) == want {
			return k
		}
	}
	t.Fatalf("no key routed to shard %d", want)
	return 0
}

// TestServedOnlyCounters pins the service-counter contract Metrics
// documents: Puts/Gets/Deletes/Scans/MultiGets count operations served,
// so a read or write denied by frontDown/down/partitioned must not
// count. (The pre-denial increments this test pins against also diluted
// the read cache's hit-rate denominator.)
func TestServedOnlyCounters(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Capacity: 64, Strategy: MStoreEach, Seed: 5})
	k0 := keyOnShard(t, st, 0, 0)
	k1 := keyOnShard(t, st, 1, 0)
	for _, k := range []core.Val{k0, k1} {
		if _, err := st.Put(k, 100); err != nil {
			t.Fatal(err)
		}
	}
	base := st.Metrics()

	// A down shard denies point ops on its keys without counting them.
	st.Crash(0)
	if _, _, err := st.Get(k0); !errors.Is(err, ErrShardDown) {
		t.Fatalf("get on down shard: %v", err)
	}
	if _, err := st.Put(k0, 200); !errors.Is(err, ErrShardDown) {
		t.Fatalf("put on down shard: %v", err)
	}
	if _, err := st.Delete(k0); !errors.Is(err, ErrShardDown) {
		t.Fatalf("delete on down shard: %v", err)
	}
	if _, err := st.Apply(new(Batch).Put(k0, 300)); !errors.Is(err, ErrShardDown) {
		t.Fatalf("apply on down shard: %v", err)
	}
	m := st.Metrics()
	if m.Gets != base.Gets || m.Puts != base.Puts || m.Deletes != base.Deletes {
		t.Fatalf("denied ops counted: %+v vs base %+v", m, base)
	}
	if _, err := st.Recover(0); err != nil {
		t.Fatal(err)
	}

	// A partitioned shard denies the same way; a MultiGet's placeholder
	// lookups for its keys are denied, not served, so only the other
	// keys' resolutions count as Gets.
	st.Partition(1)
	if _, _, err := st.Get(k1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("get on partitioned shard: %v", err)
	}
	if _, err := st.Put(k1, 200); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("put on partitioned shard: %v", err)
	}
	base = st.Metrics()
	out, err := st.MultiGet([]core.Val{k0, k1})
	var partial *PartialResultError
	if !errors.As(err, &partial) || len(out) != 2 {
		t.Fatalf("multiget = (%v, %v), want partial result", out, err)
	}
	m = st.Metrics()
	if m.MultiGets != base.MultiGets+1 {
		t.Fatalf("MultiGets = %d, want %d", m.MultiGets, base.MultiGets+1)
	}
	if m.Gets != base.Gets+1 {
		t.Fatalf("Gets = %d after partial multiget, want %d (served key only)", m.Gets, base.Gets+1)
	}
	st.Heal(1)

	// A crashed front end denies everything before any counter moves.
	base = st.Metrics()
	st.CrashFront()
	if _, _, err := st.Get(k0); !errors.Is(err, ErrFrontDown) {
		t.Fatalf("get with front down: %v", err)
	}
	if _, err := st.Put(k0, 400); !errors.Is(err, ErrFrontDown) {
		t.Fatalf("put with front down: %v", err)
	}
	if _, err := st.Delete(k0); !errors.Is(err, ErrFrontDown) {
		t.Fatalf("delete with front down: %v", err)
	}
	if _, err := st.Scan(0, 1000, 0); !errors.Is(err, ErrFrontDown) {
		t.Fatalf("scan with front down: %v", err)
	}
	if _, err := st.MultiGet([]core.Val{k0}); !errors.Is(err, ErrFrontDown) {
		t.Fatalf("multiget with front down: %v", err)
	}
	m = st.Metrics()
	if m.Gets != base.Gets || m.Puts != base.Puts || m.Deletes != base.Deletes ||
		m.Scans != base.Scans || m.MultiGets != base.MultiGets {
		t.Fatalf("front-down denials counted: %+v vs base %+v", m, base)
	}
	if _, err := st.RecoverFront(); err != nil {
		t.Fatal(err)
	}

	// Served ops still count, including each key a MultiGet resolves and
	// each record an Apply appends.
	base = st.Metrics()
	if _, _, err := st.Get(k0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MultiGet([]core.Val{k0, k1}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(new(Batch).Put(k0, 500).Delete(k1)); err != nil {
		t.Fatal(err)
	}
	m = st.Metrics()
	if m.Gets != base.Gets+3 || m.Puts != base.Puts+1 || m.Deletes != base.Deletes+1 {
		t.Fatalf("served ops miscounted: %+v vs base %+v", m, base)
	}
}

// TestReadCacheServesAndInvalidates exercises the cache protocol on one
// store: a repeated read hits at zero simulated cost, and every write
// path that changes the key's visible state snoops the cached copy.
func TestReadCacheServesAndInvalidates(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Capacity: 64, Strategy: MStoreEach, Seed: 5, ReadCache: 16})
	for k := core.Val(0); k < 8; k++ {
		if _, err := st.Put(k, k+100); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Get(3); err != nil {
		t.Fatal(err)
	}
	before := st.NowNS()
	v, ok, err := st.Get(3)
	if err != nil || !ok || v != 103 {
		t.Fatalf("cached get = (%d, %v, %v)", v, ok, err)
	}
	if after := st.NowNS(); after != before {
		t.Fatalf("cache hit advanced the simulated clock: %v -> %v", before, after)
	}
	m := st.Metrics()
	if m.CacheHits != 1 || m.CacheMisses == 0 {
		t.Fatalf("hits/misses = %d/%d, want 1 hit", m.CacheHits, m.CacheMisses)
	}

	// Put invalidates: the next read pays the Load and sees the new value.
	if _, err := st.Put(3, 999); err != nil {
		t.Fatal(err)
	}
	before = st.NowNS()
	if v, _, _ := st.Get(3); v != 999 {
		t.Fatalf("stale read after put: %d", v)
	}
	if st.NowNS() == before {
		t.Fatal("read after invalidation did not pay the Load")
	}

	// Delete invalidates: the cached copy must not resurrect the key.
	if _, err := st.Delete(3); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get(3); ok {
		t.Fatal("cached copy resurrected a deleted key")
	}

	// Crash/recover invalidates the shard's keys wholesale.
	k0 := keyOnShard(t, st, 0, 0)
	if _, err := st.Put(k0, 777); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(k0); err != nil { // fill
		t.Fatal(err)
	}
	st.Crash(0)
	if _, err := st.Recover(0); err != nil {
		t.Fatal(err)
	}
	before = st.NowNS()
	if v, ok, _ := st.Get(k0); !ok || v != 777 {
		t.Fatalf("post-recovery read = (%d, %v)", v, ok)
	}
	if st.NowNS() == before {
		t.Fatal("post-recovery read served from the invalidated cache")
	}

	// The capacity bound holds and evictions are counted.
	small := openTest(t, Config{Shards: 1, Capacity: 64, Strategy: MStoreEach, Seed: 5, ReadCache: 2})
	for k := core.Val(0); k < 4; k++ {
		if _, err := small.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := small.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if m := small.Metrics(); m.CacheSize > 2 {
		t.Fatalf("cache size %d exceeds capacity 2", m.CacheSize)
	}
}

// TestPrefetchWarmsCache drives the two predictor signals end to end: a
// sequential run prefetches the keys ahead of it, and the Markov
// successor table prefetches a learned chain — both land as speculative
// fills that later demand reads hit.
func TestPrefetchWarmsCache(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Capacity: 128, Strategy: MStoreEach, Seed: 5, ReadCache: 32, Prefetch: true})
	for k := core.Val(0); k < 40; k++ {
		if _, err := st.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}

	// Scan-run: three adjacent reads establish a run; the keys ahead are
	// speculatively filled, so the run's continuation hits.
	for k := core.Val(10); k <= 12; k++ {
		if _, _, err := st.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	m := st.Metrics()
	if m.SpeculativeFills == 0 {
		t.Fatalf("no speculative fills after a 3-read run: %+v", m)
	}
	before := st.NowNS()
	if v, ok, _ := st.Get(13); !ok || v != 14 {
		t.Fatalf("run continuation = (%d, %v)", v, ok)
	}
	if st.NowNS() != before {
		t.Fatal("prefetched run continuation paid a Load")
	}

	// A speculative fill is coherent like any fill: overwriting the
	// prefetched key snoops it, so the demand read sees the new value.
	hits := st.Metrics().CacheHits
	if _, err := st.Put(14, 5000); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := st.Get(14); v != 5000 {
		t.Fatalf("stale speculative value served: %d", v)
	}
	if st.Metrics().CacheHits != hits {
		t.Fatal("read after invalidation counted as a hit")
	}

	// Markov: reads alternating between two keys of one shard learn the
	// successor edge; serving the first then prefetches the second.
	a := keyOnShard(t, st, 0, 20)
	b := keyOnShard(t, st, 0, a+1)
	for i := 0; i < 3; i++ {
		for _, k := range []core.Val{a, b} {
			if _, _, err := st.Get(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	mm := st.Metrics()
	if mm.CacheHits <= hits {
		t.Fatalf("alternating reads never hit: %+v", mm)
	}
}
