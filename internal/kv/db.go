package kv

import (
	"fmt"

	"cxl0/internal/core"
)

// DB is the service surface of the durable KV layer: everything a client
// or harness needs to drive a key-value service built on the CXL0
// runtime, independent of how many shards — or how many independent
// coherence domains — stand behind it. *Store implements DB over one
// memsim cluster; pool.Router implements it over several pooled clusters.
// internal/workload and cmd/cxl0-bench drive any DB.
//
// The interface splits into a data plane and a control plane. The data
// plane carries client traffic and follows the acknowledgment contract of
// the package documentation: Ack.Durable reports persistence at return,
// batched strategies defer it to the batch's commit point. The control
// plane injects faults, triggers placement changes and snapshots metrics —
// in this simulated world, fault injection is part of the service surface,
// because crash/recovery behaviour is what the layer exists to get right.
type DB interface {
	// Put maps key to val (val >= 1), acknowledged per the configured
	// strategy's ack discipline.
	Put(key, val core.Val) (Ack, error)
	// Delete removes key by appending a tombstone record.
	Delete(key core.Val) (Ack, error)
	// Get returns the newest value mapped to key.
	Get(key core.Val) (core.Val, bool, error)
	// MultiGet looks up a set of keys in one call, returning one Lookup
	// per key in input order. Implementations amortize routing: the Store
	// resolves all keys under one lock acquisition, and a Router fans the
	// keys out to their clusters in per-cluster groups.
	MultiGet(keys []core.Val) ([]Lookup, error)
	// Scan returns up to limit live pairs with lo <= key < hi, in global
	// key order across every shard (and every cluster).
	Scan(lo, hi core.Val, limit int) ([]Pair, error)
	// Apply applies a Batch of puts and deletes in order and acknowledges
	// it with one Ack at its commit point: Apply commits every shard the
	// batch touched, so on success the whole batch is durable
	// (Ack.Durable == true) no matter the strategy. Under the batched
	// strategies this maps a client batch onto group commit directly —
	// one flush per touched shard instead of one ack boundary per Batch
	// config records. Apply is an amortization unit, not a transaction:
	// on error, a prefix of the batch may already be applied (and, once a
	// later commit covers it, durable).
	Apply(b *Batch) (Ack, error)
	// Sync commits every shard's open batch (a no-op under the
	// per-operation strategies).
	Sync() error
	// Compact folds every shard's live index into a durable snapshot and
	// reclaims its log — Sync-style, one call covers the whole service
	// (per cluster on a pooled DB, with stats carrying global shard
	// indices). Shards with empty logs are skipped. Visibility is
	// unchanged across a Compact; what it reclaims are deleted,
	// overwritten and migrated-away records. See docs/compaction.md.
	Compact() ([]CompactionStats, error)

	// NumShards returns the shard count; a pooled DB reports the total
	// across clusters and addresses shards by global index (cluster-major:
	// cluster c's shard i is c*shardsPerCluster + i).
	NumShards() int
	// Crash fails shard i's machine; operations routed to it return
	// ErrShardDown until Recover.
	Crash(i int)
	// Recover restarts shard i after a crash, per the recovery procedure
	// of the package documentation.
	Recover(i int) (RecoveryStats, error)
	// Partition cuts shard i's machine off the fabric: operations routed
	// to it return ErrUnavailable (fan-out reads degrade to partial
	// results instead; see PartialResultError) until Heal. Unlike Crash
	// nothing is lost — no recovery follows a heal. While any shard of a
	// cluster is partitioned, that cluster's GPF-based commit strategies
	// (GPFEach, GroupCommit) cannot commit at all: a global flush must
	// drain every cache, so writes fail cluster-wide with ErrUnavailable.
	Partition(i int)
	// Heal reconnects a partitioned shard to the fabric, restoring
	// service immediately.
	Heal(i int)
	// Degrade sets shard i's device latency multiplier: every operation
	// served by the shard's memory charges factor× the modeled cost
	// (factor 1 restores full speed; values below 1 clamp to 1).
	// Degradation is pure cost — results and durability are unaffected.
	Degrade(i int, factor float64)
	// Health reports each shard's fault state in global shard order.
	Health() []ShardHealth
	// Rebalance runs one load-aware rebalance check (shard-map bucket
	// migration within each cluster; see docs/rebalancing.md).
	Rebalance() ([]MigrationStats, error)
	// Metrics snapshots the service counters; a pooled DB aggregates
	// across clusters (counters summed, per-shard series concatenated in
	// global shard order).
	Metrics() Metrics
	// ResetMetrics zeroes counters and clocks while keeping stored data.
	ResetMetrics()
	// NowNS returns the total simulated time consumed so far — one
	// cluster's clock, or the sum of a pool's independent clocks. Deltas
	// around an operation measure its simulated cost.
	NowNS() float64
}

// Lookup is one MultiGet result.
type Lookup struct {
	Key   core.Val `json:"key"`
	Val   core.Val `json:"val"`
	Found bool     `json:"found"`
}

// BatchOp is one operation of a Batch: a put of Val >= 1, or a delete
// (Val 0, the tombstone value). The kind is tracked explicitly rather
// than inferred from Val so that an invalid Put(key, 0) stays a put —
// and fails Apply's validation with ErrBadKey, exactly like Store.Put —
// instead of silently turning into a delete.
type BatchOp struct {
	Key core.Val
	Val core.Val
	del bool
}

// IsDelete reports whether the operation is a delete.
func (op BatchOp) IsDelete() bool { return op.del }

// Batch is an ordered list of puts and deletes applied as one unit by
// DB.Apply. Order matters: a put followed by a delete of the same key
// leaves the key deleted. The zero Batch is empty and ready to use.
type Batch struct {
	ops []BatchOp
}

// Put appends a put of key to val (val >= 1; validated by Apply).
func (b *Batch) Put(key, val core.Val) *Batch {
	b.ops = append(b.ops, BatchOp{Key: key, Val: val})
	return b
}

// Delete appends a delete of key.
func (b *Batch) Delete(key core.Val) *Batch {
	b.ops = append(b.ops, BatchOp{Key: key, del: true})
	return b
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Ops returns the batch's operations in order. The slice is the batch's
// own backing store: callers (like a router splitting the batch per
// cluster) must not mutate it.
func (b *Batch) Ops() []BatchOp { return b.ops }

// ShardFullError is the concrete error behind ErrShardFull: it identifies
// the exhausted shard and how full its log is, so a failure deep in a
// bench matrix names the shard and fill level instead of just "log full".
// errors.Is(err, ErrShardFull) matches it; errors.As extracts the fields.
type ShardFullError struct {
	// Shard is the exhausted shard's index, local to its Store; a pooled
	// router wraps the error with the owning cluster's identity
	// ("pool: cluster N: ..."), which together with this names the shard
	// globally.
	Shard int
	// Appended and Capacity are the shard log's current record count and
	// limit — except when Live is set, where Appended counts live
	// records instead.
	Appended, Capacity int
	// Need is how many records the failed operation would have appended
	// (with Live set: how many live records exceed the fold capacity).
	Need int
	// Live marks the compaction-time form of the error: the shard's live
	// record set itself exceeds Capacity, so no amount of log
	// reclamation can help. Only raised with auto-compaction enabled
	// (Config.CompactAtFill) or by an explicit Compact; the plain form
	// means the append-only log ran out of slots.
	Live bool
}

// Fill returns the shard's fill fraction in [0, 1] — log fill, or live
// fill when Live is set (then possibly above 1, clamped by nothing).
func (e *ShardFullError) Fill() float64 {
	if e.Capacity <= 0 {
		return 1
	}
	return float64(e.Appended) / float64(e.Capacity)
}

func (e *ShardFullError) Error() string {
	if e.Live {
		return fmt.Sprintf("%v: shard %d holds %d live records, capacity %d — live set cannot fold, %d over",
			ErrShardFull, e.Shard, e.Appended, e.Capacity, e.Need)
	}
	return fmt.Sprintf("%v: shard %d holds %d/%d records (%.0f%% full), needs %d more slot(s)",
		ErrShardFull, e.Shard, e.Appended, e.Capacity, 100*e.Fill(), e.Need)
}

// Unwrap keeps errors.Is(err, ErrShardFull) working.
func (e *ShardFullError) Unwrap() error { return ErrShardFull }

// ShardHealth is one shard's fault state, as reported by DB.Health.
type ShardHealth struct {
	// Shard is the shard's index (global under a pooled router).
	Shard int `json:"shard"`
	// Down reports a crashed, not-yet-recovered shard machine.
	Down bool `json:"down"`
	// Partitioned reports a shard machine cut off by a fabric partition.
	Partitioned bool `json:"partitioned"`
	// DegradeFactor is the shard device's latency multiplier (1 = full
	// speed).
	DegradeFactor float64 `json:"degrade_factor"`
}

// PartialResultError is the typed partial-result error of the fan-out
// reads: MultiGet and Scan return the reachable shards' results together
// with this error when one or more shards were unreachable behind a
// fabric partition. errors.Is(err, ErrUnavailable) matches it. The crash
// path is deliberately different: a down shard holding relevant keys
// still fails the whole call with ErrShardDown, because a crash may have
// destroyed unacknowledged records — partial semantics are only safe when
// the missing data is known intact, which a partition guarantees.
type PartialResultError struct {
	// Op names the degraded operation ("multiget" or "scan").
	Op string
	// Unavailable lists the unreachable shards the call skipped, in
	// ascending order (global indices under a pooled router).
	Unavailable []int
	// Missing counts what the skipped shards withheld: keys routed to
	// them (multiget) or in-range live index entries (scan).
	Missing int
}

func (e *PartialResultError) Error() string {
	return fmt.Sprintf("%v: %s degraded to a partial result: %d entr(ies) on unreachable shard(s) %v",
		ErrUnavailable, e.Op, e.Missing, e.Unavailable)
}

// Unwrap keeps errors.Is(err, ErrUnavailable) working.
func (e *PartialResultError) Unwrap() error { return ErrUnavailable }

// FrontRecoverer is the optional front-end failover surface (see
// failover.go and docs/pipeline.md). A DB implements it when it can
// crash and restart its front-end machine(s) — the coordinator every
// non-colocated worker is homed on. While the front is down the whole
// data plane fails with ErrFrontDown; RecoverFront restarts the front
// and replays every shard's durable log to re-attach, salvaging flushed
// batches and dropping whatever lived only in the front's cache.
// *Store implements it; pool.Router fans it out to every cluster.
type FrontRecoverer interface {
	// CrashFront fails the front-end machine, destroying its cached
	// (unflushed) batches. Every subsequent operation returns
	// ErrFrontDown until RecoverFront.
	CrashFront()
	// RecoverFront restarts the front end and re-attaches every healthy
	// shard by replaying its durable log, one RecoveryStats per shard
	// re-attached (crashed shards are skipped — recover them with
	// Recover afterwards). It refuses with ErrUnavailable while any
	// shard is partitioned: re-attachment must read the shard's medium.
	RecoverFront() ([]RecoveryStats, error)
	// FrontDown reports whether the front end is currently crashed.
	FrontDown() bool
}

// Store implements the full DB surface.
var _ DB = (*Store)(nil)
var _ FrontRecoverer = (*Store)(nil)
