package kvtest

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/kv"
	"cxl0/internal/obs"
	"cxl0/internal/workload"
)

// DeterministicReplay pins the simulator's replay-determinism invariant
// at the service level: driving the same seeded workload against two
// fresh DBs from the same factory must produce byte-identical outcomes —
// every per-operation result, the final Metrics document (as JSON), and
// the complete observability event stream (sequence numbers, spans and
// simulated timestamps included).
//
// This is the dynamic counterpart of the simdeterminism analyzer
// (cmd/cxl0-lint): the analyzer forbids the usual divergence sources
// (host clocks, global RNG, map-iteration order) in sim-path packages
// statically; this case catches whatever slips past it — an annotated
// site that was not order-insensitive after all, or nondeterminism the
// rules do not model. The run deliberately crosses the churn paths where
// iteration order is easiest to leak: crash/recovery, partition/heal,
// bucket rebalancing and log compaction.
func DeterministicReplay(t *testing.T, f Factory) {
	cases := []struct {
		name  string
		strat kv.Strategy
		depth int
		cache int
	}{
		// One per-operation strategy and one batched strategy through the
		// asynchronous commit pipeline: between them they cross every
		// append, commit, shadow-map and retire path. The cache-on case
		// layers the read cache and prefetcher over the pipelined run —
		// hit/miss/speculative events and every invalidation path
		// (including the LRU sweeps) must replay byte-identically too.
		{"MStoreEach", kv.MStoreEach, 0, 0},
		{"RangedCommit/pipelined", kv.RangedCommit, 3, 0},
		{"RangedCommit/pipelined+cache", kv.RangedCommit, 3, 32},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			first := replayRun(t, f, c.strat, c.depth, c.cache)
			second := replayRun(t, f, c.strat, c.depth, c.cache)
			compareReplay(t, "operation results", first.results, second.results)
			compareReplay(t, "metrics", first.metrics, second.metrics)
			compareReplay(t, "event stream", first.events, second.events)
		})
	}
}

// replayOutcome is everything one replay run produced, each part
// rendered to a deterministic textual form for byte comparison.
type replayOutcome struct {
	results string
	metrics string
	events  string
}

// replayRun drives one seeded workload against a fresh DB and renders
// the outcome. Every run performs exactly the same call sequence —
// including the fault, rebalance and compaction churn at fixed operation
// indices — so any divergence between two runs is the DB's, not the
// driver's.
func replayRun(t *testing.T, f Factory, strat kv.Strategy, depth, cache int) replayOutcome {
	t.Helper()
	cfg := kv.Config{
		Shards: 2, Strategy: strat, Batch: 4, Seed: 21, EvictEvery: 3,
		// Small logs plus auto-compaction so the run compacts on its own,
		// on top of the explicit churn below.
		Capacity: 256, CompactAtFill: 0.6,
		PipelineDepth: depth,
		// Cache-on case only: small enough that the LRU evicts during the
		// run, so eviction order is under replay comparison too.
		ReadCache: cache, Prefetch: cache > 0,
	}
	db := f(t, cfg)

	var events strings.Builder
	var sub *obs.Sub
	if o, ok := db.(observable); ok {
		bus := obs.NewBus(obs.DefaultBusSize)
		sub = bus.Subscribe()
		o.Observe(obs.NewRecorder(bus, nil))
	}
	drain := func() {
		if sub == nil {
			return
		}
		for _, e := range sub.Poll(0) {
			fmt.Fprintf(&events, "%+v\n", e)
		}
	}

	spec := workload.Spec{
		Name: "replay", ReadPct: 40, UpdatePct: 30, InsertPct: 20, ScanPct: 10,
		Dist: workload.Zipfian, Keys: 64, MaxScanLen: 8,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(spec, 7)

	var results strings.Builder
	record := func(format string, args ...interface{}) {
		fmt.Fprintf(&results, format+"\n", args...)
	}

	for k := core.Val(0); k < core.Val(spec.Keys); k++ {
		ack, err := db.Put(k, k+1)
		record("preload %d: %+v %v", k, ack, err)
	}

	const ops = 320
	for i := 0; i < ops; i++ {
		// Deterministic churn at fixed indices: a partition window, a
		// crash/recovery, a rebalance and an explicit compaction. Errors
		// are recorded, not fatal — a Put denied by the partition window
		// is part of the outcome being compared.
		switch i {
		case 120:
			db.Partition(i % db.NumShards())
		case 160:
			db.Heal(120 % db.NumShards())
		case 200:
			sh := i % db.NumShards()
			db.Crash(sh)
			stats, err := db.Recover(sh)
			record("churn recover %d: %+v %v", sh, stats, err)
		case 240:
			moves, err := db.Rebalance()
			record("churn rebalance: %+v %v", moves, err)
		case 280:
			stats, err := db.Compact()
			record("churn compact: %+v %v", stats, err)
		}

		op := gen.Next()
		switch op.Kind {
		case workload.OpRead:
			v, ok, err := db.Get(core.Val(op.Key))
			record("op %d get %d: %d %v %v", i, op.Key, v, ok, err)
		case workload.OpUpdate, workload.OpInsert:
			ack, err := db.Put(core.Val(op.Key), core.Val(op.Value))
			record("op %d put %d: %+v %v", i, op.Key, ack, err)
		case workload.OpScan:
			pairs, err := db.Scan(core.Val(op.Key), core.Val(op.Key+int64(op.ScanLen)), 0)
			record("op %d scan %d+%d: %v %v", i, op.Key, op.ScanLen, pairs, err)
		}
		if i%16 == 15 {
			drain()
		}
	}
	if err := db.Sync(); err != nil {
		record("final sync: %v", err)
	}
	drain()
	if sub != nil {
		if d := sub.Dropped(); d != 0 {
			t.Fatalf("subscriber dropped %d events; the stream comparison would be partial — drain more often or grow the bus", d)
		}
	}

	doc, err := json.Marshal(db.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	return replayOutcome{results: results.String(), metrics: string(doc), events: events.String()}
}

// compareReplay fails with the first divergent line when two renderings
// of the same replay artifact differ.
func compareReplay(t *testing.T, what, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			t.Fatalf("%s diverged at line %d:\n  run 1: %s\n  run 2: %s", what, i+1, al[i], bl[i])
		}
	}
	t.Fatalf("%s diverged in length: %d vs %d lines", what, len(al), len(bl))
}
